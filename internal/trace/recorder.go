package trace

import (
	"context"
	"time"
)

// QueryObservation is one engine query as seen by a Recorder: identity,
// outcome, plan→execute→merge stage timings, and a lazy hook for the full
// plan detail. The engine fills it on every query (cache hits included) and
// hands it to the injected Recorder; building it costs a few field stores, so
// the hot path stays unobserved-speed when no recorder is configured.
type QueryObservation struct {
	// Network is the serving tenant (the engine's cache namespace in a
	// federation); empty for a standalone engine.
	Network string
	// Pattern renders the canonicalized query pattern ("*" = every indexed
	// item, the query-by-alpha workload); Alpha is the cohesion threshold.
	Pattern string
	Alpha   float64
	// CacheHit marks an answer served from the result cache — the stage
	// timings are then zero and Detail is nil.
	CacheHit bool
	// Err marks a failed query (lazy shard-load error).
	Err bool
	// Shards, SkippedShards and LoadedShards summarise the executed plan:
	// scheduled+skipped tasks, α*-skipped tasks, and disk loads this
	// execution performed. ShortCircuited counts scheduled shards a
	// streaming execution never opened (top-k early termination); zero for
	// materializing executions.
	Shards         int
	SkippedShards  int
	LoadedShards   int
	ShortCircuited int
	// Plan, Execute and Merge split Total by stage: planning (pure,
	// catalogue-only), shard traversal (acquire + walk, the parallel part),
	// and the deterministic merge of per-shard answers. Stream is the
	// pull-driven delivery stage of a streaming execution — the wall time
	// from the first pull to Close, shard opens included (so Execute nests
	// inside it); zero for materializing executions, whose delivery is
	// Merge.
	Plan    time.Duration
	Execute time.Duration
	Merge   time.Duration
	Stream  time.Duration
	Total   time.Duration
	// Detail lazily builds the full per-shard plan/execution report of this
	// very execution (the engine's Explain-shaped payload). Recorders call it
	// only for queries they keep (slow-query capture), so fast queries never
	// pay for it. It may be nil (cache hits, errors).
	Detail func() any
}

// Recorder receives one QueryObservation per engine query. It is the seam
// between the engine and the observability layer: the engine is handed a
// Recorder at construction (engine.Options.Recorder) instead of importing a
// metrics implementation, so tests can record into plain slices and a future
// learned-cost planner can tap the same stream of per-stage latencies.
// Implementations must be safe for concurrent use and must not retain the
// observation's Detail closure past the call.
type Recorder interface {
	RecordQuery(ctx context.Context, o QueryObservation)
}
