// Package trace is the dependency-free seam between the query-serving
// layers (internal/engine, internal/federation) and the observability layer
// (internal/obs). It owns the two types both sides must agree on — the
// request-correlation context key and the per-query observation record —
// so that the engine can emit observations without importing a metrics
// implementation and the observability layer can consume them without the
// engine depending on it. The layering policy (internal/lint, analyzer
// importdag) enforces that internal/engine and internal/federation never
// import internal/obs or net/http; this package is what makes that
// enforceable without losing observability.
//
// internal/obs re-exports these types under their historical names
// (obs.Recorder, obs.QueryObservation, obs.WithRequestID), so callers that
// already sit above the seam never see the split.
package trace

import "context"

type ctxKey int

const requestIDKey ctxKey = iota

// WithRequestID returns a context carrying the request correlation ID. The
// HTTP layer stamps it per request; the engine propagates the context through
// plan/execute/merge so recorders can correlate observations with responses.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID carried by the context, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
