package edgenet

import (
	"sort"
	"time"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// Options configures the edge theme-community miner.
type Options struct {
	// Alpha is the minimum cohesion threshold.
	Alpha float64
	// MaxPatternLength, when positive, bounds the mined pattern length.
	MaxPatternLength int
}

// Result is the set of maximal edge-pattern trusses found by Find.
type Result struct {
	// Alpha is the threshold the run was performed with.
	Alpha float64
	// Trusses maps each qualified pattern to its maximal edge-pattern truss.
	Trusses map[itemset.Key]*Truss
	// Duration is the wall-clock mining time.
	Duration time.Duration
}

// NumPatterns returns the number of qualified patterns.
func (r *Result) NumPatterns() int { return len(r.Trusses) }

// Truss returns the maximal edge-pattern truss of p, or nil if p is not
// qualified.
func (r *Result) Truss(p itemset.Itemset) *Truss { return r.Trusses[p.Key()] }

// Patterns returns the qualified patterns sorted by length and then
// lexicographically.
func (r *Result) Patterns() []itemset.Itemset {
	out := make([]itemset.Itemset, 0, len(r.Trusses))
	for k := range r.Trusses {
		out = append(out, k.Itemset())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return itemset.Compare(out[i], out[j]) < 0
	})
	return out
}

// Communities returns every edge theme community of the result, ordered by
// pattern.
func (r *Result) Communities() []Community {
	var out []Community
	for _, p := range r.Patterns() {
		for _, comp := range r.Trusses[p.Key()].Communities() {
			out = append(out, Community{Pattern: p, Edges: comp})
		}
	}
	return out
}

// Community is one edge theme community: a connected edge set whose edge
// databases all exhibit the theme.
type Community struct {
	Pattern itemset.Itemset
	Edges   graph.EdgeSet
}

// Vertices returns the sorted vertices of the community.
func (c Community) Vertices() []graph.VertexID { return c.Edges.Vertices() }

// Find mines every maximal edge-pattern truss of the network with the
// TCFI-style level-wise strategy: single items first, then longer candidates
// generated from qualified patterns sharing a prefix, each evaluated inside
// the intersection of its parents' trusses. The result is exact because edge
// frequencies are anti-monotone in the pattern.
func Find(nw *Network, opts Options) *Result {
	start := time.Now()
	res := &Result{Alpha: opts.Alpha, Trusses: make(map[itemset.Key]*Truss)}
	maxLen := opts.MaxPatternLength
	if maxLen <= 0 {
		maxLen = int(^uint(0) >> 1)
	}

	type qualified struct {
		pattern itemset.Itemset
		truss   *Truss
	}
	var level []qualified
	for _, it := range nw.Items() {
		p := itemset.New(it)
		t := Detect(nw.ThemeNetwork(p), opts.Alpha)
		if !t.Empty() {
			level = append(level, qualified{pattern: p, truss: t})
			res.Trusses[p.Key()] = t
		}
	}

	k := 2
	for len(level) > 0 && k <= maxLen {
		qualifiedKeys := make(map[itemset.Key]bool, len(level))
		for _, q := range level {
			qualifiedKeys[q.pattern.Key()] = true
		}
		sort.Slice(level, func(i, j int) bool { return itemset.Compare(level[i].pattern, level[j].pattern) < 0 })

		var next []qualified
		seen := make(map[itemset.Key]bool)
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !a.pattern.Prefix(a.pattern.Len() - 1).Equal(b.pattern.Prefix(b.pattern.Len() - 1)) {
					break
				}
				union := a.pattern.Union(b.pattern)
				if union.Len() != a.pattern.Len()+1 || seen[union.Key()] {
					continue
				}
				seen[union.Key()] = true
				if !allSubsetsQualified(union, qualifiedKeys) {
					continue
				}
				inter := a.truss.Edges.Intersect(b.truss.Edges)
				if inter.Len() == 0 {
					continue
				}
				t := Detect(nw.ThemeNetworkWithin(union, inter), opts.Alpha)
				if t.Empty() {
					continue
				}
				next = append(next, qualified{pattern: union, truss: t})
				res.Trusses[union.Key()] = t
			}
		}
		level = next
		k++
	}
	res.Duration = time.Since(start)
	return res
}

func allSubsetsQualified(cand itemset.Itemset, qualified map[itemset.Key]bool) bool {
	for _, sub := range cand.ImmediateSubsets() {
		if !qualified[sub.Key()] {
			return false
		}
	}
	return true
}
