package edgenet

import (
	"fmt"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// cohesionTolerance mirrors the tolerance used by the vertex-network MPTD: it
// absorbs floating-point drift when comparing cohesion values against α.
const cohesionTolerance = 1e-9

// Truss is a maximal edge-pattern truss: the largest subgraph of the edge
// theme network in which every edge has cohesion strictly greater than Alpha,
// where cohesion sums min(f_ij, f_ik, f_jk) over the triangles of the
// subgraph.
type Truss struct {
	// Pattern is the theme p.
	Pattern itemset.Itemset
	// Alpha is the cohesion threshold the truss was computed for.
	Alpha float64
	// Edges is the surviving edge set.
	Edges graph.EdgeSet
	// Freq maps the key of every surviving edge to f_e(p).
	Freq map[uint64]float64
}

// Empty reports whether the truss has no edges.
func (t *Truss) Empty() bool { return t == nil || t.Edges.Len() == 0 }

// NumEdges returns the number of surviving edges.
func (t *Truss) NumEdges() int {
	if t == nil {
		return 0
	}
	return t.Edges.Len()
}

// NumVertices returns the number of vertices incident to surviving edges.
func (t *Truss) NumVertices() int {
	if t == nil {
		return 0
	}
	return len(t.Edges.Vertices())
}

// Communities returns the maximal connected subgraphs of the truss: the edge
// theme communities.
func (t *Truss) Communities() []graph.EdgeSet {
	if t.Empty() {
		return nil
	}
	return t.Edges.ConnectedComponents()
}

// String summarises the truss.
func (t *Truss) String() string {
	if t == nil {
		return "edgenet.Truss(nil)"
	}
	return fmt.Sprintf("edgenet.Truss{p=%v, α=%g, |V|=%d, |E|=%d}", t.Pattern, t.Alpha, t.NumVertices(), t.NumEdges())
}

// Detect computes the maximal edge-pattern truss of the theme network with
// respect to alpha by the same peeling strategy as Algorithm 1: compute every
// edge's cohesion, repeatedly remove an edge whose cohesion is at most alpha,
// and update the cohesion of the other two edges of every triangle the
// removal breaks.
func Detect(tn *ThemeNetwork, alpha float64) *Truss {
	adj := make(map[graph.VertexID]map[graph.VertexID]bool)
	link := func(u, v graph.VertexID) {
		if adj[u] == nil {
			adj[u] = make(map[graph.VertexID]bool)
		}
		adj[u][v] = true
	}
	for _, e := range tn.Edges {
		link(e.U, e.V)
		link(e.V, e.U)
	}
	commonNeighbors := func(u, v graph.VertexID) []graph.VertexID {
		a, b := adj[u], adj[v]
		if len(b) < len(a) {
			a, b = b, a
		}
		var out []graph.VertexID
		for w := range a {
			if b[w] {
				out = append(out, w)
			}
		}
		return out
	}
	freqOf := func(u, v graph.VertexID) float64 { return tn.Freq[graph.EdgeOf(u, v).Key()] }

	cohesion := make(map[uint64]float64, tn.Edges.Len())
	for key, e := range tn.Edges {
		total := 0.0
		for _, w := range commonNeighbors(e.U, e.V) {
			total += min3(tn.Freq[key], freqOf(e.U, w), freqOf(e.V, w))
		}
		cohesion[key] = total
	}

	removed := make(map[uint64]bool)
	queued := make(map[uint64]bool)
	var queue []graph.Edge
	for key, eco := range cohesion {
		if eco <= alpha+cohesionTolerance {
			queue = append(queue, graph.EdgeFromKey(key))
			queued[key] = true
		}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		key := e.Key()
		if removed[key] {
			continue
		}
		for _, w := range commonNeighbors(e.U, e.V) {
			m := min3(tn.Freq[key], freqOf(e.U, w), freqOf(e.V, w))
			for _, other := range []graph.Edge{graph.EdgeOf(e.U, w), graph.EdgeOf(e.V, w)} {
				ok := other.Key()
				if removed[ok] {
					continue
				}
				cohesion[ok] -= m
				if cohesion[ok] <= alpha+cohesionTolerance && !queued[ok] {
					queue = append(queue, other)
					queued[ok] = true
				}
			}
		}
		removed[key] = true
		delete(cohesion, key)
		delete(adj[e.U], e.V)
		delete(adj[e.V], e.U)
	}

	t := &Truss{Pattern: tn.Pattern.Clone(), Alpha: alpha, Edges: make(graph.EdgeSet, len(cohesion)), Freq: make(map[uint64]float64, len(cohesion))}
	for key := range cohesion {
		t.Edges.Add(graph.EdgeFromKey(key))
		t.Freq[key] = tn.Freq[key]
	}
	return t
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}
