// Package edgenet implements the edge database network extension that the
// paper sketches as future work in its conclusion (Section 8): a network in
// which every EDGE — rather than every vertex — is associated with a
// transaction database describing the interactions between its endpoints
// (messages exchanged, items co-purchased, papers co-authored, ...).
//
// The theme-community machinery carries over with frequencies attached to
// edges instead of vertices:
//
//   - the theme network G_p of a pattern p is the set of edges whose database
//     has f_e(p) > 0;
//   - the cohesion of an edge e = (i,j) in a subgraph sums, over the triangles
//     (i,j,k) whose three edges all belong to the subgraph,
//     min(f_ij(p), f_ik(p), f_jk(p));
//   - a maximal edge-pattern truss and its connected components (the edge
//     theme communities) are defined exactly as in Definitions 3.3–3.5.
//
// Because edge frequencies are anti-monotone in the pattern, the pattern and
// graph anti-monotonicity properties (Theorem 5.1, Proposition 5.2) and the
// intersection property (Proposition 5.3) continue to hold, so the TCFI-style
// level-wise miner implemented here is exact.
package edgenet

import (
	"fmt"
	"sort"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/txdb"
)

// Network is an edge database network: a simple undirected graph whose edges
// each carry a transaction database.
type Network struct {
	g   *graph.Graph
	dbs map[uint64]*txdb.Database
}

// New returns an edge database network with n vertices and no edges.
func New(n int) *Network {
	return &Network{g: graph.New(n), dbs: make(map[uint64]*txdb.Database)}
}

// NumVertices returns the number of vertices.
func (nw *Network) NumVertices() int { return nw.g.NumVertices() }

// NumEdges returns the number of edges.
func (nw *Network) NumEdges() int { return nw.g.NumEdges() }

// Graph returns the underlying graph; it must not be modified directly.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// AddEdge inserts the undirected edge (a, b) with an empty database. Adding
// an existing edge is a no-op.
func (nw *Network) AddEdge(a, b graph.VertexID) error {
	if err := nw.g.AddEdge(a, b); err != nil {
		return err
	}
	key := graph.EdgeOf(a, b).Key()
	if _, ok := nw.dbs[key]; !ok {
		nw.dbs[key] = txdb.New()
	}
	return nil
}

// AddInteraction records one transaction on the edge (a, b), creating the
// edge if it does not exist yet.
func (nw *Network) AddInteraction(a, b graph.VertexID, t txdb.Transaction) error {
	if err := nw.AddEdge(a, b); err != nil {
		return err
	}
	nw.dbs[graph.EdgeOf(a, b).Key()].Add(t)
	return nil
}

// Database returns the transaction database of edge (a, b), or nil if the
// edge does not exist.
func (nw *Network) Database(a, b graph.VertexID) *txdb.Database {
	if a == b {
		return nil
	}
	return nw.dbs[graph.EdgeOf(a, b).Key()]
}

// Frequency returns f_e(p) for the edge (a, b); missing edges have frequency 0.
func (nw *Network) Frequency(a, b graph.VertexID, p itemset.Itemset) float64 {
	db := nw.Database(a, b)
	if db == nil {
		return 0
	}
	return db.Frequency(p)
}

// Items returns the item universe: the union of the items of every edge
// database, sorted.
func (nw *Network) Items() itemset.Itemset {
	var out itemset.Itemset
	for _, db := range nw.dbs {
		out = out.Union(db.Items())
	}
	return out
}

// Stats summarises the network.
type Stats struct {
	Vertices     int
	Edges        int
	Transactions int
	ItemsUnique  int
}

// Stats computes summary statistics of the network.
func (nw *Network) Stats() Stats {
	s := Stats{Vertices: nw.NumVertices(), Edges: nw.NumEdges()}
	for _, db := range nw.dbs {
		s.Transactions += db.Len()
	}
	s.ItemsUnique = nw.Items().Len()
	return s
}

// String summarises the network.
func (nw *Network) String() string {
	return fmt.Sprintf("edgenet.Network{|V|=%d, |E|=%d}", nw.NumVertices(), nw.NumEdges())
}

// ThemeNetwork is the edge-induced theme network of a pattern: the edges with
// f_e(p) > 0 together with those frequencies.
type ThemeNetwork struct {
	// Pattern is the theme p.
	Pattern itemset.Itemset
	// Freq maps the key of every retained edge to f_e(p) > 0.
	Freq map[uint64]float64
	// Edges is the retained edge set.
	Edges graph.EdgeSet
}

// NumEdges returns the number of edges of the theme network.
func (tn *ThemeNetwork) NumEdges() int { return tn.Edges.Len() }

// ThemeNetwork induces the theme network of pattern p from the full edge
// database network. The empty pattern retains every edge with a non-empty
// database (frequency 1).
func (nw *Network) ThemeNetwork(p itemset.Itemset) *ThemeNetwork {
	tn := &ThemeNetwork{Pattern: p.Clone(), Freq: make(map[uint64]float64), Edges: make(graph.EdgeSet)}
	for key, db := range nw.dbs {
		f := db.Frequency(p)
		if f <= 0 {
			continue
		}
		tn.Freq[key] = f
		tn.Edges.Add(graph.EdgeFromKey(key))
	}
	return tn
}

// ThemeNetworkWithin induces the theme network of p restricted to the given
// edge set, the restricted induction used by the intersection-pruned miner.
func (nw *Network) ThemeNetworkWithin(p itemset.Itemset, within graph.EdgeSet) *ThemeNetwork {
	if within == nil {
		return nw.ThemeNetwork(p)
	}
	tn := &ThemeNetwork{Pattern: p.Clone(), Freq: make(map[uint64]float64), Edges: make(graph.EdgeSet)}
	for key := range within {
		db := nw.dbs[key]
		if db == nil {
			continue
		}
		f := db.Frequency(p)
		if f <= 0 {
			continue
		}
		tn.Freq[key] = f
		tn.Edges.Add(graph.EdgeFromKey(key))
	}
	return tn
}

// Edges returns every edge of the network in canonical order.
func (nw *Network) Edges() []graph.Edge {
	keys := make([]uint64, 0, len(nw.dbs))
	for k := range nw.dbs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]graph.Edge, 0, len(keys))
	for _, k := range keys {
		out = append(out, graph.EdgeFromKey(k))
	}
	return out
}
