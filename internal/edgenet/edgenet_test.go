package edgenet

import (
	"math"
	"math/rand"
	"testing"

	"themecomm/internal/fpm"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// messagingNetwork builds a small edge database network: a triangle of close
// contacts {0,1,2} whose conversations frequently mention {project, deadline},
// a second triangle {2,3,4} chatting about {dinner}, plus a pendant edge.
func messagingNetwork(t *testing.T) (*Network, itemset.Item, itemset.Item, itemset.Item) {
	t.Helper()
	nw := New(6)
	const project, deadline, dinner, misc = 1, 2, 3, 4
	say := func(a, b graph.VertexID, times int, items ...itemset.Item) {
		for i := 0; i < times; i++ {
			if err := nw.AddInteraction(a, b, itemset.New(items...)); err != nil {
				t.Fatalf("AddInteraction: %v", err)
			}
		}
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 2}, {1, 2}} {
		say(e[0], e[1], 4, project, deadline)
		say(e[0], e[1], 1, misc)
	}
	for _, e := range [][2]graph.VertexID{{2, 3}, {2, 4}, {3, 4}} {
		say(e[0], e[1], 3, dinner)
		say(e[0], e[1], 1, misc)
	}
	say(4, 5, 2, misc)
	return nw, project, deadline, dinner
}

func TestNetworkBasics(t *testing.T) {
	nw, project, deadline, _ := messagingNetwork(t)
	if nw.NumVertices() != 6 || nw.NumEdges() != 7 {
		t.Fatalf("size = (%d,%d)", nw.NumVertices(), nw.NumEdges())
	}
	if got := nw.Frequency(0, 1, itemset.New(project, deadline)); !approx(got, 0.8) {
		t.Fatalf("f_(0,1)({project,deadline}) = %v, want 0.8", got)
	}
	if got := nw.Frequency(0, 3, itemset.New(project)); got != 0 {
		t.Fatalf("missing edge should have frequency 0, got %v", got)
	}
	if nw.Database(1, 1) != nil {
		t.Fatalf("self-loop database should be nil")
	}
	if got := nw.Items(); got.Len() != 4 {
		t.Fatalf("Items = %v", got)
	}
	st := nw.Stats()
	if st.Edges != 7 || st.Transactions != 3*5+3*4+2 || st.ItemsUnique != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if len(nw.Edges()) != 7 {
		t.Fatalf("Edges() returned %d edges", len(nw.Edges()))
	}
	if nw.String() == "" {
		t.Fatalf("empty String")
	}
	if err := nw.AddEdge(0, 0); err == nil {
		t.Fatalf("self-loop should be rejected")
	}
	if err := nw.AddInteraction(0, 99, itemset.New(1)); err == nil {
		t.Fatalf("out-of-range vertex should be rejected")
	}
}

func TestThemeNetworkInduction(t *testing.T) {
	nw, project, deadline, dinner := messagingNetwork(t)
	tn := nw.ThemeNetwork(itemset.New(project, deadline))
	if tn.NumEdges() != 3 {
		t.Fatalf("theme network of {project,deadline} has %d edges, want 3", tn.NumEdges())
	}
	for key, f := range tn.Freq {
		if !approx(f, 0.8) {
			t.Fatalf("edge %v frequency = %v, want 0.8", graph.EdgeFromKey(key), f)
		}
	}
	tn = nw.ThemeNetwork(itemset.New(dinner))
	if tn.NumEdges() != 3 {
		t.Fatalf("theme network of {dinner} has %d edges", tn.NumEdges())
	}
	// Restricted induction agrees with intersecting the full induction.
	within := graph.NewEdgeSet(graph.EdgeOf(0, 1), graph.EdgeOf(2, 3))
	restricted := nw.ThemeNetworkWithin(itemset.New(project), within)
	if restricted.NumEdges() != 1 || !restricted.Edges.Contains(graph.EdgeOf(0, 1)) {
		t.Fatalf("restricted induction wrong: %v", restricted.Edges.Edges())
	}
	if got := nw.ThemeNetworkWithin(itemset.New(project), nil); got.NumEdges() != 3 {
		t.Fatalf("nil restriction should fall back to full induction")
	}
}

func TestDetectOnMessagingNetwork(t *testing.T) {
	nw, project, deadline, dinner := messagingNetwork(t)

	// The {project, deadline} triangle: every edge has cohesion 0.8.
	tr := Detect(nw.ThemeNetwork(itemset.New(project, deadline)), 0.5)
	if tr.NumEdges() != 3 || tr.NumVertices() != 3 {
		t.Fatalf("project triangle truss wrong: %v", tr)
	}
	comms := tr.Communities()
	if len(comms) != 1 || len(comms[0].Vertices()) != 3 {
		t.Fatalf("expected one 3-vertex community, got %v", comms)
	}
	// Strict threshold: at α = 0.8 the triangle is gone.
	if !Detect(nw.ThemeNetwork(itemset.New(project, deadline)), 0.8).Empty() {
		t.Fatalf("cohesion is not strictly greater than 0.8, truss must be empty")
	}
	// The dinner triangle survives at α < 0.75; the pendant edge never does.
	tr = Detect(nw.ThemeNetwork(itemset.New(dinner)), 0.5)
	if tr.NumEdges() != 3 {
		t.Fatalf("dinner truss = %v", tr)
	}
	tr = Detect(nw.ThemeNetwork(itemset.New(4)), 0) // misc appears on all edges
	for _, e := range tr.Edges.Edges() {
		if e == graph.EdgeOf(4, 5) {
			t.Fatalf("the pendant edge is in no triangle and must be removed")
		}
	}
	// Accessors on empty/nil trusses.
	var nilTruss *Truss
	if !nilTruss.Empty() || nilTruss.NumEdges() != 0 || nilTruss.NumVertices() != 0 || nilTruss.Communities() != nil {
		t.Fatalf("nil truss accessors broken")
	}
	if nilTruss.String() != "edgenet.Truss(nil)" {
		t.Fatalf("nil truss String = %q", nilTruss.String())
	}
}

func TestTrussAntiMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		nw := randomEdgeNetwork(rng, 10, 25, 4)
		p1 := itemset.New(0)
		p2 := itemset.New(0, 1)
		for _, alpha := range []float64{0, 0.2, 0.5} {
			t1 := Detect(nw.ThemeNetwork(p1), alpha)
			t2 := Detect(nw.ThemeNetwork(p2), alpha)
			if !t2.Edges.SubsetOf(t1.Edges) {
				t.Fatalf("trial %d α=%v: truss of %v not contained in truss of %v", trial, alpha, p2, p1)
			}
		}
	}
}

func TestFindMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		nw := randomEdgeNetwork(rng, 10, 22, 4)
		for _, alpha := range []float64{0, 0.3} {
			got := Find(nw, Options{Alpha: alpha})
			want := bruteForce(nw, alpha)
			if len(got.Trusses) != len(want) {
				t.Fatalf("trial %d α=%v: Find found %d patterns, brute force %d",
					trial, alpha, len(got.Trusses), len(want))
			}
			for key, tr := range want {
				g, ok := got.Trusses[key]
				if !ok || !g.Edges.Equal(tr.Edges) {
					t.Fatalf("trial %d α=%v: mismatch on pattern %v", trial, alpha, key.Itemset())
				}
			}
		}
	}
}

func TestFindOnMessagingNetwork(t *testing.T) {
	nw, project, deadline, dinner := messagingNetwork(t)
	res := Find(nw, Options{Alpha: 0.5})
	if res.Truss(itemset.New(project, deadline)) == nil {
		t.Fatalf("{project, deadline} should be qualified")
	}
	if res.Truss(itemset.New(dinner)) == nil {
		t.Fatalf("{dinner} should be qualified")
	}
	if res.Truss(itemset.New(project, dinner)) != nil {
		t.Fatalf("{project, dinner} never co-occurs on an edge")
	}
	comms := res.Communities()
	if len(comms) == 0 {
		t.Fatalf("no communities")
	}
	for _, c := range comms {
		if len(c.Vertices()) < 3 {
			t.Fatalf("edge theme community smaller than a triangle: %v", c)
		}
	}
	// Patterns are sorted, durations recorded, bounded length respected.
	ps := res.Patterns()
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Len() > ps[i].Len() {
			t.Fatalf("patterns not sorted: %v", ps)
		}
	}
	if res.Duration <= 0 {
		t.Fatalf("duration not recorded")
	}
	bounded := Find(nw, Options{Alpha: 0.5, MaxPatternLength: 1})
	for _, p := range bounded.Patterns() {
		if p.Len() > 1 {
			t.Fatalf("MaxPatternLength violated: %v", p)
		}
	}
	if got := Find(New(0), Options{}); got.NumPatterns() != 0 {
		t.Fatalf("empty network should yield nothing")
	}
}

// bruteForce enumerates every pattern appearing in any edge database and runs
// Detect on its full theme network.
func bruteForce(nw *Network, alpha float64) map[itemset.Key]*Truss {
	seen := make(map[itemset.Key]bool)
	out := make(map[itemset.Key]*Truss)
	for _, e := range nw.Edges() {
		db := nw.Database(e.U, e.V)
		for _, p := range fpm.Enumerate(db, fpm.Options{MinFrequency: 0}) {
			key := p.Items.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			tr := Detect(nw.ThemeNetwork(p.Items), alpha)
			if !tr.Empty() {
				out[key] = tr
			}
		}
	}
	return out
}

func randomEdgeNetwork(rng *rand.Rand, n, m, items int) *Network {
	nw := New(n)
	for i := 0; i < m; i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a == b {
			continue
		}
		ntx := 1 + rng.Intn(4)
		for j := 0; j < ntx; j++ {
			l := 1 + rng.Intn(3)
			tx := make([]itemset.Item, l)
			for k := range tx {
				tx[k] = itemset.Item(rng.Intn(items))
			}
			if err := nw.AddInteraction(a, b, itemset.New(tx...)); err != nil {
				panic(err)
			}
		}
	}
	return nw
}
