package federation

import (
	"testing"

	"themecomm/internal/itemset"
)

// This file proves the federation's merged streams against the materializing
// cross-network calls: StreamTopKAll must reproduce TopKAll's merged order
// byte for byte, StreamQueryAll must reproduce QueryAll's per-network
// concatenation, and the short-circuit accounting of the member engines must
// survive the merge.

// drainMerged pulls the merged stream to exhaustion.
func drainMerged(t *testing.T, ms *MergedStream) []NetworkRanked {
	t.Helper()
	var out []NetworkRanked
	for {
		nr, err := ms.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if nr == nil {
			return out
		}
		out = append(out, *nr)
	}
}

// TestStreamTopKAllParity: across patterns, thresholds and ks, the merged
// ranked stream must equal the materializing TopKAll answer position by
// position — network, pattern, edge set and ranking annotations.
func TestStreamTopKAllParity(t *testing.T) {
	f, _ := newTestFederation(t, Options{})
	queries := []itemset.Itemset{nil, itemset.New(0), itemset.New(1, 2), itemset.New(0, 1, 2, 3, 4)}
	alphas := []float64{0, 0.15, 0.4}
	ks := []int{0, 1, 3, 10, 1000}
	cases := 0
	for _, q := range queries {
		for _, alpha := range alphas {
			for _, k := range ks {
				want, err := f.TopKAll(q, alpha, k)
				if err != nil {
					t.Fatalf("TopKAll: %v", err)
				}
				ms, err := f.StreamTopKAll(q, alpha, k)
				if err != nil {
					t.Fatalf("StreamTopKAll: %v", err)
				}
				got := drainMerged(t, ms)
				ms.Close()
				if len(got) != len(want) {
					t.Fatalf("q=%v α=%g k=%d: streamed %d, materialized %d", q, alpha, k, len(got), len(want))
				}
				for i := range got {
					g, w := got[i], want[i]
					if g.Network != w.Network {
						t.Fatalf("rank %d: streamed network %q, materialized %q", i, g.Network, w.Network)
					}
					if !g.Community.Pattern.Equal(w.Community.Pattern) ||
						!g.Community.Edges.Equal(w.Community.Edges) {
						t.Fatalf("rank %d: community differs", i)
					}
					if g.Cohesion != w.Cohesion || g.Vertices != w.Vertices || g.Edges != w.Edges {
						t.Fatalf("rank %d: annotations differ: (%g,%d,%d) vs (%g,%d,%d)",
							i, g.Cohesion, g.Vertices, g.Edges, w.Cohesion, w.Vertices, w.Edges)
					}
				}
				cases++
			}
		}
	}
	if cases < 50 {
		t.Fatalf("only %d federated parity cases", cases)
	}
}

// TestStreamQueryAllParity: the plain merged stream must equal QueryAll's
// answer — networks in ascending name order, each network's communities in
// its own Query order.
func TestStreamQueryAllParity(t *testing.T) {
	f, _ := newTestFederation(t, Options{})
	for _, q := range []itemset.Itemset{nil, itemset.New(0), itemset.New(1, 3)} {
		for _, alpha := range []float64{0, 0.2} {
			results, err := f.QueryAll(q, alpha)
			if err != nil {
				t.Fatalf("QueryAll: %v", err)
			}
			var want []NetworkRanked
			for _, nr := range results {
				for _, c := range nr.Result.Communities() {
					want = append(want, NetworkRanked{Network: nr.Network})
					want[len(want)-1].Community = c
				}
			}
			ms, err := f.StreamQueryAll(q, alpha)
			if err != nil {
				t.Fatalf("StreamQueryAll: %v", err)
			}
			got := drainMerged(t, ms)
			ms.Close()
			if len(got) != len(want) {
				t.Fatalf("q=%v α=%g: streamed %d communities, materialized %d", q, alpha, len(got), len(want))
			}
			for i := range got {
				if got[i].Network != want[i].Network {
					t.Fatalf("community %d: network %q, want %q", i, got[i].Network, want[i].Network)
				}
				if !got[i].Community.Pattern.Equal(want[i].Community.Pattern) ||
					!got[i].Community.Edges.Equal(want[i].Community.Edges) {
					t.Fatalf("community %d: differs from QueryAll order", i)
				}
			}
		}
	}
}

// TestStreamAllShortCircuitAccounting: a selective federated top-k stream
// must leave member shards unopened, and closing the merged stream must
// credit them to the federation's aggregated counters.
func TestStreamAllShortCircuitAccounting(t *testing.T) {
	f, _ := newTestFederation(t, Options{})
	ms, err := f.StreamTopKAll(nil, 0, 1)
	if err != nil {
		t.Fatalf("StreamTopKAll: %v", err)
	}
	got := drainMerged(t, ms)
	ms.Close()
	if len(got) != 1 {
		t.Fatalf("k=1 merged stream emitted %d communities", len(got))
	}
	fs := f.Stats()
	if fs.StreamAlls != 1 {
		t.Fatalf("StreamAlls = %d, want 1", fs.StreamAlls)
	}
	if fs.Streams != uint64(fs.Networks) {
		t.Fatalf("aggregated Streams = %d, want one per network (%d)", fs.Streams, fs.Networks)
	}
	if fs.ShardsShortCircuited == 0 {
		t.Fatalf("no member shard was short-circuited by the k=1 merge")
	}
	// The short-circuited shards were never loaded: the lazy members' load
	// counters must come in under their shard counts.
	var loads, shards uint64
	for _, ns := range fs.PerNetwork {
		loads += ns.LazyLoads
		shards += uint64(ns.Shards)
	}
	if loads >= shards {
		t.Fatalf("members loaded %d of %d shards; the merge saved nothing", loads, shards)
	}
}

// TestMergedStreamClosedNext: Next after Close fails rather than yielding
// stale members.
func TestMergedStreamClosedNext(t *testing.T) {
	f, _ := newTestFederation(t, Options{})
	ms, err := f.StreamQueryAll(nil, 0)
	if err != nil {
		t.Fatalf("StreamQueryAll: %v", err)
	}
	ms.Close()
	ms.Close() // idempotent
	if _, err := ms.Next(); err == nil {
		t.Fatalf("Next on a closed merged stream succeeded")
	}
}
