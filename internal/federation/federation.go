// Package federation turns the single-network query engine into a
// multi-tenant serving layer: one Federation fronts many named networks —
// the "data warehouse of maximal pattern trusses" of the paper's Section 6,
// scaled from one indexed network per process to a whole warehouse of them.
//
// Each attached network is backed by its own engine.Engine (eager over a
// resident tree, or lazy over a sharded index directory) with its own shard
// pool, planner and counters, but every member shares two global resources:
//
//   - one result cache (engine.ResultCache) with namespaced keys, so a hot
//     tenant's working set competes with every other tenant's under a single
//     capacity bound, while lookups and invalidation stay tenant-scoped;
//   - one residency budget (engine.ResidencyGroup), so the number of lazily
//     loaded shards resident in memory is bounded across ALL networks and a
//     hot tenant cannot evict-starve the rest — eviction is globally
//     least-recently-used, whichever engine the victim shard belongs to.
//
// Networks attach and detach at runtime; detaching releases the network's
// share of both global resources (its cached answers are purged, its
// resident shards evicted) without disturbing any other tenant — the
// network-granularity analogue of the engine's targeted ReloadShard
// invalidation.
//
// Cross-network batch queries (QueryAll, TopKAll) run one query against
// every attached network, scheduling the networks most-expensive-first from
// the per-network planner's cost estimates, and TopKAll merges the ranked
// answers into one deterministic cohesion-ordered list.
//
// A Federation is safe for concurrent use.
package federation

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/engine"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
	"themecomm/internal/trace"
)

// Options configures a Federation and the engines it builds for attached
// networks.
type Options struct {
	// Workers bounds each member engine's concurrent shard traversals.
	// Zero or negative means GOMAXPROCS.
	Workers int
	// CacheSize is the capacity of the shared result cache, global across
	// every network. Zero or negative disables caching for all members.
	CacheSize int
	// MaxResidentShards is the shared residency budget: the number of lazily
	// loaded shards kept in memory across ALL networks at once. Zero or
	// negative means unlimited. Eager (fully resident) networks are outside
	// the budget.
	MaxResidentShards int
	// MaxResidentBytes is the shared byte-based residency budget, enforced
	// alongside MaxResidentShards across every network: the summed size of
	// resident lazy shards — mapped file size for TCBIN shards, serialized
	// payload size for gob shards. Zero or negative means unlimited.
	MaxResidentBytes int64
	// NetworkWorkers bounds how many networks a cross-network call
	// (QueryAll, TopKAll) queries concurrently. Zero or negative means
	// GOMAXPROCS. Per-network traversal parallelism is bounded separately by
	// Workers inside each engine.
	NetworkWorkers int
	// PrefetchWorkers and DisablePlanner are passed through to every member
	// engine (see engine.Options).
	PrefetchWorkers int
	DisablePlanner  bool
	// Recorder is passed through to every member engine
	// (engine.Options.Recorder): each tenant's queries report to the one
	// injected recorder under the tenant's name, so a single observer serves
	// per-network metrics for the whole federation. Nil disables observation.
	Recorder trace.Recorder
}

// NetworkOptions carries the per-network presentation metadata a serving
// layer needs alongside the engine.
type NetworkOptions struct {
	// Dictionary names the items of the network's item universe; nil means
	// queries must use numeric item identifiers.
	Dictionary *itemset.Dictionary
	// VertexNames maps vertex identifiers to display names; may be nil.
	VertexNames []string
	// Network is the database network the index was built from. It is
	// required for incremental maintenance (ApplyDelta) and unused
	// otherwise; a network attached without it serves queries but rejects
	// deltas.
	Network *dbnet.Network
	// NetworkPath, when non-empty, is the file the updated network is
	// written back to after every applied delta, so a restart reloads the
	// state the index was maintained against.
	NetworkPath string
}

// Network is one attached tenant: a named engine plus its presentation
// metadata. Accessors are safe for concurrent use; the fields never change
// after attach (deltas mutate the database network's contents, serialized by
// the tenant's update lock).
type Network struct {
	name string
	eng  *engine.Engine
	opts NetworkOptions
	// updMu serializes this tenant's deltas: the engine's own lock covers
	// the index swap, this one additionally covers the network-file
	// write-back.
	updMu sync.Mutex
}

// Standalone wraps an engine and its metadata as an unattached Network, so
// a single-network serving layer reuses the tenant update path (per-tenant
// serialization, engine.ApplyDelta, atomic network write-back) without a
// federation. The name may be empty; it is only used in error messages.
func Standalone(name string, eng *engine.Engine, opts NetworkOptions) *Network {
	padDictionary(opts)
	return &Network{name: name, eng: eng, opts: opts}
}

// padDictionary extends an updatable tenant's dictionary to cover the
// network's whole item universe, so a delta introducing a new item name can
// never be assigned the identifier of an existing unnamed item (a network
// file may carry fewer "I" name lines than it has items).
func padDictionary(opts NetworkOptions) {
	if opts.Network == nil || opts.Dictionary == nil {
		return
	}
	if items := opts.Network.Items(); items.Len() > 0 {
		opts.Dictionary.PadTo(int(items.Last()) + 1)
	}
}

// Name returns the network's federation-unique name.
func (n *Network) Name() string { return n.name }

// Engine returns the network's query engine.
func (n *Network) Engine() *engine.Engine { return n.eng }

// Dictionary returns the network's item dictionary; it may be nil.
func (n *Network) Dictionary() *itemset.Dictionary { return n.opts.Dictionary }

// VertexNames returns the network's vertex display names; it may be nil.
func (n *Network) VertexNames() []string { return n.opts.VertexNames }

// DatabaseNetwork returns the database network the tenant's index is
// maintained against; nil when the tenant was attached without one (it then
// rejects deltas).
func (n *Network) DatabaseNetwork() *dbnet.Network { return n.opts.Network }

// NetworkPath returns the file the updated network is written back to after
// deltas; empty when the tenant was attached without one.
func (n *Network) NetworkPath() string { return n.opts.NetworkPath }

// ApplyDelta incrementally updates the tenant: the delta is applied to its
// database network and the affected index shards are rebuilt and swapped
// (engine.ApplyDelta), purging only this tenant's cache namespace — every
// other tenant's cached answers, resident shards and counters are untouched.
// When the tenant was attached with a NetworkPath, the updated network is
// written back so a restart reloads consistent state.
func (n *Network) ApplyDelta(d *delta.Delta) (*engine.DeltaResult, error) {
	nw := n.opts.Network
	if nw == nil {
		return nil, n.wrapErr(fmt.Errorf("no database network attached; deltas need one (attach with NetworkOptions.Network)"))
	}
	n.updMu.Lock()
	defer n.updMu.Unlock()
	res, err := n.eng.ApplyDelta(nw, d)
	if err != nil {
		return nil, n.wrapErr(err)
	}
	if n.opts.NetworkPath != "" {
		if err := dbnet.WriteFileAtomic(n.opts.NetworkPath, nw, n.opts.Dictionary); err != nil {
			return res, n.wrapErr(fmt.Errorf("index updated but network write-back failed: %w", err))
		}
	}
	return res, nil
}

// wrapErr annotates an error with the network name; standalone (unnamed)
// networks pass errors through.
func (n *Network) wrapErr(err error) error {
	if n.name == "" {
		return err
	}
	return fmt.Errorf("federation: network %q: %w", n.name, err)
}

// Federation manages many named networks sharing one result cache and one
// residency budget.
type Federation struct {
	opts  Options
	cache *engine.ResultCache // nil when caching is disabled
	res   *engine.ResidencyGroup
	// netSem bounds concurrent per-network queries of cross-network calls.
	netSem chan struct{}

	mu       sync.RWMutex
	networks map[string]*Network

	queryAlls  atomic.Uint64
	topKAlls   atomic.Uint64
	streamAlls atomic.Uint64
}

// New returns an empty Federation. Attach networks with AttachTree /
// AttachIndex (or build one from a directory with Discover).
func New(opts Options) *Federation {
	f := &Federation{
		opts:     opts,
		res:      engine.NewResidencyGroupBytes(opts.MaxResidentShards, opts.MaxResidentBytes),
		networks: make(map[string]*Network),
	}
	if opts.CacheSize > 0 {
		f.cache = engine.NewResultCache(opts.CacheSize)
	}
	netWorkers := opts.NetworkWorkers
	if netWorkers <= 0 {
		netWorkers = runtime.GOMAXPROCS(0)
	}
	f.netSem = make(chan struct{}, netWorkers)
	return f
}

// Cache returns the shared result cache; nil when caching is disabled.
func (f *Federation) Cache() *engine.ResultCache { return f.cache }

// ResidencyGroup returns the shared residency group enforcing the global
// budget.
func (f *Federation) ResidencyGroup() *engine.ResidencyGroup { return f.res }

// validateName rejects names that cannot serve as a cache namespace or a URL
// path segment.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("federation: empty network name")
	}
	if name == "." || name == ".." {
		return fmt.Errorf("federation: invalid network name %q", name)
	}
	if strings.ContainsAny(name, "/\\ \t\n\r") {
		return fmt.Errorf("federation: network name %q contains a separator or whitespace", name)
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("federation: network name %q contains a control character", name)
		}
	}
	return nil
}

// engineOptions is the engine configuration of a member network: the
// federation's per-engine knobs plus the shared cache (namespaced by the
// network name) and the shared residency group.
func (f *Federation) engineOptions(name string) engine.Options {
	return engine.Options{
		Workers:         f.opts.Workers,
		PrefetchWorkers: f.opts.PrefetchWorkers,
		DisablePlanner:  f.opts.DisablePlanner,
		SharedCache:     f.cache,
		CacheNamespace:  name,
		SharedResidency: f.res,
		Recorder:        f.opts.Recorder,
	}
}

// attach registers a built engine under name.
func (f *Federation) attach(name string, eng *engine.Engine, opts NetworkOptions) error {
	if err := validateName(name); err != nil {
		return err
	}
	padDictionary(opts)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.networks[name]; dup {
		return fmt.Errorf("federation: network %q is already attached", name)
	}
	f.networks[name] = &Network{name: name, eng: eng, opts: opts}
	return nil
}

// AttachTree attaches an eager network serving a fully resident TC-Tree. The
// network shares the federation's result cache; having no lazy shards, it
// consumes none of the residency budget.
func (f *Federation) AttachTree(name string, tree *tctree.Tree, opts NetworkOptions) error {
	if err := validateName(name); err != nil {
		return err
	}
	eng, err := engine.New(tree, f.engineOptions(name))
	if err != nil {
		return fmt.Errorf("federation: network %q: %w", name, err)
	}
	return f.attach(name, eng, opts)
}

// AttachIndex attaches a lazy network serving a sharded on-disk index: its
// shards load on first touch and stay resident only within the federation's
// shared budget.
func (f *Federation) AttachIndex(name string, idx *tctree.ShardedIndex, opts NetworkOptions) error {
	if err := validateName(name); err != nil {
		return err
	}
	eng, err := engine.NewLazy(idx, f.engineOptions(name))
	if err != nil {
		return fmt.Errorf("federation: network %q: %w", name, err)
	}
	return f.attach(name, eng, opts)
}

// Detach removes the network and releases its share of the global resources:
// its cached answers are purged from the shared cache and its resident
// shards are evicted, returning their budget to the remaining tenants. Other
// networks' cache entries and resident shards are untouched — detaching is
// the network-granularity analogue of ReloadShard's targeted invalidation.
func (f *Federation) Detach(name string) error {
	f.mu.Lock()
	n, ok := f.networks[name]
	if ok {
		delete(f.networks, name)
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("federation: no network %q", name)
	}
	n.eng.Release()
	return nil
}

// ApplyDelta routes a network delta to the named tenant (see
// Network.ApplyDelta): only that tenant's shards are rebuilt and only its
// cache namespace is purged.
func (f *Federation) ApplyDelta(name string, d *delta.Delta) (*engine.DeltaResult, error) {
	n, ok := f.Network(name)
	if !ok {
		return nil, fmt.Errorf("federation: no network %q", name)
	}
	return n.ApplyDelta(d)
}

// Network returns the named network.
func (f *Federation) Network(name string) (*Network, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, ok := f.networks[name]
	return n, ok
}

// Names returns the attached network names in ascending order.
func (f *Federation) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.networks))
	for name := range f.networks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NumNetworks returns the number of attached networks.
func (f *Federation) NumNetworks() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.networks)
}

// PatternResolver maps a cross-network query pattern onto one network's item
// space. Item identifiers are per-network (each dictionary interns its own
// names), so a federated pattern query resolves the pattern once per tenant:
// return nil for "every item" (query by alpha) and an empty non-nil itemset
// for "nothing resolves here" (the network answers nothing).
type PatternResolver func(*Network) itemset.Itemset

// constant returns a resolver handing every network the same pattern — the
// shared-item-space case.
func constant(q itemset.Itemset) PatternResolver {
	return func(*Network) itemset.Itemset { return q }
}

// networkTask is one network of a cross-network schedule with its resolved
// per-network pattern.
type networkTask struct {
	net *Network
	// q is resolve(net), computed once: it serves the cost estimate, the
	// query execution and the caller's response rendering.
	q itemset.Itemset
}

// snapshot returns the attached networks, each with its resolved pattern,
// ordered by descending planner cost estimate for (task.q, alphaQ) — the
// cross-network schedule. Ties break on the name so the schedule is
// deterministic.
func (f *Federation) snapshot(resolve PatternResolver, alphaQ float64) []networkTask {
	f.mu.RLock()
	tasks := make([]networkTask, 0, len(f.networks))
	for _, n := range f.networks {
		tasks = append(tasks, networkTask{net: n, q: resolve(n)})
	}
	f.mu.RUnlock()
	costs := make(map[*Network]float64, len(tasks))
	for _, t := range tasks {
		costs[t.net] = t.net.eng.EstimateCost(t.q, alphaQ)
	}
	sort.Slice(tasks, func(i, j int) bool {
		if costs[tasks[i].net] != costs[tasks[j].net] {
			return costs[tasks[i].net] > costs[tasks[j].net]
		}
		return tasks[i].net.name < tasks[j].net.name
	})
	return tasks
}

// forEach runs fn once per attached network on the bounded network pool,
// admitting networks in the cost-ordered schedule (most expensive first, so
// the straggler tenant overlaps the cheap tail instead of serializing
// behind it). The pool slot is acquired before the goroutine is spawned —
// goroutine start order is otherwise unspecified, which would let a cheap
// tail task be admitted ahead of the straggler. It returns the tasks in
// schedule order after every fn returned.
func (f *Federation) forEach(resolve PatternResolver, alphaQ float64, fn func(t networkTask)) []networkTask {
	tasks := f.snapshot(resolve, alphaQ)
	var wg sync.WaitGroup
	for _, t := range tasks {
		f.netSem <- struct{}{}
		wg.Add(1)
		go func(t networkTask) {
			defer wg.Done()
			defer func() { <-f.netSem }()
			fn(t)
		}(t)
	}
	wg.Wait()
	return tasks
}

// NetworkResult is one network's answer to a cross-network query.
type NetworkResult struct {
	// Network is the tenant's name.
	Network string
	// Pattern is the query pattern as resolved into this network's item
	// space (nil = every item), so callers can render the answer without
	// re-resolving.
	Pattern itemset.Itemset
	// Result is the network's answer; nil when Err is set.
	Result *tctree.QueryResult
	// Err is the network's failure (lazy shard-load error), if any.
	Err error
}

// QueryAll answers (q, alphaQ) against every attached network. Networks are
// queried concurrently (bounded by Options.NetworkWorkers), scheduled
// most-expensive-first by the per-network planner estimates; each network's
// own planner, cache namespace and worker pool serve its share exactly as a
// direct Engine.Query would, so per-network answers match standalone
// engines. Results are returned in ascending network-name order; the error
// joins every per-network failure, annotated with its network.
func (f *Federation) QueryAll(q itemset.Itemset, alphaQ float64) ([]NetworkResult, error) {
	return f.QueryAllFuncContext(context.Background(), constant(q), alphaQ)
}

// QueryAllContext is QueryAll carrying a context: the request correlation ID
// it carries (obs.WithRequestID) reaches every member engine's recorder, so
// one federated query's per-network observations share one ID.
func (f *Federation) QueryAllContext(ctx context.Context, q itemset.Itemset, alphaQ float64) ([]NetworkResult, error) {
	return f.QueryAllFuncContext(ctx, constant(q), alphaQ)
}

// QueryAllFunc is QueryAll with a per-network pattern: resolve maps the
// query pattern into each tenant's item space (dictionaries intern
// independently, so the same theme has different item identifiers per
// network).
func (f *Federation) QueryAllFunc(resolve PatternResolver, alphaQ float64) ([]NetworkResult, error) {
	return f.QueryAllFuncContext(context.Background(), resolve, alphaQ)
}

// QueryAllFuncContext is QueryAllFunc carrying a context; see
// QueryAllContext.
func (f *Federation) QueryAllFuncContext(ctx context.Context, resolve PatternResolver, alphaQ float64) ([]NetworkResult, error) {
	f.queryAlls.Add(1)
	out := make([]NetworkResult, 0, f.NumNetworks())
	results := make(map[*Network]NetworkResult)
	var mu sync.Mutex
	tasks := f.forEach(resolve, alphaQ, func(t networkTask) {
		res, err := t.net.eng.QueryContext(ctx, t.q, alphaQ)
		mu.Lock()
		results[t.net] = NetworkResult{Network: t.net.name, Pattern: t.q, Result: res, Err: err}
		mu.Unlock()
	})
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].net.name < tasks[j].net.name })
	var errs []error
	for _, t := range tasks {
		r := results[t.net]
		if r.Err != nil {
			r.Err = fmt.Errorf("network %q: %w", t.net.name, r.Err)
			errs = append(errs, r.Err)
		}
		out = append(out, r)
	}
	return out, errors.Join(errs...)
}

// NetworkRanked is one community of a cross-network top-k answer: the
// engine's ranked community annotated with the network it came from.
type NetworkRanked struct {
	// Network is the name of the network the community belongs to.
	Network string
	engine.RankedCommunity
}

// TopKAll answers (q, alphaQ) against every attached network and merges the
// per-network rankings into one list ordered exactly like Engine.TopK —
// cohesion descending, then size, then the deterministic pattern/vertex
// tiebreak — with the network name as the final tiebreak, so the merge is
// deterministic across runs. k <= 0 means every community. The global top k
// is exact: it can only contain communities from some network's own top k,
// which is what each tenant computes. Networks that fail contribute nothing;
// the error joins their failures.
func (f *Federation) TopKAll(q itemset.Itemset, alphaQ float64, k int) ([]NetworkRanked, error) {
	return f.TopKAllFuncContext(context.Background(), constant(q), alphaQ, k)
}

// TopKAllContext is TopKAll carrying a context; see QueryAllContext.
func (f *Federation) TopKAllContext(ctx context.Context, q itemset.Itemset, alphaQ float64, k int) ([]NetworkRanked, error) {
	return f.TopKAllFuncContext(ctx, constant(q), alphaQ, k)
}

// TopKAllFunc is TopKAll with a per-network pattern resolver, like
// QueryAllFunc.
func (f *Federation) TopKAllFunc(resolve PatternResolver, alphaQ float64, k int) ([]NetworkRanked, error) {
	return f.TopKAllFuncContext(context.Background(), resolve, alphaQ, k)
}

// TopKAllFuncContext is TopKAllFunc carrying a context; see QueryAllContext.
func (f *Federation) TopKAllFuncContext(ctx context.Context, resolve PatternResolver, alphaQ float64, k int) ([]NetworkRanked, error) {
	f.topKAlls.Add(1)
	var mu sync.Mutex
	var merged []NetworkRanked
	var errs []error
	f.forEach(resolve, alphaQ, func(t networkTask) {
		_, ranked, err := t.net.eng.TopKWithResultContext(ctx, t.q, alphaQ, k)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("network %q: %w", t.net.name, err))
			return
		}
		for _, rc := range ranked {
			merged = append(merged, NetworkRanked{Network: t.net.name, RankedCommunity: rc})
		}
	})
	sort.Slice(merged, func(i, j int) bool {
		a, b := &merged[i], &merged[j]
		if engine.LessRanked(&a.RankedCommunity, &b.RankedCommunity) {
			return true
		}
		if engine.LessRanked(&b.RankedCommunity, &a.RankedCommunity) {
			return false
		}
		return a.Network < b.Network
	})
	if k > 0 && k < len(merged) {
		merged = merged[:k]
	}
	return merged, errors.Join(errs...)
}
