package federation

import (
	"context"
	"sync"
	"testing"

	"themecomm/internal/obs"
)

// sliceRecorder collects observations; the federation injects it into every
// member engine.
type sliceRecorder struct {
	mu  sync.Mutex
	obs []obs.QueryObservation
	ids []string
}

func (r *sliceRecorder) RecordQuery(ctx context.Context, o obs.QueryObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = append(r.obs, o)
	r.ids = append(r.ids, obs.RequestIDFrom(ctx))
}

// TestRecorderPassThrough checks Options.Recorder reaches every member
// engine: one QueryAllContext produces one observation per network, each
// labeled with its tenant name and carrying the caller's request ID.
func TestRecorderPassThrough(t *testing.T) {
	rec := &sliceRecorder{}
	f, _ := newTestFederation(t, Options{Recorder: rec})
	ctx := obs.WithRequestID(context.Background(), "fed-req-1")
	if _, err := f.QueryAllContext(ctx, nil, 0.2); err != nil {
		t.Fatalf("QueryAllContext: %v", err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.obs) != f.NumNetworks() {
		t.Fatalf("observations = %d, want one per network (%d)", len(rec.obs), f.NumNetworks())
	}
	seen := make(map[string]bool)
	for i, o := range rec.obs {
		if o.Network == "" {
			t.Fatalf("observation %d has no network label: %+v", i, o)
		}
		seen[o.Network] = true
		if rec.ids[i] != "fed-req-1" {
			t.Fatalf("observation %d carries request ID %q, want fed-req-1", i, rec.ids[i])
		}
	}
	if len(seen) != f.NumNetworks() {
		t.Fatalf("networks observed = %v, want all %d tenants", seen, f.NumNetworks())
	}
}
