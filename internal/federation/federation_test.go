package federation

import (
	"math/rand"
	"strings"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/engine"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// buildTestTree builds a small TC-Tree over a dense random database network,
// the same construction the engine tests use.
func buildTestTree(t *testing.T, seed int64) *tctree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := dbnet.New(16)
	for i := 0; i < 40; i++ {
		a, b := graph.VertexID(rng.Intn(16)), graph.VertexID(rng.Intn(16))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < 16; v++ {
		for i := 0; i < 1+rng.Intn(4); i++ {
			l := 1 + rng.Intn(3)
			tx := make([]itemset.Item, l)
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(5))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if tree.NumNodes() == 0 {
		t.Fatalf("seed %d built an empty tree; pick another", seed)
	}
	return tree
}

// testSeeds are the per-network tree seeds; three networks everywhere.
var testSeeds = []int64{11, 13, 7}

var testNames = []string{"bk", "gw", "aminer"}

// shardTestTree persists tree in the sharded format and opens the index.
func shardTestTree(t *testing.T, tree *tctree.Tree) *tctree.ShardedIndex {
	t.Helper()
	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	return idx
}

// newTestFederation attaches the three test networks lazily and returns the
// federation alongside the backing trees by name.
func newTestFederation(t *testing.T, opts Options) (*Federation, map[string]*tctree.Tree) {
	t.Helper()
	f := New(opts)
	trees := make(map[string]*tctree.Tree, len(testSeeds))
	for i, seed := range testSeeds {
		tree := buildTestTree(t, seed)
		trees[testNames[i]] = tree
		if err := f.AttachIndex(testNames[i], shardTestTree(t, tree), NetworkOptions{}); err != nil {
			t.Fatalf("AttachIndex(%s): %v", testNames[i], err)
		}
	}
	return f, trees
}

func assertSameAnswer(t *testing.T, network string, got, want *tctree.QueryResult) {
	t.Helper()
	if got == nil {
		t.Fatalf("network %s: nil answer", network)
	}
	if got.RetrievedNodes != want.RetrievedNodes || got.VisitedNodes != want.VisitedNodes {
		t.Fatalf("network %s: retrieved/visited = %d/%d, want %d/%d",
			network, got.RetrievedNodes, got.VisitedNodes, want.RetrievedNodes, want.VisitedNodes)
	}
	gotSet := make(map[itemset.Key]graph.EdgeSet, len(got.Trusses))
	for _, tr := range got.Trusses {
		gotSet[tr.Pattern.Key()] = tr.Edges
	}
	if len(gotSet) != len(want.Trusses) {
		t.Fatalf("network %s: %d distinct patterns, want %d", network, len(gotSet), len(want.Trusses))
	}
	for _, tr := range want.Trusses {
		if edges, ok := gotSet[tr.Pattern.Key()]; !ok || !edges.Equal(tr.Edges) {
			t.Fatalf("network %s: pattern %v missing or differs", network, tr.Pattern)
		}
	}
}

// TestFederatedMatchesStandalone is the parity test: a federated engine's
// per-network answers — direct or through QueryAll — must equal a standalone
// engine over the same index, for queries by alpha and by pattern.
func TestFederatedMatchesStandalone(t *testing.T) {
	f, trees := newTestFederation(t, Options{CacheSize: 32, MaxResidentShards: 4})
	alphas := []float64{0, 0.2, 0.5}
	for _, alpha := range alphas {
		results, err := f.QueryAll(nil, alpha)
		if err != nil {
			t.Fatalf("QueryAll(alpha=%g): %v", alpha, err)
		}
		if len(results) != len(trees) {
			t.Fatalf("QueryAll returned %d networks, want %d", len(results), len(trees))
		}
		for i := 1; i < len(results); i++ {
			if results[i-1].Network >= results[i].Network {
				t.Fatalf("QueryAll results not in ascending network order: %s before %s",
					results[i-1].Network, results[i].Network)
			}
		}
		for _, r := range results {
			assertSameAnswer(t, r.Network, r.Result, trees[r.Network].QueryByAlpha(alpha))
		}
	}
	// Per-network direct queries through the federated engine, against both
	// the backing tree and a fresh standalone engine.
	for name, tree := range trees {
		n, ok := f.Network(name)
		if !ok {
			t.Fatalf("network %q not attached", name)
		}
		standalone, err := engine.New(tree, engine.Options{})
		if err != nil {
			t.Fatalf("standalone engine: %v", err)
		}
		q := itemset.New(tree.Root().Children[0].Item)
		got, err := n.Engine().Query(q, 0.1)
		if err != nil {
			t.Fatalf("federated query: %v", err)
		}
		want, err := standalone.Query(q, 0.1)
		if err != nil {
			t.Fatalf("standalone query: %v", err)
		}
		assertSameAnswer(t, name, got, want)
	}
}

// TestTopKAllDeterministicMerge checks the cross-network top-k: over three
// networks the merge is identical run to run, globally ordered by the
// engine's ranking with the network name as final tiebreak, and every entry
// comes from its own network's top k.
func TestTopKAllDeterministicMerge(t *testing.T) {
	f, _ := newTestFederation(t, Options{CacheSize: 32})
	const k = 12
	first, err := f.TopKAll(nil, 0, k)
	if err != nil {
		t.Fatalf("TopKAll: %v", err)
	}
	if len(first) == 0 {
		t.Fatalf("TopKAll returned nothing")
	}
	if len(first) > k {
		t.Fatalf("TopKAll returned %d communities, want ≤ %d", len(first), k)
	}
	networks := make(map[string]bool)
	for _, rc := range first {
		networks[rc.Network] = true
	}
	if len(networks) < 2 {
		t.Fatalf("top %d communities come from %d network(s); want a cross-network merge", k, len(networks))
	}
	// Global order: non-ascending under the engine ranking; equal-ranked runs
	// ordered by network name.
	for i := 1; i < len(first); i++ {
		a, b := &first[i-1], &first[i]
		if engine.LessRanked(&a.RankedCommunity, &b.RankedCommunity) {
			continue // strictly ordered
		}
		if engine.LessRanked(&b.RankedCommunity, &a.RankedCommunity) {
			t.Fatalf("merge out of order at %d", i)
		}
		if a.Network > b.Network {
			t.Fatalf("equal-ranked communities out of network order at %d: %s after %s", i, b.Network, a.Network)
		}
	}
	// Determinism: repeated runs (now cache-warm) produce the identical merge.
	for rep := 0; rep < 3; rep++ {
		again, err := f.TopKAll(nil, 0, k)
		if err != nil {
			t.Fatalf("TopKAll rep %d: %v", rep, err)
		}
		if len(again) != len(first) {
			t.Fatalf("rep %d returned %d communities, first run %d", rep, len(again), len(first))
		}
		for i := range first {
			if again[i].Network != first[i].Network ||
				!again[i].Community.Pattern.Equal(first[i].Community.Pattern) ||
				again[i].Cohesion != first[i].Cohesion ||
				!again[i].Community.Edges.Equal(first[i].Community.Edges) {
				t.Fatalf("rep %d differs from first run at %d", rep, i)
			}
		}
	}
	// Membership: every merged entry appears in its own network's top k.
	perNetwork := make(map[string][]engine.RankedCommunity)
	for _, name := range f.Names() {
		n, _ := f.Network(name)
		ranked, err := n.Engine().TopK(nil, 0, k)
		if err != nil {
			t.Fatalf("TopK(%s): %v", name, err)
		}
		perNetwork[name] = ranked
	}
	for i, rc := range first {
		found := false
		for _, own := range perNetwork[rc.Network] {
			if own.Community.Pattern.Equal(rc.Community.Pattern) && own.Community.Edges.Equal(rc.Community.Edges) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("merged entry %d is not in network %s's own top %d", i, rc.Network, k)
		}
	}
}

// TestSharedBudgetAcrossNetworks is the eviction acceptance test: with a
// global budget of 2, hammering one hot network across all its shards can
// never push the federation-wide resident count past 2, and the other
// tenants still answer correctly afterwards.
func TestSharedBudgetAcrossNetworks(t *testing.T) {
	f, trees := newTestFederation(t, Options{MaxResidentShards: 2})
	hot := testNames[0]
	hotNet, _ := f.Network(hot)
	if hotNet.Engine().NumShards() <= 2 {
		t.Fatalf("hot network has %d shards; need more than the budget", hotNet.Engine().NumShards())
	}
	for rep := 0; rep < 3; rep++ {
		for _, c := range trees[hot].Root().Children {
			q := itemset.New(c.Item)
			got, err := hotNet.Engine().Query(q, 0)
			if err != nil {
				t.Fatalf("hot query: %v", err)
			}
			assertSameAnswer(t, hot, got, trees[hot].Query(q, 0))
			if got := f.ResidencyGroup().Resident(); got > 2 {
				t.Fatalf("hot tenant pushed global residency to %d, budget is 2", got)
			}
		}
	}
	if evictions := f.Stats().ShardEvictions; evictions == 0 {
		t.Fatalf("hot tenant cycling %d shards under budget 2 saw no evictions", hotNet.Engine().NumShards())
	}
	// The cold tenants still answer, and the budget still holds.
	for _, name := range testNames[1:] {
		n, _ := f.Network(name)
		got, err := n.Engine().QueryByAlpha(0)
		if err != nil {
			t.Fatalf("cold query(%s): %v", name, err)
		}
		assertSameAnswer(t, name, got, trees[name].QueryByAlpha(0))
		if got := f.ResidencyGroup().Resident(); got > 2 {
			t.Fatalf("global residency %d exceeds budget 2", got)
		}
	}
	stats := f.Stats()
	if stats.ResidentShards > 2 {
		t.Fatalf("federation stats report %d resident shards, budget is 2", stats.ResidentShards)
	}
	if stats.Networks != 3 || len(stats.PerNetwork) != 3 {
		t.Fatalf("stats cover %d networks (%d entries), want 3", stats.Networks, len(stats.PerNetwork))
	}
}

// TestDetachReleasesSharedResources checks attach/detach at runtime: a
// detached network's cache entries and resident shards are released, other
// tenants keep theirs, and the name becomes attachable again.
func TestDetachReleasesSharedResources(t *testing.T) {
	f, trees := newTestFederation(t, Options{CacheSize: 32, MaxResidentShards: 8})
	for _, name := range testNames {
		n, _ := f.Network(name)
		if _, err := n.Engine().QueryByAlpha(0); err != nil {
			t.Fatalf("warm-up query(%s): %v", name, err)
		}
		// Join the warm-up's background prefetches: they keep loading after
		// the query returns, and the residency arithmetic below needs the
		// counters to stand still.
		n.Engine().Quiesce()
	}
	if got := f.Cache().Len(); got != 3 {
		t.Fatalf("cache holds %d entries after warm-up, want 3", got)
	}
	residentBefore := f.ResidencyGroup().Resident()
	victim := testNames[0]
	victimNet, _ := f.Network(victim)
	victimResident := victimNet.Engine().Stats().ResidentShards
	if err := f.Detach(victim); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	if _, ok := f.Network(victim); ok {
		t.Fatalf("detached network still resolves")
	}
	if got := f.Cache().Len(); got != 2 {
		t.Fatalf("cache holds %d entries after detach, want 2 (victim purged)", got)
	}
	if got := f.ResidencyGroup().Resident(); got != residentBefore-victimResident {
		t.Fatalf("detach released %d resident shards, want %d", residentBefore-got, victimResident)
	}
	// Surviving tenants answer from their intact cache entries.
	survivor, _ := f.Network(testNames[1])
	hitsBefore, _, _ := f.Cache().Counters()
	if _, err := survivor.Engine().QueryByAlpha(0); err != nil {
		t.Fatalf("survivor query: %v", err)
	}
	if hits, _, _ := f.Cache().Counters(); hits != hitsBefore+1 {
		t.Fatalf("survivor lost its cache entry to the detach")
	}
	// The name is reusable; detaching an unknown name fails.
	if err := f.Detach(victim); err == nil {
		t.Fatalf("double detach should fail")
	}
	if err := f.AttachTree(victim, trees[victim], NetworkOptions{}); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if err := f.AttachTree(victim, trees[victim], NetworkOptions{}); err == nil {
		t.Fatalf("duplicate attach should fail")
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a b", "a\x1fb"} {
		if err := f.AttachTree(bad, trees[victim], NetworkOptions{}); err == nil {
			t.Fatalf("name %q should be rejected", bad)
		}
	}
}

// TestDiscover writes a networks directory holding two sharded indexes, one
// monolithic tree and one sibling .dbnet dictionary file, and checks both
// the discovery listing and the federation Discover builds from it.
func TestDiscover(t *testing.T) {
	dir := t.TempDir()
	treeA, treeB, treeC := buildTestTree(t, 11), buildTestTree(t, 13), buildTestTree(t, 7)
	if _, err := treeA.WriteSharded(dir + "/alpha.index"); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	if _, err := treeB.WriteSharded(dir + "/beta.index"); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	if err := treeC.WriteFile(dir + "/gamma.tctree"); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// A dictionary for alpha: name every item of its universe.
	dict := itemset.NewDictionary()
	for i := 0; i < 8; i++ {
		dict.Intern(strings.Repeat("x", i+1))
	}
	if err := dbnet.WriteFile(dir+"/alpha.dbnet", dbnet.New(1), dict); err != nil {
		t.Fatalf("WriteFile(dbnet): %v", err)
	}

	discovered, err := DiscoverNetworks(dir)
	if err != nil {
		t.Fatalf("DiscoverNetworks: %v", err)
	}
	if len(discovered) != 3 {
		t.Fatalf("discovered %d networks, want 3: %+v", len(discovered), discovered)
	}
	wantNames := []string{"alpha", "beta", "gamma"}
	for i, d := range discovered {
		if d.Name != wantNames[i] {
			t.Fatalf("discovered[%d] = %q, want %q", i, d.Name, wantNames[i])
		}
	}
	if !discovered[0].Sharded || discovered[2].Sharded {
		t.Fatalf("sharded flags wrong: %+v", discovered)
	}
	if discovered[0].NetworkPath == "" || discovered[1].NetworkPath != "" {
		t.Fatalf("dictionary paths wrong: %+v", discovered)
	}

	f, err := Discover(dir, Options{CacheSize: 16, MaxResidentShards: 4})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if got := f.Names(); len(got) != 3 || got[0] != "alpha" || got[2] != "gamma" {
		t.Fatalf("federation networks = %v", got)
	}
	alphaNet, _ := f.Network("alpha")
	if !alphaNet.Engine().Lazy() || alphaNet.Dictionary() == nil {
		t.Fatalf("alpha should be lazy with a dictionary")
	}
	gammaNet, _ := f.Network("gamma")
	if gammaNet.Engine().Lazy() || gammaNet.Dictionary() != nil {
		t.Fatalf("gamma should be eager without a dictionary")
	}
	results, err := f.QueryAll(nil, 0)
	if err != nil {
		t.Fatalf("QueryAll: %v", err)
	}
	trees := map[string]*tctree.Tree{"alpha": treeA, "beta": treeB, "gamma": treeC}
	for _, r := range results {
		assertSameAnswer(t, r.Network, r.Result, trees[r.Network].QueryByAlpha(0))
	}

	// An empty directory is an error, not an empty federation.
	if _, err := DiscoverNetworks(t.TempDir()); err == nil {
		t.Fatalf("empty directory should fail discovery")
	}
}
