package federation

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"themecomm/internal/dbnet"
	"themecomm/internal/tctree"
)

// DiscoveredNetwork is one indexed network found inside a networks
// directory.
type DiscoveredNetwork struct {
	// Name is the network name derived from the index file or directory
	// name: "bk.index/" and "bk.tctree" both yield "bk".
	Name string
	// IndexPath is the index to serve: a sharded index directory (served
	// lazily) or a monolithic .tctree file (served eagerly).
	IndexPath string
	// NetworkPath is the optional sibling "<name>.dbnet" database-network
	// file; when present its dictionary resolves item names for the network.
	// Empty when there is none.
	NetworkPath string
	// Sharded reports whether IndexPath is a sharded index directory.
	Sharded bool
}

// DiscoverNetworks scans dir for indexed networks: every sharded index
// directory (containing an index.manifest) and every *.tctree file directly
// inside dir becomes one network, named after its base name with the
// ".index" / ".tctree" suffix stripped. A sibling "<name>.dbnet" file, when
// present, is recorded as the network's dictionary source. Networks are
// returned in ascending name order; two entries resolving to the same name
// (e.g. "bk.index/" next to "bk.tctree") is an error.
func DiscoverNetworks(dir string) ([]DiscoveredNetwork, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]DiscoveredNetwork)
	for _, entry := range entries {
		path := filepath.Join(dir, entry.Name())
		var d DiscoveredNetwork
		switch {
		case entry.IsDir() && tctree.IsSharded(path):
			d = DiscoveredNetwork{
				Name:      strings.TrimSuffix(entry.Name(), ".index"),
				IndexPath: path,
				Sharded:   true,
			}
		case !entry.IsDir() && strings.HasSuffix(entry.Name(), ".tctree"):
			d = DiscoveredNetwork{
				Name:      strings.TrimSuffix(entry.Name(), ".tctree"),
				IndexPath: path,
			}
		default:
			continue
		}
		if prev, dup := byName[d.Name]; dup {
			return nil, fmt.Errorf("federation: %s and %s both resolve to network %q", prev.IndexPath, d.IndexPath, d.Name)
		}
		if netPath := filepath.Join(dir, d.Name+".dbnet"); fileExists(netPath) {
			d.NetworkPath = netPath
		}
		byName[d.Name] = d
	}
	if len(byName) == 0 {
		return nil, fmt.Errorf("federation: no indexed networks in %s (expected sharded index directories or .tctree files)", dir)
	}
	out := make([]DiscoveredNetwork, 0, len(byName))
	for _, d := range byName {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Mode().IsRegular()
}

// Discover builds a Federation from every network DiscoverNetworks finds in
// dir: sharded indexes attach lazily, .tctree files eagerly, and each
// network with a sibling .dbnet file gains its item dictionary.
func Discover(dir string, opts Options) (*Federation, error) {
	discovered, err := DiscoverNetworks(dir)
	if err != nil {
		return nil, err
	}
	f := New(opts)
	for _, d := range discovered {
		var nopts NetworkOptions
		if d.NetworkPath != "" {
			nw, dict, err := dbnet.ReadFile(d.NetworkPath)
			if err != nil {
				return nil, fmt.Errorf("federation: network %q: %w", d.Name, err)
			}
			nopts.Dictionary = dict
			if d.Sharded {
				// Keep the parsed network: it is what incremental
				// maintenance (ApplyDelta) rebuilds shards from, and
				// NetworkPath is where the updated network is written back.
				// Eager .tctree tenants stay read-only — their index file
				// cannot be updated in place, so applying deltas in memory
				// while rewriting the .dbnet would desynchronize the two
				// across a restart.
				nopts.Network = nw
				nopts.NetworkPath = d.NetworkPath
			}
		}
		if d.Sharded {
			idx, err := tctree.OpenSharded(d.IndexPath)
			if err != nil {
				return nil, fmt.Errorf("federation: network %q: %w", d.Name, err)
			}
			if err := f.AttachIndex(d.Name, idx, nopts); err != nil {
				return nil, err
			}
			continue
		}
		tree, err := tctree.ReadFile(d.IndexPath)
		if err != nil {
			return nil, fmt.Errorf("federation: network %q: %w", d.Name, err)
		}
		if err := f.AttachTree(d.Name, tree, nopts); err != nil {
			return nil, err
		}
	}
	return f, nil
}
