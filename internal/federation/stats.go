package federation

import "themecomm/internal/engine"

// NetworkStats is one network's engine counters within a federation
// snapshot.
type NetworkStats struct {
	// Network is the tenant's name.
	Network string `json:"network"`
	engine.Stats
}

// Stats is a snapshot of the federation: the shared-resource state, the
// cross-tenant aggregates, and every member's own engine counters.
type Stats struct {
	// Networks is the number of attached networks.
	Networks int `json:"networks"`
	// MaxResidentShards and MaxResidentBytes are the shared residency
	// budgets (0 = unlimited); ResidentShards is the number of lazily loaded
	// shards resident across every network right now and ResidentBytes their
	// summed memory charge (mapped file size for TCBIN shards, serialized
	// payload size for gob shards).
	MaxResidentShards int   `json:"maxResidentShards,omitempty"`
	MaxResidentBytes  int64 `json:"maxResidentBytes,omitempty"`
	ResidentShards    int   `json:"residentShards"`
	ResidentBytes     int64 `json:"residentBytes,omitempty"`
	// Shards, Queries, Batches, TopKQueries, Explains, LazyLoads,
	// ShardEvictions and ShardsSkipped aggregate the member engines'
	// counters across every network.
	Shards         int    `json:"shards"`
	Queries        uint64 `json:"queries"`
	Batches        uint64 `json:"batches"`
	TopKQueries    uint64 `json:"topKQueries"`
	Explains       uint64 `json:"explains,omitempty"`
	LazyLoads      uint64 `json:"lazyLoads,omitempty"`
	ShardEvictions uint64 `json:"shardEvictions,omitempty"`
	ShardsSkipped  uint64 `json:"shardsSkipped"`
	// Streams and ShardsShortCircuited aggregate the members' streaming
	// counters: pull-based streams opened, and scheduled shards top-k early
	// termination never opened.
	Streams              uint64 `json:"streams,omitempty"`
	ShardsShortCircuited uint64 `json:"shardsShortCircuited,omitempty"`
	// QueryAlls and TopKAlls count the federation's cross-network calls;
	// StreamAlls counts the streaming variants (StreamQueryAll,
	// StreamTopKAll).
	QueryAlls  uint64 `json:"queryAlls"`
	TopKAlls   uint64 `json:"topKAlls"`
	StreamAlls uint64 `json:"streamAlls,omitempty"`
	// Cache is the shared result cache's global state.
	Cache engine.CacheStats `json:"cache"`
	// PerNetwork lists every attached network in ascending name order with
	// its full engine counters.
	PerNetwork []NetworkStats `json:"perNetwork"`
}

// Stats returns a snapshot of the federation's shared resources, aggregates
// and per-network engine counters.
func (f *Federation) Stats() Stats {
	s := Stats{
		MaxResidentShards: f.res.MaxResident(),
		MaxResidentBytes:  f.res.MaxResidentBytes(),
		ResidentShards:    f.res.Resident(),
		ResidentBytes:     f.res.ResidentBytes(),
		QueryAlls:         f.queryAlls.Load(),
		TopKAlls:          f.topKAlls.Load(),
		StreamAlls:        f.streamAlls.Load(),
	}
	for _, name := range f.Names() {
		n, ok := f.Network(name)
		if !ok {
			continue
		}
		es := n.eng.Stats()
		s.Networks++
		s.Shards += es.Shards
		s.Queries += es.Queries
		s.Batches += es.Batches
		s.TopKQueries += es.TopKQueries
		s.Explains += es.Explains
		s.LazyLoads += es.LazyLoads
		s.ShardEvictions += es.ShardEvictions
		s.ShardsSkipped += es.ShardsSkipped
		s.Streams += es.Streams
		s.ShardsShortCircuited += es.ShardsShortCircuited
		s.PerNetwork = append(s.PerNetwork, NetworkStats{Network: name, Stats: es})
	}
	if f.cache != nil {
		s.Cache.Enabled = true
		s.Cache.Shared = true
		s.Cache.Capacity = f.cache.Capacity()
		s.Cache.Length = f.cache.Len()
		s.Cache.Hits, s.Cache.Misses, s.Cache.Evictions = f.cache.Counters()
	}
	return s
}
