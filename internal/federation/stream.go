package federation

import (
	"context"
	"fmt"
	"sort"

	"themecomm/internal/engine"
	"themecomm/internal/itemset"
)

// This file is the federation's streaming layer: cross-network answers
// delivered through pull-based cursors instead of materialized lists, built
// on engine.StreamQuery / engine.StreamTopK so each member's shards open
// only as the merged stream is pulled.
//
//   - StreamTopKAll merges the members' ranked streams through a heap keyed
//     by (engine.LessRanked, network name) — exactly TopKAll's order — and
//     pulls each member at most once per emitted community, so per-network
//     top-k early termination (shards short-circuited by their α* bound)
//     carries through to the federated call;
//   - StreamQueryAll drains the members sequentially in ascending name
//     order, matching QueryAll's response order, with at most one member
//     stream open at a time.
//
// Unlike the materializing calls, which keep a failing network's error
// aside and answer from the rest, a member failure mid-stream poisons the
// merged stream: communities already emitted cannot be recalled, so
// continuing without the failed member would silently deliver an answer no
// materializing call could produce.

// netCursor is one member's stream with its buffered head.
type netCursor struct {
	name string
	st   *engine.Stream
	head *engine.RankedCommunity
}

// MergedStream is a pull-based cursor over a cross-network answer. Like
// engine.Stream it is single-goroutine and must be closed exactly once;
// Close closes every member stream (crediting their short-circuit
// accounting).
type MergedStream struct {
	ranked bool
	k      int

	heap []*netCursor // ranked mode, keyed by (head, name)
	seq  []*netCursor // plain mode, ascending name order
	// all keeps every member cursor — including those drained out of the
	// heap or never admitted (empty members) — so Close reaches them all.
	all []*netCursor

	emitted int
	err     error
	closed  bool
}

// StreamTopKAll answers (q, alphaQ, k) against every attached network as one
// merged ranked stream; see StreamTopKAllFuncContext.
func (f *Federation) StreamTopKAll(q itemset.Itemset, alphaQ float64, k int) (*MergedStream, error) {
	return f.StreamTopKAllFuncContext(context.Background(), constant(q), alphaQ, k)
}

// StreamTopKAllFuncContext opens one ranked stream per attached network
// (resolve maps the pattern into each tenant's item space) and merges them
// into a single stream ordered exactly like TopKAll: cohesion descending,
// then size, then the pattern/vertex tiebreak, then the network name.
// k <= 0 means every community. Member shards open only as the merged
// stream is pulled, so each tenant's top-k early termination still applies.
func (f *Federation) StreamTopKAllFuncContext(ctx context.Context, resolve PatternResolver, alphaQ float64, k int) (*MergedStream, error) {
	f.streamAlls.Add(1)
	ms := &MergedStream{ranked: true, k: k}
	ms.all = f.memberCursors(ctx, resolve, alphaQ, true, k)
	for _, c := range ms.all {
		// Buffer each member's head: the heap cannot order a member before
		// its first community is known. This pull opens only the shards the
		// member's own bound ordering requires for its best community.
		if err := ms.advance(c); err != nil {
			ms.Close()
			return nil, err
		}
		if c.head != nil {
			ms.heap = append(ms.heap, c)
			ms.siftUp(len(ms.heap) - 1)
		}
	}
	return ms, nil
}

// StreamQueryAll answers (q, alphaQ) against every attached network as one
// sequential stream; see StreamQueryAllFuncContext.
func (f *Federation) StreamQueryAll(q itemset.Itemset, alphaQ float64) (*MergedStream, error) {
	return f.StreamQueryAllFuncContext(context.Background(), constant(q), alphaQ)
}

// StreamQueryAllFuncContext opens one plain stream per attached network and
// concatenates them in ascending network-name order — QueryAll's response
// order — keeping at most one member's shard answer buffered at a time.
func (f *Federation) StreamQueryAllFuncContext(ctx context.Context, resolve PatternResolver, alphaQ float64) (*MergedStream, error) {
	f.streamAlls.Add(1)
	ms := &MergedStream{}
	ms.seq = f.memberCursors(ctx, resolve, alphaQ, false, 0)
	ms.all = ms.seq
	return ms, nil
}

// memberCursors opens one engine stream per attached network, returned in
// ascending name order. Opening an engine stream only plans — no shard is
// loaded or traversed until the stream is pulled.
func (f *Federation) memberCursors(ctx context.Context, resolve PatternResolver, alphaQ float64, ranked bool, k int) []*netCursor {
	f.mu.RLock()
	nets := make([]*Network, 0, len(f.networks))
	for _, n := range f.networks {
		nets = append(nets, n)
	}
	f.mu.RUnlock()
	sort.Slice(nets, func(i, j int) bool { return nets[i].name < nets[j].name })
	cursors := make([]*netCursor, 0, len(nets))
	for _, n := range nets {
		var st *engine.Stream
		var err error
		if ranked {
			st, err = n.eng.StreamTopK(ctx, resolve(n), alphaQ, k)
		} else {
			st, err = n.eng.StreamQuery(ctx, resolve(n), alphaQ)
		}
		if err != nil {
			// Cannot happen today (opening a stream only plans), but a future
			// failure mode should not crash the merge.
			continue
		}
		cursors = append(cursors, &netCursor{name: n.name, st: st})
	}
	return cursors
}

// advance pulls the cursor's next head, annotating errors with the network.
func (ms *MergedStream) advance(c *netCursor) error {
	rc, err := c.st.Next()
	if err != nil {
		return fmt.Errorf("network %q: %w", c.name, err)
	}
	c.head = rc
	return nil
}

// Next returns the next community of the merged answer, annotated with its
// network, or (nil, nil) when the stream is exhausted (ranked mode: also
// once k communities have been emitted). An error poisons the stream.
func (ms *MergedStream) Next() (*NetworkRanked, error) {
	if ms.err != nil {
		return nil, ms.err
	}
	if ms.closed {
		return nil, fmt.Errorf("federation: Next on a closed stream")
	}
	var nr *NetworkRanked
	var err error
	if ms.ranked {
		nr, err = ms.nextRanked()
	} else {
		nr, err = ms.nextPlain()
	}
	if err != nil {
		ms.err = err
		return nil, err
	}
	if nr != nil {
		ms.emitted++
	}
	return nr, nil
}

func (ms *MergedStream) nextRanked() (*NetworkRanked, error) {
	if ms.k > 0 && ms.emitted >= ms.k {
		return nil, nil
	}
	if len(ms.heap) == 0 {
		return nil, nil
	}
	top := ms.heap[0]
	out := &NetworkRanked{Network: top.name, RankedCommunity: *top.head}
	if err := ms.advance(top); err != nil {
		return nil, err
	}
	if top.head == nil {
		n := len(ms.heap) - 1
		ms.heap[0] = ms.heap[n]
		ms.heap = ms.heap[:n]
	}
	ms.siftDown(0)
	return out, nil
}

func (ms *MergedStream) nextPlain() (*NetworkRanked, error) {
	for len(ms.seq) > 0 {
		c := ms.seq[0]
		if err := ms.advance(c); err != nil {
			return nil, err
		}
		if c.head != nil {
			return &NetworkRanked{Network: c.name, RankedCommunity: *c.head}, nil
		}
		ms.seq = ms.seq[1:]
	}
	return nil, nil
}

// cursorLess orders member cursors by their buffered head under TopKAll's
// comparator: engine.LessRanked, network name as the final tiebreak.
func cursorLess(a, b *netCursor) bool {
	if engine.LessRanked(a.head, b.head) {
		return true
	}
	if engine.LessRanked(b.head, a.head) {
		return false
	}
	return a.name < b.name
}

func (ms *MergedStream) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !cursorLess(ms.heap[i], ms.heap[parent]) {
			return
		}
		ms.heap[i], ms.heap[parent] = ms.heap[parent], ms.heap[i]
		i = parent
	}
}

func (ms *MergedStream) siftDown(i int) {
	n := len(ms.heap)
	for {
		best := i
		if l := 2*i + 1; l < n && cursorLess(ms.heap[l], ms.heap[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && cursorLess(ms.heap[r], ms.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		ms.heap[i], ms.heap[best] = ms.heap[best], ms.heap[i]
		i = best
	}
}

// Err returns the error that poisoned the stream, if any.
func (ms *MergedStream) Err() error { return ms.err }

// Close closes every member stream. Idempotent; Next after Close errors.
func (ms *MergedStream) Close() {
	if ms.closed {
		return
	}
	ms.closed = true
	for _, c := range ms.all {
		c.st.Close()
	}
	ms.all, ms.heap, ms.seq = nil, nil, nil
}
