package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"themecomm/internal/obs"
	"themecomm/internal/server"
)

// maxLineBytes bounds one NDJSON line of a streaming response.
const maxLineBytes = 16 << 20

// StreamHandler receives the frames of one NDJSON streaming answer in
// order: the header, each community as the server produces it, and the
// trailer. Any nil callback skips its frame kind; a Community callback
// returning an error aborts the stream with that error.
type StreamHandler struct {
	Header    func(server.StreamHeader)
	Community func(server.StreamCommunity) error
	Trailer   func(server.StreamTrailer)
}

// Stream answers the query as an NDJSON stream, delivering each community
// to the handler as it arrives. The returned request ID correlates the
// stream with the server's logs. An in-band error line becomes an
// *APIError; a 410 means the index moved mid-stream and the query should be
// re-issued.
func (c *Client) Stream(ctx context.Context, q Query, h StreamHandler) (string, error) {
	params := q.params()
	params.Set("stream", "1")
	resp, err := c.getWithRetry(ctx, c.streaming, q.route("query")+"?"+params.Encode())
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	serverID := resp.Header.Get(obs.HeaderRequestID)
	return serverID, readStream(resp, serverID, h)
}

// readStream walks an NDJSON streaming body frame by frame.
func readStream(resp *http.Response, serverID string, h StreamHandler) error {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	sawTrailer := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return fmt.Errorf("invalid stream line: %w", err)
		}
		switch kind.Type {
		case "header":
			var f server.StreamHeader
			if err := json.Unmarshal(line, &f); err != nil {
				return fmt.Errorf("invalid stream header: %w", err)
			}
			if h.Header != nil {
				h.Header(f)
			}
		case "community":
			var f server.StreamCommunity
			if err := json.Unmarshal(line, &f); err != nil {
				return fmt.Errorf("invalid stream community: %w", err)
			}
			if h.Community != nil {
				if err := h.Community(f); err != nil {
					return err
				}
			}
		case "trailer":
			var f server.StreamTrailer
			if err := json.Unmarshal(line, &f); err != nil {
				return fmt.Errorf("invalid stream trailer: %w", err)
			}
			if h.Trailer != nil {
				h.Trailer(f)
			}
			sawTrailer = true
		case "error":
			var f server.StreamError
			if err := json.Unmarshal(line, &f); err != nil {
				return fmt.Errorf("invalid stream error: %w", err)
			}
			id := f.RequestID
			if id == "" {
				id = serverID
			}
			return &APIError{Status: f.Status, Message: f.Error, RequestID: id}
		default:
			return fmt.Errorf("unknown stream line type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stream: %w", err)
	}
	if !sawTrailer {
		return fmt.Errorf("stream ended without a trailer")
	}
	return nil
}
