package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"themecomm/internal/journal"
	"themecomm/internal/obs"
	"themecomm/internal/server"
)

// fastOptions keeps retry backoff out of test wall-clock.
func fastOptions() Options { return Options{Backoff: time.Millisecond} }

func TestGETRetriesOn5xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(obs.HeaderRequestID) == "" {
			t.Error("request without a request ID")
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"warming up","status":503}`)
			return
		}
		fmt.Fprint(w, `{"alpha":0.1,"retrievedNodes":7}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOptions())
	resp, _, err := c.Do(context.Background(), Query{Alpha: 0.1})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.RetrievedNodes != 7 {
		t.Fatalf("RetrievedNodes = %d", resp.RetrievedNodes)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 503s then success)", got)
	}
}

func TestGETDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set(obs.HeaderRequestID, "req-123")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"invalid alpha","status":400,"requestId":"req-123"}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOptions())
	_, _, err := c.Do(context.Background(), Query{Alpha: -1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T, want *APIError: %v", err, err)
	}
	if apiErr.Status != http.StatusBadRequest || apiErr.Message != "invalid alpha" || apiErr.RequestID != "req-123" {
		t.Fatalf("APIError = %+v", apiErr)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx is not retried)", got)
	}
}

func TestGETRetriesExhaust(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOptions())
	_, _, err := c.Do(context.Background(), Query{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("error = %v, want a 500 APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (initial + 2 retries)", got)
	}
}

func TestUpdateIsNeverRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if r.Method != http.MethodPost {
			t.Errorf("update used %s", r.Method)
		}
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"mid-apply crash","status":500}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOptions())
	_, err := c.Update(context.Background(), "", &server.UpdateRequest{AddVertices: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("error = %v, want a 500 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (updates must not be retried)", got)
	}
}

func TestUpdateReadOnlyLocation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", "http://primary:9000/api/v1/update")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		fmt.Fprint(w, `{"error":"this server is a read-only replica; send updates to the primary","status":403}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOptions())
	_, err := c.Update(context.Background(), "", &server.UpdateRequest{AddVertices: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusForbidden {
		t.Fatalf("error = %v, want a 403 APIError", err)
	}
	if apiErr.Location != "http://primary:9000/api/v1/update" {
		t.Fatalf("Location = %q", apiErr.Location)
	}
}

func TestStreamFrames(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("stream") != "1" {
			t.Errorf("stream request missing stream=1: %s", r.URL.RawQuery)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"type":"header","alpha":0.1,"topK":2}`)
		fmt.Fprintln(w, `{"type":"community","theme":["a"],"vertices":["1","2"],"edges":1}`)
		fmt.Fprintln(w, `{"type":"community","theme":["b"],"vertices":["3"],"edges":0}`)
		fmt.Fprintln(w, `{"type":"trailer","emitted":2,"queryMicros":12}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOptions())
	var themes []string
	var trailer *server.StreamTrailer
	_, err := c.Stream(context.Background(), Query{Alpha: 0.1, K: 2}, StreamHandler{
		Community: func(f server.StreamCommunity) error {
			themes = append(themes, f.Theme...)
			return nil
		},
		Trailer: func(f server.StreamTrailer) { trailer = &f },
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if len(themes) != 2 || themes[0] != "a" || themes[1] != "b" {
		t.Fatalf("themes = %v", themes)
	}
	if trailer == nil || trailer.Emitted != 2 {
		t.Fatalf("trailer = %+v", trailer)
	}
}

func TestStreamInBandError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"type":"header","alpha":0}`)
		fmt.Fprintln(w, `{"type":"error","status":410,"error":"index moved","requestId":"req-9"}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOptions())
	_, err := c.Stream(context.Background(), Query{}, StreamHandler{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGone || apiErr.RequestID != "req-9" {
		t.Fatalf("error = %v, want a 410 APIError with the in-band request id", err)
	}
}

// TestTailJournal drives the tail across long-poll rounds: records arrive in
// order exactly once, the cursor advances, and the head callback reports the
// durable head.
func TestTailJournal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from := r.URL.Query().Get("from")
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		switch from {
		case "0":
			enc.Encode(server.JournalRecordFrame{Type: "record", Seq: 1, Network: "alpha", Payload: []byte("d1")})
			enc.Encode(server.JournalRecordFrame{Type: "record", Seq: 2, Network: "alpha", Payload: []byte("d2")})
			enc.Encode(server.JournalHeadFrame{Type: "head", Seq: 2})
		case "2":
			enc.Encode(server.JournalRecordFrame{Type: "record", Seq: 3, Network: "alpha", Payload: []byte("d3")})
			enc.Encode(server.JournalHeadFrame{Type: "head", Seq: 3})
		default:
			t.Errorf("unexpected from=%s", from)
			enc.Encode(server.JournalHeadFrame{Type: "head", Seq: 3})
		}
	}))
	defer srv.Close()

	var seqs []uint64
	var heads []uint64
	c := New(srv.URL, fastOptions())
	err := c.TailJournal(ctx, TailOptions{
		Wait: time.Millisecond,
		OnRecord: func(rec journal.Record) error {
			seqs = append(seqs, rec.Seq)
			if string(rec.Payload) != fmt.Sprintf("d%d", rec.Seq) {
				t.Errorf("record %d payload %q", rec.Seq, rec.Payload)
			}
			return nil
		},
		OnHead: func(seq uint64) {
			heads = append(heads, seq)
			if seq == 3 {
				cancel() // caught up: stop the tail
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TailJournal = %v, want context.Canceled", err)
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Fatalf("seqs = %v (records must arrive in order exactly once)", seqs)
	}
	if len(heads) == 0 || heads[len(heads)-1] != 3 {
		t.Fatalf("heads = %v", heads)
	}
}

// TestTailJournalStopsOnCallbackError: an apply failure on the replica must
// surface, not be absorbed as a transient feed problem.
func TestTailJournalStopsOnCallbackError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		enc.Encode(server.JournalRecordFrame{Type: "record", Seq: 1, Network: "alpha", Payload: []byte("d1")})
		enc.Encode(server.JournalHeadFrame{Type: "head", Seq: 1})
	}))
	defer srv.Close()

	sentinel := errors.New("apply failed")
	c := New(srv.URL, fastOptions())
	err := c.TailJournal(context.Background(), TailOptions{
		Wait:     time.Millisecond,
		OnRecord: func(journal.Record) error { return sentinel },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("TailJournal = %v, want the callback's error", err)
	}
}

// TestTailJournalNotAPrimary: the 404 of a non-primary server is terminal.
func TestTailJournalNotAPrimary(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"this server does not serve a journal (only a replication primary does)","status":404}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOptions())
	err := c.TailJournal(context.Background(), TailOptions{
		OnRecord: func(journal.Record) error { return nil },
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("TailJournal = %v, want a 404 APIError", err)
	}
}
