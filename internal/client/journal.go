package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"themecomm/internal/journal"
	"themecomm/internal/server"
)

// TailOptions configures a journal tail.
type TailOptions struct {
	// From is the tail's start cursor: the highest journal sequence number
	// already applied; the feed delivers records strictly after it.
	From uint64
	// Wait is the long-poll window sent to the server per round (the server
	// caps it); zero defaults to 30s.
	Wait time.Duration
	// OnRecord receives every journal record in sequence order. A returned
	// error stops the tail and is returned by TailJournal.
	OnRecord func(journal.Record) error
	// OnHead, when non-nil, receives the primary's durable head each time
	// the feed reports it — the replica's lag gauge.
	OnHead func(seq uint64)
}

// TailJournal follows the primary's journal feed until the context is
// cancelled or a callback fails: each round is one long-poll GET of
// /api/v1/journal from the current cursor, and transient failures
// (transport errors, 5xx) are absorbed by reconnecting with backoff — a
// replica outlives its primary's restarts. Non-retryable server answers
// (e.g. the 404 of a server that is not a primary) are returned.
func (c *Client) TailJournal(ctx context.Context, opts TailOptions) error {
	if opts.OnRecord == nil {
		return fmt.Errorf("TailJournal needs an OnRecord callback")
	}
	wait := opts.Wait
	if wait <= 0 {
		wait = 30 * time.Second
	}
	from := opts.From
	backoff := c.backoff
	for ctx.Err() == nil {
		advanced, err := c.tailOnce(ctx, &from, wait, opts)
		switch {
		case err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// A clean round (the server closed its long poll) tails again
			// immediately.
			backoff = c.backoff
			continue
		default:
			var apiErr *APIError
			if errors.As(err, &apiErr) && !apiErr.IsRetryable() {
				return err
			}
			if cbErr := (*callbackError)(nil); errors.As(err, &cbErr) {
				return cbErr.err
			}
			// Transport trouble or a 5xx: reconnect from the cursor. The
			// cursor only moves on applied records, so nothing is lost or
			// doubled across reconnects.
			_ = advanced
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 8*time.Second {
				backoff *= 2
			}
		}
	}
	return ctx.Err()
}

// callbackError marks an error raised by the caller's OnRecord, which must
// stop the tail instead of being absorbed as transient.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }

// tailOnce runs one long-poll round, advancing *from past every delivered
// record.
func (c *Client) tailOnce(ctx context.Context, from *uint64, wait time.Duration, opts TailOptions) (bool, error) {
	params := url.Values{}
	params.Set("from", strconv.FormatUint(*from, 10))
	params.Set("wait", strconv.FormatFloat(wait.Seconds(), 'g', -1, 64))
	resp, err := c.getJournal(ctx, "/api/v1/journal?"+params.Encode())
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()

	advanced := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return advanced, fmt.Errorf("invalid journal line: %w", err)
		}
		switch kind.Type {
		case "record":
			var f server.JournalRecordFrame
			if err := json.Unmarshal(line, &f); err != nil {
				return advanced, fmt.Errorf("invalid journal record: %w", err)
			}
			rec := journal.Record{
				Seq: f.Seq, Epoch: f.Epoch, UnixMicros: f.UnixMicros,
				Network: f.Network, Payload: f.Payload,
			}
			if err := opts.OnRecord(rec); err != nil {
				return advanced, &callbackError{err}
			}
			*from = f.Seq
			advanced = true
		case "head":
			var f server.JournalHeadFrame
			if err := json.Unmarshal(line, &f); err != nil {
				return advanced, fmt.Errorf("invalid journal head: %w", err)
			}
			if opts.OnHead != nil {
				opts.OnHead(f.Seq)
			}
		case "error":
			var f server.StreamError
			if err := json.Unmarshal(line, &f); err != nil {
				return advanced, fmt.Errorf("invalid journal error: %w", err)
			}
			return advanced, &APIError{Status: f.Status, Message: f.Error, RequestID: f.RequestID}
		default:
			return advanced, fmt.Errorf("unknown journal line type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return advanced, fmt.Errorf("reading journal feed: %w", err)
	}
	return advanced, nil
}

// getJournal issues one feed GET without the doGET retry loop — the tail
// has its own reconnect policy and cursor.
func (c *Client) getJournal(ctx context.Context, path string) (*http.Response, error) {
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.streaming.Do(req)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", c.base+path, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return resp, nil
}
