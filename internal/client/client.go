// Package client is the typed Go client of the tcserver HTTP API: queries,
// streaming queries, updates, the replication journal feed and health, all
// over the same JSON types the server serializes (internal/server), so a CLI
// or a replica never re-declares the wire format. Every request carries a
// request ID (caller-supplied or minted per call) that the server echoes and
// stamps on its logs; every error is an *APIError holding the HTTP status,
// the server's message and that ID, so a failure can be found in the
// server's logs with one grep. Idempotent GETs retry transient failures
// (transport errors and 5xx answers) with exponential backoff; updates are
// never retried — an applied delta must not be applied twice.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"themecomm/internal/obs"
	"themecomm/internal/server"
)

// maxBodyBytes bounds one non-streaming response body.
const maxBodyBytes = 64 << 20

// APIError is a non-2xx answer from the server: the decoded JSON error
// envelope plus the HTTP status it arrived with.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error message.
	Message string
	// RequestID is the request ID the server assigned (or echoed); the
	// handle into its access and slow-query logs.
	RequestID string
	// Location, when non-empty, is where the request would succeed — set on
	// the 403 a read-only replica answers to writes, pointing at the
	// primary.
	Location string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("server error (HTTP %d, request id %s): %s", e.Status, e.RequestID, e.Message)
	}
	return fmt.Sprintf("server error (HTTP %d): %s", e.Status, e.Message)
}

// IsRetryable reports whether the failure is worth retrying on an
// idempotent request: server-side 5xx trouble, not a 4xx request defect.
func (e *APIError) IsRetryable() bool { return e.Status >= 500 }

// Options configures a Client.
type Options struct {
	// HTTPClient overrides the underlying HTTP client; nil uses a client
	// with a 60s timeout (streaming and journal-tail requests always run
	// without a timeout, on a separate client).
	HTTPClient *http.Client
	// RequestID, when non-empty, is sent as the correlation ID on every
	// request; empty mints a fresh ID per call.
	RequestID string
	// Retries is how many times an idempotent GET is retried after a
	// transport error or a 5xx answer; negative disables retries. Default 2.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt. Default
	// 250ms.
	Backoff time.Duration
}

// Client talks to one tcserver. It is safe for concurrent use.
type Client struct {
	base      string
	http      *http.Client
	streaming *http.Client
	requestID string
	retries   int
	backoff   time.Duration
}

// New builds a client for the server at base (e.g. "http://localhost:8080").
func New(base string, opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	// Streams and journal tails live as long as the server produces lines;
	// strip only the overall timeout, keep the caller's transport.
	sc := *hc
	sc.Timeout = 0
	retries := opts.Retries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	return &Client{
		base:      strings.TrimRight(base, "/"),
		http:      hc,
		streaming: &sc,
		requestID: opts.RequestID,
		retries:   retries,
		backoff:   backoff,
	}
}

// Base returns the server's base URL.
func (c *Client) Base() string { return c.base }

// newRequest builds one request with the correlation ID attached.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	id := c.requestID
	if id == "" {
		id = obs.NewRequestID()
	}
	req.Header.Set(obs.HeaderRequestID, id)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return req, nil
}

// apiError decodes the response into an *APIError, consuming the body.
func apiError(resp *http.Response) *APIError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	e := &APIError{
		Status:    resp.StatusCode,
		Message:   strings.TrimSpace(string(body)),
		RequestID: resp.Header.Get(obs.HeaderRequestID),
		Location:  resp.Header.Get("Location"),
	}
	var env struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		e.Message = env.Error
		if e.RequestID == "" {
			e.RequestID = env.RequestID
		}
	}
	return e
}

// doGET runs one idempotent GET with retry-on-transient-failure, decoding a
// 200 into out. It returns the request ID the server echoed.
func (c *Client) doGET(ctx context.Context, path string, out any) (string, error) {
	resp, err := c.getWithRetry(ctx, c.http, path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	serverID := resp.Header.Get(obs.HeaderRequestID)
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return serverID, fmt.Errorf("reading response: %w", err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return serverID, fmt.Errorf("decoding response: %w", err)
	}
	return serverID, nil
}

// getWithRetry issues the GET, retrying transport errors and 5xx answers
// with exponential backoff. On success the caller owns the response body;
// every failed attempt's body is drained so connections are reused.
func (c *Client) getWithRetry(ctx context.Context, hc *http.Client, path string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := c.newRequest(ctx, http.MethodGet, path, nil)
		if err != nil {
			return nil, err
		}
		resp, err := hc.Do(req)
		switch {
		case err != nil:
			lastErr = fmt.Errorf("GET %s: %w", c.base+path, err)
		case resp.StatusCode == http.StatusOK:
			return resp, nil
		default:
			apiErr := apiError(resp)
			resp.Body.Close()
			if !apiErr.IsRetryable() {
				return nil, apiErr
			}
			lastErr = apiErr
		}
		if attempt >= c.retries || ctx.Err() != nil {
			return nil, lastErr
		}
		select {
		case <-ctx.Done():
			return nil, lastErr
		case <-time.After(c.backoff << attempt):
		}
	}
}

// Query is one theme-community query (or top-k, or sub-pattern containment,
// or a cursor resume).
type Query struct {
	// Network scopes the query to one federation tenant; empty uses the
	// server's default network.
	Network string
	// Pattern is the comma-separated query pattern (names or numeric item
	// identifiers); empty queries every item.
	Pattern string
	// Alpha is the cohesion threshold.
	Alpha float64
	// K, when positive, asks for the top-k communities by cohesion.
	K int
	// Contains switches to sub-pattern containment semantics.
	Contains bool
	// Cursor resumes a paginated answer; when set the query parameters
	// (pattern, alpha, k) travel inside it and are not sent.
	Cursor string
	// Limit bounds one streamed page and mints a next-page cursor.
	Limit int
}

// params renders the query string. Streaming is a transport choice, so the
// stream parameter is added by the caller.
func (q *Query) params() url.Values {
	p := url.Values{}
	if q.Cursor != "" {
		p.Set("cursor", q.Cursor)
	} else {
		p.Set("alpha", strconv.FormatFloat(q.Alpha, 'g', -1, 64))
		if q.Pattern != "" {
			p.Set("pattern", q.Pattern)
		}
		if q.K > 0 {
			p.Set("k", strconv.Itoa(q.K))
		}
		if q.Contains {
			p.Set("contains", "true")
		}
	}
	if q.Limit > 0 {
		p.Set("limit", strconv.Itoa(q.Limit))
	}
	return p
}

// route renders the path of one API route, scoped to the query's network.
func (q *Query) route(name string) string {
	if q.Network != "" {
		return "/api/v1/" + url.PathEscape(q.Network) + "/" + name
	}
	return "/api/v1/" + name
}

// Do answers the query in one response. The returned request ID correlates
// the call with the server's logs.
func (c *Client) Do(ctx context.Context, q Query) (*server.QueryResponse, string, error) {
	var out server.QueryResponse
	id, err := c.doGET(ctx, q.route("query")+"?"+q.params().Encode(), &out)
	if err != nil {
		return nil, id, err
	}
	return &out, id, nil
}

// Explain runs the query through the explain route: the per-node trace of
// how the TC-Tree answered it.
func (c *Client) Explain(ctx context.Context, q Query) (*server.ExplainResponse, string, error) {
	p := url.Values{}
	p.Set("alpha", strconv.FormatFloat(q.Alpha, 'g', -1, 64))
	if q.Pattern != "" {
		p.Set("pattern", q.Pattern)
	}
	if q.Contains {
		p.Set("contains", "true")
	}
	var out server.ExplainResponse
	id, err := c.doGET(ctx, q.route("explain")+"?"+p.Encode(), &out)
	if err != nil {
		return nil, id, err
	}
	return &out, id, nil
}

// Update applies one network delta. Never retried: the delta may have been
// applied even when the answer was lost.
func (c *Client) Update(ctx context.Context, network string, u *server.UpdateRequest) (*server.UpdateResponse, error) {
	body, err := json.Marshal(u)
	if err != nil {
		return nil, err
	}
	path := "/api/v1/update"
	if network != "" {
		path = "/api/v1/" + url.PathEscape(network) + "/update"
	}
	req, err := c.newRequest(ctx, http.MethodPost, path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("POST %s: %w", c.base+path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var out server.UpdateResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding update response: %w", err)
	}
	return &out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	var out server.HealthResponse
	_, err := c.doGET(ctx, "/healthz", &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}
