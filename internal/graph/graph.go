// Package graph provides the undirected-graph substrate of the database
// network: adjacency storage, triangle enumeration, connected components,
// BFS traversal, and the classic k-truss and k-core baselines that the
// pattern truss of the paper generalizes (Section 3.2).
//
// Vertices are dense integer identifiers in [0, NumVertices). Edges are
// undirected, simple (no self-loops, no parallel edges).
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex of a graph or database network.
type VertexID int32

// Edge is an undirected edge stored in canonical orientation U < V.
type Edge struct {
	U, V VertexID
}

// EdgeOf returns the canonical edge between a and b. It panics on self-loops
// because the data model forbids them.
func EdgeOf(a, b VertexID) Edge {
	if a == b {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", a))
	}
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// Key packs the edge into a single comparable 64-bit key.
func (e Edge) Key() uint64 { return uint64(uint32(e.U))<<32 | uint64(uint32(e.V)) }

// EdgeFromKey is the inverse of Edge.Key.
func EdgeFromKey(k uint64) Edge {
	return Edge{U: VertexID(uint32(k >> 32)), V: VertexID(uint32(k))}
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v VertexID) VertexID {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
	}
}

// String renders the edge as "(u,v)".
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a static simple undirected graph with a fixed vertex count.
// Build one with NewBuilder or directly with New plus AddEdge.
type Graph struct {
	adj [][]VertexID // sorted neighbor lists
	m   int          // number of edges
	// sorted reports whether adjacency lists are currently sorted; AddEdge
	// appends and defers sorting until the next read that needs it.
	sorted bool
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]VertexID, n), sorted: true}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.m }

// AddEdge inserts the undirected edge (a, b). Self-loops are rejected with an
// error; adding an edge that already exists is a harmless no-op.
func (g *Graph) AddEdge(a, b VertexID) error {
	if a == b {
		return fmt.Errorf("graph: self-loop on vertex %d rejected", a)
	}
	if err := g.checkVertex(a); err != nil {
		return err
	}
	if err := g.checkVertex(b); err != nil {
		return err
	}
	if g.hasEdgeSlow(a, b) {
		return nil
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.m++
	g.sorted = false
	return nil
}

// MustAddEdge is AddEdge but panics on error. Useful in tests and generators
// where the inputs are known valid.
func (g *Graph) MustAddEdge(a, b VertexID) {
	if err := g.AddEdge(a, b); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge (a, b), reporting whether it was
// present. Removing an absent edge (or one with an out-of-range endpoint) is
// a harmless no-op.
func (g *Graph) RemoveEdge(a, b VertexID) bool {
	if a == b || g.checkVertex(a) != nil || g.checkVertex(b) != nil {
		return false
	}
	if !g.hasEdgeSlow(a, b) {
		return false
	}
	g.adj[a] = removeNeighbor(g.adj[a], b)
	g.adj[b] = removeNeighbor(g.adj[b], a)
	g.m--
	return true
}

// removeNeighbor deletes the first occurrence of w from l, preserving order so
// a sorted list stays sorted.
func removeNeighbor(l []VertexID, w VertexID) []VertexID {
	for i, x := range l {
		if x == w {
			return append(l[:i], l[i+1:]...)
		}
	}
	return l
}

// AddVertices grows the graph by n isolated vertices, returning the new
// vertex count. A growing database network gains vertices this way before
// edges and transactions reference them.
func (g *Graph) AddVertices(n int) int {
	if n > 0 {
		g.adj = append(g.adj, make([][]VertexID, n)...)
	}
	return len(g.adj)
}

func (g *Graph) checkVertex(v VertexID) error {
	if v < 0 || int(v) >= len(g.adj) {
		return fmt.Errorf("graph: vertex %d out of range [0,%d)", v, len(g.adj))
	}
	return nil
}

func (g *Graph) hasEdgeSlow(a, b VertexID) bool {
	// Scan the smaller adjacency list.
	la, lb := g.adj[a], g.adj[b]
	if len(lb) < len(la) {
		la, b = lb, a
	}
	for _, x := range la {
		if x == b {
			return true
		}
	}
	return false
}

// Sort sorts every adjacency list. Read accessors call it lazily; callers
// that are about to read the graph from multiple goroutines must call it (or
// any read accessor) once beforehand, because the lazy sort is not
// synchronized.
func (g *Graph) Sort() { g.ensureSorted() }

// ensureSorted sorts all adjacency lists; reads that rely on sorted order call
// it first.
func (g *Graph) ensureSorted() {
	if g.sorted {
		return
	}
	for _, l := range g.adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	g.sorted = true
}

// HasEdge reports whether the edge (a, b) exists.
func (g *Graph) HasEdge(a, b VertexID) bool {
	if a == b || g.checkVertex(a) != nil || g.checkVertex(b) != nil {
		return false
	}
	g.ensureSorted()
	l := g.adj[a]
	i := sort.Search(len(l), func(i int) bool { return l[i] >= b })
	return i < len(l) && l[i] == b
}

// Degree returns the degree of v.
func (g *Graph) Degree(v VertexID) int {
	if g.checkVertex(v) != nil {
		return 0
	}
	return len(g.adj[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice must not
// be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	if g.checkVertex(v) != nil {
		return nil
	}
	g.ensureSorted()
	return g.adj[v]
}

// Edges returns every edge of the graph in canonical orientation, sorted by
// (U, V).
func (g *Graph) Edges() []Edge {
	g.ensureSorted()
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if VertexID(u) < v {
				out = append(out, Edge{U: VertexID(u), V: v})
			}
		}
	}
	return out
}

// CommonNeighbors returns the sorted common neighbors of a and b. Each common
// neighbor corresponds to a triangle containing edge (a, b).
func (g *Graph) CommonNeighbors(a, b VertexID) []VertexID {
	if g.checkVertex(a) != nil || g.checkVertex(b) != nil {
		return nil
	}
	g.ensureSorted()
	return IntersectSorted(g.adj[a], g.adj[b])
}

// CountTriangles returns the total number of triangles in the graph.
func (g *Graph) CountTriangles() int {
	total := 0
	for _, e := range g.Edges() {
		for _, w := range g.CommonNeighbors(e.U, e.V) {
			if w > e.V { // count each triangle once: u < v < w
				total++
			}
		}
	}
	return total
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted, with components ordered by their smallest vertex. Isolated
// vertices form singleton components.
func (g *Graph) ConnectedComponents() [][]VertexID {
	n := len(g.adj)
	visited := make([]bool, n)
	var comps [][]VertexID
	queue := make([]VertexID, 0, n)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = queue[:0]
		queue = append(queue, VertexID(s))
		comp := []VertexID{VertexID(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if !visited[w] {
					visited[w] = true
					comp = append(comp, w)
					queue = append(queue, w)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// BFSEdges traverses the graph breadth-first from seed and returns up to
// maxEdges edges in the order they are discovered (tree and cross edges of the
// already-visited frontier). It is the sampling primitive of Section 7.1 of
// the paper. If maxEdges <= 0 all reachable edges are returned.
func (g *Graph) BFSEdges(seed VertexID, maxEdges int) []Edge {
	if g.checkVertex(seed) != nil {
		return nil
	}
	if maxEdges <= 0 {
		maxEdges = g.m
	}
	g.ensureSorted()
	visited := make(map[VertexID]bool, maxEdges)
	seenEdge := make(map[uint64]bool, maxEdges)
	var out []Edge
	queue := []VertexID{seed}
	visited[seed] = true
	for len(queue) > 0 && len(out) < maxEdges {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			e := EdgeOf(u, w)
			if !seenEdge[e.Key()] {
				seenEdge[e.Key()] = true
				out = append(out, e)
				if len(out) >= maxEdges {
					break
				}
			}
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	cp := New(len(g.adj))
	cp.m = g.m
	cp.sorted = g.sorted
	for i, l := range g.adj {
		cp.adj[i] = append([]VertexID(nil), l...)
	}
	return cp
}

// FromEdges builds a graph with n vertices from the given edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// IntersectSorted returns the intersection of two ascending sorted vertex
// slices.
func IntersectSorted(a, b []VertexID) []VertexID {
	var out []VertexID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SortVertices sorts a vertex slice in place in ascending order.
func SortVertices(vs []VertexID) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}
