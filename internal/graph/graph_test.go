package graph

import (
	"math/rand"
	"testing"
)

// buildTriangleChain returns a graph of two triangles sharing vertex 2 plus an
// isolated vertex 5: edges (0,1),(0,2),(1,2),(2,3),(2,4),(3,4).
func buildTriangleChain() *Graph {
	g := New(6)
	for _, e := range [][2]VertexID{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		g.MustAddEdge(e[0], e[1])
	}
	return g
}

func TestEdgeOf(t *testing.T) {
	e := EdgeOf(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("EdgeOf(5,2) = %v, want (2,5)", e)
	}
	if EdgeFromKey(e.Key()) != e {
		t.Fatalf("Key round trip failed")
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatalf("Other wrong")
	}
	if e.String() != "(2,5)" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestEdgeOfPanicsOnSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("EdgeOf(1,1) should panic")
		}
	}()
	EdgeOf(1, 1)
}

func TestEdgeOtherPanicsOnNonEndpoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Other of non-endpoint should panic")
		}
	}()
	EdgeOf(1, 2).Other(3)
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Errorf("self-loop should be rejected")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Errorf("out-of-range vertex should be rejected")
	}
	if err := g.AddEdge(-1, 1); err == nil {
		t.Errorf("negative vertex should be rejected")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatalf("duplicate AddEdge should be a no-op, got %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestNewPanicsOnNegativeSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestBasicAccessors(t *testing.T) {
	g := buildTriangleChain()
	if g.NumVertices() != 6 || g.NumEdges() != 6 {
		t.Fatalf("size = (%d,%d), want (6,6)", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Errorf("HasEdge(0,1) should be true in both orientations")
	}
	if g.HasEdge(0, 3) || g.HasEdge(5, 5) || g.HasEdge(0, 99) {
		t.Errorf("HasEdge false positives")
	}
	if g.Degree(2) != 4 || g.Degree(5) != 0 || g.Degree(99) != 0 {
		t.Errorf("Degree wrong: %d %d", g.Degree(2), g.Degree(5))
	}
	nb := g.Neighbors(2)
	want := []VertexID{0, 1, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(2) = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
		}
	}
	edges := g.Edges()
	if len(edges) != 6 {
		t.Fatalf("Edges() returned %d edges", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i-1].U > edges[i].U || (edges[i-1].U == edges[i].U && edges[i-1].V >= edges[i].V) {
			t.Fatalf("Edges() not sorted: %v", edges)
		}
	}
}

func TestCommonNeighborsAndTriangles(t *testing.T) {
	g := buildTriangleChain()
	cn := g.CommonNeighbors(0, 1)
	if len(cn) != 1 || cn[0] != 2 {
		t.Fatalf("CommonNeighbors(0,1) = %v, want [2]", cn)
	}
	if got := g.CountTriangles(); got != 2 {
		t.Fatalf("CountTriangles = %d, want 2", got)
	}
	if cn := g.CommonNeighbors(0, 99); cn != nil {
		t.Fatalf("CommonNeighbors with invalid vertex = %v", cn)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := buildTriangleChain()
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2: %v", len(comps), comps)
	}
	if len(comps[0]) != 5 || len(comps[1]) != 1 || comps[1][0] != 5 {
		t.Fatalf("components = %v", comps)
	}
}

func TestBFSEdges(t *testing.T) {
	g := buildTriangleChain()
	all := g.BFSEdges(0, 0)
	if len(all) != 6 {
		t.Fatalf("BFS from 0 should reach all 6 edges, got %d", len(all))
	}
	limited := g.BFSEdges(0, 3)
	if len(limited) != 3 {
		t.Fatalf("BFSEdges with cap 3 returned %d edges", len(limited))
	}
	// Sampled edges must be unique.
	seen := map[uint64]bool{}
	for _, e := range all {
		if seen[e.Key()] {
			t.Fatalf("duplicate edge %v in BFS output", e)
		}
		seen[e.Key()] = true
	}
	if got := g.BFSEdges(99, 10); got != nil {
		t.Fatalf("BFS from invalid seed = %v", got)
	}
	if got := g.BFSEdges(5, 10); len(got) != 0 {
		t.Fatalf("BFS from isolated vertex = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildTriangleChain()
	cp := g.Clone()
	cp.MustAddEdge(0, 5)
	if g.HasEdge(0, 5) {
		t.Fatalf("clone not independent")
	}
	if cp.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("clone edge count wrong")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(4, []Edge{EdgeOf(0, 1), EdgeOf(2, 3)})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if _, err := FromEdges(2, []Edge{EdgeOf(0, 5)}); err == nil {
		t.Fatalf("FromEdges with out-of-range vertex should fail")
	}
}

func TestIntersectSorted(t *testing.T) {
	got := IntersectSorted([]VertexID{1, 3, 5, 7}, []VertexID{3, 4, 5, 6, 7})
	want := []VertexID{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("IntersectSorted = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IntersectSorted = %v, want %v", got, want)
		}
	}
}

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(EdgeOf(0, 1), EdgeOf(1, 2))
	if s.Len() != 2 || !s.Contains(EdgeOf(1, 0)) {
		t.Fatalf("EdgeSet basics broken: %v", s)
	}
	s.Add(EdgeOf(2, 3))
	s.Remove(EdgeOf(0, 1))
	if s.Len() != 2 || s.Contains(EdgeOf(0, 1)) {
		t.Fatalf("Add/Remove broken")
	}
	vs := s.Vertices()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("Vertices = %v", vs)
	}
	edges := s.Edges()
	if len(edges) != 2 || edges[0] != EdgeOf(1, 2) {
		t.Fatalf("Edges = %v", edges)
	}
}

func TestEdgeSetAlgebra(t *testing.T) {
	a := NewEdgeSet(EdgeOf(0, 1), EdgeOf(1, 2), EdgeOf(2, 3))
	b := NewEdgeSet(EdgeOf(1, 2), EdgeOf(3, 4))
	if got := a.Intersect(b); got.Len() != 1 || !got.Contains(EdgeOf(1, 2)) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Union(b); got.Len() != 4 {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Minus(b); got.Len() != 2 || got.Contains(EdgeOf(1, 2)) {
		t.Fatalf("Minus = %v", got)
	}
	if !a.Clone().Equal(a) {
		t.Fatalf("Clone/Equal broken")
	}
	if a.Equal(b) {
		t.Fatalf("distinct sets reported equal")
	}
	if !a.Intersect(b).SubsetOf(a) || !a.Intersect(b).SubsetOf(b) {
		t.Fatalf("SubsetOf broken")
	}
	if a.SubsetOf(b) {
		t.Fatalf("SubsetOf false positive")
	}
}

func TestEdgeSetConnectedComponents(t *testing.T) {
	s := NewEdgeSet(EdgeOf(0, 1), EdgeOf(1, 2), EdgeOf(5, 6))
	comps := s.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if comps[0].Len() != 2 || comps[1].Len() != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
	if got := NewEdgeSet().ConnectedComponents(); got != nil {
		t.Fatalf("components of empty edge set = %v", got)
	}
}

func TestKTrussOnCliqueAndChain(t *testing.T) {
	// A 4-clique is a 4-truss (every edge in 2 triangles).
	clique := New(4)
	for u := VertexID(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			clique.MustAddEdge(u, v)
		}
	}
	if got := KTruss(clique, 4); got.Len() != 6 {
		t.Fatalf("4-truss of K4 has %d edges, want 6", got.Len())
	}
	if got := KTruss(clique, 5); got.Len() != 0 {
		t.Fatalf("5-truss of K4 should be empty, got %d edges", got.Len())
	}
	// Two triangles sharing a vertex: 3-truss keeps both, 4-truss is empty.
	g := buildTriangleChain()
	if got := KTruss(g, 3); got.Len() != 6 {
		t.Fatalf("3-truss = %d edges, want 6", got.Len())
	}
	if got := KTruss(g, 4); got.Len() != 0 {
		t.Fatalf("4-truss = %d edges, want 0", got.Len())
	}
	if got := KTruss(g, 2); got.Len() != g.NumEdges() {
		t.Fatalf("2-truss should keep all edges")
	}
}

func TestTrussDecomposition(t *testing.T) {
	clique := New(5)
	for u := VertexID(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			clique.MustAddEdge(u, v)
		}
	}
	// Attach a pendant edge (4,5)? vertex 5 doesn't exist; build fresh.
	g := New(6)
	for u := VertexID(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.MustAddEdge(u, v)
		}
	}
	g.MustAddEdge(4, 5)
	tr := TrussDecomposition(g)
	if tr[EdgeOf(0, 1).Key()] != 5 {
		t.Fatalf("clique edge trussness = %d, want 5", tr[EdgeOf(0, 1).Key()])
	}
	if tr[EdgeOf(4, 5).Key()] != 2 {
		t.Fatalf("pendant edge trussness = %d, want 2", tr[EdgeOf(4, 5).Key()])
	}
}

func TestKCoreAndCoreNumbers(t *testing.T) {
	g := buildTriangleChain()
	core2 := KCore(g, 2)
	if len(core2) != 5 {
		t.Fatalf("2-core = %v, want the 5 triangle vertices", core2)
	}
	if got := KCore(g, 3); len(got) != 0 {
		t.Fatalf("3-core should be empty, got %v", got)
	}
	cn := CoreNumbers(g)
	if cn[2] != 2 || cn[5] != 0 {
		t.Fatalf("core numbers = %v", cn)
	}
}

func TestKTrussEdgesAreInEnoughTriangles(t *testing.T) {
	// Property check on random graphs: every edge of the k-truss is in at
	// least k-2 triangles inside the truss.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 12
		g := New(n)
		for i := 0; i < 40; i++ {
			a, b := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
			if a != b {
				g.MustAddEdge(a, b)
			}
		}
		for k := 3; k <= 5; k++ {
			truss := KTruss(g, k)
			adj := truss.Adjacency()
			for _, e := range truss.Edges() {
				if got := len(IntersectSorted(adj[e.U], adj[e.V])); got < k-2 {
					t.Fatalf("edge %v in %d-truss has only %d triangles", e, k, got)
				}
			}
			// Monotonicity: (k+1)-truss ⊆ k-truss.
			if !KTruss(g, k+1).SubsetOf(truss) {
				t.Fatalf("truss not monotone at k=%d", k)
			}
		}
	}
}
