package graph

import "sort"

// EdgeSet is a set of canonical edges keyed by Edge.Key. It preserves global
// vertex identifiers, which makes it the natural representation of pattern
// trusses and theme communities extracted from a database network.
type EdgeSet map[uint64]Edge

// NewEdgeSet returns an EdgeSet containing the given edges.
func NewEdgeSet(edges ...Edge) EdgeSet {
	s := make(EdgeSet, len(edges))
	for _, e := range edges {
		s.Add(e)
	}
	return s
}

// Add inserts e into the set.
func (s EdgeSet) Add(e Edge) { s[e.Key()] = e }

// Remove deletes e from the set.
func (s EdgeSet) Remove(e Edge) { delete(s, e.Key()) }

// Contains reports whether e is in the set.
func (s EdgeSet) Contains(e Edge) bool {
	_, ok := s[e.Key()]
	return ok
}

// Len returns the number of edges in the set.
func (s EdgeSet) Len() int { return len(s) }

// Edges returns the edges sorted by (U, V).
func (s EdgeSet) Edges() []Edge {
	out := make([]Edge, 0, len(s))
	for _, e := range s {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Vertices returns the sorted set of vertices incident to at least one edge of
// the set.
func (s EdgeSet) Vertices() []VertexID {
	seen := make(map[VertexID]bool, len(s))
	for _, e := range s {
		seen[e.U] = true
		seen[e.V] = true
	}
	out := make([]VertexID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	SortVertices(out)
	return out
}

// Clone returns a copy of the set.
func (s EdgeSet) Clone() EdgeSet {
	cp := make(EdgeSet, len(s))
	for k, e := range s {
		cp[k] = e
	}
	return cp
}

// Intersect returns the edges present in both sets.
func (s EdgeSet) Intersect(other EdgeSet) EdgeSet {
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	out := make(EdgeSet)
	for k, e := range small {
		if _, ok := large[k]; ok {
			out[k] = e
		}
	}
	return out
}

// Union returns the edges present in either set.
func (s EdgeSet) Union(other EdgeSet) EdgeSet {
	out := make(EdgeSet, len(s)+len(other))
	for k, e := range s {
		out[k] = e
	}
	for k, e := range other {
		out[k] = e
	}
	return out
}

// Minus returns the edges of s that are not in other.
func (s EdgeSet) Minus(other EdgeSet) EdgeSet {
	out := make(EdgeSet)
	for k, e := range s {
		if _, ok := other[k]; !ok {
			out[k] = e
		}
	}
	return out
}

// Equal reports whether the two sets contain exactly the same edges.
func (s EdgeSet) Equal(other EdgeSet) bool {
	if len(s) != len(other) {
		return false
	}
	for k := range s {
		if _, ok := other[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every edge of s is in other.
func (s EdgeSet) SubsetOf(other EdgeSet) bool {
	if len(s) > len(other) {
		return false
	}
	for k := range s {
		if _, ok := other[k]; !ok {
			return false
		}
	}
	return true
}

// Adjacency builds a sorted adjacency-list view of the edge set, keyed by the
// original vertex identifiers.
func (s EdgeSet) Adjacency() map[VertexID][]VertexID {
	adj := make(map[VertexID][]VertexID)
	for _, e := range s {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for v := range adj {
		SortVertices(adj[v])
	}
	return adj
}

// ConnectedComponents returns the maximal connected subgraphs of the edge set
// as slices of edge sets, ordered by their smallest vertex. Vertices are the
// original identifiers. Extracting theme communities from a maximal pattern
// truss (Definition 3.5) is exactly this operation.
func (s EdgeSet) ConnectedComponents() []EdgeSet {
	adj := s.Adjacency()
	visited := make(map[VertexID]bool, len(adj))
	// Deterministic order: iterate vertices sorted.
	verts := s.Vertices()
	var comps []EdgeSet
	for _, start := range verts {
		if visited[start] {
			continue
		}
		comp := make(EdgeSet)
		queue := []VertexID{start}
		visited[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adj[u] {
				comp.Add(EdgeOf(u, w))
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
