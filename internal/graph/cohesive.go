package graph

// This file implements the classic cohesive-subgraph baselines that the
// pattern truss of the paper generalizes: k-truss (Cohen) and k-core
// (Seidman). Section 3.2 notes that a pattern truss with all frequencies
// equal to 1 and α = k-3 is exactly a k-truss, and a maximal connected
// pattern truss is then a (k-1)-core. The tests of internal/truss verify
// these equivalences against the implementations here.

// KTruss returns the maximal k-truss of g: the maximal set of edges such that
// every edge is contained in at least k-2 triangles whose edges all belong to
// the set. For k <= 2 the result is all edges of g.
func KTruss(g *Graph, k int) EdgeSet {
	edges := NewEdgeSet(g.Edges()...)
	if k <= 2 {
		return edges
	}
	need := k - 2
	adj := edges.Adjacency()

	support := make(map[uint64]int, edges.Len())
	for key, e := range edges {
		support[key] = len(IntersectSorted(adj[e.U], adj[e.V]))
	}

	queue := make([]Edge, 0)
	inQueue := make(map[uint64]bool)
	for key, e := range edges {
		if support[key] < need {
			queue = append(queue, e)
			inQueue[key] = true
		}
	}

	removeNeighbor := func(u, v VertexID) {
		l := adj[u]
		for i, x := range l {
			if x == v {
				adj[u] = append(l[:i:i], l[i+1:]...)
				return
			}
		}
	}

	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		key := e.Key()
		if !edges.Contains(e) {
			continue
		}
		// Every common neighbor w loses a triangle on edges (U,w) and (V,w).
		for _, w := range IntersectSorted(adj[e.U], adj[e.V]) {
			for _, other := range []Edge{EdgeOf(e.U, w), EdgeOf(e.V, w)} {
				ok := other.Key()
				if !edges.Contains(other) {
					continue
				}
				support[ok]--
				if support[ok] < need && !inQueue[ok] {
					queue = append(queue, other)
					inQueue[ok] = true
				}
			}
		}
		edges.Remove(e)
		delete(support, key)
		removeNeighbor(e.U, e.V)
		removeNeighbor(e.V, e.U)
	}
	return edges
}

// TrussDecomposition returns, for every edge of g, its trussness: the largest
// k such that the edge belongs to the k-truss of g. Edges in no triangle have
// trussness 2.
func TrussDecomposition(g *Graph) map[uint64]int {
	out := make(map[uint64]int, g.NumEdges())
	for _, e := range g.Edges() {
		out[e.Key()] = 2
	}
	for k := 3; ; k++ {
		t := KTruss(g, k)
		if t.Len() == 0 {
			break
		}
		for key := range t {
			out[key] = k
		}
	}
	return out
}

// KCore returns the vertices of the maximal k-core of g: the maximal vertex
// set in which every vertex has at least k neighbors within the set.
func KCore(g *Graph, k int) []VertexID {
	n := g.NumVertices()
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(VertexID(v))
	}
	queue := make([]VertexID, 0)
	for v := 0; v < n; v++ {
		if deg[v] < k {
			queue = append(queue, VertexID(v))
			removed[v] = true
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if removed[w] {
				continue
			}
			deg[w]--
			if deg[w] < k {
				removed[w] = true
				queue = append(queue, w)
			}
		}
	}
	var out []VertexID
	for v := 0; v < n; v++ {
		if !removed[v] {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// CoreNumbers returns, for every vertex of g, its core number: the largest k
// such that the vertex belongs to the k-core.
func CoreNumbers(g *Graph) []int {
	n := g.NumVertices()
	out := make([]int, n)
	for k := 1; ; k++ {
		core := KCore(g, k)
		if len(core) == 0 {
			break
		}
		for _, v := range core {
			out[v] = k
		}
	}
	return out
}
