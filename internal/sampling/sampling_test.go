package sampling

import (
	"math/rand"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/gen"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

func testNetwork(t *testing.T) *dbnet.Network {
	t.Helper()
	cfg := gen.DefaultCheckInConfig()
	cfg.Users = 150
	cfg.Communities = 10
	cfg.PeriodsPerUser = 6
	cfg.NoiseLocations = 40
	nw, _, err := gen.CheckIn(cfg)
	if err != nil {
		t.Fatalf("CheckIn: %v", err)
	}
	return nw
}

func TestBFSRespectsBudget(t *testing.T) {
	nw := testNetwork(t)
	rng := rand.New(rand.NewSource(1))
	for _, budget := range []int{10, 50, 200} {
		s, err := BFS(nw, budget, rng)
		if err != nil {
			t.Fatalf("BFS(%d): %v", budget, err)
		}
		if s.Network.NumEdges() > budget {
			t.Fatalf("sample has %d edges, budget %d", s.Network.NumEdges(), budget)
		}
		if s.Network.NumEdges() == 0 {
			t.Fatalf("empty sample")
		}
		if len(s.Original) != s.Network.NumVertices() {
			t.Fatalf("original mapping size mismatch")
		}
	}
}

func TestBFSBudgetLargerThanNetwork(t *testing.T) {
	nw := testNetwork(t)
	rng := rand.New(rand.NewSource(2))
	s, err := BFS(nw, nw.NumEdges()*10, rng)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if s.Network.NumEdges() != nw.NumEdges() {
		t.Fatalf("oversized budget should return every edge: got %d, want %d",
			s.Network.NumEdges(), nw.NumEdges())
	}
}

func TestBFSSampleSharesDatabases(t *testing.T) {
	nw := testNetwork(t)
	rng := rand.New(rand.NewSource(3))
	s, err := BFS(nw, 40, rng)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	for newID, origID := range s.Original {
		a := s.Network.Database(graph.VertexID(newID))
		b := nw.Database(origID)
		if a.Len() != b.Len() {
			t.Fatalf("database of sampled vertex %d differs from original %d", newID, origID)
		}
	}
}

func TestBFSErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := BFS(dbnet.New(0), 10, rng); err == nil {
		t.Fatalf("sampling an empty network should fail")
	}
	nw := dbnet.New(3)
	if _, err := BFS(nw, 10, rng); err == nil {
		t.Fatalf("sampling an edgeless network should fail")
	}
	nw.MustAddEdge(0, 1)
	if _, err := BFS(nw, 0, rng); err == nil {
		t.Fatalf("non-positive budget should fail")
	}
	if err := nw.AddTransaction(0, itemset.New(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := BFS(nw, 5, rng); err != nil {
		t.Fatalf("valid sampling failed: %v", err)
	}
}

func TestSeries(t *testing.T) {
	nw := testNetwork(t)
	rng := rand.New(rand.NewSource(5))
	budgets := []int{10, 40, 1 << 20}
	samples, err := Series(nw, budgets, rng)
	if err != nil {
		t.Fatalf("Series: %v", err)
	}
	if len(samples) != len(budgets) {
		t.Fatalf("got %d samples, want %d", len(samples), len(budgets))
	}
	for i, s := range samples {
		want := budgets[i]
		if want > nw.NumEdges() {
			want = nw.NumEdges()
		}
		if s.Network.NumEdges() > want {
			t.Fatalf("sample %d exceeds its budget", i)
		}
	}
	// The final (clamped) budget returns the full edge set.
	if samples[2].Network.NumEdges() != nw.NumEdges() {
		t.Fatalf("clamped budget should cover the whole network")
	}
}
