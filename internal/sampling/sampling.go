// Package sampling implements the breadth-first edge sampling the paper uses
// to evaluate the mining algorithms on networks of controlled size
// (Sections 7.1 and 7.2): starting from a randomly picked seed vertex, edges
// are collected breadth first until the requested budget is reached, and the
// sampled edges induce a smaller database network whose vertex databases are
// shared with the original.
package sampling

import (
	"fmt"
	"math/rand"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
)

// Sample holds a sampled database network together with the mapping back to
// the original vertex identifiers.
type Sample struct {
	// Network is the sampled database network with densely remapped vertices.
	Network *dbnet.Network
	// Original maps every vertex of the sampled network to its identifier in
	// the source network.
	Original []graph.VertexID
	// SeedVertex is the source vertex the breadth-first search started from.
	SeedVertex graph.VertexID
}

// BFS samples up to maxEdges edges from the network by breadth-first search
// from a random seed vertex drawn with rng, retrying from new seeds until the
// edge budget is met or every component has been exhausted (small components
// may not contain maxEdges edges). It returns an error on an empty network or
// a non-positive budget.
func BFS(nw *dbnet.Network, maxEdges int, rng *rand.Rand) (*Sample, error) {
	if nw.NumVertices() == 0 {
		return nil, fmt.Errorf("sampling: cannot sample an empty network")
	}
	if maxEdges <= 0 {
		return nil, fmt.Errorf("sampling: edge budget must be positive, got %d", maxEdges)
	}
	if nw.NumEdges() == 0 {
		return nil, fmt.Errorf("sampling: network has no edges")
	}

	g := nw.Graph()
	first := graph.VertexID(rng.Intn(nw.NumVertices()))
	var edges []graph.Edge
	seen := make(map[uint64]bool)
	visitedSeeds := make(map[graph.VertexID]bool)

	seed := first
	for len(edges) < maxEdges && len(visitedSeeds) < nw.NumVertices() {
		if !visitedSeeds[seed] {
			visitedSeeds[seed] = true
			for _, e := range g.BFSEdges(seed, maxEdges-len(edges)) {
				if !seen[e.Key()] {
					seen[e.Key()] = true
					edges = append(edges, e)
				}
			}
		}
		if len(edges) >= maxEdges {
			break
		}
		seed = graph.VertexID(rng.Intn(nw.NumVertices()))
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("sampling: breadth-first search found no edges")
	}
	sub, orig := nw.InducedByEdges(edges)
	return &Sample{Network: sub, Original: orig, SeedVertex: first}, nil
}

// Series samples a sequence of nested-size networks (one per edge budget),
// each from its own random seed, as used by the scalability experiment of
// Figure 4. Budgets larger than the network are clamped to the full edge set.
func Series(nw *dbnet.Network, budgets []int, rng *rand.Rand) ([]*Sample, error) {
	out := make([]*Sample, 0, len(budgets))
	for _, b := range budgets {
		if b > nw.NumEdges() {
			b = nw.NumEdges()
		}
		s, err := BFS(nw, b, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
