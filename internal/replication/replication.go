// Package replication implements the primary/replica serving roles on top of
// the TCJRNL delta journal (internal/journal).
//
// A Primary fronts a set of federation networks with a write-ahead path:
// every delta is validated, appended to the journal (one group-committed
// fsync covers a whole batch of concurrent updates), and applied to the
// serving state purely in memory (engine.ApplyDeltaInMemory). The staged
// shard commit that used to run synchronously inside every update becomes a
// background Checkpoint that folds the accumulated dirty shards into the
// on-disk index in one commit, stamping the journal position into both the
// index manifest (tctree.Manifest.JournalSeq) and the network file
// (dbnet.WriteFileAtomicStamped). Crash recovery compares the two stamps per
// member and replays the journal tail through the same apply path, so a
// restart converges on exactly the pre-crash state:
//
//	network stamp == manifest stamp: the common case — both files describe
//	  the same checkpoint; replay the journal records after it.
//	network stamp >  manifest stamp: the crash hit between the network
//	  write-back (the pre-commit hook) and the manifest commit. The network
//	  file is authoritative — it is the only rebuild source — so the index
//	  is resynced from it in memory, checkpointed, and replay continues
//	  from the network stamp.
//	network stamp <  manifest stamp: impossible under the checkpoint
//	  ordering (the network file is always written first); it means the
//	  rebuild source was lost or replaced, and recovery refuses.
//
// A Replica holds the same members, bootstrapped from a snapshot of the
// primary's index and network files, and replays journal records tailed from
// the primary through the identical path, tracking how far behind the
// primary's durable head it is. Replicas reuse Checkpoint to persist their
// progress locally, so a restarted replica resumes tailing from its own
// stamps instead of re-fetching the whole journal.
//
// Journal replay is NOT idempotent (re-applying an AddVertices or
// AddTransactions record duplicates state), so ordering discipline is strict:
// per member, the journal append order equals the in-memory apply order
// (both happen under the member's update lock), and a checkpoint stamps
// exactly the highest sequence number whose delta is included in the state
// being persisted.
package replication

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/federation"
	"themecomm/internal/journal"
)

// member is one replicated tenant: a federation network plus its replication
// watermarks.
type member struct {
	name string
	net  *federation.Network
	path string // network file written back by checkpoints; "" = never persisted

	// mu serializes this member's journal appends, in-memory applies and
	// checkpoints, keeping journal order equal to apply order. It plays the
	// role federation.Network.updMu plays on the classic synchronous path: a
	// journaled tenant must be updated only through its Primary.
	mu      sync.Mutex
	applied uint64 // highest journal seq applied to the in-memory state
	flushed uint64 // highest journal seq persisted by a checkpoint
	broken  error  // sticky: the in-memory state diverged from the journal
}

func newMember(n *federation.Network) (*member, error) {
	if n.DatabaseNetwork() == nil {
		return nil, fmt.Errorf("replication: network %q has no database network attached", n.Name())
	}
	return &member{name: n.Name(), net: n, path: n.NetworkPath()}, nil
}

// stamps returns (W, M): the journal seq stamped into the network file and
// into the index manifest. A missing or unstamped network file reads as
// W = 0; an eager engine reads as M = 0.
func (m *member) stamps() (uint64, uint64, error) {
	mStamp := m.net.Engine().IndexJournalSeq()
	var w uint64
	if m.path != "" {
		seq, err := dbnet.ReadJournalSeq(m.path)
		if err != nil && !os.IsNotExist(err) {
			return 0, 0, fmt.Errorf("replication: network %q: %w", m.name, err)
		}
		w = seq
	}
	return w, mStamp, nil
}

// recoverFloor establishes the member's replay floor from its on-disk stamps
// and fixes up the crash window (see the package comment). It returns the
// floor and whether the member's index had to be resynced from the network
// file.
func (m *member) recoverFloor() (floor uint64, resynced bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, mStamp, err := m.stamps()
	if err != nil {
		return 0, false, err
	}
	eng := m.net.Engine()
	switch {
	case w == mStamp:
		m.applied = mStamp
	case w > mStamp && !eng.Lazy():
		// An eager engine is built fresh from the network file, so the
		// in-memory state already includes everything up to W; there is no
		// on-disk index to lag behind it.
		m.applied = w
	case w > mStamp:
		// Crash window: the network file is ahead of the index manifest.
		// Rebuild the index content from the network file and persist it, so
		// the stamps agree again before replay continues.
		if err := eng.ResyncInMemory(m.net.DatabaseNetwork()); err != nil {
			return 0, false, fmt.Errorf("replication: network %q: resync: %w", m.name, err)
		}
		m.applied = w
		if err := m.checkpointLocked(); err != nil {
			return 0, true, err
		}
		resynced = true
	default: // w < mStamp
		return 0, false, fmt.Errorf("replication: network %q: network file stamp %d is behind index manifest %d; the network file is the rebuild source and must never lag the index — restore it from a backup or rebuild the index", m.name, w, mStamp)
	}
	m.flushed = m.applied
	return m.applied, resynced, nil
}

// replay decodes and applies one journal record to the member. Records at or
// below the member's applied seq are already part of the state and are
// skipped. Replay is fail-stop: a record that cannot be decoded or applied
// breaks the member, because skipping it would silently diverge from the
// journal every other role replays.
func (m *member) replay(rec *journal.Record) (applied bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken != nil {
		return false, m.broken
	}
	if rec.Seq <= m.applied {
		return false, nil
	}
	d, err := delta.Read(bytes.NewReader(rec.Payload), nil)
	if err != nil {
		m.broken = fmt.Errorf("replication: network %q: decode journal seq %d: %w", m.name, rec.Seq, err)
		return false, m.broken
	}
	if _, err := m.net.Engine().ApplyDeltaInMemory(m.net.DatabaseNetwork(), d); err != nil {
		m.broken = fmt.Errorf("replication: network %q: replay journal seq %d: %w", m.name, rec.Seq, err)
		return false, m.broken
	}
	m.applied = rec.Seq
	return true, nil
}

// checkpoint persists the member's in-memory progress: the dirty shards are
// folded into the on-disk index and the network file is rewritten, both
// stamped with the highest applied seq. No-op when nothing advanced since the
// last checkpoint.
func (m *member) checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpointLocked()
}

func (m *member) checkpointLocked() error {
	if m.broken != nil {
		return m.broken
	}
	seq := m.applied
	eng := m.net.Engine()
	if !eng.Lazy() {
		// Eager member: there is no on-disk index; the stamped network file
		// alone carries the state (a restart rebuilds the tree from it).
		if m.path == "" || seq == m.flushed {
			return nil
		}
		if err := dbnet.WriteFileAtomicStamped(m.path, m.net.DatabaseNetwork(), m.net.Dictionary(), seq); err != nil {
			return fmt.Errorf("replication: network %q: %w", m.name, err)
		}
		m.flushed = seq
		return nil
	}
	var pre func() error
	if m.path != "" {
		pre = func() error {
			return dbnet.WriteFileAtomicStamped(m.path, m.net.DatabaseNetwork(), m.net.Dictionary(), seq)
		}
	}
	if _, err := eng.Checkpoint(seq, pre); err != nil {
		return fmt.Errorf("replication: network %q: checkpoint: %w", m.name, err)
	}
	m.flushed = seq
	return nil
}

// status snapshots the member's watermarks.
func (m *member) status() NetworkStatus {
	m.mu.Lock()
	st := NetworkStatus{AppliedSeq: m.applied, FlushedSeq: m.flushed}
	if m.broken != nil {
		st.Broken = m.broken.Error()
	}
	m.mu.Unlock()
	st.DirtyShards = m.net.Engine().DirtyShards()
	return st
}

// NetworkStatus is one member's replication watermarks, as reported by
// Status on both roles.
type NetworkStatus struct {
	// AppliedSeq is the highest journal sequence number applied to the
	// member's in-memory serving state.
	AppliedSeq uint64 `json:"appliedSeq"`
	// FlushedSeq is the highest journal sequence number made durable by a
	// checkpoint (index manifest + stamped network file).
	FlushedSeq uint64 `json:"flushedSeq"`
	// DirtyShards counts in-memory shards awaiting the next checkpoint.
	DirtyShards int `json:"dirtyShards"`
	// Broken carries the member's sticky failure, if any: the member's state
	// diverged from the journal and it no longer accepts updates.
	Broken string `json:"broken,omitempty"`
}

// Status is a point-in-time view of a replication role, shaped for /healthz
// and the federation stats endpoint.
type Status struct {
	// Role is "primary" or "replica".
	Role string `json:"role"`
	// JournalSeq is the durable journal head on a primary, and the highest
	// processed sequence number on a replica.
	JournalSeq uint64 `json:"journalSeq"`
	// HeadSeq is the primary's durable head as last observed by a replica;
	// 0 on a primary (its own head is JournalSeq).
	HeadSeq uint64 `json:"headSeq,omitempty"`
	// LagRecords is how many journal records the replica still has to apply
	// to reach HeadSeq; always 0 on a primary.
	LagRecords uint64 `json:"lagRecords"`
	// LagSeconds is the age of the replication lag: how long ago the primary
	// appended the newest record this replica has applied, 0 when caught up.
	LagSeconds float64 `json:"lagSeconds"`
	// Journal carries the journal activity counters; primary only.
	Journal *journal.Stats `json:"journal,omitempty"`
	// Networks maps member names to their watermarks.
	Networks map[string]NetworkStatus `json:"networks"`
}
