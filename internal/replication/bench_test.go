package replication

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/federation"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/journal"
	"themecomm/internal/tctree"
)

// benchState builds one tenant's on-disk state (network file + sharded
// index) and attaches it to a fresh federation.
func benchState(b *testing.B, dir, name string, seed int64) (*federation.Federation, *federation.Network) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := randomNetwork(rng, 20, 50, 8, 3)
	sub := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Join(sub, "index"), 0o755); err != nil {
		b.Fatal(err)
	}
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if _, err := tree.WriteSharded(filepath.Join(sub, "index")); err != nil {
		b.Fatal(err)
	}
	netPath := filepath.Join(sub, "network.dbnet")
	if err := dbnet.WriteFileAtomic(netPath, nw, nil); err != nil {
		b.Fatal(err)
	}
	idx, err := tctree.OpenSharded(filepath.Join(sub, "index"))
	if err != nil {
		b.Fatal(err)
	}
	fed := federation.New(federation.Options{})
	if err := fed.AttachIndex(name, idx, federation.NetworkOptions{Network: nw, NetworkPath: netPath}); err != nil {
		b.Fatal(err)
	}
	n, _ := fed.Network(name)
	return fed, n
}

// toggleDeltas returns a pair of inverse deltas — applied alternately they
// keep the network bounded, so every iteration pays a comparable update.
func toggleDeltas(nw *dbnet.Network) [2]*delta.Delta {
	// An edge not present in the seeded network: randomNetwork never wires
	// vertex 0 to itself and the generator is sparse enough that some pair is
	// free; scan for one.
	var free graph.Edge
	found := false
	for u := 0; u < nw.NumVertices() && !found; u++ {
		for v := u + 1; v < nw.NumVertices() && !found; v++ {
			if !nw.Graph().HasEdge(graph.VertexID(u), graph.VertexID(v)) {
				free = graph.EdgeOf(graph.VertexID(u), graph.VertexID(v))
				found = true
			}
		}
	}
	tx := itemset.New(1, 3)
	add := &delta.Delta{
		AddEdges:        []graph.Edge{free},
		AddTransactions: []delta.VertexTransaction{{Vertex: free.U, Tx: tx}},
	}
	remove := &delta.Delta{
		RemoveEdges:        []graph.Edge{free},
		RemoveTransactions: []delta.VertexTransaction{{Vertex: free.U, Tx: tx}},
	}
	return [2]*delta.Delta{add, remove}
}

// BenchmarkJournalAppend compares the two update durability paths:
//
//	staged:    the classic synchronous path — every delta pays a staged
//	           shard commit (encode + fsync + manifest write) plus the
//	           atomic network file write-back.
//	journaled: the write-ahead fast path — one group-committed journal
//	           append plus the in-memory apply; the staged commit is
//	           deferred to a background checkpoint.
//
// The journaled arms also report fsyncs/op: with concurrent writers the
// group commit drives it well below 1.
func BenchmarkJournalAppend(b *testing.B) {
	b.Run("staged", func(b *testing.B) {
		_, n := benchState(b, b.TempDir(), "bench", 7)
		deltas := toggleDeltas(n.DatabaseNetwork())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := n.ApplyDelta(deltas[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("journaled", func(b *testing.B) {
		dir := b.TempDir()
		_, n := benchState(b, dir, "bench", 7)
		j, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		p := NewPrimary(j, PrimaryOptions{CheckpointInterval: -1})
		if err := p.Add(n); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Recover(); err != nil {
			b.Fatal(err)
		}
		deltas := toggleDeltas(n.DatabaseNetwork())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Apply("bench", deltas[i%2]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		js := j.Stats()
		b.ReportMetric(float64(js.Fsyncs)/float64(b.N), "fsyncs/op")
		if err := p.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	})

	// Concurrent updates across tenants share one journal fsync per batch:
	// this is where group commit pays off.
	b.Run("journaled-parallel", func(b *testing.B) {
		const tenants = 4
		dir := b.TempDir()
		j, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		p := NewPrimary(j, PrimaryOptions{CheckpointInterval: -1})
		names := make([]string, tenants)
		deltas := make(map[string][2]*delta.Delta, tenants)
		for i := 0; i < tenants; i++ {
			name := fmt.Sprintf("bench%d", i)
			_, n := benchState(b, dir, name, int64(7+i))
			if err := p.Add(n); err != nil {
				b.Fatal(err)
			}
			names[i] = name
			deltas[name] = toggleDeltas(n.DatabaseNetwork())
		}
		if _, err := p.Recover(); err != nil {
			b.Fatal(err)
		}
		var gid atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			name := names[int(gid.Add(1))%tenants]
			pair := deltas[name]
			i := 0
			for pb.Next() {
				if _, err := p.Apply(name, pair[i%2]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
		b.StopTimer()
		js := j.Stats()
		b.ReportMetric(float64(js.Fsyncs)/float64(b.N), "fsyncs/op")
		if err := p.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	})
}
