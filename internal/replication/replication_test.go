package replication

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/engine"
	"themecomm/internal/federation"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/journal"
	"themecomm/internal/tctree"
)

const testItems = 5

func randomNetwork(rng *rand.Rand, n, m, items, maxTx int) *dbnet.Network {
	nw := dbnet.New(n)
	for i := 0; i < m; i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < n; v++ {
		ntx := 1 + rng.Intn(maxTx)
		for i := 0; i < ntx; i++ {
			l := 1 + rng.Intn(3)
			tx := make([]itemset.Item, l)
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(items))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				panic(err)
			}
		}
	}
	return nw
}

// randomDeltaFor builds a random valid delta against nw, covering additions
// and removals (edges, transactions, tombstoned vertices).
func randomDeltaFor(rng *rand.Rand, nw *dbnet.Network, items int) *delta.Delta {
	d := &delta.Delta{}
	n := nw.NumVertices()
	for i := 0; i < 1+rng.Intn(3); i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			d.AddEdges = append(d.AddEdges, graph.EdgeOf(a, b))
		}
	}
	if edges := nw.Graph().Edges(); len(edges) > 0 {
		d.RemoveEdges = append(d.RemoveEdges, edges[rng.Intn(len(edges))])
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		d.AddTransactions = append(d.AddTransactions, delta.VertexTransaction{
			Vertex: graph.VertexID(rng.Intn(n)),
			Tx:     itemset.New(itemset.Item(rng.Intn(items)), itemset.Item(rng.Intn(items))),
		})
	}
	if rng.Intn(2) == 0 {
		v := graph.VertexID(rng.Intn(n))
		if txs := nw.Database(v).Transactions(); len(txs) > 0 {
			d.RemoveTransactions = append(d.RemoveTransactions, delta.VertexTransaction{
				Vertex: v, Tx: txs[rng.Intn(len(txs))].Clone(),
			})
		}
	}
	if rng.Intn(4) == 0 {
		d.RemoveVertices = append(d.RemoveVertices, graph.VertexID(rng.Intn(n)))
	}
	return d
}

type query struct {
	pattern itemset.Itemset
	alpha   float64
}

func testQueries() []query {
	return []query{
		{nil, 0},
		{nil, 0.15},
		{itemset.New(0), 0},
		{itemset.New(1, 2), 0.1},
		{itemset.New(0, 1, 2, 3, 4), 0},
		{itemset.New(3), 0.3},
	}
}

// assertEngineParity checks that two engines answer the test query mix with
// byte-identical trusses.
func assertEngineParity(t *testing.T, label string, got, want *engine.Engine) {
	t.Helper()
	for _, q := range testQueries() {
		g, err := got.Query(q.pattern, q.alpha)
		if err != nil {
			t.Fatalf("%s: query %v@%v: %v", label, q.pattern, q.alpha, err)
		}
		w, err := want.Query(q.pattern, q.alpha)
		if err != nil {
			t.Fatalf("%s: reference query %v@%v: %v", label, q.pattern, q.alpha, err)
		}
		if len(g.Trusses) != len(w.Trusses) {
			t.Fatalf("%s: query %v@%v: %d trusses, want %d", label, q.pattern, q.alpha, len(g.Trusses), len(w.Trusses))
		}
		for i := range w.Trusses {
			gt, wt := g.Trusses[i], w.Trusses[i]
			if !gt.Pattern.Equal(wt.Pattern) {
				t.Fatalf("%s: truss %d pattern %v, want %v", label, i, gt.Pattern, wt.Pattern)
			}
			if gt.Edges.Len() != wt.Edges.Len() {
				t.Fatalf("%s: truss %v: %d edges, want %d", label, gt.Pattern, gt.Edges.Len(), wt.Edges.Len())
			}
			for _, e := range wt.Edges {
				if !gt.Edges.Contains(e) {
					t.Fatalf("%s: truss %v misses edge %v", label, gt.Pattern, e)
				}
			}
		}
	}
}

// freshEngine builds the reference: an eager engine over a from-scratch tree.
func freshEngine(t *testing.T, nw *dbnet.Network) *engine.Engine {
	t.Helper()
	eng, err := engine.New(tctree.Build(nw, tctree.BuildOptions{}), engine.Options{})
	if err != nil {
		t.Fatalf("fresh engine: %v", err)
	}
	return eng
}

// seedState writes one tenant's initial on-disk state under dir: the network
// file and the sharded index it was built into.
func seedState(t *testing.T, dir string, nw *dbnet.Network) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, "index"), 0o755); err != nil {
		t.Fatal(err)
	}
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if tree.NumNodes() == 0 {
		t.Skip("empty tree for this seed")
	}
	if _, err := tree.WriteSharded(filepath.Join(dir, "index")); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	if err := dbnet.WriteFileAtomic(filepath.Join(dir, "network.dbnet"), nw, nil); err != nil {
		t.Fatalf("write network: %v", err)
	}
}

// openPrimary loads every named tenant from dir/<name>/{network.dbnet,index}
// and wires a Primary (background loop disabled) over dir/journal. The
// journal is closed via t.Cleanup.
func openPrimary(t *testing.T, dir string, names ...string) (*Primary, *federation.Federation) {
	t.Helper()
	fed := federation.New(federation.Options{CacheSize: 64})
	j, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	p := NewPrimary(j, PrimaryOptions{CheckpointInterval: -1})
	for _, name := range names {
		sub := filepath.Join(dir, name)
		nw, dict, err := dbnet.ReadFile(filepath.Join(sub, "network.dbnet"))
		if err != nil {
			t.Fatalf("read network %s: %v", name, err)
		}
		idx, err := tctree.OpenSharded(filepath.Join(sub, "index"))
		if err != nil {
			t.Fatalf("open index %s: %v", name, err)
		}
		if err := fed.AttachIndex(name, idx, federation.NetworkOptions{
			Network:     nw,
			Dictionary:  dict,
			NetworkPath: filepath.Join(sub, "network.dbnet"),
		}); err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		n, _ := fed.Network(name)
		if err := p.Add(n); err != nil {
			t.Fatalf("add %s: %v", name, err)
		}
	}
	return p, fed
}

// TestPrimaryApplyRecoverParity is the crash-injection test for the journaled
// fast path: updates applied after the last checkpoint live only in the
// journal; a restart must replay them and answer every query exactly like a
// process that never crashed.
func TestPrimaryApplyRecoverParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { testApplyRecoverParity(t, seed) })
	}
}

func testApplyRecoverParity(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nw := randomNetwork(rng, 14, 34, testItems, 3)
	twin := randomNetwork(rand.New(rand.NewSource(seed)), 14, 34, testItems, 3)
	dir := t.TempDir()
	seedState(t, filepath.Join(dir, "a"), nw)

	p, fed := openPrimary(t, dir, "a")
	if _, err := p.Recover(); err != nil {
		t.Fatalf("seed %d: recover: %v", seed, err)
	}
	live, _ := fed.Network("a")

	var applied []*delta.Delta
	apply := func(k int) {
		for i := 0; i < k; i++ {
			d := randomDeltaFor(rng, live.DatabaseNetwork(), testItems)
			res, err := p.Apply("a", d)
			if err != nil {
				t.Fatalf("seed %d: apply: %v", seed, err)
			}
			if want := uint64(len(applied) + 1); res.Seq != want {
				t.Fatalf("seed %d: seq %d, want %d", seed, res.Seq, want)
			}
			applied = append(applied, d)
		}
	}
	apply(3)
	if err := p.Checkpoint(); err != nil {
		t.Fatalf("seed %d: checkpoint: %v", seed, err)
	}
	apply(2) // these two live only in the journal

	// Crash: drop the whole process state. The journal was already
	// fsynced by each Apply; nothing else was persisted.
	st := p.Status()
	if st.Role != "primary" || st.JournalSeq != 5 {
		t.Fatalf("seed %d: status %+v", seed, st)
	}

	p2, fed2 := openPrimary(t, dir, "a")
	stats, err := p2.Recover()
	if err != nil {
		t.Fatalf("seed %d: recover after crash: %v", seed, err)
	}
	if stats.Replayed != 2 || stats.Head != 5 {
		t.Fatalf("seed %d: recover stats %+v, want 2 replayed of head 5", seed, stats)
	}

	for _, d := range applied {
		if err := delta.Apply(twin, d); err != nil {
			t.Fatalf("seed %d: twin apply: %v", seed, err)
		}
	}
	live2, _ := fed2.Network("a")
	assertEngineParity(t, "post-recovery", live2.Engine(), freshEngine(t, twin))

	// The recovered primary keeps going: one more update, then a clean
	// shutdown checkpoint, then a cold reopen with nothing to replay.
	d := randomDeltaFor(rng, live2.DatabaseNetwork(), testItems)
	res, err := p2.Apply("a", d)
	if err != nil || res.Seq != 6 {
		t.Fatalf("seed %d: post-recovery apply: seq %v err %v", seed, res, err)
	}
	if err := delta.Apply(twin, d); err != nil {
		t.Fatal(err)
	}
	if err := p2.Stop(); err != nil {
		t.Fatalf("seed %d: stop: %v", seed, err)
	}
	if got := live2.Engine().IndexJournalSeq(); got != 6 {
		t.Fatalf("seed %d: manifest seq %d after Stop, want 6", seed, got)
	}

	p3, fed3 := openPrimary(t, dir, "a")
	stats, err = p3.Recover()
	if err != nil {
		t.Fatalf("seed %d: cold recover: %v", seed, err)
	}
	if stats.Replayed != 0 {
		t.Fatalf("seed %d: clean shutdown still replayed %d records", seed, stats.Replayed)
	}
	live3, _ := fed3.Network("a")
	assertEngineParity(t, "cold-reopen", live3.Engine(), freshEngine(t, twin))
}

// TestRecoverCrashWindowResync pins the W > M window: the crash hit after the
// network file write-back but before the manifest commit. Recovery must
// rebuild the index from the network file and carry on.
func TestRecoverCrashWindowResync(t *testing.T) {
	seed := int64(2)
	rng := rand.New(rand.NewSource(seed))
	nw := randomNetwork(rng, 14, 34, testItems, 3)
	twin := randomNetwork(rand.New(rand.NewSource(seed)), 14, 34, testItems, 3)
	dir := t.TempDir()
	seedState(t, filepath.Join(dir, "a"), nw)

	p, fed := openPrimary(t, dir, "a")
	if _, err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	live, _ := fed.Network("a")
	var applied []*delta.Delta
	for i := 0; i < 2; i++ {
		d := randomDeltaFor(rng, live.DatabaseNetwork(), testItems)
		if _, err := p.Apply("a", d); err != nil {
			t.Fatal(err)
		}
		applied = append(applied, d)
	}
	// Simulate the torn checkpoint: the pre-commit hook's stamped network
	// write landed (W=2), the manifest commit did not (M=0).
	netPath := filepath.Join(dir, "a", "network.dbnet")
	if err := dbnet.WriteFileAtomicStamped(netPath, live.DatabaseNetwork(), live.Dictionary(), 2); err != nil {
		t.Fatal(err)
	}

	p2, fed2 := openPrimary(t, dir, "a")
	stats, err := p2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(stats.Resynced) != 1 || stats.Resynced[0] != "a" {
		t.Fatalf("resynced %v, want [a]", stats.Resynced)
	}
	if stats.Replayed != 0 {
		t.Fatalf("replayed %d records that the network file already includes", stats.Replayed)
	}
	live2, _ := fed2.Network("a")
	if got := live2.Engine().IndexJournalSeq(); got != 2 {
		t.Fatalf("manifest seq %d after resync, want 2", got)
	}
	for _, d := range applied {
		if err := delta.Apply(twin, d); err != nil {
			t.Fatal(err)
		}
	}
	assertEngineParity(t, "resync", live2.Engine(), freshEngine(t, twin))

	// And the repaired primary keeps accepting updates at the right seq.
	d := randomDeltaFor(rng, live2.DatabaseNetwork(), testItems)
	res, err := p2.Apply("a", d)
	if err != nil || res.Seq != 3 {
		t.Fatalf("apply after resync: %v %v", res, err)
	}
	if err := delta.Apply(twin, d); err != nil {
		t.Fatal(err)
	}
	if err := p2.Stop(); err != nil {
		t.Fatal(err)
	}
	p3, fed3 := openPrimary(t, dir, "a")
	if _, err := p3.Recover(); err != nil {
		t.Fatal(err)
	}
	live3, _ := fed3.Network("a")
	assertEngineParity(t, "resync-cold", live3.Engine(), freshEngine(t, twin))
}

// TestRecoverRefusesLostNetworkFile pins the W < M guard: an index manifest
// ahead of the network file means the rebuild source was lost or replaced,
// which recovery must refuse instead of silently diverging.
func TestRecoverRefusesLostNetworkFile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw := randomNetwork(rng, 14, 34, testItems, 3)
	dir := t.TempDir()
	seedState(t, filepath.Join(dir, "a"), nw)

	p, fed := openPrimary(t, dir, "a")
	if _, err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	live, _ := fed.Network("a")
	if _, err := p.Apply("a", randomDeltaFor(rng, live.DatabaseNetwork(), testItems)); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// "Lose" the stamp: rewrite the network file without one, as if an old
	// backup were restored over it.
	if err := dbnet.WriteFileAtomic(filepath.Join(dir, "a", "network.dbnet"), live.DatabaseNetwork(), nil); err != nil {
		t.Fatal(err)
	}
	p2, _ := openPrimary(t, dir, "a")
	if _, err := p2.Recover(); err == nil {
		t.Fatal("recovery accepted a network file behind the index manifest")
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

// openReplica loads every named tenant from dir/<name> into its own
// federation and registers them with a fresh Replica.
func openReplica(t *testing.T, dir string, names ...string) (*Replica, *federation.Federation) {
	t.Helper()
	fed := federation.New(federation.Options{CacheSize: 64})
	rep := NewReplica()
	for _, name := range names {
		sub := filepath.Join(dir, name)
		nw, dict, err := dbnet.ReadFile(filepath.Join(sub, "network.dbnet"))
		if err != nil {
			t.Fatalf("read network %s: %v", name, err)
		}
		idx, err := tctree.OpenSharded(filepath.Join(sub, "index"))
		if err != nil {
			t.Fatalf("open index %s: %v", name, err)
		}
		if err := fed.AttachIndex(name, idx, federation.NetworkOptions{
			Network:     nw,
			Dictionary:  dict,
			NetworkPath: filepath.Join(sub, "network.dbnet"),
		}); err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		n, _ := fed.Network(name)
		if err := rep.Add(n); err != nil {
			t.Fatalf("replica add %s: %v", name, err)
		}
	}
	return rep, fed
}

// tailInto drains the primary's journal into the replica, the in-process
// equivalent of the HTTP tailer.
func tailInto(t *testing.T, p *Primary, rep *Replica) {
	t.Helper()
	rd := p.Journal().Range(rep.From())
	defer rd.Close()
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tail: %v", err)
		}
		if err := rep.ApplyRecord(&rec); err != nil {
			t.Fatalf("replay seq %d: %v", rec.Seq, err)
		}
	}
	rep.ObserveHead(p.Journal().DurableSeq())
}

// TestReplicaFollowsPrimary is the end-to-end in-process replication test:
// bootstrap a replica from a checkpoint snapshot, tail the journal, and
// converge on byte-identical answers — then restart the replica from its own
// local checkpoint and converge again.
func TestReplicaFollowsPrimary(t *testing.T) {
	dir := t.TempDir()
	networks := map[string]*dbnet.Network{}
	for i, name := range []string{"a", "b"} {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		networks[name] = randomNetwork(rng, 14, 34, testItems, 3)
		seedState(t, filepath.Join(dir, name), networks[name])
	}
	rng := rand.New(rand.NewSource(9))

	p, fed := openPrimary(t, dir, "a", "b")
	if _, err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	applyBurst := func(k int) {
		for i := 0; i < k; i++ {
			for _, name := range []string{"a", "b"} {
				live, _ := fed.Network(name)
				if _, err := p.Apply(name, randomDeltaFor(rng, live.DatabaseNetwork(), testItems)); err != nil {
					t.Fatalf("apply %s: %v", name, err)
				}
			}
		}
	}
	applyBurst(2)
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Bootstrap the replica from the checkpointed snapshot (index + stamped
	// network file), like scp'ing the data directory.
	rdir := t.TempDir()
	for _, name := range []string{"a", "b"} {
		copyTree(t, filepath.Join(dir, name), filepath.Join(rdir, name))
	}

	// The primary moves on; these records exist only in its journal.
	applyBurst(2)

	rep, rfed := openReplica(t, rdir, "a", "b")
	// The snapshot floors differ per member ("a" checkpointed at seq 3, "b"
	// at 4); tailing starts at the slowest and the faster member skips.
	if from := rep.From(); from != 3 {
		t.Fatalf("From() = %d, want 3", from)
	}
	tailInto(t, p, rep)

	st := rep.Status()
	if st.Role != "replica" || st.LagRecords != 0 || st.LagSeconds != 0 {
		t.Fatalf("replica status %+v, want caught up", st)
	}
	if st.JournalSeq != p.Journal().DurableSeq() {
		t.Fatalf("replica at %d, primary head %d", st.JournalSeq, p.Journal().DurableSeq())
	}
	for _, name := range []string{"a", "b"} {
		pn, _ := fed.Network(name)
		rn, _ := rfed.Network(name)
		assertEngineParity(t, "replica:"+name, rn.Engine(), pn.Engine())
	}

	// A record for a network this replica does not serve is skipped, not
	// fatal — and the cursor still advances past it.
	var buf bytes.Buffer
	if err := delta.Write(&buf, &delta.Delta{AddVertices: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Journal().Append("ghost", 1, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	tailInto(t, p, rep)
	if rep.SkippedUnknown() != 1 {
		t.Fatalf("SkippedUnknown = %d, want 1", rep.SkippedUnknown())
	}
	if rep.From() != p.Journal().DurableSeq() {
		t.Fatalf("cursor %d did not advance past the foreign record (head %d)", rep.From(), p.Journal().DurableSeq())
	}

	// Replica checkpoints locally; a restarted replica resumes from its own
	// stamps (nothing to re-tail) and still matches the primary.
	if err := rep.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep2, rfed2 := openReplica(t, rdir, "a", "b")
	if from := rep2.From(); from != 7 {
		t.Fatalf("restarted From() = %d, want 7 (the slower member's checkpoint)", from)
	}
	tailInto(t, p, rep2)
	for _, name := range []string{"a", "b"} {
		pn, _ := fed.Network(name)
		rn, _ := rfed2.Network(name)
		assertEngineParity(t, "replica-restart:"+name, rn.Engine(), pn.Engine())
	}

	// Lag accounting: new primary records the replica has not applied yet.
	applyBurst(1)
	rep2.ObserveHead(p.Journal().DurableSeq())
	if st := rep2.Status(); st.LagRecords != 2 {
		t.Fatalf("LagRecords = %d, want 2", st.LagRecords)
	}
	tailInto(t, p, rep2)
	if st := rep2.Status(); st.LagRecords != 0 {
		t.Fatalf("LagRecords = %d after catch-up, want 0", st.LagRecords)
	}
}

// TestPrimaryApplyGuards covers the refusal paths: unknown networks, invalid
// deltas (which must never reach the journal), and applying before recovery.
func TestPrimaryApplyGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw := randomNetwork(rng, 14, 34, testItems, 3)
	dir := t.TempDir()
	seedState(t, filepath.Join(dir, "a"), nw)

	p, fed := openPrimary(t, dir, "a")
	live, _ := fed.Network("a")
	if _, err := p.Apply("a", &delta.Delta{AddVertices: 1}); err == nil {
		t.Fatal("apply before Recover succeeded")
	}
	if _, err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply("nope", &delta.Delta{AddVertices: 1}); err == nil {
		t.Fatal("apply to unknown network succeeded")
	}
	bad := &delta.Delta{RemoveVertices: []graph.VertexID{9999}}
	if _, err := p.Apply("a", bad); err == nil {
		t.Fatal("invalid delta accepted")
	}
	if head := p.Journal().DurableSeq(); head != 0 {
		t.Fatalf("invalid delta reached the journal (head %d)", head)
	}
	if _, err := p.Apply("a", randomDeltaFor(rng, live.DatabaseNetwork(), testItems)); err != nil {
		t.Fatalf("valid delta refused: %v", err)
	}
	if _, err := p.Recover(); err == nil {
		t.Fatal("second Recover succeeded")
	}
}
