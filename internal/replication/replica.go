package replication

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"themecomm/internal/federation"
	"themecomm/internal/journal"
)

// Replica is the read-only replication role: its members are bootstrapped
// from a snapshot of the primary's index and network files, and a tailer
// (internal/client) feeds it journal records which it replays through the
// same in-memory apply path the primary uses. Records arrive in sequence
// order; each member skips the prefix its snapshot already includes.
//
// A replica checkpoints like a primary — folding replayed state into its
// local index copy — so a restart resumes tailing from its own stamps.
type Replica struct {
	mu      sync.RWMutex
	members map[string]*member

	processed      atomic.Uint64 // highest journal seq processed (applied or skipped)
	head           atomic.Uint64 // primary durable head, as last observed
	lastMicros     atomic.Int64  // primary append time of the newest processed record
	skippedUnknown atomic.Uint64 // records naming a network that is not a member
}

// NewReplica returns an empty replica; register members with Add.
func NewReplica() *Replica {
	return &Replica{members: make(map[string]*member)}
}

// Add registers a federation network as a replicated member. The member's
// journal floor comes from its snapshot stamps; a snapshot caught in the
// checkpoint crash window is repaired exactly like on the primary.
func (r *Replica) Add(n *federation.Network) error {
	m, err := newMember(n)
	if err != nil {
		return err
	}
	if _, _, err := m.recoverFloor(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.members[m.name]; dup {
		return fmt.Errorf("replication: network %q is already a member", m.name)
	}
	r.members[m.name] = m
	return nil
}

// From returns the journal position to resume tailing from: the tailer
// should request records with sequence numbers strictly greater than it.
// Before any record has been tailed this is the slowest member's snapshot
// floor; afterwards it is the cursor ApplyRecord advanced.
func (r *Replica) From() uint64 {
	if p := r.processed.Load(); p > 0 {
		return p
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	floor := uint64(math.MaxUint64)
	for _, m := range r.members {
		m.mu.Lock()
		if m.applied < floor {
			floor = m.applied
		}
		m.mu.Unlock()
	}
	if floor == math.MaxUint64 {
		return 0
	}
	return floor
}

// ApplyRecord replays one tailed journal record. Records must arrive in
// ascending sequence order; a record for an unknown network is counted and
// skipped (the primary may host tenants this replica does not serve), and a
// record a member's snapshot already covers is skipped silently. Replay
// failures are fail-stop per member.
func (r *Replica) ApplyRecord(rec *journal.Record) error {
	r.mu.RLock()
	m := r.members[rec.Network]
	r.mu.RUnlock()
	if m == nil {
		r.skippedUnknown.Add(1)
	} else if _, err := m.replay(rec); err != nil {
		return err
	}
	r.processed.Store(rec.Seq)
	r.lastMicros.Store(rec.UnixMicros)
	if rec.Seq > r.head.Load() {
		r.head.Store(rec.Seq)
	}
	return nil
}

// ObserveHead records the primary's durable head, as reported by the feed
// (head frames of GET /api/v1/journal): it is what lag is measured against
// while no records are flowing.
func (r *Replica) ObserveHead(seq uint64) {
	for {
		cur := r.head.Load()
		if seq <= cur || r.head.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Checkpoint persists every member's replayed state into the replica's local
// index and network files, so a restart resumes from here.
func (r *Replica) Checkpoint() error {
	r.mu.RLock()
	members := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		members = append(members, m)
	}
	r.mu.RUnlock()
	var errs []error
	for _, m := range members {
		if err := m.checkpoint(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// SkippedUnknown returns how many tailed records named a network that is not
// a member of this replica.
func (r *Replica) SkippedUnknown() uint64 { return r.skippedUnknown.Load() }

// Status reports the replica's replication state. Lag is measured against
// the highest primary head observed: LagRecords counts the records still to
// apply, LagSeconds is how long ago the primary appended the newest record
// this replica has processed (0 when caught up).
func (r *Replica) Status() Status {
	processed := r.From()
	head := r.head.Load()
	if head < processed {
		head = processed
	}
	st := Status{
		Role:       "replica",
		JournalSeq: processed,
		HeadSeq:    head,
		LagRecords: head - processed,
		Networks:   make(map[string]NetworkStatus),
	}
	if st.LagRecords > 0 {
		if micros := r.lastMicros.Load(); micros > 0 {
			st.LagSeconds = time.Since(time.UnixMicro(micros)).Seconds()
			if st.LagSeconds < 0 {
				st.LagSeconds = 0
			}
		}
	}
	r.mu.RLock()
	for name, m := range r.members {
		st.Networks[name] = m.status()
	}
	r.mu.RUnlock()
	return st
}
