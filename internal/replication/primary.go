package replication

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"sync"
	"time"

	"themecomm/internal/delta"
	"themecomm/internal/engine"
	"themecomm/internal/federation"
	"themecomm/internal/journal"
)

// DefaultCheckpointInterval is the background checkpoint cadence when
// PrimaryOptions.CheckpointInterval is zero.
const DefaultCheckpointInterval = 5 * time.Second

// PrimaryOptions configures a Primary.
type PrimaryOptions struct {
	// CheckpointInterval is the cadence of the background checkpoint loop
	// run by Start. Zero means DefaultCheckpointInterval; negative disables
	// the loop (checkpoints then happen only through explicit Checkpoint
	// calls and the final one in Stop).
	CheckpointInterval time.Duration
	// Logger, when non-nil, receives recovery and checkpoint log lines.
	Logger *slog.Logger
}

// Primary is the writable replication role: updates are journaled, applied in
// memory, and persisted by background checkpoints. Construct with NewPrimary,
// Add every journaled network, then call Recover exactly once before the
// first Apply — recovery replays the journal tail a previous process did not
// checkpoint.
type Primary struct {
	j    *journal.Journal
	opts PrimaryOptions

	mu        sync.RWMutex
	members   map[string]*member
	recovered bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewPrimary wraps an open journal as a primary. The journal must not be
// shared with another primary: sequence numbers are assigned by appending.
func NewPrimary(j *journal.Journal, opts PrimaryOptions) *Primary {
	if opts.CheckpointInterval == 0 {
		opts.CheckpointInterval = DefaultCheckpointInterval
	}
	return &Primary{j: j, opts: opts, members: make(map[string]*member), stop: make(chan struct{})}
}

// Journal returns the primary's journal, for serving the replication feed
// and the journal metrics.
func (p *Primary) Journal() *journal.Journal { return p.j }

// Add registers a federation network as a journaled member. Networks added
// before Recover have their journal floor established (and the crash window
// repaired) by Recover; a network added afterwards is treated as brand new —
// it starts at the current journal head, owning no earlier records.
func (p *Primary) Add(n *federation.Network) error {
	m, err := newMember(n)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.members[m.name]; dup {
		return fmt.Errorf("replication: network %q is already a member", m.name)
	}
	if p.recovered {
		m.applied = p.j.DurableSeq()
		m.flushed = m.applied
	}
	p.members[m.name] = m
	return nil
}

// Member reports whether the named network is a journaled member.
func (p *Primary) Member(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.members[name]
	return ok
}

// RecoverStats summarizes what Recover did.
type RecoverStats struct {
	// Replayed is the number of journal records applied to a member.
	Replayed int
	// Skipped is the number of records already covered by a member's
	// checkpoint floor, or naming a network that is not a member.
	Skipped int
	// Resynced lists members whose index was rebuilt from the network file
	// (the checkpoint crash window).
	Resynced []string
	// Head is the journal's durable head after recovery.
	Head uint64
}

// Recover brings every member back to the journal's durable head: per-member
// stamps are reconciled (see the package comment) and the journal tail beyond
// each member's floor is replayed through the in-memory apply path. It must
// be called exactly once, after every startup Add and before the first Apply.
func (p *Primary) Recover() (*RecoverStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.recovered {
		return nil, errors.New("replication: primary already recovered")
	}
	stats := &RecoverStats{Head: p.j.DurableSeq()}
	floor := uint64(math.MaxUint64)
	for _, m := range p.members {
		mFloor, resynced, err := m.recoverFloor()
		if err != nil {
			return nil, err
		}
		if resynced {
			stats.Resynced = append(stats.Resynced, m.name)
			if p.opts.Logger != nil {
				p.opts.Logger.Warn("index resynced from network file after checkpoint crash window",
					slog.String("network", m.name), slog.Uint64("seq", mFloor))
			}
		}
		if mFloor > stats.Head {
			// The member's stamps claim records the journal does not have:
			// the journal was lost or truncated behind its consumers.
			return nil, fmt.Errorf("replication: network %q: checkpoint stamp %d is beyond the journal head %d; the journal directory was lost or replaced", m.name, mFloor, stats.Head)
		}
		if mFloor < floor {
			floor = mFloor
		}
	}
	if len(p.members) > 0 && floor < stats.Head {
		rd := p.j.Range(floor)
		defer rd.Close()
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("replication: recovery read: %w", err)
			}
			m, ok := p.members[rec.Network]
			if !ok {
				stats.Skipped++
				continue
			}
			applied, err := m.replay(&rec)
			if err != nil {
				return nil, err
			}
			if applied {
				stats.Replayed++
			} else {
				stats.Skipped++
			}
		}
	}
	p.recovered = true
	if p.opts.Logger != nil {
		p.opts.Logger.Info("journal recovery complete",
			slog.Uint64("head", stats.Head),
			slog.Int("replayed", stats.Replayed),
			slog.Int("skipped", stats.Skipped))
	}
	return stats, nil
}

// ApplyResult is the outcome of one journaled update.
type ApplyResult struct {
	// Seq is the journal sequence number durably assigned to the delta: the
	// delta was fsynced before the call returned.
	Seq uint64
	// Result is the engine's apply outcome.
	Result *engine.DeltaResult
}

// Apply is the primary's update fast path: validate, append to the journal
// (group-committed — concurrent updates share one fsync), and apply in
// memory. The staged shard commit is deferred to the next checkpoint. Updates
// to the same member serialize; updates to different members batch into the
// same journal flush.
func (p *Primary) Apply(name string, d *delta.Delta) (*ApplyResult, error) {
	p.mu.RLock()
	m := p.members[name]
	recovered := p.recovered
	p.mu.RUnlock()
	if m == nil {
		return nil, fmt.Errorf("replication: no network %q", name)
	}
	if !recovered {
		return nil, errors.New("replication: primary has not recovered yet")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken != nil {
		return nil, m.broken
	}
	nw := m.net.DatabaseNetwork()
	// Validate before journaling: a record once appended WILL be replayed,
	// so nothing Apply could reject may reach the journal.
	if err := d.Validate(nw); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := delta.Write(&buf, d); err != nil {
		return nil, err
	}
	eng := m.net.Engine()
	// The record's epoch is the one this delta installs: applies to this
	// member are serialized here and ApplyDeltaInMemory bumps by exactly one.
	seq, err := p.j.Append(name, eng.IndexEpoch()+1, buf.Bytes())
	if err != nil {
		return nil, err
	}
	res, err := eng.ApplyDeltaInMemory(nw, d)
	if err != nil {
		// The journal now holds a record the serving state does not. Fail
		// stop for this member rather than serve a state that diverges from
		// what recovery and every replica will replay.
		m.broken = fmt.Errorf("replication: network %q: journaled seq %d but apply failed: %w", name, seq, err)
		return nil, m.broken
	}
	m.applied = seq
	return &ApplyResult{Seq: seq, Result: res}, nil
}

// Checkpoint folds every member's in-memory progress into its on-disk index
// and network file. Members checkpoint independently; the error joins the
// per-member failures.
func (p *Primary) Checkpoint() error {
	var errs []error
	for _, m := range p.memberList() {
		if err := m.checkpoint(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Start launches the background checkpoint loop. It is a no-op when the
// configured interval is negative.
func (p *Primary) Start() {
	if p.opts.CheckpointInterval < 0 {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		ticker := time.NewTicker(p.opts.CheckpointInterval)
		defer ticker.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				if err := p.Checkpoint(); err != nil && p.opts.Logger != nil {
					p.opts.Logger.Error("background checkpoint failed", slog.String("error", err.Error()))
				}
			}
		}
	}()
}

// Stop halts the background loop and runs one final checkpoint, so a clean
// shutdown restarts with nothing to replay. The journal itself is left open;
// closing it is the caller's responsibility.
func (p *Primary) Stop() error {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	return p.Checkpoint()
}

func (p *Primary) memberList() []*member {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*member, 0, len(p.members))
	for _, m := range p.members {
		out = append(out, m)
	}
	return out
}

// Status reports the primary's replication state.
func (p *Primary) Status() Status {
	js := p.j.Stats()
	st := Status{
		Role:       "primary",
		JournalSeq: js.LastSeq,
		Journal:    &js,
		Networks:   make(map[string]NetworkStatus),
	}
	for _, m := range p.memberList() {
		st.Networks[m.name] = m.status()
	}
	return st
}
