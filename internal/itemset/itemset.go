// Package itemset provides the item and itemset (pattern) primitives used
// throughout the theme-community library.
//
// Items are small integer identifiers. An Itemset (also called a pattern or
// theme in the paper) is a canonically sorted, duplicate-free slice of items.
// The total order on items induced by their integer values is the order "≺"
// used by the set-enumeration tree (TC-Tree).
package itemset

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Item is the identifier of a single item in the item universe S.
type Item int32

// Itemset is a canonically sorted, duplicate-free set of items.
// The zero value is the empty itemset.
type Itemset []Item

// New returns a canonical Itemset built from the given items: sorted in
// ascending order with duplicates removed. The input slice is not modified.
func New(items ...Item) Itemset {
	if len(items) == 0 {
		return nil
	}
	cp := make([]Item, len(items))
	copy(cp, items)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:1]
	for _, it := range cp[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return Itemset(out)
}

// FromSorted wraps an already sorted, duplicate-free slice as an Itemset
// without copying. It panics if the slice is not strictly increasing, because
// silently accepting unsorted data would corrupt every downstream set
// operation.
func FromSorted(items []Item) Itemset {
	for i := 1; i < len(items); i++ {
		if items[i] <= items[i-1] {
			panic(fmt.Sprintf("itemset: FromSorted input not strictly increasing at index %d", i))
		}
	}
	return Itemset(items)
}

// Len returns the number of items in the set (the pattern length |p|).
func (s Itemset) Len() int { return len(s) }

// Empty reports whether the itemset has no items.
func (s Itemset) Empty() bool { return len(s) == 0 }

// Clone returns a copy of the itemset.
func (s Itemset) Clone() Itemset {
	if s == nil {
		return nil
	}
	cp := make(Itemset, len(s))
	copy(cp, s)
	return cp
}

// Contains reports whether item it is a member of s.
func (s Itemset) Contains(it Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= it })
	return i < len(s) && s[i] == it
}

// ContainsAll reports whether sub ⊆ s.
func (s Itemset) ContainsAll(sub Itemset) bool {
	return sub.SubsetOf(s)
}

// SubsetOf reports whether s ⊆ other.
func (s Itemset) SubsetOf(other Itemset) bool {
	if len(s) > len(other) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] == other[j]:
			i++
			j++
		case s[i] > other[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// ProperSubsetOf reports whether s ⊂ other and s ≠ other.
func (s Itemset) ProperSubsetOf(other Itemset) bool {
	return len(s) < len(other) && s.SubsetOf(other)
}

// Equal reports whether s and other contain exactly the same items.
func (s Itemset) Equal(other Itemset) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ other as a new Itemset.
func (s Itemset) Union(other Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			out = append(out, s[i])
			i++
		case s[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Intersect returns s ∩ other as a new Itemset.
func (s Itemset) Intersect(other Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			i++
		case s[i] > other[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ other as a new Itemset.
func (s Itemset) Minus(other Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) {
		switch {
		case j >= len(other) || s[i] < other[j]:
			out = append(out, s[i])
			i++
		case s[i] > other[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// Add returns a new Itemset containing the items of s plus it.
func (s Itemset) Add(it Item) Itemset {
	if s.Contains(it) {
		return s.Clone()
	}
	out := make(Itemset, 0, len(s)+1)
	i := 0
	for ; i < len(s) && s[i] < it; i++ {
		out = append(out, s[i])
	}
	out = append(out, it)
	out = append(out, s[i:]...)
	return out
}

// Remove returns a new Itemset containing the items of s without it.
func (s Itemset) Remove(it Item) Itemset {
	if !s.Contains(it) {
		return s.Clone()
	}
	out := make(Itemset, 0, len(s)-1)
	for _, v := range s {
		if v != it {
			out = append(out, v)
		}
	}
	return out
}

// Last returns the largest item of the set. It panics on the empty set.
func (s Itemset) Last() Item {
	if len(s) == 0 {
		panic("itemset: Last of empty itemset")
	}
	return s[len(s)-1]
}

// Prefix returns the first n items of the set (a prefix under the total
// order ≺). It panics if n is out of range.
func (s Itemset) Prefix(n int) Itemset {
	if n < 0 || n > len(s) {
		panic("itemset: Prefix length out of range")
	}
	return s[:n].Clone()
}

// IsPrefixOf reports whether s is a prefix of other under the total order ≺,
// i.e. other starts with exactly the items of s.
func (s Itemset) IsPrefixOf(other Itemset) bool {
	if len(s) > len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Subsets of length k-1 obtained by removing exactly one item.
// Used by the Apriori candidate check (Algorithm 2 of the paper).
func (s Itemset) ImmediateSubsets() []Itemset {
	if len(s) == 0 {
		return nil
	}
	out := make([]Itemset, 0, len(s))
	for i := range s {
		sub := make(Itemset, 0, len(s)-1)
		sub = append(sub, s[:i]...)
		sub = append(sub, s[i+1:]...)
		out = append(out, sub)
	}
	return out
}

// Key returns a compact string key uniquely identifying the itemset. Keys are
// suitable as map keys; the empty itemset has the empty key.
func (s Itemset) Key() Key {
	if len(s) == 0 {
		return ""
	}
	// Encode items as 4-byte big-endian runes packed into a string. This is
	// compact, allocation-light and collision-free.
	b := make([]byte, 0, 4*len(s))
	for _, it := range s {
		v := uint32(it)
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return Key(b)
}

// Key is the map-key representation of an itemset produced by Itemset.Key.
type Key string

// Itemset decodes the key back into the itemset it was produced from.
func (k Key) Itemset() Itemset {
	if len(k) == 0 {
		return nil
	}
	if len(k)%4 != 0 {
		panic("itemset: malformed key")
	}
	out := make(Itemset, 0, len(k)/4)
	for i := 0; i < len(k); i += 4 {
		v := uint32(k[i])<<24 | uint32(k[i+1])<<16 | uint32(k[i+2])<<8 | uint32(k[i+3])
		out = append(out, Item(v))
	}
	return out
}

// String renders the itemset as "{1, 5, 9}".
func (s Itemset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, it := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.Itoa(int(it)))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Compare orders itemsets first by their items lexicographically and then by
// length, so that a proper prefix sorts before its extensions. It returns
// -1, 0 or 1.
func Compare(a, b Itemset) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Sort sorts a slice of itemsets in the order defined by Compare.
func Sort(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool { return Compare(sets[i], sets[j]) < 0 })
}
