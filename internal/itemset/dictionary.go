package itemset

import (
	"fmt"
	"sort"
	"sync"
)

// Dictionary maps human-readable item names (keywords, locations, product
// names, ...) to compact Item identifiers and back. The zero value is not
// usable; construct one with NewDictionary. A Dictionary is safe for
// concurrent use: serving layers resolve names while incremental updates
// intern items the network has never seen.
type Dictionary struct {
	mu     sync.RWMutex
	byName map[string]Item
	byID   []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]Item)}
}

// Intern returns the Item assigned to name, assigning a fresh identifier if
// the name has not been seen before. Identifiers are assigned densely starting
// at 0 in interning order.
func (d *Dictionary) Intern(name string) Item {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := Item(len(d.byID))
	d.byName[name] = id
	d.byID = append(d.byID, name)
	return id
}

// PadTo interns placeholder names ("item-<id>") until the dictionary covers
// every identifier in [0, n). Callers resolving delta items by name pad the
// dictionary to the network's item universe first, so a fresh name can never
// be assigned the identifier of an existing unnamed item. Already-covered
// dictionaries are untouched.
func (d *Dictionary) PadTo(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.byID) < n {
		name := fmt.Sprintf("item-%d", len(d.byID))
		for _, taken := d.byName[name]; taken; _, taken = d.byName[name] {
			name += "'"
		}
		d.byName[name] = Item(len(d.byID))
		d.byID = append(d.byID, name)
	}
}

// InternAll interns every name and returns the resulting itemset.
func (d *Dictionary) InternAll(names []string) Itemset {
	items := make([]Item, 0, len(names))
	for _, n := range names {
		items = append(items, d.Intern(n))
	}
	return New(items...)
}

// Lookup returns the Item for name and whether it is present, without
// interning it.
func (d *Dictionary) Lookup(name string) (Item, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the name of item id. It returns an error if the identifier was
// never interned.
func (d *Dictionary) Name(id Item) (string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(d.byID) {
		return "", fmt.Errorf("itemset: unknown item id %d", id)
	}
	return d.byID[id], nil
}

// MustName is like Name but panics on unknown identifiers. It is intended for
// rendering results whose items are known to come from this dictionary.
func (d *Dictionary) MustName(id Item) string {
	name, err := d.Name(id)
	if err != nil {
		panic(err)
	}
	return name
}

// Names renders every item of the set through the dictionary, in item order.
func (d *Dictionary) Names(s Itemset) []string {
	out := make([]string, 0, len(s))
	for _, it := range s {
		out = append(out, d.MustName(it))
	}
	return out
}

// Len returns the number of distinct interned names.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// Universe returns the itemset containing every interned item.
func (d *Dictionary) Universe() Itemset {
	out := make(Itemset, d.Len())
	for i := range out {
		out[i] = Item(i)
	}
	return out
}

// SortedNames returns all interned names in lexicographic order. It is mainly
// useful for deterministic serialization and tests.
func (d *Dictionary) SortedNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.byID))
	copy(out, d.byID)
	sort.Strings(out)
	return out
}
