package itemset

import (
	"fmt"
	"sort"
)

// Dictionary maps human-readable item names (keywords, locations, product
// names, ...) to compact Item identifiers and back. The zero value is not
// usable; construct one with NewDictionary.
type Dictionary struct {
	byName map[string]Item
	byID   []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]Item)}
}

// Intern returns the Item assigned to name, assigning a fresh identifier if
// the name has not been seen before. Identifiers are assigned densely starting
// at 0 in interning order.
func (d *Dictionary) Intern(name string) Item {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := Item(len(d.byID))
	d.byName[name] = id
	d.byID = append(d.byID, name)
	return id
}

// InternAll interns every name and returns the resulting itemset.
func (d *Dictionary) InternAll(names []string) Itemset {
	items := make([]Item, 0, len(names))
	for _, n := range names {
		items = append(items, d.Intern(n))
	}
	return New(items...)
}

// Lookup returns the Item for name and whether it is present, without
// interning it.
func (d *Dictionary) Lookup(name string) (Item, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the name of item id. It returns an error if the identifier was
// never interned.
func (d *Dictionary) Name(id Item) (string, error) {
	if int(id) < 0 || int(id) >= len(d.byID) {
		return "", fmt.Errorf("itemset: unknown item id %d", id)
	}
	return d.byID[id], nil
}

// MustName is like Name but panics on unknown identifiers. It is intended for
// rendering results whose items are known to come from this dictionary.
func (d *Dictionary) MustName(id Item) string {
	name, err := d.Name(id)
	if err != nil {
		panic(err)
	}
	return name
}

// Names renders every item of the set through the dictionary, in item order.
func (d *Dictionary) Names(s Itemset) []string {
	out := make([]string, 0, len(s))
	for _, it := range s {
		out = append(out, d.MustName(it))
	}
	return out
}

// Len returns the number of distinct interned names.
func (d *Dictionary) Len() int { return len(d.byID) }

// Universe returns the itemset containing every interned item.
func (d *Dictionary) Universe() Itemset {
	out := make(Itemset, d.Len())
	for i := range out {
		out[i] = Item(i)
	}
	return out
}

// SortedNames returns all interned names in lexicographic order. It is mainly
// useful for deterministic serialization and tests.
func (d *Dictionary) SortedNames() []string {
	out := make([]string, len(d.byID))
	copy(out, d.byID)
	sort.Strings(out)
	return out
}
