package itemset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewCanonicalizes(t *testing.T) {
	s := New(5, 3, 5, 1, 3)
	want := Itemset{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("New(5,3,5,1,3) = %v, want %v", s, want)
	}
	if New().Len() != 0 {
		t.Fatalf("New() should be empty")
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("FromSorted on unsorted input should panic")
		}
	}()
	FromSorted([]Item{3, 1})
}

func TestFromSortedPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("FromSorted on duplicate input should panic")
		}
	}()
	FromSorted([]Item{1, 1, 2})
}

func TestContains(t *testing.T) {
	s := New(2, 4, 6, 8)
	for _, it := range []Item{2, 4, 6, 8} {
		if !s.Contains(it) {
			t.Errorf("Contains(%d) = false, want true", it)
		}
	}
	for _, it := range []Item{1, 3, 5, 7, 9} {
		if s.Contains(it) {
			t.Errorf("Contains(%d) = true, want false", it)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want bool
	}{
		{New(), New(1, 2), true},
		{New(1), New(1, 2), true},
		{New(1, 2), New(1, 2), true},
		{New(1, 3), New(1, 2), false},
		{New(1, 2, 3), New(1, 2), false},
		{New(2), New(1, 2, 3), true},
		{New(4), New(1, 2, 3), false},
	}
	for _, c := range cases {
		if got := c.a.SubsetOf(c.b); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestProperSubsetOf(t *testing.T) {
	if New(1, 2).ProperSubsetOf(New(1, 2)) {
		t.Errorf("a set is not a proper subset of itself")
	}
	if !New(1).ProperSubsetOf(New(1, 2)) {
		t.Errorf("{1} should be a proper subset of {1,2}")
	}
}

func TestUnionIntersectMinus(t *testing.T) {
	a := New(1, 3, 5, 7)
	b := New(3, 4, 5, 6)
	if got, want := a.Union(b), New(1, 3, 4, 5, 6, 7); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), New(3, 5); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Minus(b), New(1, 7); !got.Equal(want) {
		t.Errorf("Minus = %v, want %v", got, want)
	}
	if got := a.Intersect(New()); got.Len() != 0 {
		t.Errorf("Intersect with empty = %v, want empty", got)
	}
}

func TestAddRemove(t *testing.T) {
	s := New(1, 5)
	if got, want := s.Add(3), New(1, 3, 5); !got.Equal(want) {
		t.Errorf("Add(3) = %v, want %v", got, want)
	}
	if got, want := s.Add(5), New(1, 5); !got.Equal(want) {
		t.Errorf("Add(existing) = %v, want %v", got, want)
	}
	if got, want := s.Remove(1), New(5); !got.Equal(want) {
		t.Errorf("Remove(1) = %v, want %v", got, want)
	}
	if got, want := s.Remove(9), New(1, 5); !got.Equal(want) {
		t.Errorf("Remove(absent) = %v, want %v", got, want)
	}
	// The receiver must not be mutated.
	if !s.Equal(New(1, 5)) {
		t.Errorf("receiver mutated: %v", s)
	}
}

func TestPrefixAndIsPrefixOf(t *testing.T) {
	s := New(1, 2, 3, 4)
	if got, want := s.Prefix(2), New(1, 2); !got.Equal(want) {
		t.Errorf("Prefix(2) = %v, want %v", got, want)
	}
	if !New(1, 2).IsPrefixOf(s) {
		t.Errorf("{1,2} should be a prefix of {1,2,3,4}")
	}
	if New(2, 3).IsPrefixOf(s) {
		t.Errorf("{2,3} is not a prefix of {1,2,3,4}")
	}
	if !New().IsPrefixOf(s) {
		t.Errorf("empty set is a prefix of everything")
	}
}

func TestImmediateSubsets(t *testing.T) {
	s := New(1, 2, 3)
	subs := s.ImmediateSubsets()
	if len(subs) != 3 {
		t.Fatalf("got %d immediate subsets, want 3", len(subs))
	}
	want := []Itemset{New(2, 3), New(1, 3), New(1, 2)}
	for i := range want {
		if !subs[i].Equal(want[i]) {
			t.Errorf("subset %d = %v, want %v", i, subs[i], want[i])
		}
	}
	if got := New().ImmediateSubsets(); got != nil {
		t.Errorf("immediate subsets of empty set = %v, want nil", got)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sets := []Itemset{New(), New(0), New(1, 2, 3), New(1000000, 2000000)}
	for _, s := range sets {
		got := s.Key().Itemset()
		if !got.Equal(s) {
			t.Errorf("Key round trip of %v = %v", s, got)
		}
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := make(map[Key]Itemset)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(6)
		items := make([]Item, n)
		for j := range items {
			items[j] = Item(rng.Intn(50))
		}
		s := New(items...)
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("key collision between %v and %v", prev, s)
		}
		seen[k] = s
	}
}

func TestString(t *testing.T) {
	if got, want := New(3, 1).String(), "{1, 3}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got, want := New().String(), "{}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestCompareAndSort(t *testing.T) {
	sets := []Itemset{New(2), New(1, 2), New(1), New(1, 2, 3), New()}
	Sort(sets)
	want := []Itemset{New(), New(1), New(1, 2), New(1, 2, 3), New(2)}
	for i := range want {
		if !sets[i].Equal(want[i]) {
			t.Fatalf("sorted[%d] = %v, want %v (full: %v)", i, sets[i], want[i], sets)
		}
	}
	if Compare(New(1, 2), New(1, 2)) != 0 {
		t.Errorf("Compare of equal sets should be 0")
	}
}

func TestLastPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Last of empty set should panic")
		}
	}()
	New().Last()
}

// randomItemset is a helper for property tests.
func randomItemset(rng *rand.Rand, maxItem, maxLen int) Itemset {
	n := rng.Intn(maxLen + 1)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(rng.Intn(maxItem))
	}
	return New(items...)
}

func TestQuickSetAlgebraLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Values: func(vals []reflect.Value, rng *rand.Rand) {
		vals[0] = reflect.ValueOf(randomItemset(rng, 30, 10))
		vals[1] = reflect.ValueOf(randomItemset(rng, 30, 10))
		vals[2] = reflect.ValueOf(randomItemset(rng, 30, 10))
	}}

	// Union is commutative and intersect distributes over union.
	law := func(a, b, c Itemset) bool {
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		left := a.Intersect(b.Union(c))
		right := a.Intersect(b).Union(a.Intersect(c))
		if !left.Equal(right) {
			return false
		}
		// a \ b is disjoint from b and a = (a\b) ∪ (a∩b).
		if a.Minus(b).Intersect(b).Len() != 0 {
			return false
		}
		if !a.Minus(b).Union(a.Intersect(b)).Equal(a) {
			return false
		}
		// Subset relations.
		if !a.Intersect(b).SubsetOf(a) || !a.SubsetOf(a.Union(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalForm(t *testing.T) {
	f := func(raw []int32) bool {
		items := make([]Item, len(raw))
		for i, v := range raw {
			items[i] = Item(v & 0xffff)
		}
		s := New(items...)
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				return false
			}
		}
		// Every input item is present and nothing else is.
		for _, it := range items {
			if !s.Contains(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("data mining")
	b := d.Intern("sequential pattern")
	if a == b {
		t.Fatalf("distinct names got the same id")
	}
	if got := d.Intern("data mining"); got != a {
		t.Fatalf("re-interning returned %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if name := d.MustName(a); name != "data mining" {
		t.Fatalf("MustName = %q", name)
	}
	if _, err := d.Name(99); err == nil {
		t.Fatalf("Name of unknown id should error")
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Fatalf("Lookup of absent name should report false")
	}
	set := d.InternAll([]string{"x", "y", "x"})
	if set.Len() != 2 {
		t.Fatalf("InternAll dedup failed: %v", set)
	}
	if got := d.Universe().Len(); got != d.Len() {
		t.Fatalf("Universe size = %d, want %d", got, d.Len())
	}
	names := d.Names(New(a, b))
	if len(names) != 2 || names[0] != "data mining" {
		t.Fatalf("Names = %v", names)
	}
	sorted := d.SortedNames()
	if !sort.StringsAreSorted(sorted) {
		t.Fatalf("SortedNames not sorted: %v", sorted)
	}
}

func TestDictionaryMustNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustName of unknown id should panic")
		}
	}()
	NewDictionary().MustName(5)
}
