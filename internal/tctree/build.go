package tctree

import (
	"runtime"
	"sync"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/truss"
)

// BuildOptions configures the TC-Tree construction.
type BuildOptions struct {
	// Parallelism is the number of workers used for the first level of the
	// tree (single-item theme networks are independent, Lines 2-5 of
	// Algorithm 4). Zero or negative means GOMAXPROCS.
	Parallelism int
	// MaxDepth, when positive, bounds the length of indexed patterns. Zero
	// means unbounded.
	MaxDepth int
}

// Build constructs the TC-Tree of the database network following Algorithm 4:
// the first level indexes every single item with a non-empty maximal pattern
// truss at α = 0; deeper nodes are generated breadth-first by joining a node
// with its right siblings, evaluating each candidate pattern inside the
// intersection of the parents' trusses (Proposition 5.3), decomposing the
// result (Theorem 6.1), and pruning empty subtrees (Proposition 5.2).
func Build(nw *dbnet.Network, opts BuildOptions) *Tree {
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = int(^uint(0) >> 1)
	}

	tree := &Tree{root: &Node{Pattern: itemset.New()}}
	if opts.MaxDepth > 0 {
		tree.builtMaxDepth = opts.MaxDepth
	}
	// base holds, for every materialized node, the edge set of its maximal
	// pattern truss at α = 0. It is only needed during the build.
	base := make(map[*Node]graph.EdgeSet)

	// The first level reads the network from several goroutines; freeze the
	// lazily built structures first so those reads are safe.
	nw.Freeze()

	// Level 1: one independent job per item of S, executed by a worker pool.
	items := nw.Items()
	type level1Result struct {
		item   itemset.Item
		decomp *truss.Decomposition
	}
	results := make([]level1Result, len(items))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				it := items[idx]
				tn := nw.ThemeNetwork(itemset.New(it))
				results[idx] = level1Result{item: it, decomp: truss.Decompose(tn)}
			}
		}()
	}
	for idx := range items {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	var queue []*Node
	for _, r := range results {
		if r.decomp.Empty() {
			continue
		}
		n := &Node{Item: r.item, Pattern: itemset.New(r.item), Decomp: r.decomp}
		tree.root.addChild(n)
		base[n] = r.decomp.EdgesAt(0)
		tree.numNodes++
		queue = append(queue, n)
	}

	// Deeper levels: breadth-first join of each node with its right siblings
	// (Lines 6-12 of Algorithm 4).
	parent := make(map[*Node]*Node)
	for _, c := range tree.root.Children {
		parent[c] = tree.root
	}
	for len(queue) > 0 {
		nf := queue[0]
		queue = queue[1:]
		if nf.Pattern.Len() >= maxDepth {
			continue
		}
		siblings := parent[nf].Children
		for _, nb := range siblings {
			if nb.Item <= nf.Item {
				continue
			}
			inter := base[nf].Intersect(base[nb])
			if inter.Len() == 0 {
				continue
			}
			pc := nf.Pattern.Add(nb.Item)
			tn := nw.ThemeNetworkWithin(pc, inter)
			decomp := truss.Decompose(tn)
			if decomp.Empty() {
				continue
			}
			nc := &Node{Item: nb.Item, Pattern: pc, Decomp: decomp}
			nf.addChild(nc)
			parent[nc] = nf
			base[nc] = decomp.EdgesAt(0)
			tree.numNodes++
			queue = append(queue, nc)
		}
	}
	return tree
}
