package tctree

import (
	"bytes"
	"math/rand"
	"testing"

	"themecomm/internal/itemset"
)

// TestRoundTripAnswersQueriesIdentically is the dedicated serialize → load →
// query test: after a Write/ReadFrom round trip, the reloaded tree must
// answer every query pattern and threshold exactly like the original —
// same visit counts, same retrieval order, and truss-for-truss identical
// edges and vertex frequencies.
func TestRoundTripAnswersQueriesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	nw := randomNetwork(rng, 16, 40, 5, 4)
	tree := Build(nw, BuildOptions{})
	if tree.NumNodes() == 0 {
		t.Fatalf("generated tree is empty; pick another seed")
	}

	var buf bytes.Buffer
	if err := tree.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	reloaded, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}

	// Query patterns: every indexed pattern, a few random supersets, an
	// unindexed pattern, and the full-universe pattern.
	queries := tree.Patterns()
	var full itemset.Itemset
	for _, c := range tree.Root().Children {
		full = full.Add(c.Item)
	}
	queries = append(queries, full, itemset.New(997, 998), full.Add(999))

	alphas := []float64{0, 0.1, 0.4, tree.MaxAlpha() / 2, tree.MaxAlpha(), tree.MaxAlpha() + 1}
	for _, q := range queries {
		for _, alpha := range alphas {
			want := tree.Query(q, alpha)
			got := reloaded.Query(q, alpha)
			assertIdenticalAnswer(t, got, want)
		}
	}
	for _, alpha := range alphas {
		assertIdenticalAnswer(t, reloaded.QueryByAlpha(alpha), tree.QueryByAlpha(alpha))
	}
}

// assertIdenticalAnswer requires got and want to agree on everything except
// wall-clock duration.
func assertIdenticalAnswer(t *testing.T, got, want *QueryResult) {
	t.Helper()
	if got.RetrievedNodes != want.RetrievedNodes || got.VisitedNodes != want.VisitedNodes {
		t.Fatalf("reloaded tree retrieved/visited %d/%d nodes, original %d/%d",
			got.RetrievedNodes, got.VisitedNodes, want.RetrievedNodes, want.VisitedNodes)
	}
	if len(got.Trusses) != len(want.Trusses) {
		t.Fatalf("reloaded tree returned %d trusses, original %d", len(got.Trusses), len(want.Trusses))
	}
	for i := range want.Trusses {
		g, w := got.Trusses[i], want.Trusses[i]
		if !g.Pattern.Equal(w.Pattern) {
			t.Fatalf("truss %d: pattern %v, want %v (retrieval order changed)", i, g.Pattern, w.Pattern)
		}
		if !g.Edges.Equal(w.Edges) {
			t.Fatalf("truss %d (%v): edge sets differ after round trip", i, w.Pattern)
		}
		if len(g.Freq) != len(w.Freq) {
			t.Fatalf("truss %d (%v): %d vertices, want %d", i, w.Pattern, len(g.Freq), len(w.Freq))
		}
		for v, f := range w.Freq {
			if gf, ok := g.Freq[v]; !ok || !approx(gf, f) {
				t.Fatalf("truss %d (%v): vertex %d frequency %v, want %v", i, w.Pattern, v, gf, f)
			}
		}
	}
}
