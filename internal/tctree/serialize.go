package tctree

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/truss"
)

// The on-disk representation flattens the tree into records in breadth-first
// order, each referring to its parent by index. This keeps the format free of
// recursion, deterministic, and easy to stream with encoding/gob. The same
// record encoding is shared by the monolithic format (Write/ReadFrom, the
// whole tree in one file) and the sharded format (sharded.go, one file per
// first-level subtree plus a manifest).

type treeFile struct {
	Version int
	// MaxDepth is the BuildOptions.MaxDepth bound the tree was built with
	// (0 = unbounded); gob tolerates the field's absence in old files.
	// Incremental maintenance refuses depth-bounded trees, so the bound
	// must survive a round trip through either on-disk format.
	MaxDepth int
	Nodes    []nodeRecord
}

type nodeRecord struct {
	Parent int // index into Nodes; -1 for children of the root
	Item   int32
	Freq   []vertexFreqRecord
	Levels []levelRecord
}

type vertexFreqRecord struct {
	Vertex int32
	Freq   float64
}

type levelRecord struct {
	Alpha float64
	Edges []uint64
}

const fileVersion = 1

// recordOf renders one node as its on-disk record, referring to its parent by
// the given index.
func recordOf(c *Node, parent int) nodeRecord {
	rec := nodeRecord{Parent: parent, Item: int32(c.Item)}
	for v, f := range c.Decomp.Freq {
		rec.Freq = append(rec.Freq, vertexFreqRecord{Vertex: int32(v), Freq: f})
	}
	for _, l := range c.Decomp.Levels {
		lr := levelRecord{Alpha: l.Alpha}
		for _, e := range l.Removed {
			lr.Edges = append(lr.Edges, e.Key())
		}
		rec.Levels = append(rec.Levels, lr)
	}
	return rec
}

// nodeOf rebuilds a node from its record, given the pattern of its parent.
// The decomposition is validated and must be non-empty.
func nodeOf(rec nodeRecord, parentPattern itemset.Itemset) (*Node, error) {
	item := itemset.Item(rec.Item)
	decomp := &truss.Decomposition{
		Pattern: parentPattern.Add(item),
		Freq:    make(map[graph.VertexID]float64, len(rec.Freq)),
	}
	for _, vf := range rec.Freq {
		decomp.Freq[graph.VertexID(vf.Vertex)] = vf.Freq
	}
	for _, lr := range rec.Levels {
		level := truss.Level{Alpha: lr.Alpha}
		for _, k := range lr.Edges {
			level.Removed = append(level.Removed, graph.EdgeFromKey(k))
		}
		decomp.Levels = append(decomp.Levels, level)
	}
	if err := decomp.Validate(); err != nil {
		return nil, err
	}
	if decomp.Empty() {
		return nil, fmt.Errorf("empty decomposition")
	}
	return &Node{Item: item, Pattern: decomp.Pattern, Decomp: decomp}, nil
}

// Write serializes the tree to w.
func (t *Tree) Write(w io.Writer) error {
	if t == nil || t.root == nil {
		return fmt.Errorf("tctree: cannot serialize a nil tree")
	}
	var file treeFile
	file.Version = fileVersion
	file.MaxDepth = t.builtMaxDepth

	index := make(map[*Node]int)
	queue := []*Node{t.root}
	index[t.root] = -1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Children {
			index[c] = len(file.Nodes)
			file.Nodes = append(file.Nodes, recordOf(c, index[n]))
			queue = append(queue, c)
		}
	}
	return gob.NewEncoder(w).Encode(&file)
}

// ReadFrom deserializes a tree written by Write.
func ReadFrom(r io.Reader) (*Tree, error) {
	var file treeFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("tctree: decode: %w", err)
	}
	if file.Version != fileVersion {
		return nil, fmt.Errorf("tctree: unsupported file version %d", file.Version)
	}
	tree := &Tree{root: &Node{Pattern: itemset.New()}, builtMaxDepth: file.MaxDepth}
	nodes := make([]*Node, len(file.Nodes))
	for i, rec := range file.Nodes {
		var parent *Node
		switch {
		case rec.Parent == -1:
			parent = tree.root
		case rec.Parent >= 0 && rec.Parent < i:
			parent = nodes[rec.Parent]
		default:
			return nil, fmt.Errorf("tctree: node %d has invalid parent %d", i, rec.Parent)
		}
		n, err := nodeOf(rec, parent.Pattern)
		if err != nil {
			return nil, fmt.Errorf("tctree: node %d: %w", i, err)
		}
		parent.addChild(n)
		nodes[i] = n
		tree.numNodes++
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	return tree, nil
}

// WriteFile writes the tree to the named file, creating or truncating it.
func (t *Tree) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a tree from the named file.
func ReadFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
