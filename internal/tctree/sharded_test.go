package tctree

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"themecomm/internal/itemset"
)

func buildShardedTestTree(t *testing.T, seed int64) *Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := randomNetwork(rng, 16, 40, 5, 4)
	tree := Build(nw, BuildOptions{})
	if tree.NumNodes() == 0 || len(tree.Root().Children) < 2 {
		t.Fatalf("generated tree has %d nodes and %d shards; pick another seed",
			tree.NumNodes(), len(tree.Root().Children))
	}
	return tree
}

// TestShardedRoundTrip is the manifest + shards round-trip test: a tree
// written with WriteSharded and reassembled with LoadTree must answer every
// query exactly like the original, and the manifest totals must match the
// tree's own statistics.
func TestShardedRoundTrip(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	dir := t.TempDir()
	written, err := tree.WriteSharded(dir)
	if err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	if len(written.Shards) != len(tree.Root().Children) {
		t.Fatalf("manifest has %d shards, tree has %d first-level subtrees",
			len(written.Shards), len(tree.Root().Children))
	}
	if !IsSharded(dir) {
		t.Fatalf("IsSharded(%s) = false after WriteSharded", dir)
	}

	// The manifest read back from disk must equal the one returned.
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if len(m.Shards) != len(written.Shards) {
		t.Fatalf("reloaded manifest has %d shards, want %d", len(m.Shards), len(written.Shards))
	}
	for i, e := range m.Shards {
		if e != written.Shards[i] {
			t.Fatalf("manifest entry %d = %+v, want %+v", i, e, written.Shards[i])
		}
	}
	if m.TotalNodes() != tree.NumNodes() {
		t.Fatalf("manifest TotalNodes = %d, tree has %d", m.TotalNodes(), tree.NumNodes())
	}
	if m.Depth() != tree.Depth() {
		t.Fatalf("manifest Depth = %d, tree has %d", m.Depth(), tree.Depth())
	}
	if !approx(m.MaxAlpha(), tree.MaxAlpha()) {
		t.Fatalf("manifest MaxAlpha = %v, tree has %v", m.MaxAlpha(), tree.MaxAlpha())
	}

	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	reloaded, err := idx.LoadTree()
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	if err := reloaded.Validate(); err != nil {
		t.Fatalf("Validate after LoadTree: %v", err)
	}
	if reloaded.NumNodes() != tree.NumNodes() {
		t.Fatalf("reloaded tree has %d nodes, want %d", reloaded.NumNodes(), tree.NumNodes())
	}

	queries := tree.Patterns()
	var full itemset.Itemset
	for _, c := range tree.Root().Children {
		full = full.Add(c.Item)
	}
	queries = append(queries, full, itemset.New(997, 998), full.Add(999))
	alphas := []float64{0, 0.1, 0.4, tree.MaxAlpha() / 2, tree.MaxAlpha(), tree.MaxAlpha() + 1}
	for _, q := range queries {
		for _, alpha := range alphas {
			assertIdenticalAnswer(t, reloaded.Query(q, alpha), tree.Query(q, alpha))
		}
	}
	for _, alpha := range alphas {
		assertIdenticalAnswer(t, reloaded.QueryByAlpha(alpha), tree.QueryByAlpha(alpha))
	}
}

// TestLoadShardVerifiesChecksum flips one byte of a shard file and expects
// the next load to fail with a checksum mismatch instead of decoding garbage.
func TestLoadShardVerifiesChecksum(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	dir := t.TempDir()
	m, err := tree.WriteSharded(dir)
	if err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	entry := m.Shards[0]
	path := filepath.Join(dir, entry.File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if _, err := idx.LoadShard(itemset.Item(entry.Item)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("LoadShard on a corrupted file returned %v, want checksum mismatch", err)
	}
	// The other shards stay loadable.
	if len(m.Shards) > 1 {
		if _, err := idx.LoadShard(itemset.Item(m.Shards[1].Item)); err != nil {
			t.Fatalf("LoadShard of an intact shard: %v", err)
		}
	}
}

// TestLoadShardMissingFile removes a shard file: opening the index still
// works (only the manifest is read), but loading the shard — and therefore
// LoadTree — must fail.
func TestLoadShardMissingFile(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	dir := t.TempDir()
	m, err := tree.WriteSharded(dir)
	if err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	entry := m.Shards[len(m.Shards)-1]
	if err := os.Remove(filepath.Join(dir, entry.File)); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded after removing a shard file: %v", err)
	}
	if _, err := idx.LoadShard(itemset.Item(entry.Item)); err == nil {
		t.Fatalf("LoadShard of a missing file should fail")
	}
	if _, err := idx.LoadTree(); err == nil {
		t.Fatalf("LoadTree with a missing shard file should fail")
	}
	if _, err := idx.LoadShard(itemset.Item(m.Shards[0].Item)); err != nil {
		t.Fatalf("LoadShard of an intact shard: %v", err)
	}
	if _, err := idx.LoadShard(9999); err == nil {
		t.Fatalf("LoadShard of an unknown item should fail")
	}
}

// TestReadManifestRejectsBadFileNames guards the path-traversal surface: a
// manifest entry may only name a file directly inside the index directory.
func TestReadManifestRejectsBadFileNames(t *testing.T) {
	dir := t.TempDir()
	manifest := `{"version":1,"shards":[{"item":1,"file":"../evil.gob","nodes":1,"depth":1,"maxAlpha":1,"checksum":"crc32c:00000000"}]}`
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(manifest), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatalf("manifest naming ../evil.gob should be rejected")
	}
}

// TestReplaceShard swaps one shard for the same item taken from a tree built
// on a different network, and checks that (a) only that shard's file and
// manifest entry changed, and (b) the reassembled tree answers queries as if
// the subtree had been spliced in memory.
func TestReplaceShard(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	other := buildShardedTestTree(t, 31)

	// Find a root item present in both trees whose subtrees differ.
	var item itemset.Item
	var replacement *Node
	found := false
	for _, c := range other.Root().Children {
		if orig := tree.Root().Descendant(c.Pattern); orig != nil {
			item, replacement, found = c.Item, c, true
			break
		}
	}
	if !found {
		t.Fatalf("trees share no root item; pick other seeds")
	}

	dir := t.TempDir()
	before, err := tree.WriteSharded(dir)
	if err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if err := idx.ReplaceShard(replacement); err != nil {
		t.Fatalf("ReplaceShard: %v", err)
	}

	// Only the replaced entry may differ, and the on-disk manifest must
	// match the in-memory one.
	after, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	snapshot := idx.Manifest()
	for i, e := range after.Shards {
		if e != snapshot.Shards[i] {
			t.Fatalf("on-disk manifest entry %d = %+v, in-memory %+v", i, e, snapshot.Shards[i])
		}
		if itemset.Item(e.Item) == item {
			if e == before.Shards[i] {
				t.Fatalf("replaced shard's manifest entry did not change")
			}
			continue
		}
		if e != before.Shards[i] {
			t.Fatalf("untouched shard %d changed: %+v -> %+v", e.Item, before.Shards[i], e)
		}
	}

	// The reassembled tree must equal the original tree with the subtree
	// spliced in: queries inside the replaced shard answer like `other`,
	// queries avoiding it answer like the original.
	spliced, err := idx.LoadTree()
	if err != nil {
		t.Fatalf("LoadTree after ReplaceShard: %v", err)
	}
	if err := spliced.Validate(); err != nil {
		t.Fatalf("Validate after ReplaceShard: %v", err)
	}
	alphas := []float64{0, 0.2, tree.MaxAlpha()}
	for _, alpha := range alphas {
		assertIdenticalAnswer(t, spliced.Query(itemset.New(item), alpha), other.Query(itemset.New(item), alpha))
	}
	var avoiding itemset.Itemset
	for _, c := range tree.Root().Children {
		if c.Item != item {
			avoiding = avoiding.Add(c.Item)
		}
	}
	for _, alpha := range alphas {
		assertIdenticalAnswer(t, spliced.Query(avoiding, alpha), tree.Query(avoiding, alpha))
	}

	// Replacement is swap-only: an unknown root item is rejected.
	foreign := &Node{Item: 4096, Pattern: itemset.New(4096), Decomp: replacement.Decomp}
	if err := idx.ReplaceShard(foreign); err == nil {
		t.Fatalf("ReplaceShard with an unknown item should fail")
	}
}
