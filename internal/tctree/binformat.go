package tctree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"
	"sort"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/truss"
)

// This file implements TCBIN, the flat binary shard format (see
// docs/FORMAT.md for the byte-level specification). A TCBIN shard is a
// single little-endian file of fixed-width tables — item dictionary, node
// records, child/frequency/level/edge tables — addressed by offsets
// instead of pointers, so an opened shard is traversed in place over a
// memory map: no decode step, no per-node allocations, and the OS page
// cache shares the bytes across processes. Every offset, count and index
// is validated once at open (after the CRC-32C footer check), so the
// traversal code reads without bounds anxiety; FuzzTCBINDecode exercises
// exactly this validation surface.

const (
	binMagic    = "TCBIN\r\n\x00"
	binEndMagic = "TCBINEND"
	binVersion  = 1

	binHeaderSize = 96
	binNodeSize   = 32
	binFreqSize   = 12
	binLevelSize  = 16
	binEdgeSize   = 8
	binFooterSize = 12

	// Node record field offsets (within the 32-byte record).
	binNodeItemIdx    = 0
	binNodeChildStart = 4
	binNodeChildCount = 8
	binNodeFreqStart  = 12
	binNodeFreqCount  = 16
	binNodeLevelStart = 20
	binNodeLevelCount = 24
)

var binLE = binary.LittleEndian

// BinShard is an opened TCBIN shard: validated once, then traversed in
// place. The backing bytes are a memory map on linux (released by a
// finalizer once the shard becomes unreachable — an explicit unmap could
// pull the bytes out from under a concurrent query) or a plain read of the
// file elsewhere.
type BinShard struct {
	item      itemset.Item
	data      []byte
	dict      []byte
	nodes     []byte
	child     []byte
	freq      []byte
	level     []byte
	edge      []byte
	nodeCount uint32
}

// binShardFileName is the canonical file name for the TCBIN shard of an
// item.
func binShardFileName(item itemset.Item) string {
	return fmt.Sprintf("shard-%d.tcbin", item)
}

// encodeShardBinary flattens the subtree rooted at root into the TCBIN
// layout, returning the file payload and its manifest entry (File set to
// the canonical name).
func encodeShardBinary(root *Node) ([]byte, ShardEntry, error) {
	if root == nil || root.Decomp == nil {
		return nil, ShardEntry{}, fmt.Errorf("tctree: cannot encode a nil shard")
	}
	if root.Pattern.Len() != 1 || root.Pattern[0] != root.Item {
		return nil, ShardEntry{}, fmt.Errorf("tctree: shard root pattern %v is not the single item %d", root.Pattern, root.Item)
	}
	// Breadth-first flatten; children keep their ascending-item order, so a
	// node's children occupy a contiguous, item-sorted run of indexes.
	order := []*Node{root}
	for i := 0; i < len(order); i++ {
		order = append(order, order[i].Children...)
	}
	indexOf := make(map[*Node]uint32, len(order))
	items := make(map[itemset.Item]struct{})
	var freqTotal, levelTotal, edgeTotal uint64
	for i, n := range order {
		indexOf[n] = uint32(i)
		items[n.Item] = struct{}{}
		freqTotal += uint64(len(n.Decomp.Freq))
		levelTotal += uint64(len(n.Decomp.Levels))
		for _, l := range n.Decomp.Levels {
			edgeTotal += uint64(len(l.Removed))
		}
	}
	dict := make([]itemset.Item, 0, len(items))
	for it := range items {
		dict = append(dict, it)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	dictIdx := make(map[itemset.Item]uint32, len(dict))
	for i, it := range dict {
		dictIdx[it] = uint32(i)
	}
	nodeCount := uint64(len(order))
	childTotal := nodeCount - 1
	if nodeCount > math.MaxUint32 || freqTotal > math.MaxUint32 ||
		levelTotal > math.MaxUint32 || edgeTotal > math.MaxUint32 {
		return nil, ShardEntry{}, fmt.Errorf("tctree: shard %d exceeds the TCBIN table limits", root.Item)
	}

	dictOff := uint64(binHeaderSize)
	nodeOff := dictOff + uint64(len(dict))*4
	childOff := nodeOff + nodeCount*binNodeSize
	freqOff := childOff + childTotal*4
	levelOff := freqOff + freqTotal*binFreqSize
	edgeOff := levelOff + levelTotal*binLevelSize
	footerOff := edgeOff + edgeTotal*binEdgeSize
	buf := make([]byte, footerOff+binFooterSize)

	copy(buf, binMagic)
	binLE.PutUint32(buf[8:], binVersion)
	binLE.PutUint32(buf[12:], uint32(int32(root.Item)))
	binLE.PutUint32(buf[16:], uint32(nodeCount))
	binLE.PutUint32(buf[20:], uint32(len(dict)))
	binLE.PutUint32(buf[24:], uint32(childTotal))
	binLE.PutUint32(buf[28:], uint32(freqTotal))
	binLE.PutUint32(buf[32:], uint32(levelTotal))
	binLE.PutUint32(buf[36:], uint32(edgeTotal))
	binLE.PutUint64(buf[40:], dictOff)
	binLE.PutUint64(buf[48:], nodeOff)
	binLE.PutUint64(buf[56:], childOff)
	binLE.PutUint64(buf[64:], freqOff)
	binLE.PutUint64(buf[72:], levelOff)
	binLE.PutUint64(buf[80:], edgeOff)
	binLE.PutUint64(buf[88:], footerOff)

	for i, it := range dict {
		binLE.PutUint32(buf[dictOff+uint64(i)*4:], uint32(int32(it)))
	}

	var childNext, freqNext, levelNext, edgeNext uint32
	type vf struct {
		v graph.VertexID
		f float64
	}
	for i, n := range order {
		rec := buf[nodeOff+uint64(i)*binNodeSize:]
		binLE.PutUint32(rec[binNodeItemIdx:], dictIdx[n.Item])
		binLE.PutUint32(rec[binNodeChildStart:], childNext)
		binLE.PutUint32(rec[binNodeChildCount:], uint32(len(n.Children)))
		for _, c := range n.Children {
			binLE.PutUint32(buf[childOff+uint64(childNext)*4:], indexOf[c])
			childNext++
		}
		// Frequencies are stored sorted by vertex: gob's map iteration
		// order is nondeterministic, the flat table must not be.
		freqs := make([]vf, 0, len(n.Decomp.Freq))
		for v, f := range n.Decomp.Freq {
			freqs = append(freqs, vf{v, f})
		}
		sort.Slice(freqs, func(a, b int) bool { return freqs[a].v < freqs[b].v })
		binLE.PutUint32(rec[binNodeFreqStart:], freqNext)
		binLE.PutUint32(rec[binNodeFreqCount:], uint32(len(freqs)))
		for _, e := range freqs {
			o := freqOff + uint64(freqNext)*binFreqSize
			binLE.PutUint32(buf[o:], uint32(int32(e.v)))
			binLE.PutUint64(buf[o+4:], math.Float64bits(e.f))
			freqNext++
		}
		binLE.PutUint32(rec[binNodeLevelStart:], levelNext)
		binLE.PutUint32(rec[binNodeLevelCount:], uint32(len(n.Decomp.Levels)))
		for _, l := range n.Decomp.Levels {
			o := levelOff + uint64(levelNext)*binLevelSize
			binLE.PutUint64(buf[o:], math.Float64bits(l.Alpha))
			binLE.PutUint32(buf[o+8:], edgeNext)
			binLE.PutUint32(buf[o+12:], uint32(len(l.Removed)))
			levelNext++
			for _, e := range l.Removed {
				binLE.PutUint64(buf[edgeOff+uint64(edgeNext)*binEdgeSize:], e.Key())
				edgeNext++
			}
		}
	}

	bodyCRC := crc32.Checksum(buf[:footerOff], castagnoli)
	binLE.PutUint32(buf[footerOff:], bodyCRC)
	copy(buf[footerOff+4:], binEndMagic)

	// The manifest checksum is the BODY CRC — the same value the footer
	// embeds — not the CRC of the whole file. A file ending in its own CRC
	// hashes to a constant residue, so a whole-file CRC would be identical
	// for every TCBIN shard and staged-shard names (which embed the checksum
	// to stay distinct across shard generations) would collide.
	stats, bloom, alphaDepths := shardCatalogue(root)
	entry := ShardEntry{
		Item:        int32(root.Item),
		File:        binShardFileName(root.Item),
		Nodes:       len(order),
		Depth:       stats.Depth,
		MaxAlpha:    stats.MaxAlpha,
		Checksum:    fmt.Sprintf("crc32c:%08x", bodyCRC),
		Bloom:       bloom,
		AlphaDepths: alphaDepths,
	}
	return buf, entry, nil
}

// DecodeBinShard validates a TCBIN payload against its manifest entry and
// returns the in-place accessor. Every section offset, table range, child
// index and ordering invariant is checked here — hostile bytes must error,
// never panic or read out of bounds — so the traversal methods run
// unchecked afterwards. The payload is retained, not copied.
func DecodeBinShard(data []byte, entry ShardEntry) (*BinShard, error) {
	fail := func(format string, args ...any) (*BinShard, error) {
		return nil, fmt.Errorf("tctree: shard %s: "+format, append([]any{entry.File}, args...)...)
	}
	if len(data) < binHeaderSize+binFooterSize {
		return fail("file too small for a TCBIN shard (%d bytes)", len(data))
	}
	if string(data[:8]) != binMagic {
		return fail("bad magic")
	}
	if v := binLE.Uint32(data[8:]); v != binVersion {
		return fail("unsupported TCBIN version %d", v)
	}
	footerOff := binLE.Uint64(data[88:])
	if footerOff != uint64(len(data)-binFooterSize) {
		return fail("footer offset %d does not match file size %d", footerOff, len(data))
	}
	if string(data[footerOff+4:footerOff+12]) != binEndMagic {
		return fail("bad end magic")
	}
	if want, got := binLE.Uint32(data[footerOff:]), crc32.Checksum(data[:footerOff], castagnoli); want != got {
		return fail("checksum mismatch: file records crc32c:%08x, content is crc32c:%08x", want, got)
	}

	rootItem := int32(binLE.Uint32(data[12:]))
	nodeCount := binLE.Uint32(data[16:])
	dictCount := binLE.Uint32(data[20:])
	childTotal := binLE.Uint32(data[24:])
	freqTotal := binLE.Uint32(data[28:])
	levelTotal := binLE.Uint32(data[32:])
	edgeTotal := binLE.Uint32(data[36:])
	if nodeCount < 1 {
		return fail("empty shard")
	}
	if childTotal != nodeCount-1 {
		return fail("%d child entries for %d nodes", childTotal, nodeCount)
	}
	dictOff := uint64(binHeaderSize)
	nodeOff := dictOff + uint64(dictCount)*4
	childOff := nodeOff + uint64(nodeCount)*binNodeSize
	freqOff := childOff + uint64(childTotal)*4
	levelOff := freqOff + uint64(freqTotal)*binFreqSize
	edgeOff := levelOff + uint64(levelTotal)*binLevelSize
	expFooter := edgeOff + uint64(edgeTotal)*binEdgeSize
	stored := [7]uint64{
		binLE.Uint64(data[40:]), binLE.Uint64(data[48:]), binLE.Uint64(data[56:]),
		binLE.Uint64(data[64:]), binLE.Uint64(data[72:]), binLE.Uint64(data[80:]), footerOff,
	}
	expect := [7]uint64{dictOff, nodeOff, childOff, freqOff, levelOff, edgeOff, expFooter}
	if stored != expect {
		return fail("section offsets do not match table counts")
	}
	if rootItem != entry.Item {
		return fail("stores item %d, manifest records item %d", rootItem, entry.Item)
	}
	if uint64(nodeCount) != uint64(entry.Nodes) {
		return fail("stores %d nodes, manifest records %d", nodeCount, entry.Nodes)
	}

	b := &BinShard{
		item:      itemset.Item(rootItem),
		data:      data,
		dict:      data[dictOff:nodeOff],
		nodes:     data[nodeOff:childOff],
		child:     data[childOff:freqOff],
		freq:      data[freqOff:levelOff],
		level:     data[levelOff:edgeOff],
		edge:      data[edgeOff:footerOff],
		nodeCount: nodeCount,
	}

	for i := uint32(1); i < dictCount; i++ {
		if int32(binLE.Uint32(b.dict[i*4:])) <= int32(binLE.Uint32(b.dict[(i-1)*4:])) {
			return fail("item dictionary not strictly ascending")
		}
	}

	seenChild := make([]bool, nodeCount)
	for i := uint32(0); i < nodeCount; i++ {
		itemIdx := b.nodeU32(i, binNodeItemIdx)
		if itemIdx >= dictCount {
			return fail("node %d: item index %d out of dictionary range %d", i, itemIdx, dictCount)
		}
		cs, cc := b.nodeU32(i, binNodeChildStart), b.nodeU32(i, binNodeChildCount)
		if uint64(cs)+uint64(cc) > uint64(childTotal) {
			return fail("node %d: child range [%d,+%d) exceeds table size %d", i, cs, cc, childTotal)
		}
		fs, fc := b.nodeU32(i, binNodeFreqStart), b.nodeU32(i, binNodeFreqCount)
		if fc < 1 || uint64(fs)+uint64(fc) > uint64(freqTotal) {
			return fail("node %d: frequency range [%d,+%d) invalid for table size %d", i, fs, fc, freqTotal)
		}
		for f := fs + 1; f < fs+fc; f++ {
			if int32(binLE.Uint32(b.freq[uint64(f)*binFreqSize:])) <= int32(binLE.Uint32(b.freq[uint64(f-1)*binFreqSize:])) {
				return fail("node %d: frequency vertices not strictly ascending", i)
			}
		}
		ls, lc := b.nodeU32(i, binNodeLevelStart), b.nodeU32(i, binNodeLevelCount)
		if lc < 1 || uint64(ls)+uint64(lc) > uint64(levelTotal) {
			return fail("node %d: level range [%d,+%d) invalid for table size %d", i, ls, lc, levelTotal)
		}
		prevAlpha := math.Inf(-1)
		for l := ls; l < ls+lc; l++ {
			alpha, es, ec := b.levelAt(l)
			if math.IsNaN(alpha) || alpha <= prevAlpha {
				return fail("node %d: level thresholds not strictly ascending", i)
			}
			prevAlpha = alpha
			if ec < 1 || uint64(es)+uint64(ec) > uint64(edgeTotal) {
				return fail("node %d: edge range [%d,+%d) invalid for table size %d", i, es, ec, edgeTotal)
			}
		}
		item := b.itemOf(i)
		for c := cs; c < cs+cc; c++ {
			ci := binLE.Uint32(b.child[c*4:])
			if ci <= i || ci >= nodeCount {
				return fail("node %d: child index %d breaks breadth-first order", i, ci)
			}
			if seenChild[ci] {
				return fail("node %d appears as a child twice", ci)
			}
			seenChild[ci] = true
			cItem := b.itemOf(ci)
			if cItem <= item {
				return fail("node %d: child item %d breaks set-enumeration order", i, cItem)
			}
			if c > cs {
				if prev := b.itemOf(binLE.Uint32(b.child[(c-1)*4:])); cItem <= prev {
					return fail("node %d: children not ordered by item", i)
				}
			}
		}
	}
	if b.item != b.itemOf(0) {
		return fail("root item %d does not match header item %d", b.itemOf(0), rootItem)
	}
	return b, nil
}

// OpenBinShard memory-maps (or, off linux, reads) a TCBIN shard file and
// validates it against its manifest entry. The map is released by a
// finalizer once the shard becomes unreachable rather than on eviction:
// an eviction only drops the engine's reference, and an in-flight query
// may still be traversing the mapped bytes.
func OpenBinShard(path string, entry ShardEntry) (*BinShard, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("tctree: shard %s: %w", entry.File, err)
	}
	b, err := DecodeBinShard(data, entry)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	if unmap != nil {
		runtime.SetFinalizer(b, func(*BinShard) { unmap() })
	}
	return b, nil
}

// --- in-place accessors (all inputs validated at decode time) ---

func (b *BinShard) nodeU32(i uint32, field int) uint32 {
	return binLE.Uint32(b.nodes[int(i)*binNodeSize+field:])
}

func (b *BinShard) itemOf(i uint32) itemset.Item {
	return itemset.Item(int32(binLE.Uint32(b.dict[b.nodeU32(i, binNodeItemIdx)*4:])))
}

func (b *BinShard) levelAt(l uint32) (alpha float64, edgeStart, edgeCount uint32) {
	o := uint64(l) * binLevelSize
	return math.Float64frombits(binLE.Uint64(b.level[o:])), binLE.Uint32(b.level[o+8:]), binLE.Uint32(b.level[o+12:])
}

// nodeMaxAlpha is the node's α* bound: levels are stored ascending, so it
// is the last level's threshold.
func (b *BinShard) nodeMaxAlpha(i uint32) float64 {
	ls, lc := b.nodeU32(i, binNodeLevelStart), b.nodeU32(i, binNodeLevelCount)
	a, _, _ := b.levelAt(ls + lc - 1)
	return a
}

// freqOf looks up f_v(p) for one vertex of node i's decomposition by
// binary search over the vertex-sorted frequency run.
func (b *BinShard) freqOf(i uint32, v graph.VertexID) float64 {
	fs, fc := b.nodeU32(i, binNodeFreqStart), b.nodeU32(i, binNodeFreqCount)
	lo, hi := fs, fs+fc
	for lo < hi {
		mid := (lo + hi) / 2
		o := uint64(mid) * binFreqSize
		mv := graph.VertexID(int32(binLE.Uint32(b.freq[o:])))
		switch {
		case mv == v:
			return math.Float64frombits(binLE.Uint64(b.freq[o+4:]))
		case mv < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// trussAt reconstructs C*_p(α) for node i, mirroring Decomposition.TrussAt:
// the union of the removal sets of every level still live at α, with
// frequencies for exactly the vertices of that edge set.
func (b *BinShard) trussAt(i uint32, pattern itemset.Itemset, alphaQ float64) *truss.Truss {
	edges := make(graph.EdgeSet)
	ls, lc := b.nodeU32(i, binNodeLevelStart), b.nodeU32(i, binNodeLevelCount)
	for l := ls; l < ls+lc; l++ {
		alpha, es, ec := b.levelAt(l)
		if !truss.LevelLive(alpha, alphaQ) {
			continue
		}
		for e := es; e < es+ec; e++ {
			edges.Add(graph.EdgeFromKey(binLE.Uint64(b.edge[uint64(e)*binEdgeSize:])))
		}
	}
	t := &truss.Truss{Pattern: pattern.Clone(), Alpha: alphaQ, Edges: edges, Freq: make(map[graph.VertexID]float64)}
	for _, v := range edges.Vertices() {
		t.Freq[v] = b.freqOf(i, v)
	}
	return t
}

func (b *BinShard) RootItem() itemset.Item { return b.item }

func (b *BinShard) SizeBytes() int64 { return int64(len(b.data)) }

func (b *BinShard) QuerySub(q itemset.Itemset, alphaQ float64) ShardAnswer {
	var res ShardAnswer
	res.Visited++
	if !truss.LevelLive(b.nodeMaxAlpha(0), alphaQ) {
		return res
	}
	type frame struct {
		idx uint32
		pat itemset.Itemset
	}
	rootPat := itemset.New(b.item)
	res.Trusses = append(res.Trusses, b.trussAt(0, rootPat, alphaQ))
	queue := []frame{{0, rootPat}}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		cs, cc := b.nodeU32(f.idx, binNodeChildStart), b.nodeU32(f.idx, binNodeChildCount)
		for c := cs; c < cs+cc; c++ {
			ci := binLE.Uint32(b.child[c*4:])
			it := b.itemOf(ci)
			if !q.Contains(it) {
				continue
			}
			res.Visited++
			if !truss.LevelLive(b.nodeMaxAlpha(ci), alphaQ) {
				continue
			}
			pat := f.pat.Add(it)
			res.Trusses = append(res.Trusses, b.trussAt(ci, pat, alphaQ))
			queue = append(queue, frame{ci, pat})
		}
	}
	return res
}

func (b *BinShard) QueryContaining(q itemset.Itemset, alphaQ float64) ShardAnswer {
	var res ShardAnswer
	need0 := 0
	if need0 < q.Len() && q[need0] == b.item {
		need0++
	}
	res.Visited++
	if !truss.LevelLive(b.nodeMaxAlpha(0), alphaQ) {
		return res
	}
	type frame struct {
		idx  uint32
		pat  itemset.Itemset
		need int
	}
	rootPat := itemset.New(b.item)
	if need0 == q.Len() {
		res.Trusses = append(res.Trusses, b.trussAt(0, rootPat, alphaQ))
	}
	queue := []frame{{0, rootPat, need0}}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		cs, cc := b.nodeU32(f.idx, binNodeChildStart), b.nodeU32(f.idx, binNodeChildCount)
		for c := cs; c < cs+cc; c++ {
			ci := binLE.Uint32(b.child[c*4:])
			it := b.itemOf(ci)
			need := f.need
			if need < q.Len() {
				if it > q[need] {
					continue
				}
				if it == q[need] {
					need++
				}
			}
			res.Visited++
			if !truss.LevelLive(b.nodeMaxAlpha(ci), alphaQ) {
				continue
			}
			pat := f.pat.Add(it)
			if need == q.Len() {
				res.Trusses = append(res.Trusses, b.trussAt(ci, pat, alphaQ))
			}
			queue = append(queue, frame{ci, pat, need})
		}
	}
	return res
}

func (b *BinShard) RemovalAlphas(p itemset.Itemset) (map[uint64]float64, bool) {
	if p.Len() < 1 || p[0] != b.item {
		return nil, false
	}
	idx := uint32(0)
	for _, it := range p[1:] {
		cs, cc := b.nodeU32(idx, binNodeChildStart), b.nodeU32(idx, binNodeChildCount)
		found := false
		for c := cs; c < cs+cc; c++ {
			ci := binLE.Uint32(b.child[c*4:])
			if b.itemOf(ci) == it {
				idx, found = ci, true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	ls, lc := b.nodeU32(idx, binNodeLevelStart), b.nodeU32(idx, binNodeLevelCount)
	out := make(map[uint64]float64)
	for l := ls; l < ls+lc; l++ {
		alpha, es, ec := b.levelAt(l)
		for e := es; e < es+ec; e++ {
			out[binLE.Uint64(b.edge[uint64(e)*binEdgeSize:])] = alpha
		}
	}
	return out, true
}

func (b *BinShard) WalkPatterns(visit func(p itemset.Itemset)) {
	var dfs func(idx uint32, pat itemset.Itemset)
	dfs = func(idx uint32, pat itemset.Itemset) {
		visit(pat)
		cs, cc := b.nodeU32(idx, binNodeChildStart), b.nodeU32(idx, binNodeChildCount)
		for c := cs; c < cs+cc; c++ {
			ci := binLE.Uint32(b.child[c*4:])
			dfs(ci, pat.Add(b.itemOf(ci)))
		}
	}
	dfs(0, itemset.New(b.item))
}

// Materialize rebuilds the pointer-tree form of the shard — the bridge
// from TCBIN back to code that needs *Node (LoadTree, subtree rebuilds).
// Each node runs through the same constructor and validation as a gob
// decode.
func (b *BinShard) Materialize() (*Node, error) {
	nodes := make([]*Node, b.nodeCount)
	root, err := nodeOf(b.record(0), itemset.New())
	if err != nil {
		return nil, fmt.Errorf("tctree: shard %d: node 0: %w", b.item, err)
	}
	nodes[0] = root
	for i := uint32(0); i < b.nodeCount; i++ {
		parent := nodes[i]
		cs, cc := b.nodeU32(i, binNodeChildStart), b.nodeU32(i, binNodeChildCount)
		for c := cs; c < cs+cc; c++ {
			ci := binLE.Uint32(b.child[c*4:])
			n, err := nodeOf(b.record(ci), parent.Pattern)
			if err != nil {
				return nil, fmt.Errorf("tctree: shard %d: node %d: %w", b.item, ci, err)
			}
			parent.addChild(n)
			nodes[ci] = n
		}
	}
	return root, nil
}

// record reconstructs the serialization-form node record of node i.
func (b *BinShard) record(i uint32) nodeRecord {
	rec := nodeRecord{Item: int32(b.itemOf(i))}
	fs, fc := b.nodeU32(i, binNodeFreqStart), b.nodeU32(i, binNodeFreqCount)
	rec.Freq = make([]vertexFreqRecord, 0, fc)
	for f := fs; f < fs+fc; f++ {
		o := uint64(f) * binFreqSize
		rec.Freq = append(rec.Freq, vertexFreqRecord{
			Vertex: int32(binLE.Uint32(b.freq[o:])),
			Freq:   math.Float64frombits(binLE.Uint64(b.freq[o+4:])),
		})
	}
	ls, lc := b.nodeU32(i, binNodeLevelStart), b.nodeU32(i, binNodeLevelCount)
	rec.Levels = make([]levelRecord, 0, lc)
	for l := ls; l < ls+lc; l++ {
		alpha, es, ec := b.levelAt(l)
		lv := levelRecord{Alpha: alpha, Edges: make([]uint64, 0, ec)}
		for e := es; e < es+ec; e++ {
			lv.Edges = append(lv.Edges, binLE.Uint64(b.edge[uint64(e)*binEdgeSize:]))
		}
		rec.Levels = append(rec.Levels, lv)
	}
	return rec
}
