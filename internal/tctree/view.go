package tctree

import (
	"themecomm/internal/itemset"
	"themecomm/internal/truss"
)

// ShardView is the engine-facing read surface of one loaded shard. Two
// implementations exist: NodeView wraps a decoded pointer tree (eager
// engines and the legacy gob format) and BinShard traverses the flat TCBIN
// layout in place over a memory-mapped file. Both run the same traversals
// in the same order, so query answers — including visited-node counters —
// are byte-identical across formats.
type ShardView interface {
	// RootItem returns the shard's root item.
	RootItem() itemset.Item
	// QuerySub runs Algorithm 5 restricted to the shard (sub-pattern
	// semantics: every indexed p ⊆ q): breadth-first traversal, skipping
	// children whose item is not in q and pruning subtrees whose truss is
	// empty at α_q (Proposition 5.2). The caller guarantees the root item
	// is in q by shard selection.
	QuerySub(q itemset.Itemset, alphaQ float64) ShardAnswer
	// QueryContaining answers the containment workload: the trusses of
	// every indexed pattern p ⊇ q, reconstructed at α_q. The traversal
	// descends only into children that can still reach a superset of q
	// (set-enumeration order makes skipped-over query items unreachable)
	// and prunes empty-truss subtrees exactly like QuerySub.
	QueryContaining(q itemset.Itemset, alphaQ float64) ShardAnswer
	// RemovalAlphas returns pattern p's removal thresholds by edge key —
	// the α at which each edge of C*_p(0) leaves the truss — or false when
	// p is not indexed in the shard. Top-k ranking derives community
	// cohesion from it.
	RemovalAlphas(p itemset.Itemset) (map[uint64]float64, bool)
	// WalkPatterns visits every indexed pattern of the shard in DFS
	// pre-order (the shard root first, children in ascending item order).
	WalkPatterns(visit func(p itemset.Itemset))
	// SizeBytes is what the shard costs while resident: the mapped file
	// size for TCBIN shards, the serialized payload size for lazily decoded
	// gob shards, 0 when unknown (eager shards, which are never evicted).
	SizeBytes() int64
}

// ShardAnswer is one shard's contribution to a query: the non-empty
// reconstructed trusses in traversal order, and the number of shard nodes
// inspected (including nodes whose truss was empty at α_q).
type ShardAnswer struct {
	Trusses []*truss.Truss
	Visited int
}

// NodeView adapts a decoded *Node subtree to the ShardView interface.
type NodeView struct {
	root *Node
	size int64
}

// NewNodeView wraps a decoded shard subtree. Size is reported as 0; use
// NewNodeViewSized when the serialized size is known.
func NewNodeView(root *Node) *NodeView { return &NodeView{root: root} }

// NewNodeViewSized wraps a decoded shard subtree whose serialized payload
// was size bytes — the residency charge for lazily decoded gob shards.
func NewNodeViewSized(root *Node, size int64) *NodeView { return &NodeView{root: root, size: size} }

// Node returns the wrapped subtree root.
func (v *NodeView) Node() *Node { return v.root }

func (v *NodeView) RootItem() itemset.Item { return v.root.Item }

func (v *NodeView) SizeBytes() int64 { return v.size }

func (v *NodeView) QuerySub(q itemset.Itemset, alphaQ float64) ShardAnswer {
	var res ShardAnswer
	res.Visited++
	if !truss.LevelLive(v.root.Decomp.MaxAlpha(), alphaQ) {
		return res
	}
	res.Trusses = append(res.Trusses, v.root.Decomp.TrussAt(alphaQ))
	queue := []*Node{v.root}
	for len(queue) > 0 {
		nf := queue[0]
		queue = queue[1:]
		for _, nc := range nf.Children {
			if !q.Contains(nc.Item) {
				continue
			}
			res.Visited++
			if !truss.LevelLive(nc.Decomp.MaxAlpha(), alphaQ) {
				continue
			}
			res.Trusses = append(res.Trusses, nc.Decomp.TrussAt(alphaQ))
			queue = append(queue, nc)
		}
	}
	return res
}

func (v *NodeView) QueryContaining(q itemset.Itemset, alphaQ float64) ShardAnswer {
	var res ShardAnswer
	// need indexes the first item of q not yet on the path. Path items
	// ascend, so the covered part of q is always a prefix: descending into
	// a child with item greater than q[need] would make q[need]
	// unreachable below, and such children are pruned.
	need := 0
	if need < q.Len() && q[need] == v.root.Item {
		need++
	}
	res.Visited++
	if !truss.LevelLive(v.root.Decomp.MaxAlpha(), alphaQ) {
		return res
	}
	if need == q.Len() {
		res.Trusses = append(res.Trusses, v.root.Decomp.TrussAt(alphaQ))
	}
	type frame struct {
		n    *Node
		need int
	}
	queue := []frame{{v.root, need}}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, c := range f.n.Children {
			need := f.need
			if need < q.Len() {
				if c.Item > q[need] {
					continue
				}
				if c.Item == q[need] {
					need++
				}
			}
			res.Visited++
			if !truss.LevelLive(c.Decomp.MaxAlpha(), alphaQ) {
				continue
			}
			if need == q.Len() {
				res.Trusses = append(res.Trusses, c.Decomp.TrussAt(alphaQ))
			}
			queue = append(queue, frame{c, need})
		}
	}
	return res
}

func (v *NodeView) RemovalAlphas(p itemset.Itemset) (map[uint64]float64, bool) {
	n := v.root.Descendant(p)
	if n == nil {
		return nil, false
	}
	out := make(map[uint64]float64, n.Decomp.NumEdges())
	for _, l := range n.Decomp.Levels {
		for _, e := range l.Removed {
			out[e.Key()] = l.Alpha
		}
	}
	return out, true
}

func (v *NodeView) WalkPatterns(visit func(p itemset.Itemset)) {
	v.root.Walk(func(n *Node) { visit(n.Pattern) })
}
