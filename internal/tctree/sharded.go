package tctree

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"themecomm/internal/dbnet"
	"themecomm/internal/itemset"
)

// This file implements the sharded on-disk index format: instead of one file
// holding the whole TC-Tree, the index is a directory containing one shard
// file per first-level subtree plus a JSON manifest, index.manifest,
// recording per-shard metadata. Because every pattern indexed inside a shard
// contains the shard's root item, a server can answer a query (q, α_q) after
// loading only the shards whose root item is in q — the storage layout is
// partitioned along the same axis queries filter on. Shards are individually
// verifiable (per-file CRC-32C checksum) and individually replaceable
// (ReplaceShard swaps one shard file and its manifest entry without touching
// the others).
//
// Two shard payload encodings exist, recorded per index in the manifest's
// format field: "gob" (the legacy pointer-tree encoding, decoded into *Node)
// and "tcbin" (the flat binary layout of binformat.go, memory-mapped and
// traversed in place). A whole index uses one format; MigrateFormat converts
// in place with the usual single-manifest-write switch point.

const (
	// ManifestName is the name of the manifest file inside a sharded index
	// directory.
	ManifestName = "index.manifest"

	manifestVersion  = 1
	shardFileVersion = 1

	// FormatGob identifies the legacy gob shard encoding. Manifests written
	// before formats existed carry no format field and mean gob.
	FormatGob = "gob"
	// FormatTCBIN identifies the flat binary shard encoding opened via mmap.
	FormatTCBIN = "tcbin"

	// FormatEnvVar selects the format Tree.WriteSharded emits, so an entire
	// test suite (or CI job) runs against either encoding without code
	// changes. Unset or unrecognized values mean gob.
	FormatEnvVar = "TC_INDEX_FORMAT"
)

// normalizeFormat maps a manifest or user-supplied format string to a
// canonical constant. The empty string is the legacy spelling of gob.
func normalizeFormat(s string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", FormatGob:
		return FormatGob, nil
	case FormatTCBIN:
		return FormatTCBIN, nil
	default:
		return "", fmt.Errorf("tctree: unknown index format %q (want %q or %q)", s, FormatGob, FormatTCBIN)
	}
}

// FormatFromEnv returns the shard format selected by TC_INDEX_FORMAT,
// defaulting to gob.
func FormatFromEnv() string {
	f, err := normalizeFormat(os.Getenv(FormatEnvVar))
	if err != nil {
		return FormatGob
	}
	return f
}

// castagnoli is the CRC-32C polynomial table used for shard checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// shardFile is the gob payload of one shard file: the records of the shard's
// subtree in breadth-first order. Record 0 is the shard root (Parent == -1);
// every later record refers to its parent by index.
type shardFile struct {
	Version int
	Item    int32
	Nodes   []nodeRecord
}

// ShardEntry is the manifest metadata of one shard.
type ShardEntry struct {
	// Item is the shard's root item; every pattern indexed in the shard
	// contains it, and it is the smallest item of each such pattern.
	Item int32 `json:"item"`
	// File is the shard file name, relative to the index directory.
	File string `json:"file"`
	// Nodes is the number of TC-Tree nodes stored in the shard.
	Nodes int `json:"nodes"`
	// Depth is the longest pattern indexed in the shard.
	Depth int `json:"depth"`
	// MaxAlpha is the shard's α* bound: the largest MaxAlpha of any stored
	// decomposition. Queries with α_q ≥ MaxAlpha retrieve nothing from the
	// shard, so a serving layer may skip loading it entirely.
	MaxAlpha float64 `json:"maxAlpha"`
	// Checksum is "crc32c:" followed by eight lowercase hex digits of the
	// shard's CRC-32C: for gob shards the CRC of the whole file, verified on
	// every load; for TCBIN shards the body CRC the file's own footer embeds
	// and verifies (a whole-file CRC would be the same constant residue for
	// every TCBIN file). Distinct content yields distinct checksums either
	// way, which staged-shard file names rely on.
	Checksum string `json:"checksum"`
	// Bloom is the encoded item bloom filter over the distinct items of the
	// shard's patterns (catalogue.go), empty on indexes written before the
	// catalogue existed. A query item the filter rules out cannot appear in
	// any pattern of the shard.
	Bloom string `json:"bloom,omitempty"`
	// AlphaDepths is the encoded per-depth α* histogram: bucket d holds the
	// best α* over patterns of length d+1 (the last bucket absorbs deeper
	// ones). Empty on indexes written before the catalogue existed.
	AlphaDepths string `json:"alphaDepths,omitempty"`
}

// DecodeBloom parses the entry's item bloom filter; nil (with nil error)
// when the entry predates the catalogue.
func (e ShardEntry) DecodeBloom() (*ItemBloom, error) { return DecodeItemBloom(e.Bloom) }

// DecodeAlphaDepths parses the entry's per-depth α* histogram; nil (with
// nil error) when the entry predates the catalogue.
func (e ShardEntry) DecodeAlphaDepths() ([]float64, error) { return DecodeAlphaDepths(e.AlphaDepths) }

// Manifest is the content of index.manifest: the shard catalogue of a sharded
// index directory, ordered by ascending root item.
type Manifest struct {
	Version int `json:"version"`
	// Format names the shard payload encoding of every shard in the index:
	// "tcbin" for the flat binary layout, "gob" or absent for the legacy gob
	// encoding. Use FormatName to read it with the default applied.
	Format string `json:"format,omitempty"`
	// BuiltMaxDepth records the BuildOptions.MaxDepth bound the index was
	// built with (0 or absent = unbounded). Incremental maintenance refuses
	// depth-bounded indexes — re-decomposing one shard without the bound
	// would make it deeper than its untouched siblings.
	BuiltMaxDepth int `json:"builtMaxDepth,omitempty"`
	// JournalSeq is the sequence number of the last journaled delta whose
	// effects this index includes (0 or absent: no journal in use). It is the
	// checkpoint marker of the durable delta journal: on recovery, records
	// after JournalSeq are replayed from the journal onto this index.
	JournalSeq uint64       `json:"journalSeq,omitempty"`
	Shards     []ShardEntry `json:"shards"`

	// Aggregate statistics, computed once when the manifest is read or
	// written (seal) rather than re-scanning every entry per call: federation
	// discovery and stats endpoints call TotalNodes/Depth/MaxAlpha on every
	// request, which used to cost O(shards) each time.
	sealed        bool
	sumNodes      int
	maxEntryDepth int
	maxEntryAlpha float64
}

// FormatName returns the index's shard format with the legacy default
// applied: manifests without a format field are gob.
func (m *Manifest) FormatName() string {
	if m.Format == "" {
		return FormatGob
	}
	return m.Format
}

// seal computes the aggregate statistics once; callers that mutate Shards
// must reseal.
func (m *Manifest) seal() {
	m.sumNodes, m.maxEntryDepth, m.maxEntryAlpha = 0, 0, 0
	for _, e := range m.Shards {
		m.sumNodes += e.Nodes
		if e.Depth > m.maxEntryDepth {
			m.maxEntryDepth = e.Depth
		}
		if e.MaxAlpha > m.maxEntryAlpha {
			m.maxEntryAlpha = e.MaxAlpha
		}
	}
	m.sealed = true
}

// TotalNodes returns the number of indexed nodes across all shards.
func (m *Manifest) TotalNodes() int {
	if m.sealed {
		return m.sumNodes
	}
	total := 0
	for _, e := range m.Shards {
		total += e.Nodes
	}
	return total
}

// Depth returns the longest indexed pattern length across all shards.
func (m *Manifest) Depth() int {
	if m.sealed {
		return m.maxEntryDepth
	}
	depth := 0
	for _, e := range m.Shards {
		if e.Depth > depth {
			depth = e.Depth
		}
	}
	return depth
}

// MaxAlpha returns the largest α* bound across all shards.
func (m *Manifest) MaxAlpha() float64 {
	if m.sealed {
		return m.maxEntryAlpha
	}
	maxAlpha := 0.0
	for _, e := range m.Shards {
		if e.MaxAlpha > maxAlpha {
			maxAlpha = e.MaxAlpha
		}
	}
	return maxAlpha
}

// Stats converts the manifest entry to the shard-statistics form of
// Tree.ShardStats, the planner-facing view of the catalogue.
func (e ShardEntry) Stats() ShardStats {
	return ShardStats{Item: itemset.Item(e.Item), Nodes: e.Nodes, Depth: e.Depth, MaxAlpha: e.MaxAlpha}
}

// Items returns the shard root items in ascending order.
func (m *Manifest) Items() itemset.Itemset {
	items := make([]itemset.Item, 0, len(m.Shards))
	for _, e := range m.Shards {
		items = append(items, itemset.Item(e.Item))
	}
	return itemset.New(items...)
}

// shardFileName is the canonical file name for the shard of an item.
func shardFileName(item itemset.Item) string {
	return fmt.Sprintf("shard-%d.gob", item)
}

func checksumOf(data []byte) string {
	return fmt.Sprintf("crc32c:%08x", crc32.Checksum(data, castagnoli))
}

// encodeShard flattens and gob-encodes the subtree rooted at root, returning
// the file payload and its manifest entry (File set to the canonical name).
func encodeShard(root *Node) ([]byte, ShardEntry, error) {
	if root == nil || root.Decomp == nil {
		return nil, ShardEntry{}, fmt.Errorf("tctree: cannot encode a nil shard")
	}
	if root.Pattern.Len() != 1 || root.Pattern[0] != root.Item {
		return nil, ShardEntry{}, fmt.Errorf("tctree: shard root pattern %v is not the single item %d", root.Pattern, root.Item)
	}
	index := make(map[*Node]int)
	recs := []nodeRecord{recordOf(root, -1)}
	index[root] = 0
	queue := []*Node{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Children {
			index[c] = len(recs)
			recs = append(recs, recordOf(c, index[n]))
			queue = append(queue, c)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&shardFile{Version: shardFileVersion, Item: int32(root.Item), Nodes: recs}); err != nil {
		return nil, ShardEntry{}, fmt.Errorf("tctree: encode shard %d: %w", root.Item, err)
	}
	stats, bloom, alphaDepths := shardCatalogue(root)
	entry := ShardEntry{
		Item:        int32(root.Item),
		File:        shardFileName(root.Item),
		Nodes:       len(recs),
		Depth:       stats.Depth,
		MaxAlpha:    stats.MaxAlpha,
		Checksum:    checksumOf(buf.Bytes()),
		Bloom:       bloom,
		AlphaDepths: alphaDepths,
	}
	return buf.Bytes(), entry, nil
}

// encodeShardAs encodes the subtree in the given (normalized) format.
func encodeShardAs(root *Node, format string) ([]byte, ShardEntry, error) {
	if format == FormatTCBIN {
		return encodeShardBinary(root)
	}
	return encodeShard(root)
}

// decodeShard rebuilds a shard subtree from a file payload, verifying it
// against the manifest entry (checksum, version, root item, node count).
func decodeShard(data []byte, entry ShardEntry) (*Node, error) {
	if sum := checksumOf(data); sum != entry.Checksum {
		return nil, fmt.Errorf("tctree: shard %s: checksum mismatch: file has %s, manifest records %s", entry.File, sum, entry.Checksum)
	}
	var file shardFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&file); err != nil {
		return nil, fmt.Errorf("tctree: shard %s: decode: %w", entry.File, err)
	}
	if file.Version != shardFileVersion {
		return nil, fmt.Errorf("tctree: shard %s: unsupported file version %d", entry.File, file.Version)
	}
	if file.Item != entry.Item {
		return nil, fmt.Errorf("tctree: shard %s: stores item %d, manifest records item %d", entry.File, file.Item, entry.Item)
	}
	if len(file.Nodes) != entry.Nodes {
		return nil, fmt.Errorf("tctree: shard %s: stores %d nodes, manifest records %d", entry.File, len(file.Nodes), entry.Nodes)
	}
	if len(file.Nodes) == 0 {
		return nil, fmt.Errorf("tctree: shard %s: empty shard", entry.File)
	}
	nodes := make([]*Node, len(file.Nodes))
	for i, rec := range file.Nodes {
		var parent *Node
		if i == 0 {
			if rec.Parent != -1 {
				return nil, fmt.Errorf("tctree: shard %s: record 0 is not the shard root", entry.File)
			}
		} else {
			if rec.Parent < 0 || rec.Parent >= i {
				return nil, fmt.Errorf("tctree: shard %s: node %d has invalid parent %d", entry.File, i, rec.Parent)
			}
			parent = nodes[rec.Parent]
			if itemset.Item(rec.Item) <= parent.Item {
				return nil, fmt.Errorf("tctree: shard %s: node %d breaks set-enumeration order", entry.File, i)
			}
		}
		parentPattern := itemset.New()
		if parent != nil {
			parentPattern = parent.Pattern
		}
		n, err := nodeOf(rec, parentPattern)
		if err != nil {
			return nil, fmt.Errorf("tctree: shard %s: node %d: %w", entry.File, i, err)
		}
		if parent != nil {
			parent.addChild(n)
		}
		nodes[i] = n
	}
	if nodes[0].Item != itemset.Item(entry.Item) {
		return nil, fmt.Errorf("tctree: shard %s: root item %d does not match manifest item %d", entry.File, nodes[0].Item, entry.Item)
	}
	return nodes[0], nil
}

// testInjectWriteErr, when non-nil, simulates a crash inside writeFileAtomic:
// the temp file has been written but the rename never happens. Tests use it
// to prove that a failed commit leaves the index openable and that orphaned
// temp files are cleaned up.
var testInjectWriteErr func(name string) error

// writeFileAtomic durably writes name inside dir: the data goes to a temp
// file first, the temp file is fsynced, and only then renamed into place —
// a crash at any moment leaves either the complete new file or no file at
// all, never a torn one. (The rename itself becomes durable once the
// directory is fsynced; callers batch that with syncDir.) A failure after
// the temp file was created removes it, so errors do not strand *.tmp files.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil && testInjectWriteErr != nil {
		if err = testInjectWriteErr(name); err != nil {
			return err // simulated crash: leave the temp file behind
		}
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, name))
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs the directory so preceding renames survive a crash. Errors
// are ignored: directory fsync is unsupported on some platforms, and the
// rename has already made the change visible and consistent.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// removeOrphanTempFiles deletes *.tmp files a crashed or failed write left in
// the index directory. Temp files are invisible to the manifest, so removing
// them can never lose committed data.
func removeOrphanTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// WriteSharded writes the tree in the sharded on-disk format: one shard file
// per first-level subtree plus index.manifest, all inside dir (created if
// missing). The shard encoding is selected by TC_INDEX_FORMAT (gob when
// unset); use WriteShardedAs or WriteShardedBinary to pick explicitly. It
// returns the written manifest. A tree saved this way is read back with
// OpenSharded — either eagerly via LoadTree or shard by shard via LoadShard.
func (t *Tree) WriteSharded(dir string) (*Manifest, error) {
	return t.WriteShardedAs(dir, FormatFromEnv())
}

// WriteShardedBinary writes the tree as a sharded index in the TCBIN flat
// binary format, the zero-copy layout opened via mmap.
func (t *Tree) WriteShardedBinary(dir string) (*Manifest, error) {
	return t.WriteShardedAs(dir, FormatTCBIN)
}

// WriteShardedAs writes the tree as a sharded index in the given format
// ("gob" or "tcbin").
func (t *Tree) WriteShardedAs(dir, format string) (*Manifest, error) {
	format, err := normalizeFormat(format)
	if err != nil {
		return nil, err
	}
	if t == nil || t.root == nil {
		return nil, fmt.Errorf("tctree: cannot serialize a nil tree")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manifest{Version: manifestVersion, BuiltMaxDepth: t.builtMaxDepth}
	if format != FormatGob {
		m.Format = format
	}
	for _, c := range t.root.Children {
		data, entry, err := encodeShardAs(c, format)
		if err != nil {
			return nil, err
		}
		if err := writeFileAtomic(dir, entry.File, data); err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, entry)
	}
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// writeManifest durably replaces dir's manifest: write-to-temp, fsync,
// rename, then fsync the directory — a reader never observes a torn
// manifest, and the swap survives a crash (rename alone only orders the
// change, it does not persist the directory entry).
func writeManifest(dir string, m *Manifest) error {
	m.seal()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(dir, ManifestName, append(data, '\n')); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// ReadManifest reads and validates dir's index.manifest. Entries are returned
// sorted by ascending root item.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("tctree: %s: %w", ManifestName, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("tctree: %s: unsupported manifest version %d", ManifestName, m.Version)
	}
	format, err := normalizeFormat(m.Format)
	if err != nil {
		return nil, fmt.Errorf("tctree: %s: %w", ManifestName, err)
	}
	if m.Format != "" {
		m.Format = format
	}
	seen := make(map[int32]bool, len(m.Shards))
	for _, e := range m.Shards {
		if e.File == "" || e.File != filepath.Base(e.File) || e.File == ManifestName {
			return nil, fmt.Errorf("tctree: %s: invalid shard file name %q", ManifestName, e.File)
		}
		if e.Nodes < 1 {
			return nil, fmt.Errorf("tctree: %s: shard %d records %d nodes", ManifestName, e.Item, e.Nodes)
		}
		if seen[e.Item] {
			return nil, fmt.Errorf("tctree: %s: duplicate shard for item %d", ManifestName, e.Item)
		}
		seen[e.Item] = true
		if _, err := e.DecodeBloom(); err != nil {
			return nil, fmt.Errorf("tctree: %s: shard %d: %w", ManifestName, e.Item, err)
		}
		if _, err := e.DecodeAlphaDepths(); err != nil {
			return nil, fmt.Errorf("tctree: %s: shard %d: %w", ManifestName, e.Item, err)
		}
	}
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Item < m.Shards[j].Item })
	m.seal()
	return &m, nil
}

// IsSharded reports whether path is a sharded index directory (it contains an
// index.manifest file).
func IsSharded(path string) bool {
	st, err := os.Stat(filepath.Join(path, ManifestName))
	return err == nil && st.Mode().IsRegular()
}

// ShardedIndex is a handle on a sharded index directory. It holds the
// manifest in memory but no shard data: callers load shards on demand with
// LoadShard (or all at once with LoadTree) and may swap a single shard with
// ReplaceShard. It is safe for concurrent use.
type ShardedIndex struct {
	dir string

	mu       sync.RWMutex
	manifest *Manifest
	byItem   map[itemset.Item]int
	format   string
}

// OpenSharded opens a sharded index directory written by WriteSharded. Only
// the manifest is read; shard files are opened on demand. Orphaned *.tmp
// files left behind by a crashed or failed write are removed — they are
// invisible to the manifest, so the cleanup can never lose committed data.
func OpenSharded(dir string) (*ShardedIndex, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	removeOrphanTempFiles(dir)
	x := &ShardedIndex{dir: dir, manifest: m, byItem: make(map[itemset.Item]int, len(m.Shards)), format: m.FormatName()}
	for i, e := range m.Shards {
		x.byItem[itemset.Item(e.Item)] = i
	}
	return x, nil
}

// Dir returns the index directory.
func (x *ShardedIndex) Dir() string { return x.dir }

// Format returns the index's shard encoding, FormatGob or FormatTCBIN.
func (x *ShardedIndex) Format() string {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.format
}

// NumShards returns the number of shards in the manifest.
func (x *ShardedIndex) NumShards() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.manifest.Shards)
}

// Manifest returns a snapshot of the current manifest.
func (x *ShardedIndex) Manifest() Manifest {
	x.mu.RLock()
	defer x.mu.RUnlock()
	m := Manifest{
		Version:       x.manifest.Version,
		Format:        x.manifest.Format,
		BuiltMaxDepth: x.manifest.BuiltMaxDepth,
		JournalSeq:    x.manifest.JournalSeq,
		Shards:        make([]ShardEntry, len(x.manifest.Shards)),
	}
	copy(m.Shards, x.manifest.Shards)
	m.seal()
	return m
}

// JournalSeq returns the manifest's checkpoint marker: the sequence number
// of the last journaled delta this index includes (0 = no journal in use).
func (x *ShardedIndex) JournalSeq() uint64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.manifest.JournalSeq
}

// Items returns the shard root items in ascending order.
func (x *ShardedIndex) Items() itemset.Itemset {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.manifest.Items()
}

// Entry returns the manifest entry of the shard rooted at item.
func (x *ShardedIndex) Entry(item itemset.Item) (ShardEntry, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	i, ok := x.byItem[item]
	if !ok {
		return ShardEntry{}, false
	}
	return x.manifest.Shards[i], true
}

// LoadShard reads, checksum-verifies and decodes the shard rooted at item,
// returning its subtree. The returned subtree shares no state with the index
// and is immutable as far as the index is concerned. TCBIN shards are
// materialized into pointer form; callers that only query should prefer
// LoadShardView, which keeps them zero-copy.
func (x *ShardedIndex) LoadShard(item itemset.Item) (*Node, error) {
	if x.Format() == FormatTCBIN {
		entry, ok := x.Entry(item)
		if !ok {
			return nil, fmt.Errorf("tctree: no shard for item %d", item)
		}
		b, err := OpenBinShard(filepath.Join(x.dir, entry.File), entry)
		if err != nil {
			return nil, err
		}
		return b.Materialize()
	}
	entry, ok := x.Entry(item)
	if !ok {
		return nil, fmt.Errorf("tctree: no shard for item %d", item)
	}
	data, err := os.ReadFile(filepath.Join(x.dir, entry.File))
	if err != nil {
		return nil, fmt.Errorf("tctree: shard %d: %w", item, err)
	}
	return decodeShard(data, entry)
}

// LoadShardView opens the shard rooted at item as a query surface in its
// native representation: a memory-mapped in-place BinShard for TCBIN
// indexes, a decoded pointer tree for gob indexes. This is the read path
// serving layers should use — for TCBIN it performs no payload decode and
// no per-node allocation.
func (x *ShardedIndex) LoadShardView(item itemset.Item) (ShardView, error) {
	entry, ok := x.Entry(item)
	if !ok {
		return nil, fmt.Errorf("tctree: no shard for item %d", item)
	}
	if x.Format() == FormatTCBIN {
		return OpenBinShard(filepath.Join(x.dir, entry.File), entry)
	}
	data, err := os.ReadFile(filepath.Join(x.dir, entry.File))
	if err != nil {
		return nil, fmt.Errorf("tctree: shard %d: %w", item, err)
	}
	root, err := decodeShard(data, entry)
	if err != nil {
		return nil, err
	}
	return NewNodeViewSized(root, int64(len(data))), nil
}

// LoadTree loads every shard and assembles the full in-memory tree, the eager
// counterpart of per-shard lazy loading.
func (x *ShardedIndex) LoadTree() (*Tree, error) {
	m := x.Manifest()
	tree := &Tree{root: &Node{Pattern: itemset.New()}, builtMaxDepth: m.BuiltMaxDepth}
	for _, e := range m.Shards {
		root, err := x.LoadShard(itemset.Item(e.Item))
		if err != nil {
			return nil, err
		}
		tree.root.addChild(root)
		tree.numNodes += e.Nodes
	}
	return tree, nil
}

// ReplaceShard atomically swaps the shard of subtree's root item: the new
// payload is written under a checksum-versioned file name, and the manifest
// swap is the single switch point — a crash at any moment leaves the index
// consistent (either the old manifest pointing at the untouched old file, or
// the new manifest pointing at the fully written new file). No other shard
// is touched; the superseded file is removed best-effort afterwards. The
// subtree must be rooted at a single-item pattern already present in the
// manifest — typically a first-level node of a freshly rebuilt tree for the
// same network. Serving layers holding the old shard in memory must be told
// to reload it (e.g. engine.ReloadShard), which also invalidates their
// cached answers for queries containing the item.
func (x *ShardedIndex) ReplaceShard(subtree *Node) error {
	if subtree == nil {
		return fmt.Errorf("tctree: cannot encode a nil shard")
	}
	if _, ok := x.Entry(subtree.Item); !ok {
		return fmt.Errorf("tctree: no shard for item %d: ReplaceShard only swaps existing shards", subtree.Item)
	}
	_, err := x.CommitShards(map[itemset.Item]*Node{subtree.Item: subtree})
	return err
}

// CommitReport summarises one CommitShards (or ApplyDelta) transaction.
type CommitReport struct {
	// Replaced, Added and Removed list the items whose shards were swapped
	// for a rebuilt subtree, newly created, and deleted, each in ascending
	// item order. Items whose subtree was nil and had no shard are absent —
	// the commit did not touch them.
	Replaced []itemset.Item `json:"replaced,omitempty"`
	Added    []itemset.Item `json:"added,omitempty"`
	Removed  []itemset.Item `json:"removed,omitempty"`
}

// Touched returns every item the commit changed, in ascending order.
func (r *CommitReport) Touched() itemset.Itemset {
	items := make([]itemset.Item, 0, len(r.Replaced)+len(r.Added)+len(r.Removed))
	items = append(items, r.Replaced...)
	items = append(items, r.Added...)
	items = append(items, r.Removed...)
	return itemset.New(items...)
}

// StagedShards is a batch of shard swaps whose payloads are already durably
// on disk under checksum-versioned names the current manifest does not
// reference: invisible to readers until Commit performs the single manifest
// write. Staging is the expensive half (gob encoding, file writes, fsyncs)
// and takes no index lock, so a serving layer can stage while queries run
// and hold its own update lock only across Commit.
type StagedShards struct {
	x *ShardedIndex
	// items are the staged items in ascending order; entries maps each to
	// its new manifest entry, or nil for a removal.
	items   []itemset.Item
	entries map[itemset.Item]*ShardEntry
	written []string
	// journalSeq, when set, is stamped into the manifest's JournalSeq by
	// Commit — atomically with the shard swap, since the manifest write IS
	// the commit point.
	journalSeq *uint64
}

// SetJournalSeq arranges for Commit to stamp seq into the manifest's
// JournalSeq field. Checkpointers call it so "which journal records does
// this index include" advances atomically with the shard swap.
func (st *StagedShards) SetJournalSeq(seq uint64) { st.journalSeq = &seq }

// StageShards encodes and durably writes the payload of every non-nil
// subtree (a nil subtree stages the item's removal). On error the files
// written so far are removed — except any whose name the live manifest
// still references (a rebuilt shard with identical content reuses its
// current file name).
func (x *ShardedIndex) StageShards(subtrees map[itemset.Item]*Node) (*StagedShards, error) {
	st := &StagedShards{x: x, entries: make(map[itemset.Item]*ShardEntry, len(subtrees))}
	for it := range subtrees {
		st.items = append(st.items, it)
	}
	sort.Slice(st.items, func(i, j int) bool { return st.items[i] < st.items[j] })
	for _, it := range st.items {
		sub := subtrees[it]
		if sub == nil {
			st.entries[it] = nil
			continue
		}
		if sub.Item != it {
			st.discard()
			return nil, fmt.Errorf("tctree: subtree for item %d is rooted at item %d", it, sub.Item)
		}
		data, entry, err := encodeShardAs(sub, x.Format())
		if err != nil {
			st.discard()
			return nil, err
		}
		entry.File = fmt.Sprintf("shard-%d-%s.%s", it, strings.TrimPrefix(entry.Checksum, "crc32c:"), x.Format())
		if err := writeFileAtomic(x.dir, entry.File, data); err != nil {
			st.discard()
			return nil, fmt.Errorf("tctree: shard %d: %w", it, err)
		}
		st.written = append(st.written, entry.File)
		st.entries[it] = &entry
	}
	// Make the staged files durable before any manifest can point at them.
	syncDir(x.dir)
	return st, nil
}

// Discard abandons the staged batch without committing it: the staged files
// are removed (sparing any the live manifest still references) and the index
// is untouched. Use it when a step between staging and commit fails.
func (st *StagedShards) Discard() { st.discard() }

// discard removes the staged files, sparing any the live manifest
// references.
func (st *StagedShards) discard() {
	live := make(map[string]bool)
	for _, e := range st.x.Manifest().Shards {
		live[e.File] = true
	}
	for _, f := range st.written {
		if !live[f] {
			os.Remove(filepath.Join(st.x.dir, f))
		}
	}
}

// Commit applies the staged batch as one transaction: the manifest is
// rewritten exactly once, which is the single switch point — a crash before
// it leaves the old index intact (plus unreferenced staged files the next
// OpenSharded ignores), a crash after it leaves the new index complete.
// Superseded files are removed best-effort afterwards. A failed Commit
// discards the staged files and leaves the old index live.
func (st *StagedShards) Commit() (*CommitReport, error) {
	x := st.x
	x.mu.Lock()
	defer x.mu.Unlock()

	report := &CommitReport{}
	oldShards := x.manifest.Shards
	newShards := make([]ShardEntry, 0, len(oldShards)+len(st.entries))
	newShards = append(newShards, oldShards...)
	byItem := make(map[itemset.Item]int, len(newShards))
	for i, e := range newShards {
		byItem[itemset.Item(e.Item)] = i
	}
	oldFiles := make(map[string]bool, len(oldShards))
	for _, e := range oldShards {
		oldFiles[e.File] = true
	}
	var obsolete []string
	cleanupWritten := func() {
		for _, f := range st.written {
			if !oldFiles[f] {
				os.Remove(filepath.Join(x.dir, f))
			}
		}
	}
	for _, it := range st.items {
		entry := st.entries[it]
		i, exists := byItem[it]
		if entry == nil { // removal
			if !exists {
				continue
			}
			obsolete = append(obsolete, newShards[i].File)
			newShards = append(newShards[:i], newShards[i+1:]...)
			delete(byItem, it)
			for j := i; j < len(newShards); j++ {
				byItem[itemset.Item(newShards[j].Item)] = j
			}
			report.Removed = append(report.Removed, it)
			continue
		}
		if exists {
			if old := newShards[i].File; old != entry.File {
				obsolete = append(obsolete, old)
			}
			newShards[i] = *entry
			report.Replaced = append(report.Replaced, it)
		} else {
			newShards = append(newShards, *entry)
			byItem[it] = len(newShards) - 1
			report.Added = append(report.Added, it)
		}
	}
	sort.Slice(newShards, func(i, j int) bool { return newShards[i].Item < newShards[j].Item })

	x.manifest.Shards = newShards
	oldSeq := x.manifest.JournalSeq
	if st.journalSeq != nil {
		x.manifest.JournalSeq = *st.journalSeq
	}
	if err := writeManifest(x.dir, x.manifest); err != nil {
		x.manifest.Shards = oldShards
		x.manifest.JournalSeq = oldSeq
		x.manifest.seal()
		cleanupWritten()
		return nil, err
	}
	x.byItem = make(map[itemset.Item]int, len(newShards))
	for i, e := range newShards {
		x.byItem[itemset.Item(e.Item)] = i
	}
	for _, f := range obsolete {
		// Best-effort cleanup; a leftover superseded file is harmless.
		os.Remove(filepath.Join(x.dir, f))
	}
	return report, nil
}

// CommitShards applies one batch of shard swaps as a single transaction:
// each map entry installs a rebuilt subtree for its item (replacing the
// existing shard or adding a new one), and a nil subtree removes the item's
// shard (a no-op when none exists). It is StageShards followed by Commit;
// serving layers that must exclude queries during the swap stage first and
// lock only around Commit (engine.ApplyDelta). Serving layers holding
// affected shards in memory must reload them afterwards.
func (x *ShardedIndex) CommitShards(subtrees map[itemset.Item]*Node) (*CommitReport, error) {
	st, err := x.StageShards(subtrees)
	if err != nil {
		return nil, err
	}
	return st.Commit()
}

// ApplyDelta incrementally maintains the on-disk index after the network
// changed: the shard of every affected item is rebuilt from the updated
// network (RebuildSubtree) and the whole batch is committed with one
// manifest write (CommitShards) — shards of unaffected items are neither
// rebuilt nor rewritten nor even read. affected is typically
// delta.AffectedItems computed before the delta was applied to nw; nw must
// already be the post-delta network. Depth-bounded indexes (built with
// BuildOptions.MaxDepth) are refused: rebuilding one shard without the
// bound would make it deeper than its untouched siblings.
func (x *ShardedIndex) ApplyDelta(nw *dbnet.Network, affected itemset.Itemset) (*CommitReport, error) {
	if d := x.Manifest().BuiltMaxDepth; d > 0 {
		return nil, fmt.Errorf("tctree: index was built with MaxDepth %d; incremental maintenance needs an unbounded index (rebuild with tcindex without -maxdepth)", d)
	}
	return x.CommitShards(RebuildSubtrees(nw, affected))
}

// MigrateFormat converts the index to the target shard encoding in place.
// Shards are re-encoded one at a time (bounding memory by the largest
// shard) and written under their canonical names — the two formats use
// different file extensions, so nothing is overwritten — then one manifest
// write switches the index over: a crash before it leaves the old index
// fully live plus unreferenced new files, a crash after it leaves the new
// index complete plus old files that are removed best-effort on the next
// successful open... here, immediately. A same-format migration is a no-op.
func (x *ShardedIndex) MigrateFormat(target string) error {
	target, err := normalizeFormat(target)
	if err != nil {
		return err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.format == target {
		return nil
	}
	oldShards := x.manifest.Shards
	newShards := make([]ShardEntry, 0, len(oldShards))
	var written []string
	fail := func(err error) error {
		for _, f := range written {
			os.Remove(filepath.Join(x.dir, f))
		}
		return err
	}
	for _, e := range oldShards {
		root, err := x.loadShardLocked(e)
		if err != nil {
			return fail(err)
		}
		data, entry, err := encodeShardAs(root, target)
		if err != nil {
			return fail(err)
		}
		if err := writeFileAtomic(x.dir, entry.File, data); err != nil {
			return fail(fmt.Errorf("tctree: shard %d: %w", e.Item, err))
		}
		written = append(written, entry.File)
		newShards = append(newShards, entry)
	}
	// Make the new shard files durable before the manifest can reference
	// them, then swap with the single manifest write.
	syncDir(x.dir)
	m := &Manifest{Version: manifestVersion, BuiltMaxDepth: x.manifest.BuiltMaxDepth, Shards: newShards}
	if target != FormatGob {
		m.Format = target
	}
	if err := writeManifest(x.dir, m); err != nil {
		return fail(err)
	}
	x.manifest = m
	x.format = target
	x.byItem = make(map[itemset.Item]int, len(newShards))
	for i, e := range newShards {
		x.byItem[itemset.Item(e.Item)] = i
	}
	for _, e := range oldShards {
		// Best-effort cleanup; a leftover superseded file is harmless.
		os.Remove(filepath.Join(x.dir, e.File))
	}
	return nil
}

// loadShardLocked decodes one shard into pointer form from an entry the
// caller already holds, without taking the index lock.
func (x *ShardedIndex) loadShardLocked(entry ShardEntry) (*Node, error) {
	if x.format == FormatTCBIN {
		b, err := OpenBinShard(filepath.Join(x.dir, entry.File), entry)
		if err != nil {
			return nil, err
		}
		return b.Materialize()
	}
	data, err := os.ReadFile(filepath.Join(x.dir, entry.File))
	if err != nil {
		return nil, fmt.Errorf("tctree: shard %d: %w", entry.Item, err)
	}
	return decodeShard(data, entry)
}
