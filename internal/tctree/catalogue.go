package tctree

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"

	"themecomm/internal/itemset"
)

// This file implements the per-shard skipping catalogue persisted in the
// manifest alongside the basic shard statistics: an item bloom filter over
// the distinct items of the shard's patterns, and a fixed-bucket histogram
// of the best α* per pattern length. Both are computed at encode time (for
// either on-disk format) and consulted by the engine's planner to rule
// shards out of containment queries without touching payload bytes.
//
// Neither structure can improve SUB-pattern queries: by anti-monotonicity
// the shard root's α* equals the shard's MaxAlpha, so whenever α_q <
// MaxAlpha the root's truss is non-empty and the shard must be opened —
// the existing α* skip is already exact there. For containment queries
// (all indexed patterns ⊇ q) the catalogue is decisive: a query item the
// bloom filter rules out proves the shard contributes nothing, and the
// histogram bounds the best α* reachable at the depth a superset of q
// needs.

const (
	// bloomBitsPerItem sizes the filter at ~10 bits per distinct item,
	// which with 7 hash functions gives a false-positive rate under 1%.
	bloomBitsPerItem = 10
	bloomHashes      = 7
	// alphaHistBuckets is the fixed bucket count of the per-depth α*
	// histogram: bucket d (0-based) holds the best α* over nodes whose
	// pattern length is d+1; the last bucket also absorbs every greater
	// length so the histogram stays fixed-width on arbitrarily deep shards.
	alphaHistBuckets = 16
)

// ItemBloom is a bloom filter over the distinct items appearing in a
// shard's indexed patterns. It answers "might item i appear anywhere in
// this shard?" with no false negatives.
type ItemBloom struct {
	bits []byte
	k    int
}

// newItemBloom sizes a filter for n distinct items.
func newItemBloom(n int) *ItemBloom {
	if n < 1 {
		n = 1
	}
	bytes := (n*bloomBitsPerItem + 7) / 8
	if bytes < 8 {
		bytes = 8
	}
	return &ItemBloom{bits: make([]byte, bytes), k: bloomHashes}
}

// bloomMix derives two independent 32-bit hashes from an item via a
// splitmix64 finalizer; the k probe positions are double-hashed from them.
func bloomMix(it itemset.Item) (uint32, uint32) {
	x := uint64(uint32(it)) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	h2 := uint32(x>>32) | 1 // odd, so probes cycle through all positions
	return uint32(x), h2
}

func (b *ItemBloom) add(it itemset.Item) {
	h1, h2 := bloomMix(it)
	m := uint32(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint32(i)*h2) % m
		b.bits[pos/8] |= 1 << (pos % 8)
	}
}

// MayContain reports whether the item might appear in the shard. A false
// result is definitive: the item appears in no indexed pattern.
func (b *ItemBloom) MayContain(it itemset.Item) bool {
	if b == nil || len(b.bits) == 0 {
		return true
	}
	h1, h2 := bloomMix(it)
	m := uint32(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint32(i)*h2) % m
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// bloomVersion prefixes the manifest encoding so the probe scheme can
// change without misreading old catalogues.
const bloomVersion = "b1"

// Encode renders the filter for the manifest: "b1:<k>:<base64 bits>".
func (b *ItemBloom) Encode() string {
	return bloomVersion + ":" + strconv.Itoa(b.k) + ":" + base64.RawStdEncoding.EncodeToString(b.bits)
}

// DecodeItemBloom parses a filter encoded by Encode. An empty string is a
// valid absent filter (nil, which MayContain treats as "maybe").
func DecodeItemBloom(s string) (*ItemBloom, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 || parts[0] != bloomVersion {
		return nil, fmt.Errorf("tctree: unrecognized bloom encoding %q", s)
	}
	k, err := strconv.Atoi(parts[1])
	if err != nil || k < 1 || k > 32 {
		return nil, fmt.Errorf("tctree: bad bloom hash count %q", parts[1])
	}
	bits, err := base64.RawStdEncoding.DecodeString(parts[2])
	if err != nil || len(bits) == 0 {
		return nil, fmt.Errorf("tctree: bad bloom bits: %v", err)
	}
	return &ItemBloom{bits: bits, k: k}, nil
}

// alphaHistVersion prefixes the manifest encoding of the depth histogram.
const alphaHistVersion = "h1"

// encodeAlphaDepths renders the per-depth α* histogram for the manifest:
// "h1:<α₁>,<α₂>,..." with exact float round-tripping.
func encodeAlphaDepths(depths []float64) string {
	if len(depths) == 0 {
		return ""
	}
	parts := make([]string, len(depths))
	for i, a := range depths {
		parts[i] = strconv.FormatFloat(a, 'g', -1, 64)
	}
	return alphaHistVersion + ":" + strings.Join(parts, ",")
}

// DecodeAlphaDepths parses a histogram encoded by encodeAlphaDepths; an
// empty string is a valid absent histogram.
func DecodeAlphaDepths(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	body, ok := strings.CutPrefix(s, alphaHistVersion+":")
	if !ok {
		return nil, fmt.Errorf("tctree: unrecognized alpha histogram encoding %q", s)
	}
	fields := strings.Split(body, ",")
	if len(fields) > alphaHistBuckets {
		return nil, fmt.Errorf("tctree: alpha histogram has %d buckets, max %d", len(fields), alphaHistBuckets)
	}
	out := make([]float64, len(fields))
	for i, f := range fields {
		a, err := strconv.ParseFloat(f, 64)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("tctree: bad alpha histogram bucket %q", f)
		}
		out[i] = a
	}
	return out, nil
}

// shardCatalogue computes one shard's manifest metadata — the basic
// statistics plus the skipping catalogue — in a single walk of the subtree.
func shardCatalogue(root *Node) (st ShardStats, bloom string, alphaDepths string) {
	st = ShardStats{Item: root.Item}
	items := make(map[itemset.Item]struct{})
	var hist [alphaHistBuckets]float64
	root.Walk(func(n *Node) {
		st.Nodes++
		l := n.Pattern.Len()
		if l > st.Depth {
			st.Depth = l
		}
		a := n.Decomp.MaxAlpha()
		if a > st.MaxAlpha {
			st.MaxAlpha = a
		}
		items[n.Item] = struct{}{}
		bucket := l - 1
		if bucket >= alphaHistBuckets {
			bucket = alphaHistBuckets - 1
		}
		if a > hist[bucket] {
			hist[bucket] = a
		}
	})
	b := newItemBloom(len(items))
	for it := range items {
		b.add(it)
	}
	n := st.Depth
	if n > alphaHistBuckets {
		n = alphaHistBuckets
	}
	return st, b.Encode(), encodeAlphaDepths(hist[:n])
}

// ShardCatalogue computes the manifest metadata of an in-memory shard
// subtree: its basic statistics plus the encoded bloom filter and α*-by-
// depth histogram. Serving layers that build eager engines straight from a
// Tree use it to plan with the same catalogue a sharded index would
// persist.
func ShardCatalogue(root *Node) (st ShardStats, bloom string, alphaDepths string) {
	return shardCatalogue(root)
}

// ContainmentAlphaBound returns the best α* any node of pattern length ≥
// needDepth can reach according to the histogram, or 0 when the shard is
// too shallow to hold one. A containment query needs nodes at least
// |q| deep (one deeper when the shard's root item is not in q), so a
// query threshold at or above this bound proves the shard contributes
// nothing.
func ContainmentAlphaBound(alphaByDepth []float64, needDepth int) float64 {
	if needDepth < 1 {
		needDepth = 1
	}
	start := needDepth - 1
	if start >= alphaHistBuckets {
		// Deep targets fold into the last bucket of a full histogram; a
		// truncated one proves the shard is too shallow.
		start = alphaHistBuckets - 1
	}
	if start >= len(alphaByDepth) {
		return 0
	}
	bound := 0.0
	for _, a := range alphaByDepth[start:] {
		if a > bound {
			bound = a
		}
	}
	return bound
}
