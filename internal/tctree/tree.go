// Package tctree implements the Theme Community Tree of Section 6 of the
// paper: a set-enumeration-tree index over the decomposed maximal pattern
// trusses of every qualified pattern, supporting fast query answering for any
// query pattern q and cohesion threshold α_q without re-mining.
package tctree

import (
	"fmt"
	"sort"

	"themecomm/internal/itemset"
	"themecomm/internal/truss"
)

// Node is one node of the TC-Tree. Every node represents a pattern: the union
// of the items stored on the path from the root to the node. The node stores
// the decomposed maximal pattern truss L_p of its pattern; nodes whose
// decomposition would be empty are never materialized (Section 6.2).
type Node struct {
	// Item is the item appended to the parent's pattern to form this node's
	// pattern (s_{n_i} in the paper). The root stores no item.
	Item itemset.Item
	// Pattern is the full pattern represented by the node.
	Pattern itemset.Itemset
	// Decomp is the decomposed maximal pattern truss L_p of the pattern.
	// It is nil only on the root.
	Decomp *truss.Decomposition
	// Children are the child nodes, ordered by ascending item.
	Children []*Node
}

// addChild inserts c keeping children ordered by item.
func (n *Node) addChild(c *Node) {
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Item >= c.Item })
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// Tree is the Theme Community Tree: an index over every maximal pattern truss
// of a database network, rooted at the empty pattern.
type Tree struct {
	root     *Node
	numNodes int // number of non-root nodes, i.e. indexed maximal pattern trusses
	// builtMaxDepth is the BuildOptions.MaxDepth bound the tree was built
	// with (0 = unbounded). Incremental maintenance refuses depth-bounded
	// trees: RebuildSubtree re-decomposes without a bound, which would make
	// rebuilt shards deeper than untouched ones.
	builtMaxDepth int
}

// BuiltMaxDepth returns the MaxDepth bound the tree was built with
// (0 = unbounded). Trees assembled from a sharded index inherit the bound
// recorded in the manifest.
func (t *Tree) BuiltMaxDepth() int { return t.builtMaxDepth }

// Root returns the root node (pattern ∅). It is never nil on a built tree.
func (t *Tree) Root() *Node { return t.root }

// NumNodes returns the number of indexed nodes, which equals the number of
// maximal pattern trusses of the database network (Table 3, "#Nodes").
func (t *Tree) NumNodes() int { return t.numNodes }

// Depth returns the maximum pattern length indexed by the tree.
func (t *Tree) Depth() int {
	depth := 0
	t.Walk(func(n *Node) {
		if n.Pattern.Len() > depth {
			depth = n.Pattern.Len()
		}
	})
	return depth
}

// MaxAlpha returns the largest non-trivial cohesion threshold over every
// indexed theme network: the largest α*_p of any node. Queries with a larger
// α_q return nothing.
func (t *Tree) MaxAlpha() float64 {
	maxAlpha := 0.0
	t.Walk(func(n *Node) {
		if a := n.Decomp.MaxAlpha(); a > maxAlpha {
			maxAlpha = a
		}
	})
	return maxAlpha
}

// ShardStats summarises one first-level subtree (shard): its root item, node
// count, longest indexed pattern and α* bound. These are the statistics the
// sharded manifest persists per shard and the serving layer's planner
// consults before paying for a traversal or a disk load.
type ShardStats struct {
	// Item is the shard's root item; every pattern indexed in the shard
	// contains it.
	Item itemset.Item
	// Nodes is the number of nodes of the subtree.
	Nodes int
	// Depth is the longest pattern indexed in the subtree.
	Depth int
	// MaxAlpha is the shard's α* bound: C*_p(α) = ∅ for every indexed p and
	// every α ≥ MaxAlpha, so a query with α_q ≥ MaxAlpha retrieves nothing
	// from the shard.
	MaxAlpha float64
}

// statsOf computes the shard statistics of the subtree rooted at root.
func statsOf(root *Node) ShardStats {
	s := ShardStats{Item: root.Item}
	root.Walk(func(n *Node) {
		s.Nodes++
		if l := n.Pattern.Len(); l > s.Depth {
			s.Depth = l
		}
		if a := n.Decomp.MaxAlpha(); a > s.MaxAlpha {
			s.MaxAlpha = a
		}
	})
	return s
}

// ShardStats returns the per-shard statistics of the tree in first-level
// child order (ascending root item), aligned with Root().Children.
func (t *Tree) ShardStats() []ShardStats {
	if t == nil || t.root == nil {
		return nil
	}
	out := make([]ShardStats, 0, len(t.root.Children))
	for _, c := range t.root.Children {
		out = append(out, statsOf(c))
	}
	return out
}

// Walk visits every non-root node of the tree in depth-first order.
func (t *Tree) Walk(visit func(*Node)) {
	if t == nil || t.root == nil {
		return
	}
	var dfs func(*Node)
	dfs = func(n *Node) {
		for _, c := range n.Children {
			visit(c)
			dfs(c)
		}
	}
	dfs(t.root)
}

// Node returns the node representing pattern p, or nil if p is not indexed
// (its maximal pattern truss at α = 0 is empty).
func (t *Tree) Node(p itemset.Itemset) *Node {
	if t.root == nil || p.Len() == 0 {
		return nil
	}
	return t.root.Descendant(p)
}

// Walk visits n and every node of its subtree in depth-first order. It is the
// subtree counterpart of Tree.Walk, used to traverse a single shard.
func (n *Node) Walk(visit func(*Node)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Descendant returns the node of pattern p within n's subtree (possibly n
// itself), or nil when p does not extend n's pattern or is not indexed below
// n. Because the TC-Tree is a set-enumeration tree, the path from n to the
// node of p appends the items of p beyond n's pattern in ascending order.
func (n *Node) Descendant(p itemset.Itemset) *Node {
	if n == nil || p.Len() < n.Pattern.Len() {
		return nil
	}
	for i, it := range n.Pattern {
		if p[i] != it {
			return nil
		}
	}
	cur := n
	for _, it := range p[n.Pattern.Len():] {
		var next *Node
		for _, c := range cur.Children {
			if c.Item == it {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// Patterns returns every indexed pattern in depth-first order.
func (t *Tree) Patterns() []itemset.Itemset {
	var out []itemset.Itemset
	t.Walk(func(n *Node) { out = append(out, n.Pattern) })
	return out
}

// PatternsAtDepth returns the indexed patterns of the given length.
func (t *Tree) PatternsAtDepth(depth int) []itemset.Itemset {
	var out []itemset.Itemset
	t.Walk(func(n *Node) {
		if n.Pattern.Len() == depth {
			out = append(out, n.Pattern)
		}
	})
	return out
}

// String summarises the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("tctree.Tree{nodes=%d, depth=%d}", t.NumNodes(), t.Depth())
}

// Validate checks the structural invariants of the tree: children are ordered
// by item, each child's pattern extends its parent's pattern by exactly its
// item, and every stored decomposition is itself valid.
func (t *Tree) Validate() error {
	if t.root == nil {
		return fmt.Errorf("tctree: missing root")
	}
	var check func(n *Node) error
	check = func(n *Node) error {
		for i, c := range n.Children {
			if i > 0 && n.Children[i-1].Item >= c.Item {
				return fmt.Errorf("tctree: children of %v not ordered by item", n.Pattern)
			}
			wantPattern := n.Pattern.Add(c.Item)
			if !c.Pattern.Equal(wantPattern) {
				return fmt.Errorf("tctree: node pattern %v does not extend parent %v with item %d",
					c.Pattern, n.Pattern, c.Item)
			}
			if c.Decomp.Empty() {
				return fmt.Errorf("tctree: node %v has an empty decomposition", c.Pattern)
			}
			if err := c.Decomp.Validate(); err != nil {
				return fmt.Errorf("tctree: node %v: %w", c.Pattern, err)
			}
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(t.root)
}
