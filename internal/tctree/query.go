package tctree

import (
	"time"

	"themecomm/internal/core"
	"themecomm/internal/itemset"
	"themecomm/internal/truss"
)

// QueryResult is the answer to a TC-Tree query (q, α_q): every non-empty
// maximal pattern truss C*_p(α_q) with p ⊆ q, together with query statistics.
type QueryResult struct {
	// Trusses are the retrieved maximal pattern trusses, in tree (breadth
	// first) order.
	Trusses []*truss.Truss
	// RetrievedNodes is the number of TC-Tree nodes whose truss was retrieved
	// ("RN" in Figure 5 of the paper). It equals len(Trusses).
	RetrievedNodes int
	// VisitedNodes is the number of TC-Tree nodes inspected, including nodes
	// whose truss was empty at α_q.
	VisitedNodes int
	// Duration is the wall-clock query time.
	Duration time.Duration
}

// Communities extracts every theme community (maximal connected subgraph,
// Definition 3.5) from the retrieved maximal pattern trusses.
func (qr *QueryResult) Communities() []core.Community {
	var out []core.Community
	for _, t := range qr.Trusses {
		for _, comp := range t.Communities() {
			out = append(out, core.Community{Pattern: t.Pattern, Edges: comp})
		}
	}
	return out
}

// Query answers (q, α_q) following Algorithm 5: it traverses the tree breadth
// first, skips subtrees whose item is not in q (their patterns cannot be
// sub-patterns of q), reconstructs each visited node's truss at α_q from its
// decomposition (Equation 1), and prunes subtrees whose truss is empty
// (Proposition 5.2).
func (t *Tree) Query(q itemset.Itemset, alphaQ float64) *QueryResult {
	start := time.Now()
	res := &QueryResult{}
	if t == nil || t.root == nil {
		res.Duration = time.Since(start)
		return res
	}
	queue := []*Node{t.root}
	for len(queue) > 0 {
		nf := queue[0]
		queue = queue[1:]
		for _, nc := range nf.Children {
			if !q.Contains(nc.Item) {
				continue
			}
			res.VisitedNodes++
			tr := nc.Decomp.TrussAt(alphaQ)
			if tr.Empty() {
				continue
			}
			res.Trusses = append(res.Trusses, tr)
			res.RetrievedNodes++
			queue = append(queue, nc)
		}
	}
	res.Duration = time.Since(start)
	return res
}

// QueryByAlpha answers the "query by alpha" workload of Section 7.3: q = S
// (every item), so the answer contains every maximal pattern truss that is
// non-empty at α_q.
func (t *Tree) QueryByAlpha(alphaQ float64) *QueryResult {
	return t.queryAll(alphaQ)
}

// queryAll is Query with q = S implemented without the per-item membership
// test, since every item qualifies.
func (t *Tree) queryAll(alphaQ float64) *QueryResult {
	start := time.Now()
	res := &QueryResult{}
	if t == nil || t.root == nil {
		res.Duration = time.Since(start)
		return res
	}
	queue := []*Node{t.root}
	for len(queue) > 0 {
		nf := queue[0]
		queue = queue[1:]
		for _, nc := range nf.Children {
			res.VisitedNodes++
			tr := nc.Decomp.TrussAt(alphaQ)
			if tr.Empty() {
				continue
			}
			res.Trusses = append(res.Trusses, tr)
			res.RetrievedNodes++
			queue = append(queue, nc)
		}
	}
	res.Duration = time.Since(start)
	return res
}

// QueryByPattern answers the "query by pattern" workload of Section 7.3:
// α_q = 0, so the answer contains the maximal pattern truss of every indexed
// sub-pattern of q.
func (t *Tree) QueryByPattern(q itemset.Itemset) *QueryResult {
	return t.Query(q, 0)
}

// MiningResult converts a QueryByAlpha answer into a core.Result, which makes
// index-based retrieval directly comparable with the output of the mining
// algorithms (used by integration tests and the experiment harness).
func (t *Tree) MiningResult(alphaQ float64) *core.Result {
	qr := t.QueryByAlpha(alphaQ)
	res := &core.Result{Alpha: alphaQ, Trusses: make(map[itemset.Key]*truss.Truss, len(qr.Trusses))}
	res.Stats.Algorithm = "TC-Tree"
	res.Stats.Duration = qr.Duration
	for _, tr := range qr.Trusses {
		res.Trusses[tr.Pattern.Key()] = tr
	}
	return res
}
