//go:build linux

package tctree

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only into memory. It returns the mapped bytes and
// an unmap closure; a nil closure means the bytes are heap-allocated and
// need no release. Mapping shares the OS page cache across processes and
// defers I/O to first touch — the zero-copy half of the TCBIN design.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects zero-length maps; an empty file fails validation with
		// a clear error instead.
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
