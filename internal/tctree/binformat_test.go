package tctree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/itemset"
)

// binShardFixtures encodes every first-level subtree of a generated tree and
// returns the shard roots alongside their TCBIN payloads and manifest entries.
func binShardFixtures(t *testing.T, seed int64) (*Tree, []*Node, [][]byte, []ShardEntry) {
	t.Helper()
	tree := buildShardedTestTree(t, seed)
	var roots []*Node
	var bufs [][]byte
	var entries []ShardEntry
	for _, c := range tree.Root().Children {
		buf, entry, err := encodeShardBinary(c)
		if err != nil {
			t.Fatalf("encodeShardBinary(%d): %v", c.Item, err)
		}
		roots = append(roots, c)
		bufs = append(bufs, buf)
		entries = append(entries, entry)
	}
	return tree, roots, bufs, entries
}

// assertSameShardAnswer requires two shard answers to agree on the visited
// counter and on every truss: pattern, threshold, edge set and vertex
// frequencies.
func assertSameShardAnswer(t *testing.T, label string, got, want ShardAnswer) {
	t.Helper()
	if got.Visited != want.Visited {
		t.Fatalf("%s: visited %d nodes, want %d", label, got.Visited, want.Visited)
	}
	if len(got.Trusses) != len(want.Trusses) {
		t.Fatalf("%s: %d trusses, want %d", label, len(got.Trusses), len(want.Trusses))
	}
	for i := range want.Trusses {
		g, w := got.Trusses[i], want.Trusses[i]
		if !g.Pattern.Equal(w.Pattern) {
			t.Fatalf("%s: truss %d pattern %v, want %v", label, i, g.Pattern, w.Pattern)
		}
		if g.Alpha != w.Alpha {
			t.Fatalf("%s: truss %d (%v) alpha %v, want %v", label, i, w.Pattern, g.Alpha, w.Alpha)
		}
		if !g.Edges.Equal(w.Edges) {
			t.Fatalf("%s: truss %d (%v) edge sets differ", label, i, w.Pattern)
		}
		if len(g.Freq) != len(w.Freq) {
			t.Fatalf("%s: truss %d (%v) has %d vertices, want %d", label, i, w.Pattern, len(g.Freq), len(w.Freq))
		}
		for v, f := range w.Freq {
			if gf, ok := g.Freq[v]; !ok || !approx(gf, f) {
				t.Fatalf("%s: truss %d (%v) vertex %d frequency %v, want %v", label, i, w.Pattern, v, g.Freq[v], f)
			}
		}
	}
}

// shardQueryPatterns builds a query mix for one shard: every indexed pattern
// and prefix of one, patterns with foreign items mixed in, and nil.
func shardQueryPatterns(root *Node) []itemset.Itemset {
	var qs []itemset.Itemset
	qs = append(qs, nil, itemset.New(root.Item), itemset.New(997))
	var walk func(n *Node)
	walk = func(n *Node) {
		qs = append(qs, n.Pattern, n.Pattern.Add(999))
		if n.Pattern.Len() > 1 {
			qs = append(qs, n.Pattern[1:])
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return qs
}

// TestBinShardRoundTrip checks encodeShardBinary → DecodeBinShard →
// Materialize reproduces the source subtree exactly, and that the returned
// manifest entry carries the same statistics and catalogue the gob encoder
// computes.
func TestBinShardRoundTrip(t *testing.T) {
	_, roots, bufs, entries := binShardFixtures(t, 19)
	for i, root := range roots {
		b, err := DecodeBinShard(bufs[i], entries[i])
		if err != nil {
			t.Fatalf("DecodeBinShard(%d): %v", root.Item, err)
		}
		if b.RootItem() != root.Item {
			t.Fatalf("RootItem = %d, want %d", b.RootItem(), root.Item)
		}
		if b.SizeBytes() != int64(len(bufs[i])) {
			t.Fatalf("SizeBytes = %d, want %d", b.SizeBytes(), len(bufs[i]))
		}
		back, err := b.Materialize()
		if err != nil {
			t.Fatalf("Materialize(%d): %v", root.Item, err)
		}
		assertSameSubtree(t, root, back)

		stats, bloom, alphaDepths := ShardCatalogue(root)
		e := entries[i]
		if e.Nodes != stats.Nodes || e.Depth != stats.Depth || !approx(e.MaxAlpha, stats.MaxAlpha) {
			t.Fatalf("entry stats %+v disagree with ShardCatalogue %+v", e, stats)
		}
		if e.Bloom != bloom || e.AlphaDepths != alphaDepths {
			t.Fatalf("entry catalogue (%q, %q) disagrees with ShardCatalogue (%q, %q)",
				e.Bloom, e.AlphaDepths, bloom, alphaDepths)
		}
		if e.File != binShardFileName(root.Item) {
			t.Fatalf("entry file %q, want %q", e.File, binShardFileName(root.Item))
		}
	}
}

// TestBinShardViewParity drives the BinShard and NodeView implementations of
// every ShardView method over the same query mix and requires identical
// answers — the zero-copy traversal must be observationally equal to the
// pointer-tree traversal, counters included.
func TestBinShardViewParity(t *testing.T) {
	tree, roots, bufs, entries := binShardFixtures(t, 19)
	alphas := []float64{0, 0.1, 0.25, tree.MaxAlpha() / 2, tree.MaxAlpha(), tree.MaxAlpha() + 1}
	for i, root := range roots {
		bin, err := DecodeBinShard(bufs[i], entries[i])
		if err != nil {
			t.Fatalf("DecodeBinShard(%d): %v", root.Item, err)
		}
		view := NewNodeView(root)
		for _, q := range shardQueryPatterns(root) {
			for _, alpha := range alphas {
				assertSameShardAnswer(t, "QuerySub", bin.QuerySub(q, alpha), view.QuerySub(q, alpha))
				if q != nil {
					assertSameShardAnswer(t, "QueryContaining",
						bin.QueryContaining(q, alpha), view.QueryContaining(q, alpha))
				}
			}
		}

		// RemovalAlphas must agree edge for edge on every indexed pattern,
		// and agree that unindexed patterns are absent.
		var pats []itemset.Itemset
		bin.WalkPatterns(func(p itemset.Itemset) { pats = append(pats, p) })
		var viewPats []itemset.Itemset
		view.WalkPatterns(func(p itemset.Itemset) { viewPats = append(viewPats, p) })
		if len(pats) != len(viewPats) {
			t.Fatalf("WalkPatterns yields %d patterns, NodeView %d", len(pats), len(viewPats))
		}
		for j := range pats {
			if !pats[j].Equal(viewPats[j]) {
				t.Fatalf("WalkPatterns order diverges at %d: %v vs %v", j, pats[j], viewPats[j])
			}
		}
		for _, p := range pats {
			ba, bok := bin.RemovalAlphas(p)
			va, vok := view.RemovalAlphas(p)
			if bok != vok || len(ba) != len(va) {
				t.Fatalf("RemovalAlphas(%v): bin (%d, %v) vs view (%d, %v)", p, len(ba), bok, len(va), vok)
			}
			for e, a := range va {
				if !approx(ba[e], a) {
					t.Fatalf("RemovalAlphas(%v): edge %d alpha %v, want %v", p, e, ba[e], a)
				}
			}
		}
		if _, ok := bin.RemovalAlphas(itemset.New(root.Item, 999)); ok {
			t.Fatalf("RemovalAlphas of an unindexed pattern reported ok")
		}
	}
}

// corruptCase is one hostile mutation of a valid TCBIN payload.
type corruptCase struct {
	name    string
	mutate  func(data []byte) []byte
	wantSub string
}

func binCorruptions() []corruptCase {
	return []corruptCase{
		{"empty", func(d []byte) []byte { return nil }, "too small"},
		{"truncated header", func(d []byte) []byte { return d[:binHeaderSize-1] }, "too small"},
		{"truncated tail", func(d []byte) []byte { return d[:len(d)-1] }, "footer offset"},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d }, "bad magic"},
		{"bad version", func(d []byte) []byte { binary.LittleEndian.PutUint32(d[8:], 2); return d }, "version"},
		{"bad end magic", func(d []byte) []byte { d[len(d)-1] ^= 0xff; return d }, "end magic"},
		{"payload bit flip", func(d []byte) []byte { d[len(d)/2] ^= 0x01; return d }, "checksum"},
		{"crc flip", func(d []byte) []byte { d[len(d)-binFooterSize] ^= 0xff; return d }, "checksum"},
	}
}

// TestBinShardChecksumsDistinct pins the manifest checksum of a TCBIN shard
// to the body CRC its footer embeds. The whole-file CRC is useless here: a
// file ending in its own CRC hashes to one constant residue, so every TCBIN
// shard would share one checksum and the checksum-versioned staged-shard
// names (StageShards) would collide across generations of the same shard —
// a freshly staged file could silently overwrite one the live manifest
// still references.
func TestBinShardChecksumsDistinct(t *testing.T) {
	_, _, bufs, entries := binShardFixtures(t, 3)
	if len(entries) < 2 {
		t.Fatal("need at least two shards")
	}
	seen := make(map[string]int32)
	for i, entry := range entries {
		data := bufs[i]
		footerOff := len(data) - binFooterSize
		stored := binary.LittleEndian.Uint32(data[footerOff:])
		if want := fmt.Sprintf("crc32c:%08x", stored); entry.Checksum != want {
			t.Fatalf("shard %d: manifest checksum %s, footer holds %s", entry.Item, entry.Checksum, want)
		}
		if prev, dup := seen[entry.Checksum]; dup {
			t.Fatalf("shards %d and %d share checksum %s", prev, entry.Item, entry.Checksum)
		}
		seen[entry.Checksum] = entry.Item
	}
}

// reseal recomputes the footer CRC so a structural mutation survives the
// checksum gate and exercises the deep validators.
func reseal(d []byte) []byte {
	footerOff := len(d) - binFooterSize
	binary.LittleEndian.PutUint32(d[footerOff:], crc32.Checksum(d[:footerOff], castagnoli))
	return d
}

func binStructuralCorruptions() []corruptCase {
	return []corruptCase{
		{"node count zero", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[16:], 0)
			return reseal(d)
		}, ""},
		{"child total mismatch", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[24:], binary.LittleEndian.Uint32(d[24:])+1)
			return reseal(d)
		}, ""},
		{"section offset skew", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[48:], binary.LittleEndian.Uint64(d[48:])+4)
			return reseal(d)
		}, "section offsets"},
		{"item index out of range", func(d []byte) []byte {
			nodeOff := binary.LittleEndian.Uint64(d[48:])
			binary.LittleEndian.PutUint32(d[nodeOff:], ^uint32(0))
			return reseal(d)
		}, ""},
		{"child range overflow", func(d []byte) []byte {
			nodeOff := binary.LittleEndian.Uint64(d[48:])
			binary.LittleEndian.PutUint32(d[nodeOff+binNodeChildCount:], ^uint32(0))
			return reseal(d)
		}, ""},
		{"freq count zero", func(d []byte) []byte {
			nodeOff := binary.LittleEndian.Uint64(d[48:])
			binary.LittleEndian.PutUint32(d[nodeOff+binNodeFreqCount:], 0)
			return reseal(d)
		}, ""},
		{"level range overflow", func(d []byte) []byte {
			nodeOff := binary.LittleEndian.Uint64(d[48:])
			binary.LittleEndian.PutUint32(d[nodeOff+binNodeLevelCount:], ^uint32(0))
			return reseal(d)
		}, ""},
		{"self child", func(d []byte) []byte {
			// Point the root's first child entry back at the root.
			childOff := binary.LittleEndian.Uint64(d[56:])
			binary.LittleEndian.PutUint32(d[childOff:], 0)
			return reseal(d)
		}, "breadth-first"},
	}
}

// TestDecodeBinShardRejectsCorruption runs every mutation over a valid shard
// and requires a descriptive error — and no panic — from DecodeBinShard.
func TestDecodeBinShardRejectsCorruption(t *testing.T) {
	_, roots, bufs, entries := binShardFixtures(t, 19)
	// Pick the largest shard so structural mutations hit real tables.
	best := 0
	for i := range bufs {
		if len(bufs[i]) > len(bufs[best]) {
			best = i
		}
	}
	valid, entry := bufs[best], entries[best]
	if _, err := DecodeBinShard(append([]byte(nil), valid...), entry); err != nil {
		t.Fatalf("valid shard rejected: %v", err)
	}
	cases := binCorruptions()
	if roots[best].Children != nil {
		cases = append(cases, binStructuralCorruptions()...)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := c.mutate(append([]byte(nil), valid...))
			sh, err := DecodeBinShard(data, entry)
			if err == nil {
				t.Fatalf("corruption %q decoded successfully", c.name)
			}
			if sh != nil {
				t.Fatalf("corruption %q returned a non-nil shard with an error", c.name)
			}
			if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("corruption %q error %q does not mention %q", c.name, err, c.wantSub)
			}
		})
	}

	// Manifest cross-checks: the payload may be pristine but disagree with
	// the entry it is opened under.
	badItem := entry
	badItem.Item++
	if _, err := DecodeBinShard(append([]byte(nil), valid...), badItem); err == nil {
		t.Fatalf("shard decoded under a manifest entry for another item")
	}
	badNodes := entry
	badNodes.Nodes++
	if _, err := DecodeBinShard(append([]byte(nil), valid...), badNodes); err == nil {
		t.Fatalf("shard decoded under a manifest entry with the wrong node count")
	}
}

// TestWriteShardedBinaryRoundTrip writes an index in TCBIN format and
// requires byte-identical query answers from the reassembled tree, shards
// opened zero-copy, and a manifest that records the format.
func TestWriteShardedBinaryRoundTrip(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	dir := t.TempDir()
	m, err := tree.WriteShardedBinary(dir)
	if err != nil {
		t.Fatalf("WriteShardedBinary: %v", err)
	}
	if m.FormatName() != FormatTCBIN {
		t.Fatalf("manifest format %q, want %q", m.FormatName(), FormatTCBIN)
	}
	if m.TotalNodes() != tree.NumNodes() || m.Depth() != tree.Depth() || !approx(m.MaxAlpha(), tree.MaxAlpha()) {
		t.Fatalf("manifest totals (%d, %d, %v) disagree with tree (%d, %d, %v)",
			m.TotalNodes(), m.Depth(), m.MaxAlpha(), tree.NumNodes(), tree.Depth(), tree.MaxAlpha())
	}
	for _, e := range m.Shards {
		if !strings.HasSuffix(e.File, ".tcbin") {
			t.Fatalf("shard file %q does not use the .tcbin extension", e.File)
		}
	}

	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if idx.Format() != FormatTCBIN {
		t.Fatalf("index format %q, want %q", idx.Format(), FormatTCBIN)
	}
	view, err := idx.LoadShardView(itemset.Item(m.Shards[0].Item))
	if err != nil {
		t.Fatalf("LoadShardView: %v", err)
	}
	if _, ok := view.(*BinShard); !ok {
		t.Fatalf("LoadShardView on a TCBIN index returned %T, want *BinShard", view)
	}
	if view.SizeBytes() <= 0 {
		t.Fatalf("BinShard view reports %d bytes", view.SizeBytes())
	}

	reloaded, err := idx.LoadTree()
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	if err := reloaded.Validate(); err != nil {
		t.Fatalf("Validate after LoadTree: %v", err)
	}
	queries := tree.Patterns()
	alphas := []float64{0, 0.1, tree.MaxAlpha() / 2, tree.MaxAlpha(), tree.MaxAlpha() + 1}
	for _, q := range queries {
		for _, alpha := range alphas {
			assertIdenticalAnswer(t, reloaded.Query(q, alpha), tree.Query(q, alpha))
		}
	}
	for _, alpha := range alphas {
		assertIdenticalAnswer(t, reloaded.QueryByAlpha(alpha), tree.QueryByAlpha(alpha))
	}
}

// TestLoadShardVerifiesChecksumTCBIN is the TCBIN twin of the gob corruption
// test: a flipped byte must surface as a checksum mismatch on load.
func TestLoadShardVerifiesChecksumTCBIN(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	dir := t.TempDir()
	m, err := tree.WriteShardedBinary(dir)
	if err != nil {
		t.Fatalf("WriteShardedBinary: %v", err)
	}
	entry := m.Shards[0]
	path := filepath.Join(dir, entry.File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if _, err := idx.LoadShard(itemset.Item(entry.Item)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("LoadShard on a corrupted TCBIN file returned %v, want checksum mismatch", err)
	}
}

// TestMigrateFormat converts an index gob → TCBIN → gob in place, checking
// after each hop that the manifest, file extensions and query answers match
// the original and that files of the abandoned format are gone.
func TestMigrateFormat(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	dir := t.TempDir()
	if _, err := tree.WriteShardedAs(dir, FormatGob); err != nil {
		t.Fatalf("WriteShardedAs(gob): %v", err)
	}
	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}

	check := func(format, ext, goneExt string) {
		t.Helper()
		if idx.Format() != format {
			t.Fatalf("index format %q, want %q", idx.Format(), format)
		}
		m, err := ReadManifest(dir)
		if err != nil {
			t.Fatalf("ReadManifest: %v", err)
		}
		if m.FormatName() != format {
			t.Fatalf("on-disk manifest format %q, want %q", m.FormatName(), format)
		}
		if m.TotalNodes() != tree.NumNodes() {
			t.Fatalf("manifest TotalNodes = %d, want %d", m.TotalNodes(), tree.NumNodes())
		}
		files, err := filepath.Glob(filepath.Join(dir, "shard-*"))
		if err != nil {
			t.Fatalf("Glob: %v", err)
		}
		for _, f := range files {
			if strings.HasSuffix(f, goneExt) {
				t.Fatalf("file %s of the abandoned format survived the migration", f)
			}
			if !strings.HasSuffix(f, ext) {
				t.Fatalf("unexpected shard file %s after migrating to %s", f, format)
			}
		}
		reloaded, err := idx.LoadTree()
		if err != nil {
			t.Fatalf("LoadTree: %v", err)
		}
		for _, q := range tree.Patterns() {
			assertIdenticalAnswer(t, reloaded.Query(q, 0.1), tree.Query(q, 0.1))
		}
	}

	if err := idx.MigrateFormat(FormatTCBIN); err != nil {
		t.Fatalf("MigrateFormat(tcbin): %v", err)
	}
	check(FormatTCBIN, ".tcbin", ".gob")

	// Migrating to the format the index is already in is a no-op.
	if err := idx.MigrateFormat(FormatTCBIN); err != nil {
		t.Fatalf("MigrateFormat to the current format: %v", err)
	}
	check(FormatTCBIN, ".tcbin", ".gob")

	if err := idx.MigrateFormat(FormatGob); err != nil {
		t.Fatalf("MigrateFormat(gob): %v", err)
	}
	check(FormatGob, ".gob", ".tcbin")

	if err := idx.MigrateFormat("tsv"); err == nil {
		t.Fatalf("MigrateFormat to an unknown format should fail")
	}
}

// TestContainmentAlphaBound pins the histogram pruning rule: the bound at
// needDepth is the maximum α* over buckets ≥ needDepth−1, 0 past the end,
// and the whole-shard maximum at depth ≤ 1.
func TestContainmentAlphaBound(t *testing.T) {
	depths := []float64{0.9, 0.5, 0.3}
	cases := []struct {
		need int
		want float64
	}{{0, 0.9}, {1, 0.9}, {2, 0.5}, {3, 0.3}, {4, 0}, {99, 0}}
	for _, c := range cases {
		if got := ContainmentAlphaBound(depths, c.need); !approx(got, c.want) {
			t.Fatalf("ContainmentAlphaBound(%v, %d) = %v, want %v", depths, c.need, got, c.want)
		}
	}
	// A truncated histogram proves the shard is too shallow: the bound is 0.
	if got := ContainmentAlphaBound(depths, 17); got != 0 {
		t.Fatalf("ContainmentAlphaBound past the last bucket = %v, want 0", got)
	}
	full := make([]float64, 16)
	for i := range full {
		full[i] = 1 - float64(i)/16
	}
	// A full histogram folds deeper targets into the last bucket.
	if got := ContainmentAlphaBound(full, 40); !approx(got, full[15]) {
		t.Fatalf("ContainmentAlphaBound(full, 40) = %v, want %v", got, full[15])
	}
}

// TestCatalogueCodecs round-trips the bloom and histogram string encodings
// and rejects malformed inputs.
func TestCatalogueCodecs(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	root := tree.Root().Children[0]
	_, bloomStr, histStr := ShardCatalogue(root)

	bloom, err := DecodeItemBloom(bloomStr)
	if err != nil {
		t.Fatalf("DecodeItemBloom(%q): %v", bloomStr, err)
	}
	var items []itemset.Item
	seen := map[itemset.Item]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if !seen[n.Item] {
			seen[n.Item] = true
			items = append(items, n.Item)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	for _, it := range items {
		if !bloom.MayContain(it) {
			t.Fatalf("bloom filter rejects indexed item %d (false negative)", it)
		}
	}
	if bloom.Encode() != bloomStr {
		t.Fatalf("bloom re-encode %q, want %q", bloom.Encode(), bloomStr)
	}
	var nilBloom *ItemBloom
	if !nilBloom.MayContain(1) {
		t.Fatalf("a nil bloom must admit every item")
	}

	hist, err := DecodeAlphaDepths(histStr)
	if err != nil {
		t.Fatalf("DecodeAlphaDepths(%q): %v", histStr, err)
	}
	if len(hist) == 0 || len(hist) > 16 {
		t.Fatalf("histogram has %d buckets", len(hist))
	}
	if !sort.SliceIsSorted(hist, func(i, j int) bool { return hist[i] >= hist[j] }) {
		t.Fatalf("α*-by-depth histogram %v is not non-increasing", hist)
	}
	if !approx(hist[0], root.Decomp.MaxAlpha()) {
		t.Fatalf("histogram bucket 0 = %v, want the shard root α* %v", hist[0], root.Decomp.MaxAlpha())
	}

	for _, bad := range []string{"", "b2:7:AAAA", "b1:0:AAAA", "b1:7:!!!", "h1:", "hx:1", "h1:abc", "h1:-1"} {
		if _, err := DecodeItemBloom(bad); err == nil && strings.HasPrefix(bad, "b") {
			t.Fatalf("DecodeItemBloom(%q) accepted malformed input", bad)
		}
		if _, err := DecodeAlphaDepths(bad); err == nil && strings.HasPrefix(bad, "h") {
			t.Fatalf("DecodeAlphaDepths(%q) accepted malformed input", bad)
		}
	}
}

// FuzzTCBINDecode feeds arbitrary bytes to DecodeBinShard under a manifest
// entry synthesized from the payload's own header, so fuzzing reaches the
// structural validators behind the entry cross-checks. The decoder must
// either error or return a shard whose every traversal runs without panics
// or out-of-range reads.
func FuzzTCBINDecode(f *testing.F) {
	nw := dbnet.PaperExample()
	tree := Build(nw, BuildOptions{})
	for _, c := range tree.Root().Children {
		buf, _, err := encodeShardBinary(c)
		if err != nil {
			f.Fatalf("encodeShardBinary: %v", err)
		}
		f.Add(buf)
		truncated := append([]byte(nil), buf[:len(buf)/2]...)
		f.Add(truncated)
		flipped := append([]byte(nil), buf...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("TCBIN\r\n\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entry := ShardEntry{File: "fuzz.tcbin"}
		if len(data) >= 20 {
			entry.Item = int32(binary.LittleEndian.Uint32(data[12:]))
			entry.Nodes = int(binary.LittleEndian.Uint32(data[16:]))
		}
		sh, err := DecodeBinShard(data, entry)
		if err != nil {
			return
		}
		// A payload that passed validation must be fully traversable.
		sh.WalkPatterns(func(itemset.Itemset) {})
		root := sh.RootItem()
		for _, alpha := range []float64{0, 0.5} {
			sh.QuerySub(nil, alpha)
			sh.QuerySub(itemset.New(root), alpha)
			sh.QueryContaining(itemset.New(root), alpha)
		}
		sh.RemovalAlphas(itemset.New(root))
		if _, err := sh.Materialize(); err != nil {
			t.Fatalf("validated shard failed to materialize: %v", err)
		}
	})
}
