package tctree

import (
	"themecomm/internal/core"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// This file implements community search on top of the TC-Tree: retrieving the
// theme communities that contain a given query vertex, in the spirit of the
// k-truss community search of Huang et al. discussed in the paper's related
// work (Section 2.1), but generalized to pattern trusses and answered from the
// index instead of the raw graph.

// SearchVertex returns every theme community that contains the query vertex,
// restricted to themes that are sub-patterns of q and to the cohesion
// threshold alphaQ. Passing a nil or empty q searches every indexed theme.
// Communities are ordered by theme (shorter themes first) and the result
// shares no state with the tree.
func (t *Tree) SearchVertex(v graph.VertexID, q itemset.Itemset, alphaQ float64) []core.Community {
	var qr *QueryResult
	if q.Len() == 0 {
		qr = t.QueryByAlpha(alphaQ)
	} else {
		qr = t.Query(q, alphaQ)
	}
	return CommunitiesOfVertex(qr, v)
}

// CommunitiesOfVertex filters a query answer down to the theme communities
// that contain the vertex, ordered by theme (shorter themes first). It is the
// answer-side half of SearchVertex, shared with serving layers that execute
// the query themselves (internal/engine).
func CommunitiesOfVertex(qr *QueryResult, v graph.VertexID) []core.Community {
	var out []core.Community
	for _, tr := range qr.Trusses {
		if _, ok := tr.Freq[v]; !ok {
			continue
		}
		for _, comp := range tr.Communities() {
			if containsVertex(comp, v) {
				out = append(out, core.Community{Pattern: tr.Pattern, Edges: comp})
			}
		}
	}
	sortCommunities(out)
	return out
}

// VertexProfile summarises the community memberships of one vertex: every
// theme it participates in at the given threshold, with the size of the
// community it belongs to for that theme.
type VertexProfile struct {
	// Vertex is the profiled vertex.
	Vertex graph.VertexID
	// Themes are the patterns of the communities the vertex belongs to.
	Themes []itemset.Itemset
	// CommunitySizes holds, aligned with Themes, the number of vertices of
	// the community containing the vertex for that theme.
	CommunitySizes []int
}

// ProfileVertex computes the community-membership profile of a vertex at the
// given cohesion threshold.
func (t *Tree) ProfileVertex(v graph.VertexID, alphaQ float64) VertexProfile {
	profile := VertexProfile{Vertex: v}
	for _, c := range t.SearchVertex(v, nil, alphaQ) {
		profile.Themes = append(profile.Themes, c.Pattern)
		profile.CommunitySizes = append(profile.CommunitySizes, len(c.Vertices()))
	}
	return profile
}

func containsVertex(edges graph.EdgeSet, v graph.VertexID) bool {
	for _, e := range edges {
		if e.U == v || e.V == v {
			return true
		}
	}
	return false
}

func sortCommunities(cs []core.Community) {
	// Insertion sort keeps the dependency surface minimal; result sets are
	// small (the communities of a single vertex).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && lessCommunity(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func lessCommunity(a, b core.Community) bool {
	if a.Pattern.Len() != b.Pattern.Len() {
		return a.Pattern.Len() < b.Pattern.Len()
	}
	return itemset.Compare(a.Pattern, b.Pattern) < 0
}
