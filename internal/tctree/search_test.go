package tctree

import (
	"math/rand"
	"testing"

	"themecomm/internal/core"
	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
)

func TestSearchVertexOnPaperExample(t *testing.T) {
	nw := dbnet.PaperExample()
	tree := Build(nw, BuildOptions{})

	// Vertex v1 (0) belongs to the 5-vertex community of pattern p at α=0.1.
	comms := tree.SearchVertex(0, dbnet.PaperExampleP, 0.1)
	if len(comms) != 1 {
		t.Fatalf("expected exactly one community for v1 and pattern p, got %d", len(comms))
	}
	if len(comms[0].Vertices()) != 5 {
		t.Fatalf("community of v1 has %d vertices, want 5", len(comms[0].Vertices()))
	}
	// Vertex v6 (5) has frequency 0 for p: no community.
	if got := tree.SearchVertex(5, dbnet.PaperExampleP, 0.1); len(got) != 0 {
		t.Fatalf("v6 should belong to no p-community, got %d", len(got))
	}
	// Vertex v7 (6) belongs to the triangle community.
	comms = tree.SearchVertex(6, dbnet.PaperExampleP, 0.1)
	if len(comms) != 1 || len(comms[0].Vertices()) != 3 {
		t.Fatalf("community of v7 wrong: %v", comms)
	}
	// A nil query pattern searches every theme.
	all := tree.SearchVertex(0, nil, 0.1)
	if len(all) < 1 {
		t.Fatalf("nil query should still find the p-community of v1")
	}
	// An unknown vertex belongs to nothing.
	if got := tree.SearchVertex(99, nil, 0); len(got) != 0 {
		t.Fatalf("unknown vertex should belong to no community")
	}
}

func TestSearchVertexAgreesWithMining(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	nw := randomNetwork(rng, 16, 36, 4, 4)
	tree := Build(nw, BuildOptions{})
	const alpha = 0.2
	mined := core.TCFI(nw, core.Options{Alpha: alpha})

	for v := graph.VertexID(0); int(v) < nw.NumVertices(); v++ {
		// Reference: communities containing v, computed from the miner.
		want := 0
		for _, c := range mined.Communities() {
			for _, u := range c.Vertices() {
				if u == v {
					want++
					break
				}
			}
		}
		got := tree.SearchVertex(v, nil, alpha)
		if len(got) != want {
			t.Fatalf("vertex %d: search found %d communities, mining found %d", v, len(got), want)
		}
		// The results are sorted by theme length then lexicographically.
		for i := 1; i < len(got); i++ {
			if lessCommunity(got[i], got[i-1]) {
				t.Fatalf("vertex %d: communities not sorted", v)
			}
		}
	}
}

func TestProfileVertex(t *testing.T) {
	nw := dbnet.PaperExample()
	tree := Build(nw, BuildOptions{})
	profile := tree.ProfileVertex(0, 0.1)
	if profile.Vertex != 0 {
		t.Fatalf("profile vertex = %d", profile.Vertex)
	}
	if len(profile.Themes) == 0 || len(profile.Themes) != len(profile.CommunitySizes) {
		t.Fatalf("profile inconsistent: %+v", profile)
	}
	foundP := false
	for i, theme := range profile.Themes {
		if theme.Equal(dbnet.PaperExampleP) {
			foundP = true
			if profile.CommunitySizes[i] != 5 {
				t.Fatalf("p-community size = %d, want 5", profile.CommunitySizes[i])
			}
		}
	}
	if !foundP {
		t.Fatalf("profile of v1 misses pattern p: %+v", profile)
	}
	// A vertex outside every community has an empty profile.
	empty := tree.ProfileVertex(99, 0)
	if len(empty.Themes) != 0 {
		t.Fatalf("unknown vertex should have an empty profile")
	}
}
