package tctree

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"themecomm/internal/core"
	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func randomNetwork(rng *rand.Rand, n, m, items, maxTx int) *dbnet.Network {
	nw := dbnet.New(n)
	for i := 0; i < m; i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < n; v++ {
		ntx := 1 + rng.Intn(maxTx)
		for i := 0; i < ntx; i++ {
			l := 1 + rng.Intn(3)
			tx := make([]itemset.Item, l)
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(items))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				panic(err)
			}
		}
	}
	return nw
}

func TestBuildOnPaperExample(t *testing.T) {
	nw := dbnet.PaperExample()
	tree := Build(nw, BuildOptions{})
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.NumNodes() == 0 {
		t.Fatalf("tree should index at least the pattern p")
	}
	node := tree.Node(dbnet.PaperExampleP)
	if node == nil {
		t.Fatalf("pattern p should be indexed")
	}
	// The non-trivial range of α for p ends at 0.3 (the v7-v9 triangle).
	if !approx(node.Decomp.MaxAlpha(), 0.3) {
		t.Fatalf("MaxAlpha of p = %v, want 0.3", node.Decomp.MaxAlpha())
	}
	// Querying at α=0.1 must retrieve the same communities the miner finds.
	qr := tree.Query(dbnet.PaperExampleP, 0.1)
	if qr.RetrievedNodes != 1 || len(qr.Trusses) != 1 {
		t.Fatalf("query retrieved %d nodes, want 1", qr.RetrievedNodes)
	}
	comms := qr.Communities()
	if len(comms) != 2 {
		t.Fatalf("expected 2 theme communities, got %d", len(comms))
	}
	if tree.String() == "" || tree.Depth() < 1 {
		t.Fatalf("tree accessors broken")
	}
}

func TestTreeMatchesMiningAcrossAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		nw := randomNetwork(rng, 14, 32, 4, 4)
		tree := Build(nw, BuildOptions{})
		if err := tree.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		alphas := []float64{0, 0.15, 0.4, 0.9, 1.7}
		for _, alpha := range alphas {
			want := core.TCFI(nw, core.Options{Alpha: alpha})
			got := tree.MiningResult(alpha)
			if !got.Equal(want) {
				t.Fatalf("trial %d α=%v: TC-Tree answer (NP=%d) differs from TCFI (NP=%d)",
					trial, alpha, got.NumPatterns(), want.NumPatterns())
			}
		}
		// The number of indexed nodes equals NP at α=0.
		if want := core.TCFI(nw, core.Options{Alpha: 0}); want.NumPatterns() != tree.NumNodes() {
			t.Fatalf("trial %d: tree has %d nodes, mining found %d patterns", trial, tree.NumNodes(), want.NumPatterns())
		}
	}
}

func TestQueryByPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nw := randomNetwork(rng, 16, 36, 5, 4)
	tree := Build(nw, BuildOptions{})
	full := tree.QueryByAlpha(0)

	// Querying by the full item universe retrieves every node.
	if full.RetrievedNodes != tree.NumNodes() {
		t.Fatalf("QueryByAlpha(0) retrieved %d of %d nodes", full.RetrievedNodes, tree.NumNodes())
	}

	// Querying by a specific pattern retrieves exactly its indexed sub-patterns.
	for _, q := range tree.Patterns() {
		qr := tree.QueryByPattern(q)
		for _, tr := range qr.Trusses {
			if !tr.Pattern.SubsetOf(q) {
				t.Fatalf("retrieved pattern %v is not a sub-pattern of %v", tr.Pattern, q)
			}
		}
		want := 0
		for _, p := range tree.Patterns() {
			if p.SubsetOf(q) {
				want++
			}
		}
		if qr.RetrievedNodes != want {
			t.Fatalf("query %v retrieved %d nodes, want %d", q, qr.RetrievedNodes, want)
		}
	}

	// Querying a pattern with no indexed sub-pattern returns nothing.
	empty := tree.QueryByPattern(itemset.New(4242))
	if empty.RetrievedNodes != 0 || len(empty.Trusses) != 0 {
		t.Fatalf("query of unknown pattern should retrieve nothing")
	}
}

func TestQueryByAlphaMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	nw := randomNetwork(rng, 16, 40, 4, 4)
	tree := Build(nw, BuildOptions{})
	maxAlpha := tree.MaxAlpha()
	if maxAlpha <= 0 {
		t.Skipf("degenerate network with no trusses")
	}
	prev := tree.QueryByAlpha(0).RetrievedNodes
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		cur := tree.QueryByAlpha(maxAlpha * frac).RetrievedNodes
		if cur > prev {
			t.Fatalf("retrieved nodes must not grow with α: %d then %d", prev, cur)
		}
		prev = cur
	}
	if got := tree.QueryByAlpha(maxAlpha).RetrievedNodes; got != 0 {
		t.Fatalf("querying at MaxAlpha should retrieve nothing, got %d", got)
	}
}

func TestBuildRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	nw := randomNetwork(rng, 14, 30, 4, 5)
	tree := Build(nw, BuildOptions{MaxDepth: 1})
	if tree.Depth() > 1 {
		t.Fatalf("MaxDepth=1 produced depth %d", tree.Depth())
	}
	unbounded := Build(nw, BuildOptions{})
	if unbounded.Depth() > 1 {
		if tree.NumNodes() >= unbounded.NumNodes() {
			t.Fatalf("bounded tree should have fewer nodes")
		}
	}
	if got := len(tree.PatternsAtDepth(1)); got != tree.NumNodes() {
		t.Fatalf("PatternsAtDepth(1) = %d, want %d", got, tree.NumNodes())
	}
}

func TestBuildSerialVsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	nw := randomNetwork(rng, 16, 36, 5, 4)
	serial := Build(nw, BuildOptions{Parallelism: 1})
	parallel := Build(nw, BuildOptions{Parallelism: 4})
	if serial.NumNodes() != parallel.NumNodes() {
		t.Fatalf("serial and parallel builds disagree: %d vs %d nodes", serial.NumNodes(), parallel.NumNodes())
	}
	if !serial.MiningResult(0).Equal(parallel.MiningResult(0)) {
		t.Fatalf("serial and parallel builds index different trusses")
	}
}

func TestNodeLookup(t *testing.T) {
	nw := dbnet.PaperExample()
	tree := Build(nw, BuildOptions{})
	if tree.Node(itemset.New()) != nil {
		t.Fatalf("looking up the empty pattern should return nil")
	}
	if tree.Node(itemset.New(987654)) != nil {
		t.Fatalf("looking up an unknown pattern should return nil")
	}
	for _, p := range tree.Patterns() {
		n := tree.Node(p)
		if n == nil || !n.Pattern.Equal(p) {
			t.Fatalf("Node(%v) lookup failed", p)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	nw := randomNetwork(rng, 14, 32, 4, 4)
	tree := Build(nw, BuildOptions{})

	var buf bytes.Buffer
	if err := tree.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got.NumNodes() != tree.NumNodes() {
		t.Fatalf("round trip node count %d, want %d", got.NumNodes(), tree.NumNodes())
	}
	for _, alpha := range []float64{0, 0.3, 0.8} {
		if !got.MiningResult(alpha).Equal(tree.MiningResult(alpha)) {
			t.Fatalf("round trip answers differ at α=%v", alpha)
		}
	}
}

func TestSerializationFile(t *testing.T) {
	nw := dbnet.PaperExample()
	tree := Build(nw, BuildOptions{})
	path := t.TempDir() + "/tree.tctree"
	if err := tree.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.NumNodes() != tree.NumNodes() {
		t.Fatalf("file round trip node count mismatch")
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatalf("reading a missing file should fail")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("this is not a tc-tree")); err == nil {
		t.Fatalf("garbage input should be rejected")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatalf("empty input should be rejected")
	}
}

func TestEmptyNetworkTree(t *testing.T) {
	tree := Build(dbnet.New(0), BuildOptions{})
	if tree.NumNodes() != 0 || tree.Depth() != 0 {
		t.Fatalf("tree of empty network should be empty")
	}
	if got := tree.QueryByAlpha(0); got.RetrievedNodes != 0 {
		t.Fatalf("query on empty tree should retrieve nothing")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.MaxAlpha() != 0 {
		t.Fatalf("MaxAlpha of empty tree should be 0")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	nw := dbnet.PaperExample()
	tree := Build(nw, BuildOptions{})
	// Corrupt a node's pattern.
	var victim *Node
	tree.Walk(func(n *Node) {
		if victim == nil {
			victim = n
		}
	})
	if victim == nil {
		t.Fatalf("no nodes to corrupt")
	}
	orig := victim.Pattern
	victim.Pattern = itemset.New(123456)
	if err := tree.Validate(); err == nil {
		t.Fatalf("Validate should detect the corrupted pattern")
	}
	victim.Pattern = orig
	if err := tree.Validate(); err != nil {
		t.Fatalf("tree should validate again after repair: %v", err)
	}
}
