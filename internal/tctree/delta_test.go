package tctree

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"themecomm/internal/itemset"
)

// collectTempFiles lists the *.tmp files inside dir.
func collectTempFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestCommitShardsCrashSafety injects a write failure mid-commit (the temp
// file is written but never renamed, as a crash would leave it) and asserts
// the index still opens clean on the old manifest, answers queries
// identically, and that reopening sweeps the orphaned temp files.
func TestCommitShardsCrashSafety(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	other := buildShardedTestTree(t, 31)
	var replacement *Node
	for _, c := range other.Root().Children {
		if tree.Root().Descendant(c.Pattern) != nil {
			replacement = c
			break
		}
	}
	if replacement == nil {
		t.Fatalf("trees share no root item; pick other seeds")
	}

	for _, failOn := range []string{"shard", "manifest"} {
		t.Run("fail-on-"+failOn, func(t *testing.T) {
			dir := t.TempDir()
			before, err := tree.WriteSharded(dir)
			if err != nil {
				t.Fatalf("WriteSharded: %v", err)
			}
			idx, err := OpenSharded(dir)
			if err != nil {
				t.Fatalf("OpenSharded: %v", err)
			}
			testInjectWriteErr = func(name string) error {
				if failOn == "manifest" && name == ManifestName {
					return fmt.Errorf("injected manifest write failure")
				}
				if failOn == "shard" && name != ManifestName {
					return fmt.Errorf("injected shard write failure")
				}
				return nil
			}
			defer func() { testInjectWriteErr = nil }()
			if _, err := idx.CommitShards(map[itemset.Item]*Node{replacement.Item: replacement}); err == nil {
				t.Fatalf("CommitShards should surface the injected failure")
			}
			testInjectWriteErr = nil

			// The in-memory handle must still serve the old manifest...
			if got := idx.Manifest(); len(got.Shards) != len(before.Shards) {
				t.Fatalf("in-memory manifest lost shards: %d, want %d", len(got.Shards), len(before.Shards))
			}
			// ...and a fresh open must see the untouched old index.
			reopened, err := OpenSharded(dir)
			if err != nil {
				t.Fatalf("OpenSharded after failed commit: %v", err)
			}
			if tmp := collectTempFiles(t, dir); len(tmp) != 0 {
				t.Fatalf("orphaned temp files survived reopen: %v", tmp)
			}
			m := reopened.Manifest()
			for i, e := range m.Shards {
				if e != before.Shards[i] {
					t.Fatalf("shard entry %d changed across failed commit: %+v -> %+v", i, before.Shards[i], e)
				}
			}
			loaded, err := reopened.LoadTree()
			if err != nil {
				t.Fatalf("LoadTree after failed commit: %v", err)
			}
			assertIdenticalAnswer(t, loaded.Query(nil, 0), tree.Query(nil, 0))
		})
	}
}

// TestFailedCommitPreservesReusedFiles covers the case where a rebuilt shard
// is byte-identical to the current one: its checksum-versioned file name is
// reused, and a failure later in the same commit must not delete that file —
// the old manifest still references it.
func TestFailedCommitPreservesReusedFiles(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	a := tree.Root().Children[0]
	b := tree.Root().Children[1]
	// First commit moves shard a onto its checksum-versioned file name.
	if _, err := idx.CommitShards(map[itemset.Item]*Node{a.Item: a}); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	entryA, _ := idx.Entry(a.Item)
	// Second commit resubmits a unchanged (same name) and fails on b's file.
	testInjectWriteErr = func(name string) error {
		if name != entryA.File && name != ManifestName {
			return fmt.Errorf("injected failure on %s", name)
		}
		return nil
	}
	defer func() { testInjectWriteErr = nil }()
	if _, err := idx.CommitShards(map[itemset.Item]*Node{a.Item: a, b.Item: b}); err == nil {
		t.Fatalf("commit should surface the injected failure")
	}
	testInjectWriteErr = nil
	// Shard a's file must have survived the failed commit's cleanup.
	if _, err := idx.LoadShard(a.Item); err != nil {
		t.Fatalf("LoadShard(%d) after failed commit: %v", a.Item, err)
	}
	if _, err := idx.LoadTree(); err != nil {
		t.Fatalf("LoadTree after failed commit: %v", err)
	}
}

// TestOpenShardedSweepsOrphanTempFiles plants stray temp files (as a crashed
// writer would) and asserts OpenSharded removes them without touching
// committed data.
func TestOpenShardedSweepsOrphanTempFiles(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	for _, name := range []string{"shard-9999.gob.tmp", ManifestName + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatalf("plant %s: %v", name, err)
		}
	}
	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if tmp := collectTempFiles(t, dir); len(tmp) != 0 {
		t.Fatalf("orphan temp files survived OpenSharded: %v", tmp)
	}
	if _, err := idx.LoadTree(); err != nil {
		t.Fatalf("LoadTree after sweep: %v", err)
	}
}

// TestCommitShardsAddRemove exercises the membership half of a commit: a new
// shard joins the manifest, a removed shard leaves it, and the files follow.
func TestCommitShardsAddRemove(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}

	// Remove the first shard, add a brand-new item by grafting a copy of the
	// last shard onto an unseen item identifier.
	victim := itemset.Item(idx.Manifest().Shards[0].Item)
	last := tree.Root().Children[len(tree.Root().Children)-1]
	graft := &Node{Item: 4096, Pattern: itemset.New(4096), Decomp: last.Decomp}
	report, err := idx.CommitShards(map[itemset.Item]*Node{
		victim: nil,
		4096:   graft,
		4097:   nil, // absent item: removing it is a no-op
	})
	if err != nil {
		t.Fatalf("CommitShards: %v", err)
	}
	if len(report.Removed) != 1 || report.Removed[0] != victim {
		t.Fatalf("Removed = %v, want [%d]", report.Removed, victim)
	}
	if len(report.Added) != 1 || report.Added[0] != 4096 {
		t.Fatalf("Added = %v, want [4096]", report.Added)
	}
	if len(report.Replaced) != 0 {
		t.Fatalf("Replaced = %v, want none", report.Replaced)
	}
	if got := report.Touched(); !got.Equal(itemset.New(victim, 4096)) {
		t.Fatalf("Touched = %v", got)
	}

	reopened, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded after commit: %v", err)
	}
	if _, ok := reopened.Entry(victim); ok {
		t.Fatalf("removed shard %d still in manifest", victim)
	}
	sub, err := reopened.LoadShard(4096)
	if err != nil {
		t.Fatalf("LoadShard(4096): %v", err)
	}
	if sub.Item != 4096 || len(sub.Children) != len(graft.Children) {
		t.Fatalf("added shard loads wrong subtree")
	}
	// The removed shard's file is gone.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), fmt.Sprintf("shard-%d-", victim)) || e.Name() == fmt.Sprintf("shard-%d.gob", victim) {
			t.Fatalf("removed shard's file %s survived", e.Name())
		}
	}
}

// TestRebuildSubtreeMatchesBuild asserts that re-decomposing one top-level
// item from the network reproduces the corresponding first-level subtree of
// a from-scratch Build, query for query.
func TestRebuildSubtreeMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	nw := randomNetwork(rng, 16, 40, 5, 4)
	tree := Build(nw, BuildOptions{})
	if len(tree.Root().Children) == 0 {
		t.Fatalf("empty tree; pick another seed")
	}
	for _, c := range tree.Root().Children {
		rebuilt := RebuildSubtree(nw, c.Item)
		if rebuilt == nil {
			t.Fatalf("RebuildSubtree(%d) = nil for an indexed item", c.Item)
		}
		assertSameSubtree(t, c, rebuilt)
	}
	// An item absent from every transaction rebuilds to nothing.
	if sub := RebuildSubtree(nw, 4096); sub != nil {
		t.Fatalf("RebuildSubtree of an unknown item = %v, want nil", sub.Pattern)
	}
}

// assertSameSubtree compares two subtrees structurally: same patterns, same
// decompositions level by level.
func assertSameSubtree(t *testing.T, want, got *Node) {
	t.Helper()
	if !want.Pattern.Equal(got.Pattern) {
		t.Fatalf("pattern %v != %v", got.Pattern, want.Pattern)
	}
	if wn, gn := want.Decomp.NumEdges(), got.Decomp.NumEdges(); wn != gn {
		t.Fatalf("pattern %v: %d edges, want %d", want.Pattern, gn, wn)
	}
	if wl, gl := len(want.Decomp.Levels), len(got.Decomp.Levels); wl != gl {
		t.Fatalf("pattern %v: %d levels, want %d", want.Pattern, gl, wl)
	}
	for i := range want.Decomp.Levels {
		wl, gl := want.Decomp.Levels[i], got.Decomp.Levels[i]
		if wl.Alpha != gl.Alpha || len(wl.Removed) != len(gl.Removed) {
			t.Fatalf("pattern %v level %d: (α=%v,%d edges), want (α=%v,%d edges)",
				want.Pattern, i, gl.Alpha, len(gl.Removed), wl.Alpha, len(wl.Removed))
		}
		for j := range wl.Removed {
			if wl.Removed[j] != gl.Removed[j] {
				t.Fatalf("pattern %v level %d edge %d: %v, want %v", want.Pattern, i, j, gl.Removed[j], wl.Removed[j])
			}
		}
	}
	if len(want.Children) != len(got.Children) {
		gotItems := make([]itemset.Item, 0, len(got.Children))
		for _, c := range got.Children {
			gotItems = append(gotItems, c.Item)
		}
		wantItems := make([]itemset.Item, 0, len(want.Children))
		for _, c := range want.Children {
			wantItems = append(wantItems, c.Item)
		}
		t.Fatalf("pattern %v: children %v, want %v", want.Pattern, gotItems, wantItems)
	}
	for i := range want.Children {
		assertSameSubtree(t, want.Children[i], got.Children[i])
	}
}

// TestBuiltMaxDepthRoundTrips pins that the MaxDepth build bound survives
// both on-disk formats — the ApplyDelta depth guard depends on it.
func TestBuiltMaxDepthRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	nw := randomNetwork(rng, 16, 40, 5, 4)
	tree := Build(nw, BuildOptions{MaxDepth: 2})
	if got := tree.BuiltMaxDepth(); got != 2 {
		t.Fatalf("BuiltMaxDepth = %d, want 2", got)
	}

	var buf bytes.Buffer
	if err := tree.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	mono, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got := mono.BuiltMaxDepth(); got != 2 {
		t.Fatalf("monolithic round trip lost the bound: %d", got)
	}

	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	idx, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if got := idx.Manifest().BuiltMaxDepth; got != 2 {
		t.Fatalf("manifest lost the bound: %d", got)
	}
	loaded, err := idx.LoadTree()
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	if got := loaded.BuiltMaxDepth(); got != 2 {
		t.Fatalf("sharded round trip lost the bound: %d", got)
	}
	if _, err := idx.ApplyDelta(nw, itemset.New(0)); err == nil {
		t.Fatalf("ApplyDelta accepted a depth-bounded index")
	}

	// Unbounded trees round-trip a zero bound and stay updatable.
	free := Build(nw, BuildOptions{})
	if got := free.BuiltMaxDepth(); got != 0 {
		t.Fatalf("unbounded tree reports bound %d", got)
	}
}

// TestSetSubtree checks the eager-tree counterpart of CommitShards: node
// counts stay consistent across replace, add and remove.
func TestSetSubtree(t *testing.T) {
	tree := buildShardedTestTree(t, 19)
	other := buildShardedTestTree(t, 31)
	var shared *Node
	for _, c := range other.Root().Children {
		if tree.Root().Descendant(itemset.New(c.Item)) != nil {
			shared = c
			break
		}
	}
	if shared == nil {
		t.Fatalf("trees share no root item; pick other seeds")
	}
	recount := func() int {
		n := 0
		tree.Walk(func(*Node) { n++ })
		return n
	}
	tree.SetSubtree(shared.Item, shared) // replace
	if got, want := tree.NumNodes(), recount(); got != want {
		t.Fatalf("NumNodes after replace = %d, want %d", got, want)
	}
	graft := &Node{Item: 4096, Pattern: itemset.New(4096), Decomp: shared.Decomp}
	tree.SetSubtree(4096, graft) // add
	if got, want := tree.NumNodes(), recount(); got != want {
		t.Fatalf("NumNodes after add = %d, want %d", got, want)
	}
	tree.SetSubtree(shared.Item, nil) // remove
	if got, want := tree.NumNodes(), recount(); got != want {
		t.Fatalf("NumNodes after remove = %d, want %d", got, want)
	}
	if tree.Root().Descendant(itemset.New(shared.Item)) != nil {
		t.Fatalf("removed subtree still reachable")
	}
	tree.SetSubtree(8192, nil) // removing an absent item is a no-op
	if got, want := tree.NumNodes(), recount(); got != want {
		t.Fatalf("NumNodes after no-op remove = %d, want %d", got, want)
	}
}
