package tctree

import (
	"runtime"
	"sync"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/truss"
)

// RebuildSubtree re-decomposes the first-level subtree (shard) of one
// top-level item from the current state of the network, without touching any
// other shard: the incremental-maintenance counterpart of Build. It returns
// nil when the item's maximal pattern truss at α = 0 is empty — the shard no
// longer indexes anything and should be dropped.
//
// The result is identical to the corresponding first-level subtree of
// Build(nw, BuildOptions{}): candidate patterns are evaluated inside the
// shard root's truss edges (a superset of the sibling intersection Build
// uses, exact by Proposition 5.3 — the maximal pattern truss is unique, so
// enlarging the candidate subgraph cannot change the decomposition), and
// deeper levels join right siblings within the shard exactly like
// Algorithm 4. Callers rebuilding an index built with a MaxDepth bound must
// re-run Build instead.
//
// The network must be quiescent (and Freeze-d if RebuildSubtree runs
// concurrently with other readers).
func RebuildSubtree(nw *dbnet.Network, item itemset.Item) *Node {
	d1 := truss.Decompose(nw.ThemeNetwork(itemset.New(item)))
	if d1.Empty() {
		return nil
	}
	root := &Node{Item: item, Pattern: itemset.New(item), Decomp: d1}
	base := map[*Node]graph.EdgeSet{root: d1.EdgesAt(0)}

	// Level 2: every network item beyond the shard root is a candidate
	// extension. Items whose own truss is empty die here too — their joined
	// pattern's truss is a subset of theirs (Proposition 5.3), hence empty.
	var queue []*Node
	for _, j := range nw.Items() {
		if j <= item {
			continue
		}
		pc := root.Pattern.Add(j)
		decomp := truss.Decompose(nw.ThemeNetworkWithin(pc, base[root]))
		if decomp.Empty() {
			continue
		}
		nc := &Node{Item: j, Pattern: pc, Decomp: decomp}
		root.addChild(nc)
		base[nc] = decomp.EdgesAt(0)
		queue = append(queue, nc)
	}

	// Deeper levels: breadth-first join with right siblings, as in Build.
	parent := make(map[*Node]*Node, len(queue))
	for _, c := range root.Children {
		parent[c] = root
	}
	for len(queue) > 0 {
		nf := queue[0]
		queue = queue[1:]
		for _, nb := range parent[nf].Children {
			if nb.Item <= nf.Item {
				continue
			}
			inter := base[nf].Intersect(base[nb])
			if inter.Len() == 0 {
				continue
			}
			pc := nf.Pattern.Add(nb.Item)
			decomp := truss.Decompose(nw.ThemeNetworkWithin(pc, inter))
			if decomp.Empty() {
				continue
			}
			nc := &Node{Item: nb.Item, Pattern: pc, Decomp: decomp}
			nf.addChild(nc)
			parent[nc] = nf
			base[nc] = decomp.EdgesAt(0)
			queue = append(queue, nc)
		}
	}
	return root
}

// RebuildSubtrees rebuilds the shards of every given item in parallel,
// returning item → new subtree (nil when the shard decomposed to nothing).
// The network is frozen first so concurrent reads are safe.
func RebuildSubtrees(nw *dbnet.Network, items itemset.Itemset) map[itemset.Item]*Node {
	nw.Freeze()
	out := make(map[itemset.Item]*Node, items.Len())
	if items.Len() == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > items.Len() {
		workers = items.Len()
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan itemset.Item)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				sub := RebuildSubtree(nw, it)
				mu.Lock()
				out[it] = sub
				mu.Unlock()
			}
		}()
	}
	for _, it := range items {
		jobs <- it
	}
	close(jobs)
	wg.Wait()
	return out
}

// SetSubtree installs, replaces or removes the first-level subtree of one
// top-level item on an in-memory tree, keeping the node count consistent: a
// nil root removes the item's subtree, a non-nil root (whose pattern must be
// the single item) replaces it or is inserted in item order. It is the
// eager-engine counterpart of ShardedIndex.CommitShards; callers must not
// mutate the tree while other goroutines read it.
func (t *Tree) SetSubtree(item itemset.Item, root *Node) {
	if t == nil || t.root == nil {
		return
	}
	for i, c := range t.root.Children {
		if c.Item != item {
			continue
		}
		t.numNodes -= statsOf(c).Nodes
		if root == nil {
			t.root.Children = append(t.root.Children[:i], t.root.Children[i+1:]...)
		} else {
			t.root.Children[i] = root
			t.numNodes += statsOf(root).Nodes
		}
		return
	}
	if root == nil {
		return
	}
	t.root.addChild(root)
	t.numNodes += statsOf(root).Nodes
}
