//go:build !linux

package tctree

import "os"

// mapFile reads path into memory on platforms without the raw mmap path.
// The nil closure tells the caller no explicit release is needed.
func mapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
