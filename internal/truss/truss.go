// Package truss implements the pattern-truss machinery of the paper: edge
// cohesion (Definition 3.1), the Maximal Pattern Truss Detector MPTD
// (Algorithm 1), and the decomposition of a maximal pattern truss into the
// threshold-ordered linked list L_p used by the TC-Tree (Section 6.1,
// Theorem 6.1).
package truss

import (
	"fmt"
	"sort"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// cohesionTolerance absorbs floating-point drift when comparing edge cohesion
// values against a threshold. Two cohesion values that are mathematically
// equal but computed along different peeling orders may differ by a few ULPs;
// the tolerance makes the "eco ≤ α" test of Algorithm 1 stable.
const cohesionTolerance = 1e-9

// LevelLive reports whether a decomposition level with threshold levelAlpha
// still belongs to C*_p(alpha) — the "α_k > α" comparison of Theorem 6.1
// under the cohesion tolerance. It is exported so storage layers that
// reconstruct trusses from flat level tables (the TCBIN shard format) apply
// exactly the comparison Decomposition.EdgesAt applies.
func LevelLive(levelAlpha, alpha float64) bool { return levelAlpha > alpha+cohesionTolerance }

// Truss is a maximal pattern truss C*_p(α): the union of all pattern trusses
// of the theme network G_p with respect to the cohesion threshold Alpha.
// A Truss is not necessarily connected; its maximal connected subgraphs are
// the theme communities of Definition 3.5.
type Truss struct {
	// Pattern is the theme p.
	Pattern itemset.Itemset
	// Alpha is the minimum cohesion threshold the truss was computed for.
	Alpha float64
	// Edges is the edge set E*_p(α).
	Edges graph.EdgeSet
	// Freq maps every vertex of the truss to f_i(p).
	Freq map[graph.VertexID]float64
}

// Empty reports whether the truss has no edges.
func (t *Truss) Empty() bool { return t == nil || t.Edges.Len() == 0 }

// NumEdges returns |E*_p(α)|.
func (t *Truss) NumEdges() int {
	if t == nil {
		return 0
	}
	return t.Edges.Len()
}

// NumVertices returns |V*_p(α)|.
func (t *Truss) NumVertices() int {
	if t == nil {
		return 0
	}
	return len(t.Freq)
}

// Vertices returns the sorted vertices of the truss.
func (t *Truss) Vertices() []graph.VertexID {
	if t == nil {
		return nil
	}
	return t.Edges.Vertices()
}

// Communities returns the theme communities of the truss: its maximal
// connected subgraphs, as edge sets over the original vertex identifiers.
func (t *Truss) Communities() []graph.EdgeSet {
	if t.Empty() {
		return nil
	}
	return t.Edges.ConnectedComponents()
}

// String summarises the truss.
func (t *Truss) String() string {
	if t == nil {
		return "truss.Truss(nil)"
	}
	return fmt.Sprintf("truss.Truss{p=%v, α=%g, |V|=%d, |E|=%d}", t.Pattern, t.Alpha, t.NumVertices(), t.NumEdges())
}

// Detect runs MPTD (Algorithm 1) on the theme network and returns the maximal
// pattern truss with respect to alpha. The returned truss may be empty but is
// never nil.
func Detect(tn *dbnet.ThemeNetwork, alpha float64) *Truss {
	p := newPeeler(tn)
	p.peel(alpha)
	return p.truss(alpha)
}

// Cohesions computes the edge cohesion of every edge of the theme network in
// the subgraph formed by the whole theme network (no peeling). It is exposed
// for diagnostics and tests.
func Cohesions(tn *dbnet.ThemeNetwork) map[uint64]float64 {
	p := newPeeler(tn)
	out := make(map[uint64]float64, len(p.cohesion))
	for k, v := range p.cohesion {
		out[k] = v
	}
	return out
}

// peeler is the mutable working state of MPTD: the surviving adjacency
// structure, the current cohesion of every surviving edge, and the vertex
// frequencies of the theme network.
type peeler struct {
	pattern  itemset.Itemset
	freq     map[graph.VertexID]float64
	adj      map[graph.VertexID]map[graph.VertexID]bool
	cohesion map[uint64]float64
	removed  map[uint64]bool
}

func newPeeler(tn *dbnet.ThemeNetwork) *peeler {
	p := &peeler{
		pattern:  tn.Pattern,
		freq:     tn.Freq,
		adj:      make(map[graph.VertexID]map[graph.VertexID]bool),
		cohesion: make(map[uint64]float64, tn.Edges.Len()),
		removed:  make(map[uint64]bool),
	}
	for _, e := range tn.Edges {
		p.link(e.U, e.V)
	}
	// Phase 1 of Algorithm 1: initial cohesion of every edge.
	for _, e := range tn.Edges {
		p.cohesion[e.Key()] = p.initialCohesion(e)
	}
	return p
}

func (p *peeler) link(u, v graph.VertexID) {
	if p.adj[u] == nil {
		p.adj[u] = make(map[graph.VertexID]bool)
	}
	if p.adj[v] == nil {
		p.adj[v] = make(map[graph.VertexID]bool)
	}
	p.adj[u][v] = true
	p.adj[v][u] = true
}

func (p *peeler) unlink(u, v graph.VertexID) {
	delete(p.adj[u], v)
	delete(p.adj[v], u)
}

// commonNeighbors returns the surviving common neighbors of u and v.
func (p *peeler) commonNeighbors(u, v graph.VertexID) []graph.VertexID {
	a, b := p.adj[u], p.adj[v]
	if len(b) < len(a) {
		a, b = b, a
	}
	var out []graph.VertexID
	for w := range a {
		if b[w] {
			out = append(out, w)
		}
	}
	return out
}

func (p *peeler) initialCohesion(e graph.Edge) float64 {
	fu, fv := p.freq[e.U], p.freq[e.V]
	total := 0.0
	for _, w := range p.commonNeighbors(e.U, e.V) {
		total += min3(fu, fv, p.freq[w])
	}
	return total
}

// peel removes every edge whose cohesion is at most alpha, cascading the
// cohesion updates of Algorithm 1 lines 9-18, until all surviving edges have
// cohesion strictly greater than alpha.
func (p *peeler) peel(alpha float64) {
	var queue []graph.Edge
	queued := make(map[uint64]bool)
	for key, eco := range p.cohesion {
		if eco <= alpha+cohesionTolerance {
			e := graph.EdgeFromKey(key)
			queue = append(queue, e)
			queued[key] = true
		}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		key := e.Key()
		if p.removed[key] {
			continue
		}
		fu, fv := p.freq[e.U], p.freq[e.V]
		for _, w := range p.commonNeighbors(e.U, e.V) {
			m := min3(fu, fv, p.freq[w])
			for _, other := range []graph.Edge{graph.EdgeOf(e.U, w), graph.EdgeOf(e.V, w)} {
				ok := other.Key()
				if p.removed[ok] {
					continue
				}
				p.cohesion[ok] -= m
				if p.cohesion[ok] <= alpha+cohesionTolerance && !queued[ok] {
					queue = append(queue, other)
					queued[ok] = true
				}
			}
		}
		p.removed[key] = true
		delete(p.cohesion, key)
		p.unlink(e.U, e.V)
	}
}

// minCohesion returns the minimum cohesion among the surviving edges and
// whether any edge survives.
func (p *peeler) minCohesion() (float64, bool) {
	first := true
	minVal := 0.0
	for _, eco := range p.cohesion {
		if first || eco < minVal {
			minVal = eco
			first = false
		}
	}
	return minVal, !first
}

// truss snapshots the surviving edges into a Truss value.
func (p *peeler) truss(alpha float64) *Truss {
	t := &Truss{
		Pattern: p.pattern.Clone(),
		Alpha:   alpha,
		Edges:   make(graph.EdgeSet, len(p.cohesion)),
		Freq:    make(map[graph.VertexID]float64),
	}
	for key := range p.cohesion {
		e := graph.EdgeFromKey(key)
		t.Edges.Add(e)
	}
	for _, v := range t.Edges.Vertices() {
		t.Freq[v] = p.freq[v]
	}
	return t
}

// survivingEdges returns the surviving edges sorted canonically.
func (p *peeler) survivingEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(p.cohesion))
	for key := range p.cohesion {
		out = append(out, graph.EdgeFromKey(key))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}
