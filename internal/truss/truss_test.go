package truss

import (
	"math"
	"math/rand"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// uniformThemeNetwork builds a theme network over the given graph edges where
// every vertex has the same frequency f for pattern {1}.
func uniformThemeNetwork(edges []graph.Edge, f float64) *dbnet.ThemeNetwork {
	tn := &dbnet.ThemeNetwork{
		Pattern: itemset.New(1),
		Freq:    make(map[graph.VertexID]float64),
		Edges:   graph.NewEdgeSet(edges...),
	}
	for _, v := range tn.Edges.Vertices() {
		tn.Freq[v] = f
	}
	return tn
}

func cliqueEdges(n int) []graph.Edge {
	var out []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			out = append(out, graph.EdgeOf(graph.VertexID(u), graph.VertexID(v)))
		}
	}
	return out
}

func TestCohesionsOnPaperExample(t *testing.T) {
	nw := dbnet.PaperExample()
	tn := nw.ThemeNetwork(dbnet.PaperExampleP)
	ecos := Cohesions(tn)
	// Example 3.2: eco of edge (v1,v2) in the cluster is 0.2 (two triangles,
	// all frequencies 0.1).
	if got := ecos[graph.EdgeOf(0, 1).Key()]; !approx(got, 0.2) {
		t.Fatalf("eco(v1,v2) = %v, want 0.2", got)
	}
	// Triangle v7,v8,v9 with frequencies 0.3: each edge has cohesion 0.3.
	if got := ecos[graph.EdgeOf(6, 7).Key()]; !approx(got, 0.3) {
		t.Fatalf("eco(v7,v8) = %v, want 0.3", got)
	}
}

func TestDetectPaperExampleCommunities(t *testing.T) {
	nw := dbnet.PaperExample()
	tn := nw.ThemeNetwork(dbnet.PaperExampleP)

	// Example 3.6: for α ∈ [0, 0.2) the theme communities of p are
	// {v1..v5} and {v7,v8,v9}.
	tr := Detect(tn, 0.1)
	comms := tr.Communities()
	if len(comms) != 2 {
		t.Fatalf("expected 2 theme communities, got %d", len(comms))
	}
	sizes := []int{len(comms[0].Vertices()), len(comms[1].Vertices())}
	if sizes[0] != 5 || sizes[1] != 3 {
		t.Fatalf("community sizes = %v, want [5 3]", sizes)
	}

	// For α ∈ [0.2, 0.3) only the triangle v7,v8,v9 survives.
	tr = Detect(tn, 0.2)
	comms = tr.Communities()
	if len(comms) != 1 || len(comms[0].Vertices()) != 3 {
		t.Fatalf("at α=0.2 expected only the v7-v9 triangle, got %v", comms)
	}

	// For α ≥ 0.3 nothing survives.
	tr = Detect(tn, 0.3)
	if !tr.Empty() {
		t.Fatalf("at α=0.3 the truss should be empty, got %v", tr)
	}
}

func TestDetectEquivalenceWithKTruss(t *testing.T) {
	// With all frequencies equal to 1 and α = k-3, the pattern truss is the
	// k-truss (Section 3.2).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 10
		g := graph.New(n)
		for i := 0; i < 30; i++ {
			a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
			if a != b {
				g.MustAddEdge(a, b)
			}
		}
		tn := uniformThemeNetwork(g.Edges(), 1.0)
		for k := 3; k <= 5; k++ {
			want := graph.KTruss(g, k)
			// α = k-3: edges need cohesion > k-3, i.e. at least k-2 triangles.
			got := Detect(tn, float64(k-3)).Edges
			if !got.Equal(want) {
				t.Fatalf("trial %d k=%d: pattern truss %v != k-truss %v", trial, k, got.Edges(), want.Edges())
			}
		}
	}
}

func TestDetectEmptyThemeNetwork(t *testing.T) {
	tn := &dbnet.ThemeNetwork{Pattern: itemset.New(9), Freq: map[graph.VertexID]float64{}, Edges: graph.NewEdgeSet()}
	tr := Detect(tn, 0)
	if !tr.Empty() || tr.NumVertices() != 0 || tr.NumEdges() != 0 {
		t.Fatalf("truss of empty theme network should be empty")
	}
	if tr.Communities() != nil {
		t.Fatalf("communities of empty truss should be nil")
	}
	if len(tr.Vertices()) != 0 {
		t.Fatalf("vertices of empty truss should be empty")
	}
}

func TestDetectRemovesLowCohesionFringe(t *testing.T) {
	// A triangle {0,1,2} with a pendant path 2-3-4: the pendant edges have no
	// triangles and must always be removed, even at α = 0.
	edges := []graph.Edge{
		graph.EdgeOf(0, 1), graph.EdgeOf(0, 2), graph.EdgeOf(1, 2),
		graph.EdgeOf(2, 3), graph.EdgeOf(3, 4),
	}
	tn := uniformThemeNetwork(edges, 0.5)
	tr := Detect(tn, 0)
	if tr.NumEdges() != 3 {
		t.Fatalf("expected the triangle only, got %v", tr.Edges.Edges())
	}
	if tr.NumVertices() != 3 {
		t.Fatalf("expected 3 vertices, got %d", tr.NumVertices())
	}
	// At α just below the triangle cohesion (0.5) the triangle survives; at
	// 0.5 it does not (strict inequality).
	if Detect(tn, 0.49).NumEdges() != 3 {
		t.Fatalf("triangle should survive α=0.49")
	}
	if !Detect(tn, 0.5).Empty() {
		t.Fatalf("triangle must not survive α=0.5 (cohesion is not strictly greater)")
	}
}

func TestCascadingRemoval(t *testing.T) {
	// Two triangles sharing an edge: (0,1,2) and (1,2,3), all freq 1.
	// Edge (1,2) is in 2 triangles (cohesion 2), the others in 1 (cohesion 1).
	// At α=1: the four outer edges are unqualified; removing them destroys the
	// triangles of (1,2), so everything must cascade away.
	edges := []graph.Edge{
		graph.EdgeOf(0, 1), graph.EdgeOf(0, 2), graph.EdgeOf(1, 2),
		graph.EdgeOf(1, 3), graph.EdgeOf(2, 3),
	}
	tn := uniformThemeNetwork(edges, 1.0)
	if got := Detect(tn, 1.0); !got.Empty() {
		t.Fatalf("cascade failed: %v", got.Edges.Edges())
	}
	if got := Detect(tn, 0.5); got.NumEdges() != 5 {
		t.Fatalf("at α=0.5 all 5 edges survive, got %d", got.NumEdges())
	}
}

func TestMixedFrequenciesCohesion(t *testing.T) {
	// Triangle with frequencies 0.2, 0.5, 0.9: every edge cohesion is
	// min(0.2,0.5,0.9) = 0.2.
	edges := []graph.Edge{graph.EdgeOf(0, 1), graph.EdgeOf(0, 2), graph.EdgeOf(1, 2)}
	tn := &dbnet.ThemeNetwork{
		Pattern: itemset.New(1),
		Freq:    map[graph.VertexID]float64{0: 0.2, 1: 0.5, 2: 0.9},
		Edges:   graph.NewEdgeSet(edges...),
	}
	for _, e := range edges {
		if got := Cohesions(tn)[e.Key()]; !approx(got, 0.2) {
			t.Fatalf("eco(%v) = %v, want 0.2", e, got)
		}
	}
	if Detect(tn, 0.19).NumEdges() != 3 {
		t.Fatalf("triangle should survive α=0.19")
	}
	if !Detect(tn, 0.2).Empty() {
		t.Fatalf("triangle should not survive α=0.2")
	}
}

func TestTrussAccessors(t *testing.T) {
	var nilTruss *Truss
	if !nilTruss.Empty() || nilTruss.NumEdges() != 0 || nilTruss.NumVertices() != 0 {
		t.Fatalf("nil truss accessors broken")
	}
	if nilTruss.String() != "truss.Truss(nil)" {
		t.Fatalf("nil truss String = %q", nilTruss.String())
	}
	tn := uniformThemeNetwork(cliqueEdges(4), 1.0)
	tr := Detect(tn, 0)
	if tr.String() == "" || tr.NumVertices() != 4 || tr.NumEdges() != 6 {
		t.Fatalf("truss accessors: %v", tr)
	}
	vs := tr.Vertices()
	if len(vs) != 4 || vs[0] != 0 || vs[3] != 3 {
		t.Fatalf("Vertices = %v", vs)
	}
}

func TestDecomposeSimple(t *testing.T) {
	// K4 with unit frequencies: every edge has cohesion 2; single level at α=2.
	tn := uniformThemeNetwork(cliqueEdges(4), 1.0)
	d := Decompose(tn)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(d.Levels) != 1 || !approx(d.Levels[0].Alpha, 2.0) || len(d.Levels[0].Removed) != 6 {
		t.Fatalf("decomposition = %v", d)
	}
	if !approx(d.MaxAlpha(), 2.0) {
		t.Fatalf("MaxAlpha = %v", d.MaxAlpha())
	}
	if d.NumEdges() != 6 || d.Empty() {
		t.Fatalf("NumEdges = %d", d.NumEdges())
	}
	if got := d.TrussAt(1.9); got.NumEdges() != 6 {
		t.Fatalf("TrussAt(1.9) = %d edges", got.NumEdges())
	}
	if got := d.TrussAt(2.0); !got.Empty() {
		t.Fatalf("TrussAt(2.0) should be empty")
	}
}

func TestDecomposePaperExample(t *testing.T) {
	nw := dbnet.PaperExample()
	tn := nw.ThemeNetwork(dbnet.PaperExampleP)
	d := Decompose(tn)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Levels: the 5-vertex cluster drops at 0.2, the triangle at 0.3.
	if len(d.Levels) != 2 {
		t.Fatalf("levels = %v", d.Thresholds())
	}
	if !approx(d.Levels[0].Alpha, 0.2) || !approx(d.Levels[1].Alpha, 0.3) {
		t.Fatalf("thresholds = %v", d.Thresholds())
	}
	if !approx(d.MaxAlpha(), 0.3) {
		t.Fatalf("MaxAlpha = %v", d.MaxAlpha())
	}
}

// Reconstruction from the decomposition must agree with running MPTD directly
// for any α (Theorem 6.1 / Equation 1).
func TestDecomposeReconstructionMatchesDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		tn := randomThemeNetwork(rng, 14, 40)
		d := Decompose(tn)
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: Validate: %v", trial, err)
		}
		alphas := []float64{0, 0.05, 0.13, 0.4, 0.77, 1.3, 2.5}
		alphas = append(alphas, d.Thresholds()...)
		for _, a := range alphas {
			want := Detect(tn, a).Edges
			got := d.EdgesAt(a)
			if !got.Equal(want) {
				t.Fatalf("trial %d α=%v: reconstruction %d edges, direct %d edges", trial, a, got.Len(), want.Len())
			}
		}
		// Above MaxAlpha everything is empty.
		if got := d.EdgesAt(d.MaxAlpha()); got.Len() != 0 {
			t.Fatalf("trial %d: truss above MaxAlpha not empty", trial)
		}
	}
}

// The decomposition is nested: TrussAt(α2) ⊆ TrussAt(α1) whenever α1 ≤ α2.
func TestDecomposeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		tn := randomThemeNetwork(rng, 12, 30)
		d := Decompose(tn)
		prev := d.EdgesAt(0)
		for _, a := range d.Thresholds() {
			cur := d.EdgesAt(a)
			if !cur.SubsetOf(prev) {
				t.Fatalf("trial %d: truss at %v not nested", trial, a)
			}
			if cur.Len() >= prev.Len() && prev.Len() > 0 {
				t.Fatalf("trial %d: truss did not shrink at threshold %v", trial, a)
			}
			prev = cur
		}
	}
}

func TestDecompositionValidateDetectsCorruption(t *testing.T) {
	d := &Decomposition{Levels: []Level{{Alpha: 0.5, Removed: []graph.Edge{graph.EdgeOf(0, 1)}}}}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid decomposition rejected: %v", err)
	}
	bad := &Decomposition{Levels: []Level{{Alpha: 0.5, Removed: nil}}}
	if err := bad.Validate(); err == nil {
		t.Fatalf("empty level should be rejected")
	}
	bad = &Decomposition{Levels: []Level{
		{Alpha: 0.5, Removed: []graph.Edge{graph.EdgeOf(0, 1)}},
		{Alpha: 0.5, Removed: []graph.Edge{graph.EdgeOf(1, 2)}},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatalf("non-ascending thresholds should be rejected")
	}
	bad = &Decomposition{Levels: []Level{
		{Alpha: 0.5, Removed: []graph.Edge{graph.EdgeOf(0, 1)}},
		{Alpha: 0.7, Removed: []graph.Edge{graph.EdgeOf(0, 1)}},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatalf("duplicate edges across levels should be rejected")
	}
	var nilD *Decomposition
	if err := nilD.Validate(); err != nil {
		t.Fatalf("nil decomposition should validate")
	}
	if !nilD.Empty() || nilD.NumEdges() != 0 || nilD.Thresholds() != nil {
		t.Fatalf("nil decomposition accessors broken")
	}
	if nilD.EdgesAt(0).Len() != 0 {
		t.Fatalf("nil decomposition EdgesAt should be empty")
	}
	if nilD.String() != "truss.Decomposition(nil)" {
		t.Fatalf("nil decomposition String = %q", nilD.String())
	}
}

// randomThemeNetwork builds a theme network over a random graph with random
// frequencies drawn from {0.1, ..., 1.0}.
func randomThemeNetwork(rng *rand.Rand, n, m int) *dbnet.ThemeNetwork {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			g.MustAddEdge(a, b)
		}
	}
	tn := &dbnet.ThemeNetwork{
		Pattern: itemset.New(1),
		Freq:    make(map[graph.VertexID]float64),
		Edges:   graph.NewEdgeSet(g.Edges()...),
	}
	for _, v := range tn.Edges.Vertices() {
		tn.Freq[v] = float64(1+rng.Intn(10)) / 10
	}
	return tn
}
