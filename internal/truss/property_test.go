package truss

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// property_test.go checks the paper's central theorems with testing/quick on
// randomly generated database networks (not just hand-built theme networks):
// Theorem 5.1 (graph anti-monotonicity), Proposition 5.2 (pattern
// anti-monotonicity), Proposition 5.3 (graph intersection), and Theorem 6.1
// (nested decomposition thresholds).

// networkCase bundles one random database network with a nested pattern pair
// p1 ⊆ p2 and a threshold α.
type networkCase struct {
	nw     *dbnet.Network
	p1, p2 itemset.Itemset
	alpha  float64
}

func generateCase(rng *rand.Rand) networkCase {
	n := 8 + rng.Intn(10)
	m := 2 * n
	items := 4
	nw := dbnet.New(n)
	for i := 0; i < m; i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < n; v++ {
		ntx := 1 + rng.Intn(4)
		for i := 0; i < ntx; i++ {
			l := 1 + rng.Intn(3)
			tx := make([]itemset.Item, l)
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(items))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				panic(err)
			}
		}
	}
	// p2 is a random pattern of length 2-3; p1 a random non-empty subset.
	p2 := itemset.New(itemset.Item(rng.Intn(items)), itemset.Item(rng.Intn(items)), itemset.Item(rng.Intn(items)))
	var p1 itemset.Itemset
	for _, it := range p2 {
		if rng.Intn(2) == 0 {
			p1 = p1.Add(it)
		}
	}
	if p1.Len() == 0 {
		p1 = itemset.New(p2[0])
	}
	return networkCase{nw: nw, p1: p1, p2: p2, alpha: float64(rng.Intn(8)) / 10}
}

func quickConfig(maxCount int) *quick.Config {
	return &quick.Config{
		MaxCount: maxCount,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(generateCase(rng))
		},
	}
}

// Theorem 5.1: C*_{p2}(α) ⊆ C*_{p1}(α) whenever p1 ⊆ p2.
func TestQuickGraphAntiMonotonicity(t *testing.T) {
	f := func(c networkCase) bool {
		t1 := Detect(c.nw.ThemeNetwork(c.p1), c.alpha)
		t2 := Detect(c.nw.ThemeNetwork(c.p2), c.alpha)
		return t2.Edges.SubsetOf(t1.Edges)
	}
	if err := quick.Check(f, quickConfig(60)); err != nil {
		t.Error(err)
	}
}

// Proposition 5.2: if the truss of a super-pattern is non-empty, the truss of
// every sub-pattern is non-empty.
func TestQuickPatternAntiMonotonicity(t *testing.T) {
	f := func(c networkCase) bool {
		t1 := Detect(c.nw.ThemeNetwork(c.p1), c.alpha)
		t2 := Detect(c.nw.ThemeNetwork(c.p2), c.alpha)
		if !t2.Empty() && t1.Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickConfig(60)); err != nil {
		t.Error(err)
	}
}

// Proposition 5.3: C*_{p1∪p2}(α) ⊆ C*_{p1}(α) ∩ C*_{p2}(α).
func TestQuickGraphIntersectionProperty(t *testing.T) {
	f := func(c networkCase) bool {
		union := c.p1.Union(c.p2)
		tu := Detect(c.nw.ThemeNetwork(union), c.alpha)
		t1 := Detect(c.nw.ThemeNetwork(c.p1), c.alpha)
		t2 := Detect(c.nw.ThemeNetwork(c.p2), c.alpha)
		return tu.Edges.SubsetOf(t1.Edges.Intersect(t2.Edges))
	}
	if err := quick.Check(f, quickConfig(60)); err != nil {
		t.Error(err)
	}
}

// Detecting inside the parents' intersection gives exactly the same truss as
// detecting from the full theme network — the exactness claim behind TCFI.
func TestQuickIntersectionRestrictedDetectionIsExact(t *testing.T) {
	f := func(c networkCase) bool {
		union := c.p1.Union(c.p2)
		full := Detect(c.nw.ThemeNetwork(union), c.alpha)
		t1 := Detect(c.nw.ThemeNetwork(c.p1), c.alpha)
		t2 := Detect(c.nw.ThemeNetwork(c.p2), c.alpha)
		inter := t1.Edges.Intersect(t2.Edges)
		restricted := Detect(c.nw.ThemeNetworkWithin(union, inter), c.alpha)
		return restricted.Edges.Equal(full.Edges)
	}
	if err := quick.Check(f, quickConfig(40)); err != nil {
		t.Error(err)
	}
}

// Theorem 6.1: the decomposition thresholds are strictly ascending, and the
// truss reconstructed just below each threshold strictly contains the truss
// reconstructed at the threshold.
func TestQuickDecompositionNesting(t *testing.T) {
	f := func(c networkCase) bool {
		d := Decompose(c.nw.ThemeNetwork(c.p1))
		if err := d.Validate(); err != nil {
			return false
		}
		thresholds := d.Thresholds()
		for i, a := range thresholds {
			if i > 0 && thresholds[i-1] >= a {
				return false
			}
			below := d.EdgesAt(a - 1e-6)
			at := d.EdgesAt(a)
			if !at.SubsetOf(below) || at.Len() >= below.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(40)); err != nil {
		t.Error(err)
	}
}
