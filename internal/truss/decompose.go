package truss

import (
	"fmt"
	"sort"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// Level is one node of the linked list L_p of Section 6.1: the edges removed
// when the maximal pattern truss shrinks at threshold Alpha. An edge stored in
// a level with threshold α_k belongs to C*_p(α) exactly when α < α_k.
type Level struct {
	// Alpha is the threshold α_k at which the edges of this level drop out of
	// the maximal pattern truss.
	Alpha float64
	// Removed is R_p(α_k) = E*_p(α_{k-1}) \ E*_p(α_k).
	Removed []graph.Edge
}

// Decomposition is the linked list L_p: the full decomposition of the maximal
// pattern truss C*_p(0) into disjoint removal levels with ascending
// thresholds. It supports reconstructing C*_p(α) for any α (Equation 1) and
// reports the non-trivial range of α for the theme network.
type Decomposition struct {
	// Pattern is the theme p.
	Pattern itemset.Itemset
	// Freq maps every vertex of C*_p(0) to f_i(p).
	Freq map[graph.VertexID]float64
	// Levels are the removal levels in ascending threshold order.
	Levels []Level
}

// Decompose computes C*_p(0) of the theme network with MPTD and decomposes it
// into removal levels following Theorem 6.1: starting from α_0 = 0, the next
// threshold is the minimum surviving edge cohesion, and the edges removed by
// peeling at that threshold form the next level.
func Decompose(tn *dbnet.ThemeNetwork) *Decomposition {
	p := newPeeler(tn)
	p.peel(0)

	d := &Decomposition{Pattern: tn.Pattern.Clone(), Freq: make(map[graph.VertexID]float64)}
	base := p.truss(0)
	for v, f := range base.Freq {
		d.Freq[v] = f
	}

	for {
		beta, ok := p.minCohesion()
		if !ok {
			break
		}
		before := p.survivingEdges()
		p.peel(beta)
		afterKeys := make(map[uint64]bool, len(p.cohesion))
		for key := range p.cohesion {
			afterKeys[key] = true
		}
		removed := make([]graph.Edge, 0, len(before)-len(afterKeys))
		for _, e := range before {
			if !afterKeys[e.Key()] {
				removed = append(removed, e)
			}
		}
		sortEdges(removed)
		d.Levels = append(d.Levels, Level{Alpha: beta, Removed: removed})
	}
	return d
}

// Empty reports whether the decomposition holds no edges, i.e. C*_p(0) = ∅.
func (d *Decomposition) Empty() bool { return d == nil || len(d.Levels) == 0 }

// NumEdges returns the number of edges of C*_p(0) stored across all levels.
func (d *Decomposition) NumEdges() int {
	if d == nil {
		return 0
	}
	n := 0
	for _, l := range d.Levels {
		n += len(l.Removed)
	}
	return n
}

// MaxAlpha returns α*_p, the exclusive upper bound of the non-trivial range of
// α for the theme network: C*_p(α) = ∅ for every α ≥ MaxAlpha. It returns 0
// for an empty decomposition.
func (d *Decomposition) MaxAlpha() float64 {
	if d.Empty() {
		return 0
	}
	return d.Levels[len(d.Levels)-1].Alpha
}

// EdgesAt reconstructs E*_p(α) using Equation 1: the union of the removal sets
// of every level with threshold strictly greater than α.
func (d *Decomposition) EdgesAt(alpha float64) graph.EdgeSet {
	out := make(graph.EdgeSet)
	if d == nil {
		return out
	}
	for _, l := range d.Levels {
		if LevelLive(l.Alpha, alpha) {
			for _, e := range l.Removed {
				out.Add(e)
			}
		}
	}
	return out
}

// TrussAt reconstructs the maximal pattern truss C*_p(α) from the
// decomposition. The returned truss may be empty but is never nil.
func (d *Decomposition) TrussAt(alpha float64) *Truss {
	edges := d.EdgesAt(alpha)
	t := &Truss{Pattern: d.patternClone(), Alpha: alpha, Edges: edges, Freq: make(map[graph.VertexID]float64)}
	for _, v := range edges.Vertices() {
		t.Freq[v] = d.Freq[v]
	}
	return t
}

// Thresholds returns the ascending removal thresholds α_1 < α_2 < … < α_h.
func (d *Decomposition) Thresholds() []float64 {
	if d == nil {
		return nil
	}
	out := make([]float64, len(d.Levels))
	for i, l := range d.Levels {
		out[i] = l.Alpha
	}
	return out
}

func (d *Decomposition) patternClone() itemset.Itemset {
	if d == nil {
		return nil
	}
	return d.Pattern.Clone()
}

// String summarises the decomposition.
func (d *Decomposition) String() string {
	if d == nil {
		return "truss.Decomposition(nil)"
	}
	return fmt.Sprintf("truss.Decomposition{p=%v, levels=%d, edges=%d, α*=%g}",
		d.Pattern, len(d.Levels), d.NumEdges(), d.MaxAlpha())
}

// Validate checks structural invariants of the decomposition: levels have
// strictly ascending thresholds, non-empty removal sets, and no edge appears
// twice. It is used by tests and by the TC-Tree loader.
func (d *Decomposition) Validate() error {
	if d == nil {
		return nil
	}
	seen := make(map[uint64]bool)
	prev := 0.0
	for i, l := range d.Levels {
		if len(l.Removed) == 0 {
			return fmt.Errorf("truss: level %d has no removed edges", i)
		}
		if i > 0 && l.Alpha <= prev {
			return fmt.Errorf("truss: level %d threshold %g not greater than previous %g", i, l.Alpha, prev)
		}
		prev = l.Alpha
		for _, e := range l.Removed {
			if seen[e.Key()] {
				return fmt.Errorf("truss: edge %v appears in more than one level", e)
			}
			seen[e.Key()] = true
		}
	}
	return nil
}

// sortEdges sorts an edge slice canonically; exposed to keep serialized
// decompositions deterministic.
func sortEdges(edges []graph.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}
