package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := WithRequestID(context.Background(), "abc123")
	if got := RequestIDFrom(ctx); got != "abc123" {
		t.Fatalf("RequestIDFrom = %q, want abc123", got)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("RequestIDFrom(empty ctx) = %q, want empty", got)
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if id == "" || seen[id] {
			t.Fatalf("NewRequestID produced empty or duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestSanitizeRequestID(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"abc-123", "abc-123"},
		{"has\nnewline", "hasnewline"},
		{"tab\tand\rcr", "tabandcr"},
		{strings.Repeat("x", 300), strings.Repeat("x", maxRequestIDLen)},
		{"", ""},
	} {
		if got := SanitizeRequestID(tc.in); got != tc.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3, time.Millisecond)
	if l.Capacity() != 3 || l.Threshold() != time.Millisecond {
		t.Fatalf("capacity/threshold = %d/%v", l.Capacity(), l.Threshold())
	}
	for i := 0; i < 5; i++ {
		l.Add(SlowQuery{Pattern: fmt.Sprintf("q%d", i)})
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	entries := l.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	for i, want := range []string{"q4", "q3", "q2"} { // newest first
		if entries[i].Pattern != want {
			t.Fatalf("entries[%d].Pattern = %q, want %q", i, entries[i].Pattern, want)
		}
	}
}

func TestObserverRecordQuery(t *testing.T) {
	var logBuf bytes.Buffer
	o := NewObserver(ObserverOptions{
		SlowThreshold: 10 * time.Millisecond,
		SlowLogSize:   4,
		Logger:        slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})

	detailCalls := 0
	fast := QueryObservation{
		Network: "alpha", Pattern: "*", Alpha: 0.5,
		Plan: time.Millisecond, Execute: 2 * time.Millisecond, Merge: time.Millisecond,
		Total:  4 * time.Millisecond,
		Detail: func() any { detailCalls++; return "plan" },
	}
	o.RecordQuery(context.Background(), fast)
	if detailCalls != 0 {
		t.Fatalf("fast query materialized Detail")
	}
	if len(o.SlowLog().Entries()) != 0 {
		t.Fatalf("fast query landed in slow log")
	}

	hit := QueryObservation{Network: "alpha", CacheHit: true, Total: 50 * time.Millisecond}
	o.RecordQuery(context.Background(), hit) // slow but a hit: not captured
	if len(o.SlowLog().Entries()) != 0 {
		t.Fatalf("cache hit landed in slow log")
	}

	ctx := WithRequestID(context.Background(), "req-42")
	slow := QueryObservation{
		Network: "alpha", Pattern: "*", Alpha: 0.5,
		Shards: 8, SkippedShards: 2, LoadedShards: 3,
		Plan: time.Millisecond, Execute: 40 * time.Millisecond, Merge: time.Millisecond,
		Total:  42 * time.Millisecond,
		Detail: func() any { detailCalls++; return map[string]int{"tasks": 8} },
	}
	o.RecordQuery(ctx, slow)
	if detailCalls != 1 {
		t.Fatalf("slow query did not materialize Detail exactly once: %d", detailCalls)
	}
	entries := o.SlowLog().Entries()
	if len(entries) != 1 {
		t.Fatalf("slow log entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.RequestID != "req-42" || e.Network != "alpha" || e.Shards != 8 || e.Plan == nil {
		t.Fatalf("slow entry = %+v", e)
	}
	if !strings.Contains(logBuf.String(), `"slow query"`) || !strings.Contains(logBuf.String(), `"req-42"`) {
		t.Fatalf("slow log line missing fields: %s", logBuf.String())
	}

	out := o.Registry().Render()
	for _, want := range []string{
		`tc_queries_total{network="alpha",result="hit"} 1`,
		`tc_queries_total{network="alpha",result="miss"} 2`,
		`tc_slow_queries_total{network="alpha"} 1`,
		`tc_query_duration_seconds_count{network="alpha"} 3`,
		`tc_query_stage_duration_seconds_count{network="alpha",stage="execute"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestObserverDisabledThreshold(t *testing.T) {
	o := NewObserver(ObserverOptions{})
	o.RecordQuery(context.Background(), QueryObservation{Total: time.Hour})
	if got := o.SlowLog().Total(); got != 0 {
		t.Fatalf("capture with zero threshold: total = %d", got)
	}
}

func TestHTTPMetricsWrap(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	m := NewHTTPMetrics(reg, slog.New(slog.NewJSONHandler(&logBuf, nil)))

	var gotCtxID string
	h := m.Wrap("/api/v1/query", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCtxID = RequestIDFrom(r.Context())
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, "nope")
	}))

	req := httptest.NewRequest("GET", "/api/v1/query?q=*", nil)
	req.Header.Set(HeaderRequestID, "client-id-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if gotCtxID != "client-id-1" {
		t.Fatalf("context request ID = %q, want client-id-1", gotCtxID)
	}
	if got := rec.Header().Get(HeaderRequestID); got != "client-id-1" {
		t.Fatalf("echoed request ID = %q", got)
	}

	// No client ID: one is generated and echoed.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/query", nil))
	if rec.Header().Get(HeaderRequestID) == "" {
		t.Fatalf("no generated request ID on response")
	}

	out := reg.Render()
	for _, want := range []string{
		`tc_http_requests_total{route="/api/v1/query",method="GET",code="400"} 2`,
		`tc_http_request_duration_seconds_count{route="/api/v1/query"} 2`,
		`tc_http_requests_in_flight 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	var line map[string]any
	dec := json.NewDecoder(&logBuf)
	if err := dec.Decode(&line); err != nil {
		t.Fatalf("access log not JSON: %v", err)
	}
	if line["requestId"] != "client-id-1" || line["route"] != "/api/v1/query" || line["status"] != float64(400) {
		t.Fatalf("access log line = %v", line)
	}
}

func TestStatusText(t *testing.T) {
	for code, want := range map[int]string{200: "200", 404: "404", 503: "503", 201: "201"} {
		if got := statusText(code); got != want {
			t.Errorf("statusText(%d) = %q, want %q", code, got, want)
		}
	}
}
