package promtest

import (
	"strings"
	"testing"
)

const valid = `# HELP tc_q_total Queries.
# TYPE tc_q_total counter
tc_q_total{network="a"} 3
tc_q_total{network="b"} 1
# HELP tc_lat_seconds Latency.
# TYPE tc_lat_seconds histogram
tc_lat_seconds_bucket{le="0.1"} 2
tc_lat_seconds_bucket{le="1"} 3
tc_lat_seconds_bucket{le="+Inf"} 4
tc_lat_seconds_sum 5.5
tc_lat_seconds_count 4
`

func TestParseValid(t *testing.T) {
	fams, err := Parse(valid)
	if err != nil {
		t.Fatalf("Parse(valid) = %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	if fams["tc_q_total"].Type != "counter" || len(fams["tc_q_total"].Samples) != 2 {
		t.Fatalf("counter family = %+v", fams["tc_q_total"])
	}
}

func TestParseRejects(t *testing.T) {
	for name, tc := range map[string]struct{ text, wantErr string }{
		"orphan sample": {
			"tc_orphan_total 1\n", "no preceding HELP/TYPE",
		},
		"duplicate help": {
			"# HELP tc_a_total x\n# HELP tc_a_total y\n# TYPE tc_a_total counter\n", "duplicate HELP",
		},
		"duplicate series": {
			"# HELP tc_a_total x\n# TYPE tc_a_total counter\ntc_a_total 1\ntc_a_total 2\n", "duplicate series",
		},
		"missing type": {
			"# HELP tc_a_total x\ntc_a_total 1\n", "no preceding HELP/TYPE",
		},
		"bad value": {
			"# HELP tc_a_total x\n# TYPE tc_a_total counter\ntc_a_total pear\n", "invalid sample value",
		},
		"non-monotonic buckets": {
			"# HELP tc_h x\n# TYPE tc_h histogram\n" +
				"tc_h_bucket{le=\"0.1\"} 5\ntc_h_bucket{le=\"1\"} 3\ntc_h_bucket{le=\"+Inf\"} 5\n" +
				"tc_h_sum 1\ntc_h_count 5\n", "not cumulative",
		},
		"missing inf": {
			"# HELP tc_h x\n# TYPE tc_h histogram\n" +
				"tc_h_bucket{le=\"0.1\"} 1\ntc_h_sum 1\ntc_h_count 1\n", "+Inf",
		},
		"inf count mismatch": {
			"# HELP tc_h x\n# TYPE tc_h histogram\n" +
				"tc_h_bucket{le=\"+Inf\"} 3\ntc_h_sum 1\ntc_h_count 5\n", "!= count",
		},
	} {
		_, err := Parse(tc.text)
		if err == nil {
			t.Errorf("%s: Parse accepted invalid input", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
}

func TestParseEscapedLabels(t *testing.T) {
	text := "# HELP tc_e_total x\n# TYPE tc_e_total counter\n" +
		`tc_e_total{q="a\"b\\c",r="x,y"} 1` + "\n"
	fams, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse = %v", err)
	}
	s := fams["tc_e_total"].Samples[0]
	if s.Labels["q"] != `a"b\c` || s.Labels["r"] != "x,y" {
		t.Fatalf("labels = %+v", s.Labels)
	}
}
