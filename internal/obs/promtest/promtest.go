// Package promtest validates Prometheus text exposition output against the
// format grammar, for tests that scrape /metrics and want the whole payload
// checked — not just the one counter they care about. It is a test helper,
// not a full client: it parses the version 0.0.4 text format and enforces
// the invariants a real scraper relies on.
//
// Checked invariants:
//
//   - every sample line parses (name, optional labels, float value);
//   - every sample belongs to a family announced by # HELP and # TYPE lines
//     that precede it, and each family is announced exactly once;
//   - family and label names match the Prometheus naming grammar;
//   - histogram families expose _bucket/_sum/_count series, bucket counts
//     are monotonically non-decreasing in le order, an le="+Inf" bucket is
//     present, and its count equals the _count sample;
//   - no two sample lines repeat the same name+label set.
package promtest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name (histogram samples keep their _bucket,
	// _sum and _count suffixes).
	Name   string
	Labels map[string]string
	Value  float64
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	helpRe       = regexp.MustCompile(`^# HELP ([^ ]+) (.*)$`)
	typeRe       = regexp.MustCompile(`^# TYPE ([^ ]+) (counter|gauge|histogram|summary|untyped)$`)
	// The label block matches greedily to the last "}": a "}" inside a quoted
	// label value (e.g. a route pattern "/api/v1/{network}/query") is legal.
	sampleRe    = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)( [0-9]+)?$`)
	labelPairRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// Parse parses and validates a text exposition payload, returning the
// families by name. Any grammar or invariant violation is an error naming
// the offending line.
func Parse(text string) (map[string]*Family, error) {
	families := make(map[string]*Family)
	helpSeen := make(map[string]bool)
	typeSeen := make(map[string]bool)
	seriesSeen := make(map[string]bool)

	for lineNo, line := range strings.Split(text, "\n") {
		where := fmt.Sprintf("line %d: %q", lineNo+1, line)
		if strings.TrimSpace(line) == "" {
			continue
		}
		if m := helpRe.FindStringSubmatch(line); m != nil {
			name := m[1]
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("%s: invalid family name", where)
			}
			if helpSeen[name] {
				return nil, fmt.Errorf("%s: duplicate HELP for family %q", where, name)
			}
			helpSeen[name] = true
			fam := familyOf(families, name)
			fam.Help = m[2]
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			name := m[1]
			if typeSeen[name] {
				return nil, fmt.Errorf("%s: duplicate TYPE for family %q", where, name)
			}
			typeSeen[name] = true
			familyOf(families, name).Type = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("%s: unparsable sample line", where)
		}
		name, rawLabels, rawValue := m[1], m[3], m[4]
		labels, err := parseLabels(rawLabels)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", where, err)
		}
		value, err := parseValue(rawValue)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", where, err)
		}
		famName := baseFamily(name, families)
		if famName == "" {
			return nil, fmt.Errorf("%s: sample %q has no preceding HELP/TYPE family", where, name)
		}
		key := seriesKey(name, labels)
		if seriesSeen[key] {
			return nil, fmt.Errorf("%s: duplicate series %s", where, key)
		}
		seriesSeen[key] = true
		fam := families[famName]
		fam.Samples = append(fam.Samples, Sample{Name: name, Labels: labels, Value: value})
	}

	for name, fam := range families {
		if fam.Help == "" && !helpSeen[name] {
			return nil, fmt.Errorf("family %q: missing HELP", name)
		}
		if fam.Type == "" {
			return nil, fmt.Errorf("family %q: missing TYPE", name)
		}
		if fam.Type == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

func familyOf(families map[string]*Family, name string) *Family {
	if f, ok := families[name]; ok {
		return f
	}
	f := &Family{Name: name}
	families[name] = f
	return f
}

// baseFamily resolves the family a sample name belongs to: exact match, or
// the histogram base of a _bucket/_sum/_count suffix.
func baseFamily(name string, families map[string]*Family) string {
	if f, ok := families[name]; ok && f.Type != "" {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return ""
}

func parseLabels(raw string) (map[string]string, error) {
	labels := make(map[string]string)
	if raw == "" {
		return labels, nil
	}
	for _, pair := range splitLabelPairs(raw) {
		m := labelPairRe.FindStringSubmatch(pair)
		if m == nil {
			return nil, fmt.Errorf("invalid label pair %q", pair)
		}
		if !labelNameRe.MatchString(m[1]) {
			return nil, fmt.Errorf("invalid label name %q", m[1])
		}
		if _, dup := labels[m[1]]; dup {
			return nil, fmt.Errorf("duplicate label %q", m[1])
		}
		labels[m[1]] = unescapeLabel(m[2])
	}
	return labels, nil
}

// splitLabelPairs splits a{…} body on commas outside quoted values.
func splitLabelPairs(raw string) []string {
	var pairs []string
	var b strings.Builder
	inQuotes, escaped := false, false
	for _, r := range raw {
		switch {
		case escaped:
			escaped = false
			b.WriteRune(r)
		case r == '\\' && inQuotes:
			escaped = true
			b.WriteRune(r)
		case r == '"':
			inQuotes = !inQuotes
			b.WriteRune(r)
		case r == ',' && !inQuotes:
			pairs = append(pairs, b.String())
			b.Reset()
		default:
			b.WriteRune(r)
		}
	}
	if b.Len() > 0 {
		pairs = append(pairs, b.String())
	}
	return pairs
}

func unescapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

func parseValue(raw string) (float64, error) {
	switch raw {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", raw)
	}
	return v, nil
}

func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, labels[k])
	}
	return b.String()
}

// checkHistogram validates one histogram family: per label set (excluding
// le), buckets are cumulative and non-decreasing, le="+Inf" is present and
// equals _count, and _sum/_count exist.
func checkHistogram(fam *Family) error {
	type buckets struct {
		byLE     map[float64]float64
		inf      float64
		hasInf   bool
		count    float64
		hasCount bool
		hasSum   bool
	}
	groups := make(map[string]*buckets)
	groupOf := func(labels map[string]string) *buckets {
		trimmed := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				trimmed[k] = v
			}
		}
		key := seriesKey("", trimmed)
		g, ok := groups[key]
		if !ok {
			g = &buckets{byLE: make(map[float64]float64)}
			groups[key] = g
		}
		return g
	}
	for _, s := range fam.Samples {
		g := groupOf(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("family %q: bucket sample without le label", fam.Name)
			}
			if le == "+Inf" {
				g.inf, g.hasInf = s.Value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("family %q: invalid le %q", fam.Name, le)
			}
			g.byLE[bound] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			g.count, g.hasCount = s.Value, true
		case strings.HasSuffix(s.Name, "_sum"):
			g.hasSum = true
		default:
			return fmt.Errorf("family %q: unexpected histogram sample %q", fam.Name, s.Name)
		}
	}
	for key, g := range groups {
		if !g.hasInf {
			return fmt.Errorf("family %q%s: missing le=\"+Inf\" bucket", fam.Name, key)
		}
		if !g.hasCount || !g.hasSum {
			return fmt.Errorf("family %q%s: missing _count or _sum", fam.Name, key)
		}
		if g.inf != g.count {
			return fmt.Errorf("family %q%s: +Inf bucket %v != count %v", fam.Name, key, g.inf, g.count)
		}
		bounds := make([]float64, 0, len(g.byLE))
		for b := range g.byLE {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := 0.0
		for _, b := range bounds {
			if g.byLE[b] < prev {
				return fmt.Errorf("family %q%s: bucket le=%v count %v below preceding bucket %v (not cumulative)",
					fam.Name, key, b, g.byLE[b], prev)
			}
			prev = g.byLE[b]
		}
		if g.inf < prev {
			return fmt.Errorf("family %q%s: +Inf bucket %v below last finite bucket %v", fam.Name, key, g.inf, prev)
		}
	}
	return nil
}
