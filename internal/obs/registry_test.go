package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.Counter("tc_test_total", "help", "op")
	v.With("read").Inc()
	v.With("read").Add(2)
	v.With("write").Inc()
	if got := v.With("read").Value(); got != 3 {
		t.Fatalf("read = %d, want 3", got)
	}
	if got := v.With("write").Value(); got != 1 {
		t.Fatalf("write = %d, want 1", got)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("tc_test_gauge", "help").With()
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("value = %v, want 2.5", got)
	}
	g.Add(1)
	g.Add(-0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("value = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("tc_test_seconds", "help", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := reg.Render()
	for _, want := range []string{
		`tc_test_seconds_bucket{le="0.1"} 1`,
		`tc_test_seconds_bucket{le="1"} 3`,
		`tc_test_seconds_bucket{le="10"} 4`,
		`tc_test_seconds_bucket{le="+Inf"} 5`,
		`tc_test_seconds_sum 56.05`,
		`tc_test_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCollectFunc(t *testing.T) {
	reg := NewRegistry()
	reg.CollectFunc("tc_test_items", "help", "gauge", []string{"network"}, func() []Sample {
		return []Sample{
			{Labels: []string{"b"}, Value: 2},
			{Labels: []string{"a"}, Value: 1},
		}
	})
	out := reg.Render()
	ia := strings.Index(out, `tc_test_items{network="a"} 1`)
	ib := strings.Index(out, `tc_test_items{network="b"} 2`)
	if ia < 0 || ib < 0 {
		t.Fatalf("collector samples missing:\n%s", out)
	}
	if ia > ib {
		t.Fatalf("collector samples not sorted by label value:\n%s", out)
	}
}

func TestRegisterPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tc_dup_total", "help")
	for name, fn := range map[string]func(){
		"duplicate":     func() { reg.Counter("tc_dup_total", "again") },
		"bad name":      func() { reg.Counter("0bad", "help") },
		"bad label":     func() { reg.Counter("tc_ok_total", "help", "le:le") },
		"bad buckets":   func() { reg.Histogram("tc_h_seconds", "help", []float64{1, 1}) },
		"bad collector": func() { reg.CollectFunc("tc_c", "help", "histogram", nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tc_esc_total", "line one\nline two", "q").With("a\"b\\c\nd").Inc()
	out := reg.Render()
	if !strings.Contains(out, `# HELP tc_esc_total line one\nline two`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `tc_esc_total{q="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{0.25, "0.25"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	} {
		if got := formatValue(tc.in); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tc_h_total", "help").With().Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "tc_h_total 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}
