package obs

import (
	"sync"
	"time"
)

// SlowQuery is one captured slow query: identity (request ID, network,
// query), the stage timings, and the full plan/execution detail the engine
// recorded — everything needed to understand the query after the fact without
// re-running it.
type SlowQuery struct {
	// Time is when the query finished.
	Time time.Time `json:"time"`
	// RequestID correlates the entry with the access log and the client.
	RequestID string `json:"requestId,omitempty"`
	// Network is the serving tenant; empty for a standalone engine.
	Network string `json:"network,omitempty"`
	// Pattern renders the canonicalized query pattern ("*" = every item);
	// Alpha is the cohesion threshold.
	Pattern string  `json:"pattern"`
	Alpha   float64 `json:"alpha"`
	// DurationMicros is the query's total wall time; PlanMicros, ExecMicros
	// and MergeMicros split it by stage. StreamMicros is the pull-driven
	// delivery stage of a streaming execution (zero for materializing ones).
	DurationMicros int64 `json:"durationMicros"`
	PlanMicros     int64 `json:"planMicros"`
	ExecMicros     int64 `json:"execMicros"`
	MergeMicros    int64 `json:"mergeMicros"`
	StreamMicros   int64 `json:"streamMicros,omitempty"`
	// Shards, SkippedShards and LoadedShards summarise the executed plan;
	// ShortCircuited counts scheduled shards a streaming execution never
	// opened.
	Shards         int `json:"shards"`
	SkippedShards  int `json:"skippedShards"`
	LoadedShards   int `json:"loadedShards"`
	ShortCircuited int `json:"shortCircuited,omitempty"`
	// Plan is the full per-shard plan and execution report (the Explain
	// payload the engine captured for this very execution); its concrete type
	// belongs to the recording layer and it marshals to JSON.
	Plan any `json:"plan,omitempty"`
}

// SlowLog is a bounded ring buffer of the most recent slow queries. It is
// safe for concurrent use; Add is O(1) and never allocates beyond the entry.
type SlowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	buf   []SlowQuery
	next  int // buf[next] is overwritten by the next Add
	n     int // valid entries in buf
	total uint64
}

// NewSlowLog returns a slow-query log keeping the most recent capacity
// entries (minimum 1) for queries at least threshold slow.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, buf: make([]SlowQuery, capacity)}
}

// Threshold returns the capture threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Capacity returns the ring size.
func (l *SlowLog) Capacity() int { return len(l.buf) }

// Total returns how many slow queries were ever captured, including entries
// the ring has since overwritten.
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Add records one slow query, overwriting the oldest entry when full.
func (l *SlowLog) Add(e SlowQuery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.total++
}

// Entries returns the captured queries, newest first.
func (l *SlowLog) Entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}
