package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// HTTPMetrics instruments HTTP handlers: per-route/per-status request
// counters and per-route latency histograms, request-ID assignment and
// propagation (HeaderRequestID in, context + response header out), and one
// structured JSON access-log line per request. It is safe for concurrent use.
type HTTPMetrics struct {
	requests *CounterVec   // route, method, code
	duration *HistogramVec // route
	inflight *Gauge
	logger   *slog.Logger
}

// NewHTTPMetrics registers the HTTP metric families on reg. logger receives
// the access log; nil disables access logging (metrics still move).
func NewHTTPMetrics(reg *Registry, logger *slog.Logger) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.Counter("tc_http_requests_total",
			"HTTP requests by route pattern, method and status code.",
			"route", "method", "code"),
		duration: reg.Histogram("tc_http_request_duration_seconds",
			"HTTP request latency by route pattern.",
			nil, "route"),
		inflight: reg.Gauge("tc_http_requests_in_flight",
			"HTTP requests currently being served.").With(),
		logger: logger,
	}
}

// statusWriter captures the response status and size for metrics and the
// access log. WriteHeader-less handlers count as 200 once they write.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Wrap instruments one route. route is the label value — the registered
// pattern (e.g. "/api/v1/{network}/query"), never the raw request path, so
// metric cardinality is bounded by the route table. The wrapper:
//
//   - accepts the client's X-Request-ID (sanitized) or generates one, puts it
//     in the request context and echoes it on the response;
//   - counts the request under (route, method, code) and observes its latency
//     under route;
//   - emits one structured access-log line carrying the request ID, so a
//     client-reported ID finds its server-side trace with one grep.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := SanitizeRequestID(r.Header.Get(HeaderRequestID))
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(HeaderRequestID, id)
		sw := &statusWriter{ResponseWriter: w}
		m.inflight.Add(1)
		defer m.inflight.Add(-1)
		next.ServeHTTP(sw, r.WithContext(WithRequestID(r.Context(), id)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		m.requests.With(route, r.Method, statusText(sw.status)).Inc()
		m.duration.With(route).Observe(elapsed.Seconds())
		if m.logger != nil {
			m.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("requestId", id),
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int("bytes", sw.bytes),
				slog.Int64("durationMicros", elapsed.Microseconds()),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// statusText renders a status code as its label value without allocating for
// the common codes.
func statusText(code int) string {
	switch code {
	case 200:
		return "200"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 409:
		return "409"
	case 500:
		return "500"
	}
	return itoa(code)
}

func itoa(n int) string {
	if n < 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			return string(buf[i:])
		}
	}
}
