package obs_test

import (
	"testing"

	"themecomm/internal/obs"
	"themecomm/internal/obs/promtest"
)

// TestRenderRoundTrip renders a registry exercising every family kind and
// validates the full payload against the exposition grammar.
func TestRenderRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("tc_rt_queries_total", "Queries.", "network", "result")
	c.With("alpha", "hit").Add(3)
	c.With("alpha", "miss").Inc()
	c.With("", "miss").Inc() // empty label value must render validly
	reg.Gauge("tc_rt_resident", "Resident shards.", "network").With("alpha").Set(7)
	h := reg.Histogram("tc_rt_latency_seconds", "Latency.", nil, "network")
	for _, v := range []float64{0.0001, 0.004, 0.2, 30} {
		h.With("alpha").Observe(v)
	}
	reg.CollectFunc("tc_rt_epoch", "Index epoch.", "counter", []string{"network"}, func() []obs.Sample {
		return []obs.Sample{{Labels: []string{"alpha"}, Value: 12}}
	})
	reg.Counter("tc_rt_escapes_total", "Help with \\ and\nnewline.", "q").With("a\"b\\c").Inc()

	fams, err := promtest.Parse(reg.Render())
	if err != nil {
		t.Fatalf("rendered output fails exposition grammar: %v\n%s", err, reg.Render())
	}
	for _, name := range []string{
		"tc_rt_queries_total", "tc_rt_resident", "tc_rt_latency_seconds", "tc_rt_epoch", "tc_rt_escapes_total",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from parsed output", name)
		}
	}
	if got := fams["tc_rt_latency_seconds"].Type; got != "histogram" {
		t.Errorf("latency family type = %q", got)
	}
	// The out-of-range observation (30s > every bound) lands only in +Inf.
	var inf, count float64
	for _, s := range fams["tc_rt_latency_seconds"].Samples {
		if s.Name == "tc_rt_latency_seconds_bucket" && s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
		if s.Name == "tc_rt_latency_seconds_count" {
			count = s.Value
		}
	}
	if inf != 4 || count != 4 {
		t.Errorf("+Inf bucket/count = %v/%v, want 4/4", inf, count)
	}
	// Label-value escaping survives the roundtrip.
	esc := fams["tc_rt_escapes_total"].Samples
	if len(esc) != 1 || esc[0].Labels["q"] != "a\"b\\c" {
		t.Errorf("escaped label roundtrip = %+v", esc)
	}
}
