// Package obs is the serving stack's observability substrate: a
// dependency-free metrics registry rendered in the Prometheus text exposition
// format, request-ID tracing propagated through context.Context, a slow-query
// ring buffer, and HTTP middleware tying the three together. Only the
// standard library is used — the package exists precisely so the serving
// layers never grow a third-party telemetry dependency.
//
// The registry supports two kinds of metric families:
//
//   - live instruments (Counter, Gauge, Histogram, each with label
//     dimensions), updated on the hot path with a few atomic operations;
//   - scrape-time collectors (CollectFunc), which sample an existing counter
//     surface — engine.Stats, federation.Stats — the moment /metrics is
//     scraped, so the serving code keeps its own atomic counters and the
//     registry never duplicates them.
//
// Families render sorted by name, series sorted by label values, so the
// exposition output is deterministic and diffable.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType is the TYPE line of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// DefBuckets are the default latency histogram buckets, in seconds. They
// stretch from 50µs (a warm cache hit) to 10s (a pathological cold scan), so
// both the cache-hit spike and the shard-load tail resolve.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Sample is one scrape-time sample of a collector family: label values
// aligned with the family's label names, plus the value.
type Sample struct {
	Labels []string
	Value  float64
}

// labelSep joins label values into series map keys; label values containing
// it are rejected at observation time by escaping (it is not a printable
// byte, so real values never collide).
const labelSep = "\xff"

// family is one metric family: fixed name/help/type/label-names, plus either
// live series or a scrape-time collector.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series

	collect func() []Sample // scrape-time families; nil for live ones
}

// series is one labeled time series of a live family. Counters and gauges
// use val (counters as integer counts, gauges as float64 bits); histograms
// use buckets/sum/count, with bounds aliasing the family's bucket bounds.
type series struct {
	labelVals []string

	val atomic.Uint64

	bounds  []float64       // upper bucket bounds (shared with the family)
	buckets []atomic.Uint64 // non-cumulative per-bucket counts
	sum     atomic.Uint64   // float64 bits, CAS-updated
	count   atomic.Uint64
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. It is safe for concurrent use; registration panics on a
// duplicate or invalid name (programmer error, like http.ServeMux).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	return validMetricName(s) && !strings.Contains(s, ":")
}

// register installs a family, panicking on duplicates and invalid names.
func (r *Registry) register(f *family) *family {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", f.name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", f.name))
	}
	if f.series == nil {
		f.series = make(map[string]*series)
	}
	r.families[f.name] = f
	return f
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// Counter registers a counter family. Use no label names for a plain
// (single-series) counter.
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, typ: typeCounter, labels: labelNames})}
}

// With returns the series of the given label values, creating it on first
// use. The number of values must match the registered label names.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{v.f.seriesOf(labelValues)}
}

// Counter is one series of a counter family.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.s.val.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.s.val.Load() }

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(&family{name: name, help: help, typ: typeGauge, labels: labelNames})}
}

// With returns the series of the given label values, creating it on first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{v.f.seriesOf(labelValues)}
}

// Gauge is one series of a gauge family.
type Gauge struct{ s *series }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.s.val.Store(math.Float64bits(v)) }

// Add atomically adds delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.s.val.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.val.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.val.Load()) }

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// Histogram registers a histogram family with the given upper bucket bounds
// (ascending; +Inf is implicit). Nil buckets means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: metric %q: buckets not strictly ascending", name))
		}
	}
	return &HistogramVec{r.register(&family{name: name, help: help, typ: typeHistogram, labels: labelNames, buckets: buckets})}
}

// With returns the series of the given label values, creating it on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{v.f.seriesOf(labelValues)}
}

// Histogram is one series of a histogram family.
type Histogram struct{ s *series }

// Observe records one value: the count is bumped, the first bucket whose
// bound holds the value incremented (a linear scan — bucket lists are short),
// and the sum CAS-added. Count moves before the bucket so a concurrent scrape
// renders +Inf (taken from count) at or above every finite cumulative bucket.
func (h *Histogram) Observe(v float64) {
	s := h.s
	s.count.Add(1)
	for i, bound := range s.bounds {
		if v <= bound {
			s.buckets[i].Add(1)
			break
		}
	}
	for {
		old := s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// seriesOf returns the series of the given label values, creating it on
// first use.
func (f *family) seriesOf(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q: got %d label values, want %d", f.name, len(labelValues), len(f.labels)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = &series{labelVals: append([]string(nil), labelValues...)}
	if f.typ == typeHistogram {
		s.bounds = f.buckets
		s.buckets = make([]atomic.Uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// CollectFunc registers a scrape-time family: fn runs on every render and
// returns the family's samples. typ must be "counter" or "gauge" — live
// instruments cover histograms. Use it to expose an existing counter surface
// (engine.Stats, federation.Stats) without double-counting.
func (r *Registry) CollectFunc(name, help, typ string, labelNames []string, fn func() []Sample) {
	mt := metricType(typ)
	if mt != typeCounter && mt != typeGauge {
		panic(fmt.Sprintf("obs: collector %q: type must be counter or gauge, got %q", name, typ))
	}
	r.register(&family{name: name, help: help, typ: mt, labels: labelNames, collect: fn})
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value; integral values render without a
// mantissa so counters read naturally.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders {a="x",b="y"}; empty label sets render as nothing.
// extra appends one additional pair (histogram "le").
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Render writes the whole registry in the Prometheus text exposition format:
// families sorted by name, HELP and TYPE once per family, series sorted by
// label values, histograms with cumulative buckets, +Inf, _sum and _count.
func (r *Registry) Render() string {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.collect != nil {
			samples := f.collect()
			sort.Slice(samples, func(i, j int) bool {
				return strings.Join(samples[i].Labels, labelSep) < strings.Join(samples[j].Labels, labelSep)
			})
			for _, s := range samples {
				if len(s.Labels) != len(f.labels) {
					continue // malformed collector sample; drop rather than emit bad grammar
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(f.labels, s.Labels, "", ""), formatValue(s.Value))
			}
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(f.labels, s.labelVals, "", ""), s.val.Load())
			case typeGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(f.labels, s.labelVals, "", ""), formatValue(math.Float64frombits(s.val.Load())))
			case typeHistogram:
				var cum uint64
				for i, bound := range f.buckets {
					cum += s.buckets[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, s.labelVals, "le", formatValue(bound)), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, s.labelVals, "le", "+Inf"), s.count.Load())
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(f.labels, s.labelVals, "", ""), formatValue(math.Float64frombits(s.sum.Load())))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(f.labels, s.labelVals, "", ""), s.count.Load())
			}
		}
		f.mu.RUnlock()
	}
	return b.String()
}

// Handler returns the GET /metrics handler: the registry rendered in the
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}
