package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync/atomic"
	"time"

	"themecomm/internal/trace"
)

// HeaderRequestID is the HTTP header carrying the request correlation ID:
// accepted from the client, echoed on every response, stamped into the
// structured access log and the slow-query log.
const HeaderRequestID = "X-Request-ID"

// maxRequestIDLen bounds accepted client-supplied request IDs so a hostile
// header cannot bloat logs or metrics.
const maxRequestIDLen = 128

// WithRequestID returns a context carrying the request ID. The key lives in
// internal/trace (the engine↔obs seam package), so IDs stamped here are
// visible to recorders below the layering boundary.
func WithRequestID(ctx context.Context, id string) context.Context {
	return trace.WithRequestID(ctx, id)
}

// RequestIDFrom returns the request ID carried by the context, or "".
func RequestIDFrom(ctx context.Context) string {
	return trace.RequestIDFrom(ctx)
}

// idCounter disambiguates fallback IDs generated within one nanosecond.
var idCounter atomic.Uint64

// NewRequestID returns a fresh 16-hex-digit request ID. Randomness comes from
// crypto/rand; if that fails (it practically cannot), a timestamp+counter
// fallback keeps IDs unique within the process.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano())^idCounter.Add(1)<<40)
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID clamps a client-supplied request ID to something safe to
// log and echo: control characters are dropped and over-long IDs truncated.
// An empty result means the caller should generate a fresh ID.
func SanitizeRequestID(id string) string {
	id = strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return -1
		}
		return r
	}, id)
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	return id
}
