package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"themecomm/internal/trace"
)

// QueryObservation is one engine query as seen by a Recorder. The type lives
// in internal/trace — the dependency-free seam below the layering boundary —
// so the engine can fill it without importing this package; it is re-exported
// here under its historical name for everything above the seam.
type QueryObservation = trace.QueryObservation

// Recorder receives one QueryObservation per engine query. It is the seam
// between the engine and the observability layer (defined in internal/trace,
// re-exported here): the engine is handed a Recorder at construction
// (engine.Options.Recorder) instead of importing a metrics implementation.
type Recorder = trace.Recorder

// ObserverOptions configures NewObserver.
type ObserverOptions struct {
	// Registry receives the observer's metric families; nil means a fresh
	// registry (reachable via Observer.Registry).
	Registry *Registry
	// SlowThreshold is the slow-query capture threshold: a query at least
	// this slow (cache hits excluded) is captured into the slow log and
	// logged. Zero or negative disables capture.
	SlowThreshold time.Duration
	// SlowLogSize is the slow-log ring capacity; zero means 128.
	SlowLogSize int
	// Logger receives the structured slow-query log lines; nil disables
	// logging (the ring buffer still fills).
	Logger *slog.Logger
}

// defaultSlowLogSize is the slow-log ring capacity when ObserverOptions
// leaves SlowLogSize at zero.
const defaultSlowLogSize = 128

// Observer is the production Recorder: per-query latency and stage-timing
// histograms (per tenant) in a Registry, plus a slow-query ring buffer with
// structured logging. It is safe for concurrent use.
type Observer struct {
	reg     *Registry
	slowLog *SlowLog
	logger  *slog.Logger

	queries   *CounterVec   // network, result (hit|miss|error)
	duration  *HistogramVec // network
	stages    *HistogramVec // network, stage (plan|execute|merge)
	slowTotal *CounterVec   // network

	// nets caches the resolved per-network series (netSeries), so the hot
	// path pays one lock-free map read instead of label-key joins per family.
	// Keys are tenant names — bounded cardinality by construction.
	nets sync.Map
}

// netSeries is one network's resolved series set.
type netSeries struct {
	hit, miss, errs *Counter
	duration        *Histogram
	plan, exec      *Histogram
	merge, stream   *Histogram
	slow            *Counter
}

// seriesFor returns the network's resolved series, creating them on first use.
func (o *Observer) seriesFor(network string) *netSeries {
	if s, ok := o.nets.Load(network); ok {
		return s.(*netSeries)
	}
	s := &netSeries{
		hit:      o.queries.With(network, "hit"),
		miss:     o.queries.With(network, "miss"),
		errs:     o.queries.With(network, "error"),
		duration: o.duration.With(network),
		plan:     o.stages.With(network, "plan"),
		exec:     o.stages.With(network, "execute"),
		merge:    o.stages.With(network, "merge"),
		stream:   o.stages.With(network, "stream"),
		slow:     o.slowTotal.With(network),
	}
	actual, _ := o.nets.LoadOrStore(network, s)
	return actual.(*netSeries)
}

// NewObserver returns an Observer recording into opts.Registry.
func NewObserver(opts ObserverOptions) *Observer {
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	size := opts.SlowLogSize
	if size <= 0 {
		size = defaultSlowLogSize
	}
	threshold := opts.SlowThreshold
	if threshold < 0 {
		threshold = 0
	}
	return &Observer{
		reg:     reg,
		slowLog: NewSlowLog(size, threshold),
		logger:  opts.Logger,
		queries: reg.Counter("tc_queries_total",
			"Engine queries by outcome: hit (result cache), miss (executed) or error.",
			"network", "result"),
		duration: reg.Histogram("tc_query_duration_seconds",
			"End-to-end engine query latency, cache hits included.",
			nil, "network"),
		stages: reg.Histogram("tc_query_stage_duration_seconds",
			"Executed-query latency split by stage: plan, execute (parallel shard traversal), merge, stream (pull-driven delivery of a streaming execution).",
			nil, "network", "stage"),
		slowTotal: reg.Counter("tc_slow_queries_total",
			"Queries captured by the slow-query log (duration >= threshold, cache hits excluded).",
			"network"),
	}
}

// Registry returns the registry the observer records into.
func (o *Observer) Registry() *Registry { return o.reg }

// Logger returns the structured logger the observer logs to; nil when
// logging is disabled.
func (o *Observer) Logger() *slog.Logger { return o.logger }

// SlowLog returns the slow-query ring buffer.
func (o *Observer) SlowLog() *SlowLog { return o.slowLog }

// RecordQuery implements Recorder: the latency histograms move on every
// query; a query at least SlowThreshold slow (and not a cache hit) is
// additionally captured into the slow log — materializing its plan detail —
// and logged with its request ID.
func (o *Observer) RecordQuery(ctx context.Context, q QueryObservation) {
	ns := o.seriesFor(q.Network)
	switch {
	case q.Err:
		ns.errs.Inc()
	case q.CacheHit:
		ns.hit.Inc()
	default:
		ns.miss.Inc()
	}
	ns.duration.Observe(q.Total.Seconds())
	if !q.CacheHit && !q.Err {
		ns.plan.Observe(q.Plan.Seconds())
		ns.exec.Observe(q.Execute.Seconds())
		ns.merge.Observe(q.Merge.Seconds())
		if q.Stream > 0 {
			// Only streaming executions carry the stage; observing zeros for
			// every materializing query would drown the series in noise.
			ns.stream.Observe(q.Stream.Seconds())
		}
	}
	threshold := o.slowLog.Threshold()
	if threshold <= 0 || q.CacheHit || q.Total < threshold {
		return
	}
	ns.slow.Inc()
	entry := SlowQuery{
		Time:           time.Now(),
		RequestID:      RequestIDFrom(ctx),
		Network:        q.Network,
		Pattern:        q.Pattern,
		Alpha:          q.Alpha,
		DurationMicros: q.Total.Microseconds(),
		PlanMicros:     q.Plan.Microseconds(),
		ExecMicros:     q.Execute.Microseconds(),
		MergeMicros:    q.Merge.Microseconds(),
		StreamMicros:   q.Stream.Microseconds(),
		Shards:         q.Shards,
		SkippedShards:  q.SkippedShards,
		LoadedShards:   q.LoadedShards,
		ShortCircuited: q.ShortCircuited,
	}
	if q.Detail != nil {
		entry.Plan = q.Detail()
	}
	o.slowLog.Add(entry)
	if o.logger != nil {
		o.logger.LogAttrs(ctx, slog.LevelWarn, "slow query",
			slog.String("requestId", entry.RequestID),
			slog.String("network", q.Network),
			slog.String("pattern", q.Pattern),
			slog.Float64("alpha", q.Alpha),
			slog.Int64("durationMicros", entry.DurationMicros),
			slog.Int64("planMicros", entry.PlanMicros),
			slog.Int64("execMicros", entry.ExecMicros),
			slog.Int64("mergeMicros", entry.MergeMicros),
			slog.Int("shards", q.Shards),
			slog.Int("loadedShards", q.LoadedShards),
		)
	}
}
