package dbnet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// The on-disk format is a simple line-oriented text format:
//
//	DBNET 1
//	V <numVertices>
//	I <itemID> <item name ...>        (optional, one per named item)
//	E <u> <v>                         (one per edge)
//	T <vertex> <itemID> <itemID> ...  (one per transaction)
//
// Lines starting with '#' and blank lines are ignored. The format is designed
// to be diffable, streamable and easy to generate from other tooling.

const formatHeader = "DBNET 1"

// Write serializes the network (and optionally the item dictionary) to w.
func Write(w io.Writer, nw *Network, dict *itemset.Dictionary) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, formatHeader); err != nil {
		return err
	}
	fmt.Fprintf(bw, "V %d\n", nw.NumVertices())
	if dict != nil {
		for id := 0; id < dict.Len(); id++ {
			name, err := dict.Name(itemset.Item(id))
			if err != nil {
				return err
			}
			fmt.Fprintf(bw, "I %d %s\n", id, name)
		}
	}
	for _, e := range nw.Graph().Edges() {
		fmt.Fprintf(bw, "E %d %d\n", e.U, e.V)
	}
	for v := 0; v < nw.NumVertices(); v++ {
		for _, t := range nw.Database(graph.VertexID(v)).Transactions() {
			sb := make([]string, 0, len(t)+2)
			sb = append(sb, "T", strconv.Itoa(v))
			for _, it := range t {
				sb = append(sb, strconv.Itoa(int(it)))
			}
			fmt.Fprintln(bw, strings.Join(sb, " "))
		}
	}
	return bw.Flush()
}

// Read parses a network written by Write. The returned dictionary contains
// only the names present in the file ("I" lines); it may be empty.
func Read(r io.Reader) (*Network, *itemset.Dictionary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	readLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}

	header, ok := readLine()
	if !ok {
		return nil, nil, fmt.Errorf("dbnet: empty input")
	}
	if header != formatHeader {
		return nil, nil, fmt.Errorf("dbnet: line %d: unsupported header %q", lineNo, header)
	}

	var nw *Network
	dict := itemset.NewDictionary()
	names := make(map[itemset.Item]string)

	for {
		line, ok := readLine()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "V":
			if nw != nil {
				return nil, nil, fmt.Errorf("dbnet: line %d: duplicate V line", lineNo)
			}
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("dbnet: line %d: malformed V line", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("dbnet: line %d: invalid vertex count %q", lineNo, fields[1])
			}
			nw = New(n)
		case "I":
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("dbnet: line %d: malformed I line", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, nil, fmt.Errorf("dbnet: line %d: invalid item id %q", lineNo, fields[1])
			}
			names[itemset.Item(id)] = strings.Join(fields[2:], " ")
		case "E":
			if nw == nil {
				return nil, nil, fmt.Errorf("dbnet: line %d: E line before V line", lineNo)
			}
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("dbnet: line %d: malformed E line", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, nil, fmt.Errorf("dbnet: line %d: invalid edge endpoints", lineNo)
			}
			if err := nw.AddEdge(graph.VertexID(u), graph.VertexID(v)); err != nil {
				return nil, nil, fmt.Errorf("dbnet: line %d: %w", lineNo, err)
			}
		case "T":
			if nw == nil {
				return nil, nil, fmt.Errorf("dbnet: line %d: T line before V line", lineNo)
			}
			if len(fields) < 2 {
				return nil, nil, fmt.Errorf("dbnet: line %d: malformed T line", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, nil, fmt.Errorf("dbnet: line %d: invalid vertex %q", lineNo, fields[1])
			}
			items := make([]itemset.Item, 0, len(fields)-2)
			for _, f := range fields[2:] {
				id, err := strconv.Atoi(f)
				if err != nil {
					return nil, nil, fmt.Errorf("dbnet: line %d: invalid item %q", lineNo, f)
				}
				items = append(items, itemset.Item(id))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(items...)); err != nil {
				return nil, nil, fmt.Errorf("dbnet: line %d: %w", lineNo, err)
			}
		default:
			return nil, nil, fmt.Errorf("dbnet: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dbnet: read: %w", err)
	}
	if nw == nil {
		return nil, nil, fmt.Errorf("dbnet: missing V line")
	}
	// Rebuild the dictionary with stable identifiers matching the file.
	if len(names) > 0 {
		maxID := itemset.Item(0)
		for id := range names {
			if id > maxID {
				maxID = id
			}
		}
		for id := itemset.Item(0); id <= maxID; id++ {
			name, ok := names[id]
			if !ok {
				name = fmt.Sprintf("item-%d", id)
			}
			dict.Intern(name)
		}
	}
	return nw, dict, nil
}

// WriteFile writes the network to the named file, creating or truncating it.
func WriteFile(path string, nw *Network, dict *itemset.Dictionary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, nw, dict); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFileAtomic durably replaces the network file: write-to-temp, fsync,
// rename, fsync the directory. Incremental maintenance uses it for the
// network write-back after an index update — the network file is the only
// source for future rebuilds, so it must never be torn or roll back behind
// a durably committed index. (internal/tctree keeps its own variant of this
// recipe for index shard files, with crash-injection test hooks; change the
// discipline in both places or neither.)
func WriteFileAtomic(path string, nw *Network, dict *itemset.Dictionary) error {
	return WriteFileAtomicStamped(path, nw, dict, 0)
}

// journalSeqComment prefixes the journal-seq stamp comment. The stamp rides
// inside the network file as a comment line (the reader skips '#' lines), so
// "network contents" and "journal position those contents include" are
// replaced by the same single rename — there is no window in which one file
// is newer than the other.
const journalSeqComment = "# journal-seq "

// WriteFileAtomicStamped is WriteFileAtomic plus a journal-seq stamp: when
// seq > 0, a "# journal-seq <n>" comment is written after the header,
// recording that the file reflects every journal record up to and including
// seq. Checkpoint recovery compares this stamp against the index manifest's
// JournalSeq to detect a crash between the two writes.
func WriteFileAtomicStamped(path string, nw *Network, dict *itemset.Dictionary, seq uint64) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if seq > 0 {
		_, err = fmt.Fprintf(f, "%s%d\n", journalSeqComment, seq)
	}
	if err == nil {
		err = Write(f, nw, dict)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// Directory fsync errors are ignored: unsupported on some platforms,
	// and the rename already made the change visible and consistent.
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile reads a network from the named file.
func ReadFile(path string) (*Network, *itemset.Dictionary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Read(f)
}

// ReadJournalSeq returns the journal-seq stamp of the named network file, or
// 0 when the file carries none (it predates journaling, or journaling is not
// in use). Only the lines before the first record line are scanned — the
// stamp, when present, sits right after the header.
func ReadJournalSeq(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == formatHeader {
			continue
		}
		if !strings.HasPrefix(line, "#") {
			return 0, nil // first record line: no stamp present
		}
		if rest, ok := strings.CutPrefix(line, journalSeqComment); ok {
			seq, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("dbnet: malformed journal-seq stamp %q", line)
			}
			return seq, nil
		}
	}
	return 0, sc.Err()
}
