package dbnet

import (
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// PaperExampleItems are the two patterns p = {1} and q = {2} used by
// PaperExample. They are exported for tests that replay the worked example of
// Figure 1 of the paper.
var (
	PaperExampleP = itemset.New(1)
	PaperExampleQ = itemset.New(2)
)

// PaperExample constructs the toy database network of Figure 1 of the paper:
// 9 vertices v1..v9 (here 0..8) whose databases are synthesized so that the
// frequencies of pattern p on v1..v9 are 0.1,0.1,0.1,0.1,0.1,0,0.3,0.3,0.3 and
// the frequencies of pattern q are 0.4,0.5,0.1,0.0,0.7,0.8,0.6,0.1,0.7
// (Figure 1(c) labels). The edge structure follows Figure 1(a):
// a 5-vertex cluster {v1..v5}, a triangle {v7,v8,v9}, and v6 bridging the two.
//
// The returned network reproduces, for p, the theme communities
// {v1,...,v5} and {v7,v8,v9} for α ∈ [0, 0.2) (Example 3.6).
func PaperExample() *Network {
	nw := New(9)
	edges := [][2]graph.VertexID{
		// Dense cluster on v1..v5 (0..4).
		{0, 1}, {0, 2}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
		// Bridge through v6 (5).
		{4, 5}, {5, 6},
		// Triangle v7, v8, v9 (6, 7, 8).
		{6, 7}, {6, 8}, {7, 8},
	}
	for _, e := range edges {
		nw.MustAddEdge(e[0], e[1])
	}

	pFreqs := []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.0, 0.3, 0.3, 0.3}
	qFreqs := []float64{0.4, 0.5, 0.1, 0.0, 0.7, 0.8, 0.6, 0.1, 0.7}
	for v := 0; v < 9; v++ {
		setVertexFrequencies(nw, graph.VertexID(v), map[itemset.Item]float64{
			PaperExampleP[0]: pFreqs[v],
			PaperExampleQ[0]: qFreqs[v],
		})
	}
	return nw
}

// setVertexFrequencies fills the database of v with 10 transactions realizing
// the requested single-item frequencies (each frequency must be a multiple of
// 0.1 in [0,1]).
func setVertexFrequencies(nw *Network, v graph.VertexID, freqs map[itemset.Item]float64) {
	const slots = 10
	for i := 0; i < slots; i++ {
		var tx []itemset.Item
		for it, f := range freqs {
			if float64(i) < f*slots-1e-9 {
				tx = append(tx, it)
			}
		}
		if len(tx) == 0 {
			// A filler item (unique per vertex, outside the patterns of
			// interest) keeps the transaction count at 10 so frequencies are
			// exact tenths.
			tx = []itemset.Item{1000 + itemset.Item(v)}
		}
		if err := nw.AddTransaction(v, itemset.New(tx...)); err != nil {
			panic(err)
		}
	}
}
