// Package dbnet implements the database network data model of Section 3.1 of
// the paper: an undirected graph in which every vertex carries a transaction
// database, together with the induction of theme networks G_p for a pattern p.
package dbnet

import (
	"fmt"
	"sort"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/txdb"
)

// Network is a database network G = (V, E, D, S): a simple undirected graph
// whose vertices each carry a transaction database. The item universe S is
// the union of all items appearing in the vertex databases.
type Network struct {
	g   *graph.Graph
	dbs []*txdb.Database

	// itemVertices lazily maps each item to the sorted list of vertices whose
	// database contains the item, together with the item's frequency on that
	// vertex. It accelerates theme-network induction.
	itemVertices map[itemset.Item][]VertexFrequency
}

// VertexFrequency pairs a vertex with a pattern frequency on that vertex.
type VertexFrequency struct {
	Vertex    graph.VertexID
	Frequency float64
}

// New returns a database network with n vertices, no edges and empty vertex
// databases.
func New(n int) *Network {
	dbs := make([]*txdb.Database, n)
	for i := range dbs {
		dbs[i] = txdb.New()
	}
	return &Network{g: graph.New(n), dbs: dbs}
}

// NumVertices returns |V|.
func (nw *Network) NumVertices() int { return nw.g.NumVertices() }

// NumEdges returns |E|.
func (nw *Network) NumEdges() int { return nw.g.NumEdges() }

// Graph returns the underlying graph. The returned graph must not be modified
// directly; use AddEdge on the network.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// AddEdge inserts the undirected edge (a, b).
func (nw *Network) AddEdge(a, b graph.VertexID) error {
	return nw.g.AddEdge(a, b)
}

// MustAddEdge is AddEdge but panics on error.
func (nw *Network) MustAddEdge(a, b graph.VertexID) {
	if err := nw.AddEdge(a, b); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge (a, b), reporting whether it was
// present. Removing an absent edge is a harmless no-op.
func (nw *Network) RemoveEdge(a, b graph.VertexID) bool {
	return nw.g.RemoveEdge(a, b)
}

// AddVertices grows the network by n vertices with empty transaction
// databases, returning the new vertex count. New vertices carry no items, so
// they change no theme network until they gain transactions or edges.
func (nw *Network) AddVertices(n int) int {
	for i := 0; i < n; i++ {
		nw.dbs = append(nw.dbs, txdb.New())
	}
	return nw.g.AddVertices(n)
}

// Database returns the transaction database of vertex v.
func (nw *Network) Database(v graph.VertexID) *txdb.Database {
	if int(v) < 0 || int(v) >= len(nw.dbs) {
		return nil
	}
	return nw.dbs[v]
}

// AddTransaction appends a transaction to the database of vertex v.
func (nw *Network) AddTransaction(v graph.VertexID, t txdb.Transaction) error {
	db := nw.Database(v)
	if db == nil {
		return fmt.Errorf("dbnet: vertex %d out of range [0,%d)", v, len(nw.dbs))
	}
	db.Add(t)
	nw.itemVertices = nil
	return nil
}

// RemoveTransaction deletes one occurrence of an exact transaction from the
// database of vertex v, reporting whether one was found. Removing an absent
// transaction is a harmless no-op (mirroring RemoveEdge).
func (nw *Network) RemoveTransaction(v graph.VertexID, t txdb.Transaction) (bool, error) {
	db := nw.Database(v)
	if db == nil {
		return false, fmt.Errorf("dbnet: vertex %d out of range [0,%d)", v, len(nw.dbs))
	}
	removed := db.Remove(t)
	if removed {
		nw.itemVertices = nil
	}
	return removed, nil
}

// ClearVertex tombstones vertex v: every incident edge is removed and its
// transaction database is emptied. The vertex identifier stays valid — vertex
// ids are positional across the index, the journal and every replica, so
// removal never renumbers — and the cleared vertex may later be reconnected
// and repopulated by subsequent deltas.
func (nw *Network) ClearVertex(v graph.VertexID) error {
	if int(v) < 0 || int(v) >= len(nw.dbs) {
		return fmt.Errorf("dbnet: vertex %d out of range [0,%d)", v, len(nw.dbs))
	}
	for _, w := range append([]graph.VertexID(nil), nw.g.Neighbors(v)...) {
		nw.g.RemoveEdge(v, w)
	}
	nw.dbs[v] = txdb.New()
	nw.itemVertices = nil
	return nil
}

// SetDatabase replaces the database of vertex v.
func (nw *Network) SetDatabase(v graph.VertexID, db *txdb.Database) error {
	if int(v) < 0 || int(v) >= len(nw.dbs) {
		return fmt.Errorf("dbnet: vertex %d out of range [0,%d)", v, len(nw.dbs))
	}
	if db == nil {
		db = txdb.New()
	}
	nw.dbs[v] = db
	nw.itemVertices = nil
	return nil
}

// Frequency returns f_v(p): the frequency of pattern p in the database of
// vertex v. Out-of-range vertices have frequency 0.
func (nw *Network) Frequency(v graph.VertexID, p itemset.Itemset) float64 {
	db := nw.Database(v)
	if db == nil {
		return 0
	}
	return db.Frequency(p)
}

// Items returns the item universe S: the union of all items appearing in any
// vertex database, sorted.
func (nw *Network) Items() itemset.Itemset {
	idx := nw.itemIndex()
	items := make([]itemset.Item, 0, len(idx))
	for it := range idx {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return itemset.FromSorted(items)
}

// ItemVertices returns, for item it, the vertices whose database contains it
// together with the item frequency on each vertex, sorted by vertex. The
// returned slice must not be modified.
func (nw *Network) ItemVertices(it itemset.Item) []VertexFrequency {
	return nw.itemIndex()[it]
}

func (nw *Network) itemIndex() map[itemset.Item][]VertexFrequency {
	if nw.itemVertices != nil {
		return nw.itemVertices
	}
	idx := make(map[itemset.Item][]VertexFrequency)
	for v, db := range nw.dbs {
		for it, f := range db.ItemFrequencies() {
			idx[it] = append(idx[it], VertexFrequency{Vertex: graph.VertexID(v), Frequency: f})
		}
	}
	for it := range idx {
		l := idx[it]
		sort.Slice(l, func(i, j int) bool { return l[i].Vertex < l[j].Vertex })
	}
	nw.itemVertices = idx
	return idx
}

// InvalidateCaches drops the lazily built item index. It is called
// automatically by mutating methods; callers that mutate vertex databases
// obtained via Database directly must call it themselves.
func (nw *Network) InvalidateCaches() { nw.itemVertices = nil }

// Freeze finalizes every lazily built internal structure (sorted adjacency
// lists, the per-item vertex index, per-database item counts) so that the
// network can afterwards be read concurrently from multiple goroutines. It
// must be called again after any mutation before resuming concurrent reads.
func (nw *Network) Freeze() {
	nw.g.Sort()
	nw.itemIndex()
}

// Validate checks the structural invariants of the network: every vertex
// database is canonical. Graph invariants (no self-loops, no duplicates) are
// enforced at construction time.
func (nw *Network) Validate() error {
	for v, db := range nw.dbs {
		if err := db.Validate(); err != nil {
			return fmt.Errorf("dbnet: vertex %d: %w", v, err)
		}
	}
	return nil
}

// Stats summarises the network as reported in Table 2 of the paper.
type Stats struct {
	Vertices     int // |V|
	Edges        int // |E|
	Transactions int // total number of transactions across all vertex databases
	ItemsTotal   int // total number of items stored in all vertex databases
	ItemsUnique  int // |S|
}

// Stats computes the Table 2 statistics of the network.
func (nw *Network) Stats() Stats {
	s := Stats{Vertices: nw.NumVertices(), Edges: nw.NumEdges()}
	for _, db := range nw.dbs {
		s.Transactions += db.Len()
		s.ItemsTotal += db.TotalItems()
	}
	s.ItemsUnique = len(nw.itemIndex())
	return s
}

// InducedByEdges returns a new network containing exactly the given edges and
// the vertices incident to them. Vertex identifiers are remapped densely in
// ascending order of the original identifiers; the mapping from new to
// original identifiers is returned alongside. Vertex databases are shared
// with the original network (they are not copied), matching the BFS-sampling
// methodology of Section 7.1.
func (nw *Network) InducedByEdges(edges []graph.Edge) (*Network, []graph.VertexID) {
	present := make(map[graph.VertexID]bool)
	for _, e := range edges {
		present[e.U] = true
		present[e.V] = true
	}
	orig := make([]graph.VertexID, 0, len(present))
	for v := range present {
		orig = append(orig, v)
	}
	graph.SortVertices(orig)
	remap := make(map[graph.VertexID]graph.VertexID, len(orig))
	for i, v := range orig {
		remap[v] = graph.VertexID(i)
	}
	sub := New(len(orig))
	for i, v := range orig {
		sub.dbs[i] = nw.dbs[v]
	}
	for _, e := range edges {
		sub.MustAddEdge(remap[e.U], remap[e.V])
	}
	return sub, orig
}

// String renders a short summary of the network.
func (nw *Network) String() string {
	return fmt.Sprintf("dbnet.Network{|V|=%d, |E|=%d}", nw.NumVertices(), nw.NumEdges())
}
