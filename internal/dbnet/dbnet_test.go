package dbnet

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/txdb"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// smallNetwork builds a 4-vertex network:
//
//	0 -- 1 -- 2 -- 3, plus edge 0-2 (triangle 0,1,2)
//
// databases: v0 {a,b},{a}; v1 {a,b}; v2 {a}; v3 {c}.
func smallNetwork(t *testing.T) *Network {
	t.Helper()
	nw := New(4)
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {0, 2}} {
		nw.MustAddEdge(e[0], e[1])
	}
	const a, b, c = 1, 2, 3
	mustAdd := func(v graph.VertexID, items ...itemset.Item) {
		if err := nw.AddTransaction(v, itemset.New(items...)); err != nil {
			t.Fatalf("AddTransaction: %v", err)
		}
	}
	mustAdd(0, a, b)
	mustAdd(0, a)
	mustAdd(1, a, b)
	mustAdd(2, a)
	mustAdd(3, c)
	return nw
}

func TestNetworkBasics(t *testing.T) {
	nw := smallNetwork(t)
	if nw.NumVertices() != 4 || nw.NumEdges() != 4 {
		t.Fatalf("size = (%d,%d)", nw.NumVertices(), nw.NumEdges())
	}
	if got := nw.Frequency(0, itemset.New(1)); !approx(got, 1.0) {
		t.Errorf("f_0({a}) = %v, want 1", got)
	}
	if got := nw.Frequency(0, itemset.New(2)); !approx(got, 0.5) {
		t.Errorf("f_0({b}) = %v, want 0.5", got)
	}
	if got := nw.Frequency(99, itemset.New(1)); got != 0 {
		t.Errorf("frequency of out-of-range vertex = %v", got)
	}
	if got := nw.Items(); !got.Equal(itemset.New(1, 2, 3)) {
		t.Errorf("Items = %v", got)
	}
	if nw.Database(99) != nil {
		t.Errorf("Database(99) should be nil")
	}
	if err := nw.AddTransaction(99, itemset.New(1)); err == nil {
		t.Errorf("AddTransaction on bad vertex should fail")
	}
	if err := nw.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSetDatabase(t *testing.T) {
	nw := New(2)
	db := txdb.FromTransactions([]itemset.Item{7})
	if err := nw.SetDatabase(1, db); err != nil {
		t.Fatalf("SetDatabase: %v", err)
	}
	if got := nw.Frequency(1, itemset.New(7)); !approx(got, 1) {
		t.Fatalf("frequency after SetDatabase = %v", got)
	}
	if err := nw.SetDatabase(0, nil); err != nil {
		t.Fatalf("SetDatabase(nil): %v", err)
	}
	if nw.Database(0) == nil || !nw.Database(0).Empty() {
		t.Fatalf("nil database should become an empty database")
	}
	if err := nw.SetDatabase(5, db); err == nil {
		t.Fatalf("SetDatabase out of range should fail")
	}
}

func TestItemVerticesIndex(t *testing.T) {
	nw := smallNetwork(t)
	vs := nw.ItemVertices(1) // item a on vertices 0, 1, 2
	if len(vs) != 3 {
		t.Fatalf("ItemVertices(a) = %v", vs)
	}
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Vertex >= vs[i].Vertex {
			t.Fatalf("ItemVertices not sorted: %v", vs)
		}
	}
	if got := nw.ItemVertices(99); got != nil {
		t.Fatalf("ItemVertices of unknown item = %v", got)
	}
	// Mutation must invalidate the cache.
	if err := nw.AddTransaction(3, itemset.New(1)); err != nil {
		t.Fatalf("AddTransaction: %v", err)
	}
	if got := len(nw.ItemVertices(1)); got != 4 {
		t.Fatalf("cache not invalidated: %d vertices", got)
	}
}

func TestStats(t *testing.T) {
	nw := smallNetwork(t)
	s := nw.Stats()
	if s.Vertices != 4 || s.Edges != 4 || s.Transactions != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ItemsTotal != 7 || s.ItemsUnique != 3 {
		t.Fatalf("item stats = %+v", s)
	}
}

func TestThemeNetworkFullInduction(t *testing.T) {
	nw := smallNetwork(t)
	// Item a is on vertices 0,1,2 -> theme network has the triangle 0-1-2.
	tn := nw.ThemeNetwork(itemset.New(1))
	if tn.NumVertices() != 3 || tn.NumEdges() != 3 {
		t.Fatalf("theme network of {a}: |V|=%d |E|=%d", tn.NumVertices(), tn.NumEdges())
	}
	if !approx(tn.Frequency(0), 1) || !approx(tn.Frequency(1), 1) || !approx(tn.Frequency(2), 1) {
		t.Fatalf("frequencies = %v", tn.Freq)
	}
	if tn.Frequency(3) != 0 {
		t.Fatalf("vertex 3 should not be in the theme network")
	}
	// Item b is only on 0 and 1 -> a single edge.
	tn = nw.ThemeNetwork(itemset.New(2))
	if tn.NumVertices() != 2 || tn.NumEdges() != 1 {
		t.Fatalf("theme network of {b}: |V|=%d |E|=%d", tn.NumVertices(), tn.NumEdges())
	}
	// Pattern {a,b}: f>0 on 0 and 1 only.
	tn = nw.ThemeNetwork(itemset.New(1, 2))
	if tn.NumVertices() != 2 || tn.NumEdges() != 1 {
		t.Fatalf("theme network of {a,b}: |V|=%d |E|=%d", tn.NumVertices(), tn.NumEdges())
	}
	if !approx(tn.Frequency(0), 0.5) {
		t.Fatalf("f_0({a,b}) = %v, want 0.5", tn.Frequency(0))
	}
	// Unknown item -> empty theme network.
	tn = nw.ThemeNetwork(itemset.New(42))
	if tn.NumVertices() != 0 || tn.NumEdges() != 0 {
		t.Fatalf("theme network of unknown item should be empty")
	}
	// Empty pattern -> all non-empty-database vertices with frequency 1.
	tn = nw.ThemeNetwork(itemset.New())
	if tn.NumVertices() != 4 || tn.NumEdges() != 4 {
		t.Fatalf("theme network of empty pattern: |V|=%d |E|=%d", tn.NumVertices(), tn.NumEdges())
	}
}

func TestThemeNetworkWithin(t *testing.T) {
	nw := smallNetwork(t)
	within := graph.NewEdgeSet(graph.EdgeOf(0, 1), graph.EdgeOf(2, 3))
	tn := nw.ThemeNetworkWithin(itemset.New(1), within)
	// Of the restricted edges, only (0,1) has both endpoints containing a.
	if tn.NumEdges() != 1 || !tn.Edges.Contains(graph.EdgeOf(0, 1)) {
		t.Fatalf("restricted theme network edges = %v", tn.Edges.Edges())
	}
	// nil restriction falls back to full induction.
	tn = nw.ThemeNetworkWithin(itemset.New(1), nil)
	if tn.NumEdges() != 3 {
		t.Fatalf("nil restriction should induce from the full network")
	}
	// Restriction with empty pattern keeps both edges (all databases non-empty).
	tn = nw.ThemeNetworkWithin(itemset.New(), within)
	if tn.NumEdges() != 2 {
		t.Fatalf("empty-pattern restricted induction = %d edges", tn.NumEdges())
	}
}

// Theme networks induced within a subgraph must agree with the full induction
// intersected with that subgraph (this is what makes the TCFI optimization
// exact).
func TestThemeNetworkWithinConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw := randomNetwork(rng, 20, 40, 6)
	full := nw.ThemeNetwork(itemset.New(0, 1))
	all := nw.ThemeNetwork(itemset.New(0)).Edges
	restricted := nw.ThemeNetworkWithin(itemset.New(0, 1), all)
	if !restricted.Edges.Equal(full.Edges.Intersect(all)) {
		t.Fatalf("restricted induction disagrees with full induction")
	}
	for v, f := range restricted.Freq {
		if !approx(f, nw.Frequency(v, itemset.New(0, 1))) {
			t.Fatalf("frequency mismatch on vertex %d", v)
		}
	}
}

func TestInducedByEdges(t *testing.T) {
	nw := smallNetwork(t)
	edges := []graph.Edge{graph.EdgeOf(1, 2), graph.EdgeOf(2, 3)}
	sub, orig := nw.InducedByEdges(edges)
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("induced network size = (%d,%d)", sub.NumVertices(), sub.NumEdges())
	}
	if len(orig) != 3 || orig[0] != 1 || orig[2] != 3 {
		t.Fatalf("orig mapping = %v", orig)
	}
	// Databases are shared: frequency of item a on new vertex 0 (orig 1) is 1.
	if got := sub.Frequency(0, itemset.New(1)); !approx(got, 1) {
		t.Fatalf("shared database frequency = %v", got)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	nw := smallNetwork(t)
	dict := itemset.NewDictionary()
	dict.Intern("zero")
	dict.Intern("alpha")
	dict.Intern("beta")
	dict.Intern("gamma")

	var buf bytes.Buffer
	if err := Write(&buf, nw, dict); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, gotDict, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumVertices() != nw.NumVertices() || got.NumEdges() != nw.NumEdges() {
		t.Fatalf("round trip size mismatch")
	}
	if got.Stats() != nw.Stats() {
		t.Fatalf("round trip stats mismatch: %+v vs %+v", got.Stats(), nw.Stats())
	}
	for v := 0; v < nw.NumVertices(); v++ {
		for _, p := range []itemset.Itemset{itemset.New(1), itemset.New(2), itemset.New(1, 2)} {
			if !approx(got.Frequency(graph.VertexID(v), p), nw.Frequency(graph.VertexID(v), p)) {
				t.Fatalf("frequency mismatch on vertex %d pattern %v", v, p)
			}
		}
	}
	if gotDict.Len() != 4 || gotDict.MustName(1) != "alpha" {
		t.Fatalf("dictionary round trip failed: %d items", gotDict.Len())
	}
}

func TestWriteWithoutDictionary(t *testing.T) {
	nw := smallNetwork(t)
	var buf bytes.Buffer
	if err := Write(&buf, nw, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, dict, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if dict.Len() != 0 {
		t.Fatalf("expected empty dictionary, got %d entries", dict.Len())
	}
	if got.NumEdges() != nw.NumEdges() {
		t.Fatalf("edge count mismatch")
	}
}

func TestReadRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "NOPE 9\nV 3\n"},
		{"missing V", "DBNET 1\nE 0 1\n"},
		{"duplicate V", "DBNET 1\nV 2\nV 2\n"},
		{"negative V", "DBNET 1\nV -1\n"},
		{"bad edge arity", "DBNET 1\nV 2\nE 0\n"},
		{"bad edge vertex", "DBNET 1\nV 2\nE 0 x\n"},
		{"edge out of range", "DBNET 1\nV 2\nE 0 7\n"},
		{"self loop", "DBNET 1\nV 2\nE 1 1\n"},
		{"tx before V", "DBNET 1\nT 0 1\n"},
		{"tx bad vertex", "DBNET 1\nV 2\nT x 1\n"},
		{"tx bad item", "DBNET 1\nV 2\nT 0 notanitem\n"},
		{"tx out of range", "DBNET 1\nV 2\nT 9 1\n"},
		{"unknown record", "DBNET 1\nV 2\nX 1 2\n"},
		{"bad item line", "DBNET 1\nV 2\nI 5\n"},
		{"bad item id", "DBNET 1\nV 2\nI x name\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := Read(strings.NewReader(c.input)); err == nil {
				t.Fatalf("Read(%q) should fail", c.input)
			}
		})
	}
}

func TestReadIgnoresCommentsAndBlankLines(t *testing.T) {
	input := "# comment\n\nDBNET 1\n# another\nV 2\n\nE 0 1\nT 0 5\n"
	nw, _, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if nw.NumVertices() != 2 || nw.NumEdges() != 1 {
		t.Fatalf("parsed network wrong: %v", nw)
	}
}

func TestWriteReadFile(t *testing.T) {
	nw := smallNetwork(t)
	path := t.TempDir() + "/net.dbnet"
	if err := WriteFile(path, nw, nil); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, _, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Stats() != nw.Stats() {
		t.Fatalf("file round trip stats mismatch")
	}
	if _, _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatalf("ReadFile of missing file should fail")
	}
}

func TestPaperExampleFrequencies(t *testing.T) {
	nw := PaperExample()
	if nw.NumVertices() != 9 {
		t.Fatalf("paper example should have 9 vertices")
	}
	wantP := []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.0, 0.3, 0.3, 0.3}
	for v, want := range wantP {
		if got := nw.Frequency(graph.VertexID(v), PaperExampleP); !approx(got, want) {
			t.Errorf("f_%d(p) = %v, want %v", v+1, got, want)
		}
	}
	// Example 3.2: edge (v1,v2) is in triangles with v3 and v5.
	cn := nw.Graph().CommonNeighbors(0, 1)
	if len(cn) != 2 || cn[0] != 2 || cn[1] != 4 {
		t.Fatalf("common neighbors of v1,v2 = %v, want [v3 v5]", cn)
	}
	// The theme network of p excludes v6 (frequency 0).
	tn := nw.ThemeNetwork(PaperExampleP)
	if tn.NumVertices() != 8 {
		t.Fatalf("theme network of p has %d vertices, want 8", tn.NumVertices())
	}
	if _, ok := tn.Freq[5]; ok {
		t.Fatalf("v6 must not be part of the theme network of p")
	}
}

func TestStringSummaries(t *testing.T) {
	nw := New(3)
	if got := nw.String(); got != "dbnet.Network{|V|=3, |E|=0}" {
		t.Fatalf("String = %q", got)
	}
}

func randomNetwork(rng *rand.Rand, n, m, items int) *Network {
	nw := New(n)
	for i := 0; i < m; i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < n; v++ {
		ntx := 1 + rng.Intn(5)
		for i := 0; i < ntx; i++ {
			l := 1 + rng.Intn(3)
			tx := make([]itemset.Item, l)
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(items))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				panic(err)
			}
		}
	}
	return nw
}

func TestJournalSeqStamp(t *testing.T) {
	nw := smallNetwork(t)
	dir := t.TempDir()
	path := dir + "/net.dbnet"
	if err := WriteFileAtomicStamped(path, nw, nil, 99); err != nil {
		t.Fatalf("WriteFileAtomicStamped: %v", err)
	}
	// The stamp is readable...
	seq, err := ReadJournalSeq(path)
	if err != nil || seq != 99 {
		t.Fatalf("ReadJournalSeq = (%d, %v), want (99, nil)", seq, err)
	}
	// ...and invisible to the network reader (it is just a comment).
	got, _, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.NumVertices() != nw.NumVertices() || got.NumEdges() != nw.NumEdges() {
		t.Fatalf("stamped file parsed to (%d,%d), want (%d,%d)",
			got.NumVertices(), got.NumEdges(), nw.NumVertices(), nw.NumEdges())
	}
	// An unstamped file reads as seq 0.
	if err := WriteFileAtomic(path, nw, nil); err != nil {
		t.Fatal(err)
	}
	if seq, err := ReadJournalSeq(path); err != nil || seq != 0 {
		t.Fatalf("ReadJournalSeq on unstamped file = (%d, %v), want (0, nil)", seq, err)
	}
}

func TestRemoveTransactionAndClearVertex(t *testing.T) {
	nw := smallNetwork(t)
	removed, err := nw.RemoveTransaction(0, itemset.New(1))
	if err != nil || !removed {
		t.Fatalf("RemoveTransaction = (%v, %v)", removed, err)
	}
	if got := nw.Database(0).Len(); got != 1 {
		t.Fatalf("vertex 0 has %d transactions, want 1", got)
	}
	if removed, _ := nw.RemoveTransaction(0, itemset.New(9)); removed {
		t.Fatal("removing an absent transaction reported success")
	}
	if _, err := nw.RemoveTransaction(99, itemset.New(1)); err == nil {
		t.Fatal("RemoveTransaction on a bad vertex did not fail")
	}
	// Tombstone vertex 2: edges 1-2, 2-3 and 0-2 disappear, item 'a' (1)
	// survives on other vertices.
	if err := nw.ClearVertex(2); err != nil {
		t.Fatalf("ClearVertex: %v", err)
	}
	if nw.NumEdges() != 1 {
		t.Fatalf("edges after tombstone = %d, want 1", nw.NumEdges())
	}
	if !nw.Database(2).Empty() {
		t.Fatal("tombstoned vertex database is not empty")
	}
	if err := nw.ClearVertex(99); err == nil {
		t.Fatal("ClearVertex on a bad vertex did not fail")
	}
}
