package dbnet

import (
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// ThemeNetwork is the theme network G_p induced by a pattern p (Section 3.1):
// the subgraph of the database network on the vertices whose database has
// f_i(p) > 0, together with the frequency of p on each such vertex. Vertex
// identifiers are those of the originating database network.
type ThemeNetwork struct {
	// Pattern is the theme p that induced the network.
	Pattern itemset.Itemset
	// Freq maps every vertex of the theme network to f_i(p) > 0.
	Freq map[graph.VertexID]float64
	// Edges are the edges of the database network whose endpoints both belong
	// to the theme network.
	Edges graph.EdgeSet
}

// NumVertices returns the number of vertices of the theme network.
func (tn *ThemeNetwork) NumVertices() int { return len(tn.Freq) }

// NumEdges returns the number of edges of the theme network.
func (tn *ThemeNetwork) NumEdges() int { return tn.Edges.Len() }

// Frequency returns f_v(p) for a vertex of the theme network, or 0 for
// vertices outside it.
func (tn *ThemeNetwork) Frequency(v graph.VertexID) float64 { return tn.Freq[v] }

// ThemeNetwork induces G_p from the full database network: the subgraph on
// the vertices with f_i(p) > 0. The empty pattern induces the whole network
// with frequency 1 on every vertex whose database is non-empty.
func (nw *Network) ThemeNetwork(p itemset.Itemset) *ThemeNetwork {
	freq := nw.patternFrequencies(p, nil)
	return nw.themeNetworkFromFreq(p, freq)
}

// ThemeNetworkWithin induces the theme network of p restricted to the given
// edge set: only vertices incident to within and with f_i(p) > 0 are
// considered, and only edges of within whose endpoints both qualify are kept.
// This is the restricted induction used by TCFI (Section 5.3) and by the
// TC-Tree build (Section 6.2), where within is the intersection of the
// maximal pattern trusses of two sub-patterns.
func (nw *Network) ThemeNetworkWithin(p itemset.Itemset, within graph.EdgeSet) *ThemeNetwork {
	if within == nil {
		return nw.ThemeNetwork(p)
	}
	candidates := within.Vertices()
	freq := nw.patternFrequencies(p, candidates)
	tn := &ThemeNetwork{Pattern: p.Clone(), Freq: freq, Edges: make(graph.EdgeSet)}
	for _, e := range within {
		if _, ok := freq[e.U]; !ok {
			continue
		}
		if _, ok := freq[e.V]; !ok {
			continue
		}
		tn.Edges.Add(e)
	}
	return tn
}

// patternFrequencies computes f_i(p) for the candidate vertices (or for all
// plausible vertices when candidates is nil) and returns the map of vertices
// with strictly positive frequency.
func (nw *Network) patternFrequencies(p itemset.Itemset, candidates []graph.VertexID) map[graph.VertexID]float64 {
	freq := make(map[graph.VertexID]float64)
	switch {
	case p.Len() == 0:
		if candidates == nil {
			for v := 0; v < nw.NumVertices(); v++ {
				if !nw.dbs[v].Empty() {
					freq[graph.VertexID(v)] = 1
				}
			}
		} else {
			for _, v := range candidates {
				if !nw.dbs[v].Empty() {
					freq[v] = 1
				}
			}
		}
	case p.Len() == 1 && candidates == nil:
		for _, vf := range nw.ItemVertices(p[0]) {
			freq[vf.Vertex] = vf.Frequency
		}
	default:
		if candidates == nil {
			candidates = nw.candidateVertices(p)
		}
		for _, v := range candidates {
			if f := nw.dbs[v].Frequency(p); f > 0 {
				freq[v] = f
			}
		}
	}
	return freq
}

// candidateVertices returns the vertices whose databases contain every item of
// p (a necessary condition for f_i(p) > 0), computed by intersecting the
// per-item vertex lists, rarest item first.
func (nw *Network) candidateVertices(p itemset.Itemset) []graph.VertexID {
	lists := make([][]VertexFrequency, 0, p.Len())
	for _, it := range p {
		l := nw.ItemVertices(it)
		if len(l) == 0 {
			return nil
		}
		lists = append(lists, l)
	}
	// Start from the rarest item to keep intersections small.
	minIdx := 0
	for i, l := range lists {
		if len(l) < len(lists[minIdx]) {
			minIdx = i
		}
	}
	current := make([]graph.VertexID, 0, len(lists[minIdx]))
	for _, vf := range lists[minIdx] {
		current = append(current, vf.Vertex)
	}
	for i, l := range lists {
		if i == minIdx {
			continue
		}
		verts := make([]graph.VertexID, 0, len(l))
		for _, vf := range l {
			verts = append(verts, vf.Vertex)
		}
		current = graph.IntersectSorted(current, verts)
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

// themeNetworkFromFreq assembles the theme network from the positive-frequency
// vertex map by collecting the database-network edges between those vertices.
func (nw *Network) themeNetworkFromFreq(p itemset.Itemset, freq map[graph.VertexID]float64) *ThemeNetwork {
	tn := &ThemeNetwork{Pattern: p.Clone(), Freq: freq, Edges: make(graph.EdgeSet)}
	for v := range freq {
		for _, w := range nw.g.Neighbors(v) {
			if w <= v {
				continue
			}
			if _, ok := freq[w]; ok {
				tn.Edges.Add(graph.EdgeOf(v, w))
			}
		}
	}
	return tn
}
