package engine

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"themecomm/internal/delta"
	"themecomm/internal/itemset"
	"themecomm/internal/obs"
	"themecomm/internal/tctree"
)

// captureRecorder records observations into a slice — the injection seam
// exercised the way a test (or a learned-cost planner) would use it.
type captureRecorder struct {
	mu  sync.Mutex
	obs []obs.QueryObservation
}

func (r *captureRecorder) RecordQuery(_ context.Context, o obs.QueryObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = append(r.obs, o)
}

func (r *captureRecorder) all() []obs.QueryObservation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]obs.QueryObservation(nil), r.obs...)
}

func TestRecorderObservations(t *testing.T) {
	tree := buildTestTree(t, 7)
	rec := &captureRecorder{}
	eng, err := New(tree, Options{CacheSize: 8, Recorder: rec})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	res := mustQueryByAlpha(t, eng, 0.2) // miss
	mustQueryByAlpha(t, eng, 0.2)        // hit

	got := rec.all()
	if len(got) != 2 {
		t.Fatalf("observations = %d, want 2", len(got))
	}
	miss, hit := got[0], got[1]
	if miss.CacheHit || miss.Err {
		t.Fatalf("first query observed as hit/err: %+v", miss)
	}
	if miss.Pattern != "*" {
		t.Fatalf("full query pattern label = %q, want *", miss.Pattern)
	}
	if miss.Alpha != 0.2 || miss.Shards != eng.NumShards() {
		t.Fatalf("miss identity = %+v", miss)
	}
	if miss.Total <= 0 || miss.Execute <= 0 || miss.Merge < 0 || miss.Plan < 0 {
		t.Fatalf("miss stage timings not populated: %+v", miss)
	}
	if miss.Total < miss.Plan+miss.Execute+miss.Merge {
		t.Fatalf("stages exceed total: %+v", miss)
	}
	if miss.Detail == nil {
		t.Fatalf("miss carries no Detail hook")
	}
	report, ok := miss.Detail().(*ExplainReport)
	if !ok {
		t.Fatalf("Detail() = %T, want *ExplainReport", miss.Detail())
	}
	if report.RetrievedNodes != res.RetrievedNodes || len(report.Tasks) != miss.Shards {
		t.Fatalf("Detail report does not describe the execution: %+v", report)
	}

	if !hit.CacheHit {
		t.Fatalf("second query not observed as cache hit: %+v", hit)
	}
	if hit.Detail != nil {
		t.Fatalf("cache hit carries a Detail hook")
	}

	// A pattern query renders its canonicalized itemset, not "*".
	mustQuery(t, eng, itemset.New(eng.table.Load().items[0]), 0.2)
	got = rec.all()
	if p := got[len(got)-1].Pattern; p == "*" || p == "" {
		t.Fatalf("pattern label = %q, want rendered itemset", p)
	}
}

func TestRecorderObservesLoadError(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, dir := writeShardedTestTree(t, tree)
	victim := tree.Root().Children[0].Item
	entry, ok := idx.Entry(victim)
	if !ok {
		t.Fatalf("no manifest entry for %d", victim)
	}
	path := filepath.Join(dir, entry.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	rec := &captureRecorder{}
	eng, err := NewLazy(idx, Options{Recorder: rec})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	if _, err := eng.Query(itemset.New(victim), 0.1); err == nil {
		t.Fatalf("query over corrupt shard should fail")
	}
	got := rec.all()
	if len(got) != 1 || !got[0].Err {
		t.Fatalf("failed query not observed as error: %+v", got)
	}
}

// TestStatsRace hammers Stats against concurrent queries and deltas; run
// under -race it checks the documented guarantee that Stats never tears the
// shard table and needs no locks.
func TestStatsRace(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nw := randomNetwork(rng, 16, 40, 5, 4)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	eng, err := New(tree, Options{CacheSize: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // queries
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			_, _ = eng.Query(nil, 0.1+float64(i%5)/10)
		}
	}()
	go func() { // deltas
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			d := &delta.Delta{AddTransactions: []delta.VertexTransaction{
				{Vertex: 0, Tx: itemset.New(itemset.Item(i % 5))},
			}}
			if _, err := eng.ApplyDelta(nw, d); err != nil {
				t.Errorf("ApplyDelta: %v", err)
				return
			}
		}
	}()
	go func() { // stats
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			s := eng.Stats()
			if s.Shards != len(s.ShardResidency) {
				t.Errorf("torn snapshot: Shards=%d but %d residency entries", s.Shards, len(s.ShardResidency))
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		eng.Stats()
	}
	close(done)
	wg.Wait()
}

// BenchmarkQueryRecorded measures the recorder's hot-path overhead against
// BenchmarkQueryUnrecorded (acceptance: <5%). The observer is a full
// obs.Observer with a slow-query threshold no benchmark query reaches, so
// the measured cost is the real production path: observation build + two
// histogram observes + counter.
func BenchmarkQueryRecorded(b *testing.B)   { benchmarkQuery(b, true) }
func BenchmarkQueryUnrecorded(b *testing.B) { benchmarkQuery(b, false) }

func benchmarkQuery(b *testing.B, recorded bool) {
	rng := rand.New(rand.NewSource(3))
	nw := randomNetwork(rng, 48, 160, 8, 4)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	opts := Options{} // no cache: every query executes
	if recorded {
		opts.Recorder = obs.NewObserver(obs.ObserverOptions{SlowThreshold: time.Hour})
	}
	eng, err := New(tree, opts)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(nil, 0.3); err != nil {
			b.Fatalf("Query: %v", err)
		}
	}
}
