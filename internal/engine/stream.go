package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"themecomm/internal/core"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
	"themecomm/internal/trace"
)

// This file is the streaming half of the executor: instead of materializing
// every matching community across all scheduled shards and merging at the
// end (executePlan), a Stream pulls results shard by shard through a
// cursor, so per-query memory is bounded by one shard's answer rather than
// the whole result set.
//
// Two modes share the machinery:
//
//   - plain streams (StreamQuery) yield communities in exactly the
//     materializing Query order — shards in ascending root-item order, each
//     shard in breadth-first truss order — opening each shard only when the
//     previous one is drained;
//   - ranked streams (StreamTopK) yield communities in exactly the
//     materializing TopK order. Each opened shard contributes a sorted
//     per-shard cursor and a k-way heap keyed by lessRanked merges them.
//     Shards open lazily in descending α*-bound order: a shard's α* bound
//     caps the cohesion of every community it can contain, so once the heap
//     head's cohesion strictly beats the best unopened bound, the remaining
//     shards provably cannot contribute an earlier community — when the
//     caller stops at k results, those shards are never loaded or traversed
//     (the engine's ShardsShortCircuited counter tallies them at Close).
//
// Streams bypass the result cache in both directions: a stream is the
// low-memory path, and buffering its whole answer to cache it would defeat
// the point. Repeated identical queries belong on Query/TopK.
//
// Concurrency: a stream does NOT hold the engine's update lock between
// pulls. It captures the shard table and index epoch at creation; every
// shard open re-acquires the read lock and, on lazy engines, re-checks the
// epoch — if an ApplyDelta or ReloadShard swapped the index mid-stream, the
// open fails with ErrEpochChanged rather than mixing pre- and post-delta
// shards. Eager engines keep serving the snapshot: their captured subtrees
// are immutable, so an open stream completes entirely from the pre-delta
// index.

// ErrEpochChanged reports that the index epoch moved (ApplyDelta,
// ReloadShard) while a stream was open on a lazy engine: the remaining
// shards would be read from post-swap files, so the stream fails cleanly
// instead of mixing epochs. Callers re-issue the query; HTTP surfaces map it
// to 410 Gone.
var ErrEpochChanged = errors.New("engine: index epoch changed mid-stream; re-issue the query")

// streamTask is one unopened shard of a stream, carrying the catalogue
// bound the ranked mode orders and short-circuits by.
type streamTask struct {
	item     itemset.Item
	maxAlpha float64
}

// shardCursor is one opened shard's contribution: ranked communities in
// lessRanked order (ranked mode) or plain communities in traversal order.
type shardCursor struct {
	item   itemset.Item
	ranked []RankedCommunity
	comms  []core.Community
	pos    int
}

func (c *shardCursor) head() *RankedCommunity { return &c.ranked[c.pos] }

// StreamStats is a snapshot of a stream's execution counters. Counters grow
// as the stream is pulled; ShardsShortCircuited is final only after Close.
type StreamStats struct {
	// Epoch is the index epoch the stream executes against.
	Epoch uint64 `json:"epoch"`
	// Emitted counts the communities the stream has yielded.
	Emitted int `json:"emitted"`
	// RetrievedNodes and VisitedNodes mirror QueryResult: trusses retrieved
	// and nodes inspected across the opened shards (α*-skipped shards
	// contribute their one synthesized root visit, like the materializing
	// path).
	RetrievedNodes int `json:"retrievedNodes"`
	VisitedNodes   int `json:"visitedNodes"`
	// ShardsPlanned counts the shards the plan scheduled (skips excluded);
	// ShardsOpened counts those actually traversed so far; Loads counts the
	// disk loads those opens performed; ShardsSkippedAlpha counts shards the
	// planner pruned from the α* bound alone.
	ShardsPlanned      int `json:"shardsPlanned"`
	ShardsOpened       int `json:"shardsOpened"`
	Loads              int `json:"loads"`
	ShardsSkippedAlpha int `json:"shardsSkippedAlpha"`
	// ShardsShortCircuited counts scheduled shards the stream never opened:
	// the caller stopped (or the k bound was reached) while the α* bounds of
	// the remaining shards provably could not improve the answer. Final
	// after Close.
	ShardsShortCircuited int `json:"shardsShortCircuited"`
}

// Stream is a pull-based cursor over a query answer. It is NOT safe for
// concurrent use; one goroutine pulls Next until done (nil, nil) and then
// must Close exactly once — Close is what credits the engine's
// short-circuit accounting and emits the recorder observation.
type Stream struct {
	e     *Engine
	ctx   context.Context
	table *shardTable
	epoch uint64

	alpha   float64
	pattern itemset.Itemset // traversal pattern (eff, or items for full)
	eff     itemset.Itemset
	full    bool
	ranked  bool
	k       int

	pending []streamTask   // unopened shards, in open order
	heap    []*shardCursor // ranked-mode merge heap, keyed by head()
	cur     *shardCursor   // plain-mode current shard

	stats StreamStats

	err    error
	closed bool

	start   time.Time
	planDur time.Duration
	execDur time.Duration
}

// StreamQuery answers (q, alphaQ) as a pull-based stream of communities in
// exactly the order Query(q, alphaQ).Communities() returns them, opening
// each shard only when the previous one is drained — per-query memory is
// bounded by the largest single shard's answer. A nil q means every item.
// The result cache is bypassed in both directions. See Stream for the
// pulling contract.
func (e *Engine) StreamQuery(ctx context.Context, q itemset.Itemset, alphaQ float64) (*Stream, error) {
	return e.newStream(ctx, q, alphaQ, false, 0)
}

// StreamTopK answers (q, alphaQ) as a pull-based stream of ranked
// communities in exactly the order TopK(q, alphaQ, k) returns them. Shards
// open lazily in descending α*-bound order and the stream ends after k
// communities (k <= 0 means every community): shards whose bound cannot
// beat the already-emitted answer are never loaded or traversed. See
// Stream.
func (e *Engine) StreamTopK(ctx context.Context, q itemset.Itemset, alphaQ float64, k int) (*Stream, error) {
	return e.newStream(ctx, q, alphaQ, true, k)
}

func (e *Engine) newStream(ctx context.Context, q itemset.Itemset, alphaQ float64, ranked bool, k int) (*Stream, error) {
	if ctx == nil {
		//lint:ignore ctxflow nil-ctx hardening for direct embedders of the engine; every serving path passes the request context
		ctx = context.Background()
	}
	start := time.Now()
	e.streams.Add(1)
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	t := e.table.Load()
	eff, full := canonical(t, q)
	st := &Stream{
		e: e, ctx: ctx, table: t, epoch: e.epoch.Load(),
		alpha: alphaQ, eff: eff, full: full, ranked: ranked, k: k,
		start: start,
	}
	st.stats.Epoch = st.epoch
	planStart := time.Now()
	plan := e.planRelevant(t, eff, alphaQ)
	st.pattern = plan.Pattern
	if st.pattern == nil {
		st.pattern = t.items
	}
	for _, task := range plan.Tasks {
		if task.Decision == DecisionSkipAlpha {
			// Mirror the materializing executor: a pruned shard contributes
			// the one root visit the traversal would have made before finding
			// the root truss empty.
			st.stats.VisitedNodes++
			st.stats.ShardsSkippedAlpha++
			e.skipped.Add(1)
			continue
		}
		st.pending = append(st.pending, streamTask{item: task.Item, maxAlpha: task.MaxAlpha})
	}
	st.stats.ShardsPlanned = len(st.pending)
	if ranked {
		// Open order: descending α* bound, so the cohesion-ordered merge can
		// stop opening as soon as the heap head beats the best remaining
		// bound. Ties break on the root item for determinism.
		sort.SliceStable(st.pending, func(i, j int) bool {
			a, b := st.pending[i], st.pending[j]
			if a.maxAlpha != b.maxAlpha {
				return a.maxAlpha > b.maxAlpha
			}
			return a.item < b.item
		})
	}
	st.planDur = time.Since(planStart)
	return st, nil
}

// Next returns the next community of the stream, or (nil, nil) when the
// stream is exhausted (in ranked mode, also once k communities have been
// emitted). In plain mode only the Community field of the yielded value is
// set; ranked mode fills the ranking annotations exactly like TopK. An
// error poisons the stream: every later Next returns it again.
func (st *Stream) Next() (*RankedCommunity, error) {
	if st.err != nil {
		return nil, st.err
	}
	if st.closed {
		return nil, fmt.Errorf("engine: Next on a closed stream")
	}
	var rc *RankedCommunity
	var err error
	if st.ranked {
		rc, err = st.nextRanked()
	} else {
		rc, err = st.nextPlain()
	}
	if err != nil {
		st.err = err
		return nil, err
	}
	if rc != nil {
		st.stats.Emitted++
	}
	return rc, nil
}

// nextRanked advances the cohesion-ordered merge: open pending shards while
// their α* bound could still beat the current heap head, then emit the head.
func (st *Stream) nextRanked() (*RankedCommunity, error) {
	if st.k > 0 && st.stats.Emitted >= st.k {
		return nil, nil
	}
	for {
		if len(st.heap) == 0 {
			if len(st.pending) == 0 {
				return nil, nil
			}
			if err := st.openNext(); err != nil {
				return nil, err
			}
			continue
		}
		if len(st.pending) > 0 && st.pending[0].maxAlpha >= st.heap[0].head().Cohesion {
			// An unopened shard could still hold a community that orders
			// before the head: its bound reaches (or ties) the head's
			// cohesion, and a tie can win on size. Open it first.
			if err := st.openNext(); err != nil {
				return nil, err
			}
			continue
		}
		top := st.heap[0]
		rc := top.head()
		top.pos++
		if top.pos == len(top.ranked) {
			n := len(st.heap) - 1
			st.heap[0] = st.heap[n]
			st.heap = st.heap[:n]
		}
		st.siftDown(0)
		return rc, nil
	}
}

// nextPlain drains shards in ascending root-item order, opening each on
// demand.
func (st *Stream) nextPlain() (*RankedCommunity, error) {
	for {
		if st.cur != nil && st.cur.pos < len(st.cur.comms) {
			c := st.cur.comms[st.cur.pos]
			st.cur.pos++
			return &RankedCommunity{Community: c}, nil
		}
		st.cur = nil
		if len(st.pending) == 0 {
			return nil, nil
		}
		if err := st.openNext(); err != nil {
			return nil, err
		}
	}
}

// openNext opens the first pending shard: acquire (loading it on a lazy
// engine), traverse, and — in ranked mode — rank its communities and push
// the cursor onto the merge heap. The open holds the engine's update lock
// for reading and re-checks the index epoch on lazy engines, so a stream
// never mixes pre- and post-delta shards; it also takes a traversal slot,
// so the engine-wide worker bound holds across streams and queries alike.
func (st *Stream) openNext() error {
	task := st.pending[0]
	st.pending = st.pending[1:]
	e := st.e
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	if e.idx != nil && e.epoch.Load() != st.epoch {
		return ErrEpochChanged
	}
	s, ok := st.table.lookup(task.item)
	if !ok {
		return fmt.Errorf("engine: shard %d vanished from the stream's table", task.item)
	}
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	start := time.Now()
	view, loaded, err := e.acquire(s)
	if err != nil {
		return fmt.Errorf("engine: shard %d: %w", s.item, err)
	}
	sr := answerResult(view.QuerySub(st.pattern, st.alpha))
	cur := &shardCursor{item: s.item}
	if st.ranked {
		cur.ranked = st.rankShard(view, sr)
		if len(cur.ranked) > 0 {
			st.heap = append(st.heap, cur)
			st.siftUp(len(st.heap) - 1)
		}
	} else {
		for _, tr := range sr.trusses {
			for _, comp := range tr.Communities() {
				cur.comms = append(cur.comms, core.Community{Pattern: tr.Pattern, Edges: comp})
			}
		}
		st.cur = cur
	}
	st.stats.ShardsOpened++
	if loaded {
		st.stats.Loads++
	}
	st.stats.VisitedNodes += sr.visited
	st.stats.RetrievedNodes += len(sr.trusses)
	st.execDur += time.Since(start)
	return nil
}

// rankShard annotates and orders one shard's trusses exactly like
// TopKWithResult does globally: each community's cohesion is the minimum
// removal threshold over its edges in the pattern's decomposition, and the
// shard's list is sorted by lessRanked. Patterns of distinct shards start
// with distinct root items, so merging per-shard sorted lists under the same
// comparator reproduces the global sorted order byte for byte.
func (st *Stream) rankShard(view tctree.ShardView, sr shardResult) []RankedCommunity {
	ranked := make([]RankedCommunity, 0, len(sr.trusses))
	for _, tr := range sr.trusses {
		removalAlpha, ok := view.RemovalAlphas(tr.Pattern)
		if !ok {
			// Cannot happen on a consistent tree; skip rather than panic,
			// matching TopKWithResult.
			continue
		}
		for _, comp := range tr.Communities() {
			cohesion := 0.0
			first := true
			for key := range comp {
				if a := removalAlpha[key]; first || a < cohesion {
					cohesion = a
					first = false
				}
			}
			ranked = append(ranked, RankedCommunity{
				Community: core.Community{Pattern: tr.Pattern, Edges: comp},
				Cohesion:  cohesion,
				Vertices:  len(comp.Vertices()),
				Edges:     comp.Len(),
			})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return lessRanked(&ranked[i], &ranked[j]) })
	return ranked
}

// cursorLess orders heap cursors by their head community; lessRanked is a
// strict total order across shards (patterns of distinct shards differ in
// their first item), the root item tiebreak is belt and braces.
func cursorLess(a, b *shardCursor) bool {
	if lessRanked(a.head(), b.head()) {
		return true
	}
	if lessRanked(b.head(), a.head()) {
		return false
	}
	return a.item < b.item
}

func (st *Stream) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !cursorLess(st.heap[i], st.heap[parent]) {
			return
		}
		st.heap[i], st.heap[parent] = st.heap[parent], st.heap[i]
		i = parent
	}
}

func (st *Stream) siftDown(i int) {
	n := len(st.heap)
	for {
		best := i
		if l := 2*i + 1; l < n && cursorLess(st.heap[l], st.heap[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && cursorLess(st.heap[r], st.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		st.heap[i], st.heap[best] = st.heap[best], st.heap[i]
		i = best
	}
}

// Stats snapshots the stream's execution counters.
func (st *Stream) Stats() StreamStats { return st.stats }

// Err returns the error that poisoned the stream, if any.
func (st *Stream) Err() error { return st.err }

// Close finalizes the stream: the scheduled shards it never opened are
// credited to the engine's short-circuit counter — on a lazy engine those
// shards were never even read from disk — and, when the engine is observed,
// one QueryObservation is emitted with the plan/execute/stream stage split.
// Close is idempotent; Next after Close errors.
func (st *Stream) Close() {
	if st.closed {
		return
	}
	st.closed = true
	st.stats.ShardsShortCircuited = len(st.pending)
	e := st.e
	if n := len(st.pending); n > 0 {
		e.shortCircuited.Add(uint64(n))
	}
	if e.recorder == nil {
		return
	}
	stats := st.stats
	total := time.Since(st.start)
	e.recorder.RecordQuery(st.ctx, trace.QueryObservation{
		Network:        e.cacheNS,
		Pattern:        patternLabel(st.eff, st.full),
		Alpha:          st.alpha,
		Err:            st.err != nil,
		Shards:         stats.ShardsPlanned + stats.ShardsSkippedAlpha,
		SkippedShards:  stats.ShardsSkippedAlpha,
		LoadedShards:   stats.Loads,
		ShortCircuited: stats.ShardsShortCircuited,
		Plan:           st.planDur,
		Execute:        st.execDur,
		Stream:         total - st.planDur,
		Total:          total,
		Detail:         func() any { return st.streamReport(stats) },
	})
}

// streamReport renders the stream's Explain-shaped detail for the slow-query
// log: the per-shard schedule with what was opened, skipped and
// short-circuited.
func (st *Stream) streamReport(stats StreamStats) *ExplainReport {
	return &ExplainReport{
		Pattern:        st.eff,
		Full:           st.full,
		Alpha:          st.alpha,
		Planner:        st.e.Planner(),
		Lazy:           st.e.Lazy(),
		Workers:        st.e.workers,
		Shards:         stats.ShardsPlanned + stats.ShardsSkippedAlpha,
		SkippedAlpha:   stats.ShardsSkippedAlpha,
		Loaded:         stats.Loads,
		ShortCircuited: stats.ShardsShortCircuited,
		RetrievedNodes: stats.RetrievedNodes,
		VisitedNodes:   stats.VisitedNodes,
	}
}
