package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// This file proves the streaming executor against the materializing one.
// TestStreamPropertyParity is the central property harness: across hundreds
// of generated (network, pattern, α, k, engine-mode) cases, the streamed
// answer must be byte-identical — order included — to the materialized one.
// The remaining tests pin the claims parity alone cannot: top-k early
// termination provably skips shard loads (ShardsShortCircuited > 0), and a
// stream crossed by ApplyDelta either fails cleanly (lazy) or completes from
// its pre-delta snapshot (eager) — never mixing epochs.

// drainStream pulls the stream to exhaustion.
func drainStream(t *testing.T, st *Stream) []RankedCommunity {
	t.Helper()
	var out []RankedCommunity
	for {
		rc, err := st.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rc == nil {
			return out
		}
		out = append(out, *rc)
	}
}

// assertPlainParity compares a drained StreamQuery answer against the
// materializing Query answer: same communities, same order, same traversal
// counters.
func assertPlainParity(t *testing.T, got []RankedCommunity, stats StreamStats, want *tctree.QueryResult) {
	t.Helper()
	wantComms := want.Communities()
	if len(got) != len(wantComms) {
		t.Fatalf("streamed %d communities, materialized %d", len(got), len(wantComms))
	}
	for i := range got {
		if !got[i].Community.Pattern.Equal(wantComms[i].Pattern) {
			t.Fatalf("community %d: streamed pattern %v, materialized %v",
				i, got[i].Community.Pattern, wantComms[i].Pattern)
		}
		if !got[i].Community.Edges.Equal(wantComms[i].Edges) {
			t.Fatalf("community %d (%v): edge sets differ", i, got[i].Community.Pattern)
		}
	}
	if stats.RetrievedNodes != want.RetrievedNodes || stats.VisitedNodes != want.VisitedNodes {
		t.Fatalf("stream counters retrieved=%d visited=%d, materialized retrieved=%d visited=%d",
			stats.RetrievedNodes, stats.VisitedNodes, want.RetrievedNodes, want.VisitedNodes)
	}
}

// assertRankedParity compares a drained StreamTopK answer against the
// materializing TopK answer position by position: pattern, edge set, and
// every ranking annotation.
func assertRankedParity(t *testing.T, got, want []RankedCommunity) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("streamed %d ranked communities, materialized %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if !g.Community.Pattern.Equal(w.Community.Pattern) {
			t.Fatalf("rank %d: streamed pattern %v, materialized %v", i, g.Community.Pattern, w.Community.Pattern)
		}
		if !g.Community.Edges.Equal(w.Community.Edges) {
			t.Fatalf("rank %d (%v): edge sets differ", i, g.Community.Pattern)
		}
		if g.Cohesion != w.Cohesion || g.Vertices != w.Vertices || g.Edges != w.Edges {
			t.Fatalf("rank %d: streamed (cohesion=%g v=%d e=%d), materialized (cohesion=%g v=%d e=%d)",
				i, g.Cohesion, g.Vertices, g.Edges, w.Cohesion, w.Vertices, w.Edges)
		}
	}
}

// TestStreamPropertyParity is the property-based parity harness: random
// networks, random patterns, random thresholds and ks, eager and lazy
// engines — the streamed answer must equal the materialized answer byte for
// byte, order included, in well over 100 generated cases.
func TestStreamPropertyParity(t *testing.T) {
	cases := 0
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 101))
		nw := randomNetwork(rng, 14, 36, 5, 3)
		tree := tctree.Build(nw, tctree.BuildOptions{})
		if tree.NumNodes() == 0 {
			continue
		}
		full := make(itemset.Itemset, 0, len(tree.Root().Children))
		for _, c := range tree.Root().Children {
			full = append(full, c.Item)
		}

		// Random query mix: every item, single shards, random subsets, and a
		// pattern with an unindexed item.
		queries := []itemset.Itemset{nil, itemset.New(full[rng.Intn(len(full))], 999)}
		for trial := 0; trial < 3; trial++ {
			var q itemset.Itemset
			for _, it := range full {
				if rng.Intn(2) == 0 {
					q = q.Add(it)
				}
			}
			queries = append(queries, q)
		}
		alphas := []float64{0, rng.Float64() * tree.MaxAlpha(), tree.MaxAlpha() + 1}
		ks := []int{0, 1, 1 + rng.Intn(6)}

		idx, _ := writeShardedTestTree(t, tree)
		eager, err := New(tree, Options{Workers: 2})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		lazy, err := NewLazy(idx, Options{Workers: 2, MaxResidentShards: 2})
		if err != nil {
			t.Fatalf("NewLazy: %v", err)
		}

		for _, eng := range []*Engine{eager, lazy} {
			for _, q := range queries {
				for _, alpha := range alphas {
					// Plain: stream order must equal Query order.
					want := mustQuery(t, eng, q, alpha)
					st, err := eng.StreamQuery(context.Background(), q, alpha)
					if err != nil {
						t.Fatalf("StreamQuery: %v", err)
					}
					got := drainStream(t, st)
					stats := st.Stats()
					st.Close()
					assertPlainParity(t, got, stats, want)
					cases++

					// Ranked: stream order must equal TopK order for every k.
					for _, k := range ks {
						_, wantRanked, err := eng.TopKWithResult(q, alpha, k)
						if err != nil {
							t.Fatalf("TopKWithResult: %v", err)
						}
						rst, err := eng.StreamTopK(context.Background(), q, alpha, k)
						if err != nil {
							t.Fatalf("StreamTopK: %v", err)
						}
						gotRanked := drainStream(t, rst)
						rst.Close()
						assertRankedParity(t, gotRanked, wantRanked)
						cases++
					}
				}
			}
		}
	}
	if cases < 100 {
		t.Fatalf("property harness exercised only %d cases, want at least 100", cases)
	}
	t.Logf("streaming/materializing parity held across %d generated cases", cases)
}

// TestStreamTopKShortCircuits is the early-termination proof: a selective
// top-k stream must leave shards unopened — never loaded from disk on a lazy
// engine — and account for them in ShardsShortCircuited, both on the stream
// and on the engine's counters.
func TestStreamTopKShortCircuits(t *testing.T) {
	// Scan a few generated networks for one whose shard α* bounds actually
	// spread (all-equal bounds force a k=1 stream to open everything).
	for seed := int64(1); seed <= 20; seed++ {
		tree := buildTestTree(t, seed)
		idx, _ := writeShardedTestTree(t, tree)
		eng, err := NewLazy(idx, Options{})
		if err != nil {
			t.Fatalf("NewLazy: %v", err)
		}
		st, err := eng.StreamTopK(context.Background(), nil, 0, 1)
		if err != nil {
			t.Fatalf("StreamTopK: %v", err)
		}
		got := drainStream(t, st)
		st.Close()
		stats := st.Stats()
		if stats.ShardsShortCircuited == 0 {
			continue
		}

		// Found a selective case: pin every accounting consequence.
		if len(got) != 1 {
			t.Fatalf("k=1 stream emitted %d communities", len(got))
		}
		if stats.ShardsOpened+stats.ShardsShortCircuited != stats.ShardsPlanned {
			t.Fatalf("opened %d + short-circuited %d != planned %d",
				stats.ShardsOpened, stats.ShardsShortCircuited, stats.ShardsPlanned)
		}
		if stats.Loads != stats.ShardsOpened {
			t.Fatalf("cold lazy engine loaded %d shards but opened %d", stats.Loads, stats.ShardsOpened)
		}
		if stats.Loads >= stats.ShardsPlanned {
			t.Fatalf("every planned shard was loaded; early termination saved nothing")
		}
		es := eng.Stats()
		if es.ShardsShortCircuited != uint64(stats.ShardsShortCircuited) {
			t.Fatalf("engine ShardsShortCircuited = %d, stream says %d",
				es.ShardsShortCircuited, stats.ShardsShortCircuited)
		}
		if es.Streams != 1 {
			t.Fatalf("engine Streams = %d, want 1", es.Streams)
		}
		if es.LazyLoads != uint64(stats.Loads) {
			t.Fatalf("engine LazyLoads = %d, stream loaded %d", es.LazyLoads, stats.Loads)
		}

		// The full ranking must still agree with the materializing path on
		// what the single best community is.
		ranked, err := eng.TopK(nil, 0, 1)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		if len(ranked) != 1 || ranked[0].Cohesion != got[0].Cohesion ||
			!ranked[0].Community.Pattern.Equal(got[0].Community.Pattern) {
			t.Fatalf("short-circuited answer differs from materialized top-1")
		}
		return
	}
	t.Fatalf("no seed in 1..20 produced a short-circuiting top-k stream")
}

// TestStreamMidDeltaLazy: a lazy stream crossed by ApplyDelta must fail with
// ErrEpochChanged at its next shard open — post-delta shard files must never
// leak into a pre-delta answer.
func TestStreamMidDeltaLazy(t *testing.T) {
	const items = 5
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nw := randomNetwork(rng, 14, 34, items, 3)
		tree := tctree.Build(nw, tctree.BuildOptions{})
		if tree.NumNodes() == 0 || len(tree.Root().Children) < 2 {
			continue
		}
		idx, _ := writeShardedTestTree(t, tree)
		eng, err := NewLazy(idx, Options{})
		if err != nil {
			t.Fatalf("NewLazy: %v", err)
		}

		st, err := eng.StreamQuery(context.Background(), nil, 0)
		if err != nil {
			t.Fatalf("StreamQuery: %v", err)
		}
		defer st.Close()
		if st.Stats().ShardsPlanned < 2 {
			continue // one open answers everything; no mid-stream open to poison
		}
		// First pull opens the first shard; later shards are still pending.
		if _, err := st.Next(); err != nil {
			t.Fatalf("first Next: %v", err)
		}

		// The swap must not block on the open stream (streams do not hold the
		// update lock between pulls).
		if _, err := eng.ApplyDelta(nw, randomDeltaFor(rng, nw, items)); err != nil {
			t.Fatalf("ApplyDelta: %v", err)
		}

		for {
			rc, err := st.Next()
			if err != nil {
				if !errors.Is(err, ErrEpochChanged) {
					t.Fatalf("mid-delta stream failed with %v, want ErrEpochChanged", err)
				}
				// Poisoned: every later pull repeats the failure.
				if _, again := st.Next(); !errors.Is(again, ErrEpochChanged) {
					t.Fatalf("poisoned stream returned %v on re-pull", again)
				}
				return
			}
			if rc == nil {
				t.Fatalf("lazy stream drained to completion across an epoch swap")
			}
		}
	}
	t.Fatalf("no seed in 1..8 produced a multi-shard lazy stream")
}

// TestStreamMidDeltaEager: an eager stream crossed by ApplyDelta completes
// from its pre-delta snapshot — the captured subtrees are immutable — and
// the drained answer equals the answer materialized before the delta.
func TestStreamMidDeltaEager(t *testing.T) {
	const items = 5
	rng := rand.New(rand.NewSource(3))
	nw := randomNetwork(rng, 14, 34, items, 3)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if tree.NumNodes() == 0 {
		t.Fatal("empty tree; pick another seed")
	}
	eng, err := New(tree, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	preDelta := mustQueryByAlpha(t, eng, 0)
	st, err := eng.StreamQuery(context.Background(), nil, 0)
	if err != nil {
		t.Fatalf("StreamQuery: %v", err)
	}
	defer st.Close()
	first, err := st.Next()
	if err != nil || first == nil {
		t.Fatalf("first Next = (%v, %v), want a community", first, err)
	}

	if _, err := eng.ApplyDelta(nw, randomDeltaFor(rng, nw, items)); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}

	rest := drainStream(t, st)
	got := append([]RankedCommunity{*first}, rest...)
	stats := st.Stats()
	assertPlainParity(t, got, stats, preDelta)
	if stats.Epoch == eng.IndexEpoch() {
		t.Fatalf("delta did not move the epoch; the test proved nothing")
	}

	// A stream opened after the swap serves the new index.
	post, err := eng.StreamQuery(context.Background(), nil, 0)
	if err != nil {
		t.Fatalf("post-delta StreamQuery: %v", err)
	}
	defer post.Close()
	assertPlainParity(t, drainStream(t, post), post.Stats(), mustQueryByAlpha(t, eng, 0))
}

// TestStreamRecorderObservation: closing an observed stream emits one
// QueryObservation with the stream stage filled and the short-circuit tally.
func TestStreamRecorderObservation(t *testing.T) {
	tree := buildTestTree(t, 7)
	rec := &captureRecorder{}
	eng, err := New(tree, Options{Recorder: rec})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := eng.StreamTopK(context.Background(), nil, 0, 1)
	if err != nil {
		t.Fatalf("StreamTopK: %v", err)
	}
	drainStream(t, st)
	st.Close()
	st.Close() // idempotent: must not double-record

	got := rec.all()
	if len(got) != 1 {
		t.Fatalf("observations = %d, want 1", len(got))
	}
	o := got[0]
	if o.Pattern != "*" || o.Err {
		t.Fatalf("observation identity = %+v", o)
	}
	if o.Stream <= 0 || o.Total < o.Stream {
		t.Fatalf("stream stage = %v (total %v), want positive and within total", o.Stream, o.Total)
	}
	if o.ShortCircuited != st.Stats().ShardsShortCircuited {
		t.Fatalf("observed ShortCircuited = %d, stream says %d", o.ShortCircuited, st.Stats().ShardsShortCircuited)
	}
}

// TestStreamResultCacheBypass: streams neither read nor write the result
// cache.
func TestStreamResultCacheBypass(t *testing.T) {
	tree := buildTestTree(t, 7)
	eng, err := New(tree, Options{CacheSize: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mustQueryByAlpha(t, eng, 0) // populate the cache
	st, err := eng.StreamQuery(context.Background(), nil, 0)
	if err != nil {
		t.Fatalf("StreamQuery: %v", err)
	}
	drainStream(t, st)
	st.Close()
	stats := eng.Stats()
	if stats.Cache.Hits != 0 || stats.Cache.Misses != 1 || stats.Cache.Length != 1 {
		t.Fatalf("stream touched the result cache: %+v", stats.Cache)
	}
}

// BenchmarkStreamTopK compares the streaming top-k path against the
// materializing one on a cold lazy engine: the streaming arm must load fewer
// shards (early termination) and allocate less (no global materialize+sort).
// Each iteration opens a fresh engine over one shared on-disk index so every
// run starts cold; shard-loads/op is reported alongside the allocator
// counters.
func BenchmarkStreamTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	nw := randomNetwork(rng, 40, 160, 8, 4)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if tree.NumNodes() == 0 {
		b.Fatal("empty benchmark tree")
	}
	dir := b.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		b.Fatalf("WriteSharded: %v", err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		b.Fatalf("OpenSharded: %v", err)
	}
	const k = 3

	b.Run("materializing", func(b *testing.B) {
		b.ReportAllocs()
		loads := 0
		for i := 0; i < b.N; i++ {
			eng, err := NewLazy(idx, Options{})
			if err != nil {
				b.Fatalf("NewLazy: %v", err)
			}
			if _, err := eng.TopK(nil, 0, k); err != nil {
				b.Fatalf("TopK: %v", err)
			}
			loads += int(eng.Stats().LazyLoads)
		}
		b.ReportMetric(float64(loads)/float64(b.N), "shard-loads/op")
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		loads := 0
		for i := 0; i < b.N; i++ {
			eng, err := NewLazy(idx, Options{})
			if err != nil {
				b.Fatalf("NewLazy: %v", err)
			}
			st, err := eng.StreamTopK(context.Background(), nil, 0, k)
			if err != nil {
				b.Fatalf("StreamTopK: %v", err)
			}
			for {
				rc, err := st.Next()
				if err != nil {
					b.Fatalf("Next: %v", err)
				}
				if rc == nil {
					break
				}
			}
			st.Close()
			loads += st.Stats().Loads
		}
		b.ReportMetric(float64(loads)/float64(b.N), "shard-loads/op")
	})
}
