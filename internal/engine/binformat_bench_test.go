package engine

import (
	"math/rand"
	"testing"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// benchIndexDirs writes one tree as two sharded indexes — gob and TCBIN —
// and returns the directories plus the root item of the largest shard (the
// target of the selective cold query) and the largest root item (whose
// containment query makes every shard a candidate). The network parameters
// are per-benchmark: the cold-start contrast wants one huge shard whose gob
// decode dominates, the planner contrast wants many sparse shards whose
// bloom filters can actually exclude.
func benchIndexDirs(b *testing.B, n, m, items, maxTx int) (gobDir, binDir string, hot, last itemset.Item, hotAlpha float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(23))
	nw := randomNetwork(rng, n, m, items, maxTx)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if tree.NumNodes() == 0 {
		b.Fatal("empty benchmark tree")
	}
	gobDir, binDir = b.TempDir(), b.TempDir()
	mGob, err := tree.WriteShardedAs(gobDir, tctree.FormatGob)
	if err != nil {
		b.Fatalf("WriteShardedAs(gob): %v", err)
	}
	if _, err := tree.WriteShardedAs(binDir, tctree.FormatTCBIN); err != nil {
		b.Fatalf("WriteShardedAs(tcbin): %v", err)
	}
	nodes := -1
	for _, e := range mGob.Shards {
		if e.Nodes > nodes {
			nodes, hot, hotAlpha = e.Nodes, itemset.Item(e.Item), e.MaxAlpha
		}
		if itemset.Item(e.Item) > last {
			last = itemset.Item(e.Item)
		}
	}
	return gobDir, binDir, hot, last, hotAlpha
}

// BenchmarkColdStartBinary measures the cold query path arm against arm:
// build a lazy engine over an already-opened sharded index and answer one
// selective single-shard query, so every iteration pays a cold shard load.
// The gob arm decodes the touched shard whole into heap nodes; the TCBIN
// arm maps the file and traverses it in place, so the cold query should
// run a multiple faster with a fraction of the allocations.
func BenchmarkColdStartBinary(b *testing.B) {
	gobDir, binDir, hot, _, hotAlpha := benchIndexDirs(b, 160, 3200, 8, 12)
	q := itemset.New(hot)
	// Query just under the shard's α* so the answer set is tiny: the cost
	// that remains is loading the cold shard and walking it, which is the
	// gob-decode vs mmap contrast under measurement.
	alphaQ := hotAlpha * 0.9
	arm := func(dir string) func(b *testing.B) {
		return func(b *testing.B) {
			idx, err := tctree.OpenSharded(dir)
			if err != nil {
				b.Fatalf("OpenSharded: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := NewLazy(idx, Options{})
				if err != nil {
					b.Fatalf("NewLazy: %v", err)
				}
				res, err := eng.Query(q, alphaQ)
				if err != nil {
					b.Fatalf("Query: %v", err)
				}
				if res.RetrievedNodes == 0 {
					b.Fatal("selective query retrieved nothing")
				}
			}
		}
	}
	b.Run("gob", arm(gobDir))
	b.Run("tcbin", arm(binDir))
}

// BenchmarkPlannerSkip pins what the containment catalogue buys. The query
// is the largest top-level item, so every shard is a candidate to hold a
// superset; the catalogue arm prunes from the manifest alone every shard
// whose bloom filter proves the item appears in none of its patterns,
// while the planner-off arm must load and traverse each one. Both arms
// return identical trusses.
func BenchmarkPlannerSkip(b *testing.B) {
	_, binDir, _, last, _ := benchIndexDirs(b, 64, 320, 24, 4)
	q := itemset.New(last)
	idx, err := tctree.OpenSharded(binDir)
	if err != nil {
		b.Fatalf("OpenSharded: %v", err)
	}
	want := -1
	arm := func(opts Options) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			loads := 0
			for i := 0; i < b.N; i++ {
				eng, err := NewLazy(idx, opts)
				if err != nil {
					b.Fatalf("NewLazy: %v", err)
				}
				res, err := eng.QueryContaining(q, 0)
				if err != nil {
					b.Fatalf("QueryContaining: %v", err)
				}
				if want == -1 {
					want = res.RetrievedNodes
				} else if res.RetrievedNodes != want {
					b.Fatalf("arms disagree: retrieved %d trusses, want %d", res.RetrievedNodes, want)
				}
				loads += int(eng.Stats().LazyLoads)
			}
			b.ReportMetric(float64(loads)/float64(b.N), "shard-loads/op")
		}
	}
	b.Run("catalogue", arm(Options{}))
	b.Run("noplanner", arm(Options{DisablePlanner: true}))
}
