package engine

import (
	"sort"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// This file is the planning half of the engine's plan→execute split. The
// planner is pure: it consumes the query, α_q and a snapshot of per-shard
// statistics (manifest stats in lazy mode, live shard metadata in eager
// mode) and emits a QueryPlan — the per-shard decisions plus a cost-ordered
// schedule — without touching the tree, the disk or any engine state. The
// executor (engine.executePlan) then owns acquisition, eviction, traversal
// and the deterministic merge. Keeping the planner side-effect free makes
// every decision unit-testable from synthetic statistics alone.

// QueryMode selects the query semantics a plan serves.
type QueryMode string

const (
	// ModeSub is the paper's Algorithm 5 workload: retrieve the trusses of
	// every indexed pattern p ⊆ q at α_q. Only shards whose root item is in
	// q are relevant.
	ModeSub QueryMode = "sub"
	// ModeContaining is the containment workload: retrieve the trusses of
	// every indexed pattern p ⊇ q at α_q. Only shards whose root item is at
	// most min(q) are relevant (the root item is the smallest item of every
	// pattern the shard indexes), and the per-shard catalogue — item bloom
	// filter and α*-by-depth histogram — can rule shards out entirely.
	ModeContaining QueryMode = "containing"
)

// ShardInfo is the planner's view of one shard: the catalogue statistics
// plus residency, everything a decision needs and nothing it doesn't.
type ShardInfo struct {
	// Item is the shard's root item.
	Item itemset.Item
	// Nodes, Depth and MaxAlpha are the shard's catalogue statistics: node
	// count, longest indexed pattern, and α* bound (C*_p(α) = ∅ for every
	// α ≥ MaxAlpha, for every pattern p of the shard).
	Nodes    int
	Depth    int
	MaxAlpha float64
	// Resident reports whether the shard subtree is already in memory.
	Resident bool
	// Bloom and AlphaDepths are the shard's skipping catalogue (nil on
	// indexes written before the catalogue existed): the item bloom filter
	// over the shard's patterns and the best α* per pattern length. Only
	// containment planning consults them — for sub-pattern queries the α*
	// bound is already exact (the shard root's α* equals MaxAlpha by
	// anti-monotonicity), so neither structure can prune anything the
	// alpha skip doesn't.
	Bloom       *tctree.ItemBloom
	AlphaDepths []float64
}

// Decision is the planner's verdict on one shard.
type Decision string

const (
	// DecisionLoad schedules the shard for traversal after a disk load (the
	// shard is relevant but not resident — lazy engines only).
	DecisionLoad Decision = "load"
	// DecisionResident schedules the shard for traversal from memory.
	DecisionResident Decision = "resident"
	// DecisionSkipAlpha prunes the shard from metadata alone: α_q ≥ α*, so
	// every truss of the shard is provably empty at α_q. The executor
	// synthesizes the one root visit the traversal would have made, so
	// answers stay byte-identical with planning off — but the shard is
	// never traversed and, on a lazy engine, never read from disk.
	DecisionSkipAlpha Decision = "skip-alpha"
	// DecisionSkipAbsent prunes the shard because no indexed pattern of the
	// shard can satisfy the mode: in sub-pattern mode its root item is not
	// in q; in containment mode its root item exceeds min(q), so every
	// pattern it indexes misses q's smallest item. Such shards contribute
	// nothing, not even a visit.
	DecisionSkipAbsent Decision = "skip-absent"
	// DecisionSkipBloom prunes a containment shard because some query item
	// fails the shard's item bloom filter: the item appears in no pattern
	// of the shard, so no indexed pattern can contain q. The shard is never
	// opened; no visit is synthesized (the filter proves the traversal
	// would only have confirmed absence).
	DecisionSkipBloom Decision = "skip-bloom"
	// DecisionSkipHist prunes a containment shard from the α*-by-depth
	// histogram: a superset of q needs a node at least needDepth(q) deep,
	// and the best α* reachable at that depth is at most the histogram
	// bound — α_q at or above it proves an empty contribution. The executor
	// synthesizes the root visit the traversal would have made.
	DecisionSkipHist Decision = "skip-hist"
)

// Skipped reports whether the decision avoids executing the shard.
func (d Decision) Skipped() bool {
	switch d {
	case DecisionSkipAlpha, DecisionSkipAbsent, DecisionSkipBloom, DecisionSkipHist:
		return true
	}
	return false
}

// ShardTask is one planned shard of a QueryPlan.
type ShardTask struct {
	// Item is the shard's root item.
	Item itemset.Item `json:"item"`
	// Decision is the planner's verdict for this query.
	Decision Decision `json:"decision"`
	// Nodes and MaxAlpha echo the statistics the decision was made from.
	Nodes    int     `json:"nodes"`
	MaxAlpha float64 `json:"maxAlpha"`
	// Cost is the task's execution cost estimate: the node count, weighted
	// up when the shard must be loaded from disk first. Skipped tasks cost
	// nothing.
	Cost float64 `json:"cost"`
}

// PlanConfig selects which planner optimizations apply. The zero value
// disables them all, reproducing the pre-planner engine: every relevant
// shard is traversed in ascending root-item order.
type PlanConfig struct {
	// AlphaSkip prunes shards whose α* bound proves an empty answer at α_q.
	AlphaSkip bool
	// CostOrder schedules the most expensive tasks first so a straggler
	// runs concurrently with the cheap tail instead of serializing it.
	CostOrder bool
	// CatalogueSkip prunes containment-mode shards from the per-shard
	// catalogue: the item bloom filter (skip-bloom) and the α*-by-depth
	// histogram (skip-hist). It never affects sub-pattern plans.
	CatalogueSkip bool
	// LoadCost is the cost multiplier of a non-resident shard (disk read +
	// checksum + decode on top of the traversal). Zero means
	// DefaultLoadCost.
	LoadCost float64
}

// DefaultPlanConfig returns the configuration of a planning engine: α*
// skipping, cost ordering and catalogue skipping on, default load weight.
func DefaultPlanConfig() PlanConfig {
	return PlanConfig{AlphaSkip: true, CostOrder: true, CatalogueSkip: true}
}

// DefaultLoadCost is the default cost multiplier of a shard that must be
// loaded before traversal.
const DefaultLoadCost = 4.0

// QueryPlan is the planner's output: one task per considered shard in
// ascending root-item order (the deterministic merge order), an execution
// schedule, and the decision tallies.
type QueryPlan struct {
	// Alpha is the query's cohesion threshold α_q.
	Alpha float64
	// Mode is the query semantics the plan serves (sub-pattern when empty).
	Mode QueryMode
	// Pattern is the canonicalized query pattern the tasks were planned
	// for; nil means every indexed item (query by alpha).
	Pattern itemset.Itemset
	// Tasks lists the considered shards in ascending root-item order.
	Tasks []ShardTask
	// Order is the execution schedule: indices into Tasks of every
	// non-skipped task, most expensive first when cost ordering is on.
	Order []int
	// SkippedAlpha, SkippedAbsent, SkippedBloom, SkippedHist, Resident and
	// Loads tally the decisions.
	SkippedAlpha  int
	SkippedAbsent int
	SkippedBloom  int
	SkippedHist   int
	Resident      int
	Loads         int
	// TotalCost is the summed cost of the scheduled tasks.
	TotalCost float64
}

// PlanQuery plans a sub-pattern query (q, alphaQ) over the given shard
// statistics, which must be in ascending root-item order. A nil q means
// every listed shard is relevant (the query-by-alpha workload). PlanQuery is
// pure: same inputs, same plan.
func PlanQuery(shards []ShardInfo, q itemset.Itemset, alphaQ float64, cfg PlanConfig) *QueryPlan {
	return PlanQueryMode(shards, q, alphaQ, ModeSub, cfg)
}

// PlanQueryMode plans (q, alphaQ) under the given query mode. Sub-pattern
// mode reproduces PlanQuery; containment mode additionally consults the
// per-shard catalogue (bloom filter, α*-by-depth histogram) when
// cfg.CatalogueSkip is set.
func PlanQueryMode(shards []ShardInfo, q itemset.Itemset, alphaQ float64, mode QueryMode, cfg PlanConfig) *QueryPlan {
	loadCost := cfg.LoadCost
	if loadCost <= 0 {
		loadCost = DefaultLoadCost
	}
	plan := &QueryPlan{Alpha: alphaQ, Mode: mode, Pattern: q, Tasks: make([]ShardTask, 0, len(shards))}
	for _, s := range shards {
		task := ShardTask{Item: s.Item, Nodes: s.Nodes, MaxAlpha: s.MaxAlpha}
		switch {
		case mode != ModeContaining && q != nil && !q.Contains(s.Item):
			task.Decision = DecisionSkipAbsent
			plan.SkippedAbsent++
		case mode == ModeContaining && q.Len() > 0 && s.Item > q[0]:
			// The shard's root item is the smallest item of every pattern it
			// indexes; a pattern containing q must contain q's smallest item,
			// so its shard root is at most q[0].
			task.Decision = DecisionSkipAbsent
			plan.SkippedAbsent++
		case cfg.AlphaSkip && alphaQ >= s.MaxAlpha:
			task.Decision = DecisionSkipAlpha
			plan.SkippedAlpha++
		case mode == ModeContaining && cfg.CatalogueSkip && bloomRejects(s.Bloom, q):
			task.Decision = DecisionSkipBloom
			plan.SkippedBloom++
		case mode == ModeContaining && cfg.CatalogueSkip && histRejects(s, q, alphaQ):
			task.Decision = DecisionSkipHist
			plan.SkippedHist++
		case s.Resident:
			task.Decision = DecisionResident
			task.Cost = float64(s.Nodes)
			plan.Resident++
		default:
			task.Decision = DecisionLoad
			task.Cost = float64(s.Nodes) * loadCost
			plan.Loads++
		}
		if !task.Decision.Skipped() {
			plan.Order = append(plan.Order, len(plan.Tasks))
			plan.TotalCost += task.Cost
		}
		plan.Tasks = append(plan.Tasks, task)
	}
	if cfg.CostOrder {
		sort.SliceStable(plan.Order, func(a, b int) bool {
			ta, tb := plan.Tasks[plan.Order[a]], plan.Tasks[plan.Order[b]]
			if ta.Cost != tb.Cost {
				return ta.Cost > tb.Cost
			}
			return ta.Item < tb.Item
		})
	}
	return plan
}

// bloomRejects reports whether the shard's item filter proves some query
// item appears in no pattern of the shard — in which case no indexed
// pattern can contain q. A nil filter (pre-catalogue index) never rejects.
func bloomRejects(bloom *tctree.ItemBloom, q itemset.Itemset) bool {
	if bloom == nil {
		return false
	}
	for _, it := range q {
		if !bloom.MayContain(it) {
			return true
		}
	}
	return false
}

// histRejects reports whether the α*-by-depth histogram proves every node
// deep enough to index a superset of q is already empty at α_q. A superset
// of q has at least |q| items — one more when the shard's root item is not
// in q, since the root item is part of every indexed pattern.
func histRejects(s ShardInfo, q itemset.Itemset, alphaQ float64) bool {
	if len(s.AlphaDepths) == 0 || q.Len() == 0 {
		return false
	}
	needDepth := q.Len()
	if !q.Contains(s.Item) {
		needDepth++
	}
	return alphaQ >= tctree.ContainmentAlphaBound(s.AlphaDepths, needDepth)
}
