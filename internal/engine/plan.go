package engine

import (
	"sort"

	"themecomm/internal/itemset"
)

// This file is the planning half of the engine's plan→execute split. The
// planner is pure: it consumes the query, α_q and a snapshot of per-shard
// statistics (manifest stats in lazy mode, live shard metadata in eager
// mode) and emits a QueryPlan — the per-shard decisions plus a cost-ordered
// schedule — without touching the tree, the disk or any engine state. The
// executor (engine.executePlan) then owns acquisition, eviction, traversal
// and the deterministic merge. Keeping the planner side-effect free makes
// every decision unit-testable from synthetic statistics alone.

// ShardInfo is the planner's view of one shard: the catalogue statistics
// plus residency, everything a decision needs and nothing it doesn't.
type ShardInfo struct {
	// Item is the shard's root item.
	Item itemset.Item
	// Nodes, Depth and MaxAlpha are the shard's catalogue statistics: node
	// count, longest indexed pattern, and α* bound (C*_p(α) = ∅ for every
	// α ≥ MaxAlpha, for every pattern p of the shard).
	Nodes    int
	Depth    int
	MaxAlpha float64
	// Resident reports whether the shard subtree is already in memory.
	Resident bool
}

// Decision is the planner's verdict on one shard.
type Decision string

const (
	// DecisionLoad schedules the shard for traversal after a disk load (the
	// shard is relevant but not resident — lazy engines only).
	DecisionLoad Decision = "load"
	// DecisionResident schedules the shard for traversal from memory.
	DecisionResident Decision = "resident"
	// DecisionSkipAlpha prunes the shard from metadata alone: α_q ≥ α*, so
	// every truss of the shard is provably empty at α_q. The executor
	// synthesizes the one root visit the traversal would have made, so
	// answers stay byte-identical with planning off — but the shard is
	// never traversed and, on a lazy engine, never read from disk.
	DecisionSkipAlpha Decision = "skip-alpha"
	// DecisionSkipAbsent prunes the shard because its root item is not in
	// the query pattern: no indexed pattern of the shard can be a subset of
	// q. Such shards contribute nothing, not even a visit.
	DecisionSkipAbsent Decision = "skip-absent"
)

// Skipped reports whether the decision avoids executing the shard.
func (d Decision) Skipped() bool { return d == DecisionSkipAlpha || d == DecisionSkipAbsent }

// ShardTask is one planned shard of a QueryPlan.
type ShardTask struct {
	// Item is the shard's root item.
	Item itemset.Item `json:"item"`
	// Decision is the planner's verdict for this query.
	Decision Decision `json:"decision"`
	// Nodes and MaxAlpha echo the statistics the decision was made from.
	Nodes    int     `json:"nodes"`
	MaxAlpha float64 `json:"maxAlpha"`
	// Cost is the task's execution cost estimate: the node count, weighted
	// up when the shard must be loaded from disk first. Skipped tasks cost
	// nothing.
	Cost float64 `json:"cost"`
}

// PlanConfig selects which planner optimizations apply. The zero value
// disables them all, reproducing the pre-planner engine: every relevant
// shard is traversed in ascending root-item order.
type PlanConfig struct {
	// AlphaSkip prunes shards whose α* bound proves an empty answer at α_q.
	AlphaSkip bool
	// CostOrder schedules the most expensive tasks first so a straggler
	// runs concurrently with the cheap tail instead of serializing it.
	CostOrder bool
	// LoadCost is the cost multiplier of a non-resident shard (disk read +
	// checksum + decode on top of the traversal). Zero means
	// DefaultLoadCost.
	LoadCost float64
}

// DefaultPlanConfig returns the configuration of a planning engine: α*
// skipping and cost ordering on, default load weight.
func DefaultPlanConfig() PlanConfig { return PlanConfig{AlphaSkip: true, CostOrder: true} }

// DefaultLoadCost is the default cost multiplier of a shard that must be
// loaded before traversal.
const DefaultLoadCost = 4.0

// QueryPlan is the planner's output: one task per considered shard in
// ascending root-item order (the deterministic merge order), an execution
// schedule, and the decision tallies.
type QueryPlan struct {
	// Alpha is the query's cohesion threshold α_q.
	Alpha float64
	// Pattern is the canonicalized query pattern the tasks were planned
	// for; nil means every indexed item (query by alpha).
	Pattern itemset.Itemset
	// Tasks lists the considered shards in ascending root-item order.
	Tasks []ShardTask
	// Order is the execution schedule: indices into Tasks of every
	// non-skipped task, most expensive first when cost ordering is on.
	Order []int
	// SkippedAlpha, SkippedAbsent, Resident and Loads tally the decisions.
	SkippedAlpha  int
	SkippedAbsent int
	Resident      int
	Loads         int
	// TotalCost is the summed cost of the scheduled tasks.
	TotalCost float64
}

// PlanQuery plans (q, alphaQ) over the given shard statistics, which must be
// in ascending root-item order. A nil q means every listed shard is relevant
// (the query-by-alpha workload). PlanQuery is pure: same inputs, same plan.
func PlanQuery(shards []ShardInfo, q itemset.Itemset, alphaQ float64, cfg PlanConfig) *QueryPlan {
	loadCost := cfg.LoadCost
	if loadCost <= 0 {
		loadCost = DefaultLoadCost
	}
	plan := &QueryPlan{Alpha: alphaQ, Pattern: q, Tasks: make([]ShardTask, 0, len(shards))}
	for _, s := range shards {
		task := ShardTask{Item: s.Item, Nodes: s.Nodes, MaxAlpha: s.MaxAlpha}
		switch {
		case q != nil && !q.Contains(s.Item):
			task.Decision = DecisionSkipAbsent
			plan.SkippedAbsent++
		case cfg.AlphaSkip && alphaQ >= s.MaxAlpha:
			task.Decision = DecisionSkipAlpha
			plan.SkippedAlpha++
		case s.Resident:
			task.Decision = DecisionResident
			task.Cost = float64(s.Nodes)
			plan.Resident++
		default:
			task.Decision = DecisionLoad
			task.Cost = float64(s.Nodes) * loadCost
			plan.Loads++
		}
		if !task.Decision.Skipped() {
			plan.Order = append(plan.Order, len(plan.Tasks))
			plan.TotalCost += task.Cost
		}
		plan.Tasks = append(plan.Tasks, task)
	}
	if cfg.CostOrder {
		sort.SliceStable(plan.Order, func(a, b int) bool {
			ta, tb := plan.Tasks[plan.Order[a]], plan.Tasks[plan.Order[b]]
			if ta.Cost != tb.Cost {
				return ta.Cost > tb.Cost
			}
			return ta.Item < tb.Item
		})
	}
	return plan
}
