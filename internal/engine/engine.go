// Package engine is the concurrent query-serving layer between the TC-Tree
// index (internal/tctree) and the HTTP front end (internal/server). It turns
// the single-threaded breadth-first walk of tctree.Query into a serving
// engine fit for the "data warehouse of maximal pattern trusses" of
// Section 6 of the paper:
//
//   - sharding: the TC-Tree is partitioned by top-level item into independent
//     shards (subtrees). A query (q, α_q) only touches shards whose root item
//     is in q — every other shard provably cannot contribute an answer,
//     because each node's pattern starts with its shard's root item — and a
//     bounded worker pool traverses the relevant shards in parallel, merging
//     the per-shard answers in deterministic shard order;
//   - lazy loading: NewLazy serves straight from a sharded on-disk index
//     (tctree.ShardedIndex). A shard's file is read, checksum-verified and
//     decoded on the first query that touches it; resident shards are
//     evictable under a configurable budget and individually reloadable
//     after an on-disk swap (ReloadShard), which also invalidates exactly
//     the cached answers the swap could have changed;
//   - caching: a bounded, concurrency-safe LRU result cache keyed by the
//     canonicalized query (q ∩ indexed items, α_q), with hit, miss and
//     eviction counters;
//   - batch and top-k execution: QueryBatch answers many queries in one call
//     and TopK ranks the retrieved theme communities by cohesion then size.
//
// An Engine is safe for concurrent use; resident tree data is read-only.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
	"themecomm/internal/trace"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the number of shard traversals running concurrently.
	// Zero or negative means GOMAXPROCS.
	Workers int
	// CacheSize is the maximum number of query results kept in the LRU
	// result cache. Zero or negative disables caching.
	CacheSize int
	// MaxResidentShards is the memory budget of a lazy engine: the number of
	// lazily loaded shards kept in memory at once. When a load pushes the
	// resident count past the budget, the least recently used resident
	// shards are evicted (queries still holding an evicted subtree finish on
	// their snapshot; the next touch reloads it from disk). Zero or negative
	// means unlimited. Eager engines ignore it.
	MaxResidentShards int
	// MaxResidentBytes is the byte-based residency budget of a lazy engine,
	// enforced alongside MaxResidentShards (either bound triggers LRU
	// eviction): the summed size of resident shards — mapped file size for
	// TCBIN shards, serialized payload size for gob shards. Zero or negative
	// means unlimited. Eager engines ignore it.
	MaxResidentBytes int64
	// DisablePlanner turns the cost-based planner off: every relevant shard
	// is traversed in ascending root-item order with no α* skipping, no
	// cost ordering and no prefetch — the behaviour of the pre-planner
	// engine. Answers are byte-identical either way; only the work differs.
	DisablePlanner bool
	// PrefetchWorkers bounds the background shard prefetcher of a lazy
	// planning engine: while a plan's early tasks run, up to this many
	// goroutines warm the top-cost not-yet-resident shards of the schedule
	// tail, so disk I/O overlaps with traversal instead of serializing
	// behind the worker pool. Zero means a small default; negative disables
	// prefetching. Eager engines have nothing to prefetch.
	PrefetchWorkers int
	// SharedCache, when non-nil, replaces the engine's private result cache
	// with a cache shared between engines (a federation of networks): keys
	// are prefixed with CacheNamespace so tenants never collide, while
	// capacity, LRU order and counters are global. CacheSize is ignored.
	SharedCache *ResultCache
	// CacheNamespace is the engine's tenant name: its key prefix in a shared
	// cache — it must be unique per engine sharing the cache (a federation
	// uses the network name) — and the network label of every observation the
	// Recorder receives. Without SharedCache it only labels observations.
	CacheNamespace string
	// SharedResidency, when non-nil, enrolls a lazy engine in a residency
	// group shared between engines: the group's budget bounds the resident
	// shards of every member together, and eviction is globally
	// least-recently-used. MaxResidentShards is ignored. Eager engines
	// ignore it.
	SharedResidency *ResidencyGroup
	// Recorder, when non-nil, receives one trace.QueryObservation per query —
	// outcome, plan→execute→merge stage timings and a lazy plan-detail hook.
	// The engine never imports a metrics implementation; whatever observes it
	// is injected here (the server wires in an obs.Observer, tests record
	// into slices, and a learned-cost planner could tap the same stream).
	// Nil costs the hot path nothing.
	Recorder trace.Recorder
}

// defaultPrefetchWorkers is the prefetch-pool bound when Options leaves
// PrefetchWorkers at zero.
const defaultPrefetchWorkers = 2

// errShardRemoved poisons a shard struct a delta removed from the table, so
// stragglers holding the old pointer (in-flight prefetches) cannot load it
// back into memory.
var errShardRemoved = errors.New("engine: shard removed by an applied delta")

// shardTable is an immutable snapshot of the engine's shard set. The engine
// publishes it through an atomic pointer so that readers (queries, stats, the
// residency evictor) see a consistent table without locking, while index
// updates (ApplyDelta) install a new table in one store — the in-memory
// analogue of the sharded format's single manifest swap.
type shardTable struct {
	// shards are the per-top-level-item partitions, ordered by ascending
	// root item.
	shards []*shard
	// index maps a top-level item to its position in shards.
	index map[itemset.Item]int
	// items is the sorted set of all indexed top-level items; because the
	// TC-Tree is a set-enumeration tree, every item of every indexed pattern
	// appears at level 1, so q ∩ items is a lossless canonicalization of any
	// query pattern.
	items itemset.Itemset
}

// lookup returns the shard of a top-level item.
func (t *shardTable) lookup(item itemset.Item) (*shard, bool) {
	i, ok := t.index[item]
	if !ok {
		return nil, false
	}
	return t.shards[i], true
}

// Engine answers theme-community queries from a sharded TC-Tree.
type Engine struct {
	// tree is the fully resident TC-Tree of an eager engine; nil in lazy
	// mode, where idx is the on-disk index shards are loaded from instead.
	tree *tctree.Tree
	idx  *tctree.ShardedIndex
	// table is the current shard set (copy-on-write; see shardTable).
	table atomic.Pointer[shardTable]

	// updateMu serializes index swaps against in-flight queries: every query
	// holds the read side for its whole execution, and ReloadShard /
	// ApplyDelta hold the write side across the disk commit, the in-memory
	// swap and the cache invalidation — so a query's answer is always
	// entirely pre-swap or entirely post-swap, never a mix of shards from
	// both sides.
	updateMu sync.RWMutex
	// applyMu serializes whole ApplyDelta invocations: the network mutation
	// and the subtree rebuilds happen outside updateMu (queries keep
	// flowing), so concurrent deltas must queue here.
	applyMu sync.Mutex
	// pendingAffected (guarded by applyMu) carries the affected set of a
	// delta whose disk commit failed: the network is already mutated, so the
	// next ApplyDelta must rebuild those shards too or the index would
	// silently diverge from the network forever.
	pendingAffected itemset.Itemset
	// dirty (guarded by applyMu) maps each item whose in-memory shard has
	// run ahead of the on-disk index — installed by ApplyDeltaInMemory, not
	// yet checkpointed — to its rebuilt subtree (nil = shard removed). See
	// Checkpoint.
	dirty map[itemset.Item]*tctree.Node
	// epoch counts index swaps (ReloadShard, ApplyDelta). Queries capture it
	// before executing and the result cache refuses inserts whose epoch is
	// stale, so an answer computed against a replaced shard can never be
	// cached after the invalidation purge ran.
	epoch atomic.Uint64

	workers int
	// sem bounds concurrent shard traversals across all in-flight queries.
	sem chan struct{}
	// batchSem bounds the per-query coordinators of QueryBatch. It is
	// distinct from sem: coordinators never hold a traversal slot, so the
	// two pools cannot deadlock each other.
	batchSem chan struct{}

	// cache is the result cache (nil when caching is disabled); cacheNS is
	// the engine's key namespace, non-empty only when the cache is shared
	// between engines; sharedCache marks a cache owned by a federation
	// rather than this engine.
	cache       *lruCache
	cacheNS     string
	sharedCache bool

	// planCfg is the planner configuration (zero value = planning off).
	planCfg PlanConfig
	// prefetchSem bounds concurrent background prefetch loads; nil when
	// prefetching is disabled or the engine is eager. prefetchWG counts the
	// in-flight prefetch goroutines so Release can drain them: they outlive
	// the query that spawned them, so they are the one piece of query work a
	// caller cannot serialize against a detach.
	prefetchSem chan struct{}
	prefetchWG  sync.WaitGroup

	// res is the engine's residency accounting — budget, LRU clock and
	// eviction — either private to this engine or shared with other engines
	// of a federation; sharedRes marks the shared case.
	res       *ResidencyGroup
	sharedRes bool

	// recorder receives per-query observations; nil when unobserved.
	recorder trace.Recorder

	queries          atomic.Uint64
	batches          atomic.Uint64
	topKs            atomic.Uint64
	explains         atomic.Uint64
	deltas           atomic.Uint64
	lazyLoads        atomic.Uint64
	evictions        atomic.Uint64
	skipped          atomic.Uint64
	skippedCatalogue atomic.Uint64
	prefetched       atomic.Uint64
	streams          atomic.Uint64
	shortCircuited   atomic.Uint64
}

// New returns an eager Engine over a fully resident tree.
func New(tree *tctree.Tree, opts Options) (*Engine, error) {
	if tree == nil || tree.Root() == nil {
		return nil, fmt.Errorf("engine: nil tree")
	}
	e := newEngine(opts)
	e.tree = tree
	for _, c := range tree.Root().Children {
		e.addShard(eagerShardOf(c))
	}
	return e, nil
}

// eagerShardOf builds the shard of a resident first-level subtree, computing
// its catalogue — statistics, bloom filter and α*-by-depth histogram — with
// one walk, so an eager engine plans with exactly the catalogue a sharded
// index would persist.
func eagerShardOf(c *tctree.Node) *shard {
	st, bloomStr, alphaStr := tctree.ShardCatalogue(c)
	bloom, _ := tctree.DecodeItemBloom(bloomStr)
	depths, _ := tctree.DecodeAlphaDepths(alphaStr)
	return &shard{
		item:        c.Item,
		view:        tctree.NewNodeView(c),
		once:        new(sync.Once),
		nodes:       st.Nodes,
		depth:       st.Depth,
		maxAlpha:    st.MaxAlpha,
		bloom:       bloom,
		alphaDepths: depths,
	}
}

// NewLazy returns a lazy Engine serving straight from a sharded on-disk
// index. No shard data is read until a query touches the shard: the first
// touch loads, checksum-verifies and decodes the shard file (concurrent
// first touches share one load), and resident shards are evicted least
// recently used first whenever the count exceeds opts.MaxResidentShards.
func NewLazy(idx *tctree.ShardedIndex, opts Options) (*Engine, error) {
	if idx == nil {
		return nil, fmt.Errorf("engine: nil sharded index")
	}
	e := newEngine(opts)
	e.idx = idx
	if opts.SharedResidency != nil {
		e.res = opts.SharedResidency
		e.sharedRes = true
	} else {
		e.res = NewResidencyGroupBytes(opts.MaxResidentShards, opts.MaxResidentBytes)
	}
	if !opts.DisablePlanner && opts.PrefetchWorkers >= 0 {
		workers := opts.PrefetchWorkers
		if workers == 0 {
			workers = defaultPrefetchWorkers
		}
		e.prefetchSem = make(chan struct{}, workers)
	}
	m := idx.Manifest()
	for _, entry := range m.Shards {
		e.addShard(e.lazyShard(entry))
	}
	// Enroll in the residency group only once the shard table is fully
	// built: a shared group's evictor may scan members from other tenants'
	// goroutines the moment the engine is added.
	e.res.add(e)
	return e, nil
}

// lazyShard builds a shard that opens its view from the engine's on-disk
// index on first touch — in the index's native representation (decoded
// pointer tree for gob, memory-mapped BinShard for TCBIN) — carrying the
// manifest entry's catalogue, decoded once here rather than per plan.
func (e *Engine) lazyShard(entry tctree.ShardEntry) *shard {
	idx, item := e.idx, itemset.Item(entry.Item)
	bloom, _ := entry.DecodeBloom()
	depths, _ := entry.DecodeAlphaDepths()
	return &shard{
		item:        item,
		load:        func() (tctree.ShardView, error) { return idx.LoadShardView(item) },
		once:        new(sync.Once),
		nodes:       entry.Nodes,
		depth:       entry.Depth,
		maxAlpha:    entry.MaxAlpha,
		bloom:       bloom,
		alphaDepths: depths,
	}
}

func newEngine(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:  workers,
		sem:      make(chan struct{}, workers),
		batchSem: make(chan struct{}, workers),
		recorder: opts.Recorder,
		// res is the private default; NewLazy swaps in a shared group when
		// Options.SharedResidency is set. Eager engines never evict, so the
		// zero budget is inert for them.
		res: NewResidencyGroup(0),
	}
	e.table.Store(&shardTable{index: make(map[itemset.Item]int)})
	if !opts.DisablePlanner {
		e.planCfg = DefaultPlanConfig()
	}
	// The namespace doubles as the tenant name on observations, so it is
	// kept even without a shared cache; a private cache prefixes its keys
	// with it consistently, which is harmless.
	e.cacheNS = opts.CacheNamespace
	switch {
	case opts.SharedCache != nil:
		e.cache = opts.SharedCache.c
		e.sharedCache = true
	case opts.CacheSize > 0:
		e.cache = newLRUCache(opts.CacheSize)
	}
	return e
}

// addShard appends a shard during construction, before the engine is shared;
// shards arrive in ascending root-item order. Later membership changes go
// through ApplyDelta, which installs a whole new table instead.
func (e *Engine) addShard(s *shard) {
	t := e.table.Load()
	t.index[s.item] = len(t.shards)
	t.shards = append(t.shards, s)
	t.items = append(t.items, s.item)
	e.table.Store(t)
}

// NumShards returns the number of shards (indexed top-level items).
func (e *Engine) NumShards() int { return len(e.table.Load().shards) }

// IndexEpoch returns the number of index swaps (ReloadShard calls and
// applied deltas) the engine has performed. Cache inserts are gated on it:
// a query that executed against a since-swapped shard can never insert its
// stale answer.
func (e *Engine) IndexEpoch() uint64 { return e.epoch.Load() }

// Workers returns the shard-traversal parallelism.
func (e *Engine) Workers() int { return e.workers }

// Lazy reports whether the engine loads shards from disk on demand.
func (e *Engine) Lazy() bool { return e.idx != nil }

// Format returns the shard encoding the engine serves from: the on-disk
// index's format (tctree.FormatGob or tctree.FormatTCBIN) for lazy engines,
// "memory" for eager engines built from a resident tree.
func (e *Engine) Format() string {
	if e.idx != nil {
		return e.idx.Format()
	}
	return "memory"
}

// Planner reports whether cost-based planning (α* shard skipping, cost
// ordering and background prefetch) is enabled.
func (e *Engine) Planner() bool { return e.planCfg.AlphaSkip || e.planCfg.CostOrder }

// Tree returns the underlying TC-Tree of an eager engine; it is nil for lazy
// engines, which never hold the whole tree.
func (e *Engine) Tree() *tctree.Tree { return e.tree }

// acquire returns the shard's view, stamping its recency, and opening it
// from disk first when the engine is lazy and the shard is not resident.
// loaded reports whether this call performed the disk load — the executor
// and the prefetcher use it to attribute loads. Concurrent first touches
// share a single load through the shard's sync.Once; a load failure is
// sticky until ReloadShard. The loop handles the race with eviction: if the
// view vanishes between the load and the re-check, the fresh sync.Once
// installed by the evictor triggers another load. The identity check on
// s.once before installing the loaded view handles the race with
// ReloadShard: a load that was in flight when the shard was reset would
// otherwise re-install pre-swap data (or a pre-swap error) after the reset;
// such stale results are discarded and the loop loads again from the
// current file.
func (e *Engine) acquire(s *shard) (view tctree.ShardView, loaded bool, err error) {
	if s.load == nil {
		return s.view, false, nil
	}
	for {
		s.mu.Lock()
		if s.view != nil {
			view := s.view
			s.lastUsed.Store(e.res.clock.Add(1))
			s.mu.Unlock()
			return view, loaded, nil
		}
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return nil, loaded, err
		}
		once := s.once
		s.mu.Unlock()
		once.Do(func() {
			view, err := s.load()
			s.mu.Lock()
			if s.once != once {
				// ReloadShard reset the shard while this load was in
				// flight; discard the stale result.
				s.mu.Unlock()
				return
			}
			if err != nil {
				s.err = err
			} else {
				s.view = view
				s.lastUsed.Store(e.res.clock.Add(1))
				s.loads.Add(1)
				e.lazyLoads.Add(1)
				e.res.resident.Add(1)
				e.res.bytes.Add(view.SizeBytes())
				loaded = true
			}
			s.mu.Unlock()
			if err == nil {
				e.res.enforce(s)
			}
		})
	}
}

// ReloadShard drops the resident copy (and any sticky load error) of the
// shard for item and purges every cached answer whose canonicalized query
// contains the item — answers of other queries provably never touched the
// shard and stay valid. Call it after swapping the shard on disk with
// tctree.ShardedIndex.ReplaceShard; the next query touching the shard loads
// the new file. Only lazy engines can reload. The swap excludes in-flight
// queries (updateMu) and bumps the index epoch, so a query that executed
// against the old shard can neither be mid-merge during the swap nor insert
// its stale answer into the cache afterwards.
func (e *Engine) ReloadShard(item itemset.Item) error {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	s, ok := e.table.Load().lookup(item)
	if !ok {
		return fmt.Errorf("engine: no shard for item %d", item)
	}
	if s.load == nil {
		return fmt.Errorf("engine: shard %d is not lazily loaded; rebuild the engine instead", item)
	}
	e.resetShard(s)
	e.epoch.Add(1)
	if e.cache != nil {
		// Full-pattern entries (query by alpha) depend on every shard, so
		// they always go. Only this engine's namespace is touched — in a
		// shared cache, other tenants' answers provably never read the shard.
		e.cache.invalidate(e.cacheNS, func(q itemset.Itemset, full bool) bool { return full || q.Contains(item) })
	}
	return nil
}

// Quiesce blocks until every background shard prefetch spawned by queries
// that have already returned has finished. A query's prefetch goroutines
// outlive the query call, so residency counters can keep moving after the
// last Query returns; callers that need them exact — tests, orderly
// detach/shutdown bookkeeping — quiesce first. Quiesce does not wait for
// concurrent queries, only for the background work of completed ones.
func (e *Engine) Quiesce() {
	e.prefetchWG.Wait()
}

// Release withdraws the engine from the federation resources it shares:
// every resident lazy shard is evicted (returning its budget share to the
// residency group) and every cached answer of the engine's namespace is
// purged from the shared cache. The engine then stands alone: it keeps
// answering queries, but over a private residency group of the same budget
// and without the shared cache, so a handle that outlives a detach can
// neither consume the federation's budget unchecked (a non-member's shards
// are invisible to the group's evictor) nor repopulate its old namespace in
// the shared cache. Release must not race with queries on the same engine —
// a load in flight across the switch may leave the old group's resident
// count one high. Solo engines may call it too; it simply empties their
// cache and resident set.
func (e *Engine) Release() {
	// Background prefetches spawned by an already-returned query are still
	// loading through the old residency group; the caller cannot join them,
	// so drain the pool here before swapping e.res out from under them.
	e.Quiesce()
	e.res.remove(e)
	if e.cache != nil {
		e.cache.invalidate(e.cacheNS, func(itemset.Itemset, bool) bool { return true })
	}
	if e.sharedRes {
		g := NewResidencyGroupBytes(e.res.max, e.res.maxBytes)
		g.add(e)
		e.res = g
		e.sharedRes = false
	}
	if e.sharedCache {
		e.cache = nil
		e.cacheNS = ""
		e.sharedCache = false
	}
}

// canonical clamps a query pattern to the indexed top-level items. A nil
// pattern means "every item" (query by alpha). The result is the smallest
// pattern with the same answer as q, so it doubles as the cache key pattern;
// full reports whether it covers every indexed item, in which case the cache
// key degenerates to the empty-pattern sentinel so that QueryByAlpha and any
// pattern spanning the whole item universe share one cache entry.
func canonical(t *shardTable, q itemset.Itemset) (eff itemset.Itemset, full bool) {
	if q == nil {
		return t.items, true
	}
	eff = q.Intersect(t.items)
	return eff, len(eff) == len(t.items)
}

// cacheKey renders the canonicalized query as a map key. A full query (every
// indexed item) is keyed by the "*" sentinel instead of the whole item list —
// it cannot collide with a real pattern key (those are 4-byte aligned) or
// with the empty pattern of a query matching no indexed item. The alpha is
// encoded exactly ('b' format is lossless for float64), so distinct
// thresholds never collide.
func cacheKey(q itemset.Itemset, full bool, alphaQ float64) string {
	p := string(q.Key())
	if full {
		p = "*"
	}
	return p + "\x00" + strconv.FormatFloat(alphaQ, 'b', -1, 64)
}

// key is cacheKey under the engine's cache namespace. Namespaces are network
// names and never contain the \x1f separator, so tenants of a shared cache
// cannot collide; a solo engine's empty namespace degenerates to a plain
// prefix.
func (e *Engine) key(q itemset.Itemset, full bool, alphaQ float64) string {
	return e.cacheNS + "\x1f" + cacheKey(q, full, alphaQ)
}

// keyMode is key with the query mode folded in: containment entries carry a
// "#" marker so a containment answer can never be served to a sub-pattern
// query for the same pattern and threshold (or vice versa). "#" cannot
// collide with the "*" sentinel or a real pattern key (those are 4-byte
// aligned).
func (e *Engine) keyMode(mode QueryMode, q itemset.Itemset, full bool, alphaQ float64) string {
	if mode == ModeContaining {
		return e.cacheNS + "\x1f#" + cacheKey(q, false, alphaQ)
	}
	return e.key(q, full, alphaQ)
}

// Query answers (q, α_q) like tctree.Query, but traverses only the shards
// whose root item is in q, in parallel across the worker pool. A nil q means
// "every item" (the query-by-alpha workload). The answer lists the retrieved
// trusses grouped by shard in ascending root-item order, each shard in
// breadth-first order; the set of trusses equals tctree.Query's. The error
// is always nil on eager engines; on lazy engines it surfaces shard-load
// failures (missing file, checksum mismatch, corrupt payload).
func (e *Engine) Query(q itemset.Itemset, alphaQ float64) (*tctree.QueryResult, error) {
	return e.QueryContext(context.Background(), q, alphaQ)
}

// QueryContext is Query carrying a context. The context is not a cancellation
// signal — a started traversal always finishes — it carries the request
// correlation ID (obs.WithRequestID) through to the injected Recorder, so a
// slow query captured server-side names the HTTP request that caused it.
func (e *Engine) QueryContext(ctx context.Context, q itemset.Itemset, alphaQ float64) (*tctree.QueryResult, error) {
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	return e.queryLocked(ctx, q, alphaQ, ModeSub)
}

// QueryContaining answers the containment workload: the trusses of every
// indexed pattern p ⊇ q at α_q, grouped by shard in ascending root-item
// order. Only shards whose root item is at most min(q) are considered, and
// the per-shard catalogue (item bloom filter, α*-by-depth histogram) rules
// shards out without opening them. An empty or nil q degenerates to
// QueryByAlpha — every indexed pattern contains the empty pattern. Unlike
// sub-pattern queries, VisitedNodes depends on the planner configuration
// (catalogue skips drop provably fruitless traversals); the truss set does
// not.
func (e *Engine) QueryContaining(q itemset.Itemset, alphaQ float64) (*tctree.QueryResult, error) {
	return e.QueryContainingContext(context.Background(), q, alphaQ)
}

// QueryContainingContext is QueryContaining carrying a context; see
// QueryContext.
func (e *Engine) QueryContainingContext(ctx context.Context, q itemset.Itemset, alphaQ float64) (*tctree.QueryResult, error) {
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	return e.queryLocked(ctx, q, alphaQ, ModeContaining)
}

// queryLocked is the body of Query and QueryContaining; callers hold
// updateMu for reading, so the shard table and the index epoch are stable
// for the whole execution.
func (e *Engine) queryLocked(ctx context.Context, q itemset.Itemset, alphaQ float64, mode QueryMode) (*tctree.QueryResult, error) {
	if mode == ModeContaining && q.Len() == 0 {
		mode = ModeSub
		q = nil
	}
	e.queries.Add(1)
	start := time.Now()
	t := e.table.Load()
	var (
		eff  itemset.Itemset
		full bool
	)
	if mode == ModeContaining {
		eff = itemset.New(q...)
		for _, it := range eff {
			if !t.items.Contains(it) {
				// Every item of every indexed pattern appears at level 1, so
				// an item outside the level-1 set appears in no pattern at
				// all: nothing can contain q.
				return &tctree.QueryResult{Duration: time.Since(start)}, nil
			}
		}
	} else {
		eff, full = canonical(t, q)
	}
	key := e.keyMode(mode, eff, full, alphaQ)
	label := patternLabel(eff, full)
	if mode == ModeContaining {
		label = "⊇" + label
	}
	var gen uint64
	epoch := e.epoch.Load()
	if e.cache != nil {
		if cached, ok := e.cache.get(key); ok {
			// Share the immutable payload, stamp the observed latency.
			res := *cached
			res.Duration = time.Since(start)
			if e.recorder != nil {
				e.recorder.RecordQuery(ctx, trace.QueryObservation{
					Network:  e.cacheNS,
					Pattern:  label,
					Alpha:    alphaQ,
					CacheHit: true,
					Total:    res.Duration,
				})
			}
			return &res, nil
		}
		// Capture the invalidation generation before executing: if a
		// ReloadShard invalidation runs while this query is in flight, the
		// result may predate the swap and put will discard it.
		gen = e.cache.generation(e.cacheNS)
	}
	planStart := time.Now()
	var plan *QueryPlan
	if mode == ModeContaining {
		plan = e.planContaining(t, eff, alphaQ)
	} else {
		plan = e.planRelevant(t, eff, alphaQ)
	}
	planDur := time.Since(planStart)
	res, exec, err := e.executePlan(t, plan)
	if err != nil {
		if e.recorder != nil {
			e.recorder.RecordQuery(ctx, trace.QueryObservation{
				Network: e.cacheNS,
				Pattern: label,
				Alpha:   alphaQ,
				Err:     true,
				Shards:  len(plan.Tasks),
				Plan:    planDur,
				Total:   time.Since(start),
			})
		}
		return nil, err
	}
	res.Duration = time.Since(start)
	// Insert only if no index swap happened since the epoch was captured
	// (it cannot while updateMu is held for reading; the gate is the
	// second line of defense) and no invalidation of this namespace ran.
	// Containment answers depend on shards q does not name (every shard
	// rooted at or below min(q)), so they are stored as full entries: any
	// invalidation of the namespace purges them.
	if e.cache != nil && e.epoch.Load() == epoch {
		e.cache.put(key, e.cacheNS, eff, full || mode == ModeContaining, res, gen)
	}
	if e.recorder != nil {
		loaded := 0
		for _, x := range exec.execs {
			if x.loaded {
				loaded++
			}
		}
		e.recorder.RecordQuery(ctx, trace.QueryObservation{
			Network:       e.cacheNS,
			Pattern:       label,
			Alpha:         alphaQ,
			Shards:        len(plan.Tasks),
			SkippedShards: plan.SkippedAlpha + plan.SkippedBloom + plan.SkippedHist,
			LoadedShards:  loaded,
			Plan:          planDur,
			Execute:       exec.execute,
			Merge:         exec.merge,
			Total:         res.Duration,
			// Materialized only when the recorder keeps the observation
			// (slow-query capture): fast queries never pay for the report.
			Detail: func() any { return e.planReport(plan, exec, eff, full, res) },
		})
	}
	return res, nil
}

// patternLabel renders a canonicalized pattern for observations and the
// slow-query log: "*" for a full pattern (query by alpha), the item list
// otherwise.
func patternLabel(eff itemset.Itemset, full bool) string {
	if full {
		return "*"
	}
	return eff.String()
}

// QueryByAlpha answers the query-by-alpha workload (q = every item). Its
// answer is cached like any other query, under the empty-pattern sentinel
// key shared with explicit patterns that cover every indexed item.
func (e *Engine) QueryByAlpha(alphaQ float64) (*tctree.QueryResult, error) {
	return e.Query(nil, alphaQ)
}

// QueryByAlphaContext is QueryByAlpha carrying a context; see QueryContext.
func (e *Engine) QueryByAlphaContext(ctx context.Context, alphaQ float64) (*tctree.QueryResult, error) {
	return e.QueryContext(ctx, nil, alphaQ)
}

// planRelevant plans an already-canonicalized query over the shards its
// pattern touches. eff is sorted, so the plan's tasks are in ascending
// root-item (shard) order and the merge stays deterministic.
func (e *Engine) planRelevant(t *shardTable, eff itemset.Itemset, alphaQ float64) *QueryPlan {
	infos := make([]ShardInfo, 0, len(eff))
	for _, it := range eff {
		if s, ok := t.lookup(it); ok {
			infos = append(infos, s.info())
		}
	}
	return PlanQuery(infos, eff, alphaQ, e.planCfg)
}

// planContaining plans a containment query over the shards that can index a
// superset of q: those rooted at or below min(q) (the root item is the
// smallest item of every pattern a shard indexes). eff is canonical
// (sorted, deduplicated, non-empty), so the plan's tasks stay in ascending
// root-item order and the merge stays deterministic.
func (e *Engine) planContaining(t *shardTable, eff itemset.Itemset, alphaQ float64) *QueryPlan {
	infos := make([]ShardInfo, 0, len(t.shards))
	for _, s := range t.shards {
		if s.item > eff[0] {
			break
		}
		infos = append(infos, s.info())
	}
	return PlanQueryMode(infos, eff, alphaQ, ModeContaining, e.planCfg)
}

// EstimateCost returns the planner's total cost estimate of answering
// (q, alphaQ) right now — the summed per-shard costs of the plan's schedule,
// reflecting current residency. It plans without executing, so it is cheap;
// a federation uses it to order cross-network batches most-expensive-first.
func (e *Engine) EstimateCost(q itemset.Itemset, alphaQ float64) float64 {
	t := e.table.Load()
	eff, _ := canonical(t, q)
	return e.planRelevant(t, eff, alphaQ).TotalCost
}

// taskExec is the execution record of one plan task, reported by Explain.
type taskExec struct {
	micros  int64
	loaded  bool
	visited int
	trusses int
}

// planExec is the execution record of one executePlan call: per-task records,
// prefetch attribution, and the execute/merge wall-time split the recorder
// reports.
type planExec struct {
	execs      []taskExec
	prefetched uint64
	// execute is the parallel shard-traversal stage (acquire + walk across
	// the worker pool); merge is the deterministic combination of per-shard
	// answers afterwards.
	execute time.Duration
	merge   time.Duration
}

// executePlan is the execution half of the plan→execute split: it runs the
// plan's schedule on the worker pool (most expensive task first, so a
// straggler overlaps the cheap tail), hands the schedule tail to the
// background prefetcher, synthesizes the answers of α*-skipped shards, and
// merges the per-shard results in ascending root-item order. The merged
// answer is byte-identical to a planner-off execution: an α*-skipped shard
// contributes exactly the one root visit the traversal would have made
// before finding the root truss empty.
func (e *Engine) executePlan(t *shardTable, plan *QueryPlan) (*tctree.QueryResult, planExec, error) {
	execStart := time.Now()
	pattern := plan.Pattern
	if pattern == nil {
		pattern = t.items
	}
	results := make([]shardResult, len(plan.Tasks))
	execs := make([]taskExec, len(plan.Tasks))
	for i, task := range plan.Tasks {
		switch task.Decision {
		case DecisionSkipAlpha:
			results[i] = shardResult{visited: 1}
			execs[i].visited = 1
			e.skipped.Add(1)
		case DecisionSkipBloom:
			// The filter proves no pattern of the shard contains q; the
			// traversal is dropped wholesale, root visit included.
			e.skippedCatalogue.Add(1)
		case DecisionSkipHist:
			// The histogram proves emptiness the way the α* skip does; the
			// containment walk always inspects the root, so synthesize it.
			results[i] = shardResult{visited: 1}
			execs[i].visited = 1
			e.skippedCatalogue.Add(1)
		}
	}
	var prefetched atomic.Uint64
	e.prefetchPlan(t, plan, &prefetched)
	traverse := func(i int) {
		s, _ := t.lookup(plan.Tasks[i].Item)
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		start := time.Now()
		view, loaded, err := e.acquire(s)
		if err != nil {
			results[i] = shardResult{err: fmt.Errorf("engine: shard %d: %w", s.item, err)}
			execs[i] = taskExec{micros: time.Since(start).Microseconds()}
			return
		}
		var a tctree.ShardAnswer
		if plan.Mode == ModeContaining {
			a = view.QueryContaining(pattern, plan.Alpha)
		} else {
			a = view.QuerySub(pattern, plan.Alpha)
		}
		sr := answerResult(a)
		results[i] = sr
		execs[i] = taskExec{
			micros:  time.Since(start).Microseconds(),
			loaded:  loaded,
			visited: sr.visited,
			trusses: len(sr.trusses),
		}
	}
	if e.workers == 1 || len(plan.Order) == 1 {
		// Inline traversal still takes a slot, so the worker bound holds
		// across concurrent queries, not just within one.
		for _, i := range plan.Order {
			traverse(i)
		}
	} else {
		var wg sync.WaitGroup
		for _, i := range plan.Order {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				traverse(i)
			}(i)
		}
		wg.Wait()
	}
	mergeStart := time.Now()
	res := &tctree.QueryResult{}
	var errs []error
	for _, sr := range results {
		if sr.err != nil {
			errs = append(errs, sr.err)
			continue
		}
		res.Trusses = append(res.Trusses, sr.trusses...)
		res.VisitedNodes += sr.visited
	}
	exec := planExec{
		execs:      execs,
		prefetched: prefetched.Load(),
		execute:    mergeStart.Sub(execStart),
		merge:      time.Since(mergeStart),
	}
	if len(errs) > 0 {
		return nil, exec, errors.Join(errs...)
	}
	res.RetrievedNodes = len(res.Trusses)
	return res, exec, nil
}

// prefetchPlan warms the top-cost non-resident shards of the plan's schedule
// tail in the background. The first Workers scheduled tasks are about to be
// picked up by traversal slots anyway, so only tasks beyond them are offered
// to the prefetch pool; each prefetch load goes through acquire, so the
// residency budget (and LRU eviction) applies as usual, and a traversal that
// reaches the shard meanwhile shares the same load. The prefetched counter
// is best-effort: a prefetch still in flight when the plan finishes may be
// counted against the engine but not the plan.
func (e *Engine) prefetchPlan(tbl *shardTable, plan *QueryPlan, prefetched *atomic.Uint64) {
	if e.prefetchSem == nil || len(plan.Order) <= e.workers {
		return
	}
	// Cap per-plan prefetch at the residency headroom left after the
	// shards already in memory and the Workers head-of-schedule tasks
	// loading concurrently: past that, eviction would drop a prefetched
	// shard (or a resident shard the plan still needs) before traversal
	// reaches it, and its disk read would just be repeated. The resident
	// count is a snapshot — the cap is a heuristic, correctness is
	// acquire's job.
	budget := len(plan.Order) - e.workers
	if e.res.max > 0 {
		headroom := e.res.max - int(e.res.resident.Load()) - e.workers
		if headroom < 1 {
			return
		}
		if budget > headroom {
			budget = headroom
		}
	}
	for _, i := range plan.Order[e.workers:] {
		if budget == 0 {
			return
		}
		task := plan.Tasks[i]
		if task.Decision != DecisionLoad {
			continue
		}
		s, _ := tbl.lookup(task.Item)
		select {
		case e.prefetchSem <- struct{}{}:
		default:
			// The pool is saturated; the remaining tasks are cheaper, so
			// let traversal pick them up instead of queueing.
			return
		}
		budget--
		e.prefetchWG.Add(1)
		go func(s *shard) {
			defer e.prefetchWG.Done()
			defer func() { <-e.prefetchSem }()
			// A load error is not the prefetcher's to report: it is sticky
			// on the shard and surfaces on the query that traverses it.
			if _, loaded, err := e.acquire(s); err == nil && loaded {
				e.prefetched.Add(1)
				prefetched.Add(1)
			}
		}(s)
	}
}

// DeltaResult summarises one Engine.ApplyDelta call.
type DeltaResult struct {
	// Affected is the set of top-level items the delta could change — the
	// shards that were rebuilt. Unaffected shards were neither rebuilt nor
	// reloaded nor purged from the cache.
	Affected itemset.Itemset `json:"affected"`
	// Report details what happened to each affected shard.
	Report *tctree.CommitReport `json:"report"`
	// Epoch is the index epoch after the swap.
	Epoch uint64 `json:"epoch"`
	// Duration is the wall time of the whole update (rebuild + commit +
	// swap).
	Duration time.Duration `json:"-"`
}

// ApplyDelta incrementally maintains the engine's index after a network
// delta: the delta is applied to nw (which must be the network the index was
// built from), the shard of every affected top-level item is re-decomposed
// from the updated network, and the rebuilt shards are swapped in — on disk
// first for a lazy engine (one durable manifest write via
// tctree.ShardedIndex.CommitShards), then in memory — while unaffected
// shards are left untouched, resident and cached.
//
// The swap is serialized against in-flight queries (updateMu): a query
// observes either the whole pre-delta index or the whole post-delta index,
// never a mix. Cached answers that could depend on an affected shard (their
// pattern intersects the affected set, or they cover every item) are purged,
// the index epoch is bumped, and concurrent deltas queue on applyMu. After
// ApplyDelta returns, querying the engine is byte-identical to querying an
// index rebuilt from scratch on the updated network.
func (e *Engine) ApplyDelta(nw *dbnet.Network, d *delta.Delta) (*DeltaResult, error) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	start := time.Now()
	if depth := e.builtMaxDepth(); depth > 0 {
		return nil, fmt.Errorf("engine: index was built with MaxDepth %d; incremental maintenance needs an unbounded index", depth)
	}
	// Union in the affected set of any previously failed commit: its delta
	// already mutated the network, so those shards still await their
	// rebuild. A transient failure is therefore healed by the next
	// successful ApplyDelta (an empty delta suffices).
	affected := delta.AffectedItems(nw, d).Union(e.pendingAffected)
	if err := delta.Apply(nw, d); err != nil {
		// Apply validates first and mutates nothing on failure, so there is
		// no pending rebuild to remember.
		return nil, err
	}
	// Rebuild and stage outside updateMu: re-decomposition, encoding and
	// the fsync'd file writes are the expensive parts, and none of them is
	// visible to queries — staged files are invisible until the manifest
	// swap. Only the swap itself excludes queries.
	subtrees := tctree.RebuildSubtrees(nw, affected)
	var staged *tctree.StagedShards
	if e.idx != nil {
		var err error
		staged, err = e.idx.StageShards(subtrees)
		if err != nil {
			e.pendingAffected = affected
			return nil, err
		}
	}

	e.updateMu.Lock()
	var report *tctree.CommitReport
	if e.idx != nil {
		var err error
		report, err = staged.Commit()
		if err != nil {
			// The commit never moved the manifest, so disk and memory still
			// agree on the old index; the engine keeps serving it. The
			// network, however, already carries the delta — remember the
			// affected set so a retry rebuilds these shards.
			e.updateMu.Unlock()
			e.pendingAffected = affected
			return nil, err
		}
		e.swapLazyLocked(report)
	} else {
		report = e.swapEagerLocked(subtrees)
	}
	e.pendingAffected = nil
	e.deltas.Add(1)
	e.epoch.Add(1)
	epoch := e.epoch.Load()
	if e.cache != nil {
		// An answer can only depend on an affected shard when its pattern
		// contains an affected item; full-pattern entries depend on every
		// shard. Only this engine's namespace is touched.
		e.cache.invalidate(e.cacheNS, func(q itemset.Itemset, full bool) bool {
			return full || q.Intersect(affected).Len() > 0
		})
	}
	e.updateMu.Unlock()
	return &DeltaResult{Affected: affected, Report: report, Epoch: epoch, Duration: time.Since(start)}, nil
}

// swapLazyLocked brings the shard table of a lazy engine in line with a
// committed on-disk delta: replaced shards are reset so the next touch loads
// the new file, removed shards leave the table (returning their residency),
// and added shards join it. Callers hold updateMu for writing.
func (e *Engine) swapLazyLocked(report *tctree.CommitReport) {
	t := e.table.Load()
	for _, it := range report.Replaced {
		if s, ok := t.lookup(it); ok {
			e.resetShard(s)
		}
	}
	if len(report.Added) == 0 && len(report.Removed) == 0 {
		return
	}
	removed := make(map[itemset.Item]bool, len(report.Removed))
	for _, it := range report.Removed {
		removed[it] = true
	}
	shards := make([]*shard, 0, len(t.shards)+len(report.Added))
	for _, s := range t.shards {
		if removed[s.item] {
			if freed, ok := evictShard(s); ok {
				e.res.resident.Add(-1)
				e.res.bytes.Add(-freed)
				e.evictions.Add(1)
			}
			// Poison the detached struct: a prefetch load still in flight
			// would otherwise re-install a subtree (and a residency count)
			// on a shard no evictor can ever see again. The fresh once makes
			// the in-flight install discard itself; the sticky error stops
			// acquire's retry loop from loading anew.
			s.mu.Lock()
			s.err = errShardRemoved
			s.once = new(sync.Once)
			s.mu.Unlock()
			continue
		}
		shards = append(shards, s)
	}
	for _, it := range report.Added {
		if entry, ok := e.idx.Entry(it); ok {
			shards = append(shards, e.lazyShard(entry))
		}
	}
	e.table.Store(newShardTable(shards))
}

// swapEagerLocked installs the rebuilt subtrees on an eager engine's
// resident tree and updates the shard table, recomputing statistics only
// for the touched shards — untouched shard structs are carried over, so the
// work under the write lock is proportional to the delta, not the index.
// Callers hold updateMu for writing.
func (e *Engine) swapEagerLocked(subtrees map[itemset.Item]*tctree.Node) *tctree.CommitReport {
	report := &tctree.CommitReport{}
	items := make([]itemset.Item, 0, len(subtrees))
	for it := range subtrees {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	t := e.table.Load()
	touched := make(map[itemset.Item]*shard, len(items))
	for _, it := range items {
		sub := subtrees[it]
		_, exists := t.lookup(it)
		switch {
		case sub == nil && !exists:
			continue
		case sub == nil:
			report.Removed = append(report.Removed, it)
			touched[it] = nil
		case exists:
			report.Replaced = append(report.Replaced, it)
			touched[it] = eagerShardOf(sub)
		default:
			report.Added = append(report.Added, it)
			touched[it] = eagerShardOf(sub)
		}
		e.tree.SetSubtree(it, sub)
	}
	shards := make([]*shard, 0, len(t.shards)+len(report.Added))
	for _, s := range t.shards {
		if repl, ok := touched[s.item]; ok {
			if repl != nil {
				shards = append(shards, repl)
			}
			delete(touched, s.item)
			continue
		}
		shards = append(shards, s)
	}
	for _, s := range touched { // the added shards
		if s != nil {
			shards = append(shards, s)
		}
	}
	e.table.Store(newShardTable(shards))
	return report
}

// builtMaxDepth returns the MaxDepth bound the served index was built with
// (0 = unbounded): from the manifest on lazy engines, from the tree on
// eager ones.
func (e *Engine) builtMaxDepth() int {
	if e.idx != nil {
		return e.idx.Manifest().BuiltMaxDepth
	}
	if e.tree != nil {
		return e.tree.BuiltMaxDepth()
	}
	return 0
}

// newShardTable assembles a table from shards, sorting them by root item.
func newShardTable(shards []*shard) *shardTable {
	sort.Slice(shards, func(i, j int) bool { return shards[i].item < shards[j].item })
	t := &shardTable{shards: shards, index: make(map[itemset.Item]int, len(shards))}
	for i, s := range shards {
		t.index[s.item] = i
		t.items = append(t.items, s.item)
	}
	return t
}

// resetShard drops a lazy shard's resident view and sticky error and
// refreshes its catalogue (statistics, bloom filter, α* histogram) from the
// manifest, so the next touch loads the current file.
func (e *Engine) resetShard(s *shard) {
	entry, haveEntry := e.idx.Entry(s.item)
	s.mu.Lock()
	if s.view != nil {
		e.res.resident.Add(-1)
		e.res.bytes.Add(-s.view.SizeBytes())
	}
	s.view, s.err = nil, nil
	s.once = new(sync.Once)
	if haveEntry {
		s.nodes, s.depth, s.maxAlpha = entry.Nodes, entry.Depth, entry.MaxAlpha
		s.bloom, _ = entry.DecodeBloom()
		s.alphaDepths, _ = entry.DecodeAlphaDepths()
	}
	s.mu.Unlock()
}

// Request is one query of a batch.
type Request struct {
	// Pattern is the query pattern q; nil means every item.
	Pattern itemset.Itemset
	// Alpha is the cohesion threshold α_q.
	Alpha float64
}

// QueryBatch answers many queries in one call. Queries run concurrently,
// bounded by the worker pool; answers are returned in request order.
// Repeated queries within a batch are served from the cache once the first
// execution completes (concurrent duplicates may each execute). A query that
// fails (lazy shard-load error) leaves a nil slot in the answers; the error
// joins every per-query failure, annotated with its request index.
func (e *Engine) QueryBatch(reqs []Request) ([]*tctree.QueryResult, error) {
	return e.QueryBatchContext(context.Background(), reqs)
}

// QueryBatchContext is QueryBatch carrying a context; every query of the
// batch reports to the Recorder under the batch's request ID. See
// QueryContext.
func (e *Engine) QueryBatchContext(ctx context.Context, reqs []Request) ([]*tctree.QueryResult, error) {
	e.batches.Add(1)
	out := make([]*tctree.QueryResult, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r Request) {
			defer wg.Done()
			e.batchSem <- struct{}{}
			defer func() { <-e.batchSem }()
			res, err := e.QueryContext(ctx, r.Pattern, r.Alpha)
			if err != nil {
				errs[i] = fmt.Errorf("query %d: %w", i, err)
				return
			}
			out[i] = res
		}(i, r)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}
