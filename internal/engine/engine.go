// Package engine is the concurrent query-serving layer between the TC-Tree
// index (internal/tctree) and the HTTP front end (internal/server). It turns
// the single-threaded breadth-first walk of tctree.Query into a serving
// engine fit for the "data warehouse of maximal pattern trusses" of
// Section 6 of the paper:
//
//   - sharding: the TC-Tree is partitioned by top-level item into independent
//     shards (subtrees). A query (q, α_q) only touches shards whose root item
//     is in q — every other shard provably cannot contribute an answer,
//     because each node's pattern starts with its shard's root item — and a
//     bounded worker pool traverses the relevant shards in parallel, merging
//     the per-shard answers in deterministic shard order;
//   - caching: a bounded, concurrency-safe LRU result cache keyed by the
//     canonicalized query (q ∩ indexed items, α_q), with hit, miss and
//     eviction counters;
//   - batch and top-k execution: QueryBatch answers many queries in one call
//     and TopK ranks the retrieved theme communities by cohesion then size.
//
// An Engine is safe for concurrent use; the underlying tree is read-only.
package engine

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the number of shard traversals running concurrently.
	// Zero or negative means GOMAXPROCS.
	Workers int
	// CacheSize is the maximum number of query results kept in the LRU
	// result cache. Zero or negative disables caching.
	CacheSize int
}

// Engine answers theme-community queries from a sharded TC-Tree.
type Engine struct {
	tree *tctree.Tree
	// shards are the per-top-level-item partitions, ordered by ascending
	// root item.
	shards []*shard
	// shardIndex maps a top-level item to its position in shards.
	shardIndex map[itemset.Item]int
	// items is the sorted set of all indexed top-level items; because the
	// TC-Tree is a set-enumeration tree, every item of every indexed pattern
	// appears at level 1, so q ∩ items is a lossless canonicalization of any
	// query pattern.
	items itemset.Itemset

	workers int
	// sem bounds concurrent shard traversals across all in-flight queries.
	sem chan struct{}
	// batchSem bounds the per-query coordinators of QueryBatch. It is
	// distinct from sem: coordinators never hold a traversal slot, so the
	// two pools cannot deadlock each other.
	batchSem chan struct{}

	cache *lruCache // nil when caching is disabled

	queries atomic.Uint64
	batches atomic.Uint64
	topKs   atomic.Uint64
}

// New returns an Engine over the given tree.
func New(tree *tctree.Tree, opts Options) (*Engine, error) {
	if tree == nil || tree.Root() == nil {
		return nil, fmt.Errorf("engine: nil tree")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		tree:       tree,
		shardIndex: make(map[itemset.Item]int),
		workers:    workers,
		sem:        make(chan struct{}, workers),
		batchSem:   make(chan struct{}, workers),
	}
	for _, c := range tree.Root().Children {
		e.shardIndex[c.Item] = len(e.shards)
		e.shards = append(e.shards, &shard{root: c})
		e.items = append(e.items, c.Item)
	}
	if opts.CacheSize > 0 {
		e.cache = newLRUCache(opts.CacheSize)
	}
	return e, nil
}

// NumShards returns the number of shards (indexed top-level items).
func (e *Engine) NumShards() int { return len(e.shards) }

// Workers returns the shard-traversal parallelism.
func (e *Engine) Workers() int { return e.workers }

// Tree returns the underlying TC-Tree.
func (e *Engine) Tree() *tctree.Tree { return e.tree }

// canonical clamps a query pattern to the indexed top-level items. A nil
// pattern means "every item" (query by alpha). The result is the smallest
// pattern with the same answer as q, so it doubles as the cache key pattern.
func (e *Engine) canonical(q itemset.Itemset) itemset.Itemset {
	if q == nil {
		return e.items
	}
	return q.Intersect(e.items)
}

// cacheKey renders the canonicalized query as a map key. The alpha is encoded
// exactly ('b' format is lossless for float64), so distinct thresholds never
// collide.
func cacheKey(q itemset.Itemset, alphaQ float64) string {
	return string(q.Key()) + "\x00" + strconv.FormatFloat(alphaQ, 'b', -1, 64)
}

// Query answers (q, α_q) like tctree.Query, but traverses only the shards
// whose root item is in q, in parallel across the worker pool. A nil q means
// "every item" (the query-by-alpha workload). The answer lists the retrieved
// trusses grouped by shard in ascending root-item order, each shard in
// breadth-first order; the set of trusses equals tctree.Query's.
func (e *Engine) Query(q itemset.Itemset, alphaQ float64) *tctree.QueryResult {
	e.queries.Add(1)
	start := time.Now()
	eff := e.canonical(q)
	key := cacheKey(eff, alphaQ)
	if e.cache != nil {
		if cached, ok := e.cache.get(key); ok {
			// Share the immutable payload, stamp the observed latency.
			res := *cached
			res.Duration = time.Since(start)
			return &res
		}
	}
	res := e.execute(eff, alphaQ)
	res.Duration = time.Since(start)
	if e.cache != nil {
		e.cache.put(key, res)
	}
	return res
}

// QueryByAlpha answers the query-by-alpha workload (q = every item).
func (e *Engine) QueryByAlpha(alphaQ float64) *tctree.QueryResult {
	return e.Query(nil, alphaQ)
}

// execute runs the sharded traversal for an already-canonicalized pattern.
func (e *Engine) execute(q itemset.Itemset, alphaQ float64) *tctree.QueryResult {
	// q is sorted, so relevant is in ascending root-item (shard) order and
	// the merge below is deterministic.
	relevant := make([]*shard, 0, len(q))
	for _, it := range q {
		if i, ok := e.shardIndex[it]; ok {
			relevant = append(relevant, e.shards[i])
		}
	}
	results := make([]shardResult, len(relevant))
	traverse := func(i int, s *shard) {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		results[i] = s.query(q, alphaQ)
	}
	if e.workers == 1 || len(relevant) == 1 {
		// Inline traversal still takes a slot, so the worker bound holds
		// across concurrent queries, not just within one.
		for i, s := range relevant {
			traverse(i, s)
		}
	} else {
		var wg sync.WaitGroup
		for i, s := range relevant {
			wg.Add(1)
			go func(i int, s *shard) {
				defer wg.Done()
				traverse(i, s)
			}(i, s)
		}
		wg.Wait()
	}
	res := &tctree.QueryResult{}
	for _, sr := range results {
		res.Trusses = append(res.Trusses, sr.trusses...)
		res.VisitedNodes += sr.visited
	}
	res.RetrievedNodes = len(res.Trusses)
	return res
}

// Request is one query of a batch.
type Request struct {
	// Pattern is the query pattern q; nil means every item.
	Pattern itemset.Itemset
	// Alpha is the cohesion threshold α_q.
	Alpha float64
}

// QueryBatch answers many queries in one call. Queries run concurrently,
// bounded by the worker pool; answers are returned in request order.
// Repeated queries within a batch are served from the cache once the first
// execution completes (concurrent duplicates may each execute).
func (e *Engine) QueryBatch(reqs []Request) []*tctree.QueryResult {
	e.batches.Add(1)
	out := make([]*tctree.QueryResult, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r Request) {
			defer wg.Done()
			e.batchSem <- struct{}{}
			defer func() { <-e.batchSem }()
			out[i] = e.Query(r.Pattern, r.Alpha)
		}(i, r)
	}
	wg.Wait()
	return out
}
