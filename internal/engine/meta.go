package engine

import (
	"themecomm/internal/core"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// This file gives the engine the index-metadata surface the HTTP server used
// to read straight off the tree, so a server can run on a lazy engine that
// never holds the whole tree: totals come from the manifest, and traversals
// (patterns listing, vertex search) load only the shards they need.

// NumNodes returns the number of indexed nodes across all shards. On lazy
// engines it comes from the manifest, without loading any shard.
func (e *Engine) NumNodes() int {
	total := 0
	for _, s := range e.table.Load().shards {
		n, _, _ := s.meta()
		total += n
	}
	return total
}

// Depth returns the longest indexed pattern length across all shards.
func (e *Engine) Depth() int {
	depth := 0
	for _, s := range e.table.Load().shards {
		_, d, _ := s.meta()
		if d > depth {
			depth = d
		}
	}
	return depth
}

// MaxAlpha returns the largest non-trivial cohesion threshold over every
// indexed theme network (the largest per-shard α* bound). Queries with a
// larger α_q return nothing.
func (e *Engine) MaxAlpha() float64 {
	maxAlpha := 0.0
	for _, s := range e.table.Load().shards {
		_, _, a := s.meta()
		if a > maxAlpha {
			maxAlpha = a
		}
	}
	return maxAlpha
}

// PatternsAtDepth returns the indexed patterns of the given length, sorted.
// Depth 1 is answered from the shard catalogue alone; deeper listings load
// (and keep within the residency budget) only the shards whose manifest
// depth reaches the requested length.
func (e *Engine) PatternsAtDepth(depth int) ([]itemset.Itemset, error) {
	if depth < 1 {
		return nil, nil
	}
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	t := e.table.Load()
	if depth == 1 {
		out := make([]itemset.Itemset, 0, len(t.shards))
		for _, s := range t.shards {
			out = append(out, itemset.New(s.item))
		}
		return out, nil
	}
	var out []itemset.Itemset
	for _, s := range t.shards {
		_, shardDepth, _ := s.meta()
		if shardDepth < depth {
			continue
		}
		view, _, err := e.acquire(s)
		if err != nil {
			return nil, err
		}
		view.WalkPatterns(func(p itemset.Itemset) {
			if p.Len() == depth {
				out = append(out, p)
			}
		})
	}
	e.res.enforce(nil)
	return out, nil
}

// SearchVertex returns every theme community that contains the query vertex,
// restricted to themes that are sub-patterns of q (nil or empty means every
// indexed theme) and to the cohesion threshold alphaQ, like
// tctree.SearchVertex but loading only the shards q touches.
func (e *Engine) SearchVertex(v graph.VertexID, q itemset.Itemset, alphaQ float64) ([]core.Community, error) {
	if q.Len() == 0 {
		q = nil
	}
	qr, err := e.Query(q, alphaQ)
	if err != nil {
		return nil, err
	}
	return tctree.CommunitiesOfVertex(qr, v), nil
}

// removalAlphas resolves an indexed pattern's per-edge removal thresholds —
// the α at which each edge of C*_p(0) leaves the truss — loading the
// pattern's shard when necessary. ok is false when the pattern is not
// indexed, which is not an error. Callers hold updateMu for reading.
func (e *Engine) removalAlphas(t *shardTable, p itemset.Itemset) (map[uint64]float64, bool, error) {
	if p.Len() == 0 {
		return nil, false, nil
	}
	s, ok := t.lookup(p[0])
	if !ok {
		return nil, false, nil
	}
	view, _, err := e.acquire(s)
	if err != nil {
		return nil, false, err
	}
	ra, ok := view.RemovalAlphas(p)
	return ra, ok, nil
}
