package engine

import (
	"sync"
	"sync/atomic"
)

// ResidencyGroup is the residency accounting of one or more lazy engines: a
// global budget of resident shards (by count and by bytes), the logical clock
// that stamps shard use for LRU eviction, and the membership list the evictor
// scans. Every engine owns a private group by default; a federation passes one
// group to many engines (Options.SharedResidency) so the budget is enforced
// across every member's shards — a hot tenant loading shard after shard evicts
// the globally least-recently-used shard, whichever engine it belongs to, and
// can never hold more than the shared budget by itself.
type ResidencyGroup struct {
	// max is the count budget: the number of lazily loaded shards the group's
	// members may keep resident at once. maxBytes is the byte budget: the
	// summed size of resident shard views — mapped file size for TCBIN
	// shards, serialized payload size for gob shards. Either bound being
	// exceeded triggers eviction; zero or negative means unlimited.
	max      int
	maxBytes int64

	// clock stamps shard use; because every member shares it, recency is
	// comparable across engines and eviction is globally least-recent-first.
	clock atomic.Int64
	// resident counts resident lazy shards across all members; bytes sums
	// their view sizes.
	resident atomic.Int64
	bytes    atomic.Int64

	// evictMu serializes eviction scans; mu guards members.
	evictMu sync.Mutex
	mu      sync.RWMutex
	members []*Engine
}

// NewResidencyGroup returns a residency group with the given budget of
// resident shards across every member engine (0 or negative = unlimited) and
// no byte budget. Pass it to many engines via Options.SharedResidency to
// share the budget.
func NewResidencyGroup(maxResident int) *ResidencyGroup {
	return NewResidencyGroupBytes(maxResident, 0)
}

// NewResidencyGroupBytes returns a residency group bounded by both a shard
// count and a byte budget; either may be 0 (or negative) for unlimited.
// Eviction runs while either bound is exceeded.
func NewResidencyGroupBytes(maxResident int, maxBytes int64) *ResidencyGroup {
	if maxResident < 0 {
		maxResident = 0
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &ResidencyGroup{max: maxResident, maxBytes: maxBytes}
}

// MaxResident returns the group's count budget (0 = unlimited).
func (g *ResidencyGroup) MaxResident() int { return g.max }

// MaxResidentBytes returns the group's byte budget (0 = unlimited).
func (g *ResidencyGroup) MaxResidentBytes() int64 { return g.maxBytes }

// Resident returns the number of resident lazy shards across all members.
func (g *ResidencyGroup) Resident() int { return int(g.resident.Load()) }

// ResidentBytes returns the summed view size of resident lazy shards across
// all members.
func (g *ResidencyGroup) ResidentBytes() int64 { return g.bytes.Load() }

// add enrolls an engine; its shards become candidates for eviction.
func (g *ResidencyGroup) add(e *Engine) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members = append(g.members, e)
}

// remove withdraws an engine from the group, evicting every resident lazy
// shard it holds so the budget it consumed returns to the remaining members.
func (g *ResidencyGroup) remove(e *Engine) {
	g.mu.Lock()
	for i, m := range g.members {
		if m == e {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
	for _, s := range e.table.Load().shards {
		if freed, ok := evictShard(s); ok {
			g.resident.Add(-1)
			g.bytes.Add(-freed)
			e.evictions.Add(1)
		}
	}
}

// over reports whether either residency bound is currently exceeded.
func (g *ResidencyGroup) over() bool {
	if g.max > 0 && int(g.resident.Load()) > g.max {
		return true
	}
	return g.maxBytes > 0 && g.bytes.Load() > g.maxBytes
}

// enforce evicts globally least-recently-used resident shards until both
// budgets hold again. just, when non-nil, is exempt: evicting the shard that
// was loaded for the in-flight query would only thrash. Evicting a shard a
// concurrent query is still traversing is safe — the query keeps its
// immutable view snapshot; only the engine's reference is dropped (a
// memory-mapped view stays mapped until its last holder lets go).
func (g *ResidencyGroup) enforce(just *shard) {
	if g.max <= 0 && g.maxBytes <= 0 {
		return
	}
	g.evictMu.Lock()
	defer g.evictMu.Unlock()
	for g.over() {
		var victim *shard
		var owner *Engine
		var oldest int64
		g.mu.RLock()
		for _, m := range g.members {
			for _, s := range m.table.Load().shards {
				if s == just || s.load == nil || !s.resident() {
					continue
				}
				if lu := s.lastUsed.Load(); victim == nil || lu < oldest {
					victim, owner, oldest = s, m, lu
				}
			}
		}
		g.mu.RUnlock()
		if victim == nil {
			return
		}
		if freed, ok := evictShard(victim); ok {
			g.resident.Add(-1)
			g.bytes.Add(-freed)
			owner.evictions.Add(1)
		}
	}
}

// evictShard drops the shard's resident view, reporting the bytes it charged
// and whether anything was dropped. A fresh sync.Once is installed so the
// next touch reloads.
func evictShard(s *shard) (freed int64, ok bool) {
	if s.load == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view == nil {
		return 0, false
	}
	freed = s.view.SizeBytes()
	s.view = nil
	s.once = new(sync.Once)
	return freed, true
}
