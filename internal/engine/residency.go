package engine

import (
	"sync"
	"sync/atomic"
)

// ResidencyGroup is the residency accounting of one or more lazy engines: a
// global budget of resident shards, the logical clock that stamps shard use
// for LRU eviction, and the membership list the evictor scans. Every engine
// owns a private group by default; a federation passes one group to many
// engines (Options.SharedResidency) so the budget is enforced across every
// member's shards — a hot tenant loading shard after shard evicts the
// globally least-recently-used shard, whichever engine it belongs to, and can
// never hold more than the shared budget by itself.
type ResidencyGroup struct {
	// max is the budget: the number of lazily loaded shards the group's
	// members may keep resident at once. Zero or negative means unlimited.
	max int

	// clock stamps shard use; because every member shares it, recency is
	// comparable across engines and eviction is globally least-recent-first.
	clock atomic.Int64
	// resident counts resident lazy shards across all members.
	resident atomic.Int64

	// evictMu serializes eviction scans; mu guards members.
	evictMu sync.Mutex
	mu      sync.RWMutex
	members []*Engine
}

// NewResidencyGroup returns a residency group with the given budget of
// resident shards across every member engine (0 or negative = unlimited).
// Pass it to many engines via Options.SharedResidency to share the budget.
func NewResidencyGroup(maxResident int) *ResidencyGroup {
	if maxResident < 0 {
		maxResident = 0
	}
	return &ResidencyGroup{max: maxResident}
}

// MaxResident returns the group's budget (0 = unlimited).
func (g *ResidencyGroup) MaxResident() int { return g.max }

// Resident returns the number of resident lazy shards across all members.
func (g *ResidencyGroup) Resident() int { return int(g.resident.Load()) }

// add enrolls an engine; its shards become candidates for eviction.
func (g *ResidencyGroup) add(e *Engine) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members = append(g.members, e)
}

// remove withdraws an engine from the group, evicting every resident lazy
// shard it holds so the budget it consumed returns to the remaining members.
func (g *ResidencyGroup) remove(e *Engine) {
	g.mu.Lock()
	for i, m := range g.members {
		if m == e {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
	for _, s := range e.table.Load().shards {
		if evictShard(s) {
			g.resident.Add(-1)
			e.evictions.Add(1)
		}
	}
}

// enforce evicts globally least-recently-used resident shards until the
// budget holds again. just, when non-nil, is exempt: evicting the shard that
// was loaded for the in-flight query would only thrash. Evicting a shard a
// concurrent query is still traversing is safe — the query keeps its
// immutable subtree snapshot; only the engine's reference is dropped.
func (g *ResidencyGroup) enforce(just *shard) {
	if g.max <= 0 {
		return
	}
	g.evictMu.Lock()
	defer g.evictMu.Unlock()
	for int(g.resident.Load()) > g.max {
		var victim *shard
		var owner *Engine
		var oldest int64
		g.mu.RLock()
		for _, m := range g.members {
			for _, s := range m.table.Load().shards {
				if s == just || s.load == nil || !s.resident() {
					continue
				}
				if lu := s.lastUsed.Load(); victim == nil || lu < oldest {
					victim, owner, oldest = s, m, lu
				}
			}
		}
		g.mu.RUnlock()
		if victim == nil {
			return
		}
		if evictShard(victim) {
			g.resident.Add(-1)
			owner.evictions.Add(1)
		}
	}
}

// evictShard drops the shard's resident subtree, reporting whether anything
// was dropped. A fresh sync.Once is installed so the next touch reloads.
func evictShard(s *shard) bool {
	if s.load == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.root == nil {
		return false
	}
	s.root = nil
	s.once = new(sync.Once)
	return true
}
