package engine

import (
	"math/rand"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
	"themecomm/internal/truss"
)

// randomNetwork generates a dense random database network, the same
// construction the tctree tests use to cross-check the index against the
// miners.
func randomNetwork(rng *rand.Rand, n, m, items, maxTx int) *dbnet.Network {
	nw := dbnet.New(n)
	for i := 0; i < m; i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < n; v++ {
		ntx := 1 + rng.Intn(maxTx)
		for i := 0; i < ntx; i++ {
			l := 1 + rng.Intn(3)
			tx := make([]itemset.Item, l)
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(items))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				panic(err)
			}
		}
	}
	return nw
}

func buildTestTree(t *testing.T, seed int64) *tctree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := randomNetwork(rng, 16, 40, 5, 4)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.NumNodes() == 0 {
		t.Fatalf("generated tree is empty; pick another seed")
	}
	return tree
}

// trussSet renders a query answer as a map pattern → edge set, the
// order-independent form the correctness tests compare.
func trussSet(t *testing.T, trusses []*truss.Truss) map[itemset.Key]graph.EdgeSet {
	t.Helper()
	out := make(map[itemset.Key]graph.EdgeSet, len(trusses))
	for _, tr := range trusses {
		key := tr.Pattern.Key()
		if _, dup := out[key]; dup {
			t.Fatalf("pattern %v retrieved twice", tr.Pattern)
		}
		out[key] = tr.Edges
	}
	return out
}

func assertSameAnswer(t *testing.T, got, want *tctree.QueryResult) {
	t.Helper()
	if got.RetrievedNodes != want.RetrievedNodes {
		t.Fatalf("RetrievedNodes = %d, want %d", got.RetrievedNodes, want.RetrievedNodes)
	}
	if got.VisitedNodes != want.VisitedNodes {
		t.Fatalf("VisitedNodes = %d, want %d", got.VisitedNodes, want.VisitedNodes)
	}
	gotSet, wantSet := trussSet(t, got.Trusses), trussSet(t, want.Trusses)
	if len(gotSet) != len(wantSet) {
		t.Fatalf("retrieved %d distinct patterns, want %d", len(gotSet), len(wantSet))
	}
	for key, wantEdges := range wantSet {
		gotEdges, ok := gotSet[key]
		if !ok {
			t.Fatalf("pattern %v missing from sharded answer", key.Itemset())
		}
		if !gotEdges.Equal(wantEdges) {
			t.Fatalf("pattern %v: sharded truss has %d edges, sequential has %d",
				key.Itemset(), gotEdges.Len(), wantEdges.Len())
		}
	}
}

func TestNewRejectsNilTree(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatalf("nil tree should be rejected")
	}
}

// mustQuery runs a query that is not expected to fail (eager engines never
// do; lazy engines only on shard-load errors).
func mustQuery(t *testing.T, eng *Engine, q itemset.Itemset, alpha float64) *tctree.QueryResult {
	t.Helper()
	res, err := eng.Query(q, alpha)
	if err != nil {
		t.Fatalf("Query(%v, %v): %v", q, alpha, err)
	}
	return res
}

func mustQueryByAlpha(t *testing.T, eng *Engine, alpha float64) *tctree.QueryResult {
	t.Helper()
	res, err := eng.QueryByAlpha(alpha)
	if err != nil {
		t.Fatalf("QueryByAlpha(%v): %v", alpha, err)
	}
	return res
}

// TestShardedMatchesSequential is the central correctness test: on a
// generated network, the sharded parallel answer must equal the
// single-threaded tctree.Query answer for every combination of worker count,
// cache configuration, query pattern and threshold.
func TestShardedMatchesSequential(t *testing.T) {
	tree := buildTestTree(t, 11)
	items := tree.Root().Children
	full := make(itemset.Itemset, 0, len(items))
	for _, c := range items {
		full = append(full, c.Item)
	}
	rng := rand.New(rand.NewSource(23))
	queries := []itemset.Itemset{nil, full, itemset.New(full[0]), itemset.New(full[0], 999)}
	for trial := 0; trial < 6; trial++ {
		var q itemset.Itemset
		for _, it := range full {
			if rng.Intn(2) == 0 {
				q = q.Add(it)
			}
		}
		queries = append(queries, q)
	}
	alphas := []float64{0, 0.1, 0.3, 1.0, tree.MaxAlpha(), tree.MaxAlpha() + 1}

	for _, workers := range []int{1, 4} {
		for _, cacheSize := range []int{0, 16} {
			eng, err := New(tree, Options{Workers: workers, CacheSize: cacheSize})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for _, q := range queries {
				for _, alpha := range alphas {
					var want *tctree.QueryResult
					if q == nil {
						want = tree.QueryByAlpha(alpha)
					} else {
						want = tree.Query(q, alpha)
					}
					// Twice: the second run exercises the cache-hit path
					// when caching is enabled.
					for rep := 0; rep < 2; rep++ {
						got := mustQuery(t, eng, q, alpha)
						assertSameAnswer(t, got, want)
					}
				}
			}
		}
	}
}

// TestDeterministicMerge checks that repeated executions (cache disabled, so
// every run re-traverses the shards in parallel) produce the same truss
// order, not just the same truss set.
func TestDeterministicMerge(t *testing.T) {
	tree := buildTestTree(t, 5)
	eng, err := New(tree, Options{Workers: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	first := mustQueryByAlpha(t, eng, 0)
	for rep := 0; rep < 10; rep++ {
		again := mustQueryByAlpha(t, eng, 0)
		if len(again.Trusses) != len(first.Trusses) {
			t.Fatalf("run %d retrieved %d trusses, first run %d", rep, len(again.Trusses), len(first.Trusses))
		}
		for i := range again.Trusses {
			if !again.Trusses[i].Pattern.Equal(first.Trusses[i].Pattern) {
				t.Fatalf("run %d: truss %d is %v, first run had %v",
					rep, i, again.Trusses[i].Pattern, first.Trusses[i].Pattern)
			}
		}
	}
}

// TestQueryBatch checks that a batch answer equals the per-query answers, in
// request order.
func TestQueryBatch(t *testing.T) {
	tree := buildTestTree(t, 7)
	eng, err := New(tree, Options{Workers: 4, CacheSize: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var reqs []Request
	for _, c := range tree.Root().Children {
		reqs = append(reqs,
			Request{Pattern: itemset.New(c.Item), Alpha: 0},
			Request{Pattern: nil, Alpha: 0.2},
			Request{Pattern: itemset.New(c.Item), Alpha: 0}, // repeat: cache fodder
		)
	}
	answers, err := eng.QueryBatch(reqs)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	if len(answers) != len(reqs) {
		t.Fatalf("got %d answers for %d requests", len(answers), len(reqs))
	}
	for i, r := range reqs {
		var want *tctree.QueryResult
		if r.Pattern == nil {
			want = tree.QueryByAlpha(r.Alpha)
		} else {
			want = tree.Query(r.Pattern, r.Alpha)
		}
		assertSameAnswer(t, answers[i], want)
	}
	if got := eng.Stats().Batches; got != 1 {
		t.Fatalf("Batches = %d, want 1", got)
	}
}

// TestCanonicalization checks that queries differing only in items the index
// does not know about share one cache entry.
func TestCanonicalization(t *testing.T) {
	tree := buildTestTree(t, 7)
	eng, err := New(tree, Options{CacheSize: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	first := tree.Root().Children[0].Item
	mustQuery(t, eng, itemset.New(first), 0.1)
	mustQuery(t, eng, itemset.New(first, 4096), 0.1) // 4096 is not an indexed item
	stats := eng.Stats()
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1 hit and 1 miss", stats.Cache.Hits, stats.Cache.Misses)
	}
	if stats.Cache.Length != 1 {
		t.Fatalf("cache holds %d entries, want 1", stats.Cache.Length)
	}
}

// TestStats checks the counter plumbing end to end.
func TestStats(t *testing.T) {
	tree := buildTestTree(t, 7)
	eng, err := New(tree, Options{Workers: 3, CacheSize: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stats := eng.Stats()
	if stats.Shards != eng.NumShards() || stats.Shards != len(tree.Root().Children) {
		t.Fatalf("Shards = %d, want %d", stats.Shards, len(tree.Root().Children))
	}
	if stats.Workers != 3 {
		t.Fatalf("Workers = %d, want 3", stats.Workers)
	}
	if !stats.Cache.Enabled || stats.Cache.Capacity != 2 {
		t.Fatalf("cache stats = %+v, want enabled with capacity 2", stats.Cache)
	}

	mustQueryByAlpha(t, eng, 0)   // miss
	mustQueryByAlpha(t, eng, 0)   // hit
	mustQueryByAlpha(t, eng, 0.1) // miss
	mustQueryByAlpha(t, eng, 0.2) // miss, evicts the α=0 entry
	mustQueryByAlpha(t, eng, 0)   // miss again
	stats = eng.Stats()
	if stats.Queries != 5 {
		t.Fatalf("Queries = %d, want 5", stats.Queries)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 4 || stats.Cache.Evictions < 1 {
		t.Fatalf("cache counters = %+v, want 1 hit, 4 misses, ≥1 eviction", stats.Cache)
	}

	// Disabled cache: every repeat re-executes, counters stay zero.
	uncached, err := New(tree, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mustQueryByAlpha(t, uncached, 0)
	mustQueryByAlpha(t, uncached, 0)
	stats = uncached.Stats()
	if stats.Cache.Enabled || stats.Cache.Hits != 0 || stats.Cache.Misses != 0 {
		t.Fatalf("disabled cache has stats %+v", stats.Cache)
	}
}
