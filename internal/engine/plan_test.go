package engine

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// planInfos is a synthetic shard catalogue for the pure-planner tests:
// heterogeneous sizes and α* bounds, mixed residency.
func planInfos() []ShardInfo {
	return []ShardInfo{
		{Item: 1, Nodes: 10, Depth: 2, MaxAlpha: 0.5, Resident: false},
		{Item: 2, Nodes: 100, Depth: 4, MaxAlpha: 2.0, Resident: true},
		{Item: 3, Nodes: 40, Depth: 3, MaxAlpha: 0.1, Resident: false},
		{Item: 5, Nodes: 70, Depth: 3, MaxAlpha: 1.5, Resident: false},
	}
}

// TestPlanDecisions checks every decision of the pure planner: absent root
// items, α*-provable skips, resident versus load, and the tallies.
func TestPlanDecisions(t *testing.T) {
	q := itemset.New(1, 2, 3)
	plan := PlanQuery(planInfos(), q, 0.3, DefaultPlanConfig())
	want := map[itemset.Item]Decision{
		1: DecisionLoad,       // α* 0.5 > 0.3, not resident
		2: DecisionResident,   // α* 2.0 > 0.3, resident
		3: DecisionSkipAlpha,  // α* 0.1 ≤ 0.3: provably empty
		5: DecisionSkipAbsent, // 5 ∉ q
	}
	if len(plan.Tasks) != len(want) {
		t.Fatalf("planned %d tasks, want %d", len(plan.Tasks), len(want))
	}
	for _, task := range plan.Tasks {
		if task.Decision != want[task.Item] {
			t.Errorf("shard %d: decision %q, want %q", task.Item, task.Decision, want[task.Item])
		}
	}
	if plan.Loads != 1 || plan.Resident != 1 || plan.SkippedAlpha != 1 || plan.SkippedAbsent != 1 {
		t.Fatalf("tallies load=%d resident=%d skipAlpha=%d skipAbsent=%d, want 1 each",
			plan.Loads, plan.Resident, plan.SkippedAlpha, plan.SkippedAbsent)
	}
	// The boundary is exact: α_q equal to the α* bound skips (C*_p(α) = ∅
	// for α ≥ α*), α_q just below it does not.
	boundary := PlanQuery(planInfos(), itemset.New(1), 0.5, DefaultPlanConfig())
	if got := boundary.Tasks[0].Decision; got != DecisionSkipAlpha {
		t.Fatalf("α_q = α*: decision %q, want skip", got)
	}
	below := PlanQuery(planInfos(), itemset.New(1), 0.4999, DefaultPlanConfig())
	if got := below.Tasks[0].Decision; got != DecisionLoad {
		t.Fatalf("α_q < α*: decision %q, want load", got)
	}
}

// TestPlanCostOrdering checks the schedule: most expensive first, with
// non-resident shards weighted up by the load cost, and skipped tasks never
// scheduled.
func TestPlanCostOrdering(t *testing.T) {
	plan := PlanQuery(planInfos(), nil, 0.3, DefaultPlanConfig())
	// Scheduled: shard 5 (70 nodes × load weight), shard 1 (10 × load
	// weight), shard 2 (100 resident). Costs 280, 40, 100 → order 5, 2, 1.
	var got []itemset.Item
	for _, i := range plan.Order {
		got = append(got, plan.Tasks[i].Item)
	}
	want := []itemset.Item{5, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("schedule %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule %v, want %v", got, want)
		}
	}
	if plan.TotalCost != 280+100+40 {
		t.Fatalf("TotalCost = %v, want 420", plan.TotalCost)
	}

	// Planning off: no α* skip, no reordering — every relevant shard runs
	// in ascending item order.
	off := PlanQuery(planInfos(), nil, 0.3, PlanConfig{})
	if off.SkippedAlpha != 0 || len(off.Order) != len(off.Tasks) {
		t.Fatalf("planner-off plan skipped %d, scheduled %d of %d", off.SkippedAlpha, len(off.Order), len(off.Tasks))
	}
	if !sort.IntsAreSorted(off.Order) {
		t.Fatalf("planner-off schedule %v is not in plan order", off.Order)
	}
}

// assertIdenticalAnswer is the strict form of assertSameAnswer: the truss
// sequence (order included), edge sets and counters must all match — the
// "byte-identical" planner parity contract.
func assertIdenticalAnswer(t *testing.T, got, want *tctree.QueryResult) {
	t.Helper()
	if got.RetrievedNodes != want.RetrievedNodes || got.VisitedNodes != want.VisitedNodes {
		t.Fatalf("counters (%d retrieved, %d visited), want (%d, %d)",
			got.RetrievedNodes, got.VisitedNodes, want.RetrievedNodes, want.VisitedNodes)
	}
	if len(got.Trusses) != len(want.Trusses) {
		t.Fatalf("%d trusses, want %d", len(got.Trusses), len(want.Trusses))
	}
	for i := range want.Trusses {
		if !got.Trusses[i].Pattern.Equal(want.Trusses[i].Pattern) {
			t.Fatalf("truss %d is %v, want %v", i, got.Trusses[i].Pattern, want.Trusses[i].Pattern)
		}
		if !got.Trusses[i].Edges.Equal(want.Trusses[i].Edges) {
			t.Fatalf("truss %d (%v): edge sets differ", i, got.Trusses[i].Pattern)
		}
	}
}

// TestPlannerParity is the planner on/off correctness matrix: for a corpus
// of queries spanning all-items, single-shard, subset and unindexed-item
// patterns across the full α range, the planning engine must produce
// byte-identical answers to the non-planning one, on both eager and lazy
// engines.
func TestPlannerParity(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	full := make(itemset.Itemset, 0, len(tree.Root().Children))
	for _, c := range tree.Root().Children {
		full = append(full, c.Item)
	}
	queries := []itemset.Itemset{nil, full, itemset.New(full[0]), itemset.New(full[0], 999), full[:len(full)/2]}
	alphas := []float64{0, 0.1, 0.3, 1.0, tree.MaxAlpha(), tree.MaxAlpha() + 1}
	// Per-shard α* bounds give each shard an α_q that skips it exactly.
	for _, st := range tree.ShardStats() {
		alphas = append(alphas, st.MaxAlpha)
	}

	type variant struct {
		name string
		mk   func(opts Options) (*Engine, error)
	}
	variants := []variant{
		{"eager", func(opts Options) (*Engine, error) { return New(tree, opts) }},
		{"lazy", func(opts Options) (*Engine, error) { return NewLazy(idx, opts) }},
		{"lazy-budget", func(opts Options) (*Engine, error) {
			opts.MaxResidentShards = 1
			return NewLazy(idx, opts)
		}},
	}
	for _, v := range variants {
		on, err := v.mk(Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s planner-on: %v", v.name, err)
		}
		off, err := v.mk(Options{Workers: 4, DisablePlanner: true})
		if err != nil {
			t.Fatalf("%s planner-off: %v", v.name, err)
		}
		if !on.Planner() || off.Planner() {
			t.Fatalf("%s: Planner() on=%v off=%v", v.name, on.Planner(), off.Planner())
		}
		for _, q := range queries {
			for _, alpha := range alphas {
				want := mustQuery(t, off, q, alpha)
				got := mustQuery(t, on, q, alpha)
				assertIdenticalAnswer(t, got, want)
				// Against the single-threaded tree walk only the truss
				// set is comparable: the engine groups by shard, the
				// tree interleaves levels across shards.
				var wantTree *tctree.QueryResult
				if q == nil {
					wantTree = tree.QueryByAlpha(alpha)
				} else {
					wantTree = tree.Query(q, alpha)
				}
				assertSameAnswer(t, got, wantTree)
			}
		}
	}
}

// TestPlannerSkipAvoidsLoads is the data-skipping acceptance test: on a lazy
// engine, a query whose α_q meets some shards' α* bounds must load strictly
// fewer shards than a planner-off engine — and the skipped shard files must
// never be read at all, which the test proves by deleting them.
func TestPlannerSkipAvoidsLoads(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, dir := writeShardedTestTree(t, tree)
	stats := tree.ShardStats()
	alphas := make([]float64, 0, len(stats))
	for _, st := range stats {
		alphas = append(alphas, st.MaxAlpha)
	}
	sort.Float64s(alphas)
	alphaQ := alphas[len(alphas)/2] // skips at least half the shards
	skippable := 0
	for _, st := range stats {
		if alphaQ >= st.MaxAlpha {
			skippable++
		}
	}
	if skippable == 0 || skippable == len(stats) {
		t.Fatalf("test tree has no α* spread (%d of %d skippable); pick another seed", skippable, len(stats))
	}

	off, err := NewLazy(idx, Options{DisablePlanner: true})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	wantOff := mustQueryByAlpha(t, off, alphaQ)
	if got := off.Stats().LazyLoads; got != uint64(len(stats)) {
		t.Fatalf("planner-off loaded %d shards, want all %d", got, len(stats))
	}

	// Delete the skippable shard files: the planner must answer without
	// ever opening them.
	for _, st := range stats {
		if alphaQ >= st.MaxAlpha {
			entry, ok := idx.Entry(st.Item)
			if !ok {
				t.Fatalf("no manifest entry for %d", st.Item)
			}
			if err := os.Remove(filepath.Join(dir, entry.File)); err != nil {
				t.Fatalf("Remove: %v", err)
			}
		}
	}
	on, err := NewLazy(idx, Options{})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	got := mustQueryByAlpha(t, on, alphaQ)
	assertIdenticalAnswer(t, got, wantOff)
	st := on.Stats()
	if st.LazyLoads != uint64(len(stats)-skippable) {
		t.Fatalf("planner-on loaded %d shards, want %d", st.LazyLoads, len(stats)-skippable)
	}
	if st.LazyLoads >= off.Stats().LazyLoads {
		t.Fatalf("planner-on loads (%d) not strictly fewer than planner-off (%d)", st.LazyLoads, off.Stats().LazyLoads)
	}
	if st.ShardsSkipped != uint64(skippable) {
		t.Fatalf("ShardsSkipped = %d, want %d", st.ShardsSkipped, skippable)
	}
	// A lower α_q that needs a deleted shard must now fail loudly — proof
	// the skip was the only reason the query above succeeded.
	if _, err := on.QueryByAlpha(0); err == nil {
		t.Fatalf("query at α 0 should need the deleted shards")
	}
}

// TestPrefetch forces the prefetcher to do real work: one traversal worker
// chews through a multi-shard plan serially while the prefetch pool warms
// the tail, so by the end some loads must have been performed by the
// prefetcher. Shard loads are slowed down to make the overlap deterministic.
func TestPrefetch(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{Workers: 1, PrefetchWorkers: 2})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	if len(eng.table.Load().shards) < 3 {
		t.Fatalf("need at least 3 shards, have %d", len(eng.table.Load().shards))
	}
	for _, s := range eng.table.Load().shards {
		load := s.load
		s.load = func() (tctree.ShardView, error) {
			time.Sleep(2 * time.Millisecond)
			return load()
		}
	}
	assertSameAnswer(t, mustQueryByAlpha(t, eng, 0), tree.QueryByAlpha(0))
	st := eng.Stats()
	if st.PrefetchWorkers != 2 {
		t.Fatalf("PrefetchWorkers = %d, want 2", st.PrefetchWorkers)
	}
	if st.LazyLoads != uint64(len(eng.table.Load().shards)) {
		t.Fatalf("LazyLoads = %d, want one per shard (%d) — prefetch must share loads, not duplicate them",
			st.LazyLoads, len(eng.table.Load().shards))
	}
	if st.ShardsPrefetched == 0 {
		t.Fatalf("no loads were performed by the prefetcher")
	}
	// Planner-off and negative PrefetchWorkers engines must not prefetch.
	for _, opts := range []Options{{DisablePlanner: true}, {PrefetchWorkers: -1}} {
		plain, err := NewLazy(idx, opts)
		if err != nil {
			t.Fatalf("NewLazy: %v", err)
		}
		mustQueryByAlpha(t, plain, 0)
		if got := plain.Stats().ShardsPrefetched; got != 0 {
			t.Fatalf("opts %+v: prefetched %d shards, want 0", opts, got)
		}
	}
}

// TestPrefetchEvictionRace hammers a tightly budgeted prefetching engine
// from many goroutines so prefetch loads, traversal loads and evictions
// race; run with -race it verifies the locking discipline, and every answer
// must still be correct.
func TestPrefetchEvictionRace(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{Workers: 2, PrefetchWorkers: 2, MaxResidentShards: 1, CacheSize: 4})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	want := tree.QueryByAlpha(0)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				got, err := eng.QueryByAlpha(0)
				if err != nil {
					errs <- err
					return
				}
				if got.RetrievedNodes != want.RetrievedNodes || got.VisitedNodes != want.VisitedNodes {
					errs <- errMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := eng.Stats().ResidentShards; got > 1 {
		t.Fatalf("budget 1 exceeded under prefetch: %d resident", got)
	}
}

// errMismatch keeps TestPrefetchEvictionRace's channel error-typed.
var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "answer does not match the tree" }

// TestQueryByAlphaCacheKey checks that the query-by-alpha workload is cached
// under the empty-pattern sentinel: a nil query and an explicit pattern
// covering every indexed item share one entry, and ReloadShard invalidates
// it regardless of which shard was swapped.
func TestQueryByAlphaCacheKey(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{CacheSize: 8})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	full := make(itemset.Itemset, 0, len(tree.Root().Children))
	for _, c := range tree.Root().Children {
		full = append(full, c.Item)
	}
	mustQueryByAlpha(t, eng, 0.1)    // miss, executes
	mustQuery(t, eng, full, 0.1)     // full explicit pattern: same key, hit
	mustQueryByAlpha(t, eng, 0.1)    // hit
	mustQuery(t, eng, full[:1], 0.1) // different pattern: miss
	st := eng.Stats()
	if st.Cache.Hits != 2 || st.Cache.Misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 2 and 2", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.Length != 2 {
		t.Fatalf("cache holds %d entries, want 2 (shared QBA entry + single-item entry)", st.Cache.Length)
	}
	// Swapping any shard invalidates the full-pattern entry (it depends on
	// every shard) and the single-item entry only if it matches.
	victim := full[len(full)-1]
	if err := eng.ReloadShard(victim); err != nil {
		t.Fatalf("ReloadShard: %v", err)
	}
	if got := eng.Stats().Cache.Length; got != 1 {
		t.Fatalf("after reloading shard %d the cache holds %d entries, want 1", victim, got)
	}
	if err := eng.ReloadShard(full[0]); err != nil {
		t.Fatalf("ReloadShard: %v", err)
	}
	if got := eng.Stats().Cache.Length; got != 0 {
		t.Fatalf("after reloading shard %d the cache holds %d entries, want 0", full[0], got)
	}
}

// TestExplain checks the Explain surface end to end on a lazy engine: every
// shard appears with a decision, the counters add up, execution matches
// Query, and the cache is bypassed.
func TestExplain(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{CacheSize: 8})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	first := tree.Root().Children[0].Item
	q := itemset.New(first)
	rep, err := eng.Explain(q, 0)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if rep.Shards != len(eng.table.Load().shards) || len(rep.Tasks) != rep.Shards {
		t.Fatalf("report covers %d tasks of %d shards, want all %d", len(rep.Tasks), rep.Shards, len(eng.table.Load().shards))
	}
	if rep.SkippedAbsent != rep.Shards-1 {
		t.Fatalf("SkippedAbsent = %d, want %d", rep.SkippedAbsent, rep.Shards-1)
	}
	if rep.SkippedAlpha+rep.ResidentTasks+rep.LoadTasks != 1 {
		t.Fatalf("exactly one shard should execute or α*-skip: %+v", rep)
	}
	for _, task := range rep.Tasks {
		if task.Item == first {
			if task.Decision.Skipped() && rep.SkippedAlpha == 0 {
				t.Fatalf("shard %d wrongly skipped: %q", first, task.Decision)
			}
		} else if task.Decision != DecisionSkipAbsent {
			t.Fatalf("shard %d: decision %q, want skip-absent", task.Item, task.Decision)
		}
	}
	want := mustQuery(t, eng, q, 0)
	if rep.RetrievedNodes != want.RetrievedNodes || rep.VisitedNodes != want.VisitedNodes {
		t.Fatalf("Explain summary (%d, %d) does not match Query (%d, %d)",
			rep.RetrievedNodes, rep.VisitedNodes, want.RetrievedNodes, want.VisitedNodes)
	}
	// Explain neither reads nor writes the cache: the Query above was its
	// first hit-or-miss.
	st := eng.Stats()
	if st.Explains != 1 {
		t.Fatalf("Explains = %d, want 1", st.Explains)
	}
	if st.Cache.Hits != 0 || st.Cache.Misses != 1 {
		t.Fatalf("Explain touched the cache: hits=%d misses=%d", st.Cache.Hits, st.Cache.Misses)
	}
	// A full explain at a skipping α_q reports the α* skips.
	stats := tree.ShardStats()
	alphas := make([]float64, 0, len(stats))
	for _, s := range stats {
		alphas = append(alphas, s.MaxAlpha)
	}
	sort.Float64s(alphas)
	repAll, err := eng.Explain(nil, alphas[len(alphas)/2])
	if err != nil {
		t.Fatalf("Explain(nil): %v", err)
	}
	if !repAll.Full {
		t.Fatalf("nil query should report Full")
	}
	if repAll.SkippedAlpha == 0 {
		t.Fatalf("median-α* explain reports no α* skips")
	}
	if len(repAll.ScheduleOrder) != repAll.ResidentTasks+repAll.LoadTasks {
		t.Fatalf("schedule lists %d tasks, want %d", len(repAll.ScheduleOrder), repAll.ResidentTasks+repAll.LoadTasks)
	}
}
