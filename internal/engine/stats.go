package engine

// CacheStats reports the state of the result cache.
type CacheStats struct {
	// Enabled reports whether the engine was built with a result cache.
	Enabled bool `json:"enabled"`
	// Capacity and Length are the bound and current size of the cache.
	Capacity int `json:"capacity"`
	Length   int `json:"length"`
	// Hits, Misses and Evictions count cache lookups that were served,
	// lookups that fell through to execution, and entries displaced by the
	// LRU policy.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Shared marks a cache owned by a federation rather than this engine;
	// capacity, length and counters are then global across every tenant.
	Shared bool `json:"shared,omitempty"`
}

// ShardStat is the catalogue and residency state of one shard.
type ShardStat struct {
	// Item is the shard's root item.
	Item int32 `json:"item"`
	// Nodes and MaxAlpha are the shard's node count and α* bound.
	Nodes    int     `json:"nodes"`
	MaxAlpha float64 `json:"maxAlpha"`
	// Resident reports whether the shard subtree is in memory. Eager
	// engines keep every shard resident; lazy engines load on first touch
	// and may evict under the residency budget.
	Resident bool `json:"resident"`
	// Bytes is the resident view's memory charge — mapped file size for
	// TCBIN shards, serialized payload size for gob shards — 0 when the
	// shard is not resident or the size is unknown (eager shards).
	Bytes int64 `json:"bytes,omitempty"`
	// Loads counts the shard's completed disk loads (lazy engines only).
	Loads uint64 `json:"loads,omitempty"`
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Shards is the number of TC-Tree partitions (indexed top-level items).
	Shards int `json:"shards"`
	// Workers is the shard-traversal parallelism.
	Workers int `json:"workers"`
	// Lazy reports whether shards are loaded from disk on demand.
	Lazy bool `json:"lazy"`
	// Format is the shard encoding the engine serves from: "gob" or "tcbin"
	// for lazy engines (the on-disk index's format), "memory" for eager
	// engines built from a resident tree.
	Format string `json:"format"`
	// ResidentShards is the number of shards currently in memory; for eager
	// engines it always equals Shards. ResidentBytes sums the resident
	// views' memory charges (mapped file size for TCBIN, payload size for
	// gob; always 0 on eager engines, whose views report no size).
	ResidentShards int   `json:"residentShards"`
	ResidentBytes  int64 `json:"residentBytes,omitempty"`
	// MaxResidentShards and MaxResidentBytes are the lazy residency budgets
	// (0 = unlimited); either bound being exceeded triggers LRU eviction.
	// When SharedResidency is set the budgets are federation-wide bounds
	// across every member engine's shards, and GroupResidentShards /
	// GroupResidentBytes report the group-wide resident totals this engine
	// contributes to.
	MaxResidentShards   int   `json:"maxResidentShards,omitempty"`
	MaxResidentBytes    int64 `json:"maxResidentBytes,omitempty"`
	SharedResidency     bool  `json:"sharedResidency,omitempty"`
	GroupResidentShards int   `json:"groupResidentShards,omitempty"`
	GroupResidentBytes  int64 `json:"groupResidentBytes,omitempty"`
	// Planner reports whether cost-based planning (α* shard skipping, cost
	// ordering, prefetch) is enabled; PrefetchWorkers is the background
	// prefetch-pool bound (0 = prefetch disabled).
	Planner         bool `json:"planner"`
	PrefetchWorkers int  `json:"prefetchWorkers,omitempty"`
	// LazyLoads and ShardEvictions count completed disk loads and
	// budget-driven evictions across all shards (lazy engines only).
	LazyLoads      uint64 `json:"lazyLoads,omitempty"`
	ShardEvictions uint64 `json:"shardEvictions,omitempty"`
	// ShardsSkipped counts shard tasks the planner answered from the α*
	// bound alone — relevant shards that were neither traversed nor (on a
	// lazy engine) read from disk. ShardsSkippedCatalogue counts containment
	// shard tasks the per-shard catalogue pruned instead (item bloom filter
	// or α*-by-depth histogram). ShardsPrefetched counts disk loads
	// performed by the background prefetcher rather than by a traversal
	// (also included in LazyLoads).
	ShardsSkipped          uint64 `json:"shardsSkipped"`
	ShardsSkippedCatalogue uint64 `json:"shardsSkippedCatalogue,omitempty"`
	ShardsPrefetched       uint64 `json:"shardsPrefetched,omitempty"`
	// Queries counts Query calls (including those issued by QueryBatch and
	// TopK); Batches, TopKQueries and Explains count QueryBatch, TopK and
	// Explain calls.
	Queries     uint64 `json:"queries"`
	Batches     uint64 `json:"batches"`
	TopKQueries uint64 `json:"topKQueries"`
	Explains    uint64 `json:"explains,omitempty"`
	// Streams counts StreamQuery/StreamTopK calls; ShardsShortCircuited
	// counts scheduled shard tasks streams never opened because top-k early
	// termination proved their α* bound could not improve the answer —
	// relevant, non-α*-skipped shards that were nonetheless neither traversed
	// nor (on a lazy engine) read from disk.
	Streams              uint64 `json:"streams,omitempty"`
	ShardsShortCircuited uint64 `json:"shardsShortCircuited,omitempty"`
	// IndexEpoch counts index swaps (shard reloads and applied deltas);
	// DeltasApplied counts ApplyDelta calls. A query result always reflects
	// one single epoch.
	IndexEpoch    uint64 `json:"indexEpoch"`
	DeltasApplied uint64 `json:"deltasApplied,omitempty"`
	// Cache reports the result-cache state.
	Cache CacheStats `json:"cache"`
	// ShardResidency lists every shard in ascending root-item order with its
	// catalogue statistics and residency state.
	ShardResidency []ShardStat `json:"shardResidency,omitempty"`
}

// Stats returns a snapshot of the engine counters. It is safe to call
// concurrently with Query, ApplyDelta, ReloadShard and every other engine
// method, and it never blocks them: the shard table is read through one
// atomic pointer load and each counter through one atomic load.
//
// Snapshot semantics: the shard table (Shards, ShardResidency) is one
// consistent table — never a mix of pre- and post-delta shard sets — because
// updates install a whole new table in a single atomic store. The scalar
// counters, however, are each read atomically but at slightly different
// instants, so cross-counter identities need not hold exactly under
// concurrent load: a snapshot may observe a query whose cache miss is counted
// but whose execution counters have not landed yet (e.g. Cache.Hits +
// Cache.Misses may transiently exceed Queries, or LazyLoads may trail a
// ShardResidency entry already marked resident). Every counter is
// monotonically non-decreasing (except Cache.Length, ResidentShards and
// GroupResidentShards, which are gauges), so rates computed between two
// snapshots are meaningful; exact cross-counter equalities are only
// guaranteed on a quiescent engine.
func (e *Engine) Stats() Stats {
	t := e.table.Load()
	s := Stats{
		Shards:                 len(t.shards),
		Workers:                e.workers,
		Lazy:                   e.Lazy(),
		Format:                 e.Format(),
		MaxResidentShards:      e.res.max,
		MaxResidentBytes:       e.res.maxBytes,
		SharedResidency:        e.sharedRes,
		Planner:                e.Planner(),
		PrefetchWorkers:        cap(e.prefetchSem),
		LazyLoads:              e.lazyLoads.Load(),
		ShardEvictions:         e.evictions.Load(),
		ShardsSkipped:          e.skipped.Load(),
		ShardsSkippedCatalogue: e.skippedCatalogue.Load(),
		ShardsPrefetched:       e.prefetched.Load(),
		Queries:                e.queries.Load(),
		Batches:                e.batches.Load(),
		TopKQueries:            e.topKs.Load(),
		Explains:               e.explains.Load(),
		Streams:                e.streams.Load(),
		ShardsShortCircuited:   e.shortCircuited.Load(),
		IndexEpoch:             e.epoch.Load(),
		DeltasApplied:          e.deltas.Load(),
	}
	for _, sh := range t.shards {
		nodes, _, maxAlpha := sh.meta()
		stat := ShardStat{
			Item:     int32(sh.item),
			Nodes:    nodes,
			MaxAlpha: maxAlpha,
			Resident: sh.resident(),
			Bytes:    sh.sizeBytes(),
			Loads:    sh.loads.Load(),
		}
		if stat.Resident {
			s.ResidentShards++
		}
		s.ResidentBytes += stat.Bytes
		s.ShardResidency = append(s.ShardResidency, stat)
	}
	if e.sharedRes {
		s.GroupResidentShards = e.res.Resident()
		s.GroupResidentBytes = e.res.ResidentBytes()
	}
	if e.cache != nil {
		s.Cache.Enabled = true
		s.Cache.Shared = e.sharedCache
		s.Cache.Capacity = e.cache.cap
		s.Cache.Length = e.cache.len()
		s.Cache.Hits, s.Cache.Misses, s.Cache.Evictions = e.cache.counters()
	}
	return s
}
