package engine

// CacheStats reports the state of the result cache.
type CacheStats struct {
	// Enabled reports whether the engine was built with a result cache.
	Enabled bool `json:"enabled"`
	// Capacity and Length are the bound and current size of the cache.
	Capacity int `json:"capacity"`
	Length   int `json:"length"`
	// Hits, Misses and Evictions count cache lookups that were served,
	// lookups that fell through to execution, and entries displaced by the
	// LRU policy.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Shards is the number of TC-Tree partitions (indexed top-level items).
	Shards int `json:"shards"`
	// Workers is the shard-traversal parallelism.
	Workers int `json:"workers"`
	// Queries counts Query calls (including those issued by QueryBatch and
	// TopK); Batches and TopKQueries count QueryBatch and TopK calls.
	Queries     uint64 `json:"queries"`
	Batches     uint64 `json:"batches"`
	TopKQueries uint64 `json:"topKQueries"`
	// Cache reports the result-cache state.
	Cache CacheStats `json:"cache"`
}

// Stats returns a consistent snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Shards:      len(e.shards),
		Workers:     e.workers,
		Queries:     e.queries.Load(),
		Batches:     e.batches.Load(),
		TopKQueries: e.topKs.Load(),
	}
	if e.cache != nil {
		s.Cache.Enabled = true
		s.Cache.Capacity = e.cache.cap
		s.Cache.Length = e.cache.len()
		s.Cache.Hits, s.Cache.Misses, s.Cache.Evictions = e.cache.counters()
	}
	return s
}
