package engine

import (
	"time"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// TaskReport is one shard of an Explain answer: the planned task annotated
// with what actually happened when the plan ran.
type TaskReport struct {
	ShardTask
	// Micros is the task's wall time (acquire + traversal); zero for
	// skipped tasks, which do no work.
	Micros int64 `json:"micros,omitempty"`
	// Loaded reports whether this execution read the shard from disk (the
	// shard was not resident and no concurrent query or prefetch got there
	// first).
	Loaded bool `json:"loaded,omitempty"`
	// Visited and Trusses are the task's share of the answer: nodes
	// inspected and trusses retrieved.
	Visited int `json:"visited"`
	Trusses int `json:"trusses"`
}

// ExplainReport is the answer of Engine.Explain: the full query plan —
// every shard with its decision, including the shards the query pattern
// excludes — plus the observed execution counters.
type ExplainReport struct {
	// Pattern is the canonicalized query pattern; Full marks a pattern
	// covering every indexed item (the query-by-alpha workload).
	Pattern itemset.Itemset `json:"pattern"`
	Full    bool            `json:"full"`
	// Mode is the query semantics the plan served; empty means sub-pattern.
	Mode QueryMode `json:"mode,omitempty"`
	// Alpha is the cohesion threshold α_q.
	Alpha float64 `json:"alpha"`
	// Planner, Lazy and Workers describe the engine the plan ran on.
	Planner bool `json:"planner"`
	Lazy    bool `json:"lazy"`
	Workers int  `json:"workers"`
	// Shards is the total shard count; the fields below tally the per-shard
	// decisions.
	Shards        int `json:"shards"`
	SkippedAlpha  int `json:"skippedAlpha"`
	SkippedAbsent int `json:"skippedAbsent"`
	// SkippedBloom and SkippedHist tally the containment-only catalogue
	// skips: shards ruled out by the item bloom filter and by the
	// α*-by-depth histogram. Always zero for sub-pattern plans.
	SkippedBloom  int `json:"skippedBloom,omitempty"`
	SkippedHist   int `json:"skippedHist,omitempty"`
	ResidentTasks int `json:"residentTasks"`
	LoadTasks     int `json:"loadTasks"`
	// Loaded counts the disk loads this execution performed itself;
	// Prefetched counts loads the background prefetcher completed for this
	// plan (best-effort: a prefetch still in flight when the plan finishes
	// is not attributed).
	Loaded     int `json:"loaded"`
	Prefetched int `json:"prefetched"`
	// ShortCircuited counts scheduled shards a stream never opened: top-k
	// early termination proved their α* bound could not improve the emitted
	// answer. Always zero for materializing executions, which traverse every
	// scheduled shard.
	ShortCircuited int `json:"shortCircuited,omitempty"`
	// TotalCost is the planner's summed cost estimate of the scheduled
	// tasks.
	TotalCost float64 `json:"totalCost"`
	// ScheduleOrder lists the scheduled shards' root items in execution
	// order (most expensive first on a planning engine). It is a plain
	// slice, not a canonical itemset: cost order is not item order.
	ScheduleOrder []itemset.Item `json:"scheduleOrder"`
	// Tasks lists every shard in ascending root-item order with its
	// decision and execution record.
	Tasks []TaskReport `json:"tasks"`
	// RetrievedNodes, VisitedNodes and Micros summarise the executed
	// answer, matching what Query would have returned.
	RetrievedNodes int   `json:"retrievedNodes"`
	VisitedNodes   int   `json:"visitedNodes"`
	Micros         int64 `json:"micros"`
}

// Explain plans (q, alphaQ), executes the plan, and returns the per-shard
// decisions and post-execution counters. Unlike Query it considers every
// shard — so the report shows which shards the pattern excluded — and it
// bypasses the result cache in both directions: Explain measures the
// execution a cold query would pay, and its answer is discarded rather than
// cached. A nil q means every item (query by alpha).
func (e *Engine) Explain(q itemset.Itemset, alphaQ float64) (*ExplainReport, error) {
	e.explains.Add(1)
	start := time.Now()
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	t := e.table.Load()
	eff, full := canonical(t, q)
	infos := make([]ShardInfo, len(t.shards))
	for i, s := range t.shards {
		infos[i] = s.info()
	}
	plan := PlanQuery(infos, eff, alphaQ, e.planCfg)
	res, exec, err := e.executePlan(t, plan)
	if err != nil {
		return nil, err
	}
	report := e.planReport(plan, exec, eff, full, res)
	report.Micros = time.Since(start).Microseconds()
	return report, nil
}

// ExplainContaining is Explain for the containment workload (every indexed
// p ⊇ q at alphaQ): it plans every shard under ModeContaining — so the
// report shows the catalogue at work, bloom and histogram skips included —
// executes the plan, and discards nothing from the decision breakdown. An
// empty q degenerates to Explain(nil, alphaQ), matching QueryContaining.
func (e *Engine) ExplainContaining(q itemset.Itemset, alphaQ float64) (*ExplainReport, error) {
	if q.Len() == 0 {
		return e.Explain(nil, alphaQ)
	}
	e.explains.Add(1)
	start := time.Now()
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	t := e.table.Load()
	eff := itemset.New(q...)
	infos := make([]ShardInfo, len(t.shards))
	for i, s := range t.shards {
		infos[i] = s.info()
	}
	plan := PlanQueryMode(infos, eff, alphaQ, ModeContaining, e.planCfg)
	res, exec, err := e.executePlan(t, plan)
	if err != nil {
		return nil, err
	}
	report := e.planReport(plan, exec, eff, false, res)
	report.Micros = time.Since(start).Microseconds()
	return report, nil
}

// planReport assembles the per-shard plan/execution report of one executed
// plan. Explain returns it directly; queryLocked hands it to the injected
// Recorder as the lazy Detail payload, so a slow query's log entry carries
// the same per-shard breakdown an Explain of the query would have shown —
// for the execution that actually was slow, not a rerun.
func (e *Engine) planReport(plan *QueryPlan, exec planExec, eff itemset.Itemset, full bool, res *tctree.QueryResult) *ExplainReport {
	mode := plan.Mode
	if mode == ModeSub {
		mode = "" // the default; keep sub-pattern reports unchanged
	}
	report := &ExplainReport{
		Pattern:        eff,
		Full:           full,
		Mode:           mode,
		Alpha:          plan.Alpha,
		Planner:        e.Planner(),
		Lazy:           e.Lazy(),
		Workers:        e.workers,
		Shards:         len(plan.Tasks),
		SkippedAlpha:   plan.SkippedAlpha,
		SkippedAbsent:  plan.SkippedAbsent,
		SkippedBloom:   plan.SkippedBloom,
		SkippedHist:    plan.SkippedHist,
		ResidentTasks:  plan.Resident,
		LoadTasks:      plan.Loads,
		Prefetched:     int(exec.prefetched),
		TotalCost:      plan.TotalCost,
		RetrievedNodes: res.RetrievedNodes,
		VisitedNodes:   res.VisitedNodes,
	}
	for _, i := range plan.Order {
		report.ScheduleOrder = append(report.ScheduleOrder, plan.Tasks[i].Item)
	}
	report.Tasks = make([]TaskReport, len(plan.Tasks))
	for i, t := range plan.Tasks {
		report.Tasks[i] = TaskReport{
			ShardTask: t,
			Micros:    exec.execs[i].micros,
			Loaded:    exec.execs[i].loaded,
			Visited:   exec.execs[i].visited,
			Trusses:   exec.execs[i].trusses,
		}
		if exec.execs[i].loaded {
			report.Loaded++
		}
	}
	return report
}
