package engine

import (
	"math/rand"
	"testing"

	"themecomm/internal/delta"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
	"themecomm/internal/truss"
)

// bruteContaining computes the containment answer by exhaustive scan: every
// indexed pattern p ⊇ q whose truss is non-empty at alpha, as a pattern →
// edge-set map. This is the ground truth QueryContaining must reproduce.
func bruteContaining(t *testing.T, tree *tctree.Tree, q itemset.Itemset, alpha float64) map[itemset.Key]graph.EdgeSet {
	t.Helper()
	out := make(map[itemset.Key]graph.EdgeSet)
	var walk func(n *tctree.Node)
	walk = func(n *tctree.Node) {
		superset := true
		for _, it := range q {
			if !n.Pattern.Contains(it) {
				superset = false
				break
			}
		}
		if superset && truss.LevelLive(n.Decomp.MaxAlpha(), alpha) {
			out[n.Pattern.Key()] = n.Decomp.TrussAt(alpha).Edges
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, c := range tree.Root().Children {
		walk(c)
	}
	return out
}

// containmentQueries is the query mix the containment tests sweep: empty,
// singletons, cross-shard pairs, full indexed patterns, and patterns with
// an item the tree does not index.
func containmentQueries(tree *tctree.Tree) []itemset.Itemset {
	items := tree.Root().Children
	qs := []itemset.Itemset{nil, {}}
	for _, c := range items {
		qs = append(qs, itemset.New(c.Item))
	}
	if len(items) >= 2 {
		qs = append(qs, itemset.New(items[0].Item, items[len(items)-1].Item))
	}
	for _, p := range tree.Patterns() {
		qs = append(qs, p)
		if p.Len() > 1 {
			qs = append(qs, p[1:]) // drop the shard root item
		}
	}
	qs = append(qs, itemset.New(997), itemset.New(items[0].Item, 997))
	return qs
}

// assertContainmentAnswer compares a QueryContaining result with the brute
// force map: same distinct patterns, same edge sets. Visited counts are
// plan-dependent in containment mode and deliberately not compared.
func assertContainmentAnswer(t *testing.T, got *tctree.QueryResult, want map[itemset.Key]graph.EdgeSet) {
	t.Helper()
	gotSet := trussSet(t, got.Trusses)
	if len(gotSet) != len(want) {
		t.Fatalf("retrieved %d distinct patterns, want %d", len(gotSet), len(want))
	}
	for key, wantEdges := range want {
		gotEdges, ok := gotSet[key]
		if !ok {
			t.Fatalf("pattern %v missing from containment answer", key.Itemset())
		}
		if !gotEdges.Equal(wantEdges) {
			t.Fatalf("pattern %v: containment truss has %d edges, brute force has %d",
				key.Itemset(), gotEdges.Len(), wantEdges.Len())
		}
	}
	if got.RetrievedNodes != len(want) {
		t.Fatalf("RetrievedNodes = %d, want %d", got.RetrievedNodes, len(want))
	}
}

// TestQueryContainingMatchesBruteForce is the containment correctness test:
// eager and lazy engines, planner on and off, must reproduce the exhaustive
// scan for every query/threshold combination.
func TestQueryContainingMatchesBruteForce(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	alphas := []float64{0, 0.1, 0.25, tree.MaxAlpha() / 2, tree.MaxAlpha(), tree.MaxAlpha() + 1}

	engines := map[string]*Engine{}
	var err error
	if engines["eager"], err = New(tree, Options{}); err != nil {
		t.Fatalf("New: %v", err)
	}
	if engines["lazy"], err = NewLazy(idx, Options{CacheSize: 32}); err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	if engines["lazy-noplan"], err = NewLazy(idx, Options{DisablePlanner: true}); err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	for name, eng := range engines {
		for _, q := range containmentQueries(tree) {
			for _, alpha := range alphas {
				want := bruteContaining(t, tree, q, alpha)
				got, err := eng.QueryContaining(q, alpha)
				if err != nil {
					t.Fatalf("%s: QueryContaining(%v, %v): %v", name, q, alpha, err)
				}
				assertContainmentAnswer(t, got, want)
			}
		}
	}

	// An empty containment query is the query-by-alpha workload and shares
	// its cache entry and counters with it.
	byAlpha := mustQueryByAlpha(t, engines["eager"], 0.1)
	empty, err := engines["eager"].QueryContaining(nil, 0.1)
	if err != nil {
		t.Fatalf("QueryContaining(nil): %v", err)
	}
	assertSameAnswer(t, empty, byAlpha)
}

// TestQueryContainingCacheAndDelta checks the containment cache path: a
// repeat hits the cache with an identical answer, and an applied delta
// invalidates containment entries (they are stored as full-coverage, since
// the answer depends on shards the pattern does not name).
func TestQueryContainingCacheAndDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := randomNetwork(rng, 14, 34, 5, 3)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	if tree.NumNodes() == 0 {
		t.Skip("empty tree for this seed")
	}
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{CacheSize: 32})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}

	q := itemset.New(tree.Root().Children[0].Item)
	first, err := eng.QueryContaining(q, 0.1)
	if err != nil {
		t.Fatalf("QueryContaining: %v", err)
	}
	misses := eng.Stats().Cache.Misses
	again, err := eng.QueryContaining(q, 0.1)
	if err != nil {
		t.Fatalf("QueryContaining repeat: %v", err)
	}
	if eng.Stats().Cache.Hits == 0 || eng.Stats().Cache.Misses != misses {
		t.Fatalf("repeat containment query missed the cache: %+v", eng.Stats().Cache)
	}
	assertSameAnswer(t, again, first)

	// The cache key is namespaced by mode: the sub-pattern query of the same
	// (q, α) must not be served the containment entry.
	sub := mustQuery(t, eng, q, 0.1)
	if want := tree.Query(q, 0.1); len(sub.Trusses) != len(want.Trusses) {
		t.Fatalf("sub-pattern query after containment query returned %d trusses, want %d",
			len(sub.Trusses), len(want.Trusses))
	}

	d := &delta.Delta{AddTransactions: []delta.VertexTransaction{
		{Vertex: 0, Tx: itemset.New(0, 1)}, {Vertex: 1, Tx: itemset.New(0, 1)},
	}}
	if _, err := eng.ApplyDelta(nw, d); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	fresh := tctree.Build(nw, tctree.BuildOptions{})
	for _, alpha := range []float64{0, 0.1, 0.3} {
		got, err := eng.QueryContaining(q, alpha)
		if err != nil {
			t.Fatalf("post-delta QueryContaining: %v", err)
		}
		assertContainmentAnswer(t, got, bruteContaining(t, fresh, q, alpha))
	}
}

// TestPlanContainingDecisions drives the pure planner in containment mode
// with a catalogue taken from a real index: out-of-range shards are absent,
// bloom misses and histogram bounds skip, and catalogue skips vanish when
// CatalogueSkip is off.
func TestPlanContainingDecisions(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	m := idx.Manifest()

	infos := make([]ShardInfo, len(m.Shards))
	for i, e := range m.Shards {
		bloom, err := e.DecodeBloom()
		if err != nil {
			t.Fatalf("DecodeBloom: %v", err)
		}
		depths, err := e.DecodeAlphaDepths()
		if err != nil {
			t.Fatalf("DecodeAlphaDepths: %v", err)
		}
		if bloom == nil || depths == nil {
			t.Fatalf("manifest entry %d has no catalogue (%q, %q)", e.Item, e.Bloom, e.AlphaDepths)
		}
		infos[i] = ShardInfo{
			Item: itemset.Item(e.Item), Nodes: e.Nodes, Depth: e.Depth,
			MaxAlpha: e.MaxAlpha, Bloom: bloom, AlphaDepths: depths,
		}
	}

	// Shards with a root item greater than min(q) cannot hold a superset of
	// q: every pattern there starts above q's smallest item.
	last := infos[len(infos)-1].Item
	plan := PlanQueryMode(infos, itemset.New(last), 0, ModeContaining, DefaultPlanConfig())
	for _, task := range plan.Tasks {
		if task.Item > last && task.Decision != DecisionSkipAbsent {
			t.Fatalf("shard %d > q[0]=%d: decision %q, want %q", task.Item, last, task.Decision, DecisionSkipAbsent)
		}
	}

	// An item no shard indexes: on shards whose range admits it, the bloom
	// filter must prove its absence (no false negatives ⇒ the planner may
	// only skip; with items 0..4 indexed, 997 is certainly absent).
	foreign := itemset.New(infos[0].Item, 997)
	plan = PlanQueryMode(infos, foreign, 0, ModeContaining, DefaultPlanConfig())
	if plan.SkippedBloom == 0 {
		t.Fatalf("no bloom skip planning for unindexed item 997: %+v", plan)
	}
	for _, task := range plan.Tasks {
		if task.Decision == DecisionLoad || task.Decision == DecisionResident {
			t.Fatalf("shard %d scheduled for a query containing an unindexed item", task.Item)
		}
	}

	// Histogram skip: a query needing depth beyond a shard's deepest level
	// is provably unanswerable there even at α_q = 0. Build one deeper than
	// the whole index from indexed items only (so the bloom cannot fire
	// first on an absent item... it still may, on a shard missing one of
	// them — accept either catalogue skip, but require no traversals).
	maxDepth := 0
	for _, inf := range infos {
		if inf.Depth > maxDepth {
			maxDepth = inf.Depth
		}
	}
	var deep itemset.Itemset
	for i := 0; deep.Len() < maxDepth+1; i++ {
		deep = deep.Add(itemset.Item(i))
	}
	plan = PlanQueryMode(infos, deep, 0, ModeContaining, DefaultPlanConfig())
	if plan.SkippedHist+plan.SkippedBloom == 0 {
		t.Fatalf("no catalogue skip planning an over-deep query: %+v", plan)
	}
	if len(plan.Order) != 0 {
		t.Fatalf("over-deep query scheduled %d traversals, want 0", len(plan.Order))
	}

	// With CatalogueSkip off the same plans fall back to loads.
	cfg := DefaultPlanConfig()
	cfg.CatalogueSkip = false
	off := PlanQueryMode(infos, deep, 0, ModeContaining, cfg)
	if off.SkippedBloom != 0 || off.SkippedHist != 0 {
		t.Fatalf("catalogue-off plan still skipped: %+v", off)
	}
	if len(off.Order) == 0 {
		t.Fatalf("catalogue-off plan scheduled nothing")
	}
}

// TestExplainContaining checks the containment Explain surface: mode tag,
// catalogue-skip tallies, and a truss count matching QueryContaining.
func TestExplainContaining(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	q := itemset.New(tree.Root().Children[0].Item, 997)
	report, err := eng.ExplainContaining(q, 0)
	if err != nil {
		t.Fatalf("ExplainContaining: %v", err)
	}
	if report.Mode != ModeContaining {
		t.Fatalf("report mode %q, want %q", report.Mode, ModeContaining)
	}
	if report.SkippedBloom == 0 {
		t.Fatalf("explain of a query with an unindexed item shows no bloom skips: %+v", report)
	}
	if report.RetrievedNodes != 0 {
		t.Fatalf("query containing an unindexed item retrieved %d nodes", report.RetrievedNodes)
	}
	// The catalogue skips surface in the engine counters too.
	if eng.Stats().ShardsSkippedCatalogue == 0 {
		t.Fatalf("ShardsSkippedCatalogue stayed 0 after a bloom-skipped explain")
	}

	// A sub-pattern Explain carries no mode tag and no catalogue tallies.
	subReport, err := eng.Explain(q, 0)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if subReport.Mode != "" || subReport.SkippedBloom != 0 || subReport.SkippedHist != 0 {
		t.Fatalf("sub-pattern report carries containment fields: %+v", subReport)
	}
}

// TestLazyByteResidencyBudget checks MaxResidentBytes: loading past the byte
// budget evicts least-recently-used shards, the stats report byte residency,
// and answers are unaffected.
func TestLazyByteResidencyBudget(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)

	// Measure every shard's resident charge with an unbounded engine.
	probe, err := NewLazy(idx, Options{})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	full := mustQueryByAlpha(t, probe, 0)
	var total int64
	for _, st := range probe.Stats().ShardResidency {
		if st.Bytes <= 0 {
			t.Fatalf("resident shard %d reports %d bytes", st.Item, st.Bytes)
		}
		total += st.Bytes
	}
	if got := probe.Stats().ResidentBytes; got != total {
		t.Fatalf("ResidentBytes = %d, want %d", got, total)
	}

	eng, err := NewLazy(idx, Options{MaxResidentBytes: total - 1})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	if eng.Stats().MaxResidentBytes != total-1 {
		t.Fatalf("MaxResidentBytes = %d, want %d", eng.Stats().MaxResidentBytes, total-1)
	}
	assertSameAnswer(t, mustQueryByAlpha(t, eng, 0), full)
	stats := eng.Stats()
	if stats.ShardEvictions == 0 {
		t.Fatalf("no evictions under a byte budget smaller than the working set")
	}
	if stats.ResidentBytes > total-1 {
		t.Fatalf("resident bytes %d exceed the budget %d at quiescence", stats.ResidentBytes, total-1)
	}
	// The budget only bounds residency; repeated queries still answer
	// identically while reloading evicted shards.
	for i := 0; i < 3; i++ {
		assertSameAnswer(t, mustQueryByAlpha(t, eng, 0), full)
	}
	if eng.Stats().LazyLoads <= stats.LazyLoads {
		t.Fatalf("evicted shards were not reloaded (loads %d → %d)", stats.LazyLoads, eng.Stats().LazyLoads)
	}
}

// TestFormatStat pins Stats().Format: "memory" for eager engines, the
// index's format for lazy ones.
func TestFormatStat(t *testing.T) {
	tree := buildTestTree(t, 11)
	eager, err := New(tree, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := eager.Stats().Format; got != "memory" {
		t.Fatalf("eager Format = %q, want memory", got)
	}
	idx, _ := writeShardedTestTree(t, tree)
	lazy, err := NewLazy(idx, Options{})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	if got := lazy.Stats().Format; got != idx.Format() {
		t.Fatalf("lazy Format = %q, want %q", got, idx.Format())
	}
}
