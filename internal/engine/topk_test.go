package engine

import (
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/tctree"
)

// TestTopKRanking checks the ranking invariants on a generated network: the
// answer is sorted best-first, truncation returns a prefix, and every
// reported cohesion is consistent with the decomposition it was derived from.
func TestTopKRanking(t *testing.T) {
	tree := buildTestTree(t, 11)
	eng, err := New(tree, Options{Workers: 4, CacheSize: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	alphaQ := 0.0
	all, err := eng.TopK(nil, alphaQ, 0)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(all) == 0 {
		t.Fatalf("expected at least one community")
	}
	for i := 1; i < len(all); i++ {
		if lessRanked(&all[i], &all[i-1]) {
			t.Fatalf("communities %d and %d are out of order", i-1, i)
		}
	}
	for i, rc := range all {
		if rc.Cohesion <= alphaQ {
			t.Fatalf("community %d has cohesion %g ≤ α_q = %g", i, rc.Cohesion, alphaQ)
		}
		if rc.Edges != rc.Community.Edges.Len() || rc.Vertices != len(rc.Community.Edges.Vertices()) {
			t.Fatalf("community %d has inconsistent size fields", i)
		}
		// Raising the threshold to the reported cohesion must remove at
		// least one of the community's edges from the pattern's truss.
		node := tree.Node(rc.Community.Pattern)
		if node == nil {
			t.Fatalf("community %d has unindexed pattern %v", i, rc.Community.Pattern)
		}
		shrunk := node.Decomp.EdgesAt(rc.Cohesion)
		if rc.Community.Edges.SubsetOf(shrunk) {
			t.Fatalf("community %d survives intact at its own cohesion %g", i, rc.Cohesion)
		}
		if !rc.Community.Edges.SubsetOf(node.Decomp.EdgesAt(alphaQ)) {
			t.Fatalf("community %d is not part of the truss at α_q", i)
		}
	}

	for _, k := range []int{1, 2, len(all), len(all) + 5} {
		topK, err := eng.TopK(nil, alphaQ, k)
		if err != nil {
			t.Fatalf("TopK(k=%d): %v", k, err)
		}
		wantLen := k
		if k > len(all) {
			wantLen = len(all)
		}
		if len(topK) != wantLen {
			t.Fatalf("TopK(k=%d) returned %d communities, want %d", k, len(topK), wantLen)
		}
		for i := range topK {
			if !topK[i].Community.Pattern.Equal(all[i].Community.Pattern) ||
				!topK[i].Community.Edges.Equal(all[i].Community.Edges) {
				t.Fatalf("TopK(k=%d) is not a prefix of the full ranking at %d", k, i)
			}
		}
	}
	if got := eng.Stats().TopKQueries; got == 0 {
		t.Fatalf("TopKQueries counter not incremented")
	}
}

// TestTopKPaperExample sanity-checks top-k on the worked example of the
// paper: querying pattern p at α_q = 0.1 yields exactly the two theme
// communities of Figure 2, and k = 1 keeps the more cohesive one.
func TestTopKPaperExample(t *testing.T) {
	tree := buildPaperTree(t)
	eng, err := New(tree, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	all, err := eng.TopK(dbnet.PaperExampleP, 0.1, 0)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	count := 0
	for _, rc := range all {
		if rc.Community.Pattern.Equal(dbnet.PaperExampleP) {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("pattern p contributes %d communities at α=0.1, want 2", count)
	}
	best, err := eng.TopK(dbnet.PaperExampleP, 0.1, 1)
	if err != nil {
		t.Fatalf("TopK(1): %v", err)
	}
	if len(best) != 1 {
		t.Fatalf("TopK(1) returned %d communities", len(best))
	}
	if best[0].Cohesion < all[len(all)-1].Cohesion {
		t.Fatalf("TopK(1) did not keep the most cohesive community")
	}
}

func buildPaperTree(t *testing.T) *tctree.Tree {
	t.Helper()
	tree := tctree.Build(dbnet.PaperExample(), tctree.BuildOptions{})
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return tree
}
