package engine

import (
	"fmt"
	"sync"
	"testing"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

func result(n int) *tctree.QueryResult { return &tctree.QueryResult{RetrievedNodes: n} }

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", "", nil, false, result(1), 0)
	c.put("b", "", nil, false, result(2), 0)
	if _, ok := c.get("a"); !ok { // refresh a: b is now least recently used
		t.Fatalf("a should be cached")
	}
	c.put("c", "", nil, false, result(3), 0)
	if _, ok := c.get("b"); ok {
		t.Fatalf("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatalf("a should have survived the eviction")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatalf("c should be cached")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	hits, misses, evictions := c.counters()
	if hits != 3 || misses != 1 || evictions != 1 {
		t.Fatalf("counters = %d/%d/%d, want 3 hits, 1 miss, 1 eviction", hits, misses, evictions)
	}
}

func TestLRUPutExistingRefreshes(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", "", nil, false, result(1), 0)
	c.put("b", "", nil, false, result(2), 0)
	c.put("a", "", nil, false, result(10), 0) // refresh value and recency
	c.put("c", "", nil, false, result(3), 0)  // evicts b, not a
	if res, ok := c.get("a"); !ok || res.RetrievedNodes != 10 {
		t.Fatalf("a = %v, want refreshed value 10", res)
	}
	if _, ok := c.get("b"); ok {
		t.Fatalf("b should have been evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestLRUConcurrent hammers the cache from many goroutines; run with -race
// it verifies the locking discipline.
func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				if _, ok := c.get(key); !ok {
					c.put(key, "", nil, false, result(i), 0)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 16 {
		t.Fatalf("cache grew past its bound: len = %d", c.len())
	}
	hits, misses, _ := c.counters()
	if hits+misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d lookups", hits+misses, 8*200)
	}
}

// TestLRUPutDropsStaleGeneration checks the reload-race guard: a result
// computed before an invalidation ran must not be inserted afterwards.
func TestLRUPutDropsStaleGeneration(t *testing.T) {
	c := newLRUCache(4)
	gen := c.generation("")
	c.invalidate("", func(itemset.Itemset, bool) bool { return false }) // bumps the generation
	c.put("a", "", nil, false, result(1), gen)
	if _, ok := c.get("a"); ok {
		t.Fatalf("stale-generation put must be discarded")
	}
	c.put("a", "", nil, false, result(1), c.generation(""))
	if _, ok := c.get("a"); !ok {
		t.Fatalf("current-generation put must be inserted")
	}
}
