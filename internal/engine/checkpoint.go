package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// This file implements the journaled update fast path. The classic
// ApplyDelta pays a full staged shard commit — encode, fsync and manifest
// write — inside every update. With a durable delta journal in front, that
// synchronous disk work is redundant: the journal append already made the
// delta durable, so the update only needs to become visible to queries.
//
//	ApplyDeltaInMemory: journal-backed apply — rebuild the affected
//	  subtrees and swap them into the live table as resident shards,
//	  touching no index file. The affected items accumulate in the
//	  engine's dirty set.
//	Checkpoint: background flush — stage the dirty subtrees, stamp the
//	  journal seq into the manifest, commit once, and swap the dirty
//	  resident shards back to lazy ones. Queries see identical content
//	  before and after, so no epoch bump and no cache purge.
//
// Crash recovery replays journal records after the manifest's JournalSeq
// through ApplyDeltaInMemory, converging on exactly the pre-crash state.

// ApplyDeltaInMemory applies a delta to the serving state without writing
// the index: the delta is applied to nw, the affected shards are rebuilt and
// swapped into the live table as fully resident shards, the epoch is bumped
// and dependent cache entries are purged — everything ApplyDelta does except
// the staged disk commit. The caller owns durability (typically a journal
// append before this call); Checkpoint later folds the accumulated dirty
// shards into the on-disk index in one commit.
//
// Dirty resident shards sit outside the lazy engine's residency budget until
// the next Checkpoint — they cannot be evicted, because the index on disk
// does not have their content yet.
func (e *Engine) ApplyDeltaInMemory(nw *dbnet.Network, d *delta.Delta) (*DeltaResult, error) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	start := time.Now()
	if depth := e.builtMaxDepth(); depth > 0 {
		return nil, fmt.Errorf("engine: index was built with MaxDepth %d; incremental maintenance needs an unbounded index", depth)
	}
	affected := delta.AffectedItems(nw, d).Union(e.pendingAffected)
	if err := delta.Apply(nw, d); err != nil {
		return nil, err
	}
	// Rebuild outside updateMu — queries keep flowing; only the table swap
	// below excludes them.
	subtrees := tctree.RebuildSubtrees(nw, affected)

	e.updateMu.Lock()
	var report *tctree.CommitReport
	if e.idx != nil {
		report = e.swapDirtyLocked(subtrees)
		if e.dirty == nil {
			e.dirty = make(map[itemset.Item]*tctree.Node, len(subtrees))
		}
		for it, sub := range subtrees {
			e.dirty[it] = sub
		}
	} else {
		report = e.swapEagerLocked(subtrees)
	}
	e.pendingAffected = nil
	e.deltas.Add(1)
	e.epoch.Add(1)
	epoch := e.epoch.Load()
	if e.cache != nil {
		e.cache.invalidate(e.cacheNS, func(q itemset.Itemset, full bool) bool {
			return full || q.Intersect(affected).Len() > 0
		})
	}
	e.updateMu.Unlock()
	return &DeltaResult{Affected: affected, Report: report, Epoch: epoch, Duration: time.Since(start)}, nil
}

// swapDirtyLocked installs rebuilt subtrees into a lazy engine's table as
// resident eager shards (load == nil): the on-disk index does not have this
// content, so the shards must not be evictable or reloadable. Structs
// leaving the table return their residency charge and are poisoned against
// in-flight prefetch loads, exactly like swapLazyLocked. Callers hold
// updateMu for writing.
func (e *Engine) swapDirtyLocked(subtrees map[itemset.Item]*tctree.Node) *tctree.CommitReport {
	report := &tctree.CommitReport{}
	items := make([]itemset.Item, 0, len(subtrees))
	for it := range subtrees {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	t := e.table.Load()
	replacement := make(map[itemset.Item]*shard, len(items))
	for _, it := range items {
		sub := subtrees[it]
		_, exists := t.lookup(it)
		switch {
		case sub == nil && !exists:
			continue
		case sub == nil:
			report.Removed = append(report.Removed, it)
			replacement[it] = nil
		case exists:
			report.Replaced = append(report.Replaced, it)
			replacement[it] = eagerShardOf(sub)
		default:
			report.Added = append(report.Added, it)
			replacement[it] = eagerShardOf(sub)
		}
	}
	shards := make([]*shard, 0, len(t.shards)+len(report.Added))
	for _, s := range t.shards {
		repl, touched := replacement[s.item]
		if !touched {
			shards = append(shards, s)
			continue
		}
		if freed, ok := evictShard(s); ok {
			e.res.resident.Add(-1)
			e.res.bytes.Add(-freed)
			e.evictions.Add(1)
		}
		s.mu.Lock()
		s.err = errShardRemoved
		s.once = new(sync.Once)
		s.mu.Unlock()
		if repl != nil {
			shards = append(shards, repl)
		}
		delete(replacement, s.item)
	}
	for _, it := range items { // the added shards, in stable order
		if s, ok := replacement[it]; ok && s != nil {
			shards = append(shards, s)
		}
	}
	e.table.Store(newShardTable(shards))
	return report
}

// DirtyShards returns how many in-memory shards have run ahead of the
// on-disk index and await the next Checkpoint.
func (e *Engine) DirtyShards() int {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	return len(e.dirty)
}

// IndexJournalSeq returns the journal sequence number stamped into the
// on-disk index manifest — the checkpoint marker crash recovery replays
// from. It is 0 for an eager engine, or for an index that has never been
// checkpointed.
func (e *Engine) IndexJournalSeq() uint64 {
	if e.idx == nil {
		return 0
	}
	return e.idx.JournalSeq()
}

// ResyncInMemory rebuilds the engine's whole serving state from nw,
// installing every shard as a dirty resident one — as if a single delta had
// touched every item. It is the recovery fix-up for the checkpoint crash
// window: when the stamped network file (written by the pre-commit hook) is
// ahead of the index manifest, the network file is authoritative and the
// index content must be rebuilt to match before journal replay continues; a
// following Checkpoint persists the rebuilt shards. Unlike a checkpoint, a
// resync may change answers, so the epoch is bumped and the engine's cache
// namespace fully purged.
func (e *Engine) ResyncInMemory(nw *dbnet.Network) error {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if e.idx == nil {
		return fmt.Errorf("engine: resync requires a lazy engine over a sharded index")
	}
	t := e.table.Load()
	existing := make([]itemset.Item, 0, len(t.shards))
	for _, s := range t.shards {
		existing = append(existing, s.item)
	}
	// The union covers items to add or replace (in nw) and items to remove
	// (in the table but decomposing to nothing in nw).
	affected := nw.Items().Union(itemset.New(existing...)).Union(e.pendingAffected)
	subtrees := tctree.RebuildSubtrees(nw, affected)

	e.updateMu.Lock()
	e.swapDirtyLocked(subtrees)
	if e.dirty == nil {
		e.dirty = make(map[itemset.Item]*tctree.Node, len(subtrees))
	}
	for it, sub := range subtrees {
		e.dirty[it] = sub
	}
	e.pendingAffected = nil
	e.epoch.Add(1)
	if e.cache != nil {
		e.cache.invalidate(e.cacheNS, func(itemset.Itemset, bool) bool { return true })
	}
	e.updateMu.Unlock()
	return nil
}

// Checkpoint folds every dirty shard into the on-disk index with one staged
// commit, stamping journalSeq into the manifest (see
// tctree.Manifest.JournalSeq) so recovery knows which journal records the
// index already includes. Between staging and the commit it runs preCommit
// (nil to skip) — the hook the serving layer uses to persist the updated
// network file, stamped with the same seq; if the hook fails the staged
// files are discarded and the index is untouched.
//
// After the manifest commit the dirty resident shards are swapped back to
// plain lazy shards under the residency budget. Their content is identical
// to what was just committed, so the epoch is NOT bumped and no cache entry
// is purged: queries cannot observe a checkpoint. Updates serialize behind
// it (applyMu), queries do not (updateMu is held only for the swap-back).
//
// Checkpoint with no dirty shards and journalSeq already stamped is a no-op
// returning (nil, nil). It requires a lazy engine: an eager engine has no
// on-disk index to checkpoint into.
func (e *Engine) Checkpoint(journalSeq uint64, preCommit func() error) (*tctree.CommitReport, error) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if e.idx == nil {
		return nil, fmt.Errorf("engine: checkpoint requires a lazy engine over a sharded index")
	}
	if len(e.dirty) == 0 && e.idx.JournalSeq() >= journalSeq {
		return nil, nil
	}
	subtrees := e.dirty
	staged, err := e.idx.StageShards(subtrees)
	if err != nil {
		return nil, err
	}
	staged.SetJournalSeq(journalSeq)
	if preCommit != nil {
		if err := preCommit(); err != nil {
			staged.Discard()
			return nil, err
		}
	}
	e.updateMu.Lock()
	report, err := staged.Commit()
	if err != nil {
		e.updateMu.Unlock()
		return nil, err
	}
	// Swap the dirty resident shards back to lazy ones: identical content,
	// now loadable (and evictable) from the committed files.
	t := e.table.Load()
	changed := false
	shards := make([]*shard, 0, len(t.shards))
	for _, s := range t.shards {
		if _, dirty := subtrees[s.item]; !dirty {
			shards = append(shards, s)
			continue
		}
		changed = true
		if entry, ok := e.idx.Entry(s.item); ok {
			shards = append(shards, e.lazyShard(entry))
		}
	}
	if changed {
		e.table.Store(newShardTable(shards))
	}
	e.dirty = nil
	e.updateMu.Unlock()
	return report, nil
}
