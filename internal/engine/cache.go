package engine

import (
	"container/list"
	"sync"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// lruCache is a bounded, concurrency-safe LRU cache of query results.
// Cached *tctree.QueryResult values are shared between callers and must be
// treated as immutable; Engine.Query hands out shallow copies so that the
// per-call Duration never races.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	// gen counts invalidations. A put carries the generation observed before
	// its query executed; if an invalidation ran in between, the result may
	// predate a shard swap and is dropped instead of inserted.
	gen uint64

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	// pattern is the canonicalized query pattern of the entry, kept so that
	// invalidate can match entries by the items their answers depend on;
	// full marks an entry whose pattern covers every indexed item (query by
	// alpha), which depends on every shard.
	pattern itemset.Itemset
	full    bool
	res     *tctree.QueryResult
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, marking it most recently used.
func (c *lruCache) get(key string) (*tctree.QueryResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// generation returns the current invalidation generation, to be captured
// before executing a query whose result will be offered to put.
func (c *lruCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// put inserts or refreshes key, evicting the least recently used entry when
// the cache is full. pattern is the canonicalized query pattern the result
// answers and full marks a pattern covering every indexed item; both are
// recorded for invalidate. gen is the generation observed before the query
// executed: a stale generation means an invalidation ran while the query
// was in flight, so the result may have been computed against a
// since-replaced shard and is discarded.
func (c *lruCache) put(key string, pattern itemset.Itemset, full bool, res *tctree.QueryResult, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, pattern: pattern, full: full, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// invalidate removes every entry whose canonicalized query pattern (and
// full-pattern flag) matches, returning how many were dropped. Dropped
// entries do not count as LRU evictions.
func (c *lruCache) invalidate(match func(pattern itemset.Itemset, full bool) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		entry := el.Value.(*cacheEntry)
		if match(entry.pattern, entry.full) {
			c.ll.Remove(el)
			delete(c.entries, entry.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// counters returns the hit, miss and eviction counts.
func (c *lruCache) counters() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
