package engine

import (
	"container/list"
	"sync"

	"themecomm/internal/tctree"
)

// lruCache is a bounded, concurrency-safe LRU cache of query results.
// Cached *tctree.QueryResult values are shared between callers and must be
// treated as immutable; Engine.Query hands out shallow copies so that the
// per-call Duration never races.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	res *tctree.QueryResult
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, marking it most recently used.
func (c *lruCache) get(key string) (*tctree.QueryResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts or refreshes key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) put(key string, res *tctree.QueryResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// counters returns the hit, miss and eviction counts.
func (c *lruCache) counters() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
