package engine

import (
	"container/list"
	"sync"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// lruCache is a bounded, concurrency-safe LRU cache of query results.
// Cached *tctree.QueryResult values are shared between callers and must be
// treated as immutable; Engine.Query hands out shallow copies so that the
// per-call Duration never races.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	// gens counts invalidations per namespace. A put carries the generation
	// observed before its query executed; if an invalidation of the same
	// namespace ran in between, the result may predate a shard swap and is
	// dropped instead of inserted. Generations are per namespace so one
	// tenant's shard reload never discards another tenant's in-flight
	// results.
	gens map[string]uint64

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	// ns is the namespace of the engine that inserted the entry — empty for
	// a solo engine, the network name in a shared (federation) cache.
	// Invalidation is namespace-scoped: one tenant's shard reload never
	// drops another tenant's answers.
	ns string
	// pattern is the canonicalized query pattern of the entry, kept so that
	// invalidate can match entries by the items their answers depend on;
	// full marks an entry whose pattern covers every indexed item (query by
	// alpha), which depends on every shard.
	pattern itemset.Itemset
	full    bool
	res     *tctree.QueryResult
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
		gens:    make(map[string]uint64),
	}
}

// get returns the cached result for key, marking it most recently used.
func (c *lruCache) get(key string) (*tctree.QueryResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// generation returns the namespace's current invalidation generation, to be
// captured before executing a query whose result will be offered to put.
func (c *lruCache) generation(ns string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens[ns]
}

// put inserts or refreshes key, evicting the least recently used entry when
// the cache is full. pattern is the canonicalized query pattern the result
// answers and full marks a pattern covering every indexed item; both are
// recorded for invalidate. gen is the namespace's generation observed
// before the query executed: a stale generation means an invalidation of
// this namespace ran while the query was in flight, so the result may have
// been computed against a since-replaced shard and is discarded.
func (c *lruCache) put(key, ns string, pattern itemset.Itemset, full bool, res *tctree.QueryResult, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gens[ns] {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, ns: ns, pattern: pattern, full: full, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// invalidate removes every entry of the given namespace whose canonicalized
// query pattern (and full-pattern flag) matches, returning how many were
// dropped. Entries of other namespaces are never offered to match — tenants
// of a shared cache invalidate independently. Dropped entries do not count
// as LRU evictions.
func (c *lruCache) invalidate(ns string, match func(pattern itemset.Itemset, full bool) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[ns]++
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		entry := el.Value.(*cacheEntry)
		if entry.ns == ns && match(entry.pattern, entry.full) {
			c.ll.Remove(el)
			delete(c.entries, entry.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// counters returns the hit, miss and eviction counts.
func (c *lruCache) counters() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// ResultCache is a bounded LRU result cache shareable between engines. A
// federation builds one and hands it to every member engine
// (Options.SharedCache with a per-network Options.CacheNamespace): capacity,
// LRU order and counters are global — a hot tenant's entries displace a cold
// tenant's least-recently-used ones — while keys are namespaced so tenants
// never read each other's answers, and invalidation (shard reloads, detach)
// stays scoped to one namespace.
type ResultCache struct {
	c *lruCache
}

// NewResultCache returns a shareable result cache holding at most capacity
// entries across every namespace. Capacity must be positive.
func NewResultCache(capacity int) *ResultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ResultCache{c: newLRUCache(capacity)}
}

// Capacity returns the global entry bound.
func (rc *ResultCache) Capacity() int { return rc.c.cap }

// Len returns the number of cached entries across every namespace.
func (rc *ResultCache) Len() int { return rc.c.len() }

// Counters returns the global hit, miss and eviction counts.
func (rc *ResultCache) Counters() (hits, misses, evictions uint64) { return rc.c.counters() }
