package engine

import (
	"errors"
	"math/rand"
	"testing"

	"themecomm/internal/delta"
	"themecomm/internal/tctree"
)

// TestApplyDeltaInMemoryParity drives the journaled fast path: a chain of
// deltas applied purely in memory must answer every query exactly like a
// from-scratch rebuild, both before and after the background Checkpoint, and
// the checkpoint itself must be invisible (no epoch bump) while making the
// on-disk index complete (a reopened engine answers identically).
func TestApplyDeltaInMemoryParity(t *testing.T) {
	const items = 5
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nw := randomNetwork(rng, 14, 34, items, 3)
		twin := randomNetwork(rand.New(rand.NewSource(seed)), 14, 34, items, 3)
		tree := tctree.Build(nw, tctree.BuildOptions{})
		if tree.NumNodes() == 0 {
			continue
		}
		dir := t.TempDir()
		if _, err := tree.WriteSharded(dir); err != nil {
			t.Fatalf("WriteSharded: %v", err)
		}
		idx, err := tctree.OpenSharded(dir)
		if err != nil {
			t.Fatalf("OpenSharded: %v", err)
		}
		eng, err := NewLazy(idx, Options{CacheSize: 64, MaxResidentShards: 3})
		if err != nil {
			t.Fatalf("NewLazy: %v", err)
		}
		// Warm the cache so invalidation is exercised.
		for _, q := range deltaTestQueries() {
			if _, err := eng.Query(q.Pattern, q.Alpha); err != nil {
				t.Fatalf("pre-delta query: %v", err)
			}
		}

		// A chain of in-memory deltas, like a burst of journaled updates
		// between checkpoints.
		var deltas []*delta.Delta
		for i := 0; i < 3; i++ {
			d := randomDeltaFor(rng, nw, items)
			res, err := eng.ApplyDeltaInMemory(nw, d)
			if err != nil {
				t.Fatalf("seed %d: ApplyDeltaInMemory %d: %v", seed, i, err)
			}
			if res.Epoch != eng.IndexEpoch() {
				t.Fatalf("seed %d: epoch mismatch", seed)
			}
			deltas = append(deltas, d)
		}
		if eng.DirtyShards() == 0 {
			t.Fatalf("seed %d: no dirty shards after in-memory deltas", seed)
		}
		// The on-disk manifest must NOT have moved yet.
		if idx.JournalSeq() != 0 {
			t.Fatalf("seed %d: manifest seq moved before checkpoint", seed)
		}

		for _, d := range deltas {
			if err := delta.Apply(twin, d); err != nil {
				t.Fatalf("Apply on twin: %v", err)
			}
		}
		fresh, err := New(tctree.Build(twin, tctree.BuildOptions{}), Options{})
		if err != nil {
			t.Fatalf("fresh engine: %v", err)
		}
		assertQueryParity(t, seed, "pre-checkpoint", eng, fresh)

		// Checkpoint: folds the dirty shards into the index, stamps the seq,
		// bumps nothing query-visible.
		epochBefore := eng.IndexEpoch()
		preCommitRan := false
		report, err := eng.Checkpoint(42, func() error { preCommitRan = true; return nil })
		if err != nil {
			t.Fatalf("seed %d: Checkpoint: %v", seed, err)
		}
		if report == nil || !preCommitRan {
			t.Fatalf("seed %d: Checkpoint report=%v preCommit=%v", seed, report, preCommitRan)
		}
		if eng.IndexEpoch() != epochBefore {
			t.Fatalf("seed %d: checkpoint bumped the epoch", seed)
		}
		if eng.DirtyShards() != 0 {
			t.Fatalf("seed %d: %d dirty shards survive the checkpoint", seed, eng.DirtyShards())
		}
		if got := idx.JournalSeq(); got != 42 {
			t.Fatalf("seed %d: manifest JournalSeq = %d, want 42", seed, got)
		}
		assertQueryParity(t, seed, "post-checkpoint", eng, fresh)

		// The index on disk is now complete: a cold reopen answers the same.
		idx2, err := tctree.OpenSharded(dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := idx2.JournalSeq(); got != 42 {
			t.Fatalf("seed %d: reopened JournalSeq = %d, want 42", seed, got)
		}
		cold, err := NewLazy(idx2, Options{})
		if err != nil {
			t.Fatalf("cold engine: %v", err)
		}
		assertQueryParity(t, seed, "cold-reopen", cold, fresh)

		// A second checkpoint with nothing dirty and the seq already stamped
		// is a no-op.
		if rep, err := eng.Checkpoint(42, nil); err != nil || rep != nil {
			t.Fatalf("seed %d: idle checkpoint = (%v, %v), want (nil, nil)", seed, rep, err)
		}
		// A seq-only checkpoint still advances the stamp (a delta can affect
		// zero shards, yet replay must not re-apply it).
		if _, err := eng.Checkpoint(43, nil); err != nil {
			t.Fatalf("seed %d: seq-only checkpoint: %v", seed, err)
		}
		if got := idx.JournalSeq(); got != 43 {
			t.Fatalf("seed %d: seq-only checkpoint left JournalSeq at %d", seed, got)
		}
	}
}

func assertQueryParity(t *testing.T, seed int64, phase string, got, want *Engine) {
	t.Helper()
	for _, q := range deltaTestQueries() {
		g, err := got.Query(q.Pattern, q.Alpha)
		if err != nil {
			t.Fatalf("seed %d %s: query: %v", seed, phase, err)
		}
		w, err := want.Query(q.Pattern, q.Alpha)
		if err != nil {
			t.Fatalf("seed %d %s: fresh query: %v", seed, phase, err)
		}
		assertSameTrusses(t, g, w)
	}
}

// TestCheckpointPreCommitFailure pins the abort path: when the pre-commit
// hook fails (the network write-back could not be made durable), the staged
// files are discarded, the manifest stays put, the dirty set survives, and a
// retry succeeds.
func TestCheckpointPreCommitFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw := randomNetwork(rng, 14, 34, 5, 3)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatal(err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewLazy(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyDeltaInMemory(nw, randomDeltaFor(rng, nw, 5)); err != nil {
		t.Fatal(err)
	}
	dirty := eng.DirtyShards()
	boom := errors.New("disk full")
	if _, err := eng.Checkpoint(7, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Checkpoint error = %v, want %v", err, boom)
	}
	if idx.JournalSeq() != 0 {
		t.Fatal("manifest seq moved despite the aborted checkpoint")
	}
	if eng.DirtyShards() != dirty {
		t.Fatalf("dirty set changed across the aborted checkpoint: %d -> %d", dirty, eng.DirtyShards())
	}
	if _, err := eng.Checkpoint(7, nil); err != nil {
		t.Fatalf("retry checkpoint: %v", err)
	}
	if idx.JournalSeq() != 7 || eng.DirtyShards() != 0 {
		t.Fatalf("retry left seq=%d dirty=%d", idx.JournalSeq(), eng.DirtyShards())
	}
}

// TestApplyDeltaInMemoryEager covers the eager-engine arm: no index on disk,
// the in-memory swap IS the whole update, and Checkpoint refuses.
func TestApplyDeltaInMemoryEager(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nw := randomNetwork(rng, 14, 34, 5, 3)
	twin := randomNetwork(rand.New(rand.NewSource(5)), 14, 34, 5, 3)
	eng, err := New(tctree.Build(nw, tctree.BuildOptions{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := randomDeltaFor(rng, nw, 5)
	if _, err := eng.ApplyDeltaInMemory(nw, d); err != nil {
		t.Fatalf("ApplyDeltaInMemory: %v", err)
	}
	if err := delta.Apply(twin, d); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(tctree.Build(twin, tctree.BuildOptions{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertQueryParity(t, 5, "eager", eng, fresh)
	if _, err := eng.Checkpoint(1, nil); err == nil {
		t.Fatal("Checkpoint on an eager engine did not refuse")
	}
}
