package engine

import (
	"context"
	"sort"

	"themecomm/internal/core"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// RankedCommunity is one theme community of a top-k answer, annotated with
// its ranking statistics.
type RankedCommunity struct {
	// Community is the theme community (pattern plus connected edge set).
	Community core.Community
	// Cohesion is the largest cohesion threshold at which the community
	// survives intact: the minimum removal threshold over its edges in the
	// pattern's decomposition L_p. Raising α_q past this value removes at
	// least one of the community's edges.
	Cohesion float64
	// Vertices and Edges size the community.
	Vertices int
	Edges    int
}

// TopK answers (q, α_q) and returns the k best theme communities, ranked by
// descending cohesion, then descending size (vertices, then edges), with a
// deterministic pattern/vertex tiebreak. k <= 0 means every community.
// Because TopK ranks the answer of Query, repeated top-k workloads benefit
// from the result cache.
func (e *Engine) TopK(q itemset.Itemset, alphaQ float64, k int) ([]RankedCommunity, error) {
	_, ranked, err := e.TopKWithResult(q, alphaQ, k)
	return ranked, err
}

// TopKWithResult is TopK exposing the underlying query answer as well, so
// callers (the HTTP server) can report retrieval statistics without running
// the query twice.
func (e *Engine) TopKWithResult(q itemset.Itemset, alphaQ float64, k int) (*tctree.QueryResult, []RankedCommunity, error) {
	return e.TopKWithResultContext(context.Background(), q, alphaQ, k)
}

// TopKWithResultContext is TopKWithResult carrying a context; see
// QueryContext.
func (e *Engine) TopKWithResultContext(ctx context.Context, q itemset.Itemset, alphaQ float64, k int) (*tctree.QueryResult, []RankedCommunity, error) {
	e.topKs.Add(1)
	// Hold the update lock across both the query and the per-pattern node
	// resolution, so the cohesion annotations always come from the same
	// index state the trusses were retrieved from.
	e.updateMu.RLock()
	defer e.updateMu.RUnlock()
	res, err := e.queryLocked(ctx, q, alphaQ, ModeSub)
	if err != nil {
		return nil, nil, err
	}
	t := e.table.Load()
	ranked := make([]RankedCommunity, 0, len(res.Trusses))
	for _, tr := range res.Trusses {
		// Map each edge of C*_p(0) to the threshold α_k at which it drops
		// out of the maximal pattern truss (Section 6.1).
		removalAlpha, ok, err := e.removalAlphas(t, tr.Pattern)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			// Cannot happen on a consistent tree; skip rather than panic.
			continue
		}
		for _, comp := range tr.Communities() {
			cohesion := 0.0
			first := true
			for key := range comp {
				if a := removalAlpha[key]; first || a < cohesion {
					cohesion = a
					first = false
				}
			}
			ranked = append(ranked, RankedCommunity{
				Community: core.Community{Pattern: tr.Pattern, Edges: comp},
				Cohesion:  cohesion,
				Vertices:  len(comp.Vertices()),
				Edges:     comp.Len(),
			})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return lessRanked(&ranked[i], &ranked[j]) })
	if k > 0 && k < len(ranked) {
		ranked = ranked[:k]
	}
	return res, ranked, nil
}

// LessRanked reports whether a orders strictly before b in the top-k order:
// cohesion descending, then size (vertices, then edges) descending, then a
// deterministic pattern/vertex tiebreak. It is exported so that a federation
// can merge per-network top-k answers into one globally ordered list with
// exactly the ranking TopK used per network.
func LessRanked(a, b *RankedCommunity) bool { return lessRanked(a, b) }

// lessRanked orders communities best-first: cohesion desc, vertices desc,
// edges desc, then pattern and smallest vertex ascending for determinism.
func lessRanked(a, b *RankedCommunity) bool {
	if a.Cohesion != b.Cohesion {
		return a.Cohesion > b.Cohesion
	}
	if a.Vertices != b.Vertices {
		return a.Vertices > b.Vertices
	}
	if a.Edges != b.Edges {
		return a.Edges > b.Edges
	}
	if c := itemset.Compare(a.Community.Pattern, b.Community.Pattern); c != 0 {
		return c < 0
	}
	return minVertex(a.Community.Edges) < minVertex(b.Community.Edges)
}

func minVertex(es graph.EdgeSet) graph.VertexID {
	first := true
	var m graph.VertexID
	for _, e := range es {
		if first || e.U < m {
			m = e.U
			first = false
		}
	}
	return m
}
