package engine

import (
	"testing"

	"themecomm/internal/itemset"
)

// TestSharedCacheNamespacing runs two engines over different trees against
// one shared cache: the same canonical query key must never cross tenants,
// and a shard reload on one tenant must leave the other tenant's entries
// intact.
func TestSharedCacheNamespacing(t *testing.T) {
	treeA := buildTestTree(t, 11)
	treeB := buildTestTree(t, 13)
	idxA, _ := writeShardedTestTree(t, treeA)
	idxB, _ := writeShardedTestTree(t, treeB)
	cache := NewResultCache(16)
	engA, err := NewLazy(idxA, Options{SharedCache: cache, CacheNamespace: "a"})
	if err != nil {
		t.Fatalf("NewLazy(a): %v", err)
	}
	engB, err := NewLazy(idxB, Options{SharedCache: cache, CacheNamespace: "b"})
	if err != nil {
		t.Fatalf("NewLazy(b): %v", err)
	}

	// The query-by-alpha key is identical per engine before namespacing; with
	// namespaces, each tenant must execute (miss) once and hit only its own
	// entry afterwards.
	assertSameAnswer(t, mustQueryByAlpha(t, engA, 0), treeA.QueryByAlpha(0))
	assertSameAnswer(t, mustQueryByAlpha(t, engB, 0), treeB.QueryByAlpha(0))
	hits, misses, _ := cache.Counters()
	if hits != 0 || misses != 2 {
		t.Fatalf("after two cold tenant queries: hits=%d misses=%d, want 0/2", hits, misses)
	}
	assertSameAnswer(t, mustQueryByAlpha(t, engA, 0), treeA.QueryByAlpha(0))
	assertSameAnswer(t, mustQueryByAlpha(t, engB, 0), treeB.QueryByAlpha(0))
	hits, _, _ = cache.Counters()
	if hits != 2 {
		t.Fatalf("warm tenant queries hit %d times, want 2", hits)
	}
	if cache.Len() != 2 {
		t.Fatalf("shared cache holds %d entries, want 2 (one per namespace)", cache.Len())
	}
	if !engA.Stats().Cache.Shared || engA.Stats().Cache.Capacity != 16 {
		t.Fatalf("engine stats do not report the shared cache: %+v", engA.Stats().Cache)
	}

	// Reloading a shard of tenant A purges only tenant A's entries.
	item := treeA.Root().Children[0].Item
	if err := engA.ReloadShard(item); err != nil {
		t.Fatalf("ReloadShard: %v", err)
	}
	if cache.Len() != 1 {
		t.Fatalf("after tenant-a reload the cache holds %d entries, want 1 (tenant b's)", cache.Len())
	}
	before, _, _ := cache.Counters()
	assertSameAnswer(t, mustQueryByAlpha(t, engB, 0), treeB.QueryByAlpha(0))
	if after, _, _ := cache.Counters(); after != before+1 {
		t.Fatalf("tenant b lost its cache entry to tenant a's reload")
	}

	// Release drops the tenant's remaining entries.
	mustQueryByAlpha(t, engA, 0)
	engA.Release()
	if cache.Len() != 1 {
		t.Fatalf("after Release the cache holds %d entries, want 1", cache.Len())
	}
}

// TestSharedResidencyBudget enrolls two lazy engines in one residency group
// with a budget of one shard: after any interleaving of queries, at most one
// shard may be resident across BOTH engines, so a hot tenant can never
// starve the group of its budget, and answers stay correct throughout.
func TestSharedResidencyBudget(t *testing.T) {
	treeA := buildTestTree(t, 11)
	treeB := buildTestTree(t, 13)
	idxA, _ := writeShardedTestTree(t, treeA)
	idxB, _ := writeShardedTestTree(t, treeB)
	group := NewResidencyGroup(1)
	engA, err := NewLazy(idxA, Options{SharedResidency: group})
	if err != nil {
		t.Fatalf("NewLazy(a): %v", err)
	}
	engB, err := NewLazy(idxB, Options{SharedResidency: group})
	if err != nil {
		t.Fatalf("NewLazy(b): %v", err)
	}

	// Hammer tenant A across all its shards, then touch tenant B: the group
	// budget holds at every step.
	for rep := 0; rep < 2; rep++ {
		for _, c := range treeA.Root().Children {
			q := itemset.New(c.Item)
			assertSameAnswer(t, mustQuery(t, engA, q, 0), treeA.Query(q, 0))
			if got := group.Resident(); got > 1 {
				t.Fatalf("group budget 1 exceeded: %d resident", got)
			}
		}
		q := itemset.New(treeB.Root().Children[0].Item)
		assertSameAnswer(t, mustQuery(t, engB, q, 0), treeB.Query(q, 0))
		if got := group.Resident(); got > 1 {
			t.Fatalf("group budget 1 exceeded after cross-tenant query: %d resident", got)
		}
	}
	statsA, statsB := engA.Stats(), engB.Stats()
	if statsA.ResidentShards+statsB.ResidentShards > 1 {
		t.Fatalf("tenants hold %d+%d resident shards, want ≤ 1 combined",
			statsA.ResidentShards, statsB.ResidentShards)
	}
	if !statsA.SharedResidency || statsA.MaxResidentShards != 1 {
		t.Fatalf("tenant stats do not report the shared budget: %+v", statsA)
	}
	if statsA.ShardEvictions == 0 {
		t.Fatalf("hot tenant saw no evictions under a shared budget of 1")
	}

	// Removing a member returns its residency to the group, and the released
	// engine stands alone: it keeps answering under a private budget of the
	// same size, never counting against the group again.
	engB.Release()
	if statsB = engB.Stats(); statsB.ResidentShards != 0 {
		t.Fatalf("released tenant still holds %d resident shards", statsB.ResidentShards)
	}
	if got := group.Resident(); got > 1 {
		t.Fatalf("group counts %d resident after release", got)
	}
	groupBefore := group.Resident()
	for _, c := range treeB.Root().Children {
		q := itemset.New(c.Item)
		assertSameAnswer(t, mustQuery(t, engB, q, 0), treeB.Query(q, 0))
	}
	if got := group.Resident(); got != groupBefore {
		t.Fatalf("zombie engine changed the group's resident count (%d -> %d)", groupBefore, got)
	}
	if stats := engB.Stats(); stats.SharedResidency || stats.ResidentShards > 1 {
		t.Fatalf("released engine stats = shared=%v resident=%d, want a private budget of 1",
			stats.SharedResidency, stats.ResidentShards)
	}
}
