package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/delta"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// randomDeltaFor builds a random valid delta against nw: new edges, removed
// existing edges, new transactions (sometimes introducing a new item),
// sometimes a new connected vertex.
func randomDeltaFor(rng *rand.Rand, nw *dbnet.Network, items int) *delta.Delta {
	d := &delta.Delta{}
	n := nw.NumVertices()
	if rng.Intn(3) == 0 {
		d.AddVertices = 1
		d.AddEdges = append(d.AddEdges, graph.EdgeOf(graph.VertexID(rng.Intn(n)), graph.VertexID(n)))
		d.AddTransactions = append(d.AddTransactions, delta.VertexTransaction{
			Vertex: graph.VertexID(n), Tx: itemset.New(itemset.Item(rng.Intn(items))),
		})
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			d.AddEdges = append(d.AddEdges, graph.EdgeOf(a, b))
		}
	}
	if edges := nw.Graph().Edges(); len(edges) > 0 {
		d.RemoveEdges = append(d.RemoveEdges, edges[rng.Intn(len(edges))])
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		it := itemset.Item(rng.Intn(items))
		if rng.Intn(4) == 0 {
			it = itemset.Item(items + rng.Intn(2))
		}
		d.AddTransactions = append(d.AddTransactions, delta.VertexTransaction{
			Vertex: graph.VertexID(rng.Intn(n)), Tx: itemset.New(it, itemset.Item(rng.Intn(items))),
		})
	}
	return d
}

// deltaTestQueries is the query mix the parity tests compare: query-by-alpha,
// narrow patterns, wide patterns, across several thresholds.
func deltaTestQueries() []Request {
	return []Request{
		{Pattern: nil, Alpha: 0},
		{Pattern: nil, Alpha: 0.15},
		{Pattern: itemset.New(0), Alpha: 0},
		{Pattern: itemset.New(1, 2), Alpha: 0.1},
		{Pattern: itemset.New(0, 1, 2, 3, 4, 5, 6), Alpha: 0},
		{Pattern: itemset.New(3), Alpha: 0.3},
	}
}

// TestApplyDeltaParity is the serving-layer half of the acceptance
// criterion, as a table over eager and lazy engines and several generated
// networks/deltas: ApplyDelta then query must match a from-scratch rebuild
// then query, answer for answer.
func TestApplyDeltaParity(t *testing.T) {
	const items = 5
	for _, mode := range []string{"eager", "lazy"} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(mode, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				nw := randomNetwork(rng, 14, 34, items, 3)
				// An identically generated twin for the from-scratch rebuild.
				twin := randomNetwork(rand.New(rand.NewSource(seed)), 14, 34, items, 3)
				tree := tctree.Build(nw, tctree.BuildOptions{})
				if tree.NumNodes() == 0 {
					t.Skip("empty tree for this seed")
				}

				var eng *Engine
				var err error
				if mode == "eager" {
					eng, err = New(tree, Options{CacheSize: 64})
				} else {
					dir := t.TempDir()
					if _, werr := tree.WriteSharded(dir); werr != nil {
						t.Fatalf("WriteSharded: %v", werr)
					}
					idx, oerr := tctree.OpenSharded(dir)
					if oerr != nil {
						t.Fatalf("OpenSharded: %v", oerr)
					}
					eng, err = NewLazy(idx, Options{CacheSize: 64, MaxResidentShards: 3})
				}
				if err != nil {
					t.Fatalf("engine: %v", err)
				}

				// Warm the cache so the delta's invalidation is exercised.
				for _, q := range deltaTestQueries() {
					if _, err := eng.Query(q.Pattern, q.Alpha); err != nil {
						t.Fatalf("pre-delta query: %v", err)
					}
				}

				d := randomDeltaFor(rng, nw, items)
				res, err := eng.ApplyDelta(nw, d)
				if err != nil {
					t.Fatalf("ApplyDelta: %v", err)
				}
				if res.Epoch == 0 || eng.IndexEpoch() != res.Epoch {
					t.Fatalf("epoch not bumped: result %d, engine %d", res.Epoch, eng.IndexEpoch())
				}

				if err := delta.Apply(twin, d); err != nil {
					t.Fatalf("Apply on twin: %v", err)
				}
				freshTree := tctree.Build(twin, tctree.BuildOptions{})
				fresh, err := New(freshTree, Options{})
				if err != nil {
					t.Fatalf("fresh engine: %v", err)
				}
				if got, want := eng.NumShards(), fresh.NumShards(); got != want {
					t.Fatalf("NumShards = %d, fresh rebuild %d", got, want)
				}
				if got, want := eng.NumNodes(), fresh.NumNodes(); got != want {
					t.Fatalf("NumNodes = %d, fresh rebuild %d", got, want)
				}
				for _, q := range deltaTestQueries() {
					got, err := eng.Query(q.Pattern, q.Alpha)
					if err != nil {
						t.Fatalf("post-delta query: %v", err)
					}
					want, err := fresh.Query(q.Pattern, q.Alpha)
					if err != nil {
						t.Fatalf("fresh query: %v", err)
					}
					assertSameTrusses(t, got, want)

					gotK, err := eng.TopK(q.Pattern, q.Alpha, 5)
					if err != nil {
						t.Fatalf("post-delta TopK: %v", err)
					}
					wantK, err := fresh.TopK(q.Pattern, q.Alpha, 5)
					if err != nil {
						t.Fatalf("fresh TopK: %v", err)
					}
					if !reflect.DeepEqual(gotK, wantK) {
						t.Fatalf("TopK diverges after ApplyDelta:\n got %v\nwant %v", gotK, wantK)
					}
				}
			})
		}
	}
}

// TestApplyDeltaSelective pins the efficiency claim: a delta touching one
// vertex rebuilds strictly fewer shards than the index holds.
func TestApplyDeltaSelective(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw := randomNetwork(rng, 40, 260, 20, 3)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	eng, err := NewLazy(idx, Options{})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	total := eng.NumShards()
	d := &delta.Delta{AddTransactions: []delta.VertexTransaction{
		{Vertex: 0, Tx: itemset.New(nw.Items()[0])},
	}}
	res, err := eng.ApplyDelta(nw, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if res.Affected.Len() == 0 || res.Affected.Len() >= total {
		t.Fatalf("one-vertex delta affected %d of %d shards; want a strict subset", res.Affected.Len(), total)
	}
	touched := res.Report.Touched()
	if touched.Len() > res.Affected.Len() {
		t.Fatalf("commit touched %d shards, more than the %d affected", touched.Len(), res.Affected.Len())
	}
}

// TestApplyDeltaRejectsDepthBoundedIndex pins the MaxDepth guard: an index
// built with a depth bound cannot be incrementally maintained (the rebuild
// is unbounded and would make rebuilt shards deeper than untouched ones).
func TestApplyDeltaRejectsDepthBoundedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nw := randomNetwork(rng, 16, 40, 5, 4)
	tree := tctree.Build(nw, tctree.BuildOptions{MaxDepth: 2})
	d := &delta.Delta{AddTransactions: []delta.VertexTransaction{{Vertex: 0, Tx: itemset.New(0)}}}

	eager, err := New(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eager.ApplyDelta(nw, d); err == nil {
		t.Fatalf("eager ApplyDelta accepted a depth-bounded index")
	}

	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatal(err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Manifest().BuiltMaxDepth; got != 2 {
		t.Fatalf("manifest BuiltMaxDepth = %d, want 2", got)
	}
	lazy, err := NewLazy(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.ApplyDelta(nw, d); err == nil {
		t.Fatalf("lazy ApplyDelta accepted a depth-bounded index")
	}
	if _, err := idx.ApplyDelta(nw, itemset.New(0)); err == nil {
		t.Fatalf("ShardedIndex.ApplyDelta accepted a depth-bounded index")
	}
}

// TestApplyDeltaConcurrentQueries runs queries and top-k rankings while a
// delta lands mid-flight and asserts every answer is entirely pre-delta or
// entirely post-delta — never a mix of old and new shards. Run it with
// -race: it is also the data-race proof for the swap path.
func TestApplyDeltaConcurrentQueries(t *testing.T) {
	const items = 5
	rng := rand.New(rand.NewSource(11))
	nw := randomNetwork(rng, 14, 34, items, 3)
	twinPre := randomNetwork(rand.New(rand.NewSource(11)), 14, 34, items, 3)
	twinPost := randomNetwork(rand.New(rand.NewSource(11)), 14, 34, items, 3)
	d := randomDeltaFor(rng, nw, items)

	// Reference answers from independent engines on the pre- and post-delta
	// networks.
	preEng, err := New(tctree.Build(twinPre, tctree.BuildOptions{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := delta.Apply(twinPost, d); err != nil {
		t.Fatal(err)
	}
	postEng, err := New(tctree.Build(twinPost, tctree.BuildOptions{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := deltaTestQueries()
	type refAnswer struct {
		pre, post   map[itemset.Key]int // pattern -> edge count, an order-free fingerprint
		preK, postK []RankedCommunity
	}
	refs := make([]refAnswer, len(queries))
	fingerprint := func(e *Engine, q Request) map[itemset.Key]int {
		res, err := e.Query(q.Pattern, q.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[itemset.Key]int, len(res.Trusses))
		for _, tr := range res.Trusses {
			out[tr.Pattern.Key()] += tr.Edges.Len()
		}
		return out
	}
	for i, q := range queries {
		refs[i].pre = fingerprint(preEng, q)
		refs[i].post = fingerprint(postEng, q)
		if refs[i].preK, err = preEng.TopK(q.Pattern, q.Alpha, 4); err != nil {
			t.Fatal(err)
		}
		if refs[i].postK, err = postEng.TopK(q.Pattern, q.Alpha, 4); err != nil {
			t.Fatal(err)
		}
	}

	for _, mode := range []string{"eager", "lazy"} {
		t.Run(mode, func(t *testing.T) {
			// Fresh engine and fresh mutable network per mode: ApplyDelta
			// mutates both.
			liveNw := randomNetwork(rand.New(rand.NewSource(11)), 14, 34, items, 3)
			liveTree := tctree.Build(liveNw, tctree.BuildOptions{})
			var eng *Engine
			var err error
			if mode == "eager" {
				eng, err = New(liveTree, Options{CacheSize: 128})
			} else {
				dir := t.TempDir()
				if _, werr := liveTree.WriteSharded(dir); werr != nil {
					t.Fatal(werr)
				}
				idx, oerr := tctree.OpenSharded(dir)
				if oerr != nil {
					t.Fatal(oerr)
				}
				eng, err = NewLazy(idx, Options{CacheSize: 128, MaxResidentShards: 3})
			}
			if err != nil {
				t.Fatal(err)
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						q := queries[(i+w)%len(queries)]
						ref := refs[(i+w)%len(queries)]
						if i%3 == 0 {
							ranked, err := eng.TopK(q.Pattern, q.Alpha, 4)
							if err != nil {
								errs <- err
								return
							}
							if !reflect.DeepEqual(ranked, ref.preK) && !reflect.DeepEqual(ranked, ref.postK) {
								t.Errorf("TopK answer is neither pre- nor post-delta: %v", ranked)
								return
							}
							continue
						}
						res, err := eng.Query(q.Pattern, q.Alpha)
						if err != nil {
							errs <- err
							return
						}
						got := make(map[itemset.Key]int, len(res.Trusses))
						for _, tr := range res.Trusses {
							got[tr.Pattern.Key()] += tr.Edges.Len()
						}
						if !reflect.DeepEqual(got, ref.pre) && !reflect.DeepEqual(got, ref.post) {
							t.Errorf("query answer is neither pre- nor post-delta: %v", got)
							return
						}
					}
				}(w)
			}
			if _, err := eng.ApplyDelta(liveNw, d); err != nil {
				t.Fatalf("ApplyDelta: %v", err)
			}
			stop.Store(true)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("concurrent query: %v", err)
			}
			// After the delta every answer must be post-delta.
			for i, q := range queries {
				got := fingerprint(eng, q)
				if !reflect.DeepEqual(got, refs[i].post) {
					t.Fatalf("post-delta answer diverges for query %d: %v, want %v", i, got, refs[i].post)
				}
			}
			if eng.Stats().DeltasApplied != 1 {
				t.Fatalf("DeltasApplied = %d, want 1", eng.Stats().DeltasApplied)
			}
		})
	}
}

// TestReloadShardCacheRace provokes the reload/query interleaving the epoch
// gate closes: queries against one shard run full tilt while the shard is
// swapped on disk and reloaded. After every reload, the next cached answer
// must reflect the new shard — a query that computed against the old shard
// must never park its stale result in the cache past the purge.
func TestReloadShardCacheRace(t *testing.T) {
	tree := buildTestTree(t, 13)
	other := buildTestTree(t, 19)
	var item itemset.Item
	var replacement *tctree.Node
	for _, c := range other.Root().Children {
		if tree.Root().Descendant(c.Pattern) != nil {
			item, replacement = c.Item, c
			break
		}
	}
	if replacement == nil {
		t.Fatalf("trees share no root item; pick other seeds")
	}
	orig := tree.Root().Descendant(itemset.New(item))

	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatal(err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewLazy(idx, Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	q := itemset.New(item)
	subtrees := []*tctree.Node{orig, replacement}
	wantEdges := []int{
		querySubtree(orig, q, 0).trusses[0].Edges.Len(),
		querySubtree(replacement, q, 0).trusses[0].Edges.Len(),
	}
	if wantEdges[0] == wantEdges[1] {
		t.Fatalf("old and new shard answers coincide; pick other seeds")
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := eng.Query(q, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		next := subtrees[(i+1)%2]
		if err := idx.ReplaceShard(next); err != nil {
			t.Fatalf("ReplaceShard: %v", err)
		}
		if err := eng.ReloadShard(item); err != nil {
			t.Fatalf("ReloadShard: %v", err)
		}
		// The very next answer — cached or executed — must be the new shard's.
		res, err := eng.Query(q, 0)
		if err != nil {
			t.Fatalf("post-reload query: %v", err)
		}
		if got, want := res.Trusses[0].Edges.Len(), wantEdges[(i+1)%2]; got != want {
			t.Fatalf("iteration %d: post-reload answer has %d edges, want %d (stale cache entry served)", i, got, want)
		}
	}
	stop.Store(true)
	wg.Wait()
	if eng.IndexEpoch() != 40 {
		t.Fatalf("IndexEpoch = %d, want 40", eng.IndexEpoch())
	}
}

// assertSameTrusses compares two engine answers content-wise (the engines may
// legitimately group shards identically, so order is compared too).
func assertSameTrusses(t *testing.T, got, want *tctree.QueryResult) {
	t.Helper()
	if len(got.Trusses) != len(want.Trusses) {
		t.Fatalf("%d trusses, want %d", len(got.Trusses), len(want.Trusses))
	}
	for i := range want.Trusses {
		g, w := got.Trusses[i], want.Trusses[i]
		if !g.Pattern.Equal(w.Pattern) {
			t.Fatalf("truss %d pattern %v, want %v", i, g.Pattern, w.Pattern)
		}
		if g.Edges.Len() != w.Edges.Len() {
			t.Fatalf("truss %v: %d edges, want %d", g.Pattern, g.Edges.Len(), w.Edges.Len())
		}
		for _, e := range w.Edges {
			if !g.Edges.Contains(e) {
				t.Fatalf("truss %v misses edge %v", g.Pattern, e)
			}
		}
	}
}

// BenchmarkApplyDelta measures incremental maintenance on a lazy engine: a
// small one-vertex delta per iteration. The shardrebuilds/op metric counts
// shards re-decomposed per update — compare with BenchmarkDeltaFullRebuild,
// which pays every shard every time.
func BenchmarkApplyDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	nw := randomNetwork(rng, 40, 260, 20, 3)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	dir := b.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		b.Fatal(err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewLazy(idx, Options{})
	if err != nil {
		b.Fatal(err)
	}
	items := nw.Items()
	b.ResetTimer()
	var rebuilt int
	for i := 0; i < b.N; i++ {
		d := &delta.Delta{AddTransactions: []delta.VertexTransaction{
			{Vertex: graph.VertexID(i % nw.NumVertices()), Tx: itemset.New(items[i%items.Len()])},
		}}
		res, err := eng.ApplyDelta(nw, d)
		if err != nil {
			b.Fatal(err)
		}
		rebuilt += res.Affected.Len()
	}
	b.ReportMetric(float64(rebuilt)/float64(b.N), "shardrebuilds/op")
}

// BenchmarkDeltaFullRebuild is the baseline ApplyDelta replaces: apply the
// same small delta, then rebuild and rewrite the whole index from scratch.
func BenchmarkDeltaFullRebuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	nw := randomNetwork(rng, 40, 260, 20, 3)
	tree := tctree.Build(nw, tctree.BuildOptions{})
	dir := b.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		b.Fatal(err)
	}
	items := nw.Items()
	b.ResetTimer()
	var rebuilt int
	for i := 0; i < b.N; i++ {
		d := &delta.Delta{AddTransactions: []delta.VertexTransaction{
			{Vertex: graph.VertexID(i % nw.NumVertices()), Tx: itemset.New(items[i%items.Len()])},
		}}
		if err := delta.Apply(nw, d); err != nil {
			b.Fatal(err)
		}
		fresh := tctree.Build(nw, tctree.BuildOptions{})
		if _, err := fresh.WriteSharded(dir); err != nil {
			b.Fatal(err)
		}
		rebuilt += len(fresh.Root().Children)
	}
	b.ReportMetric(float64(rebuilt)/float64(b.N), "shardrebuilds/op")
}
