package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// writeShardedTestTree persists the tree in the sharded format and opens it.
func writeShardedTestTree(t *testing.T, tree *tctree.Tree) (*tctree.ShardedIndex, string) {
	t.Helper()
	dir := t.TempDir()
	if _, err := tree.WriteSharded(dir); err != nil {
		t.Fatalf("WriteSharded: %v", err)
	}
	idx, err := tctree.OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	return idx, dir
}

func TestNewLazyRejectsNilIndex(t *testing.T) {
	if _, err := NewLazy(nil, Options{}); err == nil {
		t.Fatalf("nil index should be rejected")
	}
}

// TestLazyMatchesEager is the lazy-mode correctness test: for every
// combination of worker count, cache configuration and residency budget, the
// lazily loaded answer must equal the in-memory tctree.Query answer — same
// trusses, same visit counts.
func TestLazyMatchesEager(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	items := tree.Root().Children
	full := make(itemset.Itemset, 0, len(items))
	for _, c := range items {
		full = append(full, c.Item)
	}
	rng := rand.New(rand.NewSource(29))
	queries := []itemset.Itemset{nil, full, itemset.New(full[0]), itemset.New(full[0], 999)}
	for trial := 0; trial < 4; trial++ {
		var q itemset.Itemset
		for _, it := range full {
			if rng.Intn(2) == 0 {
				q = q.Add(it)
			}
		}
		queries = append(queries, q)
	}
	alphas := []float64{0, 0.1, 0.3, tree.MaxAlpha(), tree.MaxAlpha() + 1}

	for _, workers := range []int{1, 4} {
		for _, cacheSize := range []int{0, 16} {
			for _, budget := range []int{0, 1, 2} {
				eng, err := NewLazy(idx, Options{Workers: workers, CacheSize: cacheSize, MaxResidentShards: budget})
				if err != nil {
					t.Fatalf("NewLazy: %v", err)
				}
				for _, q := range queries {
					for _, alpha := range alphas {
						var want *tctree.QueryResult
						if q == nil {
							want = tree.QueryByAlpha(alpha)
						} else {
							want = tree.Query(q, alpha)
						}
						for rep := 0; rep < 2; rep++ {
							assertSameAnswer(t, mustQuery(t, eng, q, alpha), want)
						}
					}
				}
				stats := eng.Stats()
				if !stats.Lazy || stats.LazyLoads == 0 {
					t.Fatalf("lazy engine reports lazy=%v loads=%d", stats.Lazy, stats.LazyLoads)
				}
				if budget > 0 {
					if stats.ResidentShards > budget {
						t.Fatalf("budget %d exceeded: %d resident", budget, stats.ResidentShards)
					}
					if len(eng.table.Load().shards) > budget && stats.ShardEvictions == 0 {
						t.Fatalf("budget %d with %d shards saw no evictions", budget, len(eng.table.Load().shards))
					}
				}
			}
		}
	}
}

// TestLazyResidency is the cold-start acceptance check: before any query
// nothing is resident; after one single-item query exactly that shard is.
func TestLazyResidency(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	if got := eng.Stats().ResidentShards; got != 0 {
		t.Fatalf("cold engine has %d resident shards, want 0", got)
	}
	if eng.NumNodes() != tree.NumNodes() || eng.Depth() != tree.Depth() {
		t.Fatalf("metadata (%d nodes, depth %d) should come from the manifest without loading; tree has (%d, %d)",
			eng.NumNodes(), eng.Depth(), tree.NumNodes(), tree.Depth())
	}
	if got := eng.Stats().ResidentShards; got != 0 {
		t.Fatalf("metadata reads loaded %d shards", got)
	}

	first := tree.Root().Children[0].Item
	mustQuery(t, eng, itemset.New(first), 0)
	stats := eng.Stats()
	if stats.ResidentShards != 1 {
		t.Fatalf("after one single-item query %d shards are resident, want 1", stats.ResidentShards)
	}
	if stats.ResidentShards >= stats.Shards {
		t.Fatalf("expected fewer-than-all shards resident (%d of %d)", stats.ResidentShards, stats.Shards)
	}
	for _, ss := range stats.ShardResidency {
		wantResident := itemset.Item(ss.Item) == first
		if ss.Resident != wantResident {
			t.Fatalf("shard %d residency = %v, want %v", ss.Item, ss.Resident, wantResident)
		}
	}

	// A full query loads everything (unlimited budget).
	mustQueryByAlpha(t, eng, 0)
	if got := eng.Stats().ResidentShards; got != eng.NumShards() {
		t.Fatalf("after a full query %d of %d shards resident", got, eng.NumShards())
	}
}

// TestLazyEvictionBudget holds the engine to one resident shard and checks
// that the budget is enforced, answers stay correct, and reloads happen on
// re-touch.
func TestLazyEvictionBudget(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{MaxResidentShards: 1})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	children := tree.Root().Children
	if len(children) < 2 {
		t.Fatalf("need at least 2 shards")
	}
	a, b := children[0].Item, children[1].Item
	for rep := 0; rep < 3; rep++ {
		for _, it := range []itemset.Item{a, b} {
			q := itemset.New(it)
			assertSameAnswer(t, mustQuery(t, eng, q, 0), tree.Query(q, 0))
			if got := eng.Stats().ResidentShards; got > 1 {
				t.Fatalf("budget 1 exceeded: %d resident", got)
			}
		}
	}
	stats := eng.Stats()
	if stats.ShardEvictions == 0 {
		t.Fatalf("alternating queries under budget 1 produced no evictions")
	}
	if stats.LazyLoads < 2 {
		t.Fatalf("expected repeated loads, got %d", stats.LazyLoads)
	}
}

// TestLazyLoadErrorIsStickyUntilReload corrupts a shard file: queries
// touching it fail (repeatedly, without re-reading the file), other shards
// keep answering, and restoring the file + ReloadShard recovers.
func TestLazyLoadErrorIsStickyUntilReload(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, dir := writeShardedTestTree(t, tree)
	children := tree.Root().Children
	victim := children[0].Item
	entry, ok := idx.Entry(victim)
	if !ok {
		t.Fatalf("no manifest entry for %d", victim)
	}
	path := filepath.Join(dir, entry.File)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	eng, err := NewLazy(idx, Options{})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	q := itemset.New(victim)
	if _, err := eng.Query(q, 0); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("query over a corrupted shard returned %v, want checksum error", err)
	}
	if _, err := eng.Query(q, 0); err == nil {
		t.Fatalf("load error should be sticky")
	}
	// A full query also fails, but a query avoiding the shard succeeds.
	if _, err := eng.QueryByAlpha(0); err == nil {
		t.Fatalf("full query over a corrupted shard should fail")
	}
	if len(children) > 1 {
		other := itemset.New(children[1].Item)
		assertSameAnswer(t, mustQuery(t, eng, other, 0), tree.Query(other, 0))
	}

	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := eng.ReloadShard(victim); err != nil {
		t.Fatalf("ReloadShard: %v", err)
	}
	assertSameAnswer(t, mustQuery(t, eng, q, 0), tree.Query(q, 0))
}

// TestReplaceShardAndReload is the single-shard replacement test: after
// swapping one shard on disk, ReloadShard must invalidate exactly the cached
// answers that depend on it, and subsequent queries must reflect the new
// subtree while untouched shards keep their answers (and their cache
// entries).
func TestReplaceShardAndReload(t *testing.T) {
	tree := buildTestTree(t, 11)
	other := buildTestTree(t, 13)
	idx, _ := writeShardedTestTree(t, tree)

	var item itemset.Item
	var replacement *tctree.Node
	found := false
	for _, c := range other.Root().Children {
		if tree.Root().Descendant(c.Pattern) != nil {
			item, replacement, found = c.Item, c, true
			break
		}
	}
	if !found {
		t.Fatalf("trees share no root item; pick other seeds")
	}
	var avoiding itemset.Itemset
	for _, c := range tree.Root().Children {
		if c.Item != item {
			avoiding = avoiding.Add(c.Item)
		}
	}

	eng, err := NewLazy(idx, Options{CacheSize: 16})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	q := itemset.New(item)
	assertSameAnswer(t, mustQuery(t, eng, q, 0), tree.Query(q, 0))
	assertSameAnswer(t, mustQuery(t, eng, avoiding, 0), tree.Query(avoiding, 0))
	if got := eng.Stats().Cache.Length; got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}

	if err := idx.ReplaceShard(replacement); err != nil {
		t.Fatalf("ReplaceShard: %v", err)
	}
	// Until the engine reloads, the stale cached answer is still served —
	// that is the contract: invalidation is explicit.
	assertSameAnswer(t, mustQuery(t, eng, q, 0), tree.Query(q, 0))

	if err := eng.ReloadShard(item); err != nil {
		t.Fatalf("ReloadShard: %v", err)
	}
	stats := eng.Stats()
	if stats.Cache.Length != 1 {
		t.Fatalf("after ReloadShard the cache holds %d entries, want 1 (only the avoiding query)", stats.Cache.Length)
	}
	// The shard now answers from the replacement subtree...
	assertSameAnswer(t, mustQuery(t, eng, q, 0), other.Query(q, 0))
	// ...and the untouched query still matches the original tree, served
	// from its surviving cache entry.
	before := stats.Cache.Hits
	assertSameAnswer(t, mustQuery(t, eng, avoiding, 0), tree.Query(avoiding, 0))
	if got := eng.Stats().Cache.Hits; got != before+1 {
		t.Fatalf("untouched query was not served from cache (hits %d -> %d)", before, got)
	}

	// ReloadShard is lazy-only and rejects unknown items.
	if err := eng.ReloadShard(4096); err == nil {
		t.Fatalf("ReloadShard of an unknown item should fail")
	}
	eager, err := New(tree, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := eager.ReloadShard(tree.Root().Children[0].Item); err == nil {
		t.Fatalf("ReloadShard on an eager engine should fail")
	}
}

// TestLazyTopKAndSearchVertex exercises the engine paths that need node
// lookups beyond plain queries on a lazy engine.
func TestLazyTopKAndSearchVertex(t *testing.T) {
	tree := buildTestTree(t, 7)
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{MaxResidentShards: 2})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	eager, err := New(tree, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wantRanked, err := eager.TopK(nil, 0, 10)
	if err != nil {
		t.Fatalf("eager TopK: %v", err)
	}
	gotRanked, err := eng.TopK(nil, 0, 10)
	if err != nil {
		t.Fatalf("lazy TopK: %v", err)
	}
	if len(gotRanked) != len(wantRanked) {
		t.Fatalf("lazy TopK returned %d communities, eager %d", len(gotRanked), len(wantRanked))
	}
	for i := range wantRanked {
		if !gotRanked[i].Community.Pattern.Equal(wantRanked[i].Community.Pattern) ||
			!approxEqual(gotRanked[i].Cohesion, wantRanked[i].Cohesion) {
			t.Fatalf("lazy TopK[%d] = %v@%g, eager %v@%g", i,
				gotRanked[i].Community.Pattern, gotRanked[i].Cohesion,
				wantRanked[i].Community.Pattern, wantRanked[i].Cohesion)
		}
	}

	// Vertex search parity over every vertex of the first truss found.
	full := tree.QueryByAlpha(0)
	if len(full.Trusses) == 0 {
		t.Fatalf("tree answers nothing at alpha 0")
	}
	for v := range full.Trusses[0].Freq {
		want := tree.SearchVertex(v, nil, 0.1)
		got, err := eng.SearchVertex(v, nil, 0.1)
		if err != nil {
			t.Fatalf("lazy SearchVertex: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("vertex %d: lazy found %d communities, eager %d", v, len(got), len(want))
		}
		for i := range want {
			if !got[i].Pattern.Equal(want[i].Pattern) || !got[i].Edges.Equal(want[i].Edges) {
				t.Fatalf("vertex %d community %d differs", v, i)
			}
		}
		break
	}

	// Pattern listings: depth 1 needs no loads; deeper depths match the tree.
	for depth := 1; depth <= tree.Depth(); depth++ {
		want := tree.PatternsAtDepth(depth)
		got, err := eng.PatternsAtDepth(depth)
		if err != nil {
			t.Fatalf("PatternsAtDepth(%d): %v", depth, err)
		}
		if len(got) != len(want) {
			t.Fatalf("depth %d: lazy listed %d patterns, tree has %d", depth, len(got), len(want))
		}
	}
	if got := eng.Stats().ResidentShards; got > 2 {
		t.Fatalf("budget 2 exceeded after metadata traversals: %d resident", got)
	}
}

// TestLazyConcurrent hammers a tightly budgeted lazy engine from many
// goroutines so loads, evictions and traversals race; run with -race it
// verifies the locking discipline, and every answer must still be correct.
func TestLazyConcurrent(t *testing.T) {
	tree := buildTestTree(t, 11)
	idx, _ := writeShardedTestTree(t, tree)
	eng, err := NewLazy(idx, Options{Workers: 4, CacheSize: 4, MaxResidentShards: 1})
	if err != nil {
		t.Fatalf("NewLazy: %v", err)
	}
	children := tree.Root().Children
	type job struct {
		q    itemset.Itemset
		want *tctree.QueryResult
	}
	jobs := make([]job, 0, len(children)+1)
	for _, c := range children {
		q := itemset.New(c.Item)
		jobs = append(jobs, job{q: q, want: tree.Query(q, 0)})
	}
	jobs = append(jobs, job{q: nil, want: tree.QueryByAlpha(0)})

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				j := jobs[(g+i)%len(jobs)]
				got, err := eng.Query(j.q, 0)
				if err != nil {
					done <- err
					return
				}
				if got.RetrievedNodes != j.want.RetrievedNodes {
					done <- fmt.Errorf("query %v retrieved %d nodes, want %d", j.q, got.RetrievedNodes, j.want.RetrievedNodes)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Stats().ResidentShards; got > 1 {
		t.Fatalf("budget 1 exceeded after concurrent load: %d resident", got)
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
