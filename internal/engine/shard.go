package engine

import (
	"sync"
	"sync/atomic"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
	"themecomm/internal/truss"
)

// shard is one partition of the TC-Tree: the subtree rooted at a first-level
// node. Every pattern indexed inside the shard contains the shard's root
// item, so a query (q, α_q) with root item ∉ q can skip the whole shard
// without visiting a single node — and, in lazy mode, without even reading
// the shard file from disk.
type shard struct {
	// item is the shard's root item.
	item itemset.Item

	// load opens the shard in its on-disk index's native representation —
	// a decoded pointer tree for gob, a memory-mapped in-place view for
	// TCBIN — nil for eager shards (whose view is fixed at engine
	// construction and never evicted).
	load func() (tctree.ShardView, error)

	// mu guards view, err, once and the catalogue statistics below. view is
	// the resident query surface (nil while not loaded); err is the sticky
	// load error, cleared by Engine.ReloadShard; once serializes the
	// in-flight load and is replaced on every evict/reload so the shard can
	// be loaded again later.
	mu   sync.Mutex
	view tctree.ShardView
	err  error
	once *sync.Once

	// nodes, depth and maxAlpha are the shard's catalogue statistics: node
	// count, longest indexed pattern, and α* bound. Lazy shards take them
	// from the manifest (so they are known without loading the shard); eager
	// shards compute them at engine construction. bloom and alphaDepths are
	// the skipping catalogue (decoded once from the manifest entry): the
	// item filter and the best-α*-per-depth histogram the planner consults
	// for containment queries.
	nodes       int
	depth       int
	maxAlpha    float64
	bloom       *tctree.ItemBloom
	alphaDepths []float64

	// lastUsed is the engine's logical clock value at the shard's most
	// recent traversal; the eviction policy drops the resident shard with
	// the smallest value. loads counts completed disk loads.
	lastUsed atomic.Int64
	loads    atomic.Uint64
}

// resident reports whether the shard's view is in memory.
func (s *shard) resident() bool {
	if s.load == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view != nil
}

// meta returns the shard's catalogue statistics.
func (s *shard) meta() (nodes, depth int, maxAlpha float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes, s.depth, s.maxAlpha
}

// sizeBytes returns the resident view's memory charge (0 when not resident
// or unknown).
func (s *shard) sizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view == nil {
		return 0
	}
	return s.view.SizeBytes()
}

// info snapshots the shard for the planner: catalogue statistics plus
// residency, taken under one lock acquisition.
func (s *shard) info() ShardInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardInfo{
		Item:        s.item,
		Nodes:       s.nodes,
		Depth:       s.depth,
		MaxAlpha:    s.maxAlpha,
		Resident:    s.load == nil || s.view != nil,
		Bloom:       s.bloom,
		AlphaDepths: s.alphaDepths,
	}
}

// shardResult is the answer of one shard to one query.
type shardResult struct {
	// trusses are the non-empty reconstructed trusses in breadth-first
	// order within the shard.
	trusses []*truss.Truss
	// visited counts the shard nodes inspected, including nodes whose truss
	// was empty at α_q (the shard's share of QueryResult.VisitedNodes).
	visited int
	// err is the shard's lazy-load failure, if any; the traversal itself
	// cannot fail.
	err error
}

// answerResult converts a view's answer to the executor's per-shard record.
func answerResult(a tctree.ShardAnswer) shardResult {
	return shardResult{trusses: a.Trusses, visited: a.Visited}
}

// querySubtree runs Algorithm 5 restricted to the subtree rooted at root —
// the pointer-tree spelling of tctree.ShardView.QuerySub, kept for call
// sites and tests that hold a bare *Node.
func querySubtree(root *tctree.Node, q itemset.Itemset, alphaQ float64) shardResult {
	return answerResult(tctree.NewNodeView(root).QuerySub(q, alphaQ))
}
