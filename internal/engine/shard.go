package engine

import (
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
	"themecomm/internal/truss"
)

// shard is one partition of the TC-Tree: the subtree rooted at a first-level
// node. Every pattern indexed inside the shard contains the shard's root
// item, so a query (q, α_q) with root item ∉ q can skip the whole shard
// without visiting a single node.
type shard struct {
	root *tctree.Node
}

// shardResult is the answer of one shard to one query.
type shardResult struct {
	// trusses are the non-empty reconstructed trusses in breadth-first
	// order within the shard.
	trusses []*truss.Truss
	// visited counts the shard nodes inspected, including nodes whose truss
	// was empty at α_q (the shard's share of QueryResult.VisitedNodes).
	visited int
}

// query runs Algorithm 5 restricted to the shard: breadth-first traversal,
// skipping children whose item is not in q and pruning subtrees whose
// reconstructed truss is empty at α_q (Proposition 5.2). The shard root
// itself is only inspected when its item is in q, which the engine
// guarantees by shard selection.
func (s *shard) query(q itemset.Itemset, alphaQ float64) shardResult {
	var res shardResult
	res.visited++
	tr := s.root.Decomp.TrussAt(alphaQ)
	if tr.Empty() {
		return res
	}
	res.trusses = append(res.trusses, tr)
	queue := []*tctree.Node{s.root}
	for len(queue) > 0 {
		nf := queue[0]
		queue = queue[1:]
		for _, nc := range nf.Children {
			if !q.Contains(nc.Item) {
				continue
			}
			res.visited++
			tr := nc.Decomp.TrussAt(alphaQ)
			if tr.Empty() {
				continue
			}
			res.trusses = append(res.trusses, tr)
			queue = append(queue, nc)
		}
	}
	return res
}
