package engine

import (
	"sync"
	"sync/atomic"

	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
	"themecomm/internal/truss"
)

// shard is one partition of the TC-Tree: the subtree rooted at a first-level
// node. Every pattern indexed inside the shard contains the shard's root
// item, so a query (q, α_q) with root item ∉ q can skip the whole shard
// without visiting a single node — and, in lazy mode, without even reading
// the shard file from disk.
type shard struct {
	// item is the shard's root item.
	item itemset.Item

	// load reads the shard subtree from its file, nil for eager shards
	// (whose root is fixed at engine construction and never evicted).
	load func() (*tctree.Node, error)

	// mu guards root, err, once and the catalogue statistics below. root is
	// the resident subtree (nil while not loaded); err is the sticky load
	// error, cleared by Engine.ReloadShard; once serializes the in-flight
	// load and is replaced on every evict/reload so the shard can be loaded
	// again later.
	mu   sync.Mutex
	root *tctree.Node
	err  error
	once *sync.Once

	// nodes, depth and maxAlpha are the shard's catalogue statistics: node
	// count, longest indexed pattern, and α* bound. Lazy shards take them
	// from the manifest (so they are known without loading the shard); eager
	// shards compute them at engine construction.
	nodes    int
	depth    int
	maxAlpha float64

	// lastUsed is the engine's logical clock value at the shard's most
	// recent traversal; the eviction policy drops the resident shard with
	// the smallest value. loads counts completed disk loads.
	lastUsed atomic.Int64
	loads    atomic.Uint64
}

// resident reports whether the shard's subtree is in memory.
func (s *shard) resident() bool {
	if s.load == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root != nil
}

// meta returns the shard's catalogue statistics.
func (s *shard) meta() (nodes, depth int, maxAlpha float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes, s.depth, s.maxAlpha
}

// info snapshots the shard for the planner: catalogue statistics plus
// residency, taken under one lock acquisition.
func (s *shard) info() ShardInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardInfo{
		Item:     s.item,
		Nodes:    s.nodes,
		Depth:    s.depth,
		MaxAlpha: s.maxAlpha,
		Resident: s.load == nil || s.root != nil,
	}
}

// shardResult is the answer of one shard to one query.
type shardResult struct {
	// trusses are the non-empty reconstructed trusses in breadth-first
	// order within the shard.
	trusses []*truss.Truss
	// visited counts the shard nodes inspected, including nodes whose truss
	// was empty at α_q (the shard's share of QueryResult.VisitedNodes).
	visited int
	// err is the shard's lazy-load failure, if any; the traversal itself
	// cannot fail.
	err error
}

// querySubtree runs Algorithm 5 restricted to the subtree rooted at root:
// breadth-first traversal, skipping children whose item is not in q and
// pruning subtrees whose reconstructed truss is empty at α_q
// (Proposition 5.2). The root itself is only inspected when its item is in q,
// which the engine guarantees by shard selection.
func querySubtree(root *tctree.Node, q itemset.Itemset, alphaQ float64) shardResult {
	var res shardResult
	res.visited++
	tr := root.Decomp.TrussAt(alphaQ)
	if tr.Empty() {
		return res
	}
	res.trusses = append(res.trusses, tr)
	queue := []*tctree.Node{root}
	for len(queue) > 0 {
		nf := queue[0]
		queue = queue[1:]
		for _, nc := range nf.Children {
			if !q.Contains(nc.Item) {
				continue
			}
			res.visited++
			tr := nc.Decomp.TrussAt(alphaQ)
			if tr.Empty() {
				continue
			}
			res.trusses = append(res.trusses, tr)
			queue = append(queue, nc)
		}
	}
	return res
}
