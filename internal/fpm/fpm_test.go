package fpm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"themecomm/internal/itemset"
	"themecomm/internal/txdb"
)

func sampleDB() *txdb.Database {
	return txdb.FromTransactions(
		[]itemset.Item{1, 2, 3},
		[]itemset.Item{1, 2},
		[]itemset.Item{1, 3},
		[]itemset.Item{2, 3},
		[]itemset.Item{1, 2, 3, 4},
	)
}

func patternKeys(ps []Pattern) map[itemset.Key]float64 {
	m := make(map[itemset.Key]float64, len(ps))
	for _, p := range ps {
		m[p.Items.Key()] = p.Frequency
	}
	return m
}

func TestAprioriKnownResult(t *testing.T) {
	db := sampleDB()
	// Threshold 0.5: only patterns with frequency > 0.5 (strict).
	got := Apriori(db, Options{MinFrequency: 0.5})
	keys := patternKeys(got)
	want := map[string]float64{
		itemset.New(1).String():    0.8,
		itemset.New(2).String():    0.8,
		itemset.New(3).String():    0.8,
		itemset.New(1, 2).String(): 0.6,
		itemset.New(1, 3).String(): 0.6,
		itemset.New(2, 3).String(): 0.6,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d patterns, want %d: %v", len(got), len(want), got)
	}
	for _, p := range got {
		wantFreq, ok := want[p.Items.String()]
		if !ok {
			t.Errorf("unexpected pattern %v", p.Items)
			continue
		}
		if diff := p.Frequency - wantFreq; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("pattern %v frequency = %v, want %v", p.Items, p.Frequency, wantFreq)
		}
	}
	_ = keys
}

func TestStrictInequality(t *testing.T) {
	// {1,2,3} has frequency exactly 0.4; with ε=0.4 it must be excluded.
	db := sampleDB()
	got := Apriori(db, Options{MinFrequency: 0.4})
	for _, p := range got {
		if p.Items.Equal(itemset.New(1, 2, 3)) {
			t.Fatalf("pattern with frequency exactly ε must be excluded")
		}
	}
	// With ε slightly below 0.4 it must be included.
	got = Apriori(db, Options{MinFrequency: 0.399})
	found := false
	for _, p := range got {
		if p.Items.Equal(itemset.New(1, 2, 3)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("pattern {1,2,3} with frequency 0.4 should pass ε=0.399")
	}
}

func TestMaxLength(t *testing.T) {
	db := sampleDB()
	got := Apriori(db, Options{MinFrequency: 0, MaxLength: 1})
	for _, p := range got {
		if p.Items.Len() > 1 {
			t.Fatalf("MaxLength=1 returned %v", p.Items)
		}
	}
	if len(got) != 4 {
		t.Fatalf("expected 4 single-item patterns, got %d", len(got))
	}
}

func TestEnumerateEqualsApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 6, 15, 4)
		for _, eps := range []float64{0, 0.1, 0.25, 0.5} {
			a := patternKeys(Apriori(db, Options{MinFrequency: eps}))
			e := patternKeys(Enumerate(db, Options{MinFrequency: eps}))
			if len(a) != len(e) {
				t.Fatalf("trial %d eps %v: Apriori %d patterns, Enumerate %d", trial, eps, len(a), len(e))
			}
			for k, f := range a {
				if ef, ok := e[k]; !ok || ef != f {
					t.Fatalf("trial %d eps %v: mismatch on %v", trial, eps, itemset.Key(k).Itemset())
				}
			}
		}
	}
}

func TestJoinCandidates(t *testing.T) {
	qualified := []itemset.Itemset{
		itemset.New(1, 2), itemset.New(1, 3), itemset.New(2, 3), itemset.New(2, 4),
	}
	got := JoinCandidates(qualified)
	// {1,2,3} has all subsets qualified; {1,2,4} is missing {1,4}; {2,3,4} is missing {3,4}.
	if len(got) != 1 || !got[0].Equal(itemset.New(1, 2, 3)) {
		t.Fatalf("JoinCandidates = %v, want [{1,2,3}]", got)
	}
	if got := JoinCandidates(nil); got != nil {
		t.Fatalf("JoinCandidates(nil) = %v", got)
	}
	if got := JoinCandidates([]itemset.Itemset{itemset.New(1)}); got != nil {
		t.Fatalf("JoinCandidates of a single pattern = %v", got)
	}
}

func TestJoinCandidatesLevel1(t *testing.T) {
	qualified := []itemset.Itemset{itemset.New(1), itemset.New(2), itemset.New(3)}
	got := JoinCandidates(qualified)
	if len(got) != 3 {
		t.Fatalf("expected all 3 pairs, got %v", got)
	}
}

func TestEmptyDatabase(t *testing.T) {
	db := txdb.New()
	if got := Apriori(db, Options{}); got != nil {
		t.Fatalf("Apriori on empty db = %v", got)
	}
	if got := Enumerate(db, Options{}); got != nil {
		t.Fatalf("Enumerate on empty db = %v", got)
	}
	if got := CountFrequent(db, 0); got != 0 {
		t.Fatalf("CountFrequent on empty db = %d", got)
	}
}

func TestCountFrequent(t *testing.T) {
	db := txdb.FromTransactions([]itemset.Item{1, 2}, []itemset.Item{1, 2})
	// Patterns with f > 0.5: {1}, {2}, {1,2} (all have f=1).
	if got := CountFrequent(db, 0.5); got != 3 {
		t.Fatalf("CountFrequent = %d, want 3", got)
	}
	if got := CountFrequent(db, 1.0); got != 0 {
		t.Fatalf("CountFrequent with ε=1 = %d, want 0", got)
	}
}

func TestMaximalOnly(t *testing.T) {
	db := sampleDB()
	all := Apriori(db, Options{MinFrequency: 0.5})
	maximal := MaximalOnly(all)
	// The maximal patterns above 0.5 are the three pairs.
	if len(maximal) != 3 {
		t.Fatalf("MaximalOnly = %v, want 3 pairs", maximal)
	}
	for _, p := range maximal {
		if p.Items.Len() != 2 {
			t.Errorf("unexpected maximal pattern %v", p.Items)
		}
	}
}

// Property: every returned pattern really has frequency above the threshold,
// and every frequent single item is returned (completeness at level 1).
func TestQuickMinedPatternsValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Values: func(vals []reflect.Value, rng *rand.Rand) {
		vals[0] = reflect.ValueOf(randomDB(rng, 6, 12, 4))
		vals[1] = reflect.ValueOf(rng.Float64() * 0.6)
	}}
	f := func(db *txdb.Database, eps float64) bool {
		mined := Apriori(db, Options{MinFrequency: eps})
		seen := make(map[itemset.Key]bool)
		for _, p := range mined {
			if db.Frequency(p.Items) <= eps {
				return false
			}
			seen[p.Items.Key()] = true
		}
		for it, f := range db.ItemFrequencies() {
			if f > eps && !seen[itemset.New(it).Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the mined set is downward closed — every non-empty subset of a
// mined pattern is also mined (anti-monotonicity of frequency).
func TestQuickDownwardClosure(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Values: func(vals []reflect.Value, rng *rand.Rand) {
		vals[0] = reflect.ValueOf(randomDB(rng, 5, 10, 4))
	}}
	f := func(db *txdb.Database) bool {
		mined := Apriori(db, Options{MinFrequency: 0.2})
		keys := make(map[itemset.Key]bool)
		for _, p := range mined {
			keys[p.Items.Key()] = true
		}
		for _, p := range mined {
			for _, sub := range p.Items.ImmediateSubsets() {
				if sub.Len() > 0 && !keys[sub.Key()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randomDB(rng *rand.Rand, maxItem, maxTx, maxLen int) *txdb.Database {
	db := txdb.New()
	n := 1 + rng.Intn(maxTx)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(maxLen)
		items := make([]itemset.Item, l)
		for j := range items {
			items[j] = itemset.Item(rng.Intn(maxItem))
		}
		db.Add(itemset.New(items...))
	}
	return db
}
