// Package fpm provides frequent pattern mining over a single transaction
// database. It is the substrate used by the TCS baseline (Section 4.2 of the
// paper) to enumerate the candidate patterns whose frequency exceeds the
// pre-filter threshold ε, and by the tests of the #P-hardness reduction
// (Appendix A.1), which relates theme-community counting to frequent-pattern
// counting.
//
// Two equivalent miners are provided: a level-wise Apriori miner and a
// depth-first enumeration miner. Both return exactly the set of patterns whose
// frequency is strictly greater than the threshold, matching the strict
// inequality f(p) > ε used in the paper.
package fpm

import (
	"sort"

	"themecomm/internal/itemset"
	"themecomm/internal/txdb"
)

// Pattern couples an itemset with its frequency in the mined database.
type Pattern struct {
	Items     itemset.Itemset
	Frequency float64
}

// Options configures a mining run.
type Options struct {
	// MinFrequency is the exclusive lower bound ε: only patterns with
	// frequency strictly greater than MinFrequency are returned.
	MinFrequency float64
	// MaxLength, when positive, bounds the length of returned patterns.
	// Zero means unbounded.
	MaxLength int
}

// Apriori mines all patterns p with frequency(p) > opts.MinFrequency using the
// classic level-wise algorithm of Agrawal and Srikant. The empty pattern is
// never returned.
func Apriori(db *txdb.Database, opts Options) []Pattern {
	if db.Len() == 0 {
		return nil
	}
	maxLen := opts.MaxLength
	if maxLen <= 0 {
		maxLen = int(^uint(0) >> 1)
	}

	var result []Pattern

	// Level 1: frequent single items.
	var level []itemset.Itemset
	itemFreqs := db.ItemFrequencies()
	items := make([]itemset.Item, 0, len(itemFreqs))
	for it := range itemFreqs {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, it := range items {
		if itemFreqs[it] > opts.MinFrequency {
			p := itemset.New(it)
			level = append(level, p)
			result = append(result, Pattern{Items: p, Frequency: itemFreqs[it]})
		}
	}

	k := 2
	for len(level) > 0 && k <= maxLen {
		candidates := JoinCandidates(level)
		var next []itemset.Itemset
		for _, c := range candidates {
			f := db.Frequency(c)
			if f > opts.MinFrequency {
				next = append(next, c)
				result = append(result, Pattern{Items: c, Frequency: f})
			}
		}
		level = next
		k++
	}
	sortPatterns(result)
	return result
}

// JoinCandidates implements the Apriori candidate generation step
// (Algorithm 2 of the paper): it joins pairs of length-(k-1) qualified
// patterns whose union has length k and keeps only the unions all of whose
// length-(k-1) subsets are qualified. The input patterns must all have the
// same length and be canonical itemsets.
func JoinCandidates(qualified []itemset.Itemset) []itemset.Itemset {
	if len(qualified) < 2 {
		return nil
	}
	k := qualified[0].Len() + 1
	qualifiedKeys := make(map[itemset.Key]bool, len(qualified))
	for _, q := range qualified {
		qualifiedKeys[q.Key()] = true
	}

	seen := make(map[itemset.Key]bool)
	var out []itemset.Itemset
	// Classic prefix join: sort and join pairs sharing the first k-2 items.
	sorted := make([]itemset.Itemset, len(qualified))
	copy(sorted, qualified)
	itemset.Sort(sorted)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			a, b := sorted[i], sorted[j]
			if !a.Prefix(a.Len() - 1).Equal(b.Prefix(b.Len() - 1)) {
				break // sorted order: no further j shares the prefix
			}
			cand := a.Union(b)
			if cand.Len() != k {
				continue
			}
			key := cand.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			if allSubsetsQualified(cand, qualifiedKeys) {
				out = append(out, cand)
			}
		}
	}
	itemset.Sort(out)
	return out
}

func allSubsetsQualified(cand itemset.Itemset, qualified map[itemset.Key]bool) bool {
	for _, sub := range cand.ImmediateSubsets() {
		if !qualified[sub.Key()] {
			return false
		}
	}
	return true
}

// Enumerate mines all patterns p with frequency(p) > opts.MinFrequency using
// depth-first enumeration with anti-monotone pruning. It returns the same set
// of patterns as Apriori and exists both as a cross-check and because the
// depth-first order is cheaper on dense vertex databases.
func Enumerate(db *txdb.Database, opts Options) []Pattern {
	if db.Len() == 0 {
		return nil
	}
	maxLen := opts.MaxLength
	if maxLen <= 0 {
		maxLen = int(^uint(0) >> 1)
	}
	itemFreqs := db.ItemFrequencies()
	items := make([]itemset.Item, 0, len(itemFreqs))
	for it := range itemFreqs {
		if itemFreqs[it] > opts.MinFrequency {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	var result []Pattern
	var dfs func(prefix itemset.Itemset, start int)
	dfs = func(prefix itemset.Itemset, start int) {
		for i := start; i < len(items); i++ {
			cand := prefix.Add(items[i])
			f := db.Frequency(cand)
			if f <= opts.MinFrequency {
				continue
			}
			result = append(result, Pattern{Items: cand, Frequency: f})
			if cand.Len() < maxLen {
				dfs(cand, i+1)
			}
		}
	}
	dfs(nil, 0)
	sortPatterns(result)
	return result
}

// CountFrequent returns the number of patterns with frequency strictly greater
// than minFrequency. This is the Frequent Pattern Counting problem used in the
// #P-hardness reduction of Appendix A.1.
func CountFrequent(db *txdb.Database, minFrequency float64) int {
	return len(Enumerate(db, Options{MinFrequency: minFrequency}))
}

// MaximalOnly filters a mined pattern set down to the maximal patterns: those
// with no proper superset in the set.
func MaximalOnly(patterns []Pattern) []Pattern {
	var out []Pattern
	for i, p := range patterns {
		maximal := true
		for j, q := range patterns {
			if i != j && p.Items.ProperSubsetOf(q.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	return out
}

func sortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Items.Len() != ps[j].Items.Len() {
			return ps[i].Items.Len() < ps[j].Items.Len()
		}
		return itemset.Compare(ps[i].Items, ps[j].Items) < 0
	})
}
