package txdb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"themecomm/internal/itemset"
)

func approxEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestEmptyDatabase(t *testing.T) {
	d := New()
	if !d.Empty() || d.Len() != 0 {
		t.Fatalf("new database should be empty")
	}
	if got := d.Frequency(itemset.New(1)); got != 0 {
		t.Fatalf("frequency in empty database = %v, want 0", got)
	}
	if got := d.Support(itemset.New()); got != 0 {
		t.Fatalf("support of empty pattern in empty database = %d, want 0", got)
	}
	if d.TotalItems() != 0 {
		t.Fatalf("TotalItems of empty database should be 0")
	}
}

func TestFrequencyBasics(t *testing.T) {
	d := FromTransactions(
		[]itemset.Item{1, 2, 3},
		[]itemset.Item{1, 2},
		[]itemset.Item{2, 3},
		[]itemset.Item{1, 2, 3},
		[]itemset.Item{4},
	)
	cases := []struct {
		p    itemset.Itemset
		want float64
	}{
		{itemset.New(), 1.0},
		{itemset.New(1), 3.0 / 5},
		{itemset.New(2), 4.0 / 5},
		{itemset.New(1, 2), 3.0 / 5},
		{itemset.New(1, 2, 3), 2.0 / 5},
		{itemset.New(4), 1.0 / 5},
		{itemset.New(5), 0},
		{itemset.New(1, 4), 0},
	}
	for _, c := range cases {
		if got := d.Frequency(c.p); !approxEqual(got, c.want) {
			t.Errorf("Frequency(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMultisetSemantics(t *testing.T) {
	// The same transaction added twice must count twice.
	d := FromTransactions([]itemset.Item{1, 2}, []itemset.Item{1, 2})
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if got := d.Support(itemset.New(1, 2)); got != 2 {
		t.Fatalf("Support = %d, want 2", got)
	}
}

func TestTransactionCanonicalization(t *testing.T) {
	d := FromTransactions([]itemset.Item{3, 1, 3, 2})
	tx := d.Transactions()[0]
	if !tx.Equal(itemset.New(1, 2, 3)) {
		t.Fatalf("transaction not canonicalized: %v", tx)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	d := New()
	d.Add(Transaction{3, 1}) // deliberately bypass canonicalization
	if err := d.Validate(); err == nil {
		t.Fatalf("Validate should reject a non-canonical transaction")
	}
}

func TestItemsAndTotalItems(t *testing.T) {
	d := FromTransactions([]itemset.Item{1, 2}, []itemset.Item{2, 3, 4})
	if got, want := d.Items(), itemset.New(1, 2, 3, 4); !got.Equal(want) {
		t.Fatalf("Items = %v, want %v", got, want)
	}
	if got := d.TotalItems(); got != 5 {
		t.Fatalf("TotalItems = %d, want 5", got)
	}
}

func TestItemFrequenciesMatchFrequency(t *testing.T) {
	d := FromTransactions(
		[]itemset.Item{1, 2},
		[]itemset.Item{2},
		[]itemset.Item{3},
	)
	freqs := d.ItemFrequencies()
	for it, f := range freqs {
		if got := d.Frequency(itemset.New(it)); !approxEqual(got, f) {
			t.Errorf("item %d: ItemFrequencies=%v Frequency=%v", it, f, got)
		}
	}
	if len(freqs) != 3 {
		t.Errorf("expected 3 distinct items, got %d", len(freqs))
	}
	if !d.ContainsItem(2) || d.ContainsItem(9) {
		t.Errorf("ContainsItem results wrong")
	}
}

func TestAddInvalidatesCache(t *testing.T) {
	d := FromTransactions([]itemset.Item{1})
	if got := d.Frequency(itemset.New(1)); !approxEqual(got, 1) {
		t.Fatalf("initial frequency = %v", got)
	}
	d.Add(itemset.New(2))
	if got := d.Frequency(itemset.New(1)); !approxEqual(got, 0.5) {
		t.Fatalf("frequency after Add = %v, want 0.5", got)
	}
	if got := d.Frequency(itemset.New(2)); !approxEqual(got, 0.5) {
		t.Fatalf("frequency of new item = %v, want 0.5", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := FromTransactions([]itemset.Item{1, 2})
	cp := d.Clone()
	cp.Add(itemset.New(3))
	if d.Len() != 1 || cp.Len() != 2 {
		t.Fatalf("clone not independent: orig %d, copy %d", d.Len(), cp.Len())
	}
}

func TestString(t *testing.T) {
	d := FromTransactions([]itemset.Item{1})
	if got := d.String(); got != "txdb.Database{1 transactions}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: frequency is anti-monotone in the pattern — f(p1) >= f(p2)
// whenever p1 ⊆ p2. This is the foundation of Theorem 5.1 in the paper.
func TestQuickFrequencyAntiMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: func(vals []reflect.Value, rng *rand.Rand) {
		vals[0] = reflect.ValueOf(randomDatabase(rng))
		p2 := randomPattern(rng, 8, 4)
		// p1 is a random subset of p2.
		var p1 itemset.Itemset
		for _, it := range p2 {
			if rng.Intn(2) == 0 {
				p1 = p1.Add(it)
			}
		}
		vals[1] = reflect.ValueOf(p1)
		vals[2] = reflect.ValueOf(p2)
	}}
	f := func(d *Database, p1, p2 itemset.Itemset) bool {
		return d.Frequency(p1) >= d.Frequency(p2)-1e-12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: 0 <= f(p) <= 1 and support = round(f * len).
func TestQuickFrequencyBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: func(vals []reflect.Value, rng *rand.Rand) {
		vals[0] = reflect.ValueOf(randomDatabase(rng))
		vals[1] = reflect.ValueOf(randomPattern(rng, 8, 3))
	}}
	f := func(d *Database, p itemset.Itemset) bool {
		fr := d.Frequency(p)
		if fr < 0 || fr > 1 {
			return false
		}
		if d.Len() == 0 {
			return fr == 0
		}
		return approxEqual(fr*float64(d.Len()), float64(d.Support(p)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randomDatabase(rng *rand.Rand) *Database {
	d := New()
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		d.Add(randomPattern(rng, 8, 5))
	}
	return d
}

func randomPattern(rng *rand.Rand, maxItem, maxLen int) itemset.Itemset {
	n := rng.Intn(maxLen + 1)
	items := make([]itemset.Item, n)
	for i := range items {
		items[i] = itemset.Item(rng.Intn(maxItem))
	}
	return itemset.New(items...)
}
