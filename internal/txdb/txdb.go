// Package txdb implements the transaction databases attached to the vertices
// of a database network (Section 3.1 of the paper).
//
// A transaction is an itemset; a Database is a multiset of transactions. The
// central operation is Frequency, which computes f_i(p): the proportion of
// transactions of a vertex database that contain a given pattern p.
package txdb

import (
	"fmt"

	"themecomm/internal/itemset"
)

// Transaction is a single transaction: a canonical itemset.
type Transaction = itemset.Itemset

// Database is a multiset of transactions associated with one vertex of a
// database network. The zero value is an empty database ready to use.
type Database struct {
	transactions []Transaction
	// itemTxCount caches, per item, in how many transactions it appears.
	// It is built lazily by singleItemCounts and invalidated on Add.
	itemTxCount map[itemset.Item]int
}

// New returns an empty database.
func New() *Database { return &Database{} }

// FromTransactions builds a database from the given transactions. The
// transactions are canonicalized (sorted, deduplicated items) but kept as a
// multiset: identical transactions stay distinct entries.
func FromTransactions(txs ...[]itemset.Item) *Database {
	db := New()
	for _, t := range txs {
		db.Add(itemset.New(t...))
	}
	return db
}

// Add appends a transaction to the database.
func (d *Database) Add(t Transaction) {
	d.transactions = append(d.transactions, t)
	d.itemTxCount = nil
}

// Remove deletes one occurrence of an exact transaction — the same canonical
// itemset — from the multiset, reporting whether one was found. When the
// transaction occurs several times only the first occurrence is removed, so
// removing it n times undoes n additions.
func (d *Database) Remove(t Transaction) bool {
	for i, tx := range d.transactions {
		if tx.Equal(t) {
			d.transactions = append(d.transactions[:i], d.transactions[i+1:]...)
			d.itemTxCount = nil
			return true
		}
	}
	return false
}

// Len returns the number of transactions in the database.
func (d *Database) Len() int { return len(d.transactions) }

// Empty reports whether the database has no transactions.
func (d *Database) Empty() bool { return len(d.transactions) == 0 }

// Transactions returns the underlying transactions. The returned slice must
// not be modified.
func (d *Database) Transactions() []Transaction { return d.transactions }

// TotalItems returns the total number of items stored across all
// transactions (counting duplicates across transactions), as reported by
// "#Items (total)" in Table 2 of the paper.
func (d *Database) TotalItems() int {
	n := 0
	for _, t := range d.transactions {
		n += t.Len()
	}
	return n
}

// Items returns the set of distinct items appearing in the database.
func (d *Database) Items() itemset.Itemset {
	var out itemset.Itemset
	for _, t := range d.transactions {
		out = out.Union(t)
	}
	return out
}

// Support returns the number of transactions that contain pattern p.
func (d *Database) Support(p itemset.Itemset) int {
	if p.Len() == 0 {
		return len(d.transactions)
	}
	if p.Len() == 1 {
		return d.singleItemCounts()[p[0]]
	}
	n := 0
	for _, t := range d.transactions {
		if p.SubsetOf(t) {
			n++
		}
	}
	return n
}

// Frequency returns f(p): the proportion of transactions containing p.
// The frequency of any pattern in an empty database is 0, and the frequency
// of the empty pattern in a non-empty database is 1.
func (d *Database) Frequency(p itemset.Itemset) float64 {
	if len(d.transactions) == 0 {
		return 0
	}
	return float64(d.Support(p)) / float64(len(d.transactions))
}

// ContainsItem reports whether the item appears in at least one transaction.
func (d *Database) ContainsItem(it itemset.Item) bool {
	return d.singleItemCounts()[it] > 0
}

// singleItemCounts lazily builds the per-item transaction counts.
func (d *Database) singleItemCounts() map[itemset.Item]int {
	if d.itemTxCount == nil {
		m := make(map[itemset.Item]int)
		for _, t := range d.transactions {
			for _, it := range t {
				m[it]++
			}
		}
		d.itemTxCount = m
	}
	return d.itemTxCount
}

// ItemFrequencies returns, for every distinct item in the database, the
// proportion of transactions containing it. The result is a fresh map the
// caller may modify.
func (d *Database) ItemFrequencies() map[itemset.Item]float64 {
	out := make(map[itemset.Item]float64, len(d.singleItemCounts()))
	if len(d.transactions) == 0 {
		return out
	}
	n := float64(len(d.transactions))
	for it, c := range d.singleItemCounts() {
		out[it] = float64(c) / n
	}
	return out
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	cp := New()
	cp.transactions = make([]Transaction, len(d.transactions))
	for i, t := range d.transactions {
		cp.transactions[i] = t.Clone()
	}
	return cp
}

// String renders a short summary, e.g. "txdb.Database{5 transactions}".
func (d *Database) String() string {
	return fmt.Sprintf("txdb.Database{%d transactions}", len(d.transactions))
}

// Validate checks structural invariants of the database: transactions must be
// canonical itemsets (strictly increasing). It returns a descriptive error on
// the first violation.
func (d *Database) Validate() error {
	for i, t := range d.transactions {
		for j := 1; j < len(t); j++ {
			if t[j] <= t[j-1] {
				return fmt.Errorf("txdb: transaction %d is not a canonical itemset: %v", i, t)
			}
		}
	}
	return nil
}
