package journal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func readAll(t *testing.T, j *Journal, from uint64) []Record {
	t.Helper()
	r := j.Range(from)
	defer r.Close()
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, rec)
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{})
	payloads := [][]byte{[]byte("TCDELTA 1\nAV 1\n"), []byte("TCDELTA 1\nT 0 1 2\n"), {}}
	for i, p := range payloads {
		seq, err := j.Append("default", uint64(i+10), p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d assigned seq %d, want %d", i, seq, i+1)
		}
	}
	if got := j.DurableSeq(); got != 3 {
		t.Fatalf("DurableSeq = %d, want 3", got)
	}
	recs := readAll(t, j, 0)
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.Epoch != uint64(i+10) || rec.Network != "default" ||
			!bytes.Equal(rec.Payload, payloads[i]) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	// Range(from) resumes mid-stream.
	if tail := readAll(t, j, 2); len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("Range(2) = %+v, want just seq 3", tail)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := j.Append("net", 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2 := mustOpen(t, dir, Options{})
	if got := j2.DurableSeq(); got != 5 {
		t.Fatalf("DurableSeq after reopen = %d, want 5", got)
	}
	seq, err := j2.Append("net", 2, []byte("y"))
	if err != nil || seq != 6 {
		t.Fatalf("Append after reopen = (%d, %v), want (6, nil)", seq, err)
	}
	if recs := readAll(t, j2, 0); len(recs) != 6 {
		t.Fatalf("read %d records after reopen, want 6", len(recs))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 128})
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := j.Append("net", 1, []byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	recs := readAll(t, j, 0)
	if len(recs) != n {
		t.Fatalf("read %d records across segments, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if want := fmt.Sprintf("payload-%03d", i); string(rec.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, rec.Payload, want)
		}
	}
	// Reopen across segments recovers the same state.
	j.Close()
	j2 := mustOpen(t, dir, Options{SegmentBytes: 128})
	if got := j2.DurableSeq(); got != n {
		t.Fatalf("DurableSeq after multi-segment reopen = %d, want %d", got, n)
	}
}

func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if _, err := j.Append("net", 1, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	segs, err := scanSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("scanSegments = %v, %v", segs, err)
	}
	// Chop off the middle of the last record: a torn final write.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0].path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, Options{})
	if got := j2.DurableSeq(); got != 3 {
		t.Fatalf("DurableSeq after torn tail = %d, want 3", got)
	}
	// The journal keeps going: the lost seq is reassigned.
	seq, err := j2.Append("net", 2, []byte("again"))
	if err != nil || seq != 4 {
		t.Fatalf("Append after recovery = (%d, %v), want (4, nil)", seq, err)
	}
	recs := readAll(t, j2, 0)
	if len(recs) != 4 || string(recs[3].Payload) != "again" {
		t.Fatalf("post-recovery records = %+v", recs)
	}
}

func TestCorruptionInNonFinalSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		if _, err := j.Append("net", 1, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, err := scanSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v (%v)", segs, err)
	}
	// Flip a byte inside the FIRST segment: not a torn tail, real damage.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a journal with mid-stream corruption")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	seqs := make(chan uint64, writers*each)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := j.Append("net", 1, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				seqs <- seq
			}
		}(w)
	}
	wg.Wait()
	close(seqs)
	seen := make(map[uint64]bool)
	for s := range seqs {
		if seen[s] {
			t.Fatalf("sequence %d assigned twice", s)
		}
		seen[s] = true
	}
	if len(seen) != writers*each {
		t.Fatalf("%d unique seqs, want %d", len(seen), writers*each)
	}
	if got := j.DurableSeq(); got != writers*each {
		t.Fatalf("DurableSeq = %d, want %d", got, writers*each)
	}
	st := j.Stats()
	if st.Appends != writers*each {
		t.Fatalf("Stats.Appends = %d, want %d", st.Appends, writers*each)
	}
	if st.Fsyncs > st.Appends {
		t.Fatalf("Stats.Fsyncs = %d exceeds appends %d", st.Fsyncs, st.Appends)
	}
	if recs := readAll(t, j, 0); len(recs) != writers*each {
		t.Fatalf("read %d records, want %d", len(recs), writers*each)
	}
}

func TestWaitFor(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{})
	if j.WaitFor(1, 10*time.Millisecond) {
		t.Fatal("WaitFor(1) succeeded on an empty journal")
	}
	done := make(chan bool, 1)
	go func() { done <- j.WaitFor(1, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	if _, err := j.Append("net", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitFor returned false after the seq became durable")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor did not wake after append")
	}
	// Close wakes blocked waiters.
	go func() { done <- j.WaitFor(99, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	j.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("WaitFor(99) reported success after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor did not wake on Close")
	}
}

func TestAppendLimits(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{})
	if _, err := j.Append(string(make([]byte, maxNetworkLen+1)), 1, nil); err == nil {
		t.Fatal("oversized network name accepted")
	}
	if _, err := j.Append("net", 1, make([]byte, maxPayloadLen+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	j.Close()
	if _, err := j.Append("net", 1, []byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestTailReaderFollowsLiveAppends(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{SegmentBytes: 96})
	r := j.Range(0)
	defer r.Close()
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on empty journal = %v, want io.EOF", err)
	}
	for i := 0; i < 30; i++ {
		if _, err := j.Append("net", 1, []byte(fmt.Sprintf("live-%02d", i))); err != nil {
			t.Fatal(err)
		}
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next after append %d: %v", i, err)
		}
		if want := fmt.Sprintf("live-%02d", i); string(rec.Payload) != want {
			t.Fatalf("tail read %q, want %q", rec.Payload, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next past the tail = %v, want io.EOF", err)
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, fmt.Sprintf("journal-%020d.tcjrnl", 1))
	if err := os.WriteFile(path, []byte("NOTAJRNL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a segment with bad magic")
	}
}
