package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the TCJRNL record decoder:
// hostile input (truncated, bit-flipped, length-skewed) must produce an
// error — never a panic or an out-of-bounds read — and any record the
// decoder accepts must re-encode to exactly the bytes it was decoded from,
// so the decoder only accepts the canonical framing.
func FuzzJournalDecode(f *testing.F) {
	// A couple of valid records, alone and back to back.
	one := AppendRecord(nil, &Record{Seq: 1, Epoch: 7, UnixMicros: 1722000000000000, Network: "default", Payload: []byte("TCDELTA 1\nAV 1\n")})
	two := AppendRecord(append([]byte(nil), one...), &Record{Seq: 2, Epoch: 8, Network: "", Payload: nil})
	f.Add(one)
	f.Add(two)
	f.Add(one[:len(one)-3]) // torn tail
	flipped := append([]byte(nil), one...)
	flipped[10] ^= 0x40
	f.Add(flipped) // checksum mismatch
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, recordFixedLen)) // huge declared lengths

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n < recordFixedLen || n > len(data) {
			t.Fatalf("DecodeRecord consumed %d of %d bytes", n, len(data))
		}
		again := AppendRecord(nil, &rec)
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode mismatch:\ngot  %x\nwant %x", again, data[:n])
		}
	})
}
