package journal

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestSeedCorpusPresent regenerates (when missing) and verifies the
// checked-in seed corpus for FuzzJournalDecode, so the fuzz-smoke CI job
// always starts from the canonical interesting inputs.
func TestSeedCorpusPresent(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	one := AppendRecord(nil, &Record{Seq: 1, Epoch: 7, UnixMicros: 1722000000000000, Network: "default", Payload: []byte("TCDELTA 1\nAV 1\n")})
	two := AppendRecord(append([]byte(nil), one...), &Record{Seq: 2, Epoch: 8})
	flipped := append([]byte(nil), one...)
	flipped[10] ^= 0x40
	skew := append([]byte(nil), one...)
	skew[30] = 0xff
	seeds := map[string][]byte{
		"valid-record": one,
		"two-records":  two,
		"torn-tail":    one[:len(one)-3],
		"bit-flip":     flipped,
		"length-skew":  skew,
	}
	for name, b := range seeds {
		path := filepath.Join(dir, name)
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		got, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("seed corpus entry %s is stale", name)
		}
	}
}
