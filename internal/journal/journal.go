// Package journal implements TCJRNL: an append-only, checksummed,
// segment-rotated log of applied network deltas. It is the durability and
// replication backbone of the warehouse: on the primary every update is
// appended (and fsynced) here before the staged shard commit runs as a
// background checkpoint, and replicas tail the journal over HTTP and replay
// the records through the same epoch-gated apply path.
//
// On disk a journal is a directory of segment files:
//
//	journal-00000000000000000001.tcjrnl
//	journal-00000000000000004096.tcjrnl
//	...
//
// Each segment starts with the 8-byte magic "TCJRNL1\n" followed by
// back-to-back records; the number in the file name is the sequence number of
// the segment's first record. Records are little-endian:
//
//	u32  crc        CRC-32C (Castagnoli) of everything after this field
//	u64  seq        sequence number, contiguous from 1 across segments
//	u64  epoch      index epoch the delta installed on the primary
//	u64  unixMicros wall-clock append time
//	u16  netLen     length of the network name
//	u32  payloadLen length of the payload
//	...  network    netLen bytes (federation tenant the delta applies to)
//	...  payload    payloadLen bytes (a TCDELTA document)
//
// Appends are group-committed: concurrent Append calls accumulate into one
// in-memory batch and the first caller to reach the file flushes the whole
// batch with a single write+fsync, so N small updates pay one disk round
// trip instead of N. A torn write can only damage the tail of the last
// segment; Open truncates the damaged tail and resumes at the last durable
// record (records are only acknowledged — and only visible to readers —
// once fsynced).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	segmentMagic = "TCJRNL1\n"

	// recordFixedLen is the length of the fixed record header: crc (4) +
	// seq (8) + epoch (8) + unixMicros (8) + netLen (2) + payloadLen (4).
	recordFixedLen = 34

	// maxNetworkLen and maxPayloadLen bound the variable fields so a
	// corrupt length prefix cannot drive a huge allocation.
	maxNetworkLen = 4096
	maxPayloadLen = 64 << 20

	// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
	// is zero: once the active segment exceeds it, the next batch starts a
	// new segment file.
	DefaultSegmentBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrShort marks a record that ends before its declared length — the
	// truncated-tail case Open tolerates.
	ErrShort = errors.New("journal: short record")
	// ErrCorrupt marks a record whose checksum or length prefix is invalid.
	ErrCorrupt = errors.New("journal: corrupt record")
	// ErrClosed is returned by operations on a closed journal.
	ErrClosed = errors.New("journal: closed")
)

// Record is one journaled delta.
type Record struct {
	// Seq is the record's sequence number: contiguous from 1, global across
	// all networks of the federation.
	Seq uint64
	// Epoch is the index epoch the primary installed when it applied the
	// delta; replicas report it for lag diagnostics.
	Epoch uint64
	// UnixMicros is the wall-clock append time on the primary.
	UnixMicros int64
	// Network names the federation tenant the delta applies to.
	Network string
	// Payload is the serialized TCDELTA document.
	Payload []byte
}

// AppendRecord serializes the record onto dst and returns the extended slice.
func AppendRecord(dst []byte, r *Record) []byte {
	off := len(dst)
	var fixed [recordFixedLen]byte
	binary.LittleEndian.PutUint64(fixed[4:], r.Seq)
	binary.LittleEndian.PutUint64(fixed[12:], r.Epoch)
	binary.LittleEndian.PutUint64(fixed[20:], uint64(r.UnixMicros))
	binary.LittleEndian.PutUint16(fixed[28:], uint16(len(r.Network)))
	binary.LittleEndian.PutUint32(fixed[30:], uint32(len(r.Payload)))
	dst = append(dst, fixed[:]...)
	dst = append(dst, r.Network...)
	dst = append(dst, r.Payload...)
	crc := crc32.Checksum(dst[off+4:], castagnoli)
	binary.LittleEndian.PutUint32(dst[off:off+4], crc)
	return dst
}

// DecodeRecord parses one record from the front of b, returning the record
// and the number of bytes it occupied. A record that ends beyond len(b)
// fails with ErrShort; an invalid length prefix or checksum mismatch fails
// with ErrCorrupt. The returned record's Network and Payload are copies —
// they do not alias b.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recordFixedLen {
		return Record{}, 0, ErrShort
	}
	netLen := int(binary.LittleEndian.Uint16(b[28:30]))
	payloadLen := int(binary.LittleEndian.Uint32(b[30:34]))
	if netLen > maxNetworkLen || payloadLen > maxPayloadLen {
		return Record{}, 0, fmt.Errorf("%w: lengths %d/%d exceed limits", ErrCorrupt, netLen, payloadLen)
	}
	total := recordFixedLen + netLen + payloadLen
	if len(b) < total {
		return Record{}, 0, ErrShort
	}
	want := binary.LittleEndian.Uint32(b[0:4])
	if crc32.Checksum(b[4:total], castagnoli) != want {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := Record{
		Seq:        binary.LittleEndian.Uint64(b[4:12]),
		Epoch:      binary.LittleEndian.Uint64(b[12:20]),
		UnixMicros: int64(binary.LittleEndian.Uint64(b[20:28])),
		Network:    string(b[recordFixedLen : recordFixedLen+netLen]),
		Payload:    append([]byte(nil), b[recordFixedLen+netLen:total]...),
	}
	return r, total, nil
}

// Options configures a journal.
type Options struct {
	// SegmentBytes is the rotation threshold; once the active segment
	// exceeds it the next batch starts a new segment. Zero means
	// DefaultSegmentBytes.
	SegmentBytes int64
}

// Stats is a snapshot of journal activity counters. Appends/Fsyncs quantifies
// the group-commit win: with concurrent writers Fsyncs stays well below
// Appends because one fsync durably commits a whole batch.
type Stats struct {
	Appends  uint64 // records appended
	Batches  uint64 // group-commit batches flushed
	Fsyncs   uint64 // fsync calls issued
	Bytes    uint64 // record bytes written
	Segments int    // segment files on disk
	FirstSeq uint64 // sequence number of the oldest record (0 when empty)
	LastSeq  uint64 // highest durable sequence number (0 when empty)
}

type segment struct {
	path     string
	firstSeq uint64
}

// batch is one group-commit accumulation: records encoded back to back,
// flushed by a single leader with one write+fsync.
type batch struct {
	buf      []byte
	firstSeq uint64
	lastSeq  uint64
	done     chan struct{}
	err      error
}

// Journal is an open TCJRNL log. All methods are safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu        sync.Mutex
	flushIdle *sync.Cond // broadcast when the flushing baton is released
	f         *os.File   // active (last) segment, opened for append
	size      int64      // bytes in the active segment
	segments  []segment
	nextSeq   uint64 // seq the next Append assigns
	pending   *batch // accumulating batch, nil when none
	flushing  bool   // a leader is currently writing to disk
	closed    bool
	err       error // sticky write failure: the journal fails stop

	durable atomic.Uint64 // highest fsynced seq, visible to readers

	notifyMu sync.Mutex
	notifyCh chan struct{} // closed and replaced whenever durable advances

	appends atomic.Uint64
	batches atomic.Uint64
	fsyncs  atomic.Uint64
	bytes   atomic.Uint64
}

// Open opens (creating if necessary) the journal in dir and recovers its
// tail: the last segment is scanned record by record and truncated at the
// first damaged or incomplete record, so a crash mid-append loses at most the
// unacknowledged tail batch. Damage in any non-final segment is reported as
// ErrCorrupt — that is real data loss, not a torn tail.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, notifyCh: make(chan struct{})}
	j.flushIdle = sync.NewCond(&j.mu)
	segs, err := scanSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := j.createSegment(1); err != nil {
			return nil, err
		}
		j.nextSeq = 1
		return j, nil
	}
	lastSeq := segs[0].firstSeq - 1
	for i, s := range segs {
		final := i == len(segs)-1
		end, err := verifySegment(s, lastSeq, final)
		if err != nil {
			return nil, err
		}
		lastSeq = end
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last.path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.size = st.Size()
	j.segments = segs
	j.nextSeq = lastSeq + 1
	j.durable.Store(lastSeq)
	return j, nil
}

// scanSegments lists and orders the segment files of dir.
func scanSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "journal-%020d.tcjrnl", &seq); n != 1 || err != nil {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, e.Name()), firstSeq: seq})
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].firstSeq < segs[k].firstSeq })
	return segs, nil
}

// verifySegment scans one segment, checking the magic, the record checksums
// and the sequence continuity (prev is the last seq before this segment). It
// returns the segment's last valid seq. On the final segment a damaged or
// incomplete tail is truncated away; anywhere else it is ErrCorrupt.
func verifySegment(s segment, prev uint64, final bool) (uint64, error) {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	if len(data) < len(segmentMagic) || string(data[:len(segmentMagic)]) != segmentMagic {
		return 0, fmt.Errorf("%w: %s: bad segment magic", ErrCorrupt, s.path)
	}
	off := len(segmentMagic)
	want := prev + 1
	if s.firstSeq != want {
		return 0, fmt.Errorf("%w: %s: segment starts at seq %d, want %d", ErrCorrupt, s.path, s.firstSeq, want)
	}
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			if !final {
				return 0, fmt.Errorf("%w: %s: offset %d: %v", ErrCorrupt, s.path, off, err)
			}
			// Torn tail: truncate to the last durable record and carry on.
			if terr := truncateSegment(s.path, int64(off)); terr != nil {
				return 0, terr
			}
			return want - 1, nil
		}
		if rec.Seq != want {
			return 0, fmt.Errorf("%w: %s: offset %d: seq %d, want %d", ErrCorrupt, s.path, off, rec.Seq, want)
		}
		want++
		off += n
	}
	return want - 1, nil
}

func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return fmt.Errorf("journal: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// createSegment starts the segment whose first record will carry firstSeq and
// makes it the active file. Caller must hold j.mu (or be initializing).
func (j *Journal) createSegment(firstSeq uint64) error {
	path := filepath.Join(j.dir, fmt.Sprintf("journal-%020d.tcjrnl", firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.WriteString(segmentMagic); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	if j.f != nil {
		j.f.Close()
	}
	j.f = f
	j.size = int64(len(segmentMagic))
	j.segments = append(j.segments, segment{path: path, firstSeq: firstSeq})
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

// Append durably appends one delta and returns its sequence number. The call
// blocks until the record is fsynced; concurrent appends are batched so the
// whole batch shares one fsync. After a write error the journal fails stop:
// every subsequent Append returns the sticky error.
func (j *Journal) Append(network string, epoch uint64, payload []byte) (uint64, error) {
	if len(network) > maxNetworkLen {
		return 0, fmt.Errorf("journal: network name %d bytes exceeds %d", len(network), maxNetworkLen)
	}
	if len(payload) > maxPayloadLen {
		return 0, fmt.Errorf("journal: payload %d bytes exceeds %d", len(payload), maxPayloadLen)
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return 0, err
	}
	seq := j.nextSeq
	j.nextSeq++
	if j.pending == nil {
		j.pending = &batch{firstSeq: seq, done: make(chan struct{})}
	}
	b := j.pending
	b.buf = AppendRecord(b.buf, &Record{
		Seq:        seq,
		Epoch:      epoch,
		UnixMicros: time.Now().UnixMicro(),
		Network:    network,
		Payload:    payload,
	})
	b.lastSeq = seq
	if j.flushing {
		// A leader is on the disk; it will pick this batch up next. Wait as
		// a follower.
		j.mu.Unlock()
		<-b.done
		return seq, b.err
	}
	// Become the leader: flush accumulated batches until none are pending.
	j.flushing = true
	for j.pending != nil && j.err == nil {
		cur := j.pending
		j.pending = nil
		j.mu.Unlock()
		err := j.flushLocked(cur)
		j.mu.Lock()
		if err != nil {
			j.err = err
		}
		cur.err = err
		close(cur.done)
		if err == nil {
			j.advance(cur.lastSeq)
		}
	}
	if j.err != nil && j.pending != nil {
		// The journal failed stop while a follow-up batch was accumulating;
		// fail its followers rather than leaving them blocked.
		cur := j.pending
		j.pending = nil
		cur.err = j.err
		close(cur.done)
	}
	j.flushing = false
	j.flushIdle.Broadcast()
	err := j.err
	j.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return seq, nil
}

// flushLocked writes and fsyncs one batch. Despite the name it runs with
// j.mu RELEASED — exclusivity on the file comes from the flushing flag, so
// appenders can keep accumulating the next batch while the disk works.
func (j *Journal) flushLocked(b *batch) error {
	if j.size > j.opts.SegmentBytes {
		j.mu.Lock()
		err := j.createSegment(b.firstSeq)
		j.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if _, err := j.f.Write(b.buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.size += int64(len(b.buf))
	j.appends.Add(b.lastSeq - b.firstSeq + 1)
	j.batches.Add(1)
	j.fsyncs.Add(1)
	j.bytes.Add(uint64(len(b.buf)))
	return nil
}

// advance publishes a new durable seq and wakes WaitFor callers.
func (j *Journal) advance(seq uint64) {
	j.durable.Store(seq)
	j.notifyMu.Lock()
	close(j.notifyCh)
	j.notifyCh = make(chan struct{})
	j.notifyMu.Unlock()
}

// DurableSeq returns the highest fsynced sequence number (0 when the journal
// is empty). Records up to and including it are visible to Range readers.
func (j *Journal) DurableSeq() uint64 { return j.durable.Load() }

// WaitFor blocks until the durable seq reaches at least seq, the deadline
// passes (returns false), or the journal is closed. It is the long-poll
// primitive behind GET /api/v1/journal.
func (j *Journal) WaitFor(seq uint64, timeout time.Duration) bool {
	if j.durable.Load() >= seq {
		return true
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		j.notifyMu.Lock()
		ch := j.notifyCh
		j.notifyMu.Unlock()
		if j.durable.Load() >= seq {
			return true
		}
		j.mu.Lock()
		closed := j.closed
		j.mu.Unlock()
		if closed {
			return j.durable.Load() >= seq
		}
		select {
		case <-ch:
		case <-deadline.C:
			return j.durable.Load() >= seq
		}
	}
}

// Stats snapshots the activity counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	nseg := len(j.segments)
	var first uint64
	if nseg > 0 {
		first = j.segments[0].firstSeq
	}
	j.mu.Unlock()
	s := Stats{
		Appends:  j.appends.Load(),
		Batches:  j.batches.Load(),
		Fsyncs:   j.fsyncs.Load(),
		Bytes:    j.bytes.Load(),
		Segments: nseg,
		LastSeq:  j.durable.Load(),
	}
	if s.LastSeq >= first && first > 0 {
		s.FirstSeq = first
	}
	return s
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close closes the journal. In-flight appends finish first (they hold the
// flushing baton); appends issued after Close fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	for j.flushing {
		j.flushIdle.Wait()
	}
	f := j.f
	j.f = nil
	j.mu.Unlock()
	// Wake long-pollers so they observe the closed state.
	j.notifyMu.Lock()
	close(j.notifyCh)
	j.notifyCh = make(chan struct{})
	j.notifyMu.Unlock()
	if f != nil {
		return f.Close()
	}
	return nil
}
