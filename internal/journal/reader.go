package journal

import (
	"fmt"
	"io"
	"os"
)

// Reader iterates journal records in sequence order. It only surfaces
// durable records: Next returns io.EOF once the next expected record is
// beyond the journal's durable seq, so a reader racing live appends never
// observes an unacknowledged (possibly torn) tail. After io.EOF the reader
// stays usable — call Next again (typically after WaitFor) to continue.
type Reader struct {
	j    *Journal
	next uint64 // seq the next call should return

	segIdx int // index into segs of the open segment, -1 before first open
	segs   []segment
	f      *os.File
	buf    []byte // read buffer holding undecoded bytes
	off    int    // decode position within buf
}

// Range returns a reader positioned after seq `from`: the first Next returns
// record from+1. Use from=0 to read the whole journal. Records appended
// after the Range call are picked up as they become durable.
func (j *Journal) Range(from uint64) *Reader {
	j.mu.Lock()
	segs := append([]segment(nil), j.segments...)
	j.mu.Unlock()
	return &Reader{j: j, next: from + 1, segIdx: -1, segs: segs}
}

// Next returns the next durable record, or io.EOF when the reader has caught
// up with the journal's durable tail. Any other error is real corruption or
// an I/O failure.
func (r *Reader) Next() (Record, error) {
	for {
		if r.next > r.j.DurableSeq() {
			return Record{}, io.EOF
		}
		if r.f == nil {
			if err := r.openSegmentFor(r.next); err != nil {
				return Record{}, err
			}
		}
		rec, n, err := r.decodeOne()
		if err == ErrShort {
			// The durable seq says more records exist, so the rest of this
			// segment's bytes must live in the next segment (rotation) or
			// still be landing in the page cache; refill and retry.
			if refillErr := r.refill(); refillErr != nil {
				return Record{}, refillErr
			}
			continue
		}
		if err != nil {
			return Record{}, fmt.Errorf("journal: read seq %d: %w", r.next, err)
		}
		r.off += n
		if rec.Seq < r.next {
			continue // positioning: skip records at or before `from`
		}
		if rec.Seq != r.next {
			return Record{}, fmt.Errorf("%w: got seq %d, want %d", ErrCorrupt, rec.Seq, r.next)
		}
		r.next++
		return rec, nil
	}
}

// decodeOne decodes the record at the buffer position, refilling from the
// file as needed. It returns ErrShort only when the file itself has no more
// complete record.
func (r *Reader) decodeOne() (Record, int, error) {
	for {
		rec, n, err := DecodeRecord(r.buf[r.off:])
		if err != ErrShort {
			return rec, n, err
		}
		got, readErr := r.fill()
		if readErr != nil && readErr != io.EOF {
			return Record{}, 0, readErr
		}
		if got == 0 {
			return Record{}, 0, ErrShort
		}
	}
}

// fill reads more bytes from the open segment into the buffer.
func (r *Reader) fill() (int, error) {
	if r.off > 0 {
		r.buf = append(r.buf[:0], r.buf[r.off:]...)
		r.off = 0
	}
	const chunk = 256 << 10
	start := len(r.buf)
	r.buf = append(r.buf, make([]byte, chunk)...)
	n, err := r.f.Read(r.buf[start:])
	r.buf = r.buf[:start+n]
	return n, err
}

// refill advances to the next segment when the current one is exhausted, or
// waits for the current segment to grow (the bytes are durable, so they are
// visible after at most one re-read).
func (r *Reader) refill() error {
	// A newer segment may exist that this reader has not seen yet.
	r.j.mu.Lock()
	if len(r.j.segments) > len(r.segs) {
		r.segs = append([]segment(nil), r.j.segments...)
	}
	r.j.mu.Unlock()
	if r.segIdx+1 < len(r.segs) && r.next >= r.segs[r.segIdx+1].firstSeq {
		return r.openSegmentFor(r.next)
	}
	// Same segment: the durable bytes just have not been read yet.
	if got, err := r.fill(); err != nil && err != io.EOF {
		return err
	} else if got == 0 {
		return fmt.Errorf("%w: seq %d is durable but missing from %s", ErrCorrupt, r.next, r.segs[r.segIdx].path)
	}
	return nil
}

// openSegmentFor opens the segment holding seq and positions the buffer at
// its first record.
func (r *Reader) openSegmentFor(seq uint64) error {
	idx := 0
	for i := range r.segs {
		if r.segs[i].firstSeq <= seq {
			idx = i
		}
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	f, err := os.Open(r.segs[idx].path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segmentMagic {
		f.Close()
		return fmt.Errorf("%w: %s: bad segment magic", ErrCorrupt, r.segs[idx].path)
	}
	r.f = f
	r.segIdx = idx
	r.buf = r.buf[:0]
	r.off = 0
	return nil
}

// Close releases the reader's file handle. The journal itself is unaffected.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}
