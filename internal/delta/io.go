package delta

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// The on-disk delta format mirrors the dbnet text format:
//
//	TCDELTA 1
//	AV <n>                            (optional: add n vertices)
//	V- <v>                            (one per tombstoned vertex)
//	E+ <u> <v>                        (one per added edge)
//	E- <u> <v>                        (one per removed edge)
//	T <vertex> <item> <item> ...      (one per added transaction)
//	T- <vertex> <item> <item> ...     (one per removed transaction)
//
// Lines starting with '#' and blank lines are ignored. Items are numeric
// identifiers, or names when the reader is given a dictionary (unknown names
// are interned, so a delta may introduce new items by name).

const deltaHeader = "TCDELTA 1"

// Write serializes the delta to w.
func Write(w io.Writer, d *Delta) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, deltaHeader); err != nil {
		return err
	}
	if d.AddVertices > 0 {
		fmt.Fprintf(bw, "AV %d\n", d.AddVertices)
	}
	for _, v := range d.RemoveVertices {
		fmt.Fprintf(bw, "V- %d\n", v)
	}
	for _, e := range d.AddEdges {
		fmt.Fprintf(bw, "E+ %d %d\n", e.U, e.V)
	}
	for _, e := range d.RemoveEdges {
		fmt.Fprintf(bw, "E- %d %d\n", e.U, e.V)
	}
	writeTx := func(record string, vt VertexTransaction) error {
		sb := make([]string, 0, vt.Tx.Len()+2)
		sb = append(sb, record, strconv.Itoa(int(vt.Vertex)))
		for _, it := range vt.Tx {
			sb = append(sb, strconv.Itoa(int(it)))
		}
		_, err := fmt.Fprintln(bw, strings.Join(sb, " "))
		return err
	}
	for _, vt := range d.AddTransactions {
		if err := writeTx("T", vt); err != nil {
			return err
		}
	}
	for _, vt := range d.RemoveTransactions {
		if err := writeTx("T-", vt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a delta written by Write. dict, when non-nil, resolves
// non-numeric item fields by name, interning names it has not seen — a delta
// may therefore introduce new items by name.
func Read(r io.Reader, dict *itemset.Dictionary) (*Delta, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	readLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}

	header, ok := readLine()
	if !ok {
		return nil, fmt.Errorf("delta: empty input")
	}
	if header != deltaHeader {
		return nil, fmt.Errorf("delta: line %d: unsupported header %q", lineNo, header)
	}

	d := &Delta{}
	parseEdge := func(fields []string) (graph.Edge, error) {
		if len(fields) != 3 {
			return graph.Edge{}, fmt.Errorf("delta: line %d: malformed %s line", lineNo, fields[0])
		}
		u, err1 := strconv.Atoi(fields[1])
		v, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || u == v ||
			u < 0 || u > math.MaxInt32 || v < 0 || v > math.MaxInt32 {
			return graph.Edge{}, fmt.Errorf("delta: line %d: invalid edge endpoints", lineNo)
		}
		return graph.EdgeOf(graph.VertexID(u), graph.VertexID(v)), nil
	}
	for {
		line, ok := readLine()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "AV":
			if len(fields) != 2 {
				return nil, fmt.Errorf("delta: line %d: malformed AV line", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("delta: line %d: invalid vertex count %q", lineNo, fields[1])
			}
			d.AddVertices += n
		case "E+":
			e, err := parseEdge(fields)
			if err != nil {
				return nil, err
			}
			d.AddEdges = append(d.AddEdges, e)
		case "E-":
			e, err := parseEdge(fields)
			if err != nil {
				return nil, err
			}
			d.RemoveEdges = append(d.RemoveEdges, e)
		case "V-":
			if len(fields) != 2 {
				return nil, fmt.Errorf("delta: line %d: malformed V- line", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 || v > math.MaxInt32 {
				return nil, fmt.Errorf("delta: line %d: invalid vertex %q", lineNo, fields[1])
			}
			d.RemoveVertices = append(d.RemoveVertices, graph.VertexID(v))
		case "T", "T-":
			if len(fields) < 3 {
				return nil, fmt.Errorf("delta: line %d: malformed %s line", lineNo, fields[0])
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 || v > math.MaxInt32 {
				return nil, fmt.Errorf("delta: line %d: invalid vertex %q", lineNo, fields[1])
			}
			items := make([]itemset.Item, 0, len(fields)-2)
			for _, f := range fields[2:] {
				it, err := ResolveItem(f, dict)
				if err != nil {
					return nil, fmt.Errorf("delta: line %d: %w", lineNo, err)
				}
				items = append(items, it)
			}
			vt := VertexTransaction{Vertex: graph.VertexID(v), Tx: itemset.New(items...)}
			if fields[0] == "T" {
				d.AddTransactions = append(d.AddTransactions, vt)
			} else {
				d.RemoveTransactions = append(d.RemoveTransactions, vt)
			}
		default:
			return nil, fmt.Errorf("delta: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("delta: read: %w", err)
	}
	return d, nil
}

// ResolveItem parses one item field: a numeric identifier is taken as-is
// (identifiers are 32-bit; anything outside [0, MaxInt32] is rejected rather
// than silently wrapped onto another item); anything else is resolved
// through the dictionary, interning unseen names so deltas can introduce
// new items.
func ResolveItem(field string, dict *itemset.Dictionary) (itemset.Item, error) {
	if id, err := strconv.Atoi(field); err == nil {
		if id < 0 || id > math.MaxInt32 {
			return 0, fmt.Errorf("item id %d outside [0, %d]", id, math.MaxInt32)
		}
		return itemset.Item(id), nil
	}
	if dict == nil {
		return 0, fmt.Errorf("item %q is not numeric and no dictionary is available", field)
	}
	return dict.Intern(field), nil
}

// ReadFile reads a delta from the named file.
func ReadFile(path string, dict *itemset.Dictionary) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, dict)
}

// WriteFile writes the delta to the named file, creating or truncating it.
func WriteFile(path string, d *Delta) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
