// Package delta implements incremental maintenance of a TC-Tree index: a
// Delta describes how a database network changes (edges gained or lost,
// transactions appended to vertices, new vertices), AffectedItems bounds the
// set of top-level items whose index shards can change, and Apply mutates the
// network in place. The serving layers build on these primitives —
// tctree.ShardedIndex.ApplyDelta rebuilds only the affected shards on disk,
// and engine.Engine.ApplyDelta swaps them under a live query load — so a
// growing network never forces a full re-index.
package delta

import (
	"errors"
	"fmt"
	"sort"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/txdb"
)

// VertexTransaction is one transaction appended to a vertex database.
type VertexTransaction struct {
	// Vertex is the vertex whose database gains the transaction.
	Vertex graph.VertexID
	// Tx is the transaction (a canonical itemset).
	Tx txdb.Transaction
}

// Delta is one batch of changes to a database network. The zero value is the
// empty delta. Changes are applied in declaration order: vertices are added
// first, then transactions are removed, then vertices are tombstoned, then
// edges are removed, then edges are added, then transactions are appended —
// so a delta may connect and populate the vertices it introduces, and may
// reuse a vertex it tombstones.
type Delta struct {
	// AddVertices grows the network by this many vertices with empty
	// databases before any other change is applied.
	AddVertices int
	// RemoveVertices tombstones the listed vertices: every incident edge is
	// removed and the vertex database is emptied. The vertex identifier
	// itself stays valid (ids are positional across the index, the journal
	// and every replica), so removal never renumbers, and a tombstoned
	// vertex may be reconnected by the same or a later delta. Tombstoning a
	// vertex twice is a harmless no-op.
	RemoveVertices []graph.VertexID
	// AddEdges are the edges to insert. Adding an existing edge is a no-op.
	AddEdges []graph.Edge
	// RemoveEdges are the edges to delete. Removing an absent edge is a no-op.
	RemoveEdges []graph.Edge
	// AddTransactions are the transactions to append, each on its vertex.
	AddTransactions []VertexTransaction
	// RemoveTransactions delete one occurrence each of an exact transaction
	// (same canonical itemset) from their vertex's database. Removing an
	// absent transaction is a harmless no-op.
	RemoveTransactions []VertexTransaction
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool {
	return d == nil || (d.AddVertices == 0 && len(d.RemoveVertices) == 0 &&
		len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0 &&
		len(d.AddTransactions) == 0 && len(d.RemoveTransactions) == 0)
}

// Stats summarises the delta for logs and HTTP responses.
func (d *Delta) String() string {
	if d == nil {
		return "delta{}"
	}
	s := fmt.Sprintf("delta{+V=%d, +E=%d, -E=%d, +T=%d",
		d.AddVertices, len(d.AddEdges), len(d.RemoveEdges), len(d.AddTransactions))
	if len(d.RemoveVertices) > 0 || len(d.RemoveTransactions) > 0 {
		s += fmt.Sprintf(", -V=%d, -T=%d", len(d.RemoveVertices), len(d.RemoveTransactions))
	}
	return s + "}"
}

// ErrInvalid marks a delta rejected by Validate. Callers (the HTTP update
// handler) use errors.Is to distinguish a malformed delta (client error)
// from an apply/commit failure (server error).
var ErrInvalid = errors.New("invalid delta")

// Validate checks the delta against the network it is about to be applied to:
// every referenced vertex must exist (counting the delta's own AddVertices),
// edges must not be self-loops, and transactions must be non-empty. Every
// error wraps ErrInvalid.
func (d *Delta) Validate(nw *dbnet.Network) error {
	if d == nil {
		return fmt.Errorf("delta: nil delta: %w", ErrInvalid)
	}
	if d.AddVertices < 0 {
		return fmt.Errorf("delta: negative vertex count %d: %w", d.AddVertices, ErrInvalid)
	}
	n := graph.VertexID(nw.NumVertices() + d.AddVertices)
	checkVertex := func(v graph.VertexID, what string) error {
		if v < 0 || v >= n {
			return fmt.Errorf("delta: %s references vertex %d out of range [0,%d): %w", what, v, n, ErrInvalid)
		}
		return nil
	}
	for _, e := range d.AddEdges {
		if e.U == e.V {
			return fmt.Errorf("delta: self-loop edge on vertex %d: %w", e.U, ErrInvalid)
		}
		if err := checkVertex(e.U, "added edge"); err != nil {
			return err
		}
		if err := checkVertex(e.V, "added edge"); err != nil {
			return err
		}
	}
	for _, e := range d.RemoveEdges {
		if err := checkVertex(e.U, "removed edge"); err != nil {
			return err
		}
		if err := checkVertex(e.V, "removed edge"); err != nil {
			return err
		}
	}
	for _, vt := range d.AddTransactions {
		if err := checkVertex(vt.Vertex, "added transaction"); err != nil {
			return err
		}
		if vt.Tx.Len() == 0 {
			return fmt.Errorf("delta: empty transaction on vertex %d: %w", vt.Vertex, ErrInvalid)
		}
	}
	for _, v := range d.RemoveVertices {
		if err := checkVertex(v, "removed vertex"); err != nil {
			return err
		}
	}
	for _, vt := range d.RemoveTransactions {
		if err := checkVertex(vt.Vertex, "removed transaction"); err != nil {
			return err
		}
		if vt.Tx.Len() == 0 {
			return fmt.Errorf("delta: empty transaction on vertex %d: %w", vt.Vertex, ErrInvalid)
		}
	}
	return nil
}

// Apply mutates the network in place: vertices are added, removed
// transactions deleted, removed vertices tombstoned, removed edges deleted,
// added edges inserted, and transactions appended, in that order — removals
// precede additions so a delta may tombstone a vertex and immediately
// repopulate it. The network's lazily built read structures are invalidated
// and re-frozen, so it is safe to read concurrently again once Apply returns.
// Apply validates the delta first and changes nothing when validation fails.
func Apply(nw *dbnet.Network, d *Delta) error {
	if err := d.Validate(nw); err != nil {
		return err
	}
	if d.AddVertices > 0 {
		nw.AddVertices(d.AddVertices)
	}
	for _, vt := range d.RemoveTransactions {
		if _, err := nw.RemoveTransaction(vt.Vertex, vt.Tx); err != nil {
			return err
		}
	}
	for _, v := range d.RemoveVertices {
		if err := nw.ClearVertex(v); err != nil {
			return err
		}
	}
	for _, e := range d.RemoveEdges {
		nw.RemoveEdge(e.U, e.V)
	}
	for _, e := range d.AddEdges {
		if err := nw.AddEdge(e.U, e.V); err != nil {
			return err
		}
	}
	for _, vt := range d.AddTransactions {
		if err := nw.AddTransaction(vt.Vertex, vt.Tx); err != nil {
			return err
		}
	}
	nw.InvalidateCaches()
	nw.Freeze()
	return nil
}

// AffectedItems returns the set of top-level items whose TC-Tree shards can
// change when the delta is applied to nw. It must be called BEFORE Apply: the
// bound needs the pre-delta vertex databases.
//
// The bound is the union, over every vertex the delta touches, of the items
// that vertex carries, plus every item of every added or removed transaction.
// A vertex is touched when it gains or loses a transaction, when it is
// tombstoned, or when an added or removed edge is incident to it. This covers
// strictly more than "items contained in a touched transaction": appending or
// deleting any transaction on a vertex changes the denominator of f_v(p) for
// every pattern p on that vertex, so every item the vertex already carries is
// affected, not just the items of the changed transaction.
//
// Soundness: a pattern p's decomposition can only change when its theme
// network G_p changes, which requires a touched vertex v with f_v(p) > 0 —
// and f_v(p) > 0 implies every item of p (in particular the shard root,
// p's smallest item) is carried by v, so the shard root is in the returned
// set. Items outside the set therefore root shards that are byte-identical
// before and after the delta.
func AffectedItems(nw *dbnet.Network, d *Delta) itemset.Itemset {
	if d.Empty() {
		return itemset.New()
	}
	touched := make(map[graph.VertexID]bool)
	for _, e := range d.AddEdges {
		touched[e.U] = true
		touched[e.V] = true
	}
	for _, e := range d.RemoveEdges {
		touched[e.U] = true
		touched[e.V] = true
	}
	for _, v := range d.RemoveVertices {
		touched[v] = true
	}
	affected := make(map[itemset.Item]bool)
	for _, vt := range d.AddTransactions {
		touched[vt.Vertex] = true
		for _, it := range vt.Tx {
			affected[it] = true
		}
	}
	for _, vt := range d.RemoveTransactions {
		touched[vt.Vertex] = true
		for _, it := range vt.Tx {
			affected[it] = true
		}
	}
	for v := range touched {
		db := nw.Database(v)
		if db == nil {
			continue // vertex introduced by this delta: no pre-delta items
		}
		for it := range db.ItemFrequencies() {
			affected[it] = true
		}
	}
	items := make([]itemset.Item, 0, len(affected))
	for it := range affected {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return itemset.FromSorted(items)
}
