package delta

import (
	"bytes"
	"math/rand"
	"testing"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
	"themecomm/internal/tctree"
)

// randomNetwork mirrors the generator the tctree and engine tests use.
func randomNetwork(rng *rand.Rand, n, m, items, maxTx int) *dbnet.Network {
	nw := dbnet.New(n)
	for i := 0; i < m; i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			nw.MustAddEdge(a, b)
		}
	}
	for v := 0; v < n; v++ {
		ntx := 1 + rng.Intn(maxTx)
		for i := 0; i < ntx; i++ {
			l := 1 + rng.Intn(3)
			tx := make([]itemset.Item, l)
			for j := range tx {
				tx[j] = itemset.Item(rng.Intn(items))
			}
			if err := nw.AddTransaction(graph.VertexID(v), itemset.New(tx...)); err != nil {
				panic(err)
			}
		}
	}
	return nw
}

// randomDelta builds a random but valid delta against nw: a few new edges, a
// few removed existing edges, a few transactions (sometimes with a brand-new
// item), sometimes a new vertex that immediately gets connected.
func randomDelta(rng *rand.Rand, nw *dbnet.Network, items int) *Delta {
	d := &Delta{}
	n := nw.NumVertices()
	if rng.Intn(3) == 0 {
		d.AddVertices = 1
		v := graph.VertexID(n) // connect and populate the new vertex
		u := graph.VertexID(rng.Intn(n))
		d.AddEdges = append(d.AddEdges, graph.EdgeOf(u, v))
		d.AddTransactions = append(d.AddTransactions, VertexTransaction{
			Vertex: v,
			Tx:     itemset.New(itemset.Item(rng.Intn(items))),
		})
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		a, b := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if a != b {
			d.AddEdges = append(d.AddEdges, graph.EdgeOf(a, b))
		}
	}
	if edges := nw.Graph().Edges(); len(edges) > 0 {
		for i := 0; i < 1+rng.Intn(2); i++ {
			d.RemoveEdges = append(d.RemoveEdges, edges[rng.Intn(len(edges))])
		}
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		it := itemset.Item(rng.Intn(items))
		if rng.Intn(4) == 0 {
			it = itemset.Item(items + rng.Intn(3)) // new item
		}
		d.AddTransactions = append(d.AddTransactions, VertexTransaction{
			Vertex: graph.VertexID(rng.Intn(n)),
			Tx:     itemset.New(it, itemset.Item(rng.Intn(items))),
		})
	}
	if rng.Intn(2) == 0 { // remove an existing transaction from a random vertex
		v := graph.VertexID(rng.Intn(n))
		if txs := nw.Database(v).Transactions(); len(txs) > 0 {
			d.RemoveTransactions = append(d.RemoveTransactions, VertexTransaction{
				Vertex: v,
				Tx:     txs[rng.Intn(len(txs))].Clone(),
			})
		}
	}
	if rng.Intn(4) == 0 { // tombstone a vertex
		d.RemoveVertices = append(d.RemoveVertices, graph.VertexID(rng.Intn(n)))
	}
	return d
}

func TestAffectedItemsBounds(t *testing.T) {
	nw := dbnet.New(4)
	nw.MustAddEdge(0, 1)
	nw.MustAddEdge(1, 2)
	mustTx := func(v graph.VertexID, items ...itemset.Item) {
		if err := nw.AddTransaction(v, itemset.New(items...)); err != nil {
			t.Fatal(err)
		}
	}
	mustTx(0, 1, 2)
	mustTx(1, 2)
	mustTx(2, 3)
	mustTx(3, 4)

	cases := []struct {
		name string
		d    *Delta
		want itemset.Itemset
	}{
		{
			name: "added edge touches both endpoints' items",
			d:    &Delta{AddEdges: []graph.Edge{graph.EdgeOf(0, 2)}},
			want: itemset.New(1, 2, 3),
		},
		{
			name: "removed edge touches both endpoints' items",
			d:    &Delta{RemoveEdges: []graph.Edge{graph.EdgeOf(1, 2)}},
			want: itemset.New(2, 3),
		},
		{
			name: "added transaction dilutes every item its vertex carries",
			d: &Delta{AddTransactions: []VertexTransaction{
				{Vertex: 2, Tx: itemset.New(9)},
			}},
			// item 9 from the new transaction, item 3 because vertex 2's
			// frequencies all change denominator.
			want: itemset.New(3, 9),
		},
		{
			name: "isolated vertex addition affects nothing",
			d:    &Delta{AddVertices: 2},
			want: itemset.New(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := AffectedItems(nw, tc.d); !got.Equal(tc.want) {
				t.Fatalf("AffectedItems = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestValidateRejectsBadDeltas(t *testing.T) {
	nw := dbnet.New(3)
	cases := []struct {
		name string
		d    *Delta
	}{
		{"nil delta", nil},
		{"negative vertex count", &Delta{AddVertices: -1}},
		{"self-loop", &Delta{AddEdges: []graph.Edge{{U: 1, V: 1}}}},
		{"edge out of range", &Delta{AddEdges: []graph.Edge{graph.EdgeOf(0, 7)}}},
		{"removed edge out of range", &Delta{RemoveEdges: []graph.Edge{graph.EdgeOf(0, 7)}}},
		{"transaction out of range", &Delta{AddTransactions: []VertexTransaction{{Vertex: 9, Tx: itemset.New(1)}}}},
		{"empty transaction", &Delta{AddTransactions: []VertexTransaction{{Vertex: 0}}}},
		{"removed vertex out of range", &Delta{RemoveVertices: []graph.VertexID{7}}},
		{"removed transaction out of range", &Delta{RemoveTransactions: []VertexTransaction{{Vertex: 9, Tx: itemset.New(1)}}}},
		{"empty removed transaction", &Delta{RemoveTransactions: []VertexTransaction{{Vertex: 0}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.d.Validate(nw); err == nil {
				t.Fatalf("Validate accepted %v", tc.d)
			}
			if err := Apply(nw, tc.d); err == nil {
				t.Fatalf("Apply accepted %v", tc.d)
			}
		})
	}
	// A delta may reference the vertices it adds.
	ok := &Delta{AddVertices: 1, AddEdges: []graph.Edge{graph.EdgeOf(0, 3)}}
	if err := ok.Validate(nw); err != nil {
		t.Fatalf("Validate rejected a self-consistent delta: %v", err)
	}
}

func TestApplyMutatesNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := randomNetwork(rng, 10, 20, 4, 3)
	edges := nw.NumEdges()
	d := &Delta{
		AddVertices: 1,
		AddEdges:    []graph.Edge{graph.EdgeOf(0, 10)},
		RemoveEdges: nw.Graph().Edges()[:1],
		AddTransactions: []VertexTransaction{
			{Vertex: 10, Tx: itemset.New(99)},
		},
	}
	if err := Apply(nw, d); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if nw.NumVertices() != 11 {
		t.Fatalf("vertices = %d, want 11", nw.NumVertices())
	}
	if nw.NumEdges() != edges { // one added, one removed
		t.Fatalf("edges = %d, want %d", nw.NumEdges(), edges)
	}
	if !nw.Items().Contains(99) {
		t.Fatalf("item 99 missing after Apply")
	}
}

// TestApplyRemovals exercises the removal half of the delta vocabulary:
// removing a transaction undoes exactly one addition, and tombstoning a
// vertex drops its incident edges and database while keeping the id valid.
func TestApplyRemovals(t *testing.T) {
	nw := dbnet.New(3)
	nw.MustAddEdge(0, 1)
	nw.MustAddEdge(1, 2)
	for i := 0; i < 2; i++ {
		if err := nw.AddTransaction(1, itemset.New(5, 6)); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.AddTransaction(2, itemset.New(7)); err != nil {
		t.Fatal(err)
	}

	// Removing one occurrence leaves the duplicate in place; removing an
	// absent transaction is a no-op.
	d := &Delta{RemoveTransactions: []VertexTransaction{
		{Vertex: 1, Tx: itemset.New(5, 6)},
		{Vertex: 0, Tx: itemset.New(99)},
	}}
	if err := Apply(nw, d); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := nw.Database(1).Len(); got != 1 {
		t.Fatalf("vertex 1 has %d transactions after removal, want 1", got)
	}

	// Tombstoning vertex 1 drops both incident edges and empties the
	// database; the same delta may immediately repopulate the vertex.
	d = &Delta{
		RemoveVertices:  []graph.VertexID{1},
		AddEdges:        []graph.Edge{graph.EdgeOf(0, 1)},
		AddTransactions: []VertexTransaction{{Vertex: 1, Tx: itemset.New(8)}},
	}
	if err := Apply(nw, d); err != nil {
		t.Fatalf("Apply tombstone: %v", err)
	}
	if nw.NumEdges() != 1 {
		t.Fatalf("edges = %d after tombstone+re-add, want 1", nw.NumEdges())
	}
	if got := nw.Database(1).Transactions(); len(got) != 1 || !got[0].Equal(itemset.New(8)) {
		t.Fatalf("vertex 1 database = %v, want just {8}", got)
	}
	if nw.Items().Contains(5) {
		t.Fatalf("item 5 survived the tombstone")
	}
}

func TestDeltaIORoundTrip(t *testing.T) {
	dict := itemset.NewDictionary()
	dict.Intern("coffee")
	d := &Delta{
		AddVertices:    2,
		RemoveVertices: []graph.VertexID{4},
		AddEdges:       []graph.Edge{graph.EdgeOf(0, 5), graph.EdgeOf(1, 2)},
		RemoveEdges:    []graph.Edge{graph.EdgeOf(3, 4)},
		AddTransactions: []VertexTransaction{
			{Vertex: 5, Tx: itemset.New(0, 7)},
		},
		RemoveTransactions: []VertexTransaction{
			{Vertex: 3, Tx: itemset.New(2)},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.AddVertices != d.AddVertices || len(got.AddEdges) != len(d.AddEdges) ||
		len(got.RemoveEdges) != len(d.RemoveEdges) || len(got.AddTransactions) != len(d.AddTransactions) ||
		len(got.RemoveVertices) != len(d.RemoveVertices) || len(got.RemoveTransactions) != len(d.RemoveTransactions) {
		t.Fatalf("round trip mismatch: %s != %s", got, d)
	}
	for i, e := range d.AddEdges {
		if got.AddEdges[i] != e {
			t.Fatalf("edge %d: %v != %v", i, got.AddEdges[i], e)
		}
	}
	if !got.AddTransactions[0].Tx.Equal(d.AddTransactions[0].Tx) {
		t.Fatalf("transaction mismatch")
	}
	if got.RemoveVertices[0] != 4 {
		t.Fatalf("removed vertex = %d, want 4", got.RemoveVertices[0])
	}
	if !got.RemoveTransactions[0].Tx.Equal(d.RemoveTransactions[0].Tx) {
		t.Fatalf("removed transaction mismatch")
	}

	// Named items intern through the dictionary, including unseen names.
	named, err := Read(bytes.NewReader([]byte("TCDELTA 1\nT 0 coffee tea\n")), dict)
	if err != nil {
		t.Fatalf("Read named: %v", err)
	}
	tea, ok := dict.Lookup("tea")
	if !ok {
		t.Fatalf("new item name was not interned")
	}
	want := itemset.New(0, tea)
	if !named.AddTransactions[0].Tx.Equal(want) {
		t.Fatalf("named transaction = %v, want %v", named.AddTransactions[0].Tx, want)
	}
	// Without a dictionary, names are rejected.
	if _, err := Read(bytes.NewReader([]byte("TCDELTA 1\nT 0 coffee\n")), nil); err == nil {
		t.Fatalf("Read without dictionary accepted a named item")
	}
}

// TestShardedApplyDeltaParity is the on-disk half of the acceptance
// criterion: for generated deltas, applying the delta to a sharded index and
// re-reading it answers every query exactly like an index rebuilt from
// scratch on the updated network — while only the affected shard files
// change.
func TestShardedApplyDeltaParity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nw := randomNetwork(rng, 14, 34, 5, 3)
		tree := tctree.Build(nw, tctree.BuildOptions{})
		if tree.NumNodes() == 0 {
			continue
		}
		dir := t.TempDir()
		if _, err := tree.WriteSharded(dir); err != nil {
			t.Fatalf("seed %d: WriteSharded: %v", seed, err)
		}
		idx, err := tctree.OpenSharded(dir)
		if err != nil {
			t.Fatalf("seed %d: OpenSharded: %v", seed, err)
		}

		d := randomDelta(rng, nw, 5)
		affected := AffectedItems(nw, d)
		before := idx.Manifest()
		if err := Apply(nw, d); err != nil {
			t.Fatalf("seed %d: Apply: %v", seed, err)
		}
		if _, err := idx.ApplyDelta(nw, affected); err != nil {
			t.Fatalf("seed %d: ApplyDelta: %v", seed, err)
		}

		// Unaffected shard entries are bit-identical in the manifest.
		after := idx.Manifest()
		beforeByItem := make(map[int32]tctree.ShardEntry, len(before.Shards))
		for _, e := range before.Shards {
			beforeByItem[e.Item] = e
		}
		for _, e := range after.Shards {
			if affected.Contains(itemset.Item(e.Item)) {
				continue
			}
			if prev, ok := beforeByItem[e.Item]; !ok || prev != e {
				t.Fatalf("seed %d: unaffected shard %d changed across ApplyDelta", seed, e.Item)
			}
		}

		fresh := tctree.Build(nw, tctree.BuildOptions{})
		updated, err := idx.LoadTree()
		if err != nil {
			t.Fatalf("seed %d: LoadTree: %v", seed, err)
		}
		if err := updated.Validate(); err != nil {
			t.Fatalf("seed %d: Validate after ApplyDelta: %v", seed, err)
		}
		if updated.NumNodes() != fresh.NumNodes() {
			t.Fatalf("seed %d: updated index has %d nodes, fresh rebuild %d", seed, updated.NumNodes(), fresh.NumNodes())
		}
		alphas := []float64{0, 0.1, 0.25, fresh.MaxAlpha()}
		patterns := []itemset.Itemset{nil, affected, itemset.New(0), itemset.New(1, 2)}
		for _, alpha := range alphas {
			for _, q := range patterns {
				assertSameAnswer(t, seed, updated.Query(q, alpha), fresh.Query(q, alpha))
			}
		}
	}
}

// assertSameAnswer compares two tree answers node by node.
func assertSameAnswer(t *testing.T, seed int64, got, want *tctree.QueryResult) {
	t.Helper()
	if len(got.Trusses) != len(want.Trusses) {
		t.Fatalf("seed %d: %d trusses, want %d", seed, len(got.Trusses), len(want.Trusses))
	}
	for i := range want.Trusses {
		g, w := got.Trusses[i], want.Trusses[i]
		if !g.Pattern.Equal(w.Pattern) {
			t.Fatalf("seed %d: truss %d pattern %v, want %v", seed, i, g.Pattern, w.Pattern)
		}
		if g.Edges.Len() != w.Edges.Len() {
			t.Fatalf("seed %d: truss %v has %d edges, want %d", seed, g.Pattern, g.Edges.Len(), w.Edges.Len())
		}
		for _, e := range w.Edges {
			if !g.Edges.Contains(e) {
				t.Fatalf("seed %d: truss %v misses edge %v", seed, g.Pattern, e)
			}
		}
	}
}
