package delta

import (
	"bytes"
	"reflect"
	"testing"

	"themecomm/internal/itemset"
)

// FuzzTCDeltaParse throws arbitrary bytes at the TCDELTA parser: malformed,
// truncated or hostile inputs must produce an error, never a panic, and any
// input the parser accepts must survive a Write/Read round trip unchanged —
// the parsed form is the canonical one.
func FuzzTCDeltaParse(f *testing.F) {
	// Valid deltas, in full and in fragments.
	f.Add([]byte("TCDELTA 1\nAV 2\nE+ 0 1\nE- 2 3\nT 0 1 2 3\n"))
	f.Add([]byte("TCDELTA 1\n# comment\n\nT 4 alice bob\n"))
	f.Add([]byte("TCDELTA 1\n"))
	f.Add([]byte("TCDELTA 1\nV- 3\nT- 0 1 2\n"))
	f.Add([]byte("TCDELTA 1\nV-\n"))
	f.Add([]byte("TCDELTA 1\nV- -1\n"))
	f.Add([]byte("TCDELTA 1\nT- 0\n"))
	// Malformed: wrong header, truncated records, bad numbers, self-loops,
	// out-of-range identifiers, unknown record types.
	f.Add([]byte(""))
	f.Add([]byte("TCDELTA 2\n"))
	f.Add([]byte("TCDELTA 1\nAV\n"))
	f.Add([]byte("TCDELTA 1\nAV -1\n"))
	f.Add([]byte("TCDELTA 1\nE+ 0\n"))
	f.Add([]byte("TCDELTA 1\nE+ 5 5\n"))
	f.Add([]byte("TCDELTA 1\nE- 0 99999999999999999999\n"))
	f.Add([]byte("TCDELTA 1\nT 0\n"))
	f.Add([]byte("TCDELTA 1\nT -3 1\n"))
	f.Add([]byte("TCDELTA 1\nX 1 2\n"))
	f.Add([]byte("TCDELTA 1\nT 0 4294967296\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Without a dictionary: named items must be rejected, not resolved.
		d, err := Read(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// Accepted input: the parsed delta must re-serialize and re-parse to
		// itself (Write emits numeric identifiers, so no dictionary is needed
		// on the way back).
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("Write of accepted delta failed: %v", err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()), nil)
		if err != nil {
			t.Fatalf("re-parse of serialized delta failed: %v\nserialized:\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(d, again) {
			t.Fatalf("round trip changed the delta:\nfirst:  %+v\nsecond: %+v", d, again)
		}

		// With a dictionary: names intern instead of erroring; still no panic.
		dict := itemset.NewDictionary()
		if _, err := Read(bytes.NewReader(data), dict); err != nil {
			return
		}
	})
}
