package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// AtomicWrite enforces the crash-safety write discipline in persistence
// packages (PersistencePackages in policy.go): durable replacement is
// write-temp → fsync → rename (dbnet.WriteFileAtomic and the tctree
// staged-commit helpers are the blessed implementations). Per function it
// flags, lexically:
//
//   - os.WriteFile — it never fsyncs, so a crash can leave an empty or torn
//     file that a later rename would happily publish;
//   - os.Rename of a file written earlier in the same function with no
//     Sync call in between — the classic silently-dropped-fsync regression;
//   - `defer f.Close()` on a file opened writable — the deferred Close
//     discards the write-back error, so ENOSPC at close time is lost.
//
// The analysis is per-function and syntactic: a helper that renames a file
// synced by its caller should carry a //lint:ignore with that justification.
type AtomicWrite struct{}

// Name implements Analyzer.
func (AtomicWrite) Name() string { return "atomicwrite" }

// Doc implements Analyzer.
func (AtomicWrite) Doc() string {
	return "in persistence packages, require the write-temp → fsync → rename idiom and checked Close on writable files"
}

// Check implements Analyzer.
func (AtomicWrite) Check(pkg *Package) []Finding {
	persistent := false
	for _, p := range PersistencePackages {
		if matchPkg(pkg.Rel, p) {
			persistent = true
			break
		}
	}
	if !persistent {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, checkWriteDiscipline(pkg, fn)...)
		}
	}
	return out
}

// checkWriteDiscipline runs the per-function lexical pass.
func checkWriteDiscipline(pkg *Package, fn *ast.FuncDecl) []Finding {
	var out []Finding
	var writes, syncs []token.Pos // positions of write-opens and Sync calls
	writable := make(map[string]bool)

	// First pass: classify events in the function body.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// f, err := os.Create(...) / os.OpenFile(..., write flags, ...)
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if p, name, ok := pkg.qualifiedCall(call); ok && p == "os" && isWriteOpen(pkg, name, call) {
				writes = append(writes, call.Pos())
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					writable[id.Name] = true
				}
			}
		case *ast.CallExpr:
			p, name, ok := pkg.qualifiedCall(n)
			if ok && p == "os" {
				switch name {
				case "WriteFile":
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(n.Pos()),
						Analyzer: "atomicwrite",
						Message:  "os.WriteFile never fsyncs; persistence packages must use dbnet.WriteFileAtomic or the staged-commit helpers",
					})
				case "Create", "OpenFile":
					// Write-opens whose result is not assigned (rare) still
					// count as writes for the rename rule.
					if isWriteOpen(pkg, name, n) {
						writes = append(writes, n.Pos())
					}
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" && len(n.Args) == 0 {
				syncs = append(syncs, n.Pos())
			}
		}
		return true
	})
	sort.Slice(writes, func(i, j int) bool { return writes[i] < writes[j] })
	sort.Slice(syncs, func(i, j int) bool { return syncs[i] < syncs[j] })

	// Second pass: renames and deferred closes, judged against the events.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if p, name, ok := pkg.qualifiedCall(n); ok && p == "os" && name == "Rename" {
				if hasBefore(writes, n.Pos()) && !hasBefore(syncs, n.Pos()) {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(n.Pos()),
						Analyzer: "atomicwrite",
						Message:  "rename of a file written in this function with no Sync before it; a crash can publish a torn file — fsync before rename (see dbnet.WriteFileAtomic)",
					})
				}
			}
		case *ast.DeferStmt:
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if id, ok := sel.X.(*ast.Ident); ok && writable[id.Name] {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(n.Pos()),
						Analyzer: "atomicwrite",
						Message:  "deferred Close on a writable file discards the write-back error; close explicitly and check the error",
					})
				}
			}
		}
		return true
	})
	return out
}

// isWriteOpen reports whether an os.Create/os.OpenFile call opens for
// writing. os.Create always truncates for writing; os.OpenFile counts when
// its flag expression mentions a writing flag (syntactic — flags built in a
// variable elsewhere are out of reach and fail open).
func isWriteOpen(pkg *Package, name string, call *ast.CallExpr) bool {
	if name == "Create" {
		return true
	}
	if name != "OpenFile" || len(call.Args) < 2 {
		return false
	}
	writing := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && pkg.pkgOf(id) == "os" {
				switch sel.Sel.Name {
				case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
					writing = true
				}
			}
		}
		return true
	})
	return writing
}

// hasBefore reports whether the sorted position list has an entry before pos.
func hasBefore(sorted []token.Pos, pos token.Pos) bool {
	return len(sorted) > 0 && sorted[0] < pos
}
