package lint

import (
	"fmt"
	"go/ast"
)

// CtxFlow enforces PR 6's context-propagation discipline: request identity
// and cancellation flow from the HTTP edge through the engine via
// context.Context, so a library function minting its own ambient context
// silently severs tracing (and makes future deadline propagation
// impossible). It flags, in non-main packages:
//
//   - context.Background() / context.TODO() calls — except the stdlib's own
//     convenience-wrapper idiom, where the fresh context is passed directly
//     to the Context-suffixed variant of the same operation (e.g.
//     Query delegating to QueryContext(context.Background(), ...));
//   - exported functions that accept a context.Context parameter and never
//     use it — callers believe their deadline and request ID propagate, but
//     the function drops them on the floor.
type CtxFlow struct{}

// Name implements Analyzer.
func (CtxFlow) Name() string { return "ctxflow" }

// Doc implements Analyzer.
func (CtxFlow) Doc() string {
	return "forbid ambient context.Background()/TODO() in library code (convenience wrappers delegating to a *Context variant excepted) and exported functions that drop a ctx parameter"
}

// Check implements Analyzer.
func (CtxFlow) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if file.Name.Name == "main" {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, checkAmbientContexts(pkg, fn)...)
			out = append(out, checkDroppedContext(pkg, fn)...)
		}
	}
	return out
}

// checkAmbientContexts flags context.Background()/TODO() outside the
// convenience-wrapper idiom. The walk keeps the enclosing-call chain so "is
// this a direct argument to a *Context call" is answerable.
func checkAmbientContexts(pkg *Package, fn *ast.FuncDecl) []Finding {
	var out []Finding
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		p, name, ok := pkg.qualifiedCall(call)
		if !ok || p != "context" || (name != "Background" && name != "TODO") {
			return true
		}
		if wrapperArg(stack, call) {
			return true
		}
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(call.Pos()),
			Analyzer: "ctxflow",
			Message:  fmt.Sprintf("context.%s() in library code severs request tracing and cancellation; accept a ctx from the caller (or delegate to the *Context variant)", name),
		})
		return true
	})
	return out
}

// wrapperArg reports whether the call (context.Background/TODO) is a direct
// argument of an enclosing call whose callee name ends in "Context" — the
// non-Context convenience wrapper pattern.
func wrapperArg(stack []ast.Node, call *ast.CallExpr) bool {
	if len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	arg := false
	for _, a := range parent.Args {
		if a == ast.Expr(call) {
			arg = true
			break
		}
	}
	if !arg {
		return false
	}
	name := ""
	switch f := parent.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	return len(name) > len("Context") && name[len(name)-len("Context"):] == "Context"
}

// checkDroppedContext flags exported functions that take a named
// context.Context parameter and never reference it.
func checkDroppedContext(pkg *Package, fn *ast.FuncDecl) []Finding {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return nil
	}
	var out []Finding
	for _, field := range fn.Type.Params.List {
		if !isContextType(pkg, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if !identUsed(fn.Body, name.Name) {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(name.Pos()),
					Analyzer: "ctxflow",
					Message:  fmt.Sprintf("exported %s accepts %s context.Context but never uses it; callers expect their deadline and request ID to propagate", fn.Name.Name, name.Name),
				})
			}
		}
	}
	return out
}

// isContextType matches the syntactic type context.Context.
func isContextType(pkg *Package, t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pkg.pkgOf(id) == "context"
}

// identUsed reports whether the body references the named identifier.
func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}
