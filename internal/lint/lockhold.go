package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// LockHold enforces the rule behind PR 5's staged commits: no file or
// network I/O under a query-blocking update lock. Holding such a lock for
// writing excludes every in-flight query, so a disk write inside the
// critical section turns storage latency into serving latency for the whole
// tenant. The analyzer finds write-side critical sections of the declared
// mutexes (QueryBlockingMutexes in policy.go — Lock() through the matching
// Unlock(), or to the end of the function when the unlock is deferred) and
// flags, lexically inside them, calls into the declared I/O packages
// (IOPackages) and Sync() method calls.
//
// Read-side sections (RLock) are exempt on purpose: queries holding the read
// lock perform lazy shard loads by design. The analysis is lexical — I/O
// hidden behind a method call in another package is out of reach; the one
// sanctioned case is the staged-commit Commit() manifest rename, which is
// the single durable write the swap is built around.
type LockHold struct{}

// Name implements Analyzer.
func (LockHold) Name() string { return "lockhold" }

// Doc implements Analyzer.
func (LockHold) Doc() string {
	return "forbid file/network I/O lexically inside write-side critical sections of declared query-blocking mutexes"
}

// Check implements Analyzer.
func (LockHold) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, checkLockSections(pkg, fn)...)
		}
	}
	return out
}

// mutexEvent is a Lock or Unlock statement on a declared mutex.
type mutexEvent struct {
	pos    token.Pos
	name   string // terminal receiver name, e.g. "updateMu"
	unlock bool
}

// checkLockSections scans one function for critical sections and I/O inside.
func checkLockSections(pkg *Package, fn *ast.FuncDecl) []Finding {
	var events []mutexEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		// Only non-deferred statement-level calls delimit sections: a
		// deferred Unlock keeps the section open to the end of the function.
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
			return true
		}
		name, ok := terminalName(sel.X)
		if !ok || !isQueryBlocking(name) {
			return true
		}
		events = append(events, mutexEvent{pos: call.Pos(), name: name, unlock: sel.Sel.Name == "Unlock"})
		return true
	})
	if len(events) == 0 {
		return nil
	}

	// Build [lock, unlock) windows per mutex name, in lexical order.
	type window struct {
		name       string
		start, end token.Pos
	}
	var windows []window
	open := make(map[string]int) // name -> index into windows
	for _, ev := range events {
		if ev.unlock {
			if i, ok := open[ev.name]; ok {
				windows[i].end = ev.pos
				delete(open, ev.name)
			}
			continue
		}
		if _, dup := open[ev.name]; dup {
			continue // re-lock without unlock: keep the outer window
		}
		open[ev.name] = len(windows)
		windows = append(windows, window{name: ev.name, start: ev.pos, end: fn.Body.End()})
	}

	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		inside := ""
		for _, w := range windows {
			if call.Pos() > w.start && call.Pos() < w.end {
				inside = w.name
				break
			}
		}
		if inside == "" {
			return true
		}
		if p, name, ok := pkg.qualifiedCall(call); ok {
			rel := pkg.relImport(p)
			for _, io := range IOPackages {
				if matchImport(rel, io) {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(call.Pos()),
						Analyzer: "lockhold",
						Message:  fmt.Sprintf("%s.%s inside the %s critical section: I/O under a query-blocking lock stalls every in-flight query — stage it outside the lock", rel, name, inside),
					})
					return true
				}
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" && len(call.Args) == 0 {
			if name, _ := terminalName(sel.X); !isQueryBlocking(name) {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "lockhold",
					Message:  fmt.Sprintf("Sync() inside the %s critical section: an fsync under a query-blocking lock stalls every in-flight query — sync before taking the lock", inside),
				})
			}
		}
		return true
	})
	return out
}

// terminalName returns the last identifier of a receiver chain: e.updateMu
// -> "updateMu", updateMu -> "updateMu".
func terminalName(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	}
	return "", false
}

// isQueryBlocking reports whether the name is a declared query-blocking
// mutex.
func isQueryBlocking(name string) bool {
	for _, m := range QueryBlockingMutexes {
		if name == m {
			return true
		}
	}
	return false
}
