package lint_test

import (
	"testing"

	"themecomm/internal/lint"
)

// TestSuiteCleanOnRepository runs the full analyzer suite over the real
// repository, exactly like `go run ./cmd/tclint ./...` and the CI lint job.
// Living inside `go test` means plain `go test ./...` catches an invariant
// regression even on machines that never run the CI job: break the layering,
// skip an fsync, bypass writeError — and this test names the line.
func TestSuiteCleanOnRepository(t *testing.T) {
	root, modulePath, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if modulePath != "themecomm" {
		t.Fatalf("unexpected module %q for self-check", modulePath)
	}
	pkgs, err := lint.Load(root, modulePath, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("self-check loaded only %d packages; the loader is missing the tree", len(pkgs))
	}
	for _, f := range lint.Run(pkgs, lint.All()) {
		t.Errorf("invariant violation: %s", f)
	}
}

// TestPolicyNamesRealPackages guards the policy file against bit-rot: every
// module-internal package a rule constrains must still exist, so a rename
// cannot silently turn a rule into a no-op.
func TestPolicyNamesRealPackages(t *testing.T) {
	root, modulePath, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, modulePath, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		have[p.Rel] = true
	}
	var constrained []string
	for _, r := range lint.LayerRules {
		constrained = append(constrained, r.Pkg)
	}
	constrained = append(constrained, lint.PersistencePackages...)
	constrained = append(constrained, lint.ErrEnvelopePackage)
	for _, pkg := range constrained {
		if !have[pkg] {
			t.Errorf("policy constrains %q, but no such package exists — update policy.go", pkg)
		}
	}
}
