package lint_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"themecomm/internal/lint"
)

// goldenCases maps each fixture package to the module-relative path it
// impersonates and the analyzer under test. Expectations live in the
// fixtures as `// want "regexp"` comments on the offending line; suppression
// and false-positive regression cases are fixture lines with no want
// comment.
var goldenCases = []struct {
	dir      string
	rel      string
	analyzer string
}{
	{"importdag/engine", "internal/engine", "importdag"},
	{"importdag/tctree", "internal/tctree", "importdag"},
	{"importdag/worker", "internal/worker", "importdag"},
	{"importdag/server", "internal/server", "importdag"},
	{"atomicwrite/store", "internal/tctree", "atomicwrite"},
	{"errenvelope/server", "internal/server", "errenvelope"},
	{"lockhold/engine", "internal/engine", "lockhold"},
	{"ctxflow/lib", "internal/lib", "ctxflow"},
	{"ctxflow/mainpkg", "cmd/mainpkg", "ctxflow"},
}

// analyzerByName resolves one analyzer from the suite.
func analyzerByName(t *testing.T, name string) lint.Analyzer {
	t.Helper()
	for _, a := range lint.All() {
		if a.Name() == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// wantRe extracts the quoted expectations of a `// want` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRe matches one Go-quoted string.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one want entry: a line plus a regexp findings there must
// match.
type expectation struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

// expectationsOf parses the want comments of a loaded package.
func expectationsOf(t *testing.T, pkg *lint.Package) map[string][]*expectation {
	t.Helper()
	out := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		var file *ast.File = f
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					out[pos.Filename] = append(out[pos.Filename], &expectation{line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", filepath.FromSlash(tc.dir))
			pkg, err := lint.LoadDir(dir, tc.rel, "themecomm")
			if err != nil {
				t.Fatal(err)
			}
			if pkg == nil {
				t.Fatalf("no Go files in %s", dir)
			}
			findings := lint.Run([]*lint.Package{pkg}, []lint.Analyzer{analyzerByName(t, tc.analyzer)})
			wants := expectationsOf(t, pkg)
			for _, f := range findings {
				matched := false
				for _, w := range wants[f.Pos.Filename] {
					if w.line == f.Pos.Line && w.re.MatchString(f.Message) {
						w.hit = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for file, ws := range wants {
				for _, w := range ws {
					if !w.hit {
						t.Errorf("%s:%d: expected a finding matching %q, got none", file, w.line, w.re)
					}
				}
			}
		})
	}
}

// TestMalformedIgnore proves a reason-less suppression is itself reported —
// asserted here rather than via want comments, since the malformed comment
// line cannot carry one.
func TestMalformedIgnore(t *testing.T) {
	pkg, err := lint.LoadDir(filepath.Join("testdata", "src", "ignores"), "internal/ignores", "themecomm")
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.Run([]*lint.Package{pkg}, lint.All())
	if len(findings) != 1 {
		t.Fatalf("want exactly the malformed-suppression finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "ignore" || !strings.Contains(f.Message, "reason is mandatory") {
		t.Fatalf("unexpected finding: %s", f)
	}
}

// TestSuppressionScope proves an ignore comment two lines above the finding
// does not suppress it: only the same line and the line directly above do.
func TestSuppressionScope(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "os"

func far(path string, data []byte) error {
	//lint:ignore atomicwrite too far away to apply

	return os.WriteFile(path, data, 0o644)
}
`
	if err := os.WriteFile(filepath.Join(dir, "far.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.LoadDir(dir, "internal/tctree", "themecomm")
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.Run([]*lint.Package{pkg}, lint.All())
	var atomic []lint.Finding
	for _, f := range findings {
		if f.Analyzer == "atomicwrite" {
			atomic = append(atomic, f)
		}
	}
	if len(atomic) != 1 {
		t.Fatalf("want the os.WriteFile finding to survive a distant suppression, got %v", findings)
	}
}
