// Package lint is themecomm's project-specific static-analysis suite: a set
// of analyzers, written only against the standard library's go/ast, go/parser
// and go/types, that machine-check architectural invariants this repository
// used to enforce by convention alone — the engine↔obs layering seam, the
// fsync+rename atomic-write idiom behind crash safety, the single writeError
// response envelope, the no-I/O-under-the-update-lock rule, and context
// propagation discipline. The declared policy (which package may import what,
// which packages are persistence packages, which mutexes are query-blocking)
// lives in policy.go; each analyzer encodes one invariant and reports
// findings as "file:line:col: [name] message".
//
// Deliberate exceptions are annotated in the source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory; a suppression without one is itself reported. See
// docs/STATIC_ANALYSIS.md for the catalogue of analyzers and how to add one.
//
// The suite runs as `go run ./cmd/tclint ./...` (CI job "lint") and as a
// self-check inside `go test ./internal/lint` so invariant regressions fail
// plain `go test ./...` too.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer hit: a position, the analyzer that produced it and
// a human-readable message stating the violated invariant.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical "file:line:col: [name] msg"
// form every consumer (CLI, CI log, golden tests) parses.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker. Check receives a loaded package and
// returns raw findings; the runner applies suppressions and ordering.
type Analyzer interface {
	// Name is the short identifier used in reports and //lint:ignore
	// comments.
	Name() string
	// Doc is a one-paragraph description of the invariant the analyzer
	// encodes.
	Doc() string
	// Check analyzes one package.
	Check(pkg *Package) []Finding
}

// All returns the full analyzer suite in reporting order.
func All() []Analyzer {
	return []Analyzer{
		ImportDAG{},
		AtomicWrite{},
		ErrEnvelope{},
		LockHold{},
		CtxFlow{},
	}
}

// ignoreRe matches a well-formed suppression comment. The analyzer name and
// a non-empty reason are both mandatory — "zero unexplained suppressions" is
// itself an enforced invariant.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([a-z]+)\s+(\S.*)$`)

// ignorePrefix detects any attempt at a suppression comment, well-formed or
// not, so malformed ones can be reported rather than silently ignored.
const ignorePrefix = "//lint:ignore"

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	pos      token.Position
	analyzer string
}

// suppressions collects the well-formed //lint:ignore comments of a file and
// reports malformed ones as findings of the pseudo-analyzer "ignore".
func suppressionsOf(fset *token.FileSet, file *ast.File) ([]suppression, []Finding) {
	var sups []suppression
	var bad []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				bad = append(bad, Finding{
					Pos:      pos,
					Analyzer: "ignore",
					Message:  "malformed suppression; the form is //lint:ignore <analyzer> <reason> and the reason is mandatory",
				})
				continue
			}
			sups = append(sups, suppression{pos: pos, analyzer: m[1]})
		}
	}
	return sups, bad
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppressions (same line or the line directly above the finding), appends
// malformed-suppression findings, and returns everything sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		// Suppression table: file -> line -> analyzer names suppressed there.
		type key struct {
			file string
			line int
		}
		suppressed := make(map[key]map[string]bool)
		for _, f := range pkg.Files {
			sups, bad := suppressionsOf(pkg.Fset, f)
			all = append(all, bad...)
			for _, s := range sups {
				k := key{s.pos.Filename, s.pos.Line}
				if suppressed[k] == nil {
					suppressed[k] = make(map[string]bool)
				}
				suppressed[k][s.analyzer] = true
			}
		}
		for _, a := range analyzers {
			for _, f := range a.Check(pkg) {
				k := key{f.Pos.Filename, f.Pos.Line}
				above := key{f.Pos.Filename, f.Pos.Line - 1}
				if suppressed[k][a.Name()] || suppressed[above][a.Name()] {
					continue
				}
				all = append(all, f)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}
