package lint

import (
	"fmt"
	"go/ast"
	"strconv"
)

// ErrEnvelope enforces PR 9's uniform error contract: every error response
// internal/server produces is the {error,status,requestId} JSON envelope,
// emitted by the single writeError choke point. It flags, anywhere else in
// that package, calls to http.Error (plain-text body, no envelope, no
// request ID echo) and direct WriteHeader with a 4xx/5xx status (an error
// status with whatever body happens to follow). Success-path WriteHeader
// calls and variable statuses are out of scope — the envelope audit test
// covers those dynamically.
type ErrEnvelope struct{}

// Name implements Analyzer.
func (ErrEnvelope) Name() string { return "errenvelope" }

// Doc implements Analyzer.
func (ErrEnvelope) Doc() string {
	return "route every error response in internal/server through the writeError envelope choke point"
}

// errorStatusNames maps net/http 4xx/5xx status constants to their codes.
var errorStatusNames = map[string]int{
	"StatusBadRequest": 400, "StatusUnauthorized": 401, "StatusPaymentRequired": 402,
	"StatusForbidden": 403, "StatusNotFound": 404, "StatusMethodNotAllowed": 405,
	"StatusNotAcceptable": 406, "StatusProxyAuthRequired": 407, "StatusRequestTimeout": 408,
	"StatusConflict": 409, "StatusGone": 410, "StatusLengthRequired": 411,
	"StatusPreconditionFailed": 412, "StatusRequestEntityTooLarge": 413,
	"StatusRequestURITooLong": 414, "StatusUnsupportedMediaType": 415,
	"StatusRequestedRangeNotSatisfiable": 416, "StatusExpectationFailed": 417,
	"StatusTeapot": 418, "StatusMisdirectedRequest": 421, "StatusUnprocessableEntity": 422,
	"StatusLocked": 423, "StatusFailedDependency": 424, "StatusTooEarly": 425,
	"StatusUpgradeRequired": 426, "StatusPreconditionRequired": 428,
	"StatusTooManyRequests": 429, "StatusRequestHeaderFieldsTooLarge": 431,
	"StatusUnavailableForLegalReasons": 451, "StatusInternalServerError": 500,
	"StatusNotImplemented": 501, "StatusBadGateway": 502, "StatusServiceUnavailable": 503,
	"StatusGatewayTimeout": 504, "StatusHTTPVersionNotSupported": 505,
	"StatusVariantAlsoNegotiates": 506, "StatusInsufficientStorage": 507,
	"StatusLoopDetected": 508, "StatusNotExtended": 510,
	"StatusNetworkAuthenticationRequired": 511,
}

// Check implements Analyzer.
func (ErrEnvelope) Check(pkg *Package) []Finding {
	if !matchPkg(pkg.Rel, ErrEnvelopePackage) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Name.Name == ErrEnvelopeFunc {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if p, name, ok := pkg.qualifiedCall(call); ok && p == "net/http" && name == "Error" {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(call.Pos()),
						Analyzer: "errenvelope",
						Message:  fmt.Sprintf("http.Error bypasses the %s envelope: the client gets plain text without status/requestId fields", ErrEnvelopeFunc),
					})
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
					if code, lit, ok := errorStatusArg(pkg, call.Args[0]); ok {
						out = append(out, Finding{
							Pos:      pkg.Fset.Position(call.Pos()),
							Analyzer: "errenvelope",
							Message:  fmt.Sprintf("WriteHeader(%s) emits a %d outside %s: error statuses must carry the JSON error envelope", lit, code, ErrEnvelopeFunc),
						})
					}
				}
				return true
			})
		}
	}
	return out
}

// errorStatusArg recognizes a 4xx/5xx status argument: an integer literal or
// a net/http Status* constant.
func errorStatusArg(pkg *Package, arg ast.Expr) (code int, lit string, ok bool) {
	switch a := arg.(type) {
	case *ast.BasicLit:
		n, err := strconv.Atoi(a.Value)
		if err == nil && n >= 400 {
			return n, a.Value, true
		}
	case *ast.SelectorExpr:
		if id, isIdent := a.X.(*ast.Ident); isIdent && pkg.pkgOf(id) == "net/http" {
			if n, known := errorStatusNames[a.Sel.Name]; known {
				return n, "http." + a.Sel.Name, true
			}
		}
	}
	return 0, "", false
}
