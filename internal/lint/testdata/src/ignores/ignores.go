// Package ignores is a fixture for suppression-comment hygiene: a
// suppression without a reason is itself a finding (asserted by a unit test
// rather than want comments, since the malformed comment cannot carry one).
package ignores

import "os"

func unreasoned(path string, data []byte) error {
	//lint:ignore atomicwrite
	return os.WriteFile(path, data, 0o644)
}
