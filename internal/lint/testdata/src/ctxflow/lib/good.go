package lib

import "context"

// Query is the stdlib convenience-wrapper idiom: the fresh Background goes
// straight into the Context-suffixed variant — allowed.
func Query(n int) error {
	return QueryContext(context.Background(), n)
}

// QueryContext threads the ctx through — the shape wrappers delegate to.
func QueryContext(ctx context.Context, n int) error {
	return work(ctx, n)
}

// Detach discards the context explicitly with a blank name: not flagged.
func Detach(_ context.Context, n int) error {
	return work(context.Background(), n) //lint:ignore ctxflow fixture: detached background work, documented at the call site
}
