// Package lib is a fixture analyzed as internal/lib — library code, where
// ambient contexts sever request tracing and dropped ctx parameters lie to
// callers.
package lib

import "context"

// mintAmbient manufactures its own context instead of accepting one.
func mintAmbient() error {
	ctx := context.Background() // want "context.Background\\(\\) in library code"
	return work(ctx, 1)
}

// mintTODO is no better.
func mintTODO() error {
	return work(context.TODO(), 1) // want "context.TODO\\(\\) in library code"
}

// Run drops the ctx it promises to honor.
func Run(ctx context.Context, n int) error { // want "exported Run accepts ctx"
	return work(context.TODO(), n) // want "context.TODO\\(\\) in library code"
}

func work(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}
