// Package main is a fixture proving ctxflow leaves binaries alone: main
// packages are where ambient root contexts legitimately begin.
package main

import "context"

func main() {
	_ = run(context.Background())
}

func run(ctx context.Context) error {
	<-ctx.Done()
	return nil
}
