package server

import "net/http"

// writeError is the choke point itself: it may write error statuses (and in
// this fixture even calls http.Error) without findings.
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	http.Error(w, msg, status)
}

// goodHandler routes errors through writeError, writes success statuses
// directly, and passes variable statuses (covered by the dynamic envelope
// audit test, not this analyzer).
func goodHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	status := pick()
	w.WriteHeader(status)
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusNoContent)
}

func pick() int { return 200 }
