// Package server is a fixture analyzed as internal/server: every error
// response must flow through the writeError envelope choke point.
package server

import "net/http"

func badHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "use GET", http.StatusMethodNotAllowed) // want "bypasses the writeError envelope"
		return
	}
	w.WriteHeader(http.StatusInternalServerError) // want "WriteHeader\\(http.StatusInternalServerError\\)"
}

func badLiteral(w http.ResponseWriter) {
	w.WriteHeader(503) // want "WriteHeader\\(503\\)"
}
