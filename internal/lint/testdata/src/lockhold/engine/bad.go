// Package engine is a fixture analyzed as internal/engine: no file or
// network I/O inside write-side critical sections of the declared
// query-blocking mutexes (updateMu).
package engine

import (
	"os"
	"sync"

	"themecomm/internal/dbnet"
)

type eng struct {
	updateMu sync.RWMutex
	f        *os.File
}

// swapSlow does disk I/O while every in-flight query is excluded.
func (e *eng) swapSlow(path string) error {
	e.updateMu.Lock()
	err := os.Remove(path) // want "os.Remove inside the updateMu critical section"
	e.updateMu.Unlock()
	return err
}

// swapDeferred holds the lock to the end of the function via defer; the
// fsync and the module-internal write helper are both I/O under the lock.
func (e *eng) swapDeferred(path string) error {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	if err := e.f.Sync(); err != nil { // want "Sync\\(\\) inside the updateMu critical section"
		return err
	}
	return dbnet.WriteFileAtomic(path, nil, nil) // want "dbnet.WriteFileAtomic inside the updateMu critical section"
}
