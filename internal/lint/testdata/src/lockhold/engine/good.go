package engine

import (
	"os"
	"sync"
)

type store struct {
	updateMu sync.RWMutex
	mu       sync.Mutex
}

// swapStaged is the blessed shape: stage the I/O outside, lock only for the
// in-memory swap.
func (s *store) swapStaged(path string, apply func()) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	s.updateMu.Lock()
	apply()
	s.updateMu.Unlock()
	return os.Rename(path+".tmp", path)
}

// readSection holds the read side: lazy loads under RLock are by design.
func (s *store) readSection(path string) ([]byte, error) {
	s.updateMu.RLock()
	defer s.updateMu.RUnlock()
	return os.ReadFile(path)
}

// otherMutex is not a declared query-blocking mutex; I/O inside is fine.
func (s *store) otherMutex(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Remove(path)
}
