// Package worker is a fixture analyzed as internal/worker — a package with
// no layer rule of its own. The serving-edge restriction still applies, and
// a correctly named suppression silences it.
package worker

import (
	"net/http" // want "may only be imported"
	//lint:ignore importdag fixture-sanctioned exception to prove suppressions work
	"net/http/pprof"
)

var (
	_ = http.StatusOK
	_ = pprof.X
)
