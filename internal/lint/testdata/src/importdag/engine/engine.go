// Package engine is a fixture analyzed as internal/engine: the execution
// layer must not import the observability layer or HTTP. net/http earns two
// findings — the engine deny rule and the serving-edge restriction.
package engine

import (
	"net/http"                 // want "must not import net/http" "may only be imported"
	"themecomm/internal/obs"   // want "must not import internal/obs"
	"themecomm/internal/trace" // fine: trace is the sanctioned seam
)

var (
	_ = http.StatusOK
	_ = obs.X
	_ = trace.X
)
