// Package tctree is a fixture analyzed as internal/tctree: storage sits
// below execution, so importing the engine inverts the DAG. A suppression
// naming the wrong analyzer does not silence importdag.
package tctree

import (
	"themecomm/internal/engine" // want "must not import internal/engine"
	//lint:ignore atomicwrite wrong analyzer name, so the next import is still reported
	"themecomm/internal/federation" // want "must not import internal/federation"
)

var (
	_ = engine.X
	_ = federation.X
)
