// Package server is a fixture analyzed as internal/server: the serving edge
// may import net/http — a false-positive regression case.
package server

import "net/http"

var _ = http.StatusOK
