// Package store is a fixture analyzed as internal/tctree (a persistence
// package): writes must follow the write-temp → fsync → rename discipline.
package store

import "os"

// saveQuick bypasses the atomic-write helpers entirely.
func saveQuick(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "never fsyncs"
}

// replaceTorn renames a freshly written file without fsyncing it first: a
// crash after the rename can publish an empty or torn file.
func replaceTorn(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want "no Sync before it"
}

// leakyClose defers Close on a writable file, dropping the write-back error.
func leakyClose(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred Close on a writable file"
	_, err = f.Write(data)
	return err
}
