package store

import "os"

// replaceAtomic is the blessed idiom: write temp, fsync, checked close,
// rename — no findings.
func replaceAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readBack opens read-only: a deferred Close is fine, no write-back to lose.
func readBack(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// renameFresh renames a file this function never wrote (the caller synced
// it): the per-function analysis stays silent.
func renameFresh(tmp, path string) error {
	return os.Rename(tmp, path)
}
