package store

import "os"

// scratchNote writes a throwaway advisory file; durability is explicitly
// not wanted, and the suppression says so.
func scratchNote(path string, data []byte) error {
	//lint:ignore atomicwrite advisory scratch file, rebuilt on startup; durability explicitly not required
	return os.WriteFile(path, data, 0o600)
}
