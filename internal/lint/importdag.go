package lint

import (
	"fmt"
	"strconv"
)

// ImportDAG enforces the declared layering policy (LayerRules and
// RestrictedImports in policy.go): which package may import what. It is the
// machine check for the architecture diagram in docs/ARCHITECTURE.md — the
// seam that once let internal/engine silently grow an import of
// internal/obs is now a build failure.
type ImportDAG struct{}

// Name implements Analyzer.
func (ImportDAG) Name() string { return "importdag" }

// Doc implements Analyzer.
func (ImportDAG) Doc() string {
	return "enforce the declared import layering: storage below execution below serving, obs reachable only via the trace seam, net/http confined to the serving edge"
}

// Check implements Analyzer.
func (ImportDAG) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			rel := pkg.relImport(p)
			for _, rule := range LayerRules {
				if !matchPkg(pkg.Rel, rule.Pkg) {
					continue
				}
				for _, deny := range rule.Deny {
					if matchImport(rel, deny) {
						out = append(out, Finding{
							Pos:      pkg.Fset.Position(imp.Path.Pos()),
							Analyzer: "importdag",
							Message:  fmt.Sprintf("%s must not import %s: %s", pkg.Rel, rel, rule.Why),
						})
					}
				}
			}
			for _, restricted := range RestrictedImports {
				if !matchImport(p, restricted.Path) {
					continue
				}
				allowed := false
				for _, a := range restricted.Allowed {
					if matchPkg(pkg.Rel, a) {
						allowed = true
						break
					}
				}
				if !allowed {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(imp.Path.Pos()),
						Analyzer: "importdag",
						Message:  fmt.Sprintf("%s may only be imported by %v, not %s: %s", restricted.Path, restricted.Allowed, pkgLabel(pkg.Rel), restricted.Why),
					})
				}
			}
		}
	}
	return out
}

// pkgLabel renders a module-relative package path for messages.
func pkgLabel(rel string) string {
	if rel == "" {
		return "the module root package"
	}
	return rel
}
