package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and leniently type-checked package. Test
// files (_test.go) are excluded: the invariants below guard production code
// paths, and tests legitimately reach across layers (httptest servers,
// context.Background, direct file writes).
type Package struct {
	// Rel is the module-relative directory: "" for the module root package,
	// "internal/engine", "cmd/tcserver", ... Policy rules match on it.
	Rel string
	// ModulePath is the module path from go.mod ("themecomm"); imports with
	// this prefix are module-internal.
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	// Info carries lenient go/types resolution results. Imported packages
	// are placeholders (no export data is needed), but qualified identifiers
	// like os.Rename still resolve their package operand to a *types.PkgName
	// — which is exactly what the analyzers need, with local shadowing of
	// package names handled correctly.
	Info *types.Info
}

// PkgPath returns the full import path of the package.
func (p *Package) PkgPath() string {
	if p.Rel == "" {
		return p.ModulePath
	}
	return p.ModulePath + "/" + p.Rel
}

// relImport strips the module prefix from a module-internal import path:
// "themecomm/internal/obs" -> "internal/obs". Non-internal paths ("net/http")
// are returned unchanged, and the module root import maps to "".
func (p *Package) relImport(importPath string) string {
	if importPath == p.ModulePath {
		return ""
	}
	if rest, ok := strings.CutPrefix(importPath, p.ModulePath+"/"); ok {
		return rest
	}
	return importPath
}

// placeholderImporter satisfies go/types without export data: every import
// resolves to an empty, complete package whose name is the last path
// element. Member lookups on it fail (silenced by the lenient error
// handler), but the import's PkgName object is still recorded in
// types.Info.Uses — the only resolution the analyzers rely on.
type placeholderImporter struct {
	pkgs map[string]*types.Package
}

func (pi placeholderImporter) Import(importPath string) (*types.Package, error) {
	if p, ok := pi.pkgs[importPath]; ok {
		return p, nil
	}
	p := types.NewPackage(importPath, path.Base(importPath))
	p.MarkComplete()
	pi.pkgs[importPath] = p
	return p, nil
}

// check runs the lenient go/types pass over the parsed files.
func (p *Package) check() {
	p.Info = &types.Info{
		Uses: make(map[*ast.Ident]types.Object),
		Defs: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Error:    func(error) {}, // placeholder imports make errors expected
		Importer: placeholderImporter{pkgs: make(map[string]*types.Package)},
	}
	// The returned error only repeats what the Error handler swallowed.
	conf.Check(p.PkgPath(), p.Fset, p.Files, p.Info) //nolint:errcheck
}

// pkgOf resolves the package operand of a qualified identifier: for the `os`
// in os.Rename it returns "os" (the imported path). It returns "" when the
// identifier is not an imported-package reference — including when a local
// variable shadows the package name.
func (p *Package) pkgOf(id *ast.Ident) string {
	if obj, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// qualifiedCall matches a call of the form pkg.Func(...) and returns the
// imported package path and function name.
func (p *Package) qualifiedCall(call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pkgPath = p.pkgOf(id)
	if pkgPath == "" {
		return "", "", false
	}
	return pkgPath, sel.Sel.Name, true
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// skipDir names directories the loader never descends into.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		(strings.HasPrefix(name, ".") && name != ".") || strings.HasPrefix(name, "_")
}

// Load resolves package patterns against the module rooted at root and
// returns parsed packages. Supported patterns are Go-tool-like: "./..."
// (the whole module), "dir/..." (a subtree) and plain directories.
func Load(root, modulePath string, patterns []string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			pat = strings.TrimSuffix(rest, "/")
		}
		if pat == "" || pat == "." || pat == "./" {
			pat = "."
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		info, err := os.Stat(base)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: not a directory under %s", pat, root)
		}
		if !recursive {
			dirs[base] = true
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if p != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		pkg, err := LoadDir(dir, rel, modulePath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses the non-test Go files of one directory as a package with
// the given module-relative path. It returns (nil, nil) for directories
// without Go files.
func LoadDir(dir, rel, modulePath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Rel: rel, ModulePath: modulePath, Fset: token.NewFileSet()}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(pkg.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.check()
	return pkg, nil
}
