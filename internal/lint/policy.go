package lint

// This file is the machine-readable architecture policy: every rule below is
// an invariant some PR established and later code silently depended on. Each
// entry says where it came from, so a future change that needs to relax a
// rule knows what it is trading away. docs/STATIC_ANALYSIS.md is the prose
// version; keep the two in sync.

// LayerRule forbids a package subtree from importing certain paths.
type LayerRule struct {
	// Pkg is the module-relative package the rule constrains. A trailing
	// "/" makes it a subtree prefix; otherwise it is an exact match.
	Pkg string
	// Deny lists forbidden imports: module-relative for module-internal
	// packages ("internal/obs"), full paths for the rest ("net/http").
	// Entries match the path itself and any of its subpackages.
	Deny []string
	// Why is the one-line justification printed with findings.
	Why string
}

// LayerRules is the declared import DAG. It encodes the layering the
// architecture docs promise: tctree (storage) below engine (execution) below
// federation (multi-tenant serving) below server (HTTP); obs strictly to the
// side, reachable only from above the engine via the trace seam.
var LayerRules = []LayerRule{
	{
		Pkg:  "internal/engine",
		Deny: []string{"internal/obs", "internal/server", "internal/federation", "internal/replication", "internal/client", "internal/journal", "net/http"},
		Why:  "the engine observes through the internal/trace Recorder seam (PR 6) and serves through layers above it; it must stay embeddable without HTTP or metrics",
	},
	{
		Pkg:  "internal/tctree",
		Deny: []string{"internal/engine", "internal/federation", "internal/server", "internal/obs", "internal/delta", "internal/replication", "net/http"},
		Why:  "the index storage layer sits below execution (PR 2): engines open indexes, never the reverse",
	},
	{
		Pkg:  "internal/federation",
		Deny: []string{"internal/obs", "internal/server", "internal/replication", "net/http"},
		Why:  "federation is the multi-tenant engine layer (PR 4); HTTP and metrics wiring belong to internal/server",
	},
	{
		Pkg:  "internal/delta",
		Deny: []string{"internal/engine", "internal/tctree", "internal/federation", "internal/server", "internal/obs", "net/http"},
		Why:  "deltas describe network changes (PR 5); the rebuild machinery that consumes them lives above",
	},
	{
		Pkg:  "internal/journal",
		Deny: []string{"internal/engine", "internal/tctree", "internal/delta", "internal/federation", "internal/server", "internal/obs", "net/http"},
		Why:  "the journal is a freestanding durable log (PR 9); replication composes it with the engine, not vice versa",
	},
	{
		Pkg:  "internal/obs",
		Deny: []string{"internal/engine", "internal/tctree", "internal/federation", "internal/server", "internal/replication"},
		Why:  "observability consumes engine observations through internal/trace (PR 6); importing execution layers would cycle the seam",
	},
	{
		Pkg:  "internal/trace",
		Deny: []string{"internal/"},
		Why:  "trace is the leaf seam both sides of the engine↔obs boundary import; it may depend on nothing in this module",
	},
	{
		Pkg:  "internal/replication",
		Deny: []string{"internal/server", "internal/obs", "net/http"},
		Why:  "replication drives engines and journals (PR 9); HTTP transport for the journal feed lives in internal/server and internal/client",
	},
}

// RestrictedImport inverts a layer rule: the import is forbidden everywhere
// except the listed packages.
type RestrictedImport struct {
	// Path is the restricted import (it and its subpackages).
	Path string
	// Allowed lists module-relative packages that may import it. A trailing
	// "/" makes an entry a subtree prefix; "" is the module root package.
	Allowed []string
	// Why is the one-line justification printed with findings.
	Why string
}

// RestrictedImports pins transport dependencies to the serving edge.
var RestrictedImports = []RestrictedImport{
	{
		Path:    "net/http",
		Allowed: []string{"internal/server", "internal/obs", "internal/client", "internal/replication", "cmd/", ""},
		Why:     "HTTP is the serving edge (PR 1/PR 9): handlers in internal/server, middleware in internal/obs, the typed client, and binaries; core layers must stay transport-free",
	},
}

// PersistencePackages are the module-relative packages whose writes must
// follow the write-temp → fsync → rename discipline (PR 5's crash-safety
// hardening). The atomicwrite analyzer only checks these.
var PersistencePackages = []string{
	"internal/tctree",
	"internal/dbnet",
	"internal/delta",
	"internal/journal",
	"internal/replication",
}

// QueryBlockingMutexes names mutexes whose write-side critical sections
// block every in-flight query; the lockhold analyzer forbids file and
// network I/O lexically inside them. updateMu is the engine's index-swap
// lock (PR 5): staging, encoding and fsyncs happen outside it, only the
// in-memory table swap (plus the sanctioned one-manifest-rename commit,
// which lives in tctree, below this analysis) happens inside.
var QueryBlockingMutexes = []string{"updateMu"}

// IOPackages are import paths whose direct calls count as I/O for the
// lockhold analyzer. Module-internal entries are module-relative.
var IOPackages = []string{
	"os",
	"syscall",
	"io/ioutil",
	"net",
	"net/http",
	"internal/dbnet",
	"internal/journal",
}

// ErrEnvelopePackage is the package whose error responses must all flow
// through the writeError choke point (PR 9's uniform
// {error,status,requestId} envelope), and ErrEnvelopeFunc that choke point.
const (
	ErrEnvelopePackage = "internal/server"
	ErrEnvelopeFunc    = "writeError"
)

// matchPkg reports whether a module-relative package path matches a policy
// entry (exact, or subtree when the entry ends in "/").
func matchPkg(rel, entry string) bool {
	if entry == "" || entry == rel {
		return entry == rel
	}
	if last := entry[len(entry)-1]; last == '/' {
		return rel == entry[:len(entry)-1] || len(rel) > len(entry) && rel[:len(entry)] == entry
	}
	return false
}

// matchImport reports whether an import path matches a policy entry: the
// entry itself or any subpackage of it.
func matchImport(imp, entry string) bool {
	if imp == entry {
		return true
	}
	if last := entry[len(entry)-1]; last == '/' {
		return len(imp) >= len(entry) && imp[:len(entry)] == entry
	}
	return len(imp) > len(entry) && imp[:len(entry)] == entry && imp[len(entry)] == '/'
}
