package loaders

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// CoAuthorOptions configures the citation-archive loader.
type CoAuthorOptions struct {
	// MinKeywordLength drops abstract tokens shorter than this many runes
	// (default 4), which removes most function words.
	MinKeywordLength int
	// MaxKeywordsPerPaper caps the transaction length (default 30) so a very
	// long abstract cannot dominate an author's database.
	MaxKeywordsPerPaper int
}

// Paper is one publication record of a citation archive.
type Paper struct {
	Title    string
	Authors  []string
	Abstract string
}

// CoAuthorResult is the database network built from a citation archive,
// together with the dictionaries needed to interpret it.
type CoAuthorResult struct {
	Network *dbnet.Network
	// Keywords names every keyword item.
	Keywords *itemset.Dictionary
	// AuthorNames maps each vertex to the author's name.
	AuthorNames []string
}

// ParseAMiner parses the AMINER citation archive format (the "Citation
// network" text dumps), in which every paper is a block of lines starting
// with markers:
//
//	#* title
//	#@ author 1;author 2;...     (or comma separated)
//	#! abstract
//
// Blocks are separated by blank lines; unknown markers are ignored.
func ParseAMiner(r io.Reader) ([]Paper, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var papers []Paper
	var cur *Paper
	flush := func() {
		if cur != nil && cur.Title != "" {
			papers = append(papers, *cur)
		}
		cur = nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			flush()
			continue
		}
		if !strings.HasPrefix(line, "#") {
			continue
		}
		if cur == nil {
			cur = &Paper{}
		}
		switch {
		case strings.HasPrefix(line, "#*"):
			cur.Title = strings.TrimSpace(line[2:])
		case strings.HasPrefix(line, "#@"):
			cur.Authors = splitAuthors(strings.TrimSpace(line[2:]))
		case strings.HasPrefix(line, "#!"):
			cur.Abstract = strings.TrimSpace(line[2:])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loaders: reading citation archive: %w", err)
	}
	flush()
	if len(papers) == 0 {
		return nil, fmt.Errorf("loaders: no paper records found")
	}
	return papers, nil
}

func splitAuthors(s string) []string {
	sep := ";"
	if !strings.Contains(s, ";") {
		sep = ","
	}
	var out []string
	for _, a := range strings.Split(s, sep) {
		a = strings.TrimSpace(a)
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}

// CoAuthor builds a co-author database network from paper records, following
// the construction of Section 7: every author is a vertex, two authors are
// linked if they co-authored a paper, and every paper contributes one
// transaction (the keyword set of its abstract) to each of its authors'
// databases.
func CoAuthor(papers []Paper, opts CoAuthorOptions) (*CoAuthorResult, error) {
	if len(papers) == 0 {
		return nil, fmt.Errorf("loaders: no papers")
	}
	minLen := opts.MinKeywordLength
	if minLen <= 0 {
		minLen = 4
	}
	maxKw := opts.MaxKeywordsPerPaper
	if maxKw <= 0 {
		maxKw = 30
	}

	// Assign vertex identifiers to authors in order of first appearance.
	authorID := make(map[string]graph.VertexID)
	var names []string
	for _, p := range papers {
		for _, a := range p.Authors {
			if _, ok := authorID[a]; !ok {
				authorID[a] = graph.VertexID(len(names))
				names = append(names, a)
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loaders: no authors found in %d papers", len(papers))
	}

	nw := dbnet.New(len(names))
	keywords := itemset.NewDictionary()
	for _, p := range papers {
		kws := ExtractKeywords(p.Abstract, minLen, maxKw)
		tx := keywords.InternAll(kws)
		for i, a := range p.Authors {
			va := authorID[a]
			if tx.Len() > 0 {
				if err := nw.AddTransaction(va, tx); err != nil {
					return nil, err
				}
			}
			for _, b := range p.Authors[i+1:] {
				vb := authorID[b]
				if va == vb {
					continue
				}
				if err := nw.AddEdge(va, vb); err != nil {
					return nil, err
				}
			}
		}
	}
	return &CoAuthorResult{Network: nw, Keywords: keywords, AuthorNames: names}, nil
}

// LoadAMiner combines ParseAMiner and CoAuthor.
func LoadAMiner(r io.Reader, opts CoAuthorOptions) (*CoAuthorResult, error) {
	papers, err := ParseAMiner(r)
	if err != nil {
		return nil, err
	}
	return CoAuthor(papers, opts)
}

// stopwords lists frequent English function words and boilerplate terms that
// would otherwise dominate every abstract's keyword set.
var stopwords = map[string]bool{
	"about": true, "above": true, "after": true, "against": true,
	"also": true, "among": true, "because": true,
	"been": true, "before": true, "being": true, "between": true, "both": true,
	"cannot": true, "could": true, "does": true, "each": true,
	"experiments": true, "from": true, "have": true, "however": true, "into": true,
	"many": true, "more": true, "most": true, "much": true, "novel": true,
	"only": true, "other": true, "over": true, "paper": true, "propose": true,
	"proposed": true, "proposes": true, "provide": true, "results": true, "show": true, "shows": true,
	"some": true, "such": true, "than": true, "that": true, "their": true,
	"them": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "those": true, "through": true, "under": true, "using": true,
	"very": true, "well": true, "were": true, "what": true, "when": true,
	"where": true, "which": true, "while": true, "with": true, "within": true,
	"without": true, "would": true, "your": true,
}

// ExtractKeywords tokenizes an abstract into lowercase keyword candidates:
// alphabetic tokens of at least minLen runes that are not stopwords, keeping
// the first maxKeywords distinct ones in order of appearance.
func ExtractKeywords(abstract string, minLen, maxKeywords int) []string {
	fields := strings.FieldsFunc(strings.ToLower(abstract), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && r != '-'
	})
	seen := make(map[string]bool)
	var out []string
	for _, f := range fields {
		f = strings.Trim(f, "-")
		if len(f) < minLen || stopwords[f] || seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, f)
		if len(out) >= maxKeywords {
			break
		}
	}
	return out
}
