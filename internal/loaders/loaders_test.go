package loaders

import (
	"strings"
	"testing"
	"time"

	"themecomm/internal/core"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

const sampleEdges = `# user	friend
0	1
1	0
0	2
1	2
2	3
3	3
`

// Four users; users 0, 1, 2 repeatedly visit locations caffe and gym within
// the same 2-day windows; user 3 visits the park once.
const sampleCheckins = `# user	time	lat	lon	location
0	2010-10-17T01:48:53Z	39.7	-104.9	caffe
0	2010-10-17T20:00:00Z	39.7	-104.9	gym
0	2010-10-20T10:00:00Z	39.7	-104.9	caffe
0	2010-10-21T09:00:00Z	39.7	-104.9	gym
1	2010-10-17T02:10:00Z	39.7	-104.9	caffe
1	2010-10-17T22:30:00Z	39.7	-104.9	gym
1	2010-10-20T11:00:00Z	39.7	-104.9	caffe
1	2010-10-20T13:00:00Z	39.7	-104.9	gym
2	2010-10-17T05:00:00Z	39.7	-104.9	caffe
2	2010-10-18T01:00:00Z	39.7	-104.9	gym
2	2010-10-21T06:00:00Z	39.7	-104.9	caffe
2	2010-10-21T07:00:00Z	39.7	-104.9	gym
3	2010-10-17T12:00:00Z	39.7	-104.9	park
9	2010-10-17T12:00:00Z	39.7	-104.9	ignored-user
`

func TestCheckInsLoader(t *testing.T) {
	nw, dict, err := CheckIns(strings.NewReader(sampleEdges), strings.NewReader(sampleCheckins), CheckInOptions{})
	if err != nil {
		t.Fatalf("CheckIns: %v", err)
	}
	if nw.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", nw.NumVertices())
	}
	// Self-loop (3,3) and duplicate (1,0) are dropped: edges are (0,1),(0,2),(1,2),(2,3).
	if nw.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", nw.NumEdges())
	}
	caffe, ok := dict.Lookup("caffe")
	if !ok {
		t.Fatalf("location 'caffe' not interned")
	}
	gym, _ := dict.Lookup("gym")
	// Every 2-day window of users 0-2 contains both caffe and gym.
	for v := graph.VertexID(0); v < 3; v++ {
		if got := nw.Frequency(v, itemset.New(caffe, gym)); got < 0.99 {
			t.Fatalf("user %d frequency of {caffe,gym} = %v, want 1", v, got)
		}
		if nw.Database(v).Len() != 2 {
			t.Fatalf("user %d should have 2 period transactions, got %d", v, nw.Database(v).Len())
		}
	}
	if nw.Database(3).Len() != 1 {
		t.Fatalf("user 3 should have 1 transaction")
	}
	// The check-in of unknown user 9 is ignored, so its location is absent.
	if _, ok := dict.Lookup("ignored-user"); !ok {
		// The location string was interned before the user check; either
		// behaviour is acceptable as long as no transaction references it.
		_ = ok
	}
	// Mining the loaded network recovers the caffe+gym community.
	res := core.TCFI(nw, core.Options{Alpha: 0.5})
	if res.Truss(itemset.New(caffe, gym)) == nil {
		t.Fatalf("expected a theme community for {caffe, gym}")
	}
}

func TestCheckInsPeriodSplitting(t *testing.T) {
	// With a 1-hour period every check-in is its own transaction.
	nw, _, err := CheckIns(strings.NewReader(sampleEdges), strings.NewReader(sampleCheckins),
		CheckInOptions{Period: time.Hour})
	if err != nil {
		t.Fatalf("CheckIns: %v", err)
	}
	if got := nw.Database(0).Len(); got != 4 {
		t.Fatalf("user 0 should have 4 single-check-in transactions, got %d", got)
	}
}

func TestCheckInsMaxUsers(t *testing.T) {
	nw, _, err := CheckIns(strings.NewReader(sampleEdges), strings.NewReader(sampleCheckins),
		CheckInOptions{MaxUsers: 3})
	if err != nil {
		t.Fatalf("CheckIns: %v", err)
	}
	if nw.NumVertices() != 3 {
		t.Fatalf("MaxUsers=3 should keep 3 vertices, got %d", nw.NumVertices())
	}
}

func TestCheckInsErrors(t *testing.T) {
	cases := []struct {
		name            string
		edges, checkins string
	}{
		{"no edges", "", sampleCheckins},
		{"bad edge arity", "0 1 2\n", sampleCheckins},
		{"bad edge id", "a b\n", sampleCheckins},
		{"bad checkin arity", sampleEdges, "0 2010-10-17T01:48:53Z 1 2\n"},
		{"bad checkin user", sampleEdges, "x 2010-10-17T01:48:53Z 1 2 loc\n"},
		{"bad timestamp", sampleEdges, "0 yesterday 1 2 loc\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := CheckIns(strings.NewReader(c.edges), strings.NewReader(c.checkins), CheckInOptions{}); err == nil {
				t.Fatalf("expected an error")
			}
		})
	}
}

const sampleArchive = `#*Mining Frequent Patterns without Candidate Generation
#@Jiawei Han;Jian Pei;Yiwen Yin
#!Mining frequent patterns in transaction databases has been studied popularly in data mining research.

#*PrefixSpan Mining Sequential Patterns
#@Jian Pei;Jiawei Han;Helen Pinto
#!Sequential pattern mining discovers frequent subsequences as patterns in a sequence database.

#*A paper with no abstract
#@Solo Author
#index12345

#*Intrusion Detection with Sequential Patterns
#@Jian Pei;Ke Wang;Jiawei Han
#!Intrusion detection applies sequential pattern mining to audit data streams.
`

func TestParseAMiner(t *testing.T) {
	papers, err := ParseAMiner(strings.NewReader(sampleArchive))
	if err != nil {
		t.Fatalf("ParseAMiner: %v", err)
	}
	if len(papers) != 4 {
		t.Fatalf("parsed %d papers, want 4", len(papers))
	}
	if papers[0].Title != "Mining Frequent Patterns without Candidate Generation" {
		t.Fatalf("title = %q", papers[0].Title)
	}
	if len(papers[0].Authors) != 3 || papers[0].Authors[1] != "Jian Pei" {
		t.Fatalf("authors = %v", papers[0].Authors)
	}
	if papers[2].Abstract != "" {
		t.Fatalf("paper without abstract should have empty abstract")
	}
	if _, err := ParseAMiner(strings.NewReader("no markers here\n")); err == nil {
		t.Fatalf("archive without records should fail")
	}
}

func TestCoAuthorFromArchive(t *testing.T) {
	res, err := LoadAMiner(strings.NewReader(sampleArchive), CoAuthorOptions{})
	if err != nil {
		t.Fatalf("LoadAMiner: %v", err)
	}
	nw := res.Network
	if len(res.AuthorNames) != 6 {
		t.Fatalf("authors = %v", res.AuthorNames)
	}
	// Jiawei Han and Jian Pei co-authored: there must be an edge between them.
	idx := make(map[string]graph.VertexID)
	for i, n := range res.AuthorNames {
		idx[n] = graph.VertexID(i)
	}
	if !nw.Graph().HasEdge(idx["Jiawei Han"], idx["Jian Pei"]) {
		t.Fatalf("missing co-author edge")
	}
	if nw.Graph().HasEdge(idx["Solo Author"], idx["Jiawei Han"]) {
		t.Fatalf("unexpected edge to a solo author")
	}
	// Keyword transactions: the abstracts mention "mining" and "patterns".
	mining, ok := res.Keywords.Lookup("mining")
	if !ok {
		t.Fatalf("keyword 'mining' not extracted")
	}
	if got := nw.Frequency(idx["Jiawei Han"], itemset.New(mining)); got <= 0 {
		t.Fatalf("Jiawei Han should have 'mining' in his database")
	}
	// The solo paper has no abstract, so Solo Author's database is empty.
	if !nw.Database(idx["Solo Author"]).Empty() {
		t.Fatalf("Solo Author should have no transactions")
	}
	if _, err := CoAuthor(nil, CoAuthorOptions{}); err == nil {
		t.Fatalf("empty paper list should fail")
	}
	if _, err := CoAuthor([]Paper{{Title: "t"}}, CoAuthorOptions{}); err == nil {
		t.Fatalf("papers without authors should fail")
	}
}

func TestExtractKeywords(t *testing.T) {
	kws := ExtractKeywords("This paper proposes a NOVEL graph-mining algorithm; the algorithm mines dense subgraphs.", 4, 5)
	want := map[string]bool{"graph-mining": true, "algorithm": true, "mines": true, "dense": true, "subgraphs": true}
	if len(kws) != 5 {
		t.Fatalf("keywords = %v", kws)
	}
	for _, k := range kws {
		if !want[k] {
			t.Fatalf("unexpected keyword %q in %v", k, kws)
		}
	}
	// Stopwords and short tokens are removed; duplicates are deduplicated.
	kws = ExtractKeywords("the the the data data mining", 4, 10)
	if len(kws) != 2 || kws[0] != "data" || kws[1] != "mining" {
		t.Fatalf("keywords = %v", kws)
	}
	if got := ExtractKeywords("", 4, 10); len(got) != 0 {
		t.Fatalf("empty abstract should yield no keywords")
	}
	// The cap is honoured.
	if got := ExtractKeywords("alpha bravo charlie delta echo foxtrot", 4, 3); len(got) != 3 {
		t.Fatalf("cap not honoured: %v", got)
	}
}
