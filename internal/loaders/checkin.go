// Package loaders builds database networks from the raw file formats of the
// paper's real datasets, so that users who obtain the original data
// (Brightkite and Gowalla check-in dumps from SNAP, the AMINER citation
// archive) can run the algorithms on them exactly as the paper describes:
// check-in histories are cut into fixed-length periods whose location sets
// become transactions, and paper abstracts become keyword-set transactions on
// every author of the paper.
package loaders

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// CheckInOptions configures the check-in loader.
type CheckInOptions struct {
	// Period is the length of one transaction window; the paper uses 2 days.
	// Zero means 48 hours.
	Period time.Duration
	// MaxUsers, when positive, keeps only users with identifiers below the
	// bound — handy for loading a slice of a large dump.
	MaxUsers int
}

// CheckIns builds a database network from the SNAP check-in format used by the
// Brightkite and Gowalla datasets.
//
// edges contains one friendship per line: "userA<TAB>userB".
// checkins contains one check-in per line:
// "user<TAB>RFC3339 time<TAB>latitude<TAB>longitude<TAB>locationID".
//
// Every user becomes a vertex; the user's check-ins are grouped into
// consecutive windows of opts.Period and the set of locations visited within
// one window becomes one transaction, exactly as in Section 7 of the paper.
// The returned dictionary names every location item by its location ID.
func CheckIns(edges, checkins io.Reader, opts CheckInOptions) (*dbnet.Network, *itemset.Dictionary, error) {
	period := opts.Period
	if period <= 0 {
		period = 48 * time.Hour
	}

	// Pass 1: friendships define the vertex universe.
	type edgePair struct{ a, b int }
	var edgeList []edgePair
	maxUser := -1
	sc := bufio.NewScanner(edges)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("loaders: edges line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		a, errA := strconv.Atoi(fields[0])
		b, errB := strconv.Atoi(fields[1])
		if errA != nil || errB != nil || a < 0 || b < 0 {
			return nil, nil, fmt.Errorf("loaders: edges line %d: invalid user ids %q %q", lineNo, fields[0], fields[1])
		}
		if opts.MaxUsers > 0 && (a >= opts.MaxUsers || b >= opts.MaxUsers) {
			continue
		}
		if a == b {
			continue // self-friendships occasionally appear in the dumps
		}
		edgeList = append(edgeList, edgePair{a, b})
		if a > maxUser {
			maxUser = a
		}
		if b > maxUser {
			maxUser = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("loaders: reading edges: %w", err)
	}
	if maxUser < 0 {
		return nil, nil, fmt.Errorf("loaders: no friendships found")
	}

	nw := dbnet.New(maxUser + 1)
	for _, e := range edgeList {
		if err := nw.AddEdge(graph.VertexID(e.a), graph.VertexID(e.b)); err != nil {
			return nil, nil, err
		}
	}

	// Pass 2: check-ins grouped into periods per user.
	dict := itemset.NewDictionary()
	type window struct {
		user  int
		start time.Time
		items []itemset.Item
	}
	open := make(map[int]*window)
	flush := func(w *window) error {
		if w == nil || len(w.items) == 0 {
			return nil
		}
		return nw.AddTransaction(graph.VertexID(w.user), itemset.New(w.items...))
	}

	sc = bufio.NewScanner(checkins)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo = 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, nil, fmt.Errorf("loaders: checkins line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		user, err := strconv.Atoi(fields[0])
		if err != nil || user < 0 {
			return nil, nil, fmt.Errorf("loaders: checkins line %d: invalid user %q", lineNo, fields[0])
		}
		if user > maxUser || (opts.MaxUsers > 0 && user >= opts.MaxUsers) {
			continue // check-in of a user outside the friendship graph slice
		}
		ts, err := time.Parse(time.RFC3339, fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("loaders: checkins line %d: invalid timestamp %q: %v", lineNo, fields[1], err)
		}
		loc := dict.Intern(fields[4])

		w := open[user]
		if w == nil || ts.Sub(w.start) >= period || ts.Before(w.start) {
			if err := flush(w); err != nil {
				return nil, nil, err
			}
			w = &window{user: user, start: ts}
			open[user] = w
		}
		w.items = append(w.items, loc)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("loaders: reading checkins: %w", err)
	}
	for _, w := range open {
		if err := flush(w); err != nil {
			return nil, nil, err
		}
	}
	return nw, dict, nil
}
