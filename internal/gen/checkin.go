package gen

import (
	"fmt"
	"math/rand"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// CheckInConfig configures the location-based check-in generator, the
// analogue of the Brightkite (BK) and Gowalla (GW) datasets of Section 7.
//
// The generator plants friend communities whose members frequently check in
// at a shared set of "hangout" locations; these are the groups of friends who
// frequently visit the same set of places that theme-community mining is
// expected to recover. Every user also checks in at globally popular
// locations and at random noise locations, reproducing the long-tailed
// location popularity of real check-in data.
type CheckInConfig struct {
	// Users is the number of users (vertices).
	Users int
	// Communities is the number of planted friend groups.
	Communities int
	// IntraDegree and InterDegree shape the friendship graph
	// (see CommunityGraphConfig).
	IntraDegree float64
	InterDegree float64
	// HangoutsPerCommunity is the number of locations each friend group
	// habitually visits together.
	HangoutsPerCommunity int
	// GlobalLocations is the number of globally popular locations (airports,
	// malls, ...) anyone may visit.
	GlobalLocations int
	// NoiseLocations is the number of rarely visited long-tail locations.
	NoiseLocations int
	// PeriodsPerUser is the number of check-in periods (transactions) each
	// user produces; the paper cuts check-in histories into 2-day periods.
	PeriodsPerUser int
	// HangoutProbability is the probability that a period of a community
	// member includes the community's hangout locations.
	HangoutProbability float64
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultCheckInConfig returns a laptop-scale configuration emulating the
// structure of the Brightkite dataset.
func DefaultCheckInConfig() CheckInConfig {
	return CheckInConfig{
		Users:                600,
		Communities:          40,
		IntraDegree:          6,
		InterDegree:          1.5,
		HangoutsPerCommunity: 3,
		GlobalLocations:      25,
		NoiseLocations:       400,
		PeriodsPerUser:       20,
		HangoutProbability:   0.45,
		Seed:                 1,
	}
}

// CheckIn generates a check-in database network. It returns the network and a
// dictionary naming every location item ("hangout-c3-1", "global-7",
// "place-42", ...).
func CheckIn(cfg CheckInConfig) (*dbnet.Network, *itemset.Dictionary, error) {
	if cfg.Users <= 0 || cfg.Communities <= 0 || cfg.PeriodsPerUser <= 0 {
		return nil, nil, fmt.Errorf("gen: invalid check-in config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g, assign, err := CommunityGraph(rng, CommunityGraphConfig{
		Vertices:    cfg.Users,
		Communities: cfg.Communities,
		IntraDegree: cfg.IntraDegree,
		InterDegree: cfg.InterDegree,
	})
	if err != nil {
		return nil, nil, err
	}

	dict := itemset.NewDictionary()
	hangouts := make([][]itemset.Item, cfg.Communities)
	for c := 0; c < cfg.Communities; c++ {
		for h := 0; h < cfg.HangoutsPerCommunity; h++ {
			hangouts[c] = append(hangouts[c], dict.Intern(fmt.Sprintf("hangout-c%d-%d", c, h)))
		}
	}
	globals := make([]itemset.Item, cfg.GlobalLocations)
	for i := range globals {
		globals[i] = dict.Intern(fmt.Sprintf("global-%d", i))
	}
	noise := make([]itemset.Item, cfg.NoiseLocations)
	for i := range noise {
		noise[i] = dict.Intern(fmt.Sprintf("place-%d", i))
	}

	nw := dbnet.New(cfg.Users)
	for _, e := range g.Edges() {
		nw.MustAddEdge(e.U, e.V)
	}

	for u := 0; u < cfg.Users; u++ {
		c := assign[u]
		for period := 0; period < cfg.PeriodsPerUser; period++ {
			var visit []itemset.Item
			// The community hangout set is visited together with probability
			// HangoutProbability, which makes it a frequent pattern on every
			// member of the group.
			if rng.Float64() < cfg.HangoutProbability {
				visit = append(visit, hangouts[c]...)
			}
			// A couple of globally popular locations.
			nGlobal := rng.Intn(3)
			for i := 0; i < nGlobal && len(globals) > 0; i++ {
				visit = append(visit, globals[rng.Intn(len(globals))])
			}
			// Long-tail noise.
			nNoise := rng.Intn(3)
			for i := 0; i < nNoise && len(noise) > 0; i++ {
				visit = append(visit, noise[rng.Intn(len(noise))])
			}
			if len(visit) == 0 {
				// Every period records at least one check-in.
				switch {
				case len(noise) > 0:
					visit = append(visit, noise[rng.Intn(len(noise))])
				case len(globals) > 0:
					visit = append(visit, globals[rng.Intn(len(globals))])
				case len(hangouts[c]) > 0:
					visit = append(visit, hangouts[c][0])
				default:
					visit = append(visit, dict.Intern(fmt.Sprintf("home-%d", u)))
				}
			}
			if err := nw.AddTransaction(graph.VertexID(u), itemset.New(visit...)); err != nil {
				return nil, nil, err
			}
		}
	}
	return nw, dict, nil
}
