package gen

import (
	"fmt"
	"math"
	"math/rand"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// SynConfig configures the SYN generator, which follows the construction of
// the synthetic dataset in Section 7 of the paper:
//
//  1. generate a random network;
//  2. pick seed vertices and fill their databases with itemsets sampled from
//     the item universe S;
//  3. visit the remaining vertices breadth first; each vertex samples
//     transactions from its already-populated neighbours and randomly rewrites
//     MutationRate of the items, so that neighbouring databases share common
//     patterns;
//  4. vertex v receives ⌈e^{0.1·d(v)}⌉ transactions of length ⌈e^{0.13·d(v)}⌉.
type SynConfig struct {
	// Vertices and Edges size the random network.
	Vertices int
	Edges    int
	// Items is |S|, the number of distinct items.
	Items int
	// SeedVertices is the number of randomly selected seed vertices whose
	// databases are sampled directly from S.
	SeedVertices int
	// MutationRate is the fraction of items rewritten when a transaction is
	// copied from a neighbour (0.1 in the paper).
	MutationRate float64
	// TransactionsExponent and LengthExponent are the degree exponents of the
	// per-vertex transaction count and transaction length (0.1 and 0.13 in
	// the paper).
	TransactionsExponent float64
	LengthExponent       float64
	// MaxTransactions and MaxTransactionLength cap the exponential growth so
	// that a handful of hub vertices cannot blow up memory. Zero means the
	// paper's formula is applied unchanged.
	MaxTransactions      int
	MaxTransactionLength int
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultSynConfig returns a laptop-scale configuration of the SYN dataset.
func DefaultSynConfig() SynConfig {
	return SynConfig{
		Vertices:             2000,
		Edges:                20000,
		Items:                500,
		SeedVertices:         50,
		MutationRate:         0.1,
		TransactionsExponent: 0.1,
		LengthExponent:       0.13,
		MaxTransactions:      60,
		MaxTransactionLength: 12,
		Seed:                 3,
	}
}

// Syn generates a SYN database network following the paper's construction.
func Syn(cfg SynConfig) (*dbnet.Network, error) {
	if cfg.Vertices <= 0 || cfg.Items <= 0 {
		return nil, fmt.Errorf("gen: invalid SYN config %+v", cfg)
	}
	if cfg.SeedVertices <= 0 {
		cfg.SeedVertices = 1
	}
	if cfg.SeedVertices > cfg.Vertices {
		cfg.SeedVertices = cfg.Vertices
	}
	if cfg.MutationRate < 0 || cfg.MutationRate > 1 {
		return nil, fmt.Errorf("gen: mutation rate %v out of [0,1]", cfg.MutationRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := ErdosRenyi(rng, cfg.Vertices, cfg.Edges)
	nw := dbnet.New(cfg.Vertices)
	for _, e := range g.Edges() {
		nw.MustAddEdge(e.U, e.V)
	}

	txCount := func(v graph.VertexID) int {
		n := int(math.Ceil(math.Exp(cfg.TransactionsExponent * float64(g.Degree(v)))))
		if cfg.MaxTransactions > 0 && n > cfg.MaxTransactions {
			n = cfg.MaxTransactions
		}
		if n < 1 {
			n = 1
		}
		return n
	}
	txLen := func(v graph.VertexID) int {
		n := int(math.Ceil(math.Exp(cfg.LengthExponent * float64(g.Degree(v)))))
		if cfg.MaxTransactionLength > 0 && n > cfg.MaxTransactionLength {
			n = cfg.MaxTransactionLength
		}
		if n < 1 {
			n = 1
		}
		if n > cfg.Items {
			n = cfg.Items
		}
		return n
	}
	randomItem := func() itemset.Item { return itemset.Item(rng.Intn(cfg.Items)) }
	randomTransaction := func(length int) itemset.Itemset {
		items := make([]itemset.Item, length)
		for i := range items {
			items[i] = randomItem()
		}
		return itemset.New(items...)
	}

	// Step 1: seed vertices sample itemsets directly from S.
	populated := make([]bool, cfg.Vertices)
	seeds := rng.Perm(cfg.Vertices)[:cfg.SeedVertices]
	for _, s := range seeds {
		v := graph.VertexID(s)
		for i := 0; i < txCount(v); i++ {
			if err := nw.AddTransaction(v, randomTransaction(txLen(v))); err != nil {
				return nil, err
			}
		}
		populated[s] = true
	}

	// Step 2: BFS from the seeds; each newly reached vertex copies mutated
	// transactions from already-populated neighbours.
	queue := make([]graph.VertexID, 0, cfg.Vertices)
	for _, s := range seeds {
		queue = append(queue, graph.VertexID(s))
	}
	visited := make([]bool, cfg.Vertices)
	for _, s := range seeds {
		visited[s] = true
	}
	fill := func(v graph.VertexID) error {
		donors := make([]graph.VertexID, 0, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			if populated[w] {
				donors = append(donors, w)
			}
		}
		count, length := txCount(v), txLen(v)
		for i := 0; i < count; i++ {
			var tx itemset.Itemset
			if len(donors) > 0 {
				donor := donors[rng.Intn(len(donors))]
				src := nw.Database(donor).Transactions()
				if len(src) > 0 {
					tx = mutate(rng, src[rng.Intn(len(src))], cfg.MutationRate, cfg.Items)
				}
			}
			if tx.Len() == 0 {
				tx = randomTransaction(length)
			}
			if err := nw.AddTransaction(v, tx); err != nil {
				return err
			}
		}
		populated[v] = true
		return nil
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if visited[w] {
				continue
			}
			visited[w] = true
			if err := fill(w); err != nil {
				return nil, err
			}
			queue = append(queue, w)
		}
	}
	// Vertices unreachable from any seed still need databases.
	for v := 0; v < cfg.Vertices; v++ {
		if !populated[v] {
			if err := fill(graph.VertexID(v)); err != nil {
				return nil, err
			}
		}
	}
	return nw, nil
}

// mutate copies the transaction, rewriting each item with probability rate to
// a random item of S.
func mutate(rng *rand.Rand, tx itemset.Itemset, rate float64, items int) itemset.Itemset {
	out := make([]itemset.Item, 0, tx.Len())
	for _, it := range tx {
		if rng.Float64() < rate {
			out = append(out, itemset.Item(rng.Intn(items)))
			continue
		}
		out = append(out, it)
	}
	return itemset.New(out...)
}
