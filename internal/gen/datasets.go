package gen

import (
	"fmt"

	"themecomm/internal/dbnet"
	"themecomm/internal/itemset"
)

// Dataset couples a generated database network with its metadata. It is the
// unit the experiment harness iterates over when regenerating the paper's
// tables and figures.
type Dataset struct {
	// Name is the short dataset identifier used in the paper ("BK", "GW",
	// "AMINER", "SYN").
	Name string
	// Network is the generated database network.
	Network *dbnet.Network
	// Dictionary names the items of the network; it may be empty for SYN.
	Dictionary *itemset.Dictionary
	// AuthorNames maps vertices to author names for the co-author dataset;
	// nil for the other datasets.
	AuthorNames []string
}

// Scale adjusts the size of the generated dataset analogues. Scale 1 is the
// laptop-friendly default used by tests and CI; the command-line tools accept
// larger scales to stress the implementations.
type Scale float64

func scaleInt(base int, s Scale) int {
	v := int(float64(base) * float64(s))
	if v < 1 {
		v = 1
	}
	return v
}

// BK generates the Brightkite analogue: a mid-density check-in network.
func BK(s Scale) (Dataset, error) {
	cfg := DefaultCheckInConfig()
	cfg.Users = scaleInt(cfg.Users, s)
	cfg.Communities = scaleInt(cfg.Communities, s)
	cfg.NoiseLocations = scaleInt(cfg.NoiseLocations, s)
	cfg.Seed = 11
	nw, dict, err := CheckIn(cfg)
	if err != nil {
		return Dataset{}, fmt.Errorf("gen: BK: %w", err)
	}
	return Dataset{Name: "BK", Network: nw, Dictionary: dict}, nil
}

// GW generates the Gowalla analogue: a larger, sparser check-in network with
// more users and locations than BK.
func GW(s Scale) (Dataset, error) {
	cfg := DefaultCheckInConfig()
	cfg.Users = scaleInt(2*cfg.Users, s)
	cfg.Communities = scaleInt(2*cfg.Communities, s)
	cfg.NoiseLocations = scaleInt(3*cfg.NoiseLocations, s)
	cfg.GlobalLocations = 2 * cfg.GlobalLocations
	cfg.IntraDegree = 8
	cfg.PeriodsPerUser = 18
	cfg.HangoutProbability = 0.4
	cfg.Seed = 12
	nw, dict, err := CheckIn(cfg)
	if err != nil {
		return Dataset{}, fmt.Errorf("gen: GW: %w", err)
	}
	return Dataset{Name: "GW", Network: nw, Dictionary: dict}, nil
}

// AMiner generates the AMINER analogue: a co-author network with keyword
// vertex databases.
func AMiner(s Scale) (Dataset, error) {
	cfg := DefaultCoAuthorConfig()
	cfg.Authors = scaleInt(cfg.Authors, s)
	cfg.Groups = scaleInt(cfg.Groups, s)
	cfg.PapersPerGroup = scaleInt(cfg.PapersPerGroup, s)
	cfg.Seed = 13
	nw, dict, names, err := CoAuthor(cfg)
	if err != nil {
		return Dataset{}, fmt.Errorf("gen: AMINER: %w", err)
	}
	return Dataset{Name: "AMINER", Network: nw, Dictionary: dict, AuthorNames: names}, nil
}

// SYN generates the synthetic dataset following the paper's construction.
func SYN(s Scale) (Dataset, error) {
	cfg := DefaultSynConfig()
	cfg.Vertices = scaleInt(cfg.Vertices, s)
	cfg.Edges = scaleInt(cfg.Edges, s)
	cfg.Items = scaleInt(cfg.Items, s)
	cfg.SeedVertices = scaleInt(cfg.SeedVertices, s)
	cfg.Seed = 14
	nw, err := Syn(cfg)
	if err != nil {
		return Dataset{}, fmt.Errorf("gen: SYN: %w", err)
	}
	return Dataset{Name: "SYN", Network: nw, Dictionary: itemset.NewDictionary()}, nil
}

// AllDatasets generates the four dataset analogues of Table 2 at the given
// scale, in the paper's order.
func AllDatasets(s Scale) ([]Dataset, error) {
	var out []Dataset
	for _, f := range []func(Scale) (Dataset, error){BK, GW, AMiner, SYN} {
		d, err := f(s)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// ByName generates a single dataset analogue by its paper name (case
// sensitive: "BK", "GW", "AMINER", "SYN").
func ByName(name string, s Scale) (Dataset, error) {
	switch name {
	case "BK":
		return BK(s)
	case "GW":
		return GW(s)
	case "AMINER":
		return AMiner(s)
	case "SYN":
		return SYN(s)
	default:
		return Dataset{}, fmt.Errorf("gen: unknown dataset %q (want BK, GW, AMINER or SYN)", name)
	}
}
