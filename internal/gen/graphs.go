// Package gen generates synthetic database networks for tests, examples and
// the benchmark harness. It provides the random-graph substrates the paper's
// SYN dataset needs (Section 7), plus generators that emulate the structural
// properties of the paper's real datasets: location-based check-in networks
// (Brightkite, Gowalla) and a co-author network (AMINER). See DESIGN.md for
// the substitution rationale.
package gen

import (
	"fmt"
	"math/rand"

	"themecomm/internal/graph"
)

// ErdosRenyi generates a simple undirected G(n, m) random graph with exactly m
// edges (or the maximum possible if m exceeds it), using the supplied random
// source for reproducibility.
func ErdosRenyi(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	if n < 2 {
		return g
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for g.NumEdges() < m {
		a := graph.VertexID(rng.Intn(n))
		b := graph.VertexID(rng.Intn(n))
		if a == b {
			continue
		}
		g.MustAddEdge(a, b)
	}
	return g
}

// BarabasiAlbert generates a preferential-attachment graph: starting from a
// small clique of attach+1 vertices, every new vertex attaches to `attach`
// existing vertices chosen proportionally to their degree. The result has the
// long-tailed degree distribution typical of social networks.
func BarabasiAlbert(rng *rand.Rand, n, attach int) *graph.Graph {
	if attach < 1 {
		attach = 1
	}
	g := graph.New(n)
	if n <= attach {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.MustAddEdge(graph.VertexID(u), graph.VertexID(v))
			}
		}
		return g
	}
	// Seed clique.
	targets := make([]graph.VertexID, 0, 2*n*attach)
	for u := 0; u <= attach; u++ {
		for v := u + 1; v <= attach; v++ {
			g.MustAddEdge(graph.VertexID(u), graph.VertexID(v))
			targets = append(targets, graph.VertexID(u), graph.VertexID(v))
		}
	}
	for v := attach + 1; v < n; v++ {
		chosen := make(map[graph.VertexID]bool, attach)
		for len(chosen) < attach {
			var t graph.VertexID
			if len(targets) == 0 || rng.Float64() < 0.05 {
				t = graph.VertexID(rng.Intn(v))
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if int(t) == v {
				continue
			}
			chosen[t] = true
		}
		for t := range chosen {
			g.MustAddEdge(graph.VertexID(v), t)
			targets = append(targets, graph.VertexID(v), t)
		}
	}
	return g
}

// CommunityGraphConfig configures CommunityGraph.
type CommunityGraphConfig struct {
	// Vertices is the total number of vertices.
	Vertices int
	// Communities is the number of planted communities. Vertices are assigned
	// round-robin, so community sizes differ by at most one.
	Communities int
	// IntraDegree is the target average number of intra-community neighbors
	// per vertex.
	IntraDegree float64
	// InterDegree is the target average number of cross-community neighbors
	// per vertex.
	InterDegree float64
}

// CommunityGraph generates a planted-partition graph: dense connections inside
// communities and sparse connections across. It returns the graph and the
// community assignment of each vertex. This is the substrate used by the
// check-in and co-author dataset generators, because theme communities only
// exist when the graph has cohesive (triangle-rich) groups.
func CommunityGraph(rng *rand.Rand, cfg CommunityGraphConfig) (*graph.Graph, []int, error) {
	if cfg.Vertices <= 0 {
		return nil, nil, fmt.Errorf("gen: CommunityGraph needs a positive vertex count, got %d", cfg.Vertices)
	}
	if cfg.Communities <= 0 {
		return nil, nil, fmt.Errorf("gen: CommunityGraph needs a positive community count, got %d", cfg.Communities)
	}
	n := cfg.Vertices
	k := cfg.Communities
	g := graph.New(n)
	assign := make([]int, n)
	members := make([][]graph.VertexID, k)
	for v := 0; v < n; v++ {
		c := v % k
		assign[v] = c
		members[c] = append(members[c], graph.VertexID(v))
	}

	// Intra-community edges.
	for _, ms := range members {
		if len(ms) < 2 {
			continue
		}
		want := int(cfg.IntraDegree*float64(len(ms))/2 + 0.5)
		maxEdges := len(ms) * (len(ms) - 1) / 2
		if want > maxEdges {
			want = maxEdges
		}
		// Always include a Hamiltonian-style cycle for connectivity, then add
		// random chords until the quota is met.
		added := 0
		for i := range ms {
			if added >= want {
				break
			}
			j := (i + 1) % len(ms)
			if ms[i] != ms[j] && !g.HasEdge(ms[i], ms[j]) {
				g.MustAddEdge(ms[i], ms[j])
				added++
			}
		}
		// Random chords; the attempt cap guards against pathological collision
		// rates in tiny, nearly saturated communities.
		for attempts := 0; added < want && attempts < 50*want+100; attempts++ {
			a := ms[rng.Intn(len(ms))]
			b := ms[rng.Intn(len(ms))]
			if a == b || g.HasEdge(a, b) {
				continue
			}
			g.MustAddEdge(a, b)
			added++
		}
	}

	// Inter-community edges.
	wantInter := int(cfg.InterDegree * float64(n) / 2)
	for i := 0; i < wantInter; i++ {
		a := graph.VertexID(rng.Intn(n))
		b := graph.VertexID(rng.Intn(n))
		if a == b || assign[a] == assign[b] || g.HasEdge(a, b) {
			continue
		}
		g.MustAddEdge(a, b)
	}
	return g, assign, nil
}
