package gen

import (
	"math/rand"
	"testing"

	"themecomm/internal/core"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(rng, 50, 120)
	if g.NumVertices() != 50 || g.NumEdges() != 120 {
		t.Fatalf("size = (%d,%d)", g.NumVertices(), g.NumEdges())
	}
	// Requesting more edges than possible clamps to the complete graph.
	g = ErdosRenyi(rng, 5, 100)
	if g.NumEdges() != 10 {
		t.Fatalf("clamped edge count = %d, want 10", g.NumEdges())
	}
	if got := ErdosRenyi(rng, 1, 5); got.NumEdges() != 0 {
		t.Fatalf("single-vertex graph cannot have edges")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := BarabasiAlbert(rng, 200, 3)
	if g.NumVertices() != 200 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Expected edges: clique on 4 + 3 per additional vertex.
	wantMin := 3 * (200 - 4)
	if g.NumEdges() < wantMin {
		t.Fatalf("edges = %d, want at least %d", g.NumEdges(), wantMin)
	}
	// The graph should have hubs: max degree well above the attachment count.
	maxDeg := 0
	for v := 0; v < 200; v++ {
		if d := g.Degree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 10 {
		t.Fatalf("expected hub vertices, max degree = %d", maxDeg)
	}
	// Tiny n degenerates to a clique.
	if got := BarabasiAlbert(rng, 3, 5); got.NumEdges() != 3 {
		t.Fatalf("tiny BA graph should be a triangle, got %d edges", got.NumEdges())
	}
}

func TestCommunityGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, assign, err := CommunityGraph(rng, CommunityGraphConfig{
		Vertices: 120, Communities: 6, IntraDegree: 6, InterDegree: 1,
	})
	if err != nil {
		t.Fatalf("CommunityGraph: %v", err)
	}
	if g.NumVertices() != 120 || len(assign) != 120 {
		t.Fatalf("sizes wrong")
	}
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if assign[e.U] == assign[e.V] {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter {
		t.Fatalf("expected more intra-community than inter-community edges (intra=%d inter=%d)", intra, inter)
	}
	if _, _, err := CommunityGraph(rng, CommunityGraphConfig{Vertices: 0, Communities: 2}); err == nil {
		t.Fatalf("invalid config should be rejected")
	}
	if _, _, err := CommunityGraph(rng, CommunityGraphConfig{Vertices: 10, Communities: 0}); err == nil {
		t.Fatalf("invalid config should be rejected")
	}
}

func TestCheckInGenerator(t *testing.T) {
	cfg := DefaultCheckInConfig()
	cfg.Users = 120
	cfg.Communities = 8
	cfg.PeriodsPerUser = 12
	cfg.NoiseLocations = 60
	nw, dict, err := CheckIn(cfg)
	if err != nil {
		t.Fatalf("CheckIn: %v", err)
	}
	if nw.NumVertices() != 120 {
		t.Fatalf("vertices = %d", nw.NumVertices())
	}
	if nw.NumEdges() == 0 {
		t.Fatalf("friendship graph has no edges")
	}
	stats := nw.Stats()
	if stats.Transactions != 120*12 {
		t.Fatalf("transactions = %d, want %d", stats.Transactions, 120*12)
	}
	if stats.ItemsUnique == 0 || dict.Len() < stats.ItemsUnique {
		t.Fatalf("dictionary (%d) smaller than unique items (%d)", dict.Len(), stats.ItemsUnique)
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Determinism: the same config yields the same network.
	nw2, _, err := CheckIn(cfg)
	if err != nil {
		t.Fatalf("CheckIn: %v", err)
	}
	if nw.Stats() != nw2.Stats() {
		t.Fatalf("generator is not deterministic: %+v vs %+v", nw.Stats(), nw2.Stats())
	}
	// Invalid config.
	if _, _, err := CheckIn(CheckInConfig{}); err == nil {
		t.Fatalf("zero config should be rejected")
	}
}

func TestCheckInProducesThemeCommunities(t *testing.T) {
	cfg := DefaultCheckInConfig()
	cfg.Users = 90
	cfg.Communities = 6
	cfg.HangoutProbability = 0.6
	cfg.PeriodsPerUser = 15
	cfg.NoiseLocations = 50
	nw, dict, err := CheckIn(cfg)
	if err != nil {
		t.Fatalf("CheckIn: %v", err)
	}
	res := core.TCFI(nw, core.Options{Alpha: 0.1, MaxPatternLength: 3})
	if res.NumPatterns() == 0 {
		t.Fatalf("the planted hangout patterns should produce theme communities")
	}
	// At least one mined theme should be a planted hangout location.
	found := false
	for _, p := range res.Patterns() {
		for _, name := range dict.Names(p) {
			if len(name) > 8 && name[:8] == "hangout-" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no mined theme mentions a hangout location: %v", res.Patterns())
	}
}

func TestCoAuthorGenerator(t *testing.T) {
	cfg := DefaultCoAuthorConfig()
	cfg.Authors = 150
	cfg.Groups = 12
	cfg.PapersPerGroup = 10
	nw, dict, names, err := CoAuthor(cfg)
	if err != nil {
		t.Fatalf("CoAuthor: %v", err)
	}
	if nw.NumVertices() != 150 || len(names) != 150 {
		t.Fatalf("sizes wrong: %d vertices, %d names", nw.NumVertices(), len(names))
	}
	if nw.NumEdges() == 0 {
		t.Fatalf("co-author graph has no edges")
	}
	if dict.Len() == 0 {
		t.Fatalf("keyword dictionary is empty")
	}
	// The human-readable topics must be interned.
	if _, ok := dict.Lookup("data mining"); !ok {
		t.Fatalf("expected the 'data mining' keyword to exist")
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Determinism.
	nw2, _, _, err := CoAuthor(cfg)
	if err != nil {
		t.Fatalf("CoAuthor: %v", err)
	}
	if nw.Stats() != nw2.Stats() {
		t.Fatalf("generator is not deterministic")
	}
	// The super paper produces at least one vertex with a very high degree.
	maxDeg := 0
	for v := 0; v < nw.NumVertices(); v++ {
		if d := nw.Graph().Degree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < cfg.SuperPaperAuthors/2 {
		t.Fatalf("expected a high-degree author from the super paper, max degree %d", maxDeg)
	}
	if _, _, _, err := CoAuthor(CoAuthorConfig{}); err == nil {
		t.Fatalf("zero config should be rejected")
	}
}

func TestCoAuthorProducesTopicCommunities(t *testing.T) {
	cfg := DefaultCoAuthorConfig()
	cfg.Authors = 120
	cfg.Groups = 10
	cfg.PapersPerGroup = 12
	cfg.SuperPaperAuthors = 0
	nw, dict, _, err := CoAuthor(cfg)
	if err != nil {
		t.Fatalf("CoAuthor: %v", err)
	}
	res := core.TCFI(nw, core.Options{Alpha: 0.2, MaxPatternLength: 2})
	if res.NumPatterns() == 0 {
		t.Fatalf("expected topic theme communities")
	}
	dm, ok := dict.Lookup("data mining")
	if !ok {
		t.Fatalf("missing keyword")
	}
	if res.Truss(itemset.New(dm)) == nil {
		t.Fatalf("the 'data mining' groups should form a theme community")
	}
}

func TestSynGenerator(t *testing.T) {
	cfg := DefaultSynConfig()
	cfg.Vertices = 300
	cfg.Edges = 1500
	cfg.Items = 80
	cfg.SeedVertices = 10
	nw, err := Syn(cfg)
	if err != nil {
		t.Fatalf("Syn: %v", err)
	}
	if nw.NumVertices() != 300 {
		t.Fatalf("vertices = %d", nw.NumVertices())
	}
	if nw.NumEdges() != 1500 {
		t.Fatalf("edges = %d", nw.NumEdges())
	}
	stats := nw.Stats()
	if stats.Transactions < 300 {
		t.Fatalf("every vertex needs at least one transaction, got %d total", stats.Transactions)
	}
	if stats.ItemsUnique > cfg.Items {
		t.Fatalf("more unique items (%d) than the configured universe (%d)", stats.ItemsUnique, cfg.Items)
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every vertex database is non-empty, including vertices unreachable from
	// the seeds.
	for v := 0; v < nw.NumVertices(); v++ {
		if nw.Database(graph.VertexID(v)).Empty() {
			t.Fatalf("vertex %d has an empty database", v)
		}
	}
	// Determinism.
	nw2, err := Syn(cfg)
	if err != nil {
		t.Fatalf("Syn: %v", err)
	}
	if nw.Stats() != nw2.Stats() {
		t.Fatalf("generator is not deterministic")
	}
	// Invalid configs.
	if _, err := Syn(SynConfig{}); err == nil {
		t.Fatalf("zero config should be rejected")
	}
	if _, err := Syn(SynConfig{Vertices: 10, Items: 5, MutationRate: 2}); err == nil {
		t.Fatalf("mutation rate > 1 should be rejected")
	}
}

func TestSynNeighboursSharePatterns(t *testing.T) {
	// The BFS propagation with low mutation should make neighbouring
	// databases share items far more often than random pairs would.
	cfg := DefaultSynConfig()
	cfg.Vertices = 200
	cfg.Edges = 800
	cfg.Items = 200
	cfg.SeedVertices = 5
	cfg.MutationRate = 0.1
	nw, err := Syn(cfg)
	if err != nil {
		t.Fatalf("Syn: %v", err)
	}
	shared := 0
	pairs := 0
	for _, e := range nw.Graph().Edges() {
		pairs++
		if nw.Database(e.U).Items().Intersect(nw.Database(e.V).Items()).Len() > 0 {
			shared++
		}
	}
	if pairs == 0 || float64(shared)/float64(pairs) < 0.5 {
		t.Fatalf("only %d/%d neighbouring pairs share items", shared, pairs)
	}
}

func TestDatasetConstructors(t *testing.T) {
	const s = Scale(0.05)
	ds, err := AllDatasets(s)
	if err != nil {
		t.Fatalf("AllDatasets: %v", err)
	}
	if len(ds) != 4 {
		t.Fatalf("expected 4 datasets, got %d", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
		if d.Network == nil || d.Network.NumVertices() == 0 {
			t.Fatalf("dataset %s has no network", d.Name)
		}
		if d.Network.NumEdges() == 0 {
			t.Fatalf("dataset %s has no edges", d.Name)
		}
	}
	for _, want := range []string{"BK", "GW", "AMINER", "SYN"} {
		if !names[want] {
			t.Fatalf("missing dataset %s", want)
		}
		d, err := ByName(want, s)
		if err != nil || d.Name != want {
			t.Fatalf("ByName(%s) failed: %v", want, err)
		}
	}
	if _, err := ByName("nope", s); err == nil {
		t.Fatalf("unknown dataset name should be rejected")
	}
	// AMINER carries author names.
	am, err := ByName("AMINER", s)
	if err != nil {
		t.Fatalf("AMINER: %v", err)
	}
	if len(am.AuthorNames) != am.Network.NumVertices() {
		t.Fatalf("author names (%d) do not cover the vertices (%d)", len(am.AuthorNames), am.Network.NumVertices())
	}
}
