package gen

import (
	"fmt"
	"math/rand"

	"themecomm/internal/dbnet"
	"themecomm/internal/graph"
	"themecomm/internal/itemset"
)

// CoAuthorConfig configures the co-author network generator, the analogue of
// the AMINER citation dataset of Section 7. Authors are organized in research
// groups; each group repeatedly publishes papers whose author lists are
// subsets of the group and whose keyword sets are drawn from the group's
// research topic. The co-author graph links authors who wrote a paper
// together, and every author's vertex database holds the keyword sets of
// their papers — exactly the construction the paper applies to AMINER.
type CoAuthorConfig struct {
	// Authors is the number of authors (vertices).
	Authors int
	// Groups is the number of research groups.
	Groups int
	// TopicKeywords is the number of keywords in each group's core topic.
	TopicKeywords int
	// SharedKeywords is the number of generic keywords ("algorithm",
	// "experiment", ...) shared by all topics.
	SharedKeywords int
	// PapersPerGroup is the number of papers each group publishes.
	PapersPerGroup int
	// AuthorsPerPaper is the typical number of co-authors of a paper.
	AuthorsPerPaper int
	// InterdisciplinaryFraction is the fraction of papers co-authored across
	// two groups, which produces the overlapping interdisciplinary theme
	// communities shown in the paper's case study (Figures 6(e)-(f)).
	InterdisciplinaryFraction float64
	// SuperPaperAuthors, when positive, adds one paper with this many authors
	// — the analogue of the 115-author IBM Blue Gene/L paper that produces
	// the very large α* observed on AMINER (Figure 5(c)).
	SuperPaperAuthors int
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultCoAuthorConfig returns a laptop-scale configuration emulating the
// structure of the AMINER dataset.
func DefaultCoAuthorConfig() CoAuthorConfig {
	return CoAuthorConfig{
		Authors:                   800,
		Groups:                    60,
		TopicKeywords:             4,
		SharedKeywords:            30,
		PapersPerGroup:            25,
		AuthorsPerPaper:           4,
		InterdisciplinaryFraction: 0.12,
		SuperPaperAuthors:         40,
		Seed:                      2,
	}
}

// topicVocabulary provides human-readable research topics for the first
// groups; later groups fall back to synthetic topic names. The themes mirror
// Table 4 of the paper so the case study reads naturally.
var topicVocabulary = [][]string{
	{"data mining", "sequential pattern", "pattern growth", "prefix projection"},
	{"data mining", "sequential pattern", "intrusion detection", "anomaly score"},
	{"data mining", "search space", "complete set", "pattern mining"},
	{"data mining", "sensitive information", "privacy protection", "anonymization"},
	{"principal component analysis", "linear discriminant analysis", "dimensionality reduction", "component analysis"},
	{"image retrieval", "image database", "relevance feedback", "semantic gap"},
	{"query optimization", "join ordering", "cost model", "cardinality estimation"},
	{"graph mining", "dense subgraph", "community detection", "truss decomposition"},
	{"social network", "influence maximization", "information diffusion", "seed selection"},
	{"recommender system", "collaborative filtering", "matrix factorization", "implicit feedback"},
}

// CoAuthor generates a co-author database network. It returns the network, a
// dictionary naming every keyword item, and the list of author names indexed
// by vertex.
func CoAuthor(cfg CoAuthorConfig) (*dbnet.Network, *itemset.Dictionary, []string, error) {
	if cfg.Authors <= 0 || cfg.Groups <= 0 || cfg.PapersPerGroup <= 0 || cfg.AuthorsPerPaper < 2 {
		return nil, nil, nil, fmt.Errorf("gen: invalid co-author config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dict := itemset.NewDictionary()

	// Shared generic keywords.
	shared := make([]itemset.Item, cfg.SharedKeywords)
	for i := range shared {
		shared[i] = dict.Intern(fmt.Sprintf("keyword-%d", i))
	}
	// Per-group topics.
	topics := make([][]itemset.Item, cfg.Groups)
	for gIdx := 0; gIdx < cfg.Groups; gIdx++ {
		if gIdx < len(topicVocabulary) {
			for _, kw := range topicVocabulary[gIdx] {
				topics[gIdx] = append(topics[gIdx], dict.Intern(kw))
			}
			continue
		}
		for k := 0; k < cfg.TopicKeywords; k++ {
			topics[gIdx] = append(topics[gIdx], dict.Intern(fmt.Sprintf("topic-%d-term-%d", gIdx, k)))
		}
	}

	// Group membership: round-robin assignment.
	members := make([][]graph.VertexID, cfg.Groups)
	authorNames := make([]string, cfg.Authors)
	for a := 0; a < cfg.Authors; a++ {
		gIdx := a % cfg.Groups
		members[gIdx] = append(members[gIdx], graph.VertexID(a))
		authorNames[a] = fmt.Sprintf("Author %03d", a)
	}

	nw := dbnet.New(cfg.Authors)
	publish := func(authors []graph.VertexID, keywords []itemset.Item) error {
		tx := itemset.New(keywords...)
		for i := 0; i < len(authors); i++ {
			if err := nw.AddTransaction(authors[i], tx); err != nil {
				return err
			}
			for j := i + 1; j < len(authors); j++ {
				if authors[i] != authors[j] {
					if err := nw.AddEdge(authors[i], authors[j]); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	pickAuthors := func(pool []graph.VertexID, n int) []graph.VertexID {
		if n > len(pool) {
			n = len(pool)
		}
		chosen := make(map[graph.VertexID]bool, n)
		out := make([]graph.VertexID, 0, n)
		for len(out) < n {
			a := pool[rng.Intn(len(pool))]
			if !chosen[a] {
				chosen[a] = true
				out = append(out, a)
			}
		}
		return out
	}

	paperKeywords := func(gIdx int) []itemset.Item {
		kws := append([]itemset.Item(nil), topics[gIdx]...)
		// A couple of generic keywords round out the abstract.
		for i := 0; i < 2 && len(shared) > 0; i++ {
			kws = append(kws, shared[rng.Intn(len(shared))])
		}
		return kws
	}

	for gIdx := 0; gIdx < cfg.Groups; gIdx++ {
		if len(members[gIdx]) < 2 {
			continue
		}
		for paper := 0; paper < cfg.PapersPerGroup; paper++ {
			nAuthors := 2 + rng.Intn(cfg.AuthorsPerPaper)
			if rng.Float64() < cfg.InterdisciplinaryFraction && cfg.Groups > 1 {
				// Interdisciplinary paper: co-authors from two groups, keywords
				// from both topics.
				other := rng.Intn(cfg.Groups)
				if other == gIdx {
					other = (other + 1) % cfg.Groups
				}
				if len(members[other]) == 0 {
					continue
				}
				authors := append(pickAuthors(members[gIdx], (nAuthors+1)/2), pickAuthors(members[other], nAuthors/2+1)...)
				kws := append(paperKeywords(gIdx), topics[other]...)
				if err := publish(dedupVertices(authors), kws); err != nil {
					return nil, nil, nil, err
				}
				continue
			}
			if err := publish(pickAuthors(members[gIdx], nAuthors), paperKeywords(gIdx)); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	// One "super paper" with a very large author list.
	if cfg.SuperPaperAuthors > 1 {
		all := make([]graph.VertexID, cfg.Authors)
		for i := range all {
			all[i] = graph.VertexID(i)
		}
		authors := pickAuthors(all, cfg.SuperPaperAuthors)
		kws := append([]itemset.Item{dict.Intern("super computer"), dict.Intern("system architecture")}, shared[:minInt(2, len(shared))]...)
		if err := publish(authors, kws); err != nil {
			return nil, nil, nil, err
		}
	}
	return nw, dict, authorNames, nil
}

func dedupVertices(vs []graph.VertexID) []graph.VertexID {
	seen := make(map[graph.VertexID]bool, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
