package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"themecomm/internal/engine"
	"themecomm/internal/federation"
	"themecomm/internal/itemset"
	"themecomm/internal/obs"
)

// This file is the HTTP surface of the streaming executor: chunked NDJSON
// responses (?stream=1) that deliver communities as the engine's pull-based
// cursor yields them, and cursor pagination (?limit=N, ?cursor=...) that
// resumes a query answer across requests.
//
// NDJSON framing: one JSON object per line — a StreamHeader line, then one
// StreamCommunity line per community, then a StreamTrailer line with the
// execution counters and, when a limit cut the answer short, the cursor of
// the next page. A mid-stream failure replaces the trailer with a
// StreamError line (the HTTP status is already committed by then, so the
// error travels in-band).
//
// Cursors are opaque base64url-encoded JSON carrying the query (network,
// pattern, alpha, k), the index epoch it executed against, and the resume
// position. A cursor is only valid against the epoch it was minted at:
// after an ApplyDelta or shard reload the remaining pages could mix pre-
// and post-delta shards, so a stale cursor is rejected with 410 Gone and
// the client re-issues the query from the start.

// cursorVersion is the version stamped into minted cursors; decodeCursor
// rejects every other version.
const cursorVersion = 1

// maxCursorLen bounds the accepted cursor parameter, keeping hostile inputs
// from forcing large base64/JSON work.
const maxCursorLen = 4096

// cursor is the decoded pagination state. The pattern is kept in its raw
// request form (comma-separated names or ids) and re-resolved on resume, so
// a cursor round-trips exactly what the client originally asked.
type cursor struct {
	V       int     `json:"v"`
	Network string  `json:"net,omitempty"`
	Pattern string  `json:"pattern,omitempty"`
	Alpha   float64 `json:"alpha"`
	K       int     `json:"k,omitempty"`
	Epoch   uint64  `json:"epoch"`
	Pos     int     `json:"pos"`
}

// encodeCursor renders a cursor as an opaque URL-safe token.
func encodeCursor(c cursor) string {
	b, _ := json.Marshal(c)
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodeCursor parses and validates a cursor token. Malformed, truncated,
// oversized or out-of-range inputs error; they never panic (FuzzCursorDecode
// holds it to that).
func decodeCursor(raw string) (cursor, error) {
	var c cursor
	if raw == "" {
		return c, errors.New("empty cursor")
	}
	if len(raw) > maxCursorLen {
		return c, fmt.Errorf("cursor exceeds %d bytes", maxCursorLen)
	}
	b, err := base64.RawURLEncoding.DecodeString(raw)
	if err != nil {
		return c, fmt.Errorf("cursor is not base64url: %v", err)
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return cursor{}, fmt.Errorf("cursor is not valid JSON: %v", err)
	}
	if c.V != cursorVersion {
		return cursor{}, fmt.Errorf("unsupported cursor version %d", c.V)
	}
	if c.Pos < 0 {
		return cursor{}, fmt.Errorf("negative cursor position %d", c.Pos)
	}
	if c.K < 0 {
		return cursor{}, fmt.Errorf("negative cursor k %d", c.K)
	}
	if c.Alpha < 0 {
		return cursor{}, fmt.Errorf("negative cursor alpha %g", c.Alpha)
	}
	return c, nil
}

// StreamHeader is the first line of an NDJSON streaming response.
type StreamHeader struct {
	Type    string   `json:"type"` // "header"
	Network string   `json:"network,omitempty"`
	Alpha   float64  `json:"alpha"`
	Pattern []string `json:"pattern,omitempty"`
	TopK    int      `json:"topK,omitempty"`
	// Epoch is the index epoch the stream executes against; cursors minted
	// by this stream carry it. Omitted on queryall streams, whose members
	// each have their own epoch.
	Epoch uint64 `json:"epoch,omitempty"`
}

// StreamCommunity is one community line of an NDJSON streaming response.
// Network is set on queryall streams.
type StreamCommunity struct {
	Type    string `json:"type"` // "community"
	Network string `json:"network,omitempty"`
	CommunityResponse
}

// StreamTrailer is the last line of a successful NDJSON streaming response.
type StreamTrailer struct {
	Type    string `json:"type"` // "trailer"
	Emitted int    `json:"emitted"`
	// RetrievedNodes and VisitedNodes mirror QueryResponse; zero on queryall
	// streams (the counters are per member engine).
	RetrievedNodes int `json:"retrievedNodes,omitempty"`
	VisitedNodes   int `json:"visitedNodes,omitempty"`
	// ShardsShortCircuited counts scheduled shards top-k early termination
	// never opened (single-network streams only).
	ShardsShortCircuited int   `json:"shardsShortCircuited,omitempty"`
	QueryMicros          int64 `json:"queryMicros"`
	// NextCursor resumes the answer where this page stopped; present only
	// when a limit cut the stream short of its end.
	NextCursor string `json:"nextCursor,omitempty"`
}

// StreamError is the terminal line of a failed NDJSON streaming response;
// Status is the HTTP status the failure would have carried had it happened
// before the response was committed (410 for a mid-stream index swap). It
// mirrors the JSON error envelope of the non-streaming routes, request ID
// included.
type StreamError struct {
	Type      string `json:"type"` // "error"
	Status    int    `json:"status"`
	Error     string `json:"error"`
	RequestID string `json:"requestId,omitempty"`
}

// streamError builds the in-band error line for one request.
func streamError(r *http.Request, err error) StreamError {
	return StreamError{Type: "error", Status: streamStatusOf(err), Error: err.Error(),
		RequestID: obs.RequestIDFrom(r.Context())}
}

// streamStatusOf maps a stream failure to its HTTP status.
func streamStatusOf(err error) int {
	if errors.Is(err, engine.ErrEpochChanged) {
		return http.StatusGone
	}
	return http.StatusInternalServerError
}

// serveQueryStream handles GET .../query when streaming or pagination
// parameters are present: ?stream=1 switches the response to NDJSON,
// ?limit=N bounds the page, and ?cursor=... resumes a previous page's
// position (the cursor carries the query; conflicting pattern/alpha/k
// parameters are ignored). The answer is delivered through the engine's
// pull-based stream, so only the shards the page needs are opened, and a
// top-k stream short-circuits the shards its α* bounds rule out.
func (s *Server) serveQueryStream(t *tenant, w http.ResponseWriter, r *http.Request, req *queryRequest) {
	ndjson, limit := req.Stream, req.Limit

	var alpha float64
	var q itemset.Itemset
	var k, pos int
	var rawPattern string
	if req.Cursor != "" {
		c, err := decodeCursor(req.Cursor)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid cursor: %v", err))
			return
		}
		if c.Network != t.name {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("cursor was minted for network %q", c.Network))
			return
		}
		if epoch := t.engine.IndexEpoch(); epoch != c.Epoch {
			writeError(w, r, http.StatusGone, fmt.Sprintf("cursor epoch %d expired: the index moved to epoch %d; re-issue the query", c.Epoch, epoch))
			return
		}
		alpha, k, pos, rawPattern = c.Alpha, c.K, c.Pos, c.Pattern
		if rawPattern != "" {
			parsed, err := t.parsePattern(rawPattern)
			if err != nil {
				writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid cursor pattern: %v", err))
				return
			}
			q = parsed
		}
	} else {
		alpha, q, k, rawPattern = req.Alpha, req.Pattern, req.K, req.RawPattern
	}

	start := time.Now()
	var st *engine.Stream
	var err error
	if k > 0 {
		st, err = t.engine.StreamTopK(r.Context(), q, alpha, k)
	} else {
		st, err = t.engine.StreamQuery(r.Context(), q, alpha)
	}
	if err != nil {
		writeError(w, r, streamStatusOf(err), err.Error())
		return
	}
	defer st.Close()
	if pos > 0 && st.Stats().Epoch != t.engine.IndexEpoch() {
		// The index moved between the cursor check above and the stream
		// capture; the authoritative epoch is the stream's own.
		writeError(w, r, http.StatusGone, "cursor epoch expired: the index moved; re-issue the query")
		return
	}

	// Skip the communities previous pages already delivered. On a lazy
	// engine the early shards are typically still resident, so a resume
	// costs traversal, not disk.
	for skipped := 0; skipped < pos; skipped++ {
		rc, err := st.Next()
		if err != nil {
			writeError(w, r, streamStatusOf(err), err.Error())
			return
		}
		if rc == nil {
			break // the page starts beyond the end: empty page, no next cursor
		}
	}

	var patternNames []string
	if q != nil {
		patternNames = t.itemNames(q)
	}
	nextCursor := func(emitted int) string {
		return encodeCursor(cursor{
			V: cursorVersion, Network: t.name, Pattern: rawPattern,
			Alpha: alpha, K: k, Epoch: st.Stats().Epoch, Pos: pos + emitted,
		})
	}

	if ndjson {
		s.writeStreamNDJSON(t, w, r, st, StreamHeader{
			Type: "header", Network: t.name, Alpha: alpha, Pattern: patternNames,
			TopK: k, Epoch: st.Stats().Epoch,
		}, k > 0, limit, start, nextCursor)
		return
	}

	// Plain JSON page: the materializing response shape plus nextCursor.
	resp := QueryResponse{Alpha: alpha, Pattern: patternNames, TopK: k}
	emitted := 0
	for limit <= 0 || emitted < limit {
		rc, err := st.Next()
		if err != nil {
			writeError(w, r, streamStatusOf(err), err.Error())
			return
		}
		if rc == nil {
			break
		}
		resp.Communities = append(resp.Communities, t.streamCommunity(rc, k > 0))
		emitted++
	}
	more, err := streamHasMore(st, limit, emitted)
	if err != nil {
		writeError(w, r, streamStatusOf(err), err.Error())
		return
	}
	if more {
		resp.NextCursor = nextCursor(emitted)
	}
	st.Close()
	stats := st.Stats()
	resp.RetrievedNodes = stats.RetrievedNodes
	resp.VisitedNodes = stats.VisitedNodes
	resp.QueryMicros = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// streamHasMore peeks one community past the page to decide whether a next
// cursor is due. The peeked community is discarded — the next page
// recomputes it — which costs one community, not one shard.
func streamHasMore(st *engine.Stream, limit, emitted int) (bool, error) {
	if limit <= 0 || emitted < limit {
		return false, nil
	}
	rc, err := st.Next()
	if err != nil {
		return false, err
	}
	return rc != nil, nil
}

// streamCommunity renders one streamed community: ranked answers carry the
// cohesion annotations, plain answers the community alone — matching the
// materializing renderings of the same query.
func (t *tenant) streamCommunity(rc *engine.RankedCommunity, ranked bool) CommunityResponse {
	if ranked {
		return t.rankedResponse(*rc)
	}
	return CommunityResponse{
		Theme:    t.itemNames(rc.Community.Pattern),
		Vertices: t.names(rc.Community.Vertices()),
		Edges:    rc.Community.Edges.Len(),
	}
}

// writeStreamNDJSON drives a single-network stream to an NDJSON response:
// header, one line per community (flushed as produced, so clients see
// results while later shards are still unopened), then the trailer with the
// final counters — the stream is closed first, so ShardsShortCircuited is
// the final tally.
func (s *Server) writeStreamNDJSON(t *tenant, w http.ResponseWriter, r *http.Request, st *engine.Stream, header StreamHeader, ranked bool, limit int, start time.Time, nextCursor func(int) string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(v any) {
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeLine(header)
	emitted := 0
	for limit <= 0 || emitted < limit {
		rc, err := st.Next()
		if err != nil {
			writeLine(streamError(r, err))
			return
		}
		if rc == nil {
			break
		}
		writeLine(StreamCommunity{Type: "community", CommunityResponse: t.streamCommunity(rc, ranked)})
		emitted++
	}
	more, err := streamHasMore(st, limit, emitted)
	if err != nil {
		writeLine(streamError(r, err))
		return
	}
	trailer := StreamTrailer{Type: "trailer", Emitted: emitted}
	if more {
		trailer.NextCursor = nextCursor(emitted)
	}
	st.Close()
	stats := st.Stats()
	trailer.RetrievedNodes = stats.RetrievedNodes
	trailer.VisitedNodes = stats.VisitedNodes
	trailer.ShardsShortCircuited = stats.ShardsShortCircuited
	trailer.QueryMicros = time.Since(start).Microseconds()
	writeLine(trailer)
}

// serveQueryAllStream handles GET /api/v1/queryall?stream=1: the federated
// answer as one NDJSON stream — the cross-network cohesion merge when k is
// given, the per-network concatenation in name order otherwise. Cursors are
// not supported on queryall (members move epochs independently); pages come
// from re-issuing with a narrower limit.
func (s *Server) serveQueryAllStream(w http.ResponseWriter, r *http.Request, resolve federation.PatternResolver, fields []string, alpha float64, k, limit int) {
	start := time.Now()
	var ms *federation.MergedStream
	var err error
	if k > 0 {
		ms, err = s.fed.StreamTopKAllFuncContext(r.Context(), resolve, alpha, k)
	} else {
		ms, err = s.fed.StreamQueryAllFuncContext(r.Context(), resolve, alpha)
	}
	if err != nil {
		writeError(w, r, streamStatusOf(err), err.Error())
		return
	}
	defer ms.Close()

	tenants := make(map[string]*tenant)
	tenantFor := func(name string) *tenant {
		if t, ok := tenants[name]; ok {
			return t
		}
		n, ok := s.fed.Network(name)
		if !ok {
			return nil
		}
		t := s.tenantOf(n)
		tenants[name] = t
		return t
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(v any) {
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeLine(StreamHeader{Type: "header", Alpha: alpha, Pattern: fields, TopK: k})
	emitted := 0
	for limit <= 0 || emitted < limit {
		nr, err := ms.Next()
		if err != nil {
			writeLine(streamError(r, err))
			return
		}
		if nr == nil {
			break
		}
		t := tenantFor(nr.Network)
		if t == nil {
			continue // detached mid-stream; its remaining communities are gone
		}
		writeLine(StreamCommunity{
			Type: "community", Network: nr.Network,
			CommunityResponse: t.streamCommunity(&nr.RankedCommunity, k > 0),
		})
		emitted++
	}
	writeLine(StreamTrailer{Type: "trailer", Emitted: emitted, QueryMicros: time.Since(start).Microseconds()})
}
